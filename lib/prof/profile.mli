(** Guest-level profiler: exact per-block cost attribution on top of the
    translation-block engine.

    The profiler keys a mutable {!row} on each block's entry pc and lets the
    machine account a whole dispatch with a handful of integer adds: dispatch
    hits, retired instructions and penalty cycles are added once per block
    execution, not once per instruction. The instruction-{e class} breakdown
    (loads/stores/branches/ALU/vector, plus the orthogonal compressed bit) is
    exact at the same cost because each block's static class mix is recorded
    once at translation time ({!class_code} per body instruction): a dispatch
    that runs the whole body contributes [static mix x 1] — resolved lazily
    at {!snapshot} as [static mix x full-body dispatches] — and only the rare
    partial dispatch (mid-block fault or fuel exhaustion) walks its executed
    prefix. The single-step engine attributes per instruction through the
    same rows, so both engines produce bit-identical totals
    (test/test_prof.ml pins this differentially).

    Runtime events are attributed to the {e enclosing} block: the machine
    marks the current row for the whole dispatch window (body, terminator and
    any handler it triggers), so TLB misses, icache penalty cycles,
    [Fault_raised]/[Fault_recovered]/[Trap_taken] and trap/recovery cycle
    charges all land on the block that paid for them — SMILE-site cost shows
    up in the same report as the hot loops.

    A jal/jalr shadow stack sampled at block boundaries feeds
    {!write_folded}: standard flamegraph tooling consumes the output
    directly. Attribution is O(1) per dispatch (one frame-weight add; a
    push/pop only on call/return terminators).

    Concurrency: a profile is single-domain, like the observability ring —
    the bench driver forces [-j 1] under [--profile]. *)

(** {1 Instruction classes} *)

val cls_alu : int
val cls_load : int
val cls_store : int
val cls_branch : int
val cls_vector : int

val class_code : Inst.t -> int
(** Class code of one instruction: low 3 bits are the class (priority
    vector > load > store > branch > ALU, so vector loads/stores count as
    vector); bit 3 set for compressed encodings; bit 4 marks a call
    ([jal]/[jalr] linking ra, [c.jalr]) and bit 5 a return ([jalr x0, ra],
    [c.jr ra]) for the shadow stack. Fits a byte. *)

val is_call : int -> bool
val is_ret : int -> bool

(** {1 Profiles and rows} *)

type t
type row

val create : unit -> t

val session : t -> int
(** Unique id of this profile instance. A {!row} cached on a translation
    block (Tblock's [prow]) is only valid for the profile with the same
    session — {!row_live} is the guard. *)

val row_live : t -> row -> bool

val bind : t -> entry:int -> classes:Bytes.t -> term:int -> row
(** Find or create the row for the block at [entry]. [classes] holds the
    {!class_code} of each body instruction and [term] the terminator's code
    (-1 if the block has none). If the entry re-translated to a different
    body (code patching), the accounting already done under the old mix is
    flushed into per-class counters before the row is re-described — totals
    stay exact across invalidation. *)

val row_describes : row -> classes:Bytes.t -> term:int -> bool
(** Whether the row currently carries exactly this static description
    ([classes] compared physically — the machine's per-dispatch guard for a
    row cached on a translation block; a miss re-{!bind}s). *)

val set_global : t option -> unit
(** Install the ambient profile picked up by machines at creation time
    ([Machine.create] attaches it; the CLI and bench driver set it before
    building workloads). *)

val global : unit -> t option

(** {1 Machine hooks}

    Called by lib/machine; not meant for direct use. *)

val begin_dispatch : t -> row option -> unit
(** Mark the row as the enclosing block for runtime-event attribution
    ({!note_recovered}/{!note_trap} and the charge cycles folded into the
    dispatch deltas). Takes the caller's cached option as-is so the
    per-dispatch fast path allocates nothing. *)

val block_dispatch :
  t ->
  row ->
  executed:int ->
  retired:int ->
  cycles:int ->
  tlb:int ->
  icache:int ->
  fault:bool ->
  target:int ->
  unit
(** Account one block-engine dispatch: [executed] completed body
    instructions (= the full body unless a taken side exit, a fault or fuel
    cut it short — partial dispatches are counted per prefix length and
    resolved against the static mix at snapshot time, so hot side exits stay
    O(1) per dispatch),
    [retired]/[cycles]/[tlb]/[icache] the machine-counter deltas over the
    whole dispatch window (terminator and handlers included), [fault]
    whether the window raised a machine fault, [target] the pc after the
    dispatch (the callee entry when the terminator was a call). The
    terminator's retirement is inferred from [retired - executed]. Penalty
    cycles are [cycles - retired]: everything charged beyond one cycle per
    retired instruction (icache misses, vector surcharge, trap/recovery
    costs). *)

val step_begin : t -> pc:int -> cls:int -> unit
(** Single-step engine: called before executing the instruction at [pc]
    with its {!class_code} ([-1] when it cannot be decoded). Rows are keyed
    by dynamic block leaders (the first instruction after a control
    transfer), so step-engine rows aggregate like block-engine rows. *)

val step_end :
  t -> retired:int -> cycles:int -> tlb:int -> icache:int -> target:int -> unit
(** Account the instruction begun by {!step_begin}; [retired] is 0 exactly
    when it faulted. *)

val note_recovered : t -> unit
(** A [Fault_recovered] was attributed to the current dispatch's block. *)

val note_trap : t -> unit
(** A [Trap_taken] was attributed to the current dispatch's block. *)

(** {1 Results} *)

type snap = {
  s_entry : int;  (** block entry pc *)
  s_body : int;  (** static body length at the end of profiling *)
  s_hits : int;  (** dispatches *)
  s_retired : int;
  s_loads : int;
  s_stores : int;
  s_branches : int;
  s_alu : int;
  s_vector : int;
  s_compressed : int;  (** compressed encodings among the retired (orthogonal) *)
  s_penalty : int;  (** cycles beyond one per retired instruction *)
  s_tlb : int;  (** software-TLB misses in this block's dispatch windows *)
  s_icache : int;  (** L1i misses (0 when the model is off) *)
  s_faults : int;  (** machine faults raised *)
  s_recovered : int;  (** SMILE recoveries attributed here *)
  s_traps : int;  (** trap-trampoline redirects attributed here *)
}

val snapshot : t -> snap list
(** One snap per row, sorted by entry pc. Class counts are exact:
    [s_loads + s_stores + s_branches + s_alu + s_vector = s_retired]. *)

val total_retired : t -> int
(** Sum of [s_retired] — must equal the machine's retired count over the
    profiled execution exactly (CI asserts this). *)

val to_events : t -> Obs.event list
(** The snapshot as [Tb_profile] events (sorted by entry), appended to a
    JSONL trace so [chimera profile] rebuilds the identical report
    offline. *)

val snaps_of_events : Obs.event list -> snap list
(** Inverse of {!to_events}: the [Tb_profile] lines of a trace, in order;
    non-profile events are ignored. *)

val hot_entries : ?limit:int -> t -> (int * int) list
(** The profile's hotness export: [(entry, dispatch hits)] per row with at
    least one hit, hottest first (ties broken by entry pc), truncated to
    [limit] rows. This is the dispatch-time signal tiered machines consume —
    the profiler sees exactly the per-block dispatch counts tier promotion
    is driven by, so "what the tiering saw" is answerable offline. *)

val write_folded : t -> out_channel -> unit
(** Write the shadow-stack weights in folded-stack format, one
    ["frame;frame;... count"] line per distinct stack, ready for
    [flamegraph.pl] / [inferno-flamegraph]. Frames are callee entry
    addresses in hex under a synthetic ["all"] root; counts are retired
    instructions. *)
