(** Signal delivery with gp restoration (paper §4.3, Fig. 10).

    Two kernel modifications are modelled:

    - {b priority routing}: SIGSEGV/SIGILL raised by CHBP's trampolines are
      consumed by Chimera's fault handler and never reach the user handler;
      genuine program faults still do;
    - {b gp restoration}: if a signal arrives while the SMILE trampoline has
      temporarily overwritten gp (between its [auipc] and the completion of
      the jump, or on the erroneous path before recovery), the user-space
      handler must still observe the ABI gp value. The kernel saves the true
      context, presents the handler a context with the static gp, and
      restores the true gp on [sigreturn].

    The user handler is a function in the binary (symbol ["sig_handler"])
    ending in the sigreturn syscall (a7 = 139). *)

type t

val create :
  Chimera_rt.t ->
  handler_sym:string ->
  deliver_after:int list ->
  t
(** Deliver one signal after each given number of retired instructions
    (ascending). @raise Not_found if the rewritten binary lacks the
    handler symbol. *)

val observed_gp : t -> int64 list
(** The gp values the user handler observed on entry, in delivery order
    (read at handler entry, most recent last). *)

val signals_delivered : t -> int

val gp_restorations : t -> int
(** Deliveries that found gp temporarily overwritten by a trampoline (the
    case the kernel modification exists for). *)

val run : t -> ?isa:Ext.t -> fuel:int -> Machine.t -> Machine.stop
(** Like {!Chimera_rt.run} but with the signal schedule active. *)
