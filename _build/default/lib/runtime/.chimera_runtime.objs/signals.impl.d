lib/runtime/signals.ml: Array Binfile Chimera_rt Fault Int64 List Loader Machine Reg
