lib/workloads/specgen.mli: Binfile
