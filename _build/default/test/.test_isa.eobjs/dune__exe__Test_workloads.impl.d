test/test_workloads.ml: Alcotest Armore Asm Binfile Blas Bytes Chbp Counters Ext Fault Inst Int64 List Loader Machine Measure Mixgen Printf Programs Reg Safer Sched Specgen Strawman
