lib/baselines/strawman.mli: Binfile Chbp
