(** Downgrade translation templates (paper §4.1).

    Each vector (or bit-manipulation) instruction is translated into a
    semantically equivalent base-instruction sequence, in the role the
    paper's QEMU-TCG templates play. Vector state is read from and written
    to the simulated register file ({!Vregs}); scavenged base registers are
    saved/restored around the computation.

    The element width of most vector operations is dynamic state set by the
    last [vsetvli]. When the patcher can prove the width statically (a
    dominating [vsetvli] in the same block) the template specializes;
    otherwise it emits a dispatch on the simulated [vsew] with one loop per
    supported width (e32/e64 — the widths our workloads and the paper's RVV
    benchmarks use; e8/e16 fall back to a loop over bytes/halves as well). *)

val can_downgrade : Inst.t -> bool
(** True for every V-extension instruction and Zba/Zbb instruction. *)

val downgrade :
  Codebuf.t ->
  static_sew:Inst.sew option ->
  ?free:Reg.t list ->
  ?vctx:Reg.t * Reg.t ->
  Inst.t ->
  unit
(** Emit the base-only translation of one instruction into the buffer.
    [free] names registers statically known dead at the site: the template
    prefers them as scratch registers and skips their save/restore (the
    paper's register-pressure story in reverse — low pressure makes
    translations cheap).

    [vctx = (rbase, rvl)] is the batch context: registers the caller has
    loaded with the simulated-state base address and the current [vl],
    shared across a run of adjacent translations. The template then skips
    its own state setup; a [vsetvli] translation refreshes [rvl].
    @raise Invalid_argument if [can_downgrade] is false. *)
