type t = { name : string; tbl : (int, int) Hashtbl.t }

let create ?(name = "fault") () = { name; tbl = Hashtbl.create 256 }

let add t ~key ~redirect =
  if Hashtbl.mem t.tbl key then
    invalid_arg (Printf.sprintf "Fault_table.add: duplicate key 0x%x" key);
  if !Obs.enabled then Obs.emit (Obs.Table_add { key; redirect; table = t.name });
  Hashtbl.replace t.tbl key redirect

let find t key = Hashtbl.find_opt t.tbl key
let count t = Hashtbl.length t.tbl
let iter t f = Hashtbl.iter f t.tbl

let merge_into ~src ~dst =
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.tbl k v) src.tbl
