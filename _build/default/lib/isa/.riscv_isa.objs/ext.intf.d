lib/isa/ext.mli: Format Inst
