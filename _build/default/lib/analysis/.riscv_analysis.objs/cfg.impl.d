lib/analysis/cfg.ml: Disasm Format Hashtbl Inst List Option Printf String
