lib/isa/reg.ml: Array Format List Printf Stdlib
