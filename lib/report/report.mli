(** ASCII rendering of the benchmark harness's tables and figure series. *)

val table :
  title:string -> header:string list -> rows:string list list -> unit
(** Print an aligned table to stdout. *)

val series :
  title:string ->
  xlabel:string ->
  xs:string list ->
  lines:(string * float list) list ->
  unit
(** Print a figure as aligned numeric series: one row per x value, one
    column per line. *)

val histogram : title:string -> rows:(string * int) list -> unit
(** Print labelled counts with proportional ASCII bars (peak = 40 chars). *)

val note : string -> unit
(** Print an indented free-form note. *)

val heading : string -> unit
