lib/runtime/counters.mli: Format
