examples/binary_surgery.mli:
