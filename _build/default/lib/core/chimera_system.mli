(** Chimera: the end-to-end system façade (paper §3, Fig. 3).

    A {!deployment} takes one original binary and the capability sets of the
    machine's heterogeneous cores, and prepares one rewritten binary (with
    its fault-handling runtime) per distinct core class: downgrading where
    the binary uses extensions a class lacks, upgrading (optionally) where a
    class offers extensions the binary does not use, and leaving matching
    classes native. Tasks can then run on any core transparently.

    {[
      let bin = (* any binary, e.g. compiled with RVV *) in
      let dep = Chimera_system.deploy bin ~cores:[ Ext.rv64gc; Ext.rv64gcv ] in
      let stop, machine = Chimera_system.run dep ~isa:Ext.rv64gc ~fuel:1_000_000 in
      ...
    ]}
*)

type t

type prepared =
  | Native  (** the original binary runs as-is on this class *)
  | Rewritten of Chimera_rt.t  (** CHBP-rewritten, with runtime mechanisms *)

val deploy : ?costs:Costs.t -> ?upgrade:bool -> Binfile.t -> cores:Ext.t list -> t
(** Prepare the binary for every core class. [upgrade] (default true)
    vectorizes recognizable loops for classes with extensions the binary
    does not use. *)

val original : t -> Binfile.t
val classes : t -> Ext.t list
val prepared_for : t -> Ext.t -> prepared
(** @raise Not_found if the class was not in [cores]. *)

val binary_for : t -> Ext.t -> Binfile.t

val run : t -> isa:Ext.t -> fuel:int -> Machine.stop * Machine.t
(** Load the class's binary into a fresh address space and execute it on a
    hart with the given capabilities, under the class's runtime handlers. *)

val counters : t -> Counters.t
(** Accumulated runtime-mechanism events across all classes. *)

val rewrite_stats : t -> (Ext.t * Chbp.stats) list
(** Static rewriting statistics per rewritten class. *)
