(* Decode-cache entries carry the generation stamp of the bytes they were
   decoded from; a stale entry fails its stamp check and is re-decoded.
   [Cill] also records the last byte actually examined (an illegal decode
   may have fetched only the low parcel), so its stamp covers exactly the
   bytes the verdict depends on. *)
type centry = Cok of Inst.t * int * int | Cill of string * int * int

type view = {
  vmem : Memory.t;
  cache : (int, centry) Hashtbl.t;
  blocks : (int, t Tblock.t) Hashtbl.t;  (** translation blocks, keyed by entry pc *)
}

and t = {
  mutable cur : view;
  mutable views : view list;
      (** recently used views, most recent first, capped at [max_views] *)
  gens : Tblock.Gen.t;
      (** page generations, shared by every view: physical pages may be
          aliased between views, so a patch invalidates everywhere *)
  mutable isa : Ext.t;
  costs : Costs.t;
  vlen : int;
  xregs : int64 array;
  vregs : bytes;
  mutable vl : int;
  mutable vsew : Inst.sew;
  mutable pc : int;
  mutable retired : int;
  mutable vector_retired : int;
  mutable indirect_retired : int;
  (* cycles are not stored directly: the invariant cycles = retired +
     cycles_extra holds at all times, so the per-instruction fast path only
     bumps [retired] and everything charged beyond one cycle per retired
     instruction (vector ops, icache misses, runtime events) lands here *)
  mutable cycles_extra : int;
  mutable icache : Icache.t option;
  mutable block_engine : bool;
  mutable chain : bool;
  mutable code_epoch : int;
      (** advanced on every {!invalidate_code} and ISA change; blocks whose
          [echeck] equals it are valid with one compare, and chain links are
          implicitly severed when it moves (Tblock.revalidate) *)
  mutable chain_hits : int;  (** dispatches served by a chain link *)
  mutable tb_dispatches : int;  (** total block dispatches (chained or not) *)
  mutable superblocks : bool;
      (** compile inlined jumps/branches and fused pairs; off restricts
          translation to PR3-style straight-line blocks (the differential
          harness exercises both) *)
  mutable side_exits : int;  (** dispatches that left a block via a taken
                                 inlined branch *)
  mutable fused_pairs : int;  (** pairs fused at translation time *)
  mutable prof : Profile.t option;
      (** attached guest profiler; both engines account through it when set
          (picked up from [Profile.global] at creation) *)
}

type stop = Exited of int | Faulted of Fault.t | Fuel_exhausted
type action = Resume of int | Stop of stop

type handlers = {
  on_fault : t -> Fault.t -> action;
  on_ebreak : t -> pc:int -> size:int -> action;
  on_ecall : t -> pc:int -> action;
  on_check : t -> pc:int -> rd:Reg.t -> target:int -> action;
}

let default_handlers =
  { on_fault = (fun _ f -> Stop (Faulted f));
    on_ebreak =
      (fun _ ~pc ~size:_ ->
        Stop (Faulted (Fault.Illegal_instruction { pc; reason = "unhandled ebreak" })));
    on_ecall =
      (fun _ ~pc ->
        Stop (Faulted (Fault.Illegal_instruction { pc; reason = "unhandled ecall" })));
    on_check =
      (fun _ ~pc ~rd:_ ~target:_ ->
        Stop
          (Faulted
             (Fault.Illegal_instruction { pc; reason = "unhandled check instruction" })))
  }

let new_view mem =
  { vmem = mem; cache = Hashtbl.create 1024; blocks = Hashtbl.create 256 }

(* Process-wide default for newly created machines; the bench driver's
   --engine flag flips it so whole experiments can run on the single-step
   reference engine for differential checks. *)
let block_engine_default = ref true
let set_block_engine_default on = block_engine_default := on

(* Same pattern for superblock formation: the bench driver's --engine flag
   can pin whole experiments to plain straight-line blocks so the three
   engines (step, block, superblock) stay differentially comparable. *)
let superblocks_default = ref true
let set_superblocks_default on = superblocks_default := on

let create ?(vlen = 32) ?(costs = Costs.default) ~mem ~isa () =
  let view = new_view mem in
  { cur = view;
    views = [ view ];
    gens = Tblock.Gen.create ();
    isa;
    costs;
    vlen;
    xregs = Array.make 32 0L;
    vregs = Bytes.make (32 * vlen) '\000';
    vl = 0;
    vsew = Inst.E64;
    pc = 0;
    retired = 0;
    vector_retired = 0;
    indirect_retired = 0;
    cycles_extra = 0;
    icache = None;
    block_engine = !block_engine_default;
    chain = true;
    code_epoch = 0;
    chain_hits = 0;
    tb_dispatches = 0;
    superblocks = !superblocks_default;
    side_exits = 0;
    fused_pairs = 0;
    prof = Profile.global () }

let mem t = t.cur.vmem
let isa t = t.isa

let set_isa t isa =
  if not (Ext.equal t.isa isa) then begin
    t.isa <- isa;
    (* blocks compiled against the old capability set must re-check *)
    t.code_epoch <- t.code_epoch + 1
  end
let costs t = t.costs
let vlen t = t.vlen
let pc t = t.pc
let set_pc t pc = t.pc <- pc
(* [Reg.t] is abstract and range-checked at construction (0..31), so the
   register file never needs a bounds check on the hot path. *)
let get_reg t r = Array.unsafe_get t.xregs (Reg.to_int r)

let set_reg t r v =
  let i = Reg.to_int r in
  if i <> 0 then Array.unsafe_set t.xregs i v

let get_vreg t v = Bytes.sub t.vregs (Reg.v_to_int v * t.vlen) t.vlen

let set_vreg t v b =
  if Bytes.length b <> t.vlen then invalid_arg "Machine.set_vreg: wrong width";
  Bytes.blit b 0 t.vregs (Reg.v_to_int v * t.vlen) t.vlen

let vl t = t.vl
let vsew t = t.vsew

let set_vstate t ~vl ~vsew =
  t.vl <- vl;
  t.vsew <- vsew

(* The view list is an LRU of bounded size: a retired view only loses its
   decode/block caches (rebuilt on demand if the view ever returns), never
   correctness — staleness is tracked by the shared generation table, not by
   the list. *)
let max_views = 8

let switch_view t mem =
  if t.cur.vmem != mem then
    match List.find_opt (fun v -> v.vmem == mem) t.views with
    | Some v ->
        t.views <- v :: List.filter (fun w -> w != v) t.views;
        t.cur <- v
    | None ->
        let v = new_view mem in
        t.views <- v :: List.filteri (fun i _ -> i < max_views - 1) t.views;
        t.cur <- v

(* O(pages patched): bump the page generations; every cached decode entry
   and translation block overlapping a bumped page fails its stamp check on
   next use, in every view (stamps are taken from the shared table). *)
let invalidate_code t ~addr ~len =
  if !Obs.enabled then Obs.emit (Obs.Tb_invalidate { addr; len });
  Tblock.Gen.bump t.gens ~addr ~len;
  (* the epoch moves with every bump: stale blocks fail the one-compare
     fast check and fall back to the full stamp check (or re-translation),
     and every chain link established before the patch stops matching *)
  t.code_epoch <- t.code_epoch + 1

let enable_icache ?sets ?line t = t.icache <- Some (Icache.create ?sets ?line ())

let icache_misses t =
  match t.icache with None -> 0 | Some ic -> Icache.misses ic

let set_profile t p = t.prof <- p
let profile t = t.prof
let retired t = t.retired
let vector_retired t = t.vector_retired
let indirect_retired t = t.indirect_retired
let cycles t = t.retired + t.cycles_extra
let charge t n = t.cycles_extra <- t.cycles_extra + n

let reset_counters t =
  t.retired <- 0;
  t.vector_retired <- 0;
  t.indirect_retired <- 0;
  t.cycles_extra <- 0

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

exception Efault of Fault.t

(* Raised (without a backtrace) by an inlined branch closure whose guard
   was taken: the closure has already set pc to the taken target and
   retired, so the catch site in [run_blocks] treats it as a normal block
   completion through the side exit. Payload-free so raising allocates
   nothing on the loop back edge. *)
exception Side_exit

let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32
let bool64 b = if b then 1L else 0L

let mulh a b =
  (* High 64 bits of the signed 128-bit product. *)
  let open Int64 in
  let lo_mask = 0xFFFFFFFFL in
  let a_lo = logand a lo_mask and a_hi = shift_right a 32 in
  let b_lo = logand b lo_mask and b_hi = shift_right b 32 in
  let ll = mul a_lo b_lo in
  let lh = mul a_lo b_hi in
  let hl = mul a_hi b_lo in
  let hh = mul a_hi b_hi in
  let carry =
    shift_right_logical
      (add (add (logand lh lo_mask) (logand hl lo_mask)) (shift_right_logical ll 32))
      32
  in
  add (add hh (add (shift_right lh 32) (shift_right hl 32))) carry

let alu op a b =
  let open Int64 in
  match op with
  | Inst.Add -> add a b
  | Inst.Sub -> sub a b
  | Inst.Sll -> shift_left a (to_int b land 63)
  | Inst.Slt -> bool64 (compare a b < 0)
  | Inst.Sltu -> bool64 (unsigned_compare a b < 0)
  | Inst.Xor -> logxor a b
  | Inst.Srl -> shift_right_logical a (to_int b land 63)
  | Inst.Sra -> shift_right a (to_int b land 63)
  | Inst.Or -> logor a b
  | Inst.And -> logand a b
  | Inst.Mul -> mul a b
  | Inst.Mulh -> mulh a b
  | Inst.Div ->
      if b = 0L then -1L
      else if a = min_int && b = -1L then min_int
      else div a b
  | Inst.Divu -> if b = 0L then -1L else unsigned_div a b
  | Inst.Rem ->
      if b = 0L then a else if a = min_int && b = -1L then 0L else rem a b
  | Inst.Remu -> if b = 0L then a else unsigned_rem a b
  | Inst.Addw -> sext32 (add a b)
  | Inst.Subw -> sext32 (sub a b)
  | Inst.Sllw -> sext32 (shift_left a (to_int b land 31))
  | Inst.Srlw -> sext32 (shift_right_logical (logand a 0xFFFFFFFFL) (to_int b land 31))
  | Inst.Sraw -> sext32 (shift_right (sext32 a) (to_int b land 31))
  | Inst.Mulw -> sext32 (mul a b)
  | Inst.Divw ->
      let a = sext32 a and b = sext32 b in
      if b = 0L then -1L
      else if a = 0xFFFFFFFF80000000L && b = -1L then sext32 a
      else sext32 (div a b)
  | Inst.Remw ->
      let a = sext32 a and b = sext32 b in
      if b = 0L then a
      else if a = 0xFFFFFFFF80000000L && b = -1L then 0L
      else sext32 (rem a b)
  | Inst.Sh1add -> add (shift_left a 1) b
  | Inst.Sh2add -> add (shift_left a 2) b
  | Inst.Sh3add -> add (shift_left a 3) b
  | Inst.Andn -> logand a (lognot b)
  | Inst.Orn -> logor a (lognot b)
  | Inst.Xnor -> lognot (logxor a b)
  | Inst.Min -> if compare a b < 0 then a else b
  | Inst.Max -> if compare a b > 0 then a else b
  | Inst.Minu -> if unsigned_compare a b < 0 then a else b
  | Inst.Maxu -> if unsigned_compare a b > 0 then a else b

let alui op a imm =
  let open Int64 in
  let b = of_int imm in
  match op with
  | Inst.Addi -> add a b
  | Inst.Slti -> bool64 (compare a b < 0)
  | Inst.Sltiu -> bool64 (unsigned_compare a b < 0)
  | Inst.Xori -> logxor a b
  | Inst.Ori -> logor a b
  | Inst.Andi -> logand a b
  | Inst.Slli -> shift_left a (imm land 63)
  | Inst.Srli -> shift_right_logical a (imm land 63)
  | Inst.Srai -> shift_right a (imm land 63)
  | Inst.Addiw -> sext32 (add a b)
  | Inst.Slliw -> sext32 (shift_left a (imm land 31))
  | Inst.Srliw -> sext32 (shift_right_logical (logand a 0xFFFFFFFFL) (imm land 31))
  | Inst.Sraiw -> sext32 (shift_right (sext32 a) (imm land 31))

let branch_taken c a b =
  match c with
  | Inst.Beq -> Int64.equal a b
  | Inst.Bne -> not (Int64.equal a b)
  | Inst.Blt -> Int64.compare a b < 0
  | Inst.Bge -> Int64.compare a b >= 0
  | Inst.Bltu -> Int64.unsigned_compare a b < 0
  | Inst.Bgeu -> Int64.unsigned_compare a b >= 0

let addr_of v = Int64.to_int v

let load_value mem width unsigned addr =
  match (width, unsigned) with
  | Inst.B, false -> Int64.of_int (Encode.sext (Memory.load_u8 mem addr) 8)
  | Inst.B, true -> Int64.of_int (Memory.load_u8 mem addr)
  | Inst.H, false -> Int64.of_int (Encode.sext (Memory.load_u16 mem addr) 16)
  | Inst.H, true -> Int64.of_int (Memory.load_u16 mem addr)
  | Inst.W, false -> sext32 (Int64.of_int (Memory.load_u32 mem addr))
  | Inst.W, true -> Int64.of_int (Memory.load_u32 mem addr)
  | Inst.D, _ -> Memory.load_u64 mem addr

let store_value mem width addr v =
  match width with
  | Inst.B -> Memory.store_u8 mem addr (Int64.to_int v land 0xFF)
  | Inst.H -> Memory.store_u16 mem addr (Int64.to_int v land 0xFFFF)
  | Inst.W -> Memory.store_u32 mem addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  | Inst.D -> Memory.store_u64 mem addr v

(* Vector element accessors at the current sew. *)

let vget t vr i =
  let base = (Reg.v_to_int vr * t.vlen) in
  match t.vsew with
  | Inst.E64 -> Bytes.get_int64_le t.vregs (base + (i * 8))
  | Inst.E32 -> Int64.of_int32 (Bytes.get_int32_le t.vregs (base + (i * 4)))
  | Inst.E16 -> Int64.of_int (Encode.sext (Bytes.get_uint16_le t.vregs (base + (i * 2))) 16)
  | Inst.E8 -> Int64.of_int (Encode.sext (Bytes.get_uint8 t.vregs (base + i)) 8)

let vset t vr i v =
  let base = (Reg.v_to_int vr * t.vlen) in
  match t.vsew with
  | Inst.E64 -> Bytes.set_int64_le t.vregs (base + (i * 8)) v
  | Inst.E32 -> Bytes.set_int32_le t.vregs (base + (i * 4)) (Int64.to_int32 v)
  | Inst.E16 -> Bytes.set_uint16_le t.vregs (base + (i * 2)) (Int64.to_int v land 0xFFFF)
  | Inst.E8 -> Bytes.set_uint8 t.vregs (base + i) (Int64.to_int v land 0xFF)

let vop_apply op acc a b =
  match op with
  | Inst.Vadd -> Int64.add a b
  | Inst.Vsub -> Int64.sub a b
  | Inst.Vmul -> Int64.mul a b
  | Inst.Vmacc -> Int64.add acc (Int64.mul a b)

let vlmax t sew = t.vlen / Inst.sew_bytes sew

(* Decode at [pc] through the current view's cache. Entries are validated
   against the page generations of the bytes they cover, so a patched range
   is simply re-decoded — [invalidate_code] never walks the cache. *)
let decode_fresh t pc =
  let lo = Memory.fetch_u16 t.cur.vmem pc in
  let needs_hi = lo land 0b11 = 0b11 && lo land 0b11111 <> 0b11111 in
  let hi = if needs_hi then Memory.fetch_u16 t.cur.vmem (pc + 2) else 0 in
  match Decode.decode ~lo ~hi with
  | Decode.Ok (i, n) ->
      Hashtbl.replace t.cur.cache pc
        (Cok (i, n, Tblock.Gen.stamp t.gens ~lo:pc ~hi:(pc + n - 1)));
      (i, n)
  | Decode.Illegal reason ->
      (* stamp only the bytes the verdict was computed from: the high
         parcel was fetched (and so depends on memory) only when the low
         parcel asked for it — stamping a fixed pc+3 would reach into a
         page that was never examined (possibly unmapped) *)
      let hi = if needs_hi then pc + 3 else pc + 1 in
      Hashtbl.replace t.cur.cache pc
        (Cill (reason, hi, Tblock.Gen.stamp t.gens ~lo:pc ~hi));
      raise (Efault (Fault.Illegal_instruction { pc; reason }))

let decode_at t pc =
  match Hashtbl.find_opt t.cur.cache pc with
  | Some (Cok (i, n, st)) when Tblock.Gen.stamp t.gens ~lo:pc ~hi:(pc + n - 1) = st ->
      (i, n)
  | Some (Cill (reason, hi, st)) when Tblock.Gen.stamp t.gens ~lo:pc ~hi = st ->
      raise (Efault (Fault.Illegal_instruction { pc; reason }))
  | Some _ | None -> decode_fresh t pc

let fetch_decode t = decode_at t t.pc

(* Execute one decoded instruction; updates pc; may raise Efault.
   Returns the [stop] if the instruction is a control event the caller's
   handlers must see. *)
type event = Enone | Eebreak of int | Eecall | Echeck of Reg.t * Reg.t * int

let exec t inst size =
  let next = t.pc + size in
  let get = get_reg t and set = set_reg t in
  let jump_aligned target =
    if target land 1 <> 0 || (target land 3 <> 0 && not (Ext.mem Ext.C t.isa)) then
      raise (Efault (Fault.Misaligned_fetch { pc = t.pc; target }));
    t.pc <- target
  in
  match inst with
  | Inst.Lui (rd, imm20) ->
      set rd (Int64.of_int (imm20 lsl 12));
      t.pc <- next;
      Enone
  | Inst.Auipc (rd, imm20) ->
      set rd (Int64.of_int (t.pc + (imm20 lsl 12)));
      t.pc <- next;
      Enone
  | Inst.Jal (rd, off) ->
      set rd (Int64.of_int next);
      jump_aligned (t.pc + off);
      Enone
  | Inst.Jalr (rd, rs1, imm) ->
      let target = addr_of (Int64.add (get rs1) (Int64.of_int imm)) land lnot 1 in
      set rd (Int64.of_int next);
      t.indirect_retired <- t.indirect_retired + 1;
      jump_aligned target;
      Enone
  | Inst.Branch (c, rs1, rs2, off) ->
      if branch_taken c (get rs1) (get rs2) then jump_aligned (t.pc + off)
      else t.pc <- next;
      Enone
  | Inst.Load { width; unsigned; rd; rs1; imm } ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int imm)) in
      set rd (load_value t.cur.vmem width unsigned addr);
      t.pc <- next;
      Enone
  | Inst.Store { width; rs2; rs1; imm } ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int imm)) in
      store_value t.cur.vmem width addr (get rs2);
      t.pc <- next;
      Enone
  | Inst.Op (op, rd, rs1, rs2) ->
      set rd (alu op (get rs1) (get rs2));
      t.pc <- next;
      Enone
  | Inst.Opi (op, rd, rs1, imm) ->
      set rd (alui op (get rs1) imm);
      t.pc <- next;
      Enone
  | Inst.Ecall -> Eecall
  | Inst.Ebreak -> Eebreak 4
  | Inst.C_nop ->
      t.pc <- next;
      Enone
  | Inst.C_ebreak -> Eebreak 2
  | Inst.C_addi (rd, imm) ->
      set rd (Int64.add (get rd) (Int64.of_int imm));
      t.pc <- next;
      Enone
  | Inst.C_li (rd, imm) ->
      set rd (Int64.of_int imm);
      t.pc <- next;
      Enone
  | Inst.C_mv (rd, rs2) ->
      set rd (get rs2);
      t.pc <- next;
      Enone
  | Inst.C_add (rd, rs2) ->
      set rd (Int64.add (get rd) (get rs2));
      t.pc <- next;
      Enone
  | Inst.C_j off ->
      jump_aligned (t.pc + off);
      Enone
  | Inst.C_jr rs1 ->
      t.indirect_retired <- t.indirect_retired + 1;
      jump_aligned (addr_of (get rs1) land lnot 1);
      Enone
  | Inst.C_jalr rs1 ->
      let target = addr_of (get rs1) land lnot 1 in
      t.indirect_retired <- t.indirect_retired + 1;
      set Reg.ra (Int64.of_int next);
      jump_aligned target;
      Enone
  | Inst.C_beqz (rs1, off) ->
      if Int64.equal (get rs1) 0L then jump_aligned (t.pc + off) else t.pc <- next;
      Enone
  | Inst.C_bnez (rs1, off) ->
      if Int64.equal (get rs1) 0L then t.pc <- next else jump_aligned (t.pc + off);
      Enone
  | Inst.C_ld (rd, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      set rd (Memory.load_u64 t.cur.vmem addr);
      t.pc <- next;
      Enone
  | Inst.C_sd (rs2, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      Memory.store_u64 t.cur.vmem addr (get rs2);
      t.pc <- next;
      Enone
  | Inst.C_slli (rd, sh) ->
      set rd (Int64.shift_left (get rd) sh);
      t.pc <- next;
      Enone
  | Inst.C_lw (rd, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      set rd (sext32 (Int64.of_int (Memory.load_u32 t.cur.vmem addr)));
      t.pc <- next;
      Enone
  | Inst.C_sw (rs2, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      Memory.store_u32 t.cur.vmem addr (Int64.to_int (Int64.logand (get rs2) 0xFFFFFFFFL));
      t.pc <- next;
      Enone
  | Inst.C_lui (rd, imm) ->
      set rd (Int64.of_int (imm lsl 12));
      t.pc <- next;
      Enone
  | Inst.C_addiw (rd, imm) ->
      set rd (sext32 (Int64.add (get rd) (Int64.of_int imm)));
      t.pc <- next;
      Enone
  | Inst.C_andi (rd, imm) ->
      set rd (Int64.logand (get rd) (Int64.of_int imm));
      t.pc <- next;
      Enone
  | Inst.C_alu (op, rd, rs2) ->
      let a = get rd and b = get rs2 in
      set rd
        (match op with
        | Inst.Csub -> Int64.sub a b
        | Inst.Cxor -> Int64.logxor a b
        | Inst.Cor -> Int64.logor a b
        | Inst.Cand -> Int64.logand a b
        | Inst.Csubw -> sext32 (Int64.sub a b)
        | Inst.Caddw -> sext32 (Int64.add a b));
      t.pc <- next;
      Enone
  | Inst.Vsetvli (rd, rs1, sew) ->
      let vlmax = vlmax t sew in
      let avl =
        if Reg.equal rs1 Reg.x0 then
          if Reg.equal rd Reg.x0 then t.vl else vlmax
        else
          let v = get rs1 in
          if Int64.unsigned_compare v (Int64.of_int vlmax) > 0 then vlmax
          else Int64.to_int v
      in
      t.vsew <- sew;
      t.vl <- min avl vlmax;
      set rd (Int64.of_int t.vl);
      t.pc <- next;
      Enone
  | Inst.Vle (sew, vd, rs1) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vle sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let sz = Inst.sew_bytes sew in
      for i = 0 to t.vl - 1 do
        vset t vd i (load_value t.cur.vmem
                       (match sew with
                        | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
                        | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
                       false (base + (i * sz)))
      done;
      t.pc <- next;
      Enone
  | Inst.Vlse (sew, vd, rs1, rs2) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vlse sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let stride = Int64.to_int (get rs2) in
      for i = 0 to t.vl - 1 do
        vset t vd i
          (load_value t.cur.vmem
             (match sew with
              | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
              | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
             false (base + (i * stride)))
      done;
      t.pc <- next;
      Enone
  | Inst.Vse (sew, vs3, rs1) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vse sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let sz = Inst.sew_bytes sew in
      for i = 0 to t.vl - 1 do
        store_value t.cur.vmem
          (match sew with
           | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
           | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
          (base + (i * sz)) (vget t vs3 i)
      done;
      t.pc <- next;
      Enone
  | Inst.Vsse (sew, vs3, rs1, rs2) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vsse sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let stride = Int64.to_int (get rs2) in
      for i = 0 to t.vl - 1 do
        store_value t.cur.vmem
          (match sew with
           | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
           | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
          (base + (i * stride)) (vget t vs3 i)
      done;
      t.pc <- next;
      Enone
  | Inst.Vop_vv (op, vd, vs2, vs1) ->
      for i = 0 to t.vl - 1 do
        vset t vd i (vop_apply op (vget t vd i) (vget t vs2 i) (vget t vs1 i))
      done;
      t.pc <- next;
      Enone
  | Inst.Vop_vx (op, vd, vs2, rs1) ->
      let x = get rs1 in
      for i = 0 to t.vl - 1 do
        vset t vd i (vop_apply op (vget t vd i) (vget t vs2 i) x)
      done;
      t.pc <- next;
      Enone
  | Inst.Vmv_v_x (vd, rs1) ->
      let x = get rs1 in
      for i = 0 to t.vl - 1 do
        vset t vd i x
      done;
      t.pc <- next;
      Enone
  | Inst.Vmv_x_s (rd, vs2) ->
      set rd (vget t vs2 0);
      t.pc <- next;
      Enone
  | Inst.Vredsum (vd, vs2, vs1) ->
      let acc = ref (vget t vs1 0) in
      for i = 0 to t.vl - 1 do
        acc := Int64.add !acc (vget t vs2 i)
      done;
      vset t vd 0 !acc;
      t.pc <- next;
      Enone
  | Inst.Xcheck_jalr (rd, rs1, imm) ->
      let target = addr_of (Int64.add (get rs1) (Int64.of_int imm)) land lnot 1 in
      Echeck (rd, rs1, target)
  | Inst.P_add16 (rd, rs1, rs2) ->
      let a = get rs1 and b = get rs2 in
      let lane i =
        let sh = 16 * i in
        let sum =
          Int64.add
            (Int64.logand (Int64.shift_right_logical a sh) 0xFFFFL)
            (Int64.logand (Int64.shift_right_logical b sh) 0xFFFFL)
        in
        Int64.shift_left (Int64.logand sum 0xFFFFL) sh
      in
      set rd (Int64.logor (Int64.logor (lane 0) (lane 1)) (Int64.logor (lane 2) (lane 3)));
      t.pc <- next;
      Enone
  | Inst.P_smaqa (rd, rs1, rs2) ->
      let a = get rs1 and b = get rs2 in
      let byte v i =
        (* sign-extended byte lane i *)
        Int64.shift_right (Int64.shift_left v (56 - (8 * i))) 56
      in
      let acc = ref (get rd) in
      for i = 0 to 7 do
        acc := Int64.add !acc (Int64.mul (byte a i) (byte b i))
      done;
      set rd !acc;
      t.pc <- next;
      Enone

(* Fetch accounting + capability check + execution + retirement for one
   instruction. Shared by the slow path ([step], after a cache-backed
   decode) and the block engine (for decoded terminators). *)
let exec_retire t inst size =
  (match t.icache with
  | None -> ()
  | Some ic ->
      if not (Icache.access ic t.pc) then
        t.cycles_extra <- t.cycles_extra + t.costs.Costs.icache_miss;
      (* a fetch spanning two lines touches both *)
      if not (Icache.access ic (t.pc + size - 1)) then
        t.cycles_extra <- t.cycles_extra + t.costs.Costs.icache_miss);
  if not (Ext.supports t.isa inst) then
    raise
      (Efault
         (Fault.Illegal_instruction
            { pc = t.pc;
              reason =
                Printf.sprintf "extension %s not supported by this hart"
                  (match Ext.required inst with
                   | Some e -> Ext.ext_name e
                   | None -> "?") }));
  let ev = exec t inst size in
  t.retired <- t.retired + 1;
  (match Ext.required inst with
   | Some Ext.V ->
       t.vector_retired <- t.vector_retired + 1;
       t.cycles_extra <- t.cycles_extra + t.costs.Costs.vector_op - 1
   | Some _ | None -> ());
  (ev, size)

(* Deliver the outcome of one instruction to the handlers. *)
let dispatch ~handlers t thunk =
  let apply_action = function
    | Resume pc ->
        t.pc <- pc;
        None
    | Stop s -> Some s
  in
  match thunk () with
  | Enone, _ -> None
  | Eebreak sz, _ -> apply_action (handlers.on_ebreak t ~pc:t.pc ~size:sz)
  | Eecall, size ->
      let a7 = get_reg t (Reg.of_int 17) in
      if Int64.equal a7 93L then Some (Exited (Int64.to_int (get_reg t Reg.a0)))
      else
        let pc0 = t.pc in
        (* advance past the ecall by default; handler may override. *)
        t.pc <- t.pc + size;
        apply_action (handlers.on_ecall t ~pc:pc0)
  | Echeck (rd, _, target), size ->
      let pc0 = t.pc in
      set_reg t rd (Int64.of_int (pc0 + size));
      apply_action (handlers.on_check t ~pc:pc0 ~rd ~target)
  | exception Efault f ->
      if !Obs.enabled then
        Obs.emit (Obs.Fault_raised { pc = Fault.pc f; cause = Fault.cause_name f });
      apply_action (handlers.on_fault t f)
  | exception Memory.Violation { addr; access } ->
      let f = Fault.Segfault { pc = t.pc; addr; access } in
      if !Obs.enabled then
        Obs.emit (Obs.Fault_raised { pc = t.pc; cause = Fault.cause_name f });
      apply_action (handlers.on_fault t f)

let step_dispatch ~handlers t =
  dispatch ~handlers t (fun () ->
      let inst, size = fetch_decode t in
      exec_retire t inst size)

let icache_miss_count t =
  match t.icache with None -> 0 | Some ic -> Icache.misses ic

let step ?(handlers = default_handlers) t =
  match t.prof with
  | None -> step_dispatch ~handlers t
  | Some p ->
      (* Profiled single step: classify the instruction up front (a decode
         cache hit on the non-fault path, since the dispatch re-decodes the
         same pc), bracket the dispatch with counter reads, and attribute
         the deltas — the same window the block engine accounts per block,
         here per instruction. *)
      let pc0 = t.pc in
      let cls =
        match decode_at t pc0 with
        | inst, _ -> Profile.class_code inst
        | exception Efault _ -> -1
        | exception Memory.Violation _ -> -1
      in
      Profile.step_begin p ~pc:pc0 ~cls;
      let r0 = t.retired and c0 = cycles t in
      let mem0 = t.cur.vmem in
      let tlb0 = Memory.tlb_misses_live mem0 in
      let ic0 = icache_miss_count t in
      let res = step_dispatch ~handlers t in
      Profile.step_end p ~retired:(t.retired - r0) ~cycles:(cycles t - c0)
        ~tlb:(Memory.tlb_misses_live mem0 - tlb0)
        ~icache:(icache_miss_count t - ic0)
        ~target:t.pc;
      res

(* Execute a block terminator without touching the decode cache. *)
let step_decoded ~handlers t inst size =
  dispatch ~handlers t (fun () -> exec_retire t inst size)

(* ------------------------------------------------------------------ *)
(* Translation-block engine                                            *)
(* ------------------------------------------------------------------ *)

let retire_scalar t = t.retired <- t.retired + 1

let retire_vector t =
  t.retired <- t.retired + 1;
  t.vector_retired <- t.vector_retired + 1;
  t.cycles_extra <- t.cycles_extra + t.costs.Costs.vector_op - 1

(* Superblock inlining only covers direct transfers whose (static) target
   passes the alignment check [exec] would perform — a misaligned target
   stays a terminator so the slow path raises the precise fault. *)
let target_aligned t target =
  target land 1 = 0 && (target land 3 = 0 || Ext.mem Ext.C t.isa)

(* Compile one instruction for the fast path. Event instructions and
   indirect/linking control flow terminate the block (they stay decoded and
   run through {!step_decoded}, so handler delivery and fault pcs are
   identical to the slow path). Direct jumps that do not link ra and
   conditional branches are inlined when superblock formation is on: the
   jump closure transfers to its static target, the branch closure either
   falls through or leaves the block through {!Side_exit} — in both cases
   pc is exact at every block exit, so faults and chaining see the same
   machine states as the step engine. Anything the current capability set
   cannot execute stops the block so the slow path raises the precise
   illegal-instruction fault. Every compiled closure replicates [exec]
   exactly and then retires, with operands partially evaluated at
   translation time.

   pc is maintained lazily: straight-line closures that cannot fault do
   not write [t.pc] at all; fault-capable closures (memory accesses, the
   interpreter fallback) set their own pc first so a raised fault reports
   the exact faulting instruction; control transfers write their target.
   [run_blocks] re-synchronizes pc at every dispatch end (terminator pc,
   fall-through, or the fuel-limited resume point), so pc is exact at
   every point the machine state is observable. *)
let compile_op t ~pc inst size =
  match inst with
  | Inst.Ecall | Inst.Ebreak | Inst.C_ebreak | Inst.Xcheck_jalr _ ->
      Tblock.Term
  | Inst.Jalr (rd, rs1, imm) ->
      (* with C in the capability set a jalr target (bit 0 cleared by the
         ISA) can never misalign, so the whole instruction is event-free:
         compile it to a direct terminator closure and skip the
         interpreter's decode-exec-dispatch path. Without C it can raise
         the misaligned-target fault and must stay on the event path. *)
      if not (Ext.mem Ext.C t.isa) then Tblock.Term
      else
        let im = Int64.of_int imm in
        let link = Int64.of_int (pc + size) in
        Tblock.Term_fn
          (fun t ->
            (* target before link write: rd may alias rs1 *)
            let target =
              addr_of (Int64.add (get_reg t rs1) im) land lnot 1
            in
            set_reg t rd link;
            t.indirect_retired <- t.indirect_retired + 1;
            t.pc <- target;
            retire_scalar t)
  | Inst.C_jr rs1 ->
      if not (Ext.mem Ext.C t.isa) then Tblock.Term
      else
        Tblock.Term_fn
          (fun t ->
            t.indirect_retired <- t.indirect_retired + 1;
            t.pc <- addr_of (get_reg t rs1) land lnot 1;
            retire_scalar t)
  | Inst.C_jalr rs1 ->
      if not (Ext.mem Ext.C t.isa) then Tblock.Term
      else
        let link = Int64.of_int (pc + size) in
        Tblock.Term_fn
          (fun t ->
            (* target before the ra write: rs1 may be ra *)
            let target = addr_of (get_reg t rs1) land lnot 1 in
            t.indirect_retired <- t.indirect_retired + 1;
            set_reg t Reg.ra link;
            t.pc <- target;
            retire_scalar t)
  | Inst.Jal (rd, off) ->
      (* jal linking ra is a call: kept as a terminator so the profiler's
         shadow call stack sees it; any other link register is inlined *)
      let target = pc + off in
      if not (target_aligned t target) then Tblock.Term
      else if (not t.superblocks) || Reg.equal rd Reg.ra then
        (* calls (and the block engine's jumps) end the block, but the
           aligned direct transfer itself is event-free: run it as a
           terminator closure *)
        let link = Int64.of_int (pc + size) in
        Tblock.Term_fn
          (fun t ->
            set_reg t rd link;
            t.pc <- target;
            retire_scalar t)
      else
        let link = Int64.of_int (pc + size) in
        Tblock.Jump
          ( (fun t ->
              set_reg t rd link;
              t.pc <- target;
              retire_scalar t),
            target )
  | Inst.C_j off ->
      let target = pc + off in
      if not (Ext.supports t.isa inst) || not (target_aligned t target) then
        Tblock.Term
      else if not t.superblocks then
        Tblock.Term_fn
          (fun t ->
            t.pc <- target;
            retire_scalar t)
      else
        Tblock.Jump
          ( (fun t ->
              t.pc <- target;
              retire_scalar t),
            target )
  | Inst.Branch (c, rs1, rs2, off) ->
      (* backward-taken/forward-not-taken: a backward conditional branch is
         almost always a loop backedge and taken on nearly every iteration —
         inlining it would side-exit every time, so it stays a terminator
         (and chains through the link slots like any other block end); only
         forward branches, usually not taken, are worth inlining *)
      let target = pc + off in
      if (not t.superblocks) || off <= 0 || not (target_aligned t target) then
        if not (target_aligned t target) then Tblock.Term
        else
          (* loop backedge (or block engine): terminator, but both targets
             are static and aligned so it cannot fault — direct closure *)
          let fall = pc + size in
          Tblock.Term_fn
            (fun t ->
              if branch_taken c (get_reg t rs1) (get_reg t rs2) then
                t.pc <- target
              else t.pc <- fall;
              retire_scalar t)
      else
        Tblock.Brcond
          (fun t ->
            if branch_taken c (get_reg t rs1) (get_reg t rs2) then begin
              t.pc <- target;
              retire_scalar t;
              raise_notrace Side_exit
            end
            else retire_scalar t)
  | Inst.C_beqz (rs1, off) ->
      let target = pc + off in
      if
        (not t.superblocks) || off <= 0
        || not (Ext.supports t.isa inst)
        || not (target_aligned t target)
      then
        if not (Ext.supports t.isa inst) || not (target_aligned t target)
        then Tblock.Term
        else
          let fall = pc + size in
          Tblock.Term_fn
            (fun t ->
              if Int64.equal (get_reg t rs1) 0L then t.pc <- target
              else t.pc <- fall;
              retire_scalar t)
      else
        Tblock.Brcond
          (fun t ->
            if Int64.equal (get_reg t rs1) 0L then begin
              t.pc <- target;
              retire_scalar t;
              raise_notrace Side_exit
            end
            else retire_scalar t)
  | Inst.C_bnez (rs1, off) ->
      let target = pc + off in
      if
        (not t.superblocks) || off <= 0
        || not (Ext.supports t.isa inst)
        || not (target_aligned t target)
      then
        if not (Ext.supports t.isa inst) || not (target_aligned t target)
        then Tblock.Term
        else
          let fall = pc + size in
          Tblock.Term_fn
            (fun t ->
              if Int64.equal (get_reg t rs1) 0L then t.pc <- fall
              else t.pc <- target;
              retire_scalar t)
      else
        Tblock.Brcond
          (fun t ->
            if Int64.equal (get_reg t rs1) 0L then retire_scalar t
            else begin
              t.pc <- target;
              retire_scalar t;
              raise_notrace Side_exit
            end)
  | _ ->
      if not (Ext.supports t.isa inst) then Tblock.Stop
      else
        let retire =
          if Ext.required inst = Some Ext.V then retire_vector else retire_scalar
        in
        let op =
          match inst with
          | Inst.Lui (rd, imm20) ->
              let v = Int64.of_int (imm20 lsl 12) in
              fun t ->
                set_reg t rd v
          | Inst.Auipc (rd, imm20) ->
              let v = Int64.of_int (pc + (imm20 lsl 12)) in
              fun t ->
                set_reg t rd v
          | Inst.Load { width; unsigned; rd; rs1; imm } -> (
              (* width/signedness are static: pick the accessor here so the
                 closure runs no per-execution dispatch *)
              let im = Int64.of_int imm in
              match (width, unsigned) with
              | Inst.D, _ ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd (Memory.load_u64 t.cur.vmem addr)
              | Inst.W, false ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd
                      (sext32 (Int64.of_int (Memory.load_u32 t.cur.vmem addr)))
              | Inst.B, true ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd (Int64.of_int (Memory.load_u8 t.cur.vmem addr))
              | _ ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd (load_value t.cur.vmem width unsigned addr))
          | Inst.Store { width; rs2; rs1; imm } -> (
              let im = Int64.of_int imm in
              match width with
              | Inst.D ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    Memory.store_u64 t.cur.vmem addr (get_reg t rs2)
              | Inst.W ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    Memory.store_u32 t.cur.vmem addr
                      (Int64.to_int (Int64.logand (get_reg t rs2) 0xFFFFFFFFL))
              | _ ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    store_value t.cur.vmem width addr (get_reg t rs2))
          | Inst.Op (op, rd, rs1, rs2) -> (
              (* the hottest ALU ops get dedicated closures (no jump through
                 [alu]'s dispatch table); the long tail shares one *)
              match op with
              | Inst.Add ->
                  fun t ->
                    set_reg t rd (Int64.add (get_reg t rs1) (get_reg t rs2))
              | Inst.Sub ->
                  fun t ->
                    set_reg t rd (Int64.sub (get_reg t rs1) (get_reg t rs2))
              | Inst.And ->
                  fun t ->
                    set_reg t rd (Int64.logand (get_reg t rs1) (get_reg t rs2))
              | Inst.Or ->
                  fun t ->
                    set_reg t rd (Int64.logor (get_reg t rs1) (get_reg t rs2))
              | Inst.Xor ->
                  fun t ->
                    set_reg t rd (Int64.logxor (get_reg t rs1) (get_reg t rs2))
              | Inst.Addw ->
                  fun t ->
                    set_reg t rd
                      (sext32 (Int64.add (get_reg t rs1) (get_reg t rs2)))
              | Inst.Mul ->
                  fun t ->
                    set_reg t rd (Int64.mul (get_reg t rs1) (get_reg t rs2))
              | _ ->
                  fun t ->
                    set_reg t rd (alu op (get_reg t rs1) (get_reg t rs2)))
          | Inst.Opi (Inst.Addi, rd, rs1, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.add (get_reg t rs1) im)
          | Inst.Opi (Inst.Andi, rd, rs1, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.logand (get_reg t rs1) im)
          | Inst.Opi (Inst.Slli, rd, rs1, imm) ->
              let sh = imm land 63 in
              fun t ->
                set_reg t rd (Int64.shift_left (get_reg t rs1) sh)
          | Inst.Opi (Inst.Srli, rd, rs1, imm) ->
              let sh = imm land 63 in
              fun t ->
                set_reg t rd (Int64.shift_right_logical (get_reg t rs1) sh)
          | Inst.Opi (Inst.Addiw, rd, rs1, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (sext32 (Int64.add (get_reg t rs1) im))
          | Inst.Opi (op, rd, rs1, imm) ->
              fun t ->
                set_reg t rd (alui op (get_reg t rs1) imm)
          | Inst.C_nop ->
              fun _ -> ()
          | Inst.C_addi (rd, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.add (get_reg t rd) im)
          | Inst.C_li (rd, imm) ->
              let v = Int64.of_int imm in
              fun t ->
                set_reg t rd v
          | Inst.C_mv (rd, rs2) ->
              fun t ->
                set_reg t rd (get_reg t rs2)
          | Inst.C_add (rd, rs2) ->
              fun t ->
                set_reg t rd (Int64.add (get_reg t rd) (get_reg t rs2))
          | Inst.C_ld (rd, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                set_reg t rd (Memory.load_u64 t.cur.vmem addr)
          | Inst.C_sd (rs2, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                Memory.store_u64 t.cur.vmem addr (get_reg t rs2)
          | Inst.C_slli (rd, sh) ->
              fun t ->
                set_reg t rd (Int64.shift_left (get_reg t rd) sh)
          | Inst.C_lw (rd, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                set_reg t rd (sext32 (Int64.of_int (Memory.load_u32 t.cur.vmem addr)))
          | Inst.C_sw (rs2, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                Memory.store_u32 t.cur.vmem addr
                  (Int64.to_int (Int64.logand (get_reg t rs2) 0xFFFFFFFFL))
          | Inst.C_lui (rd, imm) ->
              let v = Int64.of_int (imm lsl 12) in
              fun t ->
                set_reg t rd v
          | Inst.C_addiw (rd, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (sext32 (Int64.add (get_reg t rd) im))
          | Inst.C_andi (rd, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.logand (get_reg t rd) im)
          | Inst.C_alu (op, rd, rs2) ->
              fun t ->
                let a = get_reg t rd and b = get_reg t rs2 in
                set_reg t rd
                  (match op with
                  | Inst.Csub -> Int64.sub a b
                  | Inst.Cxor -> Int64.logxor a b
                  | Inst.Cor -> Int64.logor a b
                  | Inst.Cand -> Int64.logand a b
                  | Inst.Csubw -> sext32 (Int64.sub a b)
                  | Inst.Caddw -> sext32 (Int64.add a b))
          | _ ->
              (* vector / packed-SIMD and other rare straight-line
                 instructions: reuse the interpreter dispatch (they can
                 only produce [Enone] — events all terminate blocks). *)
              fun t ->
                t.pc <- pc;
                (match exec t inst size with
                | Enone -> ()
                | Eebreak _ | Eecall | Echeck _ -> assert false);
                retire t
        in
        (* every named arm above leaves the retired counter to the
           dispatch loop; only the interpreter fallback retires itself *)
        match inst with
        | Inst.Lui _ | Inst.Auipc _ | Inst.Load _ | Inst.Store _ | Inst.Op _
        | Inst.Opi _ | Inst.C_nop | Inst.C_addi _ | Inst.C_li _ | Inst.C_mv _
        | Inst.C_add _ | Inst.C_ld _ | Inst.C_sd _ | Inst.C_slli _
        | Inst.C_lw _ | Inst.C_sw _ | Inst.C_lui _ | Inst.C_addiw _
        | Inst.C_andi _ | Inst.C_alu _ ->
            Tblock.Op op
        | _ -> Tblock.Op_self op

(* Fetch accounting for one instruction inside a fused closure: the run
   loop cannot interleave icache touches with the pair's effects, so fused
   units carry their own — ordering relative to faults then matches the
   step engine exactly (an instruction's lines are touched only once it is
   reached). *)
let touch_fetch t ipc sz =
  match t.icache with
  | None -> ()
  | Some ic ->
      let miss = t.costs.Costs.icache_miss in
      if not (Icache.access ic ipc) then t.cycles_extra <- t.cycles_extra + miss;
      if not (Icache.access ic (ipc + sz - 1)) then t.cycles_extra <- t.cycles_extra + miss

(* Peephole fusion over adjacent decoded pairs: both effects and both
   retirements stay exact. Like single-instruction closures, fused pairs
   write [t.pc] lazily: only a fault-capable second half sets its own pc
   (before the access, so a fault reports it with the first half already
   retired — indistinguishable from unfused execution). Only patterns whose
   intermediate values are computable at translation time are fused. *)
let fuse_pair t ~pc inst1 size1 inst2 size2 =
  if not t.superblocks then None
  else
    let pc2 = pc + size1 in
    match (inst1, inst2) with
    | Inst.Lui (rd, hi20), Inst.Opi (Inst.Addi, rd2, rs1, lo)
      when Reg.equal rs1 rd && Reg.equal rd2 rd ->
        (* li rd, imm32: the addi reads the lui result, so the final
           constant folds at translation time; both writes land on rd *)
        let v1 = Int64.of_int (hi20 lsl 12) in
        let v2 = Int64.add v1 (Int64.of_int lo) in
        Some
          (fun t ->
            touch_fetch t pc size1;
            set_reg t rd v1;
            retire_scalar t;
            touch_fetch t pc2 size2;
            set_reg t rd v2;
            retire_scalar t)
    | Inst.Auipc (rd, hi20), Inst.Opi (Inst.Addi, rd2, rs1, lo)
      when Reg.equal rs1 rd && Reg.equal rd2 rd ->
        (* la rd, sym: pc-relative address materialization *)
        let v1 = Int64.of_int (pc + (hi20 lsl 12)) in
        let v2 = Int64.add v1 (Int64.of_int lo) in
        Some
          (fun t ->
            touch_fetch t pc size1;
            set_reg t rd v1;
            retire_scalar t;
            touch_fetch t pc2 size2;
            set_reg t rd v2;
            retire_scalar t)
    | Inst.Auipc (rd, hi20), Inst.Load { width; unsigned; rd = rd2; rs1; imm }
      when Reg.equal rs1 rd && not (Reg.equal rd Reg.x0) ->
        (* pc-relative load: the effective address is static *)
        let v1 = Int64.of_int (pc + (hi20 lsl 12)) in
        let addr = addr_of (Int64.add v1 (Int64.of_int imm)) in
        Some
          (fun t ->
            touch_fetch t pc size1;
            set_reg t rd v1;
            retire_scalar t;
            touch_fetch t pc2 size2;
            t.pc <- pc2;
            set_reg t rd2 (load_value t.cur.vmem width unsigned addr);
            retire_scalar t)
    | ( Inst.Op (((Inst.Slt | Inst.Sltu) as op), rd, ra, rb),
        Inst.Branch (c, rs1, rs2, off) )
      when off > 0 && target_aligned t (pc2 + off) ->
        let target = pc2 + off in
        Some
          (fun t ->
            touch_fetch t pc size1;
            set_reg t rd (alu op (get_reg t ra) (get_reg t rb));
            retire_scalar t;
            touch_fetch t pc2 size2;
            if branch_taken c (get_reg t rs1) (get_reg t rs2) then begin
              t.pc <- target;
              retire_scalar t;
              raise_notrace Side_exit
            end
            else retire_scalar t)
    | ( Inst.Opi (((Inst.Slti | Inst.Sltiu) as op), rd, ra, imm),
        Inst.Branch (c, rs1, rs2, off) )
      when off > 0 && target_aligned t (pc2 + off) ->
        let target = pc2 + off in
        Some
          (fun t ->
            touch_fetch t pc size1;
            set_reg t rd (alui op (get_reg t ra) imm);
            retire_scalar t;
            touch_fetch t pc2 size2;
            if branch_taken c (get_reg t rs1) (get_reg t rs2) then begin
              t.pc <- target;
              retire_scalar t;
              raise_notrace Side_exit
            end
            else retire_scalar t)
    | _ -> None

let fuse_kind inst1 inst2 =
  match (inst1, inst2) with
  | Inst.Lui _, _ -> "lui_addi"
  | Inst.Auipc _, Inst.Opi _ -> "auipc_addi"
  | Inst.Auipc _, _ -> "auipc_ld"
  | _ -> "cmp_br"

let translate_block t entry =
  Tblock.translate ~gens:t.gens ~epoch:t.code_epoch ~isa:t.isa
    ~decode:(fun pc ->
      match decode_at t pc with
      | d -> Some d
      | exception Efault _ -> None
      | exception Memory.Violation _ -> None)
    ~compile:(fun ~pc inst size -> compile_op t ~pc inst size)
    ~fuse:(fun ~pc inst1 size1 inst2 size2 ->
      match fuse_pair t ~pc inst1 size1 inst2 size2 with
      | Some _ as r ->
          t.fused_pairs <- t.fused_pairs + 1;
          if !Obs.enabled then
            Obs.emit (Obs.Tb_fuse { pc; kind = fuse_kind inst1 inst2 });
          r
      | None -> None)
    entry

let block_at t =
  match Hashtbl.find_opt t.cur.blocks t.pc with
  | Some b when Tblock.revalidate t.gens ~isa:t.isa ~epoch:t.code_epoch b ->
      if !Obs.enabled then
        Obs.emit (Obs.Tb_hit { entry = t.pc; body = Tblock.body_length b });
      b
  | Some _ | None ->
      let b = translate_block t t.pc in
      Hashtbl.replace t.cur.blocks t.pc b;
      if !Obs.enabled then begin
        Obs.emit (Obs.Tb_compile { entry = t.pc; body = Tblock.body_length b });
        Obs.emit
          (Obs.Tb_superblock
             { entry = t.pc;
               insts = Tblock.body_length b;
               pages = Array.length b.Tblock.pages;
               jumps = b.Tblock.n_jumps;
               exits = b.Tblock.n_branches;
               fused = b.Tblock.n_fused })
      end;
      b

(* ------------------------------------------------------------------ *)
(* Run loops                                                           *)
(* ------------------------------------------------------------------ *)

let run_step ~handlers ~fuel t =
  let remaining = ref fuel in
  let result = ref None in
  while !result = None && !remaining > 0 do
    (match step ~handlers t with Some s -> result := Some s | None -> ());
    decr remaining
  done;
  match !result with Some s -> s | None -> Fuel_exhausted

(* Block-cached fast path: execute whole straight-line bodies between
   handler-visible events. Accounting (retired, cycles, icache) is done per
   instruction with the same ordering as [step], so both engines are
   observably identical — including mid-block faults, where the faulting
   instruction has consumed its fuel but not retired, and fuel exhaustion
   mid-block.

   Hot transfers are direct-chained: when a block completes normally, the
   next dispatch first tries the finished block's successor link (fall
   slot when the new pc is the fall-through, taken slot otherwise) and only
   falls back to the block-table probe — overwriting the link — when the
   guard fails. The guard is entry-pc equality, the one-compare epoch check,
   and same-view identity (a handler may have switched views mid-run, and
   links never cross views), so a chain hit proves exactly what a
   revalidated table hit proves. *)
let run_blocks ~handlers ~fuel t =
  let remaining = ref fuel in
  let result = ref None in
  let apply = function Resume pc -> t.pc <- pc | Stop s -> result := Some s in
  (* block that just completed normally (plus its view); cleared on any
     other path so faults/handler redirects re-enter through the table *)
  let prev = ref None in
  while !result = None && !remaining > 0 do
    let b =
      match !prev with
      | Some (pb, pv) when pv == t.cur -> (
          let pc = t.pc in
          let to_fall = pc = pb.Tblock.fall in
          match (if to_fall then pb.Tblock.link_fall else pb.Tblock.link_taken) with
          | Some nb
            when nb.Tblock.entry = pc && Tblock.epoch_current nb t.code_epoch ->
              t.chain_hits <- t.chain_hits + 1;
              if !Obs.enabled then
                Obs.emit
                  (Obs.Tb_hit { entry = pc; body = Tblock.body_length nb });
              nb
          | _ ->
              let nb = block_at t in
              if to_fall then Tblock.set_link_fall pb nb
              else Tblock.set_link_taken pb nb;
              if !Obs.enabled then
                Obs.emit (Obs.Tb_chain { src = pb.Tblock.entry; dst = pc });
              nb)
      | _ -> block_at t
    in
    let v0 = t.cur in
    prev := None;
    t.tb_dispatches <- t.tb_dispatches + 1;
    if Tblock.degenerate b then begin
      (* illegal, unsupported, or unmapped entry: the slow path raises the
         precise fault and routes it to the handlers *)
      (match step ~handlers t with Some s -> result := Some s | None -> ());
      decr remaining
    end
    else begin
      (* Profiling bracket: bind (or reuse) the block's cached row, mark it
         as the enclosing block for runtime-event attribution, and snapshot
         the counters the dispatch window will be charged against. All of
         it is skipped with one match when no profile is attached. *)
      let prow =
        match t.prof with
        | None -> None
        | Some p ->
            (* Reuse the option cached on the block: the steady-state
               profiled dispatch allocates nothing. *)
            let o =
              match b.Tblock.prow with
              | Some r as o
                when Profile.row_live p r
                     && Profile.row_describes r ~classes:b.Tblock.classes
                          ~term:b.Tblock.term_class ->
                  o
              | _ ->
                  let o =
                    Some
                      (Profile.bind p ~entry:b.Tblock.entry
                         ~classes:b.Tblock.classes ~term:b.Tblock.term_class)
                  in
                  Tblock.set_prow b o;
                  o
            in
            Profile.begin_dispatch p o;
            o
      in
      (* Body instructions retired are recovered from the retired-counter
         delta (every unit closure retires per covered instruction), so r0
         is snapshotted even without a profile — it is the fuel
         accountant. *)
      let r0 = t.retired in
      let c0 = if prow == None then 0 else cycles t in
      let mem0 = t.cur.vmem in
      let tlb0 = if prow == None then 0 else Memory.tlb_misses_live mem0 in
      let ic0 = if prow == None then 0 else icache_miss_count t in
      let ops = b.Tblock.ops in
      let nunits = Array.length ops in
      let starts = b.Tblock.starts in
      let ninsts = Array.unsafe_get starts nunits in
      let full = ninsts <= !remaining in
      let ulimit =
        if full then nunits
        else begin
          (* largest unit prefix whose instruction count fits the fuel; a
             fused unit cut in half by the limit is finished below via the
             slow path *)
          let m = ref 0 in
          while !m < nunits && Array.unsafe_get starts (!m + 1) <= !remaining do
            incr m
          done;
          !m
        end
      in
      let side = ref false in
      (* [u] survives the exception handlers: on a raise it holds the
         raising unit's index, on normal completion it equals [ulimit] —
         exactly the units whose auto-retired instructions must be
         credited below *)
      let u = ref 0 in
      let fault =
        try
          (match t.icache with
          | None ->
              while !u < ulimit do
                (Array.unsafe_get ops !u) t;
                incr u
              done
          | Some ic ->
              let pcs = b.Tblock.pcs and sizes = b.Tblock.sizes in
              let miss = t.costs.Costs.icache_miss in
              while !u < ulimit do
                let i = !u in
                let s = Array.unsafe_get starts i in
                (* fused units interleave their own fetch touches with the
                   pair's effects; single-instruction units are touched
                   here, in step-engine order *)
                if Array.unsafe_get starts (i + 1) = s + 1 then begin
                  let ipc = Array.unsafe_get pcs s
                  and sz = Array.unsafe_get sizes s in
                  if not (Icache.access ic ipc) then t.cycles_extra <- t.cycles_extra + miss;
                  if not (Icache.access ic (ipc + sz - 1)) then
                    t.cycles_extra <- t.cycles_extra + miss
                end;
                (Array.unsafe_get ops i) t;
                incr u
              done);
          None
        with
        | Side_exit ->
            side := true;
            None
        | Efault f -> Some f
        | Memory.Violation { addr; access } ->
            Some (Fault.Segfault { pc = t.pc; addr; access })
      in
      (* bulk-credit the completed units' auto-retired instructions: a
         raising unit (fault or side exit) is not in [0, u) and so only
         contributes whatever its closure retired itself *)
      t.retired <- t.retired + Array.unsafe_get b.Tblock.auto !u;
      let body_retired = t.retired - r0 in
      let term_tried = ref false in
      (match fault with
      | Some f ->
          (* the faulting instruction consumed fuel but did not retire *)
          remaining := !remaining - body_retired - 1;
          if !Obs.enabled then
            Obs.emit
              (Obs.Fault_raised { pc = Fault.pc f; cause = Fault.cause_name f });
          apply (handlers.on_fault t f)
      | None ->
          remaining := !remaining - body_retired;
          if !side then begin
            (* taken inlined branch: a normal completion — pc is already at
               the taken target, so the next iteration chains through the
               taken slot *)
            t.side_exits <- t.side_exits + 1;
            if !Obs.enabled then
              Obs.emit
                (Obs.Tb_side_exit { entry = b.Tblock.entry; target = t.pc });
            if t.chain then prev := Some (b, v0)
          end
          else if full then (
            (* closures write pc lazily (only fault-capable ones set their
               own); re-synchronize here — the terminator's pc, or the
               block's fall-through when there is none *)
            match b.Tblock.term with
            | Some (inst, size) when !remaining > 0 -> (
                match b.Tblock.term_fn with
                | Some f when t.icache = None ->
                    (* event-free terminator: the closure sets the final pc
                       and retires — no interpreter round trip (with the
                       icache on, fall through so fetch charges apply) *)
                    f t;
                    decr remaining;
                    if t.chain then prev := Some (b, v0)
                | _ ->
                    t.pc <- b.Tblock.fall - size;
                    term_tried := true;
                    (match step_decoded ~handlers t inst size with
                    | Some s -> result := Some s
                    | None -> if t.chain then prev := Some (b, v0));
                    decr remaining)
            | Some (_, size) -> t.pc <- b.Tblock.fall - size
            | None ->
                t.pc <- b.Tblock.fall;
                if t.chain then prev := Some (b, v0))
          else
            (* fuel-limited prefix: resume at the first unexecuted
               instruction *)
            t.pc <-
              Array.unsafe_get b.Tblock.pcs (Array.unsafe_get starts ulimit));
      (* Account the dispatch after the handlers ran: their cycle charges
         and runtime events belong to this block's window. *)
      (match (t.prof, prow) with
      | Some p, Some row ->
          let dretired = t.retired - r0 in
          (* an attempted terminator that did not retire can only have
             faulted — count it like the step engine does *)
          let faulted =
            Option.is_some fault || (!term_tried && dretired = body_retired)
          in
          Profile.block_dispatch p row ~executed:body_retired ~retired:dretired
            ~cycles:(cycles t - c0)
            ~tlb:(Memory.tlb_misses_live mem0 - tlb0)
            ~icache:(icache_miss_count t - ic0) ~fault:faulted ~target:t.pc
      | _ -> ());
      (* A fused pair split by the fuel limit leaves at most one unit of
         fuel unspent on this block; burn it through the slow path so fuel
         semantics stay bit-identical to the step engine. (Accounted after
         the block window: [step] attributes itself.) *)
      if
        fault = None && (not !side) && (not full) && !result = None
        && !remaining > 0
        && body_retired < ninsts
      then begin
        (match step ~handlers t with Some s -> result := Some s | None -> ());
        decr remaining
      end
    end
  done;
  match !result with Some s -> s | None -> Fuel_exhausted

(* Process-wide count of instructions retired by completed [run] calls:
   cheap (one atomic add per run, not per instruction), domain-safe, and
   enough for the bench harness to report simulated MIPS. *)
let observed = Atomic.make 0
let observed_retired () = Atomic.get observed
let reset_observed_retired () = Atomic.set observed 0

(* Chain and dispatch counters follow the same pattern: plain mutable ints
   on the hot path, folded into process-wide atomics once per [run]. *)
let g_chain_hits = Atomic.make 0
let g_dispatches = Atomic.make 0
let observed_chain () = (Atomic.get g_chain_hits, Atomic.get g_dispatches)

let reset_observed_chain () =
  Atomic.set g_chain_hits 0;
  Atomic.set g_dispatches 0

let g_side_exits = Atomic.make 0
let g_fused = Atomic.make 0
let observed_superblock () = (Atomic.get g_side_exits, Atomic.get g_fused)

let reset_observed_superblock () =
  Atomic.set g_side_exits 0;
  Atomic.set g_fused 0

let flush_run_stats t =
  if t.chain_hits <> 0 then begin
    ignore (Atomic.fetch_and_add g_chain_hits t.chain_hits);
    t.chain_hits <- 0
  end;
  if t.tb_dispatches <> 0 then begin
    ignore (Atomic.fetch_and_add g_dispatches t.tb_dispatches);
    t.tb_dispatches <- 0
  end;
  if t.side_exits <> 0 then begin
    ignore (Atomic.fetch_and_add g_side_exits t.side_exits);
    t.side_exits <- 0
  end;
  if t.fused_pairs <> 0 then begin
    ignore (Atomic.fetch_and_add g_fused t.fused_pairs);
    t.fused_pairs <- 0
  end;
  List.iter (fun v -> Memory.flush_tlb_stats v.vmem) t.views

let run ?(handlers = default_handlers) ~fuel t =
  let r0 = t.retired in
  let s =
    if t.block_engine then run_blocks ~handlers ~fuel t
    else run_step ~handlers ~fuel t
  in
  ignore (Atomic.fetch_and_add observed (t.retired - r0));
  flush_run_stats t;
  s

let set_block_engine t on = t.block_engine <- on
let block_engine t = t.block_engine
let set_block_chaining t on = t.chain <- on
let block_chaining t = t.chain
let set_superblocks t on = t.superblocks <- on
let superblocks t = t.superblocks
