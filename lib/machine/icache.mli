(** A direct-mapped instruction-cache model.

    The paper's residual CHBP overhead on real hardware is partly
    microarchitectural: trampolines split a hot region between the original
    text and a far target section, doubling its instruction-cache footprint.
    The simulator's default cost model charges nothing for that; enabling
    this model (see {!Machine.enable_icache}) makes it measurable. The
    default geometry is 512 sets of one 64-byte line (32 KiB), roughly an
    in-order core's L1i. *)

type t

val create : ?sets:int -> ?line:int -> unit -> t
(** [sets] and [line] must be powers of two. *)

val access : t -> int -> bool
(** [access t addr] is [true] on a hit; a miss fills the line. When tracing
    is enabled, a run of ≥ 8 consecutive misses is reported as one
    {!Obs.Icache_burst} event at the access that ends it. *)

val misses : t -> int
val accesses : t -> int
val flush : t -> unit
