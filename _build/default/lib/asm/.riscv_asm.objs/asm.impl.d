lib/asm/asm.ml: Binfile Bytes Codebuf Ext Inst Layout List Memory Printf Reg
