let default_jal_range = 1 lsl 20  (* ±1 MiB *)

type t = {
  orig : Binfile.t;
  bin : Binfile.t;
  trap_tbl : Fault_table.t;
  mutable trap_rebounds : int;
  mutable jal_rebounds : int;
}

let rewrite ?(jal_range = default_jal_range) (orig : Binfile.t) =
  let text = Binfile.text orig in
  let text_base = text.Binfile.sec_addr in
  let text_len = Bytes.length text.Binfile.sec_data in
  let reloc_base = Layout.page_align (text_base + text_len + 4096) in
  let delta = reloc_base - text_base in
  if reloc_base + text_len >= Layout.rodata_base then
    invalid_arg "Armore.rewrite: text too large for the relocation window";
  let reloc = Bytes.copy text.Binfile.sec_data in
  let tramp = Bytes.copy text.Binfile.sec_data in
  let trap_tbl = Fault_table.create () in
  let t =
    { orig;
      bin = orig;  (* replaced below *)
      trap_tbl;
      trap_rebounds = 0;
      jal_rebounds = 0 }
  in
  let jal_slot addr =
    let off = addr - text_base in
    if delta < jal_range then begin
      ignore (Encode.write tramp off (Inst.Jal (Reg.x0, delta)));
      t.jal_rebounds <- t.jal_rebounds + 1
    end
    else begin
      ignore (Encode.write tramp off Inst.Ebreak);
      Fault_table.add trap_tbl ~key:addr ~redirect:(addr + delta);
      t.trap_rebounds <- t.trap_rebounds + 1
    end
  in
  let trap_slot_c addr =
    (* 2-byte slot: c.j reaches only ±2 KiB, never the relocated copy *)
    ignore (Encode.write tramp (addr - text_base) Inst.C_ebreak);
    Fault_table.add trap_tbl ~key:addr ~redirect:(addr + delta);
    t.trap_rebounds <- t.trap_rebounds + 1
  in
  let in_text (i : Disasm.insn) =
    i.addr >= text_base && i.addr + i.size <= text_base + text_len
  in
  let dis = Disasm.of_binfile orig in
  Disasm.iter dis (fun (i : Disasm.insn) ->
      if in_text i then if i.size = 4 then jal_slot i.addr else trap_slot_c i.addr);
  (* Bytes recursive descent missed still get rebounds: ARMore's coverage
     does not depend on disassembly quality — every possible original-valid
     entry is patched (PIFER's per-slot patching). Without boundary
     knowledge, compressed binaries use 2-byte trap slots; uncompressed
     binaries can place full-width rebounds on the 4-byte grid. *)
  let covered = Bytes.make text_len '\000' in
  Disasm.iter dis (fun (i : Disasm.insn) ->
      if in_text i then Bytes.fill covered (i.addr - text_base) i.size '\001');
  let compressed = Ext.mem Ext.C orig.Binfile.isa in
  let stride = if compressed then 2 else 4 in
  let off = ref 0 in
  while !off + stride <= text_len do
    let free = ref true in
    for k = !off to !off + stride - 1 do
      if Bytes.get covered k <> '\000' then free := false
    done;
    if !free then begin
      if compressed then trap_slot_c (text_base + !off)
      else jal_slot (text_base + !off);
      off := !off + stride
    end
    else incr off
  done;
  let sections =
    List.map
      (fun (s : Binfile.section) ->
        if s.Binfile.sec_name = ".text" then { s with Binfile.sec_data = tramp } else s)
      orig.Binfile.sections
    @ [ { Binfile.sec_name = ".armore.text";
          sec_addr = reloc_base;
          sec_data = reloc;
          sec_perm = Memory.perm_rx } ]
  in
  let bin =
    { orig with
      Binfile.name = orig.Binfile.name ^ ".armore";
      entry = orig.Binfile.entry + delta;
      sections }
  in
  { t with bin }

let result t = t.bin
let trap_rebounds t = t.trap_rebounds
let jal_rebounds t = t.jal_rebounds

type runtime = {
  rw : t;
  costs : Costs.t;
  counters : Counters.t;
  mutable view : Memory.t option;
}

let runtime ?(costs = Costs.default) rw =
  { rw; costs; counters = Counters.create (); view = None }

let load rt =
  let mem = Loader.load rt.rw.bin in
  rt.view <- Some mem;
  mem

let counters rt = rt.counters

let handlers rt _m =
  let on_ebreak m ~pc ~size:_ =
    match Fault_table.find rt.rw.trap_tbl pc with
    | Some target ->
        Counters.trap_at rt.counters ~site:pc;
        if !Obs.enabled then Obs.emit (Obs.Trap_taken { site = pc; target });
        (match Machine.profile m with
        | Some p -> Profile.note_trap p
        | None -> ());
        Machine.charge m rt.costs.Costs.trap;
        Machine.Resume target
    | None ->
        Machine.Stop
          (Machine.Faulted (Fault.Illegal_instruction { pc; reason = "program ebreak" }))
  in
  { Machine.default_handlers with on_ebreak }

let run rt ?isa ~fuel m =
  let mem = match rt.view with None -> load rt | Some mem -> mem in
  Machine.switch_view m mem;
  (match isa with Some i -> Machine.set_isa m i | None -> ());
  Loader.init_machine m rt.rw.bin;
  Machine.run ~handlers:(handlers rt m) ~fuel m
