lib/core/mmview.mli: Chimera_system Costs Ext Machine
