examples/custom_isax_dsp.mli:
