(* Persistent translation cache, checked three ways:

   - a cold/warm property test: random branch- and jalr-dense programs run
     cold (recording, plan stored) then warm (plan seeded) under every
     engine — step, block, superblock, tiered — and must retire
     bit-identically: same stop, registers, pc, retired and cycle counts.
     The cache may only change how fast translations appear, never what
     executes;

   - an SMC case: a program whose code is patched mid-run stores its plan
     under the digest of the patched bytes, so a pristine reload's lookup
     digest misses and the program recompiles cold — stale plans are
     unreachable by construction, no invalidation protocol needed;

   - a corruption-tolerance test: every way of damaging an on-disk entry
     (truncation at several depths, magic/version skew, payload bit flips,
     a well-framed but unmarshalable payload) must surface as a clean
     [Error reason] plus a [cache_reject] observation, with the run falling
     back cold and still retiring bit-identically. *)

let base_isa = Ext.rv64gc

type snap = {
  sn_stop : Machine.stop;
  sn_regs : int64 list;
  sn_pc : int;
  sn_retired : int;
  sn_cycles : int;
}

let snapshot m stop =
  { sn_stop = stop;
    sn_regs = List.init 32 (fun i -> Machine.get_reg m (Reg.of_int i));
    sn_pc = Machine.pc m;
    sn_retired = Machine.retired m;
    sn_cycles = Machine.cycles m }

let pp_snap s =
  let stop =
    match s.sn_stop with
    | Machine.Exited c -> Printf.sprintf "exit %d" c
    | Machine.Faulted f -> Printf.sprintf "fault %s" (Fault.to_string f)
    | Machine.Fuel_exhausted -> "fuel"
  in
  Printf.sprintf "%s pc=%#x retired=%d cycles=%d" stop s.sn_pc s.sn_retired
    s.sn_cycles

(* --- random programs ---------------------------------------------------- *)

(* A loop mixing data-dependent branches (xorshift bits) with an indirect
   call through a four-entry function-pointer table: polymorphic call site
   plus effectively random branches, so superblock and tiered machines
   translate, promote and fill inline caches — all of which must round-trip
   through the plan. The xori is 4-byte-encodable so the SMC test can
   overwrite it in place. *)
let cache_program rng =
  let a = Asm.create ~name:"cachefuzz" () in
  Asm.func a "_start";
  let niter = 400 + Random.State.int rng 600 in
  Asm.li a Reg.t0 niter;
  Asm.li a Reg.t1 (0x2545F491 + Random.State.int rng 0x10000);
  Asm.li a Reg.s2 0;
  Asm.label a "Louter";
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "Ldone";
  let patch_off = Asm.here a in
  Asm.inst a (Inst.Opi (Inst.Xori, Reg.s2, Reg.s2, 0x55));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t4, Reg.t1, 13));
  Asm.inst a (Inst.Op (Inst.Xor, Reg.t1, Reg.t1, Reg.t4));
  Asm.inst a (Inst.Opi (Inst.Srli, Reg.t4, Reg.t1, 7));
  Asm.inst a (Inst.Op (Inst.Xor, Reg.t1, Reg.t1, Reg.t4));
  let nbr = 1 + Random.State.int rng 3 in
  for b = 1 to nbr do
    let l = Printf.sprintf "Lskip%d" b in
    Asm.inst a (Inst.Opi (Inst.Andi, Reg.t5, Reg.t1, 1 lsl b));
    Asm.branch_to a Inst.Beq Reg.t5 Reg.x0 l;
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, (2 * b) + 1));
    Asm.label a l
  done;
  Asm.inst a (Inst.Opi (Inst.Srli, Reg.t5, Reg.t1, 9));
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.t5, Reg.t5, 3));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t5, Reg.t5, 3));
  Asm.la a Reg.t4 "ktab";
  Asm.inst a (Inst.Op (Inst.Add, Reg.t4, Reg.t4, Reg.t5));
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t4; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t3, 0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.j a "Louter";
  Asm.label a "Ldone";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.s2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  for k = 0 to 3 do
    Asm.func a (Printf.sprintf "kern%d" k);
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, (3 * k) + 1));
    Asm.ret a
  done;
  Asm.rlabel a "ktab";
  for k = 0 to 3 do
    Asm.rword_label a (Printf.sprintf "kern%d" k)
  done;
  let bin = Asm.assemble a in
  (bin, (Binfile.symbol bin "_start").Binfile.sym_addr + patch_off)

let engine_setup mode m =
  match mode with
  | `Step -> Machine.set_block_engine m false
  | `Block -> Machine.set_superblocks m false
  | `Super -> ()
  | `Tiered ->
      Machine.set_tiered m true;
      Machine.set_inline_caches m true

let mode_name = function
  | `Step -> "step"
  | `Block -> "block"
  | `Super -> "super"
  | `Tiered -> "tiered"

(* fresh per-test cache directory under the system temp dir, removed at
   exit so manual runs outside the dune sandbox don't litter the cwd *)
let temp_cache =
  let n = ref 0 in
  let created = ref [] in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  at_exit (fun () ->
      List.iter (fun d -> try rm_rf d with Sys_error _ -> ()) !created);
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "chimera-cache-test-%d-%d" (Unix.getpid ()) !n)
    in
    created := dir :: !created;
    Cache.open_dir dir

let machine_for bin mode =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:base_isa () in
  engine_setup mode m;
  Loader.init_machine m bin;
  Machine.set_record m true;
  m

(* --- cold/warm property ------------------------------------------------- *)

let prop_cold_warm =
  QCheck.Test.make
    ~name:"cache: cold-then-warm bit-identical across step/block/super/tiered"
    ~count:8
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let bin, _ = cache_program (Random.State.make [| seed |]) in
      let c = temp_cache () in
      List.for_all
        (fun mode ->
          let extra = mode_name mode in
          let cold =
            let m = machine_for bin mode in
            let stop = Machine.run ~fuel:5_000_000 m in
            let key = Cache.digest_mem (Machine.mem m) ~isa:base_isa ~extra in
            Cache.store_plan c ~key m;
            snapshot m stop
          in
          let m = machine_for bin mode in
          let key = Cache.digest_mem (Machine.mem m) ~isa:base_isa ~extra in
          (match Cache.seed_plan c ~key m with
          | Ok n ->
              (* every translating engine must actually go warm *)
              if mode <> `Step && n = 0 then
                QCheck.Test.fail_reportf "%s: plan hit seeded no blocks" extra
          | Error r ->
              QCheck.Test.fail_reportf "%s: warm lookup missed (%s)" extra r);
          let warm = snapshot m (Machine.run ~fuel:5_000_000 m) in
          if cold <> warm then
            QCheck.Test.fail_reportf "seed=%d %s: cold { %s } <> warm { %s }"
              seed extra (pp_snap cold) (pp_snap warm)
          else true)
        [ `Step; `Block; `Super; `Tiered ])

(* --- self-modifying code ------------------------------------------------ *)

(* The recorded run patches its own code mid-flight; its plan is stored
   under the digest of the patched bytes. A pristine reload digests the
   original bytes, so the lookup must miss and the machine recompiles cold
   — yet both sessions, applying the same patch at the same point, retire
   bit-identically. *)
let test_smc_unreachable () =
  let bin, patch_addr = cache_program (Random.State.make [| 42 |]) in
  let c = temp_cache () in
  let patched = Bytes.create 4 in
  ignore (Encode.write patched 0 (Inst.Opi (Inst.Xori, Reg.s2, Reg.s2, 0xAA)));
  let session () =
    let m = machine_for bin `Tiered in
    let mem = Machine.mem m in
    let stop1 = Machine.run ~fuel:5_000 m in
    Alcotest.(check bool) "phase 1 ran out of fuel" true (stop1 = Machine.Fuel_exhausted);
    Memory.poke_bytes mem patch_addr patched;
    Machine.invalidate_code m ~addr:patch_addr ~len:4;
    let stop = Machine.run ~fuel:5_000_000 m in
    (m, snapshot m stop)
  in
  (* recorded session: store under the post-patch digest *)
  let m1, cold = session () in
  let store_key =
    Cache.digest_mem (Machine.mem m1) ~isa:base_isa ~extra:"smc"
  in
  Cache.store_plan c ~key:store_key m1;
  (* pristine reload: the lookup digest differs, so seeding must miss *)
  let m2 = machine_for bin `Tiered in
  let lookup_key =
    Cache.digest_mem (Machine.mem m2) ~isa:base_isa ~extra:"smc"
  in
  Alcotest.(check bool) "SMC changed the content digest" true
    (store_key <> lookup_key);
  (match Cache.seed_plan c ~key:lookup_key m2 with
  | Error "miss" -> ()
  | Error r -> Alcotest.failf "expected a plain miss, got %s" r
  | Ok n -> Alcotest.failf "stale plan seeded %d blocks" n);
  (* the machine recompiles cold and, patched identically, retires
     identically *)
  let _, again = session () in
  Alcotest.(check bool)
    (Printf.sprintf "cold { %s } = recompiled { %s }" (pp_snap cold)
       (pp_snap again))
    true (cold = again)

(* --- corruption tolerance ----------------------------------------------- *)

let with_captured_events f =
  let evs = ref [] in
  Obs.enable ~sink:(fun arr len ->
      for i = 0 to len - 1 do
        evs := arr.(i) :: !evs
      done);
  let r = Fun.protect ~finally:Obs.disable f in
  (r, List.rev !evs)

let reject_reasons evs =
  List.filter_map
    (function Obs.Cache_reject { reason; _ } -> Some reason | _ -> None)
    evs

(* container layout constants (Container doc): magic 8, version 4, length 8 *)
let mutations =
  [ ("truncate-header", "truncated",
     fun b -> Bytes.sub b 0 (min 10 (Bytes.length b)));
    ("truncate-payload", "truncated",
     fun b -> Bytes.sub b 0 (Bytes.length b - (Bytes.length b / 3)));
    ("flip-magic", "magic",
     fun b ->
       let b = Bytes.copy b in
       Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
       b);
    ("bump-version", "version",
     fun b ->
       let b = Bytes.copy b in
       Bytes.set_int32_be b 8 (Int32.add (Bytes.get_int32_be b 8) 1l);
       b);
    ("flip-payload-bit", "checksum",
     fun b ->
       let b = Bytes.copy b in
       let i = 20 + ((Bytes.length b - 40) / 2) in
       Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
       b);
    ("unmarshalable-payload", "decode",
     fun b ->
       (* keep the frame honest — recompute length and checksum over a
          garbage payload — so only Marshal itself can object *)
       let payload = Bytes.make 32 'x' in
       let out = Bytes.create (20 + Bytes.length payload + 16) in
       Bytes.blit b 0 out 0 12;
       Bytes.set_int64_be out 12 (Int64.of_int (Bytes.length payload));
       Bytes.blit payload 0 out 20 (Bytes.length payload);
       let digest = Digest.subbytes out 0 (20 + Bytes.length payload) in
       Bytes.blit_string digest 0 out (20 + Bytes.length payload) 16;
       out) ]

let test_corruption_falls_back_cold () =
  let bin, _ = cache_program (Random.State.make [| 7 |]) in
  let c = temp_cache () in
  let extra = "fuzz" in
  let cold =
    let m = machine_for bin `Super in
    let stop = Machine.run ~fuel:5_000_000 m in
    let key = Cache.digest_mem (Machine.mem m) ~isa:base_isa ~extra in
    Cache.store_plan c ~key m;
    snapshot m stop
  in
  let key =
    Cache.digest_mem (Loader.load bin) ~isa:base_isa ~extra
  in
  let path = Filename.concat (Cache.dir c) (key ^ ".plan") in
  let pristine =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let b = Bytes.create (in_channel_length ic) in
        really_input ic b 0 (Bytes.length b);
        b)
  in
  (* sanity: the pristine entry seeds *)
  (let m = machine_for bin `Super in
   match Cache.seed_plan c ~key m with
   | Ok n -> Alcotest.(check bool) "pristine entry seeds blocks" true (n > 0)
   | Error r -> Alcotest.failf "pristine entry rejected: %s" r);
  List.iter
    (fun (name, expected, mutate) ->
      let oc = open_out_bin path in
      output_bytes oc (mutate pristine);
      close_out oc;
      let m = machine_for bin `Super in
      let result, evs =
        with_captured_events (fun () -> Cache.seed_plan c ~key m)
      in
      (match result with
      | Error r ->
          Alcotest.(check string) (name ^ ": reject reason") expected r
      | Ok n -> Alcotest.failf "%s: corrupt entry seeded %d blocks" name n);
      (match reject_reasons evs with
      | [ r ] -> Alcotest.(check string) (name ^ ": cache_reject event") expected r
      | rs ->
          Alcotest.failf "%s: expected one cache_reject, saw %d" name
            (List.length rs));
      (* the load failed; the run itself must fall back cold, bit-identical *)
      let warm = snapshot m (Machine.run ~fuel:5_000_000 m) in
      if cold <> warm then
        Alcotest.failf "%s: cold { %s } <> fallback { %s }" name (pp_snap cold)
          (pp_snap warm))
    mutations;
  (* restore and confirm the directory still serves hits *)
  let oc = open_out_bin path in
  output_bytes oc pristine;
  close_out oc;
  let m = machine_for bin `Super in
  match Cache.seed_plan c ~key m with
  | Ok _ -> ignore (Cache.clear c)
  | Error r -> Alcotest.failf "restored entry rejected: %s" r

let () =
  Alcotest.run "chimera_cache"
    [ ( "cold-warm",
        [ QCheck_alcotest.to_alcotest prop_cold_warm ] );
      ( "smc",
        [ Alcotest.test_case "stale plans unreachable after SMC" `Quick
            test_smc_unreachable ] );
      ( "corruption",
        [ Alcotest.test_case "every damage mode falls back cold" `Quick
            test_corruption_falls_back_cold ] ) ]
