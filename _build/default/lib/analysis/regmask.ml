type t = int

let empty = 0
let all = 0xFFFFFFFE  (* x0 is never tracked *)
let singleton r = if Reg.equal r Reg.x0 then 0 else 1 lsl Reg.to_int r
let of_list rs = List.fold_left (fun acc r -> acc lor singleton r) 0 rs
let mem r m = m land singleton r <> 0 && not (Reg.equal r Reg.x0)
let add r m = m lor singleton r
let union = ( lor )
let diff a b = a land lnot b
let to_list m = List.filter (fun r -> mem r m) Reg.all
let caller_saved = of_list Reg.caller_saved
let arg_regs = of_list [ Reg.a0; Reg.a1; Reg.a2; Reg.a3; Reg.a4; Reg.a5; Reg.a6; Reg.a7 ]

let pp fmt m =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map Reg.name (to_list m)))
