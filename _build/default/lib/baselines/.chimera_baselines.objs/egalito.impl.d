lib/baselines/egalito.ml: Loader Machine Safer
