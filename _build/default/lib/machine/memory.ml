type perm = { r : bool; w : bool; x : bool }

let perm_none = { r = false; w = false; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rw = { r = true; w = true; x = false }
let perm_rx = { r = true; w = false; x = true }
let perm_rwx = { r = true; w = true; x = true }

let pp_perm fmt p =
  Format.fprintf fmt "%c%c%c"
    (if p.r then 'r' else '-')
    (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

exception Violation of { addr : int; access : Fault.access }

let page_size = 4096
let page_bits = 12

type page = { data : bytes; mutable perm : perm }
type t = { pages : (int, page) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let page_index addr = addr lsr page_bits
let page_offset addr = addr land (page_size - 1)

let map t ~addr ~len perm =
  if len <= 0 then invalid_arg "Memory.map: non-positive length";
  for idx = page_index addr to page_index (addr + len - 1) do
    if Hashtbl.mem t.pages idx then
      invalid_arg
        (Printf.sprintf "Memory.map: page 0x%x already mapped" (idx lsl page_bits));
    Hashtbl.replace t.pages idx { data = Bytes.make page_size '\000'; perm }
  done

let set_perm t ~addr ~len perm =
  for idx = page_index addr to page_index (addr + len - 1) do
    match Hashtbl.find_opt t.pages idx with
    | Some p -> p.perm <- perm
    | None ->
        invalid_arg
          (Printf.sprintf "Memory.set_perm: page 0x%x unmapped" (idx lsl page_bits))
  done

let perm_at t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | Some p -> Some p.perm
  | None -> None

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let share_range ~from ~into ~addr ~len =
  for idx = page_index addr to page_index (addr + len - 1) do
    match Hashtbl.find_opt from.pages idx with
    | None ->
        invalid_arg
          (Printf.sprintf "Memory.share_range: source page 0x%x unmapped"
             (idx lsl page_bits))
    | Some p ->
        if Hashtbl.mem into.pages idx then
          invalid_arg
            (Printf.sprintf "Memory.share_range: destination page 0x%x mapped"
               (idx lsl page_bits));
        Hashtbl.replace into.pages idx p
  done

let violate addr access = raise (Violation { addr; access })

let checked_page t addr access =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> violate addr access
  | Some p ->
      let ok =
        match access with
        | Fault.Read -> p.perm.r
        | Fault.Write -> p.perm.w
        | Fault.Execute -> p.perm.x
      in
      if ok then p else violate addr access

let unchecked_page t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None ->
      (* Kernel accessors allocate on demand so loaders can poke anywhere. *)
      let p = { data = Bytes.make page_size '\000'; perm = perm_none } in
      Hashtbl.replace t.pages (page_index addr) p;
      p

  | Some p -> p

(* Fast path: access within one page; slow path crosses a boundary. *)

let load_u8 t addr =
  let p = checked_page t addr Fault.Read in
  Bytes.get_uint8 p.data (page_offset addr)

let rec load_multi t addr n access =
  (* Little-endian read of n bytes, possibly across pages. *)
  if n = 0 then 0L
  else
    let p = checked_page t addr access in
    let b = Bytes.get_uint8 p.data (page_offset addr) in
    Int64.logor (Int64.of_int b) (Int64.shift_left (load_multi t (addr + 1) (n - 1) access) 8)

let load_u16 t addr =
  let off = page_offset addr in
  if off + 2 <= page_size then
    let p = checked_page t addr Fault.Read in
    Bytes.get_uint16_le p.data off
  else Int64.to_int (load_multi t addr 2 Fault.Read)

let load_u32 t addr =
  let off = page_offset addr in
  if off + 4 <= page_size then
    let p = checked_page t addr Fault.Read in
    Int32.to_int (Bytes.get_int32_le p.data off) land 0xFFFFFFFF
  else Int64.to_int (load_multi t addr 4 Fault.Read)

let load_u64 t addr =
  let off = page_offset addr in
  if off + 8 <= page_size then
    let p = checked_page t addr Fault.Read in
    Bytes.get_int64_le p.data off
  else load_multi t addr 8 Fault.Read

let store_u8 t addr v =
  let p = checked_page t addr Fault.Write in
  Bytes.set_uint8 p.data (page_offset addr) (v land 0xFF)

let rec store_multi t addr n v =
  if n > 0 then begin
    let p = checked_page t addr Fault.Write in
    Bytes.set_uint8 p.data (page_offset addr) (Int64.to_int v land 0xFF);
    store_multi t (addr + 1) (n - 1) (Int64.shift_right_logical v 8)
  end

let store_u16 t addr v =
  let off = page_offset addr in
  if off + 2 <= page_size then
    let p = checked_page t addr Fault.Write in
    Bytes.set_uint16_le p.data off (v land 0xFFFF)
  else store_multi t addr 2 (Int64.of_int v)

let store_u32 t addr v =
  let off = page_offset addr in
  if off + 4 <= page_size then
    let p = checked_page t addr Fault.Write in
    Bytes.set_int32_le p.data off (Int32.of_int v)
  else store_multi t addr 4 (Int64.of_int v)

let store_u64 t addr v =
  let off = page_offset addr in
  if off + 8 <= page_size then
    let p = checked_page t addr Fault.Write in
    Bytes.set_int64_le p.data off v
  else store_multi t addr 8 v

let fetch_u16 t addr =
  let off = page_offset addr in
  if off + 2 <= page_size then
    let p = checked_page t addr Fault.Execute in
    Bytes.get_uint16_le p.data off
  else Int64.to_int (load_multi t addr 2 Fault.Execute)

let peek_u8 t addr = Bytes.get_uint8 (unchecked_page t addr).data (page_offset addr)

let peek_u16 t addr = peek_u8 t addr lor (peek_u8 t (addr + 1) lsl 8)

let peek_u32 t addr = peek_u16 t addr lor (peek_u16 t (addr + 2) lsl 16)

let peek_u64 t addr =
  Int64.logor
    (Int64.of_int (peek_u32 t addr))
    (Int64.shift_left (Int64.of_int (peek_u32 t (addr + 4))) 32)

let poke_u8 t addr v =
  Bytes.set_uint8 (unchecked_page t addr).data (page_offset addr) (v land 0xFF)

let poke_u16 t addr v =
  poke_u8 t addr v;
  poke_u8 t (addr + 1) (v lsr 8)

let poke_u32 t addr v =
  poke_u16 t addr v;
  poke_u16 t (addr + 2) (v lsr 16)

let poke_u64 t addr v =
  poke_u32 t addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  poke_u32 t (addr + 4) (Int64.to_int (Int64.shift_right_logical v 32))

let poke_bytes t addr b =
  Bytes.iteri (fun i c -> poke_u8 t (addr + i) (Char.code c)) b

let peek_bytes t addr len = Bytes.init len (fun i -> Char.chr (peek_u8 t (addr + i)))

let mapped_ranges t =
  let idxs = Hashtbl.fold (fun idx _ acc -> idx :: acc) t.pages [] in
  let idxs = List.sort_uniq compare idxs in
  let rec runs = function
    | [] -> []
    | idx :: rest ->
        let rec extend last = function
          | next :: rest' when next = last + 1 -> extend next rest'
          | rest' -> (last, rest')
        in
        let last, rest' = extend idx rest in
        (idx lsl page_bits, (last - idx + 1) * page_size) :: runs rest'
  in
  runs idxs
