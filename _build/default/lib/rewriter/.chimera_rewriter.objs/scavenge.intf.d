lib/rewriter/scavenge.mli: Codebuf Reg Regmask
