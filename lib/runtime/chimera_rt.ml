let m_faults_recovered =
  Metrics.counter ~help:"Faults redirected via the fault table"
    "chimera_faults_recovered_total"

let m_traps =
  Metrics.counter ~help:"Ebreak traps redirected via the trap table"
    "chimera_traps_total"

type t = {
  ctx : Chbp.t;
  bin : Binfile.t;  (* rewritten *)
  costs : Costs.t;
  counters : Counters.t;
  mutable views : Memory.t list;
  mutable machines : Machine.t list;  (* for decode-cache invalidation *)
}

let create ?(costs = Costs.default) ctx =
  { ctx;
    bin = Chbp.result ctx;
    costs;
    counters = Counters.create ();
    views = [];
    machines = [] }

let load t =
  let mem = Loader.load t.bin in
  t.views <- mem :: t.views;
  mem

let counters t = t.counters
let rewritten t = t.bin
let chbp t = t.ctx

let note_machine t m =
  if not (List.memq m t.machines) then t.machines <- m :: t.machines

let apply_patch t mem = function
  | Chbp.Patch_code { addr; bytes } ->
      Memory.poke_bytes mem addr bytes;
      List.iter
        (fun m -> Machine.invalidate_code m ~addr ~len:(Bytes.length bytes))
        t.machines
  | Chbp.Patch_section { addr; bytes } ->
      (* map any missing pages, fill, and mark executable *)
      let len = Bytes.length bytes in
      let page = 4096 in
      let first = addr / page and last = (addr + len - 1) / page in
      for p = first to last do
        if not (Memory.is_mapped mem (p * page)) then
          Memory.map mem ~addr:(p * page) ~len:page Memory.perm_rx
      done;
      Memory.poke_bytes mem addr bytes;
      Memory.set_perm mem ~addr ~len Memory.perm_rx

(* The original (pre-rewrite) image, for deciding whether a faulting address
   held a recognizable extension instruction. *)
let original_inst t addr =
  let orig = Chbp.original t.ctx in
  let sec =
    List.find_opt (fun s -> Binfile.in_section s addr) (Binfile.code_sections orig)
  in
  match sec with
  | None -> None
  | Some s ->
      let off = addr - s.Binfile.sec_addr in
      let len = Bytes.length s.Binfile.sec_data in
      if off + 2 > len then None
      else
        let lo = Bytes.get_uint16_le s.Binfile.sec_data off in
        let hi =
          if off + 4 <= len then Bytes.get_uint16_le s.Binfile.sec_data (off + 2) else 0
        in
        (match Decode.decode ~lo ~hi with
        | Decode.Ok (inst, _) -> Some inst
        | Decode.Illegal _ -> None)

let lazy_rewrite t m pc =
  match original_inst t pc with
  | Some inst when Ext.required inst <> None && not (Ext.supports (Machine.isa m) inst)
    ->
      Counters.lazy_at t.counters ~site:pc;
      Machine.charge m t.costs.Costs.lazy_rewrite;
      let patches = Chbp.extend t.ctx ~root:pc in
      if !Obs.enabled then
        Obs.emit (Obs.Lazy_discovered { root = pc; patches = List.length patches });
      List.iter (fun mem -> List.iter (apply_patch t mem) patches) t.views;
      (* the site at pc is now a trampoline (or trap); re-execute it *)
      if patches = [] then None else Some pc
  | Some _ | None -> None

let handlers t =
  let table = Chbp.fault_table t.ctx in
  let traps = Chbp.trap_table t.ctx in
  let gp_value = Chbp.gp_value t.ctx in
  let recover m ~site ~cause redirect =
    Counters.fault_at t.counters ~site;
    if !Metrics.enabled then Metrics.incr m_faults_recovered;
    if !Obs.enabled then Obs.emit (Obs.Fault_recovered { site; redirect; cause });
    (match Machine.profile m with
    | Some p -> Profile.note_recovered p
    | None -> ());
    Machine.charge m t.costs.Costs.fault_recovery;
    Machine.set_reg m Reg.gp (Int64.of_int gp_value);
    Machine.Resume redirect
  in
  let greg_sites = Chbp.greg_sites t.ctx in
  let on_fault m fault =
    note_machine t m;
    match fault with
    | Fault.Segfault { access = Fault.Execute; _ } -> (
        (* potential partial SMILE execution: the jalr stored pc+4 in gp *)
        let site = Int64.to_int (Machine.get_reg m Reg.gp) - 4 in
        match Fault_table.find table site with
        | Some redirect -> recover m ~site ~cause:"sigsegv" redirect
        | None -> (
            (* general-register SMILE (paper Fig. 5): find the site whose
               link register carries its jalr's return address *)
            match
              List.find_opt
                (fun (jaddr, r) ->
                  Int64.equal (Machine.get_reg m r) (Int64.of_int (jaddr + 4)))
                greg_sites
            with
            | Some (jaddr, r) -> (
                match Fault_table.find table jaddr with
                | Some redirect ->
                    Counters.fault_at t.counters ~site:jaddr;
                    if !Metrics.enabled then Metrics.incr m_faults_recovered;
                    if !Obs.enabled then
                      Obs.emit
                        (Obs.Fault_recovered
                           { site = jaddr; redirect; cause = "sigsegv" });
                    (match Machine.profile m with
                    | Some p -> Profile.note_recovered p
                    | None -> ());
                    Machine.charge m t.costs.Costs.fault_recovery;
                    (* restore the register to the value the preceding lui
                       established (the only statically known valid value) *)
                    (match original_inst t (jaddr - 4) with
                    | Some (Inst.Lui (_, hi)) ->
                        Machine.set_reg m r (Int64.of_int (hi lsl 12))
                    | Some _ | None -> ());
                    Machine.Resume redirect
                | None -> Machine.Stop (Machine.Faulted fault))
            | None -> Machine.Stop (Machine.Faulted fault)))
    | Fault.Illegal_instruction { pc; _ } -> (
        match Fault_table.find table pc with
        | Some redirect -> recover m ~site:pc ~cause:"sigill" redirect
        | None -> (
            match lazy_rewrite t m pc with
            | Some resume -> Machine.Resume resume
            | None -> Machine.Stop (Machine.Faulted fault)))
    | Fault.Segfault _ | Fault.Misaligned_fetch _ ->
        Machine.Stop (Machine.Faulted fault)
  in
  let on_ebreak m ~pc ~size:_ =
    note_machine t m;
    match Fault_table.find traps pc with
    | Some target ->
        Counters.trap_at t.counters ~site:pc;
        if !Metrics.enabled then Metrics.incr m_traps;
        if !Obs.enabled then Obs.emit (Obs.Trap_taken { site = pc; target });
        (match Machine.profile m with
        | Some p -> Profile.note_trap p
        | None -> ());
        Machine.charge m t.costs.Costs.trap;
        Machine.Resume target
    | None ->
        Machine.Stop
          (Machine.Faulted (Fault.Illegal_instruction { pc; reason = "program ebreak" }))
  in
  { Machine.default_handlers with on_fault; on_ebreak }

let run t ?isa ~fuel m =
  let mem = match t.views with [] -> load t | mem :: _ -> mem in
  Machine.switch_view m mem;
  note_machine t m;
  (match isa with Some i -> Machine.set_isa m i | None -> ());
  Loader.init_machine m t.bin;
  Machine.run ~handlers:(handlers t) ~fuel m
