(** Address-space layout conventions of the simulated system.

    All binaries follow one fixed layout (like a linker script): text low,
    data high with the gp anchor in its first page, stack below 256 MiB, and
    everything under 2 GiB so that [lui]/[addi] pairs can materialize any
    address. The rewriters add their own sections above [rewriter_base]. *)

val text_base : int
(** 0x0001_0000: start of .text. Up to ~64 MiB of code fits below rodata. *)

val rodata_base : int
(** 0x0480_0000: read-only data (jump tables, constants). *)

val data_base : int
(** 0x0800_0000: read-write data. *)

val gp_value : int
(** [data_base + 0x800]: the ABI global pointer. It points into the
    read-write, non-executable data segment — the property the SMILE
    trampoline turns into deterministic segfaults. *)

val stack_top : int
(** 0x0FF0_0000: initial stack pointer (stack grows down). *)

val stack_size : int
(** 1 MiB of mapped stack. *)

val safer_base : int
(** 0x0200_0000: where the Safer baseline places regenerated text — disjoint
    from the original text range so stale (pre-rewrite) code pointers are
    distinguishable from regenerated ones. *)

val rewriter_base : int
(** 0x1000_0000: lowest address rewriters may place generated sections at. *)

val armore_reloc_base : int
(** 0x2000_0000: where the ARMore baseline relocates the text section. *)

val page_align : int -> int
(** Round up to the next page boundary. *)
