type t = int

let of_int n =
  if n < 0 || n > 31 then invalid_arg (Printf.sprintf "Reg.of_int: %d" n);
  n

let to_int r = r
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (r : t) = r

let names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1";
     "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |]

let name r = names.(r)
let pp fmt r = Format.pp_print_string fmt (name r)
let x0 = 0
let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let t0 = 5
let t1 = 6
let t2 = 7
let s0 = 8
let fp = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let s8 = 24
let s9 = 25
let s10 = 26
let s11 = 27
let t3 = 28
let t4 = 29
let t5 = 30
let t6 = 31
let all = List.init 32 (fun i -> i)

let caller_saved =
  [ ra; t0; t1; t2; a0; a1; a2; a3; a4; a5; a6; a7; t3; t4; t5; t6 ]

let callee_saved = [ sp; s0; s1; s2; s3; s4; s5; s6; s7; s8; s9; s10; s11 ]
let temporaries = [ t6; t5; t4; t3; t2; t1; t0 ]

type v = int

let v_of_int n =
  if n < 0 || n > 31 then invalid_arg (Printf.sprintf "Reg.v_of_int: %d" n);
  n

let v_to_int v = v
let v_equal (a : v) (b : v) = a = b
let v_name v = Printf.sprintf "v%d" v
let pp_v fmt v = Format.pp_print_string fmt (v_name v)
let all_v = List.init 32 (fun i -> i)
