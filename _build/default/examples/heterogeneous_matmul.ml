(* Heterogeneous scheduling of mixed matrix/integer workloads — the paper's
   §6.1 scenario as a library user would script it.

     dune exec examples/heterogeneous_matmul.exe

   1000 tasks (60% RVV matrix multiplications, 40% Fibonacci) run on an
   8-core ISAX processor (4 base + 4 extension cores) with work stealing,
   under FAM, Safer, MELF and Chimera. *)

let () =
  Format.printf "Measuring per-task costs on the simulator...@.";
  let costs = Mixgen.costs () in
  Format.printf "%a@.@." Mixgen.pp_costs costs;
  let share = 60 and n_tasks = 1000 in
  Format.printf
    "Scheduling %d tasks (%d%% extension) on 4 base + 4 extension cores:@.@."
    n_tasks share;
  Format.printf "%-10s %14s %14s %12s %11s@." "system" "cpu [Mcyc]" "latency [Mcyc]"
    "accelerated" "migrations";
  List.iter
    (fun version ->
      Format.printf "-- %s version --@." (Mixgen.version_name version);
      List.iter
        (fun sys ->
          let tasks = Mixgen.tasks costs sys version ~share_pct:share ~n_tasks in
          let r = Sched.run Sched.default_config tasks in
          Format.printf "%-10s %14.2f %14.2f %11d%% %11d@."
            (Mixgen.system_name sys)
            (float_of_int r.Sched.cpu_time /. 1e6)
            (float_of_int r.Sched.latency /. 1e6)
            (100 * r.Sched.tasks_accelerated / max 1 (n_tasks * share / 100))
            r.Sched.migrations)
        Mixgen.systems)
    [ Mixgen.Vext; Mixgen.Vbase ];
  Format.printf
    "@.Note how FAM migrates every stolen matrix task back (extension version)@.\
     and cannot accelerate at all in the base version, while Chimera tracks MELF.@."
