(** Always-on metrics: sharded counters, gauges and log-linear histograms
    with snapshot-time merge, Prometheus/JSON exposition and a health
    watchdog.

    Where `lib/obs` answers "what happened, in order" (a typed event
    stream, single-domain, post-mortem), this module answers "what is the
    process doing right now" — live rates, latency distributions and
    health signals cheap enough to leave enabled in production and safe
    under [-j N], which [--trace] is not.

    {b Cost model.} Recording is off by default and every emission site is
    guarded by a single load-and-branch on {!enabled}
    ([if !Metrics.enabled then Metrics.incr c]) — the same discipline as
    [Obs.enabled], verified by the bench regression gate. When on, a
    counter bump is a domain-local array increment: no lock, no allocation,
    no atomic. Histogram recording is one array increment into a fixed
    log-linear bucket layout (HDR-style); quantiles cost nothing until
    {!Snapshot.take}.

    {b Concurrency.} Each domain records into its own shard
    (domain-local storage); shards are merged by addition at snapshot
    time. Addition is commutative and associative, so — exactly like
    [Counters.add] — aggregation is deterministic and independent of both
    domain count and merge order ([test/test_metrics.ml] runs the same
    workload on 1 and on 4 domains and asserts identical snapshots).
    A snapshot taken while other domains are still recording is a
    consistent sum of slightly-stale shard views; taken after
    [Domain.join] it is exact.

    {b Identity.} Metrics are registered by name (conventionally
    [chimera_<what>_total] for counters, Prometheus style) at module-init
    time; registering an existing name returns the existing metric. *)

val enabled : bool ref
(** The one-branch guard. Emission sites must read it before touching a
    metric: [if !Metrics.enabled then Metrics.add c n]. Use
    {!enable}/{!disable} rather than setting it directly. *)

val enable : unit -> unit
(** Turn recording on. Does not clear accumulated values — call {!reset}
    for a fresh window. *)

val disable : unit -> unit

val reset : unit -> unit
(** Zero every shard of every metric. Call only between parallel sections
    (no domain may be recording concurrently); the bench driver resets at
    the same points it resets the machine's observed counters, which keeps
    the snapshot totals equal to them. *)

(** {1 Metric kinds} *)

type counter
(** Monotonic within a reset window. *)

type gauge
(** A level, maintained by [+delta]/[-delta] — merging shards by summing
    deltas is order-independent, unlike last-write-wins. *)

type histogram
(** Log-linear buckets: exact for values in [0, 16), then 16 sub-buckets
    per power of two, so relative bucket width is bounded by 1/16 and a
    quantile read off the bucket midpoint is within one bucket width of
    the exact sample ([test_metrics.ml] property-tests the bound). *)

val counter : ?help:string -> string -> counter
val gauge : ?help:string -> string -> gauge
val histogram : ?help:string -> string -> histogram
(** Register (or look up) a metric by name. A name may only be registered
    under one kind; [Invalid_argument] otherwise. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Negative amounts are rejected with [Invalid_argument] (counters are
    monotonic); [add c 0] is a no-op. *)

val gauge_add : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Record one sample. Negative samples clamp to bucket 0. *)

(** {1 Bucket layout} (exposed for tests and external readers) *)

module Buckets : sig
  val count : int
  (** Total number of buckets. *)

  val index : int -> int
  (** The bucket a sample lands in. *)

  val lo : int -> int
  val hi : int -> int
  (** Bucket [i] covers [\[lo i, hi i)]; [hi i - lo i] is the error bound
      for any estimate read off the bucket. *)
end

(** {1 Snapshots and exposition} *)

type verdict = {
  v_rule : string;  (** rule name, e.g. ["tlb_collapse"] *)
  v_ok : bool;
  v_value : float;  (** the measured quantity the rule tested *)
  v_detail : string;  (** human-readable explanation *)
}

module Snapshot : sig
  type hist = {
    h_count : int;
    h_sum : int;
    h_buckets : int array;  (** length {!Buckets.count}, raw counts *)
  }

  type t

  val take : unit -> t
  (** Merge all shards (addition / bucket-wise addition). *)

  val empty : t
  (** The all-zero snapshot — the natural [prev] for whole-run watchdog
      evaluation. *)

  val delta : cur:t -> prev:t -> t
  (** Pointwise subtraction; metrics absent from [prev] pass through. *)

  val counter_value : t -> string -> int
  (** 0 when the counter was never registered or never bumped. *)

  val gauge_value : t -> string -> int
  val histogram_value : t -> string -> hist option

  val buckets : hist -> (int * int * int) list
  (** Non-empty buckets as [(lo, hi, count)], ascending — bucket-wise
      comparable across runs. *)

  val quantile : hist -> float -> float
  (** [quantile h q] for [q] in [(0, 1]]: the midpoint of the bucket
      holding the [ceil (q * count)]-th smallest sample; [0.] when the
      histogram is empty. Error is bounded by that bucket's width. *)

  val to_prometheus : ?health:verdict list -> t -> string
  (** Prometheus text exposition format: [# HELP]/[# TYPE] preambles,
      counters and gauges as bare samples, histograms as cumulative
      [_bucket{le="..."}] series plus [_sum]/[_count]. With [?health],
      appends one [chimera_health{rule="..."}] gauge per verdict and an
      overall [chimera_healthy] gauge. *)

  val to_json : ?health:verdict list -> t -> string
  (** One JSON object: ["counters"]/["gauges"] name→value maps,
      ["histograms"] with count/sum/p50/p90/p99/p999 and non-empty
      buckets, optional ["health"] verdict array. Parseable by the
      hand-rolled reader in [lib/regress]. *)
end

(** {1 Health watchdog}

    Declarative rules evaluated against the delta between two snapshots
    (or a whole run via {!Snapshot.empty}). Each evaluation emits a typed
    [Health_ok]/[Health_degraded] Obs event per rule when tracing is on —
    the liveness probe a serving daemon exposes. *)

module Watchdog : sig
  type source =
    | Counter of string  (** one counter's delta *)
    | Gauge of string
        (** one gauge's delta — net movement over the window, so a level
            that returns to its starting point reads 0 and only sustained
            growth (e.g. a scheduler queue that never drains) registers *)
    | Sum of string list  (** sum of several counters' deltas *)

  type predicate =
    | Rate_below of { num : source; den : source; min_den : int; floor : float }
        (** Degraded when [num/den < floor], once [den >= min_den]. *)
    | Rate_above of { num : source; den : source; min_den : int; ceil : float }
        (** Degraded when [num/den > ceil], once [den >= min_den]. *)
    | Stalled of { counter : string; while_counter : string; min_active : int }
        (** Degraded when [counter] did not move although [while_counter]
            advanced by at least [min_active]. *)
    | Burst of { counter : string; max : int }
        (** Degraded when [counter] advanced by more than [max] in the
            window. *)

  type rule = { r_name : string; r_what : string; r_check : predicate }

  val default_rules : rule list
  (** [dispatch_stall] (retired advances but no block dispatches),
      [side_exit_regression] (taken side exits over dispatches),
      [cache_reject_burst], [queue_saturation] (net scheduler-queue growth
      per admitted serve request, active once at least 64 requests were
      admitted in the window), [tlb_collapse] (TLB hit rate floor). *)

  val evaluate :
    ?rules:rule list -> prev:Snapshot.t -> cur:Snapshot.t -> unit -> verdict list
  val healthy : verdict list -> bool
end
