(** Register liveness over a binary CFG.

    Backward dataflow with the conservative assumptions binary rewriters must
    make (paper §4.2, citing the limits of binary data-flow analysis):

    - a block ending in an indirect jump or return has every register live
      out (the continuation is unknown);
    - a direct call uses the argument registers and defines the caller-saved
      set (ABI contract); its unknown callee body is not inspected.

    These assumptions are what make the *traditional* dead-register search
    fail at ~36% of patch sites in the paper's Table 3; CHBP's exit-position
    shifting then recovers almost all of them. *)

type t

val compute : Cfg.t -> t

val live_out : t -> int -> Regmask.t
(** Live-out mask of the block starting at the address.
    @raise Not_found if no such block. *)

val live_in_at : t -> int -> Regmask.t option
(** Registers live immediately before the instruction at the address
    (recomputed by a backward walk inside its block); [None] if the address
    is not a known instruction. *)

val dead_at : t -> ?avoid:Reg.t list -> int -> Reg.t option
(** A register that is not live before the instruction at the address and is
    safe for a trampoline to clobber. Never returns [x0], [sp], [gp] or
    [tp]; prefers temporaries. [avoid] excludes further registers. *)

val dead_regs_at : t -> ?avoid:Reg.t list -> int -> Reg.t list
(** Every register not live before the instruction at the address that a
    rewriter may clobber (never [x0]/[sp]/[gp]/[tp]); empty if the address
    is unknown. Used to translate without unnecessary stack spills. *)

val insn_uses : Disasm.insn -> Regmask.t
val insn_defs : Disasm.insn -> Regmask.t
(** Per-instruction transfer masks, including the ABI call convention. *)
