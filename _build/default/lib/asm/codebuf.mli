(** Relocatable code buffer.

    A [Codebuf.t] accumulates instructions and data with label references;
    {!link} fixes the base address, resolves labels (internal ones first,
    then through the caller's resolver) and returns the final bytes. Both the
    program assembler ({!Asm}) and the rewriters (emitting
    target-instruction blocks at congruence-constrained addresses) build on
    it. *)

type t

val create : unit -> t

val size : t -> int
(** Bytes emitted so far (== the offset of the next emission). *)

val inst : t -> Inst.t -> unit
(** Emit a fixed instruction. *)

val insts : t -> Inst.t list -> unit

val label : t -> string -> unit
(** Bind a label to the current offset. @raise Invalid_argument if bound. *)

val has_label : t -> string -> bool

val label_offset : t -> string -> int
(** Offset a label was bound at. @raise Not_found *)

(** {1 Label-referencing instructions} *)

val branch_l : t -> Inst.branch_cond -> Reg.t -> Reg.t -> string -> unit
val jal_l : t -> Reg.t -> string -> unit

val j_l : t -> string -> unit
(** [jal x0]. *)

val cj_l : t -> string -> unit
val cbeqz_l : t -> Reg.t -> string -> unit
val cbnez_l : t -> Reg.t -> string -> unit

val la_l : t -> Reg.t -> string -> unit
(** Materialize a label's absolute address: [lui rd, hi; addi rd, rd, lo]. *)

val lui_hi_l : t -> Reg.t -> string -> unit
(** Just the [lui rd, hi] half (the Fig. 5 static-data idiom). *)

val addi_lo_l : t -> Reg.t -> string -> unit
(** Just the [addi rd, rd, lo] half. *)

val load_lo_l : t -> Inst.mem_width -> rd:Reg.t -> base:Reg.t -> string -> unit
(** [load rd, lo(label)(base)] — the second half of a [lui]+load static
    access. *)

(** {1 Absolute-target instructions (resolved against the link base)} *)

val jal_abs : t -> Reg.t -> int -> unit
val branch_abs : t -> Inst.branch_cond -> Reg.t -> Reg.t -> int -> unit

val vanilla_jump_abs : t -> Reg.t -> int -> unit
(** RISC-V's vanilla long-distance trampoline: [auipc rd, hi(Δ); jalr x0,
    lo(Δ)(rd)] — ±2 GiB pc-relative reach, clobbers [rd]. *)

val vanilla_jump_l : t -> Reg.t -> string -> unit

(** {1 Other helpers} *)

val li : t -> Reg.t -> int -> unit
(** Materialize a constant (|v| < 2^31). 1–2 instructions. *)

val la_abs : t -> Reg.t -> int -> unit
(** Materialize an absolute address (lui/addi). *)

val byte : t -> int -> unit
val u16 : t -> int -> unit
val u32 : t -> int -> unit
val u64 : t -> int64 -> unit
val space : t -> int -> unit

val pad_to : t -> int -> unit
(** Zero-pad the buffer so its size becomes exactly the given offset.
    @raise Invalid_argument if the buffer is already larger. *)

val dword_label : t -> string -> unit
(** 8-byte absolute address of a label (jump-table entry). *)

val exts : t -> Ext.t
(** Union of extensions required by the emitted instructions. *)

val link : t -> base:int -> resolve:(string -> int option) -> bytes
(** Fix the base address and patch every reference. Internal labels take
    precedence over [resolve].
    @raise Invalid_argument on an unresolvable label or an out-of-range
    offset (e.g. a compressed branch beyond ±256 B). *)
