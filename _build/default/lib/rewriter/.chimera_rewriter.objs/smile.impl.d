lib/rewriter/smile.ml: Encode Inst Printf Reg
