type profile = {
  sp_name : string;
  sp_code_kb : int;
  sp_ext_pct : float;
  sp_ind_weight : int;
  sp_vec_heat : int;
  sp_pressure : float;
  sp_hidden : float;
  sp_compressed : bool;
  sp_rounds : int;
  sp_plain : int;
  sp_victim_period : int;
  sp_seed : int;
}

let scale = 64
let armore_jal_range = (1 lsl 20) / scale

(* Parameters per benchmark, scaled from the paper's Table 3 (code size,
   extension share) and shaped by its Table 2 trigger counts (indirect heat
   for the Safer/ARMore columns, vector heat for the strawman column). *)
let p ~name ~mb ~ext ~ind ~vec ?(pressure = 0.3) ?(hidden = 0.02) ?(compressed = true)
    ?(rounds = 240) ?plain ?(victim_period = 64) ~seed () =
  { sp_name = name;
    sp_code_kb = max 8 (int_of_float (mb *. 1024.) / scale);
    sp_ext_pct = ext /. 100.;
    sp_ind_weight = ind;
    sp_vec_heat = vec;
    sp_pressure = pressure;
    sp_hidden = hidden;
    sp_compressed = compressed;
    sp_rounds =
      (if rounds <> 240 then rounds
       else
         let kb = max 8 (int_of_float (mb *. 1024.) / scale) in
         max 64 (min 256 (24576 / kb)));
    sp_plain = (match plain with Some n -> n | None -> 2 * (vec + ind + 2));
    sp_victim_period = victim_period;
    sp_seed = seed }

let spec_profiles =
  [ p ~name:"perlbench_r" ~mb:1.52 ~ext:0.58 ~ind:28 ~vec:2 ~pressure:0.25 ~plain:18 ~victim_period:1 ~seed:101 ();
    p ~name:"perlbench_s" ~mb:1.52 ~ext:0.58 ~ind:28 ~vec:2 ~pressure:0.25 ~plain:18 ~victim_period:1 ~seed:102 ();
    p ~name:"gcc_r" ~mb:6.88 ~ext:0.44 ~ind:8 ~vec:1 ~pressure:0.3 ~victim_period:8 ~seed:103 ();
    p ~name:"gcc_s" ~mb:6.88 ~ext:0.44 ~ind:8 ~vec:1 ~pressure:0.3 ~victim_period:8 ~seed:104 ();
    p ~name:"omnetpp_r" ~mb:1.14 ~ext:0.95 ~ind:10 ~vec:2 ~pressure:0.25 ~victim_period:4 ~seed:105 ();
    p ~name:"omnetpp_s" ~mb:1.14 ~ext:0.95 ~ind:10 ~vec:2 ~pressure:0.25 ~victim_period:4 ~seed:106 ();
    p ~name:"xalancbmk_r" ~mb:2.91 ~ext:1.36 ~ind:7 ~vec:3 ~pressure:0.35 ~victim_period:1 ~seed:107 ();
    p ~name:"xalancbmk_s" ~mb:2.91 ~ext:1.36 ~ind:7 ~vec:3 ~pressure:0.35 ~victim_period:1 ~seed:108 ();
    p ~name:"cactuBSSN_r" ~mb:3.49 ~ext:3.24 ~ind:1 ~vec:1 ~pressure:0.45 ~plain:22 ~victim_period:8 ~seed:109 ();
    p ~name:"cactuBSSN_s" ~mb:3.49 ~ext:3.24 ~ind:1 ~vec:1 ~pressure:0.45 ~plain:22 ~victim_period:8 ~seed:110 ();
    p ~name:"parest_r" ~mb:6.1 ~ext:2.4 ~ind:4 ~vec:4 ~pressure:0.4 ~victim_period:4 ~seed:111 ();
    p ~name:"wrf_r" ~mb:16.79 ~ext:3.21 ~ind:4 ~vec:3 ~pressure:0.4 ~victim_period:8 ~seed:112 ();
    p ~name:"wrf_s" ~mb:16.78 ~ext:3.2 ~ind:4 ~vec:3 ~pressure:0.4 ~victim_period:8 ~seed:113 ();
    p ~name:"blender_r" ~mb:7.31 ~ext:1.51 ~ind:5 ~vec:3 ~pressure:0.35 ~victim_period:4 ~seed:114 ();
    p ~name:"cam4_r" ~mb:4.29 ~ext:3.37 ~ind:5 ~vec:3 ~pressure:0.4 ~victim_period:4 ~seed:115 ();
    p ~name:"cam4_s" ~mb:4.47 ~ext:3.27 ~ind:6 ~vec:4 ~pressure:0.4 ~victim_period:4 ~seed:116 ();
    p ~name:"imagick_r" ~mb:1.41 ~ext:1.63 ~ind:6 ~vec:2 ~pressure:0.3 ~victim_period:4 ~seed:117 ();
    p ~name:"imagick_s" ~mb:1.46 ~ext:1.47 ~ind:6 ~vec:2 ~pressure:0.3 ~victim_period:4 ~seed:118 ();
    p ~name:"pop2_s" ~mb:3.57 ~ext:3.71 ~ind:5 ~vec:3 ~pressure:0.4 ~victim_period:4 ~seed:119 ();
    p ~name:"cam4_rx" ~mb:4.29 ~ext:3.37 ~ind:5 ~vec:9 ~pressure:0.4 ~seed:120 () ]
  |> List.filter (fun pr -> pr.sp_name <> "cam4_rx")

let realworld_profiles =
  [ p ~name:"Git" ~mb:3.11 ~ext:2.7 ~ind:5 ~vec:1 ~pressure:0.2 ~hidden:0.03 ~victim_period:8 ~seed:201 ();
    p ~name:"Vim" ~mb:2.91 ~ext:2.31 ~ind:8 ~vec:1 ~pressure:0.25 ~hidden:0.03 ~victim_period:4 ~seed:202 ();
    p ~name:"GIMP" ~mb:5.2 ~ext:2.1 ~ind:5 ~vec:4 ~pressure:0.3 ~victim_period:4 ~seed:203 ();
    p ~name:"CMake" ~mb:7.6 ~ext:3.32 ~ind:9 ~vec:5 ~pressure:0.3 ~victim_period:8 ~seed:204 ();
    p ~name:"CTest" ~mb:8.5 ~ext:3.3 ~ind:9 ~vec:6 ~pressure:0.3 ~victim_period:8 ~seed:205 ();
    p ~name:"Python" ~mb:2.31 ~ext:1.77 ~ind:7 ~vec:2 ~pressure:0.25 ~victim_period:4 ~seed:206 ();
    p ~name:"Libopenblas" ~mb:6.72 ~ext:0.59 ~ind:5 ~vec:8 ~pressure:0.35 ~victim_period:16 ~seed:207 () ]

let find name =
  match
    List.find_opt
      (fun pr -> pr.sp_name = name)
      (spec_profiles @ realworld_profiles)
  with
  | Some pr -> pr
  | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

(* Scratch data: each function owns a 64-byte slot (32 B input, 32 B
   output), plus a driver-owned phase counter reachable gp-relative. *)
let scratch_slots = 480

(* keep the addi-encodable range: 31 distinct slots *)
let slot_off idx = 64 * (idx mod 31)

type blockk =
  | Alu  (** arithmetic noise, reads/writes the slot *)
  | Strip  (** a vector strip over the slot (source instructions) *)
  | Pressure_strip  (** strip with a live indirect-jump target across it *)
  | Dispatch  (** jump-table dispatch on the driver phase *)
  | Callee_hostile_call  (** call to a function with no dead entry regs *)

type funspec = {
  f_idx : int;
  f_hidden : bool;
  f_blocks : blockk list;
  f_victim : bool;  (** hosts the erroneous-jump victim strip *)
}

let v1 = Reg.v_of_int 1
let v2 = Reg.v_of_int 2
let v3 = Reg.v_of_int 3

let fname i = Printf.sprintf "f%d" i
let lname i s = Printf.sprintf "f%d_%s" i s

(* The vector strip: reads slot[0..31], accumulates into slot[32..63].
   Register roles: t0 = slot base (set at function entry), t1/t2/t3
   scratch. 6 instructions, 5 of them vector. *)
let emit_strip ?(fig5 = false) a ~idx ~vop ~victim =
  (if fig5 then begin
     (* uncompressed targets re-derive the slot base through the lui+load
        static-data idiom (the Fig. 5 trampoline anchor) *)
     Asm.lui_hi a Reg.t0 "scratch";
     Asm.load_lo a Inst.D ~rd:Reg.t5 ~base:Reg.t0 "scratch";
     Asm.addi_lo a Reg.t0 "scratch";
     Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, slot_off idx))
   end);
  Asm.li a Reg.t1 4;
  Asm.inst a (Inst.Vsetvli (Reg.t2, Reg.t1, Inst.E64));
  (* the victim label points at the vsetvli's space neighbor: after
     rewriting it is overwritten by the SMILE jalr (P1) *)
  if victim then Asm.label a "victim_mid";
  Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t3, Reg.t0, 32));
  Asm.inst a (Inst.Vle (Inst.E64, v2, Reg.t3));
  Asm.inst a (Inst.Vop_vv (vop, v3, v1, v2));
  Asm.inst a (Inst.Vse (Inst.E64, v3, Reg.t3))

let emit_alu a rng ~compressed =
  (* ABI discipline: caller-saved scratches are re-seeded at block start,
     never read across a call or return (as compiled code behaves) *)
  Asm.li a Reg.t1 (Random.State.int rng 1024);
  Asm.li a Reg.t2 (1 + Random.State.int rng 64);
  (if compressed then begin
     (* a5/a4 live in the compressed register file (x8..x15) *)
     Asm.inst a (Inst.C_li (Reg.a5, Random.State.int rng 32));
     Asm.inst a (Inst.C_li (Reg.a4, 1 + Random.State.int rng 31))
   end);
  let n = 3 + Random.State.int rng 5 in
  for _ = 1 to n do
    match Random.State.int rng (if compressed then 10 else 4) with
    | 0 -> Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.t1, Random.State.int rng 64))
    | 1 -> Asm.inst a (Inst.Op (Inst.Xor, Reg.t2, Reg.t1, Reg.t2))
    | 2 -> Asm.inst a (Inst.Op (Inst.Add, Reg.t1, Reg.t1, Reg.t2))
    | 3 -> Asm.inst a (Inst.Opi (Inst.Slli, Reg.t2, Reg.t2, 1 + Random.State.int rng 3))
    | 4 -> Asm.inst a (Inst.C_addi (Reg.t1, 1 + Random.State.int rng 15))
    | 5 -> Asm.inst a (Inst.C_mv (Reg.t3, Reg.t1))
    | 6 ->
        Asm.inst a
          (Inst.C_alu
             ( (match Random.State.int rng 4 with
               | 0 -> Inst.Cxor | 1 -> Inst.Cor | 2 -> Inst.Cand | _ -> Inst.Caddw),
               Reg.a5, Reg.a4 ))
    | 7 -> Asm.inst a (Inst.C_andi (Reg.a5, Random.State.int rng 32))
    | 8 -> Asm.inst a (Inst.C_addiw (Reg.a4, 1 + Random.State.int rng 15))
    | _ ->
        Asm.inst a (Inst.C_alu (Inst.Csub, Reg.a5, Reg.a4));
        Asm.inst a (Inst.C_add (Reg.t1, Reg.a5))
  done;
  (if compressed then
     (* fold the compressed register noise into t1 as well *)
     Asm.inst a (Inst.C_add (Reg.t1, Reg.a5)));
  (* fold the noise into the slot so it is checksum-visible *)
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t0; imm = 32 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.t3, Reg.t3, Reg.t1));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t3; rs1 = Reg.t0; imm = 32 })

(* phase counter lives at gp + 0x700 (inside the first data page) *)
let phase_gp_off = 0x700

let emit_dispatch a ~idx ~tag =
  (* two-way jump-table dispatch on the low bit of the phase counter *)
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t4; rs1 = Reg.gp; imm = phase_gp_off });
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.t4, Reg.t4, 8));
  Asm.la a Reg.t5 (lname idx (Printf.sprintf "jt%d" tag));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, Reg.t4));
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t6; rs1 = Reg.t5; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t6, 0));
  Asm.label a (lname idx (Printf.sprintf "case%d_0" tag));
  Asm.li a Reg.t1 3;
  Asm.j a (lname idx (Printf.sprintf "join%d" tag));
  Asm.label a (lname idx (Printf.sprintf "case%d_1" tag));
  Asm.li a Reg.t1 7;
  Asm.label a (lname idx (Printf.sprintf "join%d" tag));
  (* fold the taken case into the slot *)
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t0; imm = 48 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.t3, Reg.t3, Reg.t1));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t3; rs1 = Reg.t0; imm = 48 })

let emit_dispatch_tables a ~idx ~tags =
  List.iter
    (fun tag ->
      Asm.rlabel a (lname idx (Printf.sprintf "jt%d" tag));
      Asm.rword_label a (lname idx (Printf.sprintf "case%d_0" tag));
      Asm.rword_label a (lname idx (Printf.sprintf "case%d_1" tag)))
    tags

(* a strip whose exit position has an indirect-jump target alive across it:
   plain liveness finds no dead register at the exit, forcing CHBP to shift
   the exit to the terminator *)
let emit_pressure_strip ?(fig5 = false) a rng ~idx ~tag =
  Asm.la a Reg.t5 (lname idx (Printf.sprintf "pjt%d" tag));
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t6; rs1 = Reg.t5; imm = 0 });
  (* keep a1/a2/a3/a4/a5 live across the strip as well *)
  Asm.li a Reg.a1 (Random.State.int rng 100);
  Asm.li a Reg.a2 (Random.State.int rng 100);
  Asm.li a Reg.a3 (Random.State.int rng 100);
  Asm.li a Reg.a4 (Random.State.int rng 100);
  Asm.li a Reg.a5 (Random.State.int rng 100);
  emit_strip ~fig5 a ~idx ~vop:Inst.Vadd ~victim:false;
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t6, 0));
  Asm.label a (lname idx (Printf.sprintf "pland%d" tag));
  (* consume the live registers *)
  Asm.inst a (Inst.Op (Inst.Add, Reg.t1, Reg.a1, Reg.a2));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t2, Reg.a3, Reg.a4));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t1, Reg.t1, Reg.a5));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t1; rs1 = Reg.t0; imm = 40 })

let emit_pressure_table a ~idx ~tag =
  Asm.rlabel a (lname idx (Printf.sprintf "pjt%d" tag));
  Asm.rword_label a (lname idx (Printf.sprintf "pland%d" tag))

(* A callee that reads every scratch register at entry: no dead register at
   its entry, so an exit shift that reaches the call must fall back to a
   trap trampoline. *)
let emit_hostile_callee a =
  Asm.func a "hostile";
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.t0, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t2));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t4));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t5));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t6));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a2));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a4));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a5));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a6));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a7));
  Asm.ret a

(* each function repeats its body a few times so call/return (indirect)
   density matches compiled code rather than micro-benchmarks *)
let body_reps = 6

let emit_function a rng ~compressed (f : funspec) =
  if f.f_hidden then Asm.hidden_func a (fname f.f_idx)
  else Asm.func a (fname f.f_idx);
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.sp, Reg.sp, -16));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.ra; rs1 = Reg.sp; imm = 8 });
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.s2; rs1 = Reg.sp; imm = 0 });
  (if compressed then begin
     Asm.la a Reg.t0 "scratch";
     Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, slot_off f.f_idx))
   end
   else begin
     (* the lui+load static-data idiom compilers emit for uncompressed
        targets — and the anchor the general-register SMILE variant uses *)
     Asm.lui_hi a Reg.t0 "scratch";
     Asm.load_lo a Inst.D ~rd:Reg.t5 ~base:Reg.t0 "scratch";
     Asm.addi_lo a Reg.t0 "scratch";
     Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, slot_off f.f_idx))
   end);
  Asm.li a Reg.s2 body_reps;
  Asm.label a (lname f.f_idx "rep");
  let tag = ref 0 in
  let tags = ref [] in
  let ptags = ref [] in
  List.iter
    (fun b ->
      incr tag;
      match b with
      | Alu -> emit_alu a rng ~compressed
      | Strip ->
          let vop = if Random.State.bool rng then Inst.Vadd else Inst.Vmacc in
          emit_strip ~fig5:(not compressed) a ~idx:f.f_idx ~vop ~victim:false
      | Pressure_strip ->
          emit_pressure_strip ~fig5:(not compressed) a rng ~idx:f.f_idx ~tag:!tag;
          ptags := !tag :: !ptags
      | Dispatch ->
          emit_dispatch a ~idx:f.f_idx ~tag:!tag;
          tags := !tag :: !tags
      | Callee_hostile_call ->
          emit_strip ~fig5:(not compressed) a ~idx:f.f_idx ~vop:Inst.Vadd ~victim:false;
          Asm.call a "hostile";
          (* the call clobbers the caller-saved slot base: re-establish it *)
          Asm.la a Reg.t0 "scratch";
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, slot_off f.f_idx)))
    f.f_blocks;
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, -1));
  Asm.branch_to a Inst.Bne Reg.s2 Reg.x0 (lname f.f_idx "rep");
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.s2; rs1 = Reg.sp; imm = 0 });
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.ra; rs1 = Reg.sp; imm = 8 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.sp, Reg.sp, 16));
  Asm.ret a;
  (!tags, !ptags)

let build pr =
  let rng = Random.State.make [| pr.sp_seed |] in
  let a = Asm.create ~name:pr.sp_name () in
  (* function specs: sized so the text reaches sp_code_kb *)
  let avg_func_bytes = 220 in
  let nf = max 8 (pr.sp_code_kb * 1024 / avg_func_bytes) in
  (* strip share chosen to hit the target extension-instruction percentage:
     a strip block contributes ~5 vector of ~12 instructions, other blocks
     ~8 plain instructions *)
  let r = pr.sp_ext_pct in
  let q = 6. *. r /. (5. -. (6. *. r)) in
  let funspecs =
    List.init nf (fun i ->
        let nblocks = 5 + Random.State.int rng 5 in
        let blocks =
          List.init nblocks (fun _ ->
              let x = Random.State.float rng 1.0 in
              if x < q then
                if Random.State.float rng 1.0 < pr.sp_pressure then Pressure_strip
                else if Random.State.float rng 1.0 < 0.02 then Callee_hostile_call
                else Strip
              else if x < q +. 0.03 then Dispatch
              else Alu)
        in
        { f_idx = i;
          f_hidden = Random.State.float rng 1.0 < pr.sp_hidden && i > 0;
          f_blocks = blocks;
          f_victim = i = 0 })
  in
  let funspecs =
    match funspecs with
    | f0 :: rest -> { f0 with f_hidden = false } :: rest
    | [] -> assert false
  in
  let has_strip f =
    List.exists
      (function Strip | Pressure_strip | Callee_hostile_call -> true | Alu | Dispatch -> false)
      f.f_blocks
  in
  let has_hostile f =
    List.exists (function Callee_hostile_call -> true | _ -> false) f.f_blocks
  in
  (* hot vector functions: prefer ones without trap-fallback call sites —
     those are the paper's rare, cold high-register-pressure cases *)
  let hot_vec =
    let clean =
      List.filter (fun f -> has_strip f && (not f.f_hidden) && not (has_hostile f)) funspecs
    in
    let dirty =
      List.filter (fun f -> has_strip f && (not f.f_hidden) && has_hostile f) funspecs
    in
    List.filteri (fun i _ -> i < pr.sp_vec_heat) (clean @ dirty)
  in
  let hot_ind =
    funspecs
    |> List.filter (fun f ->
           (not f.f_hidden)
           && List.exists (function Dispatch -> true | _ -> false) f.f_blocks)
    |> List.filteri (fun i _ -> i < pr.sp_ind_weight)
  in
  (* plain (scalar, dispatch-free) hot functions dilute the special flows
     to compiled-code densities *)
  let hot_plain =
    funspecs
    |> List.filter (fun f ->
           (not f.f_hidden)
           && (not (has_strip f))
           && not (List.exists (function Dispatch -> true | _ -> false) f.f_blocks))
    |> List.filteri (fun i _ -> i < pr.sp_plain)
  in
  let hidden_funcs = List.filter (fun f -> f.f_hidden) funspecs in
  (* ---- driver ---- *)
  Asm.func a "_start";
  Asm.li a Reg.s1 pr.sp_rounds;
  Asm.label a "Louter";
  Asm.branch_to a Inst.Beq Reg.s1 Reg.x0 "Lend";
  (* bump the phase counter *)
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.gp; imm = phase_gp_off });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.t1, 1));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t1; rs1 = Reg.gp; imm = phase_gp_off });
  (* hot calls *)
  List.iter (fun f -> Asm.call a (fname f.f_idx)) hot_vec;
  List.iter (fun f -> Asm.call a (fname f.f_idx)) hot_ind;
  List.iter (fun f -> Asm.call a (fname f.f_idx)) hot_plain;
  Asm.la a Reg.t0 "scratch";
  Asm.call a "victim_fn";
  (* periodically take the erroneous jump-table entry into the middle of
     the victim strip; the period is the profile's odd-entry rate, shaped
     from the paper's Table 2 trigger counts *)
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.gp; imm = phase_gp_off });
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.t1, Reg.t1, pr.sp_victim_period - 1));
  Asm.branch_to a Inst.Bne Reg.t1 Reg.x0 "no_victim";
  Asm.la a Reg.t0 "scratch";
  Asm.la a Reg.t5 "victim_jt";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t6; rs1 = Reg.t5; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t6, 0));
  Asm.label a "no_victim";
  (* the cold sweep runs once (first round): every function executes at
     least once, including the hidden ones through their pointers *)
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.gp; imm = phase_gp_off });
  Asm.li a Reg.t2 1;
  Asm.branch_to a Inst.Bne Reg.t1 Reg.t2 "no_cold";
  Asm.call a "cold_sweep";
  Asm.label a "no_cold";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s1, Reg.s1, -1));
  Asm.j a "Louter";
  Asm.label a "Lend";
  (* checksum over the scratch area *)
  Asm.la a Reg.a0 "scratch";
  Asm.li a Reg.a1 512;
  Asm.li a Reg.a2 0;
  Asm.label a "cks";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t1));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "cks";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  (* cold sweep: call every visible function, and every hidden function
     through its pointer *)
  Asm.func a "cold_sweep";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.sp, Reg.sp, -16));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.ra; rs1 = Reg.sp; imm = 8 });
  List.iter
    (fun f ->
      if not f.f_hidden then Asm.call a (fname f.f_idx))
    funspecs;
  List.iteri
    (fun k _ ->
      Asm.la a Reg.t5 (Printf.sprintf "hptr%d" k);
      Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t6; rs1 = Reg.t5; imm = 0 });
      Asm.inst a (Inst.Jalr (Reg.ra, Reg.t6, 0)))
    hidden_funcs;
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.ra; rs1 = Reg.sp; imm = 8 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.sp, Reg.sp, 16));
  Asm.ret a;
  emit_hostile_callee a;
  (* The victim leaf: a strip in a prologue-free leaf function. The
     jump-table entry "victim_jt" points into the middle of the strip —
     after rewriting, that address is an overwritten neighbor, so taking
     the entry exercises the deterministic-fault recovery path. Entering
     at the victim label is well-defined in the original binary too: the
     driver sets t0 before jumping and ra carries the return. *)
  Asm.func a "victim_fn";
  (if pr.sp_compressed then Asm.la a Reg.t0 "scratch"
   else begin
     Asm.lui_hi a Reg.t0 "scratch";
     Asm.load_lo a Inst.D ~rd:Reg.t5 ~base:Reg.t0 "scratch";
     Asm.addi_lo a Reg.t0 "scratch"
   end);
  emit_strip a ~idx:0 ~vop:Inst.Vadd ~victim:true;
  Asm.ret a;
  (* ---- all functions + their tables ---- *)
  List.iter
    (fun f ->
      let tags, ptags = emit_function a rng ~compressed:pr.sp_compressed f in
      emit_dispatch_tables a ~idx:f.f_idx ~tags;
      List.iter (fun tg -> emit_pressure_table a ~idx:f.f_idx ~tag:tg) ptags)
    funspecs;
  (* victim entry: into the middle of the victim leaf's strip *)
  Asm.rlabel a "victim_jt";
  Asm.rword_label a "victim_mid";
  (* hidden-function pointers *)
  List.iteri
    (fun k f ->
      Asm.rlabel a (Printf.sprintf "hptr%d" k);
      Asm.rword_label a (fname f.f_idx))
    hidden_funcs;
  (* scratch data *)
  Asm.dlabel a "scratch";
  for i = 0 to (scratch_slots * 8) - 1 do
    Asm.dword64 a (Int64.of_int ((i * 37) mod 251))
  done;
  Asm.assemble a
