(** The ARMore-style binary-patching baseline (paper §2.2, Di Bartolomeo et
    al., USENIX Security '23), adapted to RISC-V as in the paper's
    evaluation.

    ARMore relocates the whole text section to a fresh address and replaces
    every original instruction with a single-instruction trampoline to its
    relocated counterpart (the "rebound table"). Direct flows run natively
    in the relocated copy; indirect flows still target original addresses
    and bounce through the trampolines. On AArch64 a single branch reaches
    ±128 MiB, so rebounds are cheap; on RISC-V [jal] reaches only ±1 MiB, so
    for code sections larger than that every rebound is a trap — the
    paper's explanation for ARMore's poor RISC-V numbers.

    The relocated copy is placed one guard page above the text end, so
    small binaries still enjoy single-[jal] rebounds while binaries beyond
    the jump reach degrade to traps, exactly as in the paper. *)

type t

val rewrite : ?jal_range:int -> Binfile.t -> t
(** Empty-patching rewrite (the mode the paper evaluates ARMore in).
    [jal_range] defaults to RISC-V's ±1 MiB; the benchmarks scale it down
    together with their scaled-down code sizes so the reach-vs-text-size
    ratio matches the paper's. *)

val result : t -> Binfile.t

val trap_rebounds : t -> int
(** Rebound slots that needed a trap (distance beyond ±1 MiB or a 2-byte
    slot). *)

val jal_rebounds : t -> int

type runtime

val runtime : ?costs:Costs.t -> t -> runtime
val load : runtime -> Memory.t
val counters : runtime -> Counters.t
val handlers : runtime -> Machine.t -> Machine.handlers
(** Handlers that service trap rebounds. Indirect-jump rebounds through
    [jal] slots are counted from {!Machine.indirect_retired} by the caller
    (every indirect jump lands in the rebound table). *)

val run : runtime -> ?isa:Ext.t -> fuel:int -> Machine.t -> Machine.stop
