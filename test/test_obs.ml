(* Observability layer:
   - JSONL encoding round-trips through the strict parser (property);
   - tracing on vs off is invisible: bit-identical machine state, stop
     condition, retire counts and counters on the property-test corpus;
   - a golden JSONL trace of one small workload pins the schema;
   - per-site counter merge is deterministic and order-independent
     (equal -j 1 vs -j 4 aggregates);
   - the trace aggregator reproduces the runtime counters exactly. *)

let base_isa = Ext.rv64gc

(* --- helpers ---------------------------------------------------------------- *)

let buffer_sink buf events len =
  for k = 0 to len - 1 do
    Buffer.add_string buf (Obs.Json.to_line events.(k));
    Buffer.add_char buf '\n'
  done

let with_trace f =
  let buf = Buffer.create 4096 in
  Obs.enable ~sink:(buffer_sink buf);
  Fun.protect ~finally:Obs.disable (fun () -> ignore (f ()));
  Buffer.contents buf

let events_of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Obs.Json.of_line l with
         | Some ev -> ev
         | None -> Alcotest.failf "unparseable trace line: %s" l)

let fuzz_profile seed =
  let rng = Random.State.make [| seed |] in
  { Specgen.sp_name = Printf.sprintf "fuzz%d" seed;
    sp_code_kb = 8 + Random.State.int rng 10;
    sp_ext_pct = 0.005 +. Random.State.float rng 0.04;
    sp_ind_weight = 1 + Random.State.int rng 6;
    sp_vec_heat = 1 + Random.State.int rng 4;
    sp_pressure = Random.State.float rng 0.8;
    sp_hidden = Random.State.float rng 0.1;
    sp_compressed = Random.State.bool rng;
    sp_rounds = 40 + Random.State.int rng 60;
    sp_plain = 2 + Random.State.int rng 8;
    sp_victim_period = 1 lsl Random.State.int rng 5;
    sp_seed = seed }

(* --- JSON round-trip property ------------------------------------------------ *)

let event_gen =
  QCheck.Gen.(
    let addr = int_range 0 0x7FFF_FFFF in
    let name = string_size ~gen:(char_range 'a' 'z') (int_range 0 12) in
    let cause = oneofl [ "sigill"; "sigsegv"; "misaligned" ] in
    oneof
      [ return (Obs.Meta { version = Obs.schema_version });
        map (fun name -> Obs.Phase_begin { name }) name;
        map (fun name -> Obs.Phase_end { name }) name;
        map2 (fun entry body -> Obs.Tb_compile { entry; body }) addr (int_range 0 256);
        map2 (fun entry body -> Obs.Tb_hit { entry; body }) addr (int_range 0 256);
        map2 (fun a len -> Obs.Tb_invalidate { addr = a; len }) addr (int_range 1 4096);
        (let* entry = addr and* body = int_range 0 256 in
         let* hits = int_range 0 1_000_000 and* retired = int_range 0 10_000_000 in
         let* loads = int_range 0 100_000 and* stores = int_range 0 100_000 in
         let* branches = int_range 0 100_000 and* alu = int_range 0 100_000 in
         let* vector = int_range 0 100_000 and* compressed = int_range 0 100_000 in
         let* penalty = int_range 0 100_000 and* tlb = int_range 0 10_000 in
         let* icache = int_range 0 10_000 and* faults = int_range 0 1_000 in
         let* recovered = int_range 0 1_000 and* traps = int_range 0 1_000 in
         return
           (Obs.Tb_profile
              { entry; body; hits; retired; loads; stores; branches; alu; vector;
                compressed; penalty; tlb; icache; faults; recovered; traps }));
        map2 (fun src dst -> Obs.Tb_chain { src; dst }) addr addr;
        (let* entry = addr and* insts = int_range 0 256 in
         let* pages = int_range 1 8 and* jumps = int_range 0 32 in
         let* exits = int_range 0 32 and* fused = int_range 0 128 in
         return (Obs.Tb_superblock { entry; insts; pages; jumps; exits; fused }));
        map2 (fun entry target -> Obs.Tb_side_exit { entry; target }) addr addr;
        map2
          (fun pc kind -> Obs.Tb_fuse { pc; kind })
          addr
          (oneofl [ "pure_run"; "rmw"; "ld_pair"; "st_pair" ]);
        map2 (fun a len -> Obs.Tlb_flush { addr = a; len }) addr (int_range 1 4096);
        map2 (fun a misses -> Obs.Icache_burst { addr = a; misses }) addr (int_range 8 512);
        map2 (fun pc cause -> Obs.Fault_raised { pc; cause }) addr cause;
        map3
          (fun site redirect cause -> Obs.Fault_recovered { site; redirect; cause })
          addr addr cause;
        map2 (fun site target -> Obs.Trap_taken { site; target }) addr addr;
        map2 (fun site target -> Obs.Check_taken { site; target }) addr addr;
        map2 (fun root patches -> Obs.Lazy_discovered { root; patches }) addr (int_range 0 64);
        map2 (fun pc gp_restored -> Obs.Signal_delivered { pc; gp_restored }) addr bool;
        map3
          (fun core cls task -> Obs.Sched_steal { core; cls; task })
          (int_range 0 63)
          (oneofl [ "base"; "extension" ])
          (int_range 0 10_000);
        map2 (fun task cycles -> Obs.Sched_migrate { task; cycles }) (int_range 0 10_000) addr;
        map2
          (fun site style -> Obs.Rw_site { site; style })
          addr
          (oneofl [ "smile"; "trap"; "greg" ]);
        map2
          (fun site kind -> Obs.Rw_exit { site; kind })
          addr
          (oneofl [ "liveness"; "shift"; "terminator"; "trap" ]);
        map2 (fun pc target -> Obs.Smile_write { pc; target }) addr addr;
        map3
          (fun key redirect table -> Obs.Table_add { key; redirect; table })
          addr addr
          (oneofl [ "fault"; "trap" ]);
        map
          (fun rule -> Obs.Health_ok { rule })
          (oneofl [ "dispatch_stall"; "tlb_collapse" ]);
        map2
          (fun rule reason -> Obs.Health_degraded { rule; reason })
          (oneofl [ "side_exit_regression"; "cache_reject_burst" ])
          name;
        map2
          (fun tenant id -> Obs.Serve_admit { tenant; id })
          name (int_range 0 10_000);
        map3
          (fun tenant id retired -> Obs.Serve_done { tenant; id; retired })
          name (int_range 0 10_000) addr;
        map3
          (fun tenant id reason -> Obs.Serve_reject { tenant; id; reason })
          name (int_range 0 10_000)
          (oneofl [ "saturated"; "shutdown" ]) ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"obs: JSONL encoding round-trips" ~count:500
    (QCheck.make event_gen) (fun ev ->
      match Obs.Json.of_line (Obs.Json.to_line ev) with
      | Some ev' -> ev = ev'
      | None -> QCheck.Test.fail_reportf "unparseable: %s" (Obs.Json.to_line ev))

let prop_json_rejects_malformed =
  QCheck.Test.make ~name:"obs: parser rejects corrupted lines" ~count:200
    QCheck.(make Gen.(pair event_gen (int_range 0 1000)))
    (fun (ev, salt) ->
      let line = Obs.Json.to_line ev in
      (* drop one structural character: never a valid line of this schema *)
      let pos = salt mod String.length line in
      let corrupted =
        String.sub line 0 pos ^ String.sub line (pos + 1) (String.length line - pos - 1)
      in
      match Obs.Json.of_line corrupted with
      | None -> true
      | Some ev' ->
          (* deleting a digit from an int field can still parse; the value
             must then differ, never silently equal *)
          ev' <> ev)

(* --- schema version rejection ------------------------------------------------ *)

(* Meta lines from another schema version must not parse: silently accepting
   a stale trace would mis-decode every versioned field after it. read_file
   turns the rejection into an actionable error naming both versions. *)
let test_meta_version_rejected () =
  let stale v = Printf.sprintf "{\"ev\":\"meta\",\"version\":%d}" v in
  Alcotest.(check bool)
    "current version parses" true
    (Obs.Json.of_line (stale Obs.schema_version) <> None);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "version %d rejected" v)
        true
        (Obs.Json.of_line (stale v) = None))
    [ 0; 1; Obs.schema_version + 1; 999 ];
  let file = Filename.temp_file "stale_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc (stale 1 ^ "\n");
      close_out oc;
      match Obs.Json.read_file file with
      | _ -> Alcotest.fail "stale trace must not load"
      | exception Failure msg ->
          Alcotest.(check bool)
            "error names both versions" true
            (let has needle =
               let n = String.length needle and l = String.length msg in
               let rec go i = i + n <= l && (String.sub msg i n = needle || go (i + 1)) in
               go 0
             in
             has "schema version 1"
             && has (Printf.sprintf "version %d" Obs.schema_version)))

(* --- ring/sink behavior ------------------------------------------------------ *)

let test_ring_flush () =
  let n = ref 0 in
  Obs.enable ~sink:(fun _ len -> n := !n + len);
  let total = 10_000 in
  for i = 1 to total do
    Obs.emit (Obs.Tb_hit { entry = i; body = 1 })
  done;
  Obs.disable ();
  (* +1: the Meta header emitted by enable *)
  Alcotest.(check int) "all events reach the sink" (total + 1) !n;
  Obs.emit (Obs.Tb_hit { entry = 0; body = 1 });
  Alcotest.(check int) "emit after disable is a no-op" (total + 1) !n;
  Alcotest.(check int) "channel sink never drops" 0 (Obs.events_dropped ())

(* The bounded in-memory sink keeps the most recent events and counts what
   it overwrote — the "dropped" total surfaced in bench --json and by the
   chimera metrics subcommand. *)
let test_memory_sink_drops () =
  let cap = 64 in
  Obs.enable_memory ~capacity:cap ();
  let total = 200 in
  Fun.protect ~finally:Obs.disable (fun () ->
      for i = 1 to total do
        Obs.emit (Obs.Tb_hit { entry = i; body = 1 })
      done;
      let kept = Obs.recent () in
      Alcotest.(check int) "retains exactly capacity" cap (List.length kept);
      (* +1: the Meta header emitted by enable was the first overwrite *)
      Alcotest.(check int)
        "dropped = emitted - capacity" (total + 1 - cap)
        (Obs.events_dropped ());
      (* oldest-first: the window is the last [cap] emissions, in order *)
      let expect = List.init cap (fun k -> total - cap + 1 + k) in
      let got =
        List.map
          (function
            | Obs.Tb_hit { entry; _ } -> entry
            | _ -> Alcotest.fail "unexpected event kind in window")
          kept
      in
      Alcotest.(check (list int)) "window is the tail, oldest-first" expect got);
  Alcotest.(check int) "disable clears nothing retroactively" (total + 1 - cap)
    (Obs.events_dropped ())

(* --- tracing on vs off is invisible ------------------------------------------ *)

type snap = {
  sn_stop : string;
  sn_regs : int64 list;
  sn_pc : int;
  sn_retired : int;
  sn_cycles : int;
  sn_counters : string;
}

let run_chimera seed =
  let bin = Specgen.build (fuzz_profile seed) in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  let stop = Chimera_rt.run rt ~fuel:50_000_000 m in
  let c = Chimera_rt.counters rt in
  { sn_stop =
      (match stop with
      | Machine.Exited c -> Printf.sprintf "exit %d" c
      | Machine.Faulted f -> "fault " ^ Fault.to_string f
      | Machine.Fuel_exhausted -> "fuel");
    sn_regs = List.init 32 (fun i -> Machine.get_reg m (Reg.of_int i));
    sn_pc = Machine.pc m;
    sn_retired = Machine.retired m;
    sn_cycles = Machine.cycles m;
    sn_counters =
      Format.asprintf "%a|%a" Counters.pp c
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ";")
           (fun fmt (pc, s) ->
             Format.fprintf fmt "%x:%d/%d/%d/%d" pc s.Counters.s_faults
               s.Counters.s_traps s.Counters.s_checks s.Counters.s_lazy))
        (Counters.per_site c) }

let prop_tracing_invisible =
  QCheck.Test.make
    ~name:"obs: tracing on vs off is bit-identical (state, retires, counters)"
    ~count:6
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let off = run_chimera seed in
      let on = ref None in
      let trace = with_trace (fun () -> on := Some (run_chimera seed)) in
      let on = Option.get !on in
      if off <> on then
        QCheck.Test.fail_reportf "seed %d: traced run differs (off %s / on %s)" seed
          off.sn_counters on.sn_counters
      else if String.length trace = 0 then
        QCheck.Test.fail_reportf "seed %d: empty trace" seed
      else true)

(* --- trace aggregation reproduces the counters -------------------------------- *)

let prop_agg_matches_counters =
  QCheck.Test.make
    ~name:"obs: per-site aggregation of the trace equals the runtime counters"
    ~count:6
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let bin = Specgen.build (fuzz_profile seed) in
      let counters = ref None in
      let trace =
        with_trace (fun () ->
            let ctx =
              Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin
            in
            let rt = Chimera_rt.create ctx in
            let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
            ignore (Chimera_rt.run rt ~fuel:50_000_000 m);
            counters := Some (Chimera_rt.counters rt))
      in
      let c = Option.get !counters in
      let agg = Obs.Agg.create () in
      List.iter (Obs.Agg.observe agg) (events_of_string trace);
      let t = Obs.Agg.totals agg in
      let expected_sites =
        List.filter_map
          (fun (pc, s) ->
            let n = Counters.site_events s in
            if n > 0 then Some (pc, n) else None)
          (Counters.per_site c)
      in
      if
        t.Obs.Agg.faults_recovered <> c.Counters.faults_recovered
        || t.Obs.Agg.traps <> c.Counters.traps
        || t.Obs.Agg.checks <> c.Counters.checks
        || t.Obs.Agg.lazies <> c.Counters.lazy_rewrites
      then
        QCheck.Test.fail_reportf
          "seed %d: totals differ (trace %d/%d/%d/%d, counters %d/%d/%d/%d)" seed
          t.Obs.Agg.faults_recovered t.Obs.Agg.traps t.Obs.Agg.checks
          t.Obs.Agg.lazies c.Counters.faults_recovered c.Counters.traps
          c.Counters.checks c.Counters.lazy_rewrites
      else if Obs.Agg.per_site agg <> expected_sites then
        QCheck.Test.fail_reportf "seed %d: per-site breakdown differs" seed
      else true)

(* --- golden trace ------------------------------------------------------------- *)

(* The schema is a documented interface (OBSERVABILITY.md): any change to
   event names, field names or emission order of this fixed workload must
   show up as a diff of test/golden/trace_matmul.jsonl. *)
let golden_trace () =
  with_trace (fun () ->
      let bin = Programs.matmul ~name:"golden-mm" `Ext ~n:4 in
      let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
      let rt = Chimera_rt.create ctx in
      let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
      ignore (Chimera_rt.run rt ~fuel:10_000_000 m))

let test_golden () =
  let got = golden_trace () in
  let want =
    let ic = open_in "golden/trace_matmul.jsonl" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if got <> want then begin
    (* keep the mismatch inspectable *)
    let oc = open_out "trace_matmul.actual.jsonl" in
    output_string oc got;
    close_out oc;
    Alcotest.failf
      "golden trace differs (see trace_matmul.actual.jsonl, %d vs %d bytes); \
       if the schema change is intentional, regenerate golden/trace_matmul.jsonl \
       and update OBSERVABILITY.md"
      (String.length got) (String.length want)
  end

let test_golden_parses () =
  let evs = events_of_string (golden_trace ()) in
  (match evs with
  | Obs.Meta { version } :: _ ->
      Alcotest.(check int) "schema version" Obs.schema_version version
  | _ -> Alcotest.fail "golden trace must start with a meta event");
  Alcotest.(check bool) "has events" true (List.length evs > 10)

(* --- per-site merge: -j 1 vs -j 4 --------------------------------------------- *)

(* Worker counters merged in any sharding/order must produce identical
   aggregates — per-key addition is commutative and associative. The
   parallel arm really runs on 4 domains, like the bench driver. *)
let cell_counters seed =
  let bin = Specgen.build (fuzz_profile seed) in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  ignore (Chimera_rt.run rt ~fuel:50_000_000 m);
  Chimera_rt.counters rt

let canon c =
  ( c.Counters.faults_recovered,
    c.Counters.traps,
    c.Counters.checks,
    c.Counters.lazy_rewrites,
    List.map
      (fun (pc, s) ->
        (pc, s.Counters.s_faults, s.Counters.s_traps, s.Counters.s_checks,
         s.Counters.s_lazy))
      (Counters.per_site c) )

let test_parallel_merge () =
  let seeds = List.init 8 (fun i -> 7000 + (137 * i)) in
  (* -j 1: sequential, in order *)
  let seq = Counters.create () in
  List.iter (fun s -> Counters.add seq (cell_counters s)) seeds;
  (* -j 4: 4 domains pull cells off a shared index; each accumulates
     locally, the partials merge in reverse domain order *)
  let items = Array.of_list seeds in
  let next = Atomic.make 0 in
  let worker () =
    let acc = Counters.create () in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length items then begin
        Counters.add acc (cell_counters items.(i));
        go ()
      end
    in
    go ();
    acc
  in
  let doms = List.init 3 (fun _ -> Domain.spawn worker) in
  let mine = worker () in
  let partials = mine :: List.map Domain.join doms in
  let par = Counters.create () in
  List.iter (Counters.add par) (List.rev partials);
  Alcotest.(check bool) "-j 1 and -j 4 aggregates identical" true
    (canon seq = canon par);
  Alcotest.(check bool) "per-site attribution survives the merge" true
    (Counters.per_site par <> [])

let () =
  Alcotest.run "chimera_obs"
    [ ("json",
       List.map QCheck_alcotest.to_alcotest
         [ prop_json_roundtrip; prop_json_rejects_malformed ]);
      ("schema",
       [ Alcotest.test_case "stale meta versions rejected" `Quick
           test_meta_version_rejected ]);
      ("ring",
       [ Alcotest.test_case "flush + disable" `Quick test_ring_flush;
         Alcotest.test_case "memory sink bounds + drop count" `Quick
           test_memory_sink_drops ]);
      ("differential",
       List.map QCheck_alcotest.to_alcotest
         [ prop_tracing_invisible; prop_agg_matches_counters ]);
      ("golden",
       [ Alcotest.test_case "byte-identical to committed trace" `Quick test_golden;
         Alcotest.test_case "parses and starts with meta" `Quick test_golden_parses ]);
      ("merge",
       [ Alcotest.test_case "-j 1 vs -j 4 per-site aggregates" `Quick
           test_parallel_merge ]) ]
