lib/rewriter/translate.mli: Codebuf Inst Reg
