let () =
  let t = Mixgen.costs () in
  Format.printf "%a@." Mixgen.pp_costs t
