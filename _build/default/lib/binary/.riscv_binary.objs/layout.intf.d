lib/binary/layout.mli:
