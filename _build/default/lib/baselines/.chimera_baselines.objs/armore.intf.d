lib/baselines/armore.mli: Binfile Costs Counters Ext Machine Memory
