let pool =
  Reg.temporaries
  @ [ Reg.a7; Reg.a6; Reg.a5; Reg.a4; Reg.a3; Reg.a2; Reg.a1; Reg.a0; Reg.s11;
      Reg.s10; Reg.s9; Reg.s8; Reg.s7; Reg.s6; Reg.s5; Reg.s4; Reg.s3; Reg.s2;
      Reg.s1; Reg.s0; Reg.ra ]

let pick_free ~n ~exclude ~free =
  let free = List.filter (fun r -> not (Regmask.mem r exclude)) free in
  let free = List.sort_uniq Reg.compare free in
  (* stable preference order: free registers first, then the pool *)
  let free_in_order = List.filter (fun r -> List.exists (Reg.equal r) free) pool in
  let rest =
    List.filter
      (fun r ->
        (not (Regmask.mem r exclude)) && not (List.exists (Reg.equal r) free))
      pool
  in
  let candidates = free_in_order @ rest in
  if List.length candidates < n then
    invalid_arg (Printf.sprintf "Scavenge.pick_free: cannot find %d registers" n);
  let chosen = List.filteri (fun i _ -> i < n) candidates in
  let to_spill =
    List.filter (fun r -> not (List.exists (Reg.equal r) free_in_order)) chosen
  in
  (chosen, to_spill)

let pick ~n ~exclude =
  let free = List.filter (fun r -> not (Regmask.mem r exclude)) pool in
  if List.length free < n then
    invalid_arg (Printf.sprintf "Scavenge.pick: cannot find %d registers" n);
  List.filteri (fun i _ -> i < n) free

let with_spills cb regs body =
  let n = List.length regs in
  if n = 0 then body ()
  else begin
    Codebuf.inst cb (Inst.Opi (Inst.Addi, Reg.sp, Reg.sp, -8 * n));
    List.iteri
      (fun i r ->
        Codebuf.inst cb (Inst.Store { width = Inst.D; rs2 = r; rs1 = Reg.sp; imm = 8 * i }))
      regs;
    body ();
    (* first-in, last-out: restore in reverse order, from the slot each
       register was saved to *)
    List.iteri
      (fun i r ->
        let slot = n - 1 - i in
        Codebuf.inst cb
          (Inst.Load
             { width = Inst.D; unsigned = false; rd = r; rs1 = Reg.sp; imm = 8 * slot }))
      (List.rev regs);
    Codebuf.inst cb (Inst.Opi (Inst.Addi, Reg.sp, Reg.sp, 8 * n))
  end
