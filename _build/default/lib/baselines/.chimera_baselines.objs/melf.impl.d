lib/baselines/melf.ml: Binfile Ext
