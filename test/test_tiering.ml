(* Tiered execution and jalr inline caches, checked two ways:

   - a tier-differential property test: random branch- and jalr-dense
     programs run through three phases — a warm run cut by exact fuel, a
     continuation across an in-place SMC patch (which retires hot blocks and
     forces every epoch-guarded inline cache to re-resolve), and a
     continuation across a warm-TLB permission downgrade that makes the next
     store fault. Step, untiered superblock, tiered and tiered-without-IC
     machines must agree bit-for-bit on stop state, registers, pc and
     counters at every phase boundary;

   - a golden test pinning the inline-cache state machine: one call site
     driven through one, then three, then nine distinct targets must be
     observed Mono, then Poly, then Mega — the same site pc across all three
     checkpoints. *)

let base_isa = Ext.rv64gc

type snap = {
  sn_stop : Machine.stop;
  sn_regs : int64 list;
  sn_pc : int;
  sn_retired : int;
  sn_cycles : int;
}

let snapshot m stop =
  { sn_stop = stop;
    sn_regs = List.init 32 (fun i -> Machine.get_reg m (Reg.of_int i));
    sn_pc = Machine.pc m;
    sn_retired = Machine.retired m;
    sn_cycles = Machine.cycles m }

let pp_snap s =
  let stop =
    match s.sn_stop with
    | Machine.Exited c -> Printf.sprintf "exit %d" c
    | Machine.Faulted f -> Printf.sprintf "fault %s" (Fault.to_string f)
    | Machine.Fuel_exhausted -> "fuel"
  in
  Printf.sprintf "%s pc=%#x retired=%d cycles=%d" stop s.sn_pc s.sn_retired
    s.sn_cycles

let check_snaps ~what oracle got =
  if oracle <> got then
    QCheck.Test.fail_reportf "%s: oracle { %s } <> engine { %s }" what
      (pp_snap oracle) (pp_snap got)
  else true

(* --- random branch/jalr-dense programs --------------------------------- *)

(* A loop mixing data-dependent branches (xorshift state bits) with an
   indirect call through a four-entry function-pointer table indexed by
   fresh state bits: the call site is polymorphic and the branches are
   effectively random, so tiered machines promote, recompile and fill
   inline caches while the oracle just steps. *)
let tier_program rng =
  let a = Asm.create ~name:"tierfuzz" () in
  Asm.func a "_start";
  let niter = 800 + Random.State.int rng 800 in
  Asm.li a Reg.t0 niter;
  Asm.li a Reg.t1 (0x2545F491 + Random.State.int rng 0x10000);
  Asm.li a Reg.s2 0;
  Asm.la a Reg.s4 "data";
  Asm.label a "Louter";
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "Ldone";
  let patch_off = Asm.here a in
  (* s2 is outside the compressed register file: this xori always encodes
     in 4 bytes, so the SMC phase can overwrite it in place *)
  Asm.inst a (Inst.Opi (Inst.Xori, Reg.s2, Reg.s2, 0x55));
  (* xorshift64 step *)
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t4, Reg.t1, 13));
  Asm.inst a (Inst.Op (Inst.Xor, Reg.t1, Reg.t1, Reg.t4));
  Asm.inst a (Inst.Opi (Inst.Srli, Reg.t4, Reg.t1, 7));
  Asm.inst a (Inst.Op (Inst.Xor, Reg.t1, Reg.t1, Reg.t4));
  (* a couple of data-dependent branches on fresh bits *)
  let nbr = 1 + Random.State.int rng 3 in
  for b = 1 to nbr do
    let l = Printf.sprintf "Lskip%d" b in
    Asm.inst a (Inst.Opi (Inst.Andi, Reg.t5, Reg.t1, 1 lsl b));
    Asm.branch_to a Inst.Beq Reg.t5 Reg.x0 l;
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, (2 * b) + 1));
    Asm.label a l
  done;
  (* indirect call: table index from two fresh state bits *)
  Asm.inst a (Inst.Opi (Inst.Srli, Reg.t5, Reg.t1, 9));
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.t5, Reg.t5, 3));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t5, Reg.t5, 3));
  Asm.la a Reg.t4 "ktab";
  Asm.inst a (Inst.Op (Inst.Add, Reg.t4, Reg.t4, Reg.t5));
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t4; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t3, 0));
  (* at least one store per iteration, so a permission downgrade faults
     within one trip round the loop *)
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.s2; rs1 = Reg.s4; imm = 0 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.j a "Louter";
  Asm.label a "Ldone";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.s2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  for k = 0 to 3 do
    Asm.func a (Printf.sprintf "kern%d" k);
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, (3 * k) + 1));
    Asm.ret a
  done;
  Asm.rlabel a "ktab";
  for k = 0 to 3 do
    Asm.rword_label a (Printf.sprintf "kern%d" k)
  done;
  Asm.dlabel a "data";
  Asm.dword64 a 0L;
  let bin = Asm.assemble a in
  (bin, (Binfile.symbol bin "_start").Binfile.sym_addr + patch_off)

let run_tier_phases mode bin ~patch_addr ~f1 ~f2 =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:base_isa () in
  (match mode with
  | `Step -> Machine.set_block_engine m false
  | `Super -> ()
  | `Tiered ->
      Machine.set_tiered m true;
      Machine.set_inline_caches m true
  | `Tiered_noic -> Machine.set_tiered m true);
  Loader.init_machine m bin;
  let s1 = snapshot m (Machine.run ~fuel:f1 m) in
  (* SMC: flip the xori's immediate under cached (and, tiered, hot) blocks;
     the invalidation retires them and severs every IC and chain link into
     them — re-resolution must be transparent *)
  let buf = Bytes.create 4 in
  ignore (Encode.write buf 0 (Inst.Opi (Inst.Xori, Reg.s2, Reg.s2, 0xAA)));
  Memory.poke_bytes mem patch_addr buf;
  Machine.invalidate_code m ~addr:patch_addr ~len:4;
  let s2 = snapshot m (Machine.run ~fuel:f2 m) in
  (* warm-TLB permission downgrade: writable pages turn read-only mid-loop;
     the next store must fault at the same pc in every engine, through any
     tier, relaid layout or inline-cached dispatch *)
  List.iter
    (fun (s : Binfile.section) ->
      if s.Binfile.sec_perm.Memory.w then
        Memory.set_perm mem ~addr:s.Binfile.sec_addr
          ~len:(Bytes.length s.Binfile.sec_data) Memory.perm_r)
    bin.Binfile.sections;
  let s3 = snapshot m (Machine.run ~fuel:50_000 m) in
  (s1, s2, s3)

let prop_tier_differential =
  QCheck.Test.make
    ~name:
      "tiering: step/untiered/tiered/no-ic bit-identical across SMC and TLB downgrade"
    ~count:12
    QCheck.(
      make
        Gen.(
          let* seed = int_bound 100_000 in
          let* f1 = int_range 500 8_000 in
          let* f2 = int_range 500 8_000 in
          return (seed, f1, f2)))
    (fun (seed, f1, f2) ->
      let bin, patch_addr = tier_program (Random.State.make [| seed |]) in
      let r1, r2, r3 = run_tier_phases `Step bin ~patch_addr ~f1 ~f2 in
      List.for_all
        (fun (label, mode) ->
          let b1, b2, b3 = run_tier_phases mode bin ~patch_addr ~f1 ~f2 in
          let what p =
            Printf.sprintf "tier seed=%d f1=%d f2=%d %s phase%d" seed f1 f2 label p
          in
          check_snaps ~what:(what 1) r1 b1
          && check_snaps ~what:(what 2) r2 b2
          && check_snaps ~what:(what 3) r3 b3)
        [ ("super", `Super); ("tiered", `Tiered); ("tiered-noic", `Tiered_noic) ])

(* --- IC state machine golden ------------------------------------------- *)

(* One indirect call site driven through three stages: [rounds] calls to a
   single kernel, then [rounds] cycling three kernels, then [rounds] cycling
   nine (one more than the polymorphic table holds). Checked mid-run by
   fuel: the same site must read Mono after stage one, Poly after stage two
   and Mega at exit. *)
let ic_stages_bin ~rounds =
  let a = Asm.create ~name:"icstages" () in
  Asm.func a "_start";
  Asm.li a Reg.t0 (3 * rounds);
  Asm.li a Reg.s2 0;
  (* kernel index *)
  Asm.li a Reg.s3 rounds;
  Asm.li a Reg.s4 (2 * rounds);
  Asm.li a Reg.s5 0;
  (* checksum *)
  Asm.label a "Louter";
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "Ldone";
  (* stage 1 while t0 > 2*rounds: index pinned to 0 *)
  Asm.branch_to a Inst.Blt Reg.s4 Reg.t0 "Lstage1";
  (* stage 2 while t0 > rounds: index cycles 0,1,2 *)
  Asm.branch_to a Inst.Blt Reg.s3 Reg.t0 "Lstage2";
  (* stage 3: index cycles 0..8 *)
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, 1));
  Asm.li a Reg.t5 9;
  Asm.branch_to a Inst.Blt Reg.s2 Reg.t5 "Ldispatch";
  Asm.li a Reg.s2 0;
  Asm.j a "Ldispatch";
  Asm.label a "Lstage1";
  Asm.li a Reg.s2 0;
  Asm.j a "Ldispatch";
  Asm.label a "Lstage2";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, 1));
  Asm.li a Reg.t5 3;
  Asm.branch_to a Inst.Blt Reg.s2 Reg.t5 "Ldispatch";
  Asm.li a Reg.s2 0;
  Asm.label a "Ldispatch";
  Asm.la a Reg.t5 "ktab";
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t4, Reg.s2, 3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, Reg.t4));
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t5; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t3, 0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.j a "Louter";
  Asm.label a "Ldone";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.s5, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  for k = 0 to 8 do
    Asm.func a (Printf.sprintf "kern%d" k);
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.s5, Reg.s5, (2 * k) + 1));
    Asm.ret a
  done;
  Asm.rlabel a "ktab";
  for k = 0 to 8 do
    Asm.rword_label a (Printf.sprintf "kern%d" k)
  done;
  Asm.assemble a

let state_name = function
  | `Empty -> "empty"
  | `Mono -> "mono"
  | `Poly -> "poly"
  | `Mega -> "mega"

let test_ic_transitions () =
  let rounds = 2_000 in
  let bin = ic_stages_bin ~rounds in
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:base_isa () in
  Machine.set_tiered m true;
  Machine.set_inline_caches m true;
  Loader.init_machine m bin;
  (* each stage retires well over 20k instructions (>= 10 per round), so a
     checkpoint 20k into a stage is past its warm-up but inside it *)
  let stage_fuel = ref 0 in
  let run_until fuel =
    match Machine.run ~fuel:(fuel - !stage_fuel) m with
    | Machine.Fuel_exhausted -> stage_fuel := fuel
    | s ->
        Alcotest.failf "stopped early at fuel %d: %s" fuel
          (match s with
          | Machine.Exited c -> Printf.sprintf "exit %d" c
          | Machine.Faulted f -> Fault.to_string f
          | Machine.Fuel_exhausted -> assert false)
  in
  let state_of site =
    match List.find_opt (fun i -> i.Machine.ici_site = site) (Machine.ic_infos m) with
    | Some i -> i.Machine.ici_state
    | None -> Alcotest.failf "site %#x has no inline cache" site
  in
  (* checkpoint 1: inside stage one, after its warm-up. The hottest site
     with a single cached target is the call site (kernel returns are also
     mono, but the call site must be among the monomorphic ones). *)
  run_until 20_000;
  let mono_sites =
    List.filter_map
      (fun i ->
        if i.Machine.ici_state = `Mono && i.Machine.ici_hits > 100 then
          Some i.Machine.ici_site
        else None)
      (Machine.ic_infos m)
  in
  Alcotest.(check bool) "stage 1 produced hot monomorphic sites" true
    (mono_sites <> []);
  (* checkpoint 2: inside stage three-thirds... stage 2. Exactly one of the
     mono sites must have widened to polymorphic (the call site; returns
     stay mono). *)
  run_until (20_000 + (rounds * 14));
  let poly_sites =
    List.filter (fun s -> state_of s = `Poly) mono_sites
  in
  (match poly_sites with
  | [ _ ] -> ()
  | l ->
      Alcotest.failf "expected exactly one mono->poly site, got %d: [%s]"
        (List.length l)
        (String.concat "; "
           (List.map
              (fun s -> Printf.sprintf "%#x:%s" s (state_name (state_of s)))
              mono_sites)));
  let site = List.hd poly_sites in
  (* run to completion: nine targets overflow the polymorphic table *)
  (match Machine.run ~fuel:10_000_000 m with
  | Machine.Exited _ -> ()
  | s ->
      Alcotest.failf "program did not exit: %s"
        (match s with
        | Machine.Faulted f -> Fault.to_string f
        | Machine.Fuel_exhausted -> "fuel"
        | Machine.Exited _ -> assert false));
  Alcotest.(check string) "call site went megamorphic" "mega"
    (state_name (state_of site));
  (* the transition is one-way: no site is both poly and mega, and the
     machine still reports the kernel-return sites as monomorphic *)
  Alcotest.(check bool) "return sites stayed monomorphic" true
    (List.exists (fun i -> i.Machine.ici_state = `Mono) (Machine.ic_infos m))

(* tiered runs promote: the same program must report blocks above tier 1
   and a recompiled (relaid) block once hot enough *)
let test_tier_promotion_visible () =
  let bin = Programs.branchy ~rounds:20_000 () in
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:Ext.rv64gcv () in
  Machine.set_tiered m true;
  Machine.set_inline_caches m true;
  Loader.init_machine m bin;
  (match Machine.run ~fuel:2_000_000 m with
  | Machine.Exited _ -> ()
  | _ -> Alcotest.fail "branchy did not exit");
  let infos = Machine.block_infos m in
  Alcotest.(check bool) "a block reached tier 3" true
    (List.exists (fun b -> b.Machine.bi_tier = 3) infos);
  Alcotest.(check bool) "a hot block was relaid from its exit profile" true
    (List.exists (fun b -> b.Machine.bi_relaid) infos)

let () =
  Alcotest.run "chimera_tiering"
    [ ("differential", [ QCheck_alcotest.to_alcotest prop_tier_differential ]);
      ("inline-caches",
       [ Alcotest.test_case "mono -> poly -> mega transition" `Quick
           test_ic_transitions ]);
      ("promotion",
       [ Alcotest.test_case "tier promotion and relayout observable" `Quick
           test_tier_promotion_visible ]) ]
