lib/asm/asm.mli: Binfile Inst Reg
