type target = Lbl of string | Abs of int

type fixup =
  | Fbranch of Inst.branch_cond * Reg.t * Reg.t * target
  | Fjal of Reg.t * target
  | Fcj of target
  | Fcbeqz of Reg.t * target
  | Fcbnez of Reg.t * target
  | Fla_hi of Reg.t * target  (* lui rd, hi20(addr) *)
  | Fla_lo of Reg.t * target  (* addi rd, rd, lo12(addr) *)
  | Fload_lo of Inst.mem_width * Reg.t * Reg.t * target
      (* load rd, lo12(addr)(base) *)
  | Fvan_hi of Reg.t * target  (* auipc rd, hi20(target - pc) *)
  | Fvan_lo of Reg.t * target  (* jalr x0, lo12(target - pc_of_auipc)(rd) *)
  | Fdword of target

type t = {
  buf : Buffer.t;
  labels : (string, int) Hashtbl.t;
  mutable fixups : (int * fixup) list;  (* offset, pending patch *)
  mutable exts : Ext.t;
}

let create () =
  { buf = Buffer.create 256;
    labels = Hashtbl.create 16;
    fixups = [];
    exts = Ext.base }

let size t = Buffer.length t.buf

let note_ext t i =
  match Ext.required i with
  | Some e -> t.exts <- Ext.union t.exts (Ext.of_list [ e ])
  | None -> ()

let scratch = Bytes.create 4

let inst t i =
  note_ext t i;
  let n = Encode.write scratch 0 i in
  Buffer.add_subbytes t.buf scratch 0 n

let insts t is = List.iter (inst t) is

let label t name =
  if Hashtbl.mem t.labels name then
    invalid_arg (Printf.sprintf "Codebuf.label: %s already bound" name);
  Hashtbl.replace t.labels name (size t)

let has_label t name = Hashtbl.mem t.labels name
let label_offset t name =
  match Hashtbl.find_opt t.labels name with
  | Some off -> off
  | None -> raise Not_found

let add_fixup t bytes_reserved fx =
  t.fixups <- (size t, fx) :: t.fixups;
  Buffer.add_string t.buf (String.make bytes_reserved '\000')

let branch_l t c rs1 rs2 l = add_fixup t 4 (Fbranch (c, rs1, rs2, Lbl l))
let jal_l t rd l = add_fixup t 4 (Fjal (rd, Lbl l))
let j_l t l = jal_l t Reg.x0 l

let cj_l t l =
  t.exts <- Ext.union t.exts (Ext.of_list [ Ext.C ]);
  add_fixup t 2 (Fcj (Lbl l))

let cbeqz_l t rs1 l =
  t.exts <- Ext.union t.exts (Ext.of_list [ Ext.C ]);
  add_fixup t 2 (Fcbeqz (rs1, Lbl l))

let cbnez_l t rs1 l =
  t.exts <- Ext.union t.exts (Ext.of_list [ Ext.C ]);
  add_fixup t 2 (Fcbnez (rs1, Lbl l))

let la_l t rd l =
  add_fixup t 4 (Fla_hi (rd, Lbl l));
  add_fixup t 4 (Fla_lo (rd, Lbl l))

let lui_hi_l t rd l = add_fixup t 4 (Fla_hi (rd, Lbl l))
let addi_lo_l t rd l = add_fixup t 4 (Fla_lo (rd, Lbl l))
let load_lo_l t width ~rd ~base l = add_fixup t 4 (Fload_lo (width, rd, base, Lbl l))

let jal_abs t rd target = add_fixup t 4 (Fjal (rd, Abs target))
let branch_abs t c rs1 rs2 target = add_fixup t 4 (Fbranch (c, rs1, rs2, Abs target))

let vanilla_jump_abs t rd target =
  add_fixup t 4 (Fvan_hi (rd, Abs target));
  add_fixup t 4 (Fvan_lo (rd, Abs target))

let vanilla_jump_l t rd l =
  add_fixup t 4 (Fvan_hi (rd, Lbl l));
  add_fixup t 4 (Fvan_lo (rd, Lbl l))

let li t rd v =
  if Encode.fits_signed v 12 then inst t (Inst.Opi (Inst.Addi, rd, Reg.x0, v))
  else if Encode.fits_signed v 32 then begin
    inst t (Inst.Lui (rd, Encode.hi20 v));
    let lo = Encode.lo12 v in
    if lo <> 0 then inst t (Inst.Opi (Inst.Addi, rd, rd, lo))
  end
  else invalid_arg (Printf.sprintf "Codebuf.li: %d out of 32-bit range" v)

let la_abs t rd v =
  inst t (Inst.Lui (rd, Encode.hi20 v));
  inst t (Inst.Opi (Inst.Addi, rd, rd, Encode.lo12 v))

let byte t v = Buffer.add_uint8 t.buf (v land 0xFF)
let u16 t v = Buffer.add_uint16_le t.buf (v land 0xFFFF)

let u32 t v =
  u16 t (v land 0xFFFF);
  u16 t ((v lsr 16) land 0xFFFF)

let u64 t v = Buffer.add_int64_le t.buf v
let space t n = Buffer.add_string t.buf (String.make n '\000')

let pad_to t off =
  let cur = Buffer.length t.buf in
  if off < cur then
    invalid_arg (Printf.sprintf "Codebuf.pad_to: offset %d below size %d" off cur);
  space t (off - cur)
let dword_label t l = add_fixup t 8 (Fdword (Lbl l))
let exts t = t.exts

let link t ~base ~resolve =
  let bytes = Buffer.to_bytes t.buf in
  let addr_of = function
    | Abs a -> a
    | Lbl l -> (
        match Hashtbl.find_opt t.labels l with
        | Some off -> base + off
        | None -> (
            match resolve l with
            | Some a -> a
            | None -> invalid_arg (Printf.sprintf "Codebuf.link: unresolved label %s" l)))
  in
  let patch_inst off i =
    (try ignore (Encode.write bytes off i)
     with Invalid_argument msg ->
       invalid_arg (Printf.sprintf "Codebuf.link: at offset %d: %s" off msg))
  in
  List.iter
    (fun (off, fx) ->
      let pc = base + off in
      match fx with
      | Fbranch (c, rs1, rs2, tg) -> patch_inst off (Inst.Branch (c, rs1, rs2, addr_of tg - pc))
      | Fjal (rd, tg) -> patch_inst off (Inst.Jal (rd, addr_of tg - pc))
      | Fcj tg -> patch_inst off (Inst.C_j (addr_of tg - pc))
      | Fcbeqz (rs1, tg) -> patch_inst off (Inst.C_beqz (rs1, addr_of tg - pc))
      | Fcbnez (rs1, tg) -> patch_inst off (Inst.C_bnez (rs1, addr_of tg - pc))
      | Fla_hi (rd, tg) -> patch_inst off (Inst.Lui (rd, Encode.hi20 (addr_of tg)))
      | Fla_lo (rd, tg) ->
          patch_inst off (Inst.Opi (Inst.Addi, rd, rd, Encode.lo12 (addr_of tg)))
      | Fload_lo (width, rd, base, tg) ->
          patch_inst off
            (Inst.Load
               { width; unsigned = false; rd; rs1 = base;
                 imm = Encode.lo12 (addr_of tg) })
      | Fvan_hi (rd, tg) ->
          patch_inst off (Inst.Auipc (rd, Encode.hi20 (addr_of tg - pc)))
      | Fvan_lo (rd, tg) ->
          (* pc of the auipc is 4 bytes earlier. *)
          patch_inst off (Inst.Jalr (Reg.x0, rd, Encode.lo12 (addr_of tg - (pc - 4))))
      | Fdword tg -> Bytes.set_int64_le bytes off (Int64.of_int (addr_of tg)))
    t.fixups;
  bytes
