(* Content-addressed persistent translation cache.

   One directory holds two kinds of artifacts, each a Container-framed
   Marshal payload named by the hex MD5 of the guest content it was derived
   from:

     <key>.rewrite   the CHBP rewrite context (Chbp.t): site tables, SMILE
                     layouts, scavenge results — everything Chbp.rewrite
                     decided about the binary
     <key>.plan      a Machine.plan: decoded runs and post-optimize TIR ops
                     in pre-closure form, superblock shapes and relayout
                     decisions, tier heat and inline-cache seed profiles

   The key is the whole correctness story. It digests the guest code bytes
   (executable pages only — data pages mutate during every run) together
   with the ISA, a caller-supplied configuration tag and the cache schema
   version, so:

   - a different binary, ISA or engine configuration simply addresses a
     different entry (miss, cold compile);
   - plans are stored under a digest taken {e after} the exporting run, so
     a self-modifying program stores under a key that no pristine load of
     the same binary ever computes — its entries become unreachable rather
     than wrong, with no invalidation protocol;
   - bumping [schema_version] orphans every existing entry at once.

   Loads are total: a truncated, bit-flipped, version-skewed or otherwise
   undecodable artifact comes back as [Error reason] (and a [Cache_reject]
   observation), never an exception — the caller falls back to the cold
   path. *)

let schema_version = 1
let magic = "CHIMCAC1"

type t = { dir : string }

let dir t = t.dir

let rec mkdirs path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdirs (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let open_dir dir =
  mkdirs dir;
  { dir }

(* ------------------------------------------------------------------ *)
(* Content digests                                                     *)
(* ------------------------------------------------------------------ *)

let add_header b ~isa ~extra =
  Buffer.add_string b "chimera-cache:";
  Buffer.add_string b (string_of_int schema_version);
  Buffer.add_char b '|';
  Buffer.add_string b (Ext.name isa);
  Buffer.add_char b '|';
  Buffer.add_string b extra

(* Digest the executable pages of a loaded memory image. Page granularity
   matches the permission model; data pages are excluded because a run
   mutates them (the digest of a finished run must still equal the digest
   of a fresh load whenever the code was not self-modified). *)
let digest_mem mem ~isa ~extra =
  let b = Buffer.create 65536 in
  add_header b ~isa ~extra;
  let psize = Memory.page_size in
  List.iter
    (fun (addr, len) ->
      let first = addr / psize and last = (addr + len - 1) / psize in
      for pg = first to last do
        let pa = pg * psize in
        match Memory.perm_at mem pa with
        | Some p when p.Memory.x ->
            let lo = max addr pa and hi = min (addr + len) (pa + psize) in
            Buffer.add_string b (Printf.sprintf "|%x:%x:" lo (hi - lo));
            Buffer.add_bytes b (Memory.peek_bytes mem lo (hi - lo))
        | _ -> ()
      done)
    (Memory.mapped_ranges mem);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Digest a SELF binary before any memory image exists — the address for
   rewrite artifacts, computed from the executable sections plus the entry
   point (which steers disassembly). *)
let digest_bin bin ~extra =
  let b = Buffer.create 65536 in
  add_header b ~isa:bin.Binfile.isa ~extra;
  Buffer.add_string b (Printf.sprintf "|entry:%x" bin.Binfile.entry);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "|%x:%x:" s.Binfile.sec_addr
           (Bytes.length s.Binfile.sec_data));
      Buffer.add_bytes b s.Binfile.sec_data)
    (Binfile.code_sections bin);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Hit/miss telemetry                                                  *)
(* ------------------------------------------------------------------ *)

let g_hits = Atomic.make 0
let g_misses = Atomic.make 0
let g_stores = Atomic.make 0
let g_dedups = Atomic.make 0
let observed () = (Atomic.get g_hits, Atomic.get g_misses, Atomic.get g_stores)
let observed_dedup () = Atomic.get g_dedups

let reset_observed () =
  Atomic.set g_hits 0;
  Atomic.set g_misses 0;
  Atomic.set g_stores 0;
  Atomic.set g_dedups 0

let file_size path = match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

(* ------------------------------------------------------------------ *)
(* Generic framed artifacts                                            *)
(* ------------------------------------------------------------------ *)

let path_of c ~key ~kind = Filename.concat c.dir (key ^ "." ^ kind)

let m_loads = Metrics.counter ~help:"Cache loads served" "chimera_cache_loads_total"
let m_stores = Metrics.counter ~help:"Cache artifacts stored" "chimera_cache_stores_total"

let m_rejects =
  Metrics.counter ~help:"Cache loads rejected (miss or undecodable)"
    "chimera_cache_rejects_total"

let m_entry_bytes =
  Metrics.gauge ~help:"Bytes of cache artifacts written this process"
    "chimera_cache_entry_bytes"

let m_dedups =
  Metrics.counter
    ~help:"Stores skipped because a valid entry already held the digest"
    "chimera_cache_dedup_total"

(* Content addressing makes concurrent stores of one digest redundant, not
   conflicting: every writer would serialize the same artifact. When a
   valid entry already sits at [path] — another tenant won the race, or a
   previous process populated the directory — skip the Marshal + tmp +
   rename entirely. Only a *valid* entry short-circuits; a truncated or
   version-skewed file is overwritten as before. *)
let store_raw c ~key ~kind ~entries v =
  let path = path_of c ~key ~kind in
  match Container.read ~path ~magic ~version:schema_version with
  | Ok _ ->
      ignore (Atomic.fetch_and_add g_dedups 1);
      if !Metrics.enabled then Metrics.incr m_dedups
  | Error _ ->
      Container.write ~path ~magic ~version:schema_version v;
      ignore (Atomic.fetch_and_add g_stores 1);
      if !Metrics.enabled then begin
        Metrics.incr m_stores;
        Metrics.gauge_add m_entry_bytes (file_size path)
      end;
      if !Obs.enabled then
        Obs.emit (Obs.Cache_store { key; entries; bytes = file_size path })

let hit ~key ~entries ~bytes =
  ignore (Atomic.fetch_and_add g_hits 1);
  if !Metrics.enabled then Metrics.incr m_loads;
  if !Obs.enabled then Obs.emit (Obs.Cache_load { key; entries; bytes })

let miss ~key ~reason =
  ignore (Atomic.fetch_and_add g_misses 1);
  if !Metrics.enabled then Metrics.incr m_rejects;
  if !Obs.enabled then Obs.emit (Obs.Cache_reject { key; reason });
  Error reason

let load_raw c ~key ~kind =
  let path = path_of c ~key ~kind in
  match Container.read ~path ~magic ~version:schema_version with
  | Ok v -> Ok (v, file_size path)
  | Error "missing" -> miss ~key ~reason:"miss"
  | Error reason -> miss ~key ~reason

(* ------------------------------------------------------------------ *)
(* Rewrite contexts                                                    *)
(* ------------------------------------------------------------------ *)

let store_rewrite c ~key (ctx : Chbp.t) = store_raw c ~key ~kind:"rewrite" ~entries:1 ctx

let load_rewrite c ~key : (Chbp.t, string) result =
  match load_raw c ~key ~kind:"rewrite" with
  | Ok (ctx, bytes) ->
      hit ~key ~entries:1 ~bytes;
      Ok ctx
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Translation plans                                                   *)
(* ------------------------------------------------------------------ *)

let store_plan c ~key (m : Machine.t) =
  let plan = Machine.export_plan m in
  let blocks, insts = Machine.plan_stats plan in
  store_raw c ~key ~kind:"plan" ~entries:(blocks + insts) plan

(* Load-and-seed as one operation, so the hit/miss accounting reflects
   whether the machine actually went warm: a plan that loads but is then
   refused by the machine (engine-flag skew, replay divergence) is a miss
   with the machine's reason, exactly like a corrupt artifact. *)
let seed_plan c ~key (m : Machine.t) =
  match load_raw c ~key ~kind:"plan" with
  | Error _ as e -> e
  | Ok ((plan : Machine.plan), bytes) -> (
      match Machine.seed_plan m plan with
      | Ok n ->
          let blocks, insts = Machine.plan_stats plan in
          hit ~key ~entries:(blocks + insts) ~bytes;
          Ok n
      | Error reason -> miss ~key ~reason
      | exception _ -> miss ~key ~reason:"seed")

(* ------------------------------------------------------------------ *)
(* Maintenance (CLI + bench)                                           *)
(* ------------------------------------------------------------------ *)

let is_entry name =
  Filename.check_suffix name ".rewrite" || Filename.check_suffix name ".plan"

let stat c =
  match Sys.readdir c.dir with
  | exception Sys_error _ -> (0, 0)
  | names ->
      Array.fold_left
        (fun (n, bytes) name ->
          if is_entry name then
            (n + 1, bytes + file_size (Filename.concat c.dir name))
          else (n, bytes))
        (0, 0) names

let clear c =
  match Sys.readdir c.dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun n name ->
          if is_entry name || Filename.check_suffix name ".tmp" then begin
            (try Sys.remove (Filename.concat c.dir name) with Sys_error _ -> ());
            n + 1
          end
          else n)
        0 names
