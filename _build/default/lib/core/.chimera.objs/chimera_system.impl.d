lib/core/chimera_system.ml: Binfile Chbp Chimera_rt Costs Counters Ext List Loader Machine
