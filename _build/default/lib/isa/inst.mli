(** Instruction AST of the simulated RV64 machine.

    The subset covers what the paper's system needs: the RV64IM base (ALU,
    loads/stores, branches, jumps, system), the C extension (2-byte
    instructions, which create the extra trampoline entry points P2/P3 of
    paper Fig. 4b), the V extension (the paper's running example of an ISAX
    extension: strided loads/stores and arithmetic over 256-bit registers),
    the Zba/Zbb bit-manipulation extension (the paper's upgrade example
    [sh1add]), and one custom-0 instruction used by the Safer baseline to
    model its inlined indirect-jump checks. *)

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type mem_width = B | H | W | D
(** 1, 2, 4 and 8-byte memory accesses. *)

(** Register-register ALU operations (RV64IM + Zba/Zbb). *)
type alu_op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Mul | Mulh | Div | Divu | Rem | Remu
  | Addw | Subw | Sllw | Srlw | Sraw | Mulw | Divw | Remw
  | Sh1add | Sh2add | Sh3add
  | Andn | Orn | Xnor | Min | Max | Minu | Maxu

(** Register-immediate ALU operations. *)
type alui_op =
  | Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai
  | Addiw | Slliw | Srliw | Sraiw

(** The C1 misc-alu two-address operations (x8..x15 register file). *)
type c_alu_op = Csub | Cxor | Cor | Cand | Csubw | Caddw

(** Vector element width selected by [vsetvli]. *)
type sew = E8 | E16 | E32 | E64

val sew_bytes : sew -> int
val sew_name : sew -> string

(** Vector arithmetic operations; [Vmacc] is the multiply-accumulate
    [vd <- vd + vs1*vs2] used by the GEMM kernels. *)
type vop = Vadd | Vsub | Vmul | Vmacc

type t =
  | Lui of Reg.t * int  (** [Lui (rd, imm20)]: rd <- sext(imm20 << 12). *)
  | Auipc of Reg.t * int  (** [Auipc (rd, imm20)]: rd <- pc + sext(imm20 << 12). *)
  | Jal of Reg.t * int  (** [Jal (rd, off)]: byte offset, ±1 MiB, even. *)
  | Jalr of Reg.t * Reg.t * int  (** [Jalr (rd, rs1, simm12)]. *)
  | Branch of branch_cond * Reg.t * Reg.t * int  (** byte offset, ±4 KiB. *)
  | Load of { width : mem_width; unsigned : bool; rd : Reg.t; rs1 : Reg.t; imm : int }
  | Store of { width : mem_width; rs2 : Reg.t; rs1 : Reg.t; imm : int }
  | Op of alu_op * Reg.t * Reg.t * Reg.t  (** [Op (op, rd, rs1, rs2)]. *)
  | Opi of alui_op * Reg.t * Reg.t * int  (** [Opi (op, rd, rs1, imm)]. *)
  | Ecall
  | Ebreak
  (* Compressed (2-byte) instructions. *)
  | C_nop
  | C_ebreak
  | C_addi of Reg.t * int  (** rd <- rd + imm6, rd <> x0. *)
  | C_li of Reg.t * int  (** rd <- imm6. *)
  | C_mv of Reg.t * Reg.t  (** rd <- rs2, rs2 <> x0. *)
  | C_add of Reg.t * Reg.t  (** rd <- rd + rs2, both <> x0. *)
  | C_j of int  (** byte offset, ±2 KiB. *)
  | C_jr of Reg.t  (** pc <- rs1, rs1 <> x0. *)
  | C_jalr of Reg.t  (** ra <- pc+2; pc <- rs1. *)
  | C_beqz of Reg.t * int  (** rs1 in x8..x15; offset ±256 B. *)
  | C_bnez of Reg.t * int
  | C_ld of Reg.t * Reg.t * int  (** [C_ld (rd', rs1', uimm)], regs in x8..x15. *)
  | C_sd of Reg.t * Reg.t * int
  | C_lw of Reg.t * Reg.t * int  (** 32-bit load, sign-extending; regs in x8..x15. *)
  | C_sw of Reg.t * Reg.t * int
  | C_lui of Reg.t * int  (** rd <- sext(imm6 << 12); rd not x0/x2, imm <> 0. *)
  | C_addiw of Reg.t * int  (** rd <- sext32(rd + imm6), rd <> x0. *)
  | C_andi of Reg.t * int  (** rd' <- rd' & imm6, rd' in x8..x15. *)
  | C_alu of c_alu_op * Reg.t * Reg.t
      (** [C_alu (op, rd', rs2')]: two-address ALU over x8..x15. *)
  | C_slli of Reg.t * int
  (* Vector (V extension). *)
  | Vsetvli of Reg.t * Reg.t * sew
      (** [Vsetvli (rd, rs1, sew)]: vl <- min(rs1, VLEN/sew); rd <- vl.
          LMUL is fixed to 1 in this subset. *)
  | Vle of sew * Reg.v * Reg.t  (** unit-stride vector load from [rs1]. *)
  | Vlse of sew * Reg.v * Reg.t * Reg.t
      (** [Vlse (sew, vd, rs1, rs2)]: strided load, byte stride in [rs2]
          (column access in BLAS kernels). *)
  | Vse of sew * Reg.v * Reg.t  (** unit-stride vector store to [rs1]. *)
  | Vsse of sew * Reg.v * Reg.t * Reg.t
      (** [Vsse (sew, vs3, rs1, rs2)]: strided store, byte stride in [rs2]. *)
  | Vop_vv of vop * Reg.v * Reg.v * Reg.v  (** [Vop_vv (op, vd, vs2, vs1)]. *)
  | Vop_vx of vop * Reg.v * Reg.v * Reg.t  (** [Vop_vx (op, vd, vs2, rs1)]. *)
  | Vmv_v_x of Reg.v * Reg.t  (** splat scalar into all elements. *)
  | Vmv_x_s of Reg.t * Reg.v  (** rd <- element 0. *)
  | Vredsum of Reg.v * Reg.v * Reg.v
      (** [Vredsum (vd, vs2, vs1)]: vd[0] <- sum(vs2) + vs1[0]. *)
  (* Custom-0: the Safer baseline's inlined indirect-jump check. *)
  | Xcheck_jalr of Reg.t * Reg.t * int
      (** Behaves like [Jalr] but first routes the target through the
          runtime's address-translation check (see
          {!Chimera_baselines.Safer}), charging the configured check cost. *)
  (* Packed-SIMD (draft P extension, SIMD-within-a-register): the second
     ISAX case study, standing in for vendor DSP extensions. Encoded on
     custom-1 here (the draft-P encodings overlap the OP major opcode). *)
  | P_add16 of Reg.t * Reg.t * Reg.t
      (** [P_add16 (rd, rs1, rs2)]: lane-wise modular addition of four
          16-bit lanes packed in 64-bit registers. *)
  | P_smaqa of Reg.t * Reg.t * Reg.t
      (** [P_smaqa (rd, rs1, rs2)]: signed multiply-accumulate over the
          eight packed 8-bit lanes: rd <- rd + Σ sext8(rs1.b[i]) ×
          sext8(rs2.b[i]). The dot-product primitive of DSP kernels. *)

val size : t -> int
(** Encoded size in bytes: 2 for compressed, 4 otherwise. *)

val is_compressed : t -> bool

val is_control_flow : t -> bool
(** True for jumps, branches, [Ecall]/[Ebreak] and their compressed forms. *)

val is_vector : t -> bool
val is_bitmanip : t -> bool
val is_packed_simd : t -> bool

val defs : t -> Reg.t list
(** Integer registers written. [x0] is never reported. *)

val uses : t -> Reg.t list
(** Integer registers read. [x0] is never reported. *)

val vdefs : t -> Reg.v list
val vuses : t -> Reg.v list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
