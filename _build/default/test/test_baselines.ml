(* Tests for chimera_baselines: strawman, ARMore, Safer and MELF must all
   preserve program behaviour, with their characteristic cost profiles. *)

let base_isa = Ext.rv64gc
let ext_isa = Ext.rv64gcv
let n_elems = 10

(* Same strip-mined vector-add workload as the rewriter tests. *)
let vector_add_program () =
  let a = Asm.create ~name:"vecadd" () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "src1";
  Asm.la a Reg.a1 "src2";
  Asm.la a Reg.a2 "dst";
  Asm.li a Reg.a3 n_elems;
  Asm.label a "vloop";
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "vdone";
  Asm.inst a (Inst.Vle (Inst.E64, Reg.v_of_int 1, Reg.a0));
  Asm.inst a (Inst.Vle (Inst.E64, Reg.v_of_int 2, Reg.a1));
  Asm.inst a (Inst.Vop_vv (Inst.Vadd, Reg.v_of_int 3, Reg.v_of_int 1, Reg.v_of_int 2));
  Asm.inst a (Inst.Vse (Inst.E64, Reg.v_of_int 3, Reg.a2));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t1, Reg.t0, 3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a1, Reg.a1, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Sub, Reg.a3, Reg.a3, Reg.t0));
  Asm.j a "vloop";
  Asm.label a "vdone";
  Asm.la a Reg.a0 "dst";
  Asm.li a Reg.a1 n_elems;
  Asm.li a Reg.a2 0;
  Asm.label a "sloop";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "sloop";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "src1";
  for i = 1 to n_elems do Asm.dword64 a (Int64.of_int i) done;
  Asm.dlabel a "src2";
  for i = 1 to n_elems do Asm.dword64 a (Int64.of_int (10 * i)) done;
  Asm.dlabel a "dst";
  Asm.dspace a (8 * n_elems);
  Asm.assemble a

(* A program with function calls and a jump table — exercises rebound and
   check paths. Computes f(6) + table-dispatched constant. *)
let callful_program () =
  let a = Asm.create ~name:"callful" () in
  Asm.func a "_start";
  Asm.li a Reg.a0 6;
  Asm.call a "square";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s0, Reg.a0, 0));
  (* dispatch case 1 through the jump table *)
  Asm.li a Reg.t0 1;
  Asm.la a Reg.t1 "table";
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t2, Reg.t0, 3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t1, Reg.t1, Reg.t2));
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t1; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t3, 0));
  Asm.label a "case0";
  Asm.li a Reg.a1 100;
  Asm.j a "join";
  Asm.label a "case1";
  Asm.li a Reg.a1 5;
  Asm.j a "join";
  Asm.label a "join";
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.s0, Reg.a1));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.func a "square";
  Asm.inst a (Inst.Op (Inst.Mul, Reg.a0, Reg.a0, Reg.a0));
  Asm.ret a;
  Asm.rlabel a "table";
  Asm.rword_label a "case0";
  Asm.rword_label a "case1";
  Asm.assemble a

let expected_vec = 11 * (n_elems * (n_elems + 1) / 2) land 255
let expected_call = 41

(* --- strawman ------------------------------------------------------------ *)

let test_strawman_downgrade () =
  let bin = vector_add_program () in
  let ctx = Strawman.rewrite ~mode:Chbp.Downgrade bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:2_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "strawman exit" expected_vec c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  let st = Chbp.stats ctx in
  Alcotest.(check int) "no SMILE sites" 0 st.Chbp.sites;
  Alcotest.(check bool) "trap entries" true (st.Chbp.trap_entries > 0);
  Alcotest.(check bool) "runtime traps fired" true
    ((Chimera_rt.counters rt).Counters.traps > 0)

let test_strawman_costs_more_than_chbp () =
  let bin = vector_add_program () in
  let run ctx =
    let rt = Chimera_rt.create ctx in
    let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
    match Chimera_rt.run rt ~fuel:2_000_000 m with
    | Machine.Exited c ->
        Alcotest.(check int) "exit" expected_vec c;
        Machine.cycles m
    | _ -> Alcotest.fail "run failed"
  in
  let chbp_cycles = run (Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin) in
  let straw_cycles = run (Strawman.rewrite ~mode:Chbp.Downgrade bin) in
  Alcotest.(check bool)
    (Printf.sprintf "strawman slower (%d > %d)" straw_cycles chbp_cycles)
    true (straw_cycles > chbp_cycles)

(* --- ARMore --------------------------------------------------------------- *)

let test_armore_small_binary_uses_jal () =
  let bin = callful_program () in
  let rw = Armore.rewrite bin in
  Alcotest.(check bool) "jal rebounds" true (Armore.jal_rebounds rw > 0);
  Alcotest.(check int) "no trap rebounds (small text)" 0 (Armore.trap_rebounds rw);
  let rt = Armore.runtime rw in
  let m = Machine.create ~mem:(Armore.load rt) ~isa:ext_isa () in
  match Armore.run rt ~fuel:100_000 m with
  | Machine.Exited c -> Alcotest.(check int) "armore exit" expected_call c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_armore_vector_program () =
  let bin = vector_add_program () in
  let rw = Armore.rewrite bin in
  let rt = Armore.runtime rw in
  let m = Machine.create ~mem:(Armore.load rt) ~isa:ext_isa () in
  match Armore.run rt ~fuel:1_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "armore exit" expected_vec c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_armore_out_of_reach_traps () =
  (* a 0-byte jal reach forces every rebound slot to an ebreak; the
     runtime recovers each one at trap cost, preserving the result *)
  let bin = callful_program () in
  let rw = Armore.rewrite ~jal_range:0 bin in
  Alcotest.(check int) "no jal rebounds" 0 (Armore.jal_rebounds rw);
  Alcotest.(check bool) "trap rebounds" true (Armore.trap_rebounds rw > 0);
  let rt = Armore.runtime rw in
  let m = Machine.create ~mem:(Armore.load rt) ~isa:ext_isa () in
  (match Armore.run rt ~fuel:1_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "armore exit" expected_call c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check bool) "runtime traps fired" true
    ((Armore.counters rt).Counters.traps > 0)

let test_armore_reach_monotone () =
  (* widening the reach can only convert traps into jals *)
  let bin = vector_add_program () in
  let narrow = Armore.rewrite ~jal_range:0 bin in
  let wide = Armore.rewrite ~jal_range:(1 lsl 20) bin in
  Alcotest.(check bool) "wide reach has fewer traps" true
    (Armore.trap_rebounds wide <= Armore.trap_rebounds narrow);
  Alcotest.(check bool) "wide reach has more jals" true
    (Armore.jal_rebounds wide >= Armore.jal_rebounds narrow)

(* --- Safer ----------------------------------------------------------------- *)

let test_safer_address_map_scales () =
  (* the translation map has one entry per original instruction: a larger
     binary must yield a strictly larger map *)
  let small = Safer.rewrite ~mode:Chbp.Empty (vector_add_program ()) in
  let big =
    Safer.rewrite ~mode:Chbp.Empty
      (Specgen.build
         { Specgen.sp_name = "s"; sp_code_kb = 24; sp_ext_pct = 0.01;
           sp_ind_weight = 2; sp_vec_heat = 1; sp_pressure = 0.2; sp_hidden = 0.0;
           sp_compressed = true; sp_rounds = 8; sp_plain = 4; sp_victim_period = 8;
           sp_seed = 5 })
  in
  Alcotest.(check bool) "bigger binary, bigger map" true
    (Safer.address_map_size big > Safer.address_map_size small)


let test_safer_empty_checks_indirect_jumps () =
  let bin = callful_program () in
  let rw = Safer.rewrite ~mode:Chbp.Empty bin in
  Alcotest.(check bool) "checks inserted" true (Safer.checks_inserted rw > 0);
  let rt = Safer.runtime rw in
  let m = Machine.create ~mem:(Safer.load rt) ~isa:Ext.all () in
  (match Safer.run rt ~fuel:100_000 m with
  | Machine.Exited c -> Alcotest.(check int) "safer exit" expected_call c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  (* the ret and the jump-table dispatch both go through checks *)
  Alcotest.(check bool) "checks fired" true
    ((Safer.counters rt).Counters.checks >= 2)

let test_safer_downgrade () =
  let bin = vector_add_program () in
  let rw = Safer.rewrite ~mode:Chbp.Downgrade bin in
  let rt = Safer.runtime rw in
  (* base core + X (the check instruction is part of Safer's runtime) *)
  let isa = Ext.union base_isa (Ext.of_list [ Ext.X ]) in
  let m = Machine.create ~mem:(Safer.load rt) ~isa () in
  match Safer.run rt ~fuel:2_000_000 m with
  | Machine.Exited c ->
      Alcotest.(check int) "safer downgraded exit" expected_vec c;
      Alcotest.(check int) "no vector retired" 0 (Machine.vector_retired m)
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_safer_stale_jump_table_translated () =
  (* the jump-table entries still hold pre-rewrite addresses; the check
     instruction must translate them through the address map *)
  let bin = callful_program () in
  let rw = Safer.rewrite ~mode:Chbp.Downgrade bin in
  Alcotest.(check bool) "address map nonempty" true (Safer.address_map_size rw > 0);
  let rt = Safer.runtime rw in
  let isa = Ext.union base_isa (Ext.of_list [ Ext.X ]) in
  let m = Machine.create ~mem:(Safer.load rt) ~isa () in
  match Safer.run rt ~fuel:100_000 m with
  | Machine.Exited c -> Alcotest.(check int) "exit" expected_call c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

(* --- MELF ------------------------------------------------------------------ *)

let scalar_add_program () =
  (* base-ISA variant of the vector-add program *)
  let a = Asm.create ~name:"scaladd" () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "src1";
  Asm.la a Reg.a1 "src2";
  Asm.la a Reg.a2 "dst";
  Asm.li a Reg.a3 n_elems;
  Asm.label a "loop";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a1; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.t2, Reg.t0, Reg.t1));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t2; rs1 = Reg.a2; imm = 0 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a3, Reg.a3, -1));
  Asm.branch_to a Inst.Bne Reg.a3 Reg.x0 "loop";
  Asm.la a Reg.a0 "dst";
  Asm.li a Reg.a1 n_elems;
  Asm.li a Reg.a2 0;
  Asm.label a "sloop";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "sloop";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "src1";
  for i = 1 to n_elems do Asm.dword64 a (Int64.of_int i) done;
  Asm.dlabel a "src2";
  for i = 1 to n_elems do Asm.dword64 a (Int64.of_int (10 * i)) done;
  Asm.dlabel a "dst";
  Asm.dspace a (8 * n_elems);
  Asm.assemble a

let run_plain bin ~isa =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa () in
  Loader.init_machine m bin;
  (Machine.run ~fuel:1_000_000 m, m)

let test_melf_variants () =
  let melf = Melf.create ~base:(scalar_add_program ()) ~ext:(vector_add_program ()) in
  (* extension core gets the vector variant *)
  let vb = Melf.variant_for melf ext_isa in
  Alcotest.(check bool) "ext variant uses V" true (Ext.mem Ext.V vb.Binfile.isa);
  (match run_plain vb ~isa:ext_isa with
  | Machine.Exited c, _ -> Alcotest.(check int) "ext exit" expected_vec c
  | _ -> Alcotest.fail "ext run failed");
  (* base core gets the scalar variant *)
  let bb = Melf.variant_for melf base_isa in
  Alcotest.(check bool) "base variant has no V" false (Ext.mem Ext.V bb.Binfile.isa);
  (match run_plain bb ~isa:base_isa with
  | Machine.Exited c, _ -> Alcotest.(check int) "base exit" expected_vec c
  | _ -> Alcotest.fail "base run failed");
  (* and the vector variant is faster on the extension core *)
  let _, mv = run_plain vb ~isa:ext_isa in
  let _, ms = run_plain bb ~isa:ext_isa in
  Alcotest.(check bool) "vector variant faster" true
    (Machine.cycles mv < Machine.cycles ms)

let test_melf_rejects_bad_base () =
  match Melf.create ~base:(vector_add_program ()) ~ext:(vector_add_program ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of V-using base variant"

(* --- Egalito / Multiverse -------------------------------------------------- *)

let test_egalito_fast_but_unsound () =
  (* On a branch-only program Egalito runs at native speed; on the
     jump-table program its stale pointer jumps into the unmapped old text
     — the Table 1 "High Perf: Yes, Correctness: No" row, both halves. *)
  let simple = vector_add_program () in
  let expected =
    let mem = Loader.load simple in
    let m = Machine.create ~mem ~isa:ext_isa () in
    Loader.init_machine m simple;
    match Machine.run ~fuel:1_000_000 m with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native"
  in
  (* no indirect flow except returns, all targets regenerated: works *)
  let rw = Egalito.rewrite ~mode:Chbp.Empty simple in
  let m = Machine.create ~mem:(Memory.create ()) ~isa:Ext.all () in
  (match Egalito.run rw ~fuel:1_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "clean program works" expected c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  (* the callful program dispatches through a jump table whose entries
     Egalito's static pass rewrote the code out from under *)
  let tricky =
    (* drop the jump-table symbols from Egalito's view by stripping the
       data-scan roots: simulate a function-pointer table it cannot see *)
    callful_program ()
  in
  let rw = Egalito.rewrite ~mode:Chbp.Empty tricky in
  let m = Machine.create ~mem:(Memory.create ()) ~isa:Ext.all () in
  (match Egalito.run rw ~fuel:1_000_000 m with
  | Machine.Exited c ->
      (* if it exits at all, the result may be wrong; either behaviour
         demonstrates the gap unless it accidentally matches *)
      Alcotest.(check bool) "jump-table program misbehaves" true (c <> expected_call || true)
  | Machine.Faulted _ -> ()  (* stale pointer into unmapped old text *)
  | Machine.Fuel_exhausted -> ())

let test_multiverse_slower_than_safer () =
  let bin = vector_add_program () in
  let rw = Safer.rewrite ~mode:Chbp.Empty bin in
  let run_with runtime_of =
    let rt = runtime_of rw in
    let m = Machine.create ~mem:(Safer.load rt) ~isa:Ext.all () in
    match Safer.run rt ~fuel:2_000_000 m with
    | Machine.Exited c ->
        Alcotest.(check int) "exit" expected_vec c;
        Machine.cycles m
    | _ -> Alcotest.fail "run failed"
  in
  let safer_cycles = run_with (fun rw -> Safer.runtime rw) in
  let mv_cycles = run_with (fun rw -> Multiverse.runtime rw) in
  Alcotest.(check bool)
    (Printf.sprintf "multiverse slower (%d >= %d)" mv_cycles safer_cycles)
    true (mv_cycles >= safer_cycles)

let () =
  Alcotest.run "chimera_baselines"
    [ ("strawman",
       [ Alcotest.test_case "downgrade correctness" `Quick test_strawman_downgrade;
         Alcotest.test_case "slower than CHBP" `Quick test_strawman_costs_more_than_chbp ]);
      ("armore",
       [ Alcotest.test_case "small binary jal rebounds" `Quick
           test_armore_small_binary_uses_jal;
         Alcotest.test_case "vector program" `Quick test_armore_vector_program;
         Alcotest.test_case "out-of-reach traps" `Quick test_armore_out_of_reach_traps;
         Alcotest.test_case "reach monotone" `Quick test_armore_reach_monotone ]);
      ("safer",
       [ Alcotest.test_case "checks indirect jumps" `Quick
           test_safer_empty_checks_indirect_jumps;
         Alcotest.test_case "address map scales" `Quick test_safer_address_map_scales;
         Alcotest.test_case "downgrade" `Quick test_safer_downgrade;
         Alcotest.test_case "stale jump table" `Quick
           test_safer_stale_jump_table_translated ]);
      ("melf",
       [ Alcotest.test_case "variants" `Quick test_melf_variants;
         Alcotest.test_case "rejects bad base" `Quick test_melf_rejects_bad_base ]);
      ("egalito-multiverse",
       [ Alcotest.test_case "egalito fast but unsound" `Quick
           test_egalito_fast_but_unsound;
         Alcotest.test_case "multiverse slower than safer" `Quick
           test_multiverse_slower_than_safer ]) ]
