lib/asm/codebuf.ml: Buffer Bytes Encode Ext Hashtbl Inst Int64 List Printf Reg String
