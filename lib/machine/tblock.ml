(* Translation superblocks: runs of decoded instructions compiled into
   arrays of closures, validated by page-granular generation counters.

   A superblock extends past direct control flow: inlined direct jumps
   continue decoding at their target, inlined conditional branches continue
   at their fall-through (the taken path leaves the block through a guarded
   side exit at run time), and the block may span several pages — each page
   it touches is recorded in a small per-block page set whose generations
   are summed on revalidation.

   Straight-line instructions are lowered into the linear IR ({!Tir}) and
   buffered; at the first control-flow, non-lowerable or terminating
   instruction the buffered run is handed to the machine's [emit] callback,
   which optimizes it as a whole and returns execution units (each covering
   one or more instructions). The per-instruction metadata (pcs, sizes,
   classes) stays exact regardless of how the emitter groups instructions
   into units, so fuel accounting, fault attribution and the profiler's
   prefix walks are unaffected by IR optimization.

   The module is parameterized over the machine state ['m]: the machine
   supplies [decode], [lower], [compile] and [emit] callbacks, so this
   module owns the block layout, the termination policy and the
   invalidation bookkeeping without depending on the executor. *)

let page_shift =
  let rec go n s = if n <= 1 then s else go (n lsr 1) (s + 1) in
  go Memory.page_size 0

let page_of addr = addr asr page_shift

module Gen = struct
  (* Page-granular generation counters in a growable flat array keyed by
     page index. [stamp]/[stamp_pages] run on the revalidation path after
     every epoch bump, so reads are plain array loads; only [bump] (rare:
     code patching) grows the array. Generations only grow, so two stamps
     over the same pages are equal iff no covered page was bumped in
     between. Pages beyond the array are implicitly at generation 0. *)
  type t = { mutable gens : int array }

  let create () = { gens = Array.make 1024 0 }

  let ensure t p =
    let n = Array.length t.gens in
    if p >= n then begin
      let n' = ref (n * 2) in
      while p >= !n' do
        n' := !n' * 2
      done;
      let a = Array.make !n' 0 in
      Array.blit t.gens 0 a 0 n;
      t.gens <- a
    end

  let bump t ~addr ~len =
    if len > 0 then begin
      let hi = page_of (addr + len - 1) in
      ensure t hi;
      for p = page_of addr to hi do
        t.gens.(p) <- t.gens.(p) + 1
      done
    end

  let stamp t ~lo ~hi =
    let a = t.gens in
    let n = Array.length a in
    let s = ref 0 in
    let p1 = page_of hi in
    let p1 = if p1 >= n then n - 1 else p1 in
    for p = page_of lo to p1 do
      s := !s + Array.unsafe_get a p
    done;
    !s

  let stamp_pages t pages =
    let a = t.gens in
    let n = Array.length a in
    let s = ref 0 in
    for i = 0 to Array.length pages - 1 do
      let p = Array.unsafe_get pages i in
      if p < n then s := !s + Array.unsafe_get a p
    done;
    !s
end

(* What the machine's compiler says about one decoded instruction. *)
type 'm compiled =
  | Op of ('m -> unit)
      (** Straight-line: executes the instruction. The closure does not
          touch the retired counter — the dispatch loop credits it in bulk
          through [auto]. *)
  | Op_self of ('m -> unit)
      (** Straight-line like [Op], but the closure retires internally
          (vector / interpreter-fallback instructions with their own
          accounting); excluded from [auto]. *)
  | Jump of ('m -> unit) * int
      (** Inlined direct jump: the closure transfers to the (static) target
          and retires; decoding continues at the target. *)
  | Brcond of ('m -> unit)
      (** Inlined conditional branch: the closure retires and either falls
          through or takes the side exit (machine-private exception);
          decoding continues at the fall-through. *)
  | Term  (** Event instruction: ends the block, kept decoded. *)
  | Term_fn of ('m -> unit)
      (** Terminator proven event-free at translation time: executed as a
          direct closure by the dispatch loop; [term] still records the
          decoded pair for the interpreter paths. *)
  | Stop  (** Not executable on the fast path (e.g. unsupported extension). *)

(* One execution unit produced by the machine's [emit] callback from a
   lowered IR run: a closure covering [ewidth] consecutive body
   instructions. [eself = true] units retire internally (they contain
   fault-capable accesses and must credit partial progress themselves);
   [eself = false] units leave retirement to the dispatch loop's bulk
   credit. *)
type 'm emitted = { efn : 'm -> unit; ewidth : int; eself : bool }

type 'm t = {
  entry : int;
  pages : int array;  (** deduplicated page indices the block's bytes span *)
  isa : Ext.t;  (** capability set the block was compiled against *)
  stamp : int;
  ops : ('m -> unit) array;
      (** execution units; a unit may cover several instructions (merged
          constant runs, fused memory patterns) *)
  starts : int array;
      (** [starts.(u)] is the body-instruction index of unit [u]'s first
          instruction; length [Array.length ops + 1], with the last entry
          the body instruction count — the fuel accountant's map from units
          to instructions *)
  auto : int array;
      (** [auto.(u)] is the number of auto-retired instructions in units
          [0, u): straight-line units whose closures do not bump the
          retired counter themselves, credited in one add per dispatch;
          same length as [starts] *)
  pcs : int array;  (** pc of each body instruction (icache model, faults) *)
  sizes : int array;
  term : (Inst.t * int) option;
      (** decoded terminator, executed through the machine's event path *)
  term_fn : ('m -> unit) option;
      (** event-free terminator compiled to a closure; when present the
          dispatch loop may execute it instead of routing [term] through
          the interpreter (kept [None] when the machine needs per-fetch
          accounting, e.g. the icache model) *)
  fall : int;
      (** pc where decoding stopped: the fall-through of the last decoded
          instruction (or, after an inlined jump, its target) *)
  classes : Bytes.t;
      (** static profiler class code ({!Profile.class_code}) per body
          instruction — the block's instruction mix, priced once here so the
          profiler can attribute a full-body dispatch with one counter *)
  term_class : int;  (** class code of the terminator, -1 if none *)
  n_jumps : int;  (** inlined direct jumps in the body *)
  n_branches : int;  (** inlined conditional branches (potential side exits) *)
  n_fused : int;
      (** instructions beyond the first in multi-instruction units —
          Σ (unit width − 1) over the body *)
  mutable echeck : int;
      (** machine code-epoch at the last successful validation; equality
          with the current epoch certifies the stamp without re-summing *)
  mutable link_fall : 'm t option;  (** chained successor at [fall] *)
  mutable link_taken : 'm t option;
      (** chained successor for any other target (side exit, terminator) *)
  mutable prow : Profile.row option;
      (** cached profiler row for [entry]; valid only while
          [Profile.row_live] holds for the machine's attached profile *)
  mutable tier : int;
      (** execution tier this block was translated at: 1 = straight-line
          block, 2 = superblock, 3 = IR-optimized superblock. Untiered
          machines translate everything at the top tier their flags allow. *)
  mutable relaid : bool;
      (** profile-guided layout already applied: the block was recompiled
          from its observed side-exit profile and must not be recompiled
          again (the tiering driver's convergence guarantee) *)
  mutable hot : int;
      (** dispatches since translation — the hotness counter driving tier
          promotion and the recompile trigger; also the denominator of the
          per-branch observed taken rates in [xexits] *)
  mutable xexits : int array;
      (** per-unit side-exit counts ([xexits.(u)] = side exits raised by
          unit [u]); [|])] until the first side exit, then length
          [Array.length ops]. Together with [hot] this is the observed
          exit profile that profile-guided recompilation reads. *)
}

let default_max_insts = 256
let default_max_pages = 8

(* Decode a superblock starting at [entry]. The run ends at the first event
   instruction (kept as the decoded terminator), at the first undecodable or
   fast-path-ineligible instruction, when the next instruction would push
   the page set past [max_pages], or after [max_insts] instructions.
   Inlined jumps redirect decoding to their target; inlined branches
   continue on the fall-through path. A degenerate block (empty body, no
   terminator) still covers the entry bytes so that patching them
   invalidates it. *)
let translate ?(max_insts = default_max_insts) ?(max_pages = default_max_pages)
    ~gens ~epoch ~isa ~decode ~lower ~compile ~emit entry =
  (* Units and per-instruction metadata accumulate separately: the emitter
     groups instructions into units, never metadata. *)
  let units = ref [] and widths = ref [] and selfs = ref [] and nunits = ref 0 in
  let pcs = ref [] and sizes = ref [] and classes = ref [] in
  let n_insts = ref 0 in
  let pages = ref [] and n_pages = ref 0 in
  let n_jumps = ref 0 and n_branches = ref 0 and n_fused = ref 0 in
  let term = ref None and term_fn = ref None and term_class = ref (-1) in
  let pc = ref entry in
  let stop = ref false in
  let covers p = List.mem p !pages in
  let pages_fit a len =
    let p0 = page_of a and p1 = page_of (a + len - 1) in
    let need =
      (if covers p0 then 0 else 1)
      + if p1 <> p0 && not (covers p1) then 1 else 0
    in
    !n_pages + need <= max_pages
  in
  let add_pages a len =
    let p0 = page_of a and p1 = page_of (a + len - 1) in
    if not (covers p0) then begin
      pages := p0 :: !pages;
      incr n_pages
    end;
    if p1 <> p0 && not (covers p1) then begin
      pages := p1 :: !pages;
      incr n_pages
    end
  in
  let push_unit f w ~self =
    units := f :: !units;
    widths := w :: !widths;
    selfs := self :: !selfs;
    incr nunits
  in
  let push_inst ipc size cls =
    pcs := ipc :: !pcs;
    sizes := size :: !sizes;
    classes := cls :: !classes;
    incr n_insts
  in
  (* Straight-line instructions are lowered into an IR run buffer; at any
     block event (control flow, non-lowerable instruction, terminator,
     block end) the buffered run is optimized and emitted as units. The
     per-instruction metadata is pushed eagerly at decode, so unit order
     follows decode order and metadata is never touched by the emitter. *)
  let run = ref [] and nrun = ref 0 in
  let flush_run () =
    if !nrun > 0 then begin
      let ops = Array.of_list (List.rev !run) in
      let ninsts = !nrun in
      run := [];
      nrun := 0;
      let us = emit ops in
      let nu = List.length us in
      List.iter (fun e -> push_unit e.efn e.ewidth ~self:e.eself) us;
      (* instructions beyond one-per-unit were merged *)
      n_fused := !n_fused + (ninsts - nu)
    end
  in
  while not !stop do
    if !n_insts >= max_insts then begin
      flush_run ();
      stop := true
    end
    else
      match decode !pc with
      | None ->
          flush_run ();
          stop := true
      | Some (inst, size) ->
          if not (pages_fit !pc size) then begin
            flush_run ();
            stop := true
          end
          else (
            match lower ~pc:!pc inst size with
            | Some iop ->
                add_pages !pc size;
                push_inst !pc size (Profile.class_code inst);
                run := iop :: !run;
                incr nrun;
                pc := !pc + size
            | None -> (
                (* The buffered run must be emitted BEFORE [compile] runs:
                   emission replays the run through the machine's
                   translation-time register state, and [compile] may
                   clobber or update that state for the event instruction
                   (interpreter fallback, inlined call) — in program
                   order, the run comes first. *)
                flush_run ();
                match compile ~pc:!pc inst size with
                | Stop -> stop := true
                | Term ->
                    add_pages !pc size;
                    term := Some (inst, size);
                    term_class := Profile.class_code inst;
                    pc := !pc + size;
                    stop := true
                | Term_fn f ->
                    add_pages !pc size;
                    term := Some (inst, size);
                    term_fn := Some f;
                    term_class := Profile.class_code inst;
                    pc := !pc + size;
                    stop := true
                | Op f ->
                    add_pages !pc size;
                    push_inst !pc size (Profile.class_code inst);
                    push_unit f 1 ~self:false;
                    pc := !pc + size
                | Op_self f ->
                    (* carries its own retire accounting *)
                    add_pages !pc size;
                    push_inst !pc size (Profile.class_code inst);
                    push_unit f 1 ~self:true;
                    pc := !pc + size
                | Jump (f, target) ->
                    add_pages !pc size;
                    push_inst !pc size (Profile.class_code inst);
                    push_unit f 1 ~self:true;
                    incr n_jumps;
                    pc := target
                | Brcond f ->
                    add_pages !pc size;
                    push_inst !pc size (Profile.class_code inst);
                    push_unit f 1 ~self:true;
                    incr n_branches;
                    pc := !pc + size))
  done;
  (* A degenerate block covers the widest possible instruction at the entry
     so a patch there re-translates. *)
  if !n_insts = 0 && !term = None then add_pages entry 4;
  let widths = Array.of_list (List.rev !widths) in
  let selfs = Array.of_list (List.rev !selfs) in
  let starts = Array.make (!nunits + 1) 0 in
  let auto = Array.make (!nunits + 1) 0 in
  for i = 0 to !nunits - 1 do
    starts.(i + 1) <- starts.(i) + widths.(i);
    auto.(i + 1) <- auto.(i) + (if selfs.(i) then 0 else widths.(i))
  done;
  let pages = Array.of_list !pages in
  { entry;
    pages;
    isa;
    stamp = Gen.stamp_pages gens pages;
    ops = Array.of_list (List.rev !units);
    starts;
    auto;
    pcs = Array.of_list (List.rev !pcs);
    sizes = Array.of_list (List.rev !sizes);
    term = !term;
    term_fn = !term_fn;
    fall = !pc;
    classes =
      (let l = List.rev !classes in
       let b = Bytes.create (List.length l) in
       List.iteri (fun i c -> Bytes.set_uint8 b i c) l;
       b);
    term_class = !term_class;
    n_jumps = !n_jumps;
    n_branches = !n_branches;
    n_fused = !n_fused;
    echeck = epoch;
    link_fall = None;
    link_taken = None;
    prow = None;
    tier = 3;
    relaid = false;
    hot = 0;
    xexits = [||] }

(* Fast validity: a block checked under the current code epoch is valid by
   construction (the epoch advances on every generation bump). On an epoch
   change, fall back to the full page-set stamp + capability check and
   re-certify; generations are monotonic, so an equal sum proves no covered
   page changed. A block that fails here is replaced in the block table —
   its [echeck] is never refreshed again, so any chain link still pointing
   at it can never pass the epoch guard (links are severed lazily). *)
let revalidate gens ~isa ~epoch b =
  b.echeck = epoch
  || (Ext.equal isa b.isa
      && Gen.stamp_pages gens b.pages = b.stamp
      &&
      (b.echeck <- epoch;
       true))

let epoch_current b epoch = b.echeck = epoch
let set_link_fall b next = b.link_fall <- Some next
let set_link_taken b next = b.link_taken <- Some next
let set_prow b r = b.prow <- r

(* A replaced block (tier promotion, profile-guided recompile) must never
   pass a chain or inline-cache epoch guard again. Epochs only grow from 0,
   so [min_int] is unreachable; and since the block is simultaneously
   dropped from the block table, nothing ever calls [revalidate] on it to
   refresh [echeck]. This severs every link into the block lazily without
   bumping the global epoch (which would sever everyone's links). *)
let retire b =
  b.echeck <- min_int;
  b.link_fall <- None;
  b.link_taken <- None

let set_tier b ~tier ~relaid =
  b.tier <- tier;
  b.relaid <- relaid

(* Restoring a persisted heat count when a cached translation is seeded, so a
   warm start resumes at the block's exported temperature instead of re-earning
   promotion from zero. *)
let set_hot b hot = b.hot <- hot

(* Pre-increment so the first dispatch reads 1: threshold compares stay
   off-by-one-proof ([tick_hot b >= threshold]). *)
let tick_hot b =
  b.hot <- b.hot + 1;
  b.hot

let note_exit b u =
  if Array.length b.xexits = 0 then b.xexits <- Array.make (Array.length b.ops) 0;
  if u >= 0 && u < Array.length b.xexits then
    b.xexits.(u) <- b.xexits.(u) + 1

let exit_count b u = if u < Array.length b.xexits then b.xexits.(u) else 0

let exits_total b = Array.fold_left ( + ) 0 b.xexits

let body_length b = Array.length b.pcs

let degenerate b = Array.length b.ops = 0 && b.term = None
