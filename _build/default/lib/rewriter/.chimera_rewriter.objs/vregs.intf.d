lib/rewriter/vregs.mli: Binfile Reg
