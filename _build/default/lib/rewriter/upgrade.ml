type kind =
  | Elementwise of Inst.vop
  | Axpy of Reg.t
  | Copy
  | Fill of Reg.t
  | Reduce of Reg.t

type candidate = {
  c_addr : int;
  c_len : int;
  c_exit : int;
  c_kind : kind;
  c_sew : Inst.sew;
  c_p1 : Reg.t;
  c_p2 : Reg.t;
  c_p3 : Reg.t;
  c_n : Reg.t;
  c_st1 : int;
  c_st2 : int;
  c_st3 : int;
  c_x : Reg.t;
  c_y : Reg.t;
  c_z : Reg.t;
}

let sew_of_width = function
  | Inst.D -> Some (Inst.E64, 8)
  | Inst.W -> Some (Inst.E32, 4)
  | Inst.B | Inst.H -> None

let elementwise_ops = function
  | Inst.E64 -> [ (Inst.Add, Inst.Vadd); (Inst.Sub, Inst.Vsub); (Inst.Mul, Inst.Vmul) ]
  | Inst.E32 -> [ (Inst.Addw, Inst.Vadd); (Inst.Subw, Inst.Vsub); (Inst.Mulw, Inst.Vmul) ]
  | Inst.E16 | Inst.E8 -> []

let match_elementwise (b : Cfg.block) =
  match b.Cfg.b_insns with
  | [ { inst = Inst.Load { width = w1; unsigned = false; rd = x; rs1 = p1; imm = 0 }; _ };
      { inst = Inst.Load { width = w2; unsigned = false; rd = y; rs1 = p2; imm = 0 }; _ };
      { inst = Inst.Op (op, z, x', y'); _ };
      { inst = Inst.Store { width = w3; rs2 = z'; rs1 = p3; imm = 0 }; _ };
      { inst = Inst.Opi (Inst.Addi, p1a, p1b, s1); _ };
      { inst = Inst.Opi (Inst.Addi, p2a, p2b, s2); _ };
      { inst = Inst.Opi (Inst.Addi, p3a, p3b, s3); _ };
      { inst = Inst.Opi (Inst.Addi, na, nb, -1); _ };
      ({ inst = Inst.Branch (Inst.Bne, nc, z0, off); _ } as bi) ]
    when Reg.equal z0 Reg.x0 -> (
      match sew_of_width w1 with
      | None -> None
      | Some (sew, sz) ->
          let vop = List.assoc_opt op (elementwise_ops sew) in
          let eq = Reg.equal in
          let distinct =
            (not (eq x y)) && (not (eq x p1)) && (not (eq y p2)) && (not (eq z p3))
            && (not (eq p1 p2)) && (not (eq p1 p3)) && (not (eq p2 p3))
            && (not (eq na p1)) && (not (eq na p2)) && (not (eq na p3))
            && (not (eq na x)) && (not (eq na y)) && not (eq na z)
          in
          if
            vop <> None && w2 = w1 && w3 = w1
            && eq x x' && eq y y' && eq z z'
            && eq p1a p1 && eq p1b p1 && s1 >= sz
            && eq p2a p2 && eq p2b p2 && s2 >= sz
            && eq p3a p3 && eq p3b p3 && s3 >= sz
            && eq na nb && eq na nc && distinct
            && bi.Disasm.addr + off = b.Cfg.b_addr
          then
            let exit_addr = bi.Disasm.addr + bi.Disasm.size in
            Some
              { c_addr = b.Cfg.b_addr;
                c_len = exit_addr - b.Cfg.b_addr;
                c_exit = exit_addr;
                c_kind = Elementwise (Option.get vop);
                c_sew = sew;
                c_p1 = p1;
                c_p2 = p2;
                c_p3 = p3;
                c_n = na;
                c_st1 = s1;
                c_st2 = s2;
                c_st3 = s3;
                c_x = x;
                c_y = y;
                c_z = z }
          else None)
  | _ -> None

let match_axpy (b : Cfg.block) =
  match b.Cfg.b_insns with
  | [ { inst = Inst.Load { width = w1; unsigned = false; rd = y; rs1 = p1; imm = 0 }; _ };
      { inst = Inst.Op (mulop, t, y', s); _ };
      { inst = Inst.Load { width = w2; unsigned = false; rd = z; rs1 = p2; imm = 0 }; _ };
      { inst = Inst.Op (addop, z', z'', t'); _ };
      { inst = Inst.Store { width = w3; rs2 = z3; rs1 = p2'; imm = 0 }; _ };
      { inst = Inst.Opi (Inst.Addi, p1a, p1b, s1); _ };
      { inst = Inst.Opi (Inst.Addi, p2a, p2b, s2); _ };
      { inst = Inst.Opi (Inst.Addi, na, nb, -1); _ };
      ({ inst = Inst.Branch (Inst.Bne, nc, z0, off); _ } as bi) ]
    when Reg.equal z0 Reg.x0 -> (
      match sew_of_width w1 with
      | None -> None
      | Some (sew, sz) ->
          let eq = Reg.equal in
          let ops_ok =
            match sew with
            | Inst.E64 -> mulop = Inst.Mul && addop = Inst.Add
            | Inst.E32 -> mulop = Inst.Mulw && addop = Inst.Addw
            | Inst.E16 | Inst.E8 -> false
          in
          let distinct =
            (not (eq y z)) && (not (eq y t)) && (not (eq z t))
            && (not (eq p1 p2)) && (not (eq s y)) && (not (eq s t)) && (not (eq s z))
            && (not (eq na p1)) && (not (eq na p2)) && (not (eq na s))
            && (not (eq na y)) && (not (eq na t)) && not (eq na z)
          in
          if
            ops_ok && w2 = w1 && w3 = w1
            && eq y y' && eq t t' && eq z z'' && eq z z' && eq z z3 && eq p2 p2'
            && eq p1a p1 && eq p1b p1 && s1 >= sz
            && eq p2a p2 && eq p2b p2 && s2 >= sz
            && eq na nb && eq na nc && distinct
            && bi.Disasm.addr + off = b.Cfg.b_addr
          then
            let exit_addr = bi.Disasm.addr + bi.Disasm.size in
            Some
              { c_addr = b.Cfg.b_addr;
                c_len = exit_addr - b.Cfg.b_addr;
                c_exit = exit_addr;
                c_kind = Axpy s;
                c_sew = sew;
                c_p1 = p1;
                c_p2 = p2;
                c_p3 = p2;
                c_n = na;
                c_st1 = s1;
                c_st2 = s2;
                c_st3 = s2;
                c_x = y;
                c_y = t;
                c_z = z }
          else None)
  | _ -> None

let match_copy (b : Cfg.block) =
  match b.Cfg.b_insns with
  | [ { inst = Inst.Load { width = w1; unsigned = false; rd = x; rs1 = p1; imm = 0 }; _ };
      { inst = Inst.Store { width = w2; rs2 = x'; rs1 = p2; imm = 0 }; _ };
      { inst = Inst.Opi (Inst.Addi, p1a, p1b, s1); _ };
      { inst = Inst.Opi (Inst.Addi, p2a, p2b, s2); _ };
      { inst = Inst.Opi (Inst.Addi, na, nb, -1); _ };
      ({ inst = Inst.Branch (Inst.Bne, nc, z0, off); _ } as bi) ]
    when Reg.equal z0 Reg.x0 -> (
      match sew_of_width w1 with
      | None -> None
      | Some (sew, sz) ->
          let eq = Reg.equal in
          let distinct =
            (not (eq x p1)) && (not (eq x p2)) && (not (eq p1 p2))
            && (not (eq na p1)) && (not (eq na p2)) && not (eq na x)
          in
          if
            w2 = w1 && eq x x'
            && eq p1a p1 && eq p1b p1 && s1 >= sz
            && eq p2a p2 && eq p2b p2 && s2 >= sz
            && eq na nb && eq na nc && distinct
            && bi.Disasm.addr + off = b.Cfg.b_addr
          then
            let exit_addr = bi.Disasm.addr + bi.Disasm.size in
            Some
              { c_addr = b.Cfg.b_addr;
                c_len = exit_addr - b.Cfg.b_addr;
                c_exit = exit_addr;
                c_kind = Copy;
                c_sew = sew;
                c_p1 = p1;
                c_p2 = p2;
                c_p3 = p2;
                c_n = na;
                c_st1 = s1;
                c_st2 = s2;
                c_st3 = s2;
                c_x = x;
                c_y = x;
                c_z = x }
          else None)
  | _ -> None

let match_fill (b : Cfg.block) =
  match b.Cfg.b_insns with
  | [ { inst = Inst.Store { width = w1; rs2 = s; rs1 = p1; imm = 0 }; _ };
      { inst = Inst.Opi (Inst.Addi, p1a, p1b, s1); _ };
      { inst = Inst.Opi (Inst.Addi, na, nb, -1); _ };
      ({ inst = Inst.Branch (Inst.Bne, nc, z0, off); _ } as bi) ]
    when Reg.equal z0 Reg.x0 -> (
      match sew_of_width w1 with
      | None -> None
      | Some (sew, sz) ->
          let eq = Reg.equal in
          if
            (not (eq s p1)) && (not (eq na p1)) && (not (eq na s))
            && eq p1a p1 && eq p1b p1 && s1 >= sz
            && eq na nb && eq na nc
            && bi.Disasm.addr + off = b.Cfg.b_addr
          then
            let exit_addr = bi.Disasm.addr + bi.Disasm.size in
            Some
              { c_addr = b.Cfg.b_addr;
                c_len = exit_addr - b.Cfg.b_addr;
                c_exit = exit_addr;
                c_kind = Fill s;
                c_sew = sew;
                c_p1 = p1;
                c_p2 = p1;
                c_p3 = p1;
                c_n = na;
                c_st1 = s1;
                c_st2 = s1;
                c_st3 = s1;
                c_x = Reg.x0;
                c_y = Reg.x0;
                c_z = Reg.x0 }
          else None)
  | _ -> None

let match_reduce (b : Cfg.block) =
  match b.Cfg.b_insns with
  | [ { inst = Inst.Load { width = w1; unsigned = false; rd = x; rs1 = p1; imm = 0 }; _ };
      { inst = Inst.Op (addop, acc, a1, a2); _ };
      { inst = Inst.Opi (Inst.Addi, p1a, p1b, s1); _ };
      { inst = Inst.Opi (Inst.Addi, na, nb, -1); _ };
      ({ inst = Inst.Branch (Inst.Bne, nc, z0, off); _ } as bi) ]
    when Reg.equal z0 Reg.x0 -> (
      match sew_of_width w1 with
      | None -> None
      | Some (sew, sz) ->
          let eq = Reg.equal in
          let ops_ok =
            match sew with
            | Inst.E64 -> addop = Inst.Add
            | Inst.E32 -> addop = Inst.Addw
            | Inst.E16 | Inst.E8 -> false
          in
          let operands_ok = (eq a1 acc && eq a2 x) || (eq a1 x && eq a2 acc) in
          let distinct =
            (not (eq x acc)) && (not (eq x p1)) && (not (eq acc p1))
            && (not (eq na p1)) && (not (eq na x)) && not (eq na acc)
          in
          if
            ops_ok && operands_ok && distinct
            && eq p1a p1 && eq p1b p1 && s1 >= sz
            && eq na nb && eq na nc
            && bi.Disasm.addr + off = b.Cfg.b_addr
          then
            let exit_addr = bi.Disasm.addr + bi.Disasm.size in
            Some
              { c_addr = b.Cfg.b_addr;
                c_len = exit_addr - b.Cfg.b_addr;
                c_exit = exit_addr;
                c_kind = Reduce acc;
                c_sew = sew;
                c_p1 = p1;
                c_p2 = p1;
                c_p3 = p1;
                c_n = na;
                c_st1 = s1;
                c_st2 = s1;
                c_st3 = s1;
                c_x = x;
                c_y = x;
                c_z = x }
          else None)
  | _ -> None

let match_block b =
  let rec first = function
    | [] -> None
    | m :: rest -> ( match m b with Some c -> Some c | None -> first rest)
  in
  first [ match_elementwise; match_axpy; match_copy; match_fill; match_reduce ]

let find cfg live =
  Cfg.blocks cfg
  |> List.filter_map (fun b ->
         match match_block b with
         | None -> None
         | Some c -> (
             (* the vector version does not produce x, y, z: require them
                dead at the loop exit. *)
             match Liveness.live_in_at live c.c_exit with
             | None -> Some c
             | Some mask ->
                 if
                   (not (Regmask.mem c.c_x mask))
                   && (not (Regmask.mem c.c_y mask))
                   && not (Regmask.mem c.c_z mask)
                 then Some c
                 else None))

let gensym =
  let c = ref 0 in
  fun pfx ->
    incr c;
    Printf.sprintf ".U%s%d" pfx !c

let emit_vector_loop cb c =
  let v1 = Reg.v_of_int 1 and v2 = Reg.v_of_int 2 and v3 = Reg.v_of_int 3 in
  let scalars =
    match c.c_kind with
    | Axpy s | Fill s | Reduce s -> [ s ]
    | Elementwise _ | Copy -> []
  in
  let exclude = Regmask.of_list ([ c.c_p1; c.c_p2; c.c_p3; c.c_n ] @ scalars) in
  let sz = Inst.sew_bytes c.c_sew in
  match Scavenge.pick ~n:3 ~exclude with
  | [ t; toff; tst ] ->
      Scavenge.with_spills cb [ t; toff; tst ] (fun () ->
          let loop = gensym "vec" and done_l = gensym "vecdone" in
          let lg =
            match c.c_sew with Inst.E64 -> 3 | Inst.E32 -> 2 | Inst.E16 -> 1 | Inst.E8 -> 0
          in
          (* unit-stride pointers use vle/vse; column walks load the byte
             stride into [tst] and use the strided forms *)
          let vload vd p st =
            if st = sz then Codebuf.inst cb (Inst.Vle (c.c_sew, vd, p))
            else begin
              Codebuf.li cb tst st;
              Codebuf.inst cb (Inst.Vlse (c.c_sew, vd, p, tst))
            end
          in
          let vstore vs p st =
            if st = sz then Codebuf.inst cb (Inst.Vse (c.c_sew, vs, p))
            else begin
              Codebuf.li cb tst st;
              Codebuf.inst cb (Inst.Vsse (c.c_sew, vs, p, tst))
            end
          in
          (* p += vl * st *)
          let bump p st =
            if st = sz then begin
              Codebuf.inst cb (Inst.Opi (Inst.Slli, toff, t, lg));
              Codebuf.inst cb (Inst.Op (Inst.Add, p, p, toff))
            end
            else begin
              Codebuf.li cb tst st;
              Codebuf.inst cb (Inst.Op (Inst.Mul, toff, t, tst));
              Codebuf.inst cb (Inst.Op (Inst.Add, p, p, toff))
            end
          in
          Codebuf.label cb loop;
          Codebuf.inst cb (Inst.Vsetvli (t, c.c_n, c.c_sew));
          Codebuf.branch_l cb Inst.Beq t Reg.x0 done_l;
          (match c.c_kind with
          | Elementwise op ->
              vload v1 c.c_p1 c.c_st1;
              vload v2 c.c_p2 c.c_st2;
              Codebuf.inst cb (Inst.Vop_vv (op, v3, v1, v2));
              vstore v3 c.c_p3 c.c_st3
          | Axpy s ->
              vload v1 c.c_p1 c.c_st1;
              vload v2 c.c_p2 c.c_st2;
              Codebuf.inst cb (Inst.Vop_vx (Inst.Vmacc, v2, v1, s));
              vstore v2 c.c_p2 c.c_st2
          | Copy ->
              vload v1 c.c_p1 c.c_st1;
              vstore v1 c.c_p2 c.c_st2
          | Fill s ->
              Codebuf.inst cb (Inst.Vmv_v_x (v1, s));
              vstore v1 c.c_p1 c.c_st1
          | Reduce acc ->
              (* v3[0] <- sum(v1) + acc, read back into the accumulator *)
              vload v1 c.c_p1 c.c_st1;
              Codebuf.inst cb (Inst.Vmv_v_x (v2, acc));
              Codebuf.inst cb (Inst.Vredsum (v3, v1, v2));
              Codebuf.inst cb (Inst.Vmv_x_s (acc, v3)));
          bump c.c_p1 c.c_st1;
          (match c.c_kind with
          | Elementwise _ | Axpy _ | Copy -> bump c.c_p2 c.c_st2
          | Fill _ | Reduce _ -> ());
          (match c.c_kind with
          | Elementwise _ -> bump c.c_p3 c.c_st3
          | Axpy _ | Copy | Fill _ | Reduce _ -> ());
          Codebuf.inst cb (Inst.Op (Inst.Sub, c.c_n, c.c_n, t));
          Codebuf.j_l cb loop;
          Codebuf.label cb done_l)
  | _ -> assert false
