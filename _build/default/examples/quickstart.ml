(* Quickstart: rewrite a vector binary for a base core and run it.

     dune exec examples/quickstart.exe

   This walks the whole Chimera pipeline on a small RVV program:
   1. "compile" a strip-mined vector-add binary (RV64GCV);
   2. run it natively on an extension core;
   3. watch it fault on a base core;
   4. deploy it with Chimera: CHBP downgrades it for the base core;
   5. run the rewritten binary on the base core and compare results. *)

let ext_core = Ext.rv64gcv
let base_core = Ext.rv64gc

let () =
  (* 1. a vectorized program: dst[i] = src1[i] + src2[i], checksum as exit *)
  let bin = Programs.vecadd ~name:"quickstart" `Ext ~n:24 in
  Format.printf "Built %s:@.%a@.@." bin.Binfile.name Binfile.pp_summary bin;

  (* 2. native run on the extension core *)
  let run_plain isa =
    let mem = Loader.load bin in
    let m = Machine.create ~mem ~isa () in
    Loader.init_machine m bin;
    (Machine.run ~fuel:1_000_000 m, m)
  in
  let expected =
    match run_plain ext_core with
    | Machine.Exited code, m ->
        Format.printf "extension core: exit %d in %d cycles (%d vector insts)@."
          code (Machine.cycles m) (Machine.vector_retired m);
        code
    | _ -> failwith "native run failed"
  in

  (* 3. the same binary on a base core hits the V extension *)
  (match run_plain base_core with
  | Machine.Faulted f, m ->
      Format.printf "base core:      %s after %d instructions@."
        (Fault.to_string f) (Machine.retired m)
  | _ -> failwith "expected an illegal-instruction fault");

  (* 4. deploy with Chimera: one rewritten binary per core class *)
  let dep = Chimera_system.deploy bin ~cores:[ base_core; ext_core ] in
  List.iter
    (fun (cls, st) ->
      Format.printf "@.CHBP rewriting for %s:@.%a@." (Ext.name cls) Chbp.pp_stats st)
    (Chimera_system.rewrite_stats dep);

  (* 5. transparent execution on the base core *)
  match Chimera_system.run dep ~isa:base_core ~fuel:1_000_000 with
  | Machine.Exited code, m ->
      Format.printf "@.base core (rewritten): exit %d in %d cycles (%d vector insts)@."
        code (Machine.cycles m) (Machine.vector_retired m);
      assert (code = expected);
      Format.printf "results match the extension core. \xe2\x9c\x93@."
  | Machine.Faulted f, _ -> failwith (Fault.to_string f)
  | Machine.Fuel_exhausted, _ -> failwith "fuel exhausted"
