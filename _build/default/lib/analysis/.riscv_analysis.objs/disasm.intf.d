lib/analysis/disasm.mli: Binfile Format Inst
