examples/heterogeneous_matmul.mli:
