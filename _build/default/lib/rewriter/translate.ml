let gensym =
  let c = ref 0 in
  fun pfx ->
    incr c;
    Printf.sprintf ".T%s%d" pfx !c

let can_downgrade i = Inst.is_vector i || Inst.is_bitmanip i || Inst.is_packed_simd i

let width_of_sew = function
  | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D

let load_off sew rd rs1 imm =
  Inst.Load { width = width_of_sew sew; unsigned = false; rd; rs1; imm }

let store_off sew rs2 rs1 imm = Inst.Store { width = width_of_sew sew; rs2; rs1; imm }
let load_w sew rd rs1 = load_off sew rd rs1 0
let store_w sew rs2 rs1 = store_off sew rs2 rs1 0

let add_op = function Inst.E64 -> Inst.Add | Inst.E32 | Inst.E16 | Inst.E8 -> Inst.Addw
let sub_op = function Inst.E64 -> Inst.Sub | Inst.E32 | Inst.E16 | Inst.E8 -> Inst.Subw
let mul_op = function Inst.E64 -> Inst.Mul | Inst.E32 | Inst.E16 | Inst.E8 -> Inst.Mulw
let vlmax sew = Vregs.vlen_bytes / Inst.sew_bytes sew
let mv rd rs = Inst.Opi (Inst.Addi, rd, rs, 0)
let addi rd rs imm = Inst.Opi (Inst.Addi, rd, rs, imm)
let sews = [ Inst.E8; Inst.E16; Inst.E32; Inst.E64 ]

(* Emit [body sew] either once (static width) or under a dispatch on the
   simulated vsew CSR. [tmp] may be clobbered by the dispatch. *)
let with_sew cb ~static_sew ~tmp body =
  match static_sew with
  | Some sew -> body sew
  | None ->
      let done_l = gensym "sewdone" in
      let cases = List.map (fun s -> (s, gensym "sew")) sews in
      (* tmp <- vsew code *)
      Codebuf.la_abs cb tmp (Vregs.base + Vregs.vsew_off);
      Codebuf.inst cb (Inst.Load { width = Inst.D; unsigned = false; rd = tmp; rs1 = tmp; imm = 0 });
      List.iter
        (fun (s, lbl) ->
          (* vsew codes are 0..3; compare via addi/beqz to keep tmp usage low *)
          let code = match s with Inst.E8 -> 0 | Inst.E16 -> 1 | Inst.E32 -> 2 | Inst.E64 -> 3 in
          Codebuf.inst cb (addi tmp tmp (- code));
          Codebuf.branch_l cb Inst.Beq tmp Reg.x0 lbl;
          Codebuf.inst cb (addi tmp tmp code))
        cases;
      (* no match: fall through to e64 *)
      Codebuf.j_l cb (List.assoc Inst.E64 cases);
      List.iter
        (fun (s, lbl) ->
          Codebuf.label cb lbl;
          body s;
          if s <> Inst.E64 then Codebuf.j_l cb done_l)
        cases;
      Codebuf.label cb done_l

(* --- vector templates --------------------------------------------------- *)

let emit_vsetvli cb ~free ?vctx rd rs1 sew =
  let exclude =
    Regmask.union (Regmask.of_list [ rd; rs1 ])
      (match vctx with
      | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
      | None -> Regmask.empty)
  in
  match Scavenge.pick_free ~n:2 ~exclude ~free with
  | [ ta; tb ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          let base_reg =
            match vctx with
            | Some (rb, _) -> rb
            | None ->
                Codebuf.la_abs cb ta Vregs.base;
                ta
          in
          Codebuf.li cb tb
            (match sew with Inst.E8 -> 0 | Inst.E16 -> 1 | Inst.E32 -> 2 | Inst.E64 -> 3);
          Codebuf.inst cb
            (Inst.Store { width = Inst.D; rs2 = tb; rs1 = base_reg; imm = Vregs.vsew_off });
          (if Reg.equal rs1 Reg.x0 then
             if Reg.equal rd Reg.x0 then
               (* keep current vl *)
               Codebuf.inst cb
                 (Inst.Load
                    { width = Inst.D; unsigned = false; rd = tb; rs1 = base_reg; imm = Vregs.vl_off })
             else Codebuf.li cb tb (vlmax sew)
           else begin
             (* tb = min(rs1, vlmax) unsigned *)
             let skip = gensym "clamp" in
             Codebuf.li cb tb (vlmax sew);
             Codebuf.branch_l cb Inst.Bgeu rs1 tb skip;
             Codebuf.inst cb (mv tb rs1);
             Codebuf.label cb skip
           end);
          Codebuf.inst cb
            (Inst.Store { width = Inst.D; rs2 = tb; rs1 = base_reg; imm = Vregs.vl_off });
          (match vctx with
          | Some (_, rv) -> Codebuf.inst cb (mv rv tb)
          | None -> ());
          if not (Reg.equal rd Reg.x0) then Codebuf.inst cb (mv rd tb))
  | _ -> assert false

let emit_vle cb ~free ?vctx sew vd rs1 =
  let exclude =
    Regmask.union (Regmask.of_list [ rs1 ])
      (match vctx with
      | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
      | None -> Regmask.empty)
  in
  match Scavenge.pick_free ~n:4 ~exclude ~free with
  | [ ta; tb; tc; td ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          let loop = gensym "vle" and done_l = gensym "vledone" in
          let generic = gensym "vlegen" in
          let sz = Inst.sew_bytes sew in
          let vl_reg =
            match vctx with
            | Some (rb, rv) ->
                Codebuf.inst cb (addi ta rb (Vregs.vreg_off vd));
                rv
            | None ->
                Codebuf.la_abs cb ta Vregs.base;
                Codebuf.inst cb
                  (Inst.Load { width = Inst.D; unsigned = false; rd = tb; rs1 = ta; imm = Vregs.vl_off });
                Codebuf.inst cb (addi ta ta (Vregs.vreg_off vd));
                tb
          in
          (* fast path: a full strip (vl = VLMAX) unrolls with no bumps,
             reading straight off the source register *)
          Codebuf.inst cb (addi td Reg.x0 (vlmax sew));
          Codebuf.branch_l cb Inst.Bne vl_reg td generic;
          for e = 0 to vlmax sew - 1 do
            Codebuf.inst cb (load_off sew td rs1 (e * sz));
            Codebuf.inst cb (store_off sew td ta (e * sz))
          done;
          Codebuf.j_l cb done_l;
          Codebuf.label cb generic;
          Codebuf.inst cb (mv tb vl_reg);
          Codebuf.inst cb (mv tc rs1);
          Codebuf.label cb loop;
          Codebuf.branch_l cb Inst.Beq tb Reg.x0 done_l;
          Codebuf.inst cb (load_w sew td tc);
          Codebuf.inst cb (store_w sew td ta);
          Codebuf.inst cb (addi tc tc sz);
          Codebuf.inst cb (addi ta ta sz);
          Codebuf.inst cb (addi tb tb (-1));
          Codebuf.j_l cb loop;
          Codebuf.label cb done_l)
  | _ -> assert false

let emit_vse cb ~free ?vctx sew vs3 rs1 =
  let exclude =
    Regmask.union (Regmask.of_list [ rs1 ])
      (match vctx with
      | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
      | None -> Regmask.empty)
  in
  match Scavenge.pick_free ~n:4 ~exclude ~free with
  | [ ta; tb; tc; td ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          let loop = gensym "vse" and done_l = gensym "vsedone" in
          let generic = gensym "vsegen" in
          let sz = Inst.sew_bytes sew in
          let vl_reg =
            match vctx with
            | Some (rb, rv) ->
                Codebuf.inst cb (addi ta rb (Vregs.vreg_off vs3));
                rv
            | None ->
                Codebuf.la_abs cb ta Vregs.base;
                Codebuf.inst cb
                  (Inst.Load { width = Inst.D; unsigned = false; rd = tb; rs1 = ta; imm = Vregs.vl_off });
                Codebuf.inst cb (addi ta ta (Vregs.vreg_off vs3));
                tb
          in
          Codebuf.inst cb (addi td Reg.x0 (vlmax sew));
          Codebuf.branch_l cb Inst.Bne vl_reg td generic;
          for e = 0 to vlmax sew - 1 do
            Codebuf.inst cb (load_off sew td ta (e * sz));
            Codebuf.inst cb (store_off sew td rs1 (e * sz))
          done;
          Codebuf.j_l cb done_l;
          Codebuf.label cb generic;
          Codebuf.inst cb (mv tb vl_reg);
          Codebuf.inst cb (mv tc rs1);
          Codebuf.label cb loop;
          Codebuf.branch_l cb Inst.Beq tb Reg.x0 done_l;
          Codebuf.inst cb (load_w sew td ta);
          Codebuf.inst cb (store_w sew td tc);
          Codebuf.inst cb (addi tc tc sz);
          Codebuf.inst cb (addi ta ta sz);
          Codebuf.inst cb (addi tb tb (-1));
          Codebuf.j_l cb loop;
          Codebuf.label cb done_l)
  | _ -> assert false

(* Strided load/store: the byte stride lives in a register, so only the
   generic pointer-walk loop applies (no unrolled constant-offset path). *)
let emit_vlse cb ~free ?vctx sew vd rs1 rs2 =
  let exclude =
    Regmask.union (Regmask.of_list [ rs1; rs2 ])
      (match vctx with
      | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
      | None -> Regmask.empty)
  in
  match Scavenge.pick_free ~n:4 ~exclude ~free with
  | [ ta; tb; tc; td ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          let loop = gensym "vlse" and done_l = gensym "vlsedone" in
          let sz = Inst.sew_bytes sew in
          let vl_reg =
            match vctx with
            | Some (rb, rv) ->
                Codebuf.inst cb (addi ta rb (Vregs.vreg_off vd));
                rv
            | None ->
                Codebuf.la_abs cb ta Vregs.base;
                Codebuf.inst cb
                  (Inst.Load { width = Inst.D; unsigned = false; rd = tb; rs1 = ta; imm = Vregs.vl_off });
                Codebuf.inst cb (addi ta ta (Vregs.vreg_off vd));
                tb
          in
          Codebuf.inst cb (mv tb vl_reg);
          Codebuf.inst cb (mv tc rs1);
          Codebuf.label cb loop;
          Codebuf.branch_l cb Inst.Beq tb Reg.x0 done_l;
          Codebuf.inst cb (load_w sew td tc);
          Codebuf.inst cb (store_w sew td ta);
          Codebuf.inst cb (Inst.Op (Inst.Add, tc, tc, rs2));
          Codebuf.inst cb (addi ta ta sz);
          Codebuf.inst cb (addi tb tb (-1));
          Codebuf.j_l cb loop;
          Codebuf.label cb done_l)
  | _ -> assert false

let emit_vsse cb ~free ?vctx sew vs3 rs1 rs2 =
  let exclude =
    Regmask.union (Regmask.of_list [ rs1; rs2 ])
      (match vctx with
      | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
      | None -> Regmask.empty)
  in
  match Scavenge.pick_free ~n:4 ~exclude ~free with
  | [ ta; tb; tc; td ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          let loop = gensym "vsse" and done_l = gensym "vssedone" in
          let sz = Inst.sew_bytes sew in
          let vl_reg =
            match vctx with
            | Some (rb, rv) ->
                Codebuf.inst cb (addi ta rb (Vregs.vreg_off vs3));
                rv
            | None ->
                Codebuf.la_abs cb ta Vregs.base;
                Codebuf.inst cb
                  (Inst.Load { width = Inst.D; unsigned = false; rd = tb; rs1 = ta; imm = Vregs.vl_off });
                Codebuf.inst cb (addi ta ta (Vregs.vreg_off vs3));
                tb
          in
          Codebuf.inst cb (mv tb vl_reg);
          Codebuf.inst cb (mv tc rs1);
          Codebuf.label cb loop;
          Codebuf.branch_l cb Inst.Beq tb Reg.x0 done_l;
          Codebuf.inst cb (load_w sew td ta);
          Codebuf.inst cb (store_w sew td tc);
          Codebuf.inst cb (Inst.Op (Inst.Add, tc, tc, rs2));
          Codebuf.inst cb (addi ta ta sz);
          Codebuf.inst cb (addi tb tb (-1));
          Codebuf.j_l cb loop;
          Codebuf.label cb done_l)
  | _ -> assert false

(* Element-wise arithmetic shared by .vv and .vx forms. [rhs] is either a
   vector register (loaded each iteration into tf) or a scalar register. *)
type rhs = Rvec of Reg.v | Rscalar of Reg.t

let emit_vop cb ~static_sew ~free ?vctx op vd vs2 rhs =
  let scalar_regs = match rhs with Rscalar r -> [ r ] | Rvec _ -> [] in
  let exclude =
    Regmask.union (Regmask.of_list scalar_regs)
      (match vctx with
      | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
      | None -> Regmask.empty)
  in
  match Scavenge.pick_free ~n:6 ~exclude ~free with
  | [ ta; tb; tc; td; te; tf ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          with_sew cb ~static_sew ~tmp:ta (fun sew ->
              let loop = gensym "vop" and done_l = gensym "vopdone" in
              let generic = gensym "vopgen" in
              let sz = Inst.sew_bytes sew in
              let vl_reg =
                match vctx with
                | Some (rb, rv) ->
                    Codebuf.inst cb (addi tb rb (Vregs.vreg_off vs2));
                    (match rhs with
                    | Rvec vs1 -> Codebuf.inst cb (addi tc rb (Vregs.vreg_off vs1))
                    | Rscalar _ -> ());
                    Codebuf.inst cb (addi ta rb (Vregs.vreg_off vd));
                    rv
                | None ->
                    Codebuf.la_abs cb ta Vregs.base;
                    Codebuf.inst cb
                      (Inst.Load
                         { width = Inst.D; unsigned = false; rd = td; rs1 = ta; imm = Vregs.vl_off });
                    Codebuf.inst cb (addi tb ta (Vregs.vreg_off vs2));
                    (match rhs with
                    | Rvec vs1 -> Codebuf.inst cb (addi tc ta (Vregs.vreg_off vs1))
                    | Rscalar _ -> ());
                    Codebuf.inst cb (addi ta ta (Vregs.vreg_off vd));
                    td
              in
              (* the element body; a .vx form's scalar operand is read
                 directly from its register instead of a copy *)
              let elem_body ~load_b ~load_rhs ~load_vd ~store =
                Codebuf.inst cb load_b;
                let rhs_reg =
                  match rhs with
                  | Rvec _ ->
                      Codebuf.inst cb load_rhs;
                      tf
                  | Rscalar r -> r
                in
                (match op with
                | Inst.Vadd -> Codebuf.inst cb (Inst.Op (add_op sew, te, te, rhs_reg))
                | Inst.Vsub -> Codebuf.inst cb (Inst.Op (sub_op sew, te, te, rhs_reg))
                | Inst.Vmul -> Codebuf.inst cb (Inst.Op (mul_op sew, te, te, rhs_reg))
                | Inst.Vmacc ->
                    Codebuf.inst cb (Inst.Op (mul_op sew, te, te, rhs_reg));
                    Codebuf.inst cb load_vd;
                    Codebuf.inst cb (Inst.Op (add_op sew, te, te, tf)));
                Codebuf.inst cb store
              in
              (* fast path: full strip, unrolled, no pointer bumps *)
              Codebuf.inst cb (addi te Reg.x0 (vlmax sew));
              Codebuf.branch_l cb Inst.Bne vl_reg te generic;
              for e = 0 to vlmax sew - 1 do
                elem_body
                  ~load_b:(load_off sew te tb (e * sz))
                  ~load_rhs:(load_off sew tf tc (e * sz))
                  ~load_vd:(load_off sew tf ta (e * sz))
                  ~store:(store_off sew te ta (e * sz))
              done;
              Codebuf.j_l cb done_l;
              (* generic path for partial strips *)
              Codebuf.label cb generic;
              Codebuf.inst cb (mv td vl_reg);
              Codebuf.label cb loop;
              Codebuf.branch_l cb Inst.Beq td Reg.x0 done_l;
              elem_body ~load_b:(load_w sew te tb) ~load_rhs:(load_w sew tf tc)
                ~load_vd:(load_w sew tf ta) ~store:(store_w sew te ta);
              Codebuf.inst cb (addi tb tb sz);
              (match rhs with
              | Rvec _ -> Codebuf.inst cb (addi tc tc sz)
              | Rscalar _ -> ());
              Codebuf.inst cb (addi ta ta sz);
              Codebuf.inst cb (addi td td (-1));
              Codebuf.j_l cb loop;
              Codebuf.label cb done_l))
  | _ -> assert false

let emit_vmv_v_x cb ~static_sew ~free ?vctx vd rs1 =
  let exclude =
    Regmask.union (Regmask.of_list [ rs1 ])
      (match vctx with
      | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
      | None -> Regmask.empty)
  in
  match Scavenge.pick_free ~n:3 ~exclude ~free with
  | [ ta; tb; tc ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          with_sew cb ~static_sew ~tmp:ta (fun sew ->
              let loop = gensym "vmv" and done_l = gensym "vmvdone" in
              let generic = gensym "vmvgen" in
              let sz = Inst.sew_bytes sew in
              let vl_reg =
                match vctx with
                | Some (rb, rv) ->
                    Codebuf.inst cb (addi ta rb (Vregs.vreg_off vd));
                    rv
                | None ->
                    Codebuf.la_abs cb ta Vregs.base;
                    Codebuf.inst cb
                      (Inst.Load
                         { width = Inst.D; unsigned = false; rd = tb; rs1 = ta;
                           imm = Vregs.vl_off });
                    Codebuf.inst cb (addi ta ta (Vregs.vreg_off vd));
                    tb
              in
              (* full-strip fast path: unrolled splat, no bumps *)
              Codebuf.inst cb (addi tc Reg.x0 (vlmax sew));
              Codebuf.branch_l cb Inst.Bne vl_reg tc generic;
              for e = 0 to vlmax sew - 1 do
                Codebuf.inst cb (store_off sew rs1 ta (e * sz))
              done;
              Codebuf.j_l cb done_l;
              Codebuf.label cb generic;
              Codebuf.inst cb (mv tb vl_reg);
              Codebuf.inst cb (mv tc rs1);
              Codebuf.label cb loop;
              Codebuf.branch_l cb Inst.Beq tb Reg.x0 done_l;
              Codebuf.inst cb (store_w sew tc ta);
              Codebuf.inst cb (addi ta ta sz);
              Codebuf.inst cb (addi tb tb (-1));
              Codebuf.j_l cb loop;
              Codebuf.label cb done_l))
  | _ -> assert false

let emit_vmv_x_s cb ~static_sew ~free rd vs2 =
  if Reg.equal rd Reg.x0 then ()
  else
    match static_sew with
    | Some sew ->
        Codebuf.la_abs cb rd (Vregs.base + Vregs.vreg_off vs2);
        Codebuf.inst cb (load_w sew rd rd)
    | None ->
        (match Scavenge.pick_free ~n:1 ~exclude:(Regmask.singleton rd) ~free with
        | [ ta ], to_spill ->
            Scavenge.with_spills cb to_spill (fun () ->
                with_sew cb ~static_sew:None ~tmp:ta (fun sew ->
                    Codebuf.la_abs cb rd (Vregs.base + Vregs.vreg_off vs2);
                    Codebuf.inst cb (load_w sew rd rd)))
        | _ -> assert false)

let emit_vredsum cb ~static_sew ~free ?vctx vd vs2 vs1 =
  let exclude =
    match vctx with
    | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
    | None -> Regmask.empty
  in
  match Scavenge.pick_free ~n:4 ~exclude ~free with
  | [ ta; tb; tc; td ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          with_sew cb ~static_sew ~tmp:ta (fun sew ->
              let loop = gensym "vred" and done_l = gensym "vreddone" in
              let generic = gensym "vredgen" in
              let sz = Inst.sew_bytes sew in
              let vl_reg =
                match vctx with
                | Some (rb, rv) ->
                    (* acc = vs1[0] *)
                    Codebuf.inst cb (addi tc rb (Vregs.vreg_off vs1));
                    Codebuf.inst cb (load_w sew tc tc);
                    Codebuf.inst cb (addi ta rb (Vregs.vreg_off vs2));
                    rv
                | None ->
                    Codebuf.la_abs cb ta Vregs.base;
                    Codebuf.inst cb
                      (Inst.Load
                         { width = Inst.D; unsigned = false; rd = tb; rs1 = ta;
                           imm = Vregs.vl_off });
                    Codebuf.inst cb (addi tc ta (Vregs.vreg_off vs1));
                    Codebuf.inst cb (load_w sew tc tc);
                    Codebuf.inst cb (addi ta ta (Vregs.vreg_off vs2));
                    tb
              in
              Codebuf.inst cb (addi td Reg.x0 (vlmax sew));
              Codebuf.branch_l cb Inst.Bne vl_reg td generic;
              for e = 0 to vlmax sew - 1 do
                Codebuf.inst cb (load_off sew td ta (e * sz));
                Codebuf.inst cb (Inst.Op (add_op sew, tc, tc, td))
              done;
              Codebuf.j_l cb done_l;
              Codebuf.label cb generic;
              Codebuf.inst cb (mv tb vl_reg);
              Codebuf.label cb loop;
              Codebuf.branch_l cb Inst.Beq tb Reg.x0 done_l;
              Codebuf.inst cb (load_w sew td ta);
              Codebuf.inst cb (Inst.Op (add_op sew, tc, tc, td));
              Codebuf.inst cb (addi ta ta sz);
              Codebuf.inst cb (addi tb tb (-1));
              Codebuf.j_l cb loop;
              Codebuf.label cb done_l;
              (* vd[0] = acc *)
              Codebuf.la_abs cb td (Vregs.base + Vregs.vreg_off vd);
              Codebuf.inst cb (store_w sew tc td)))
  | _ -> assert false

(* --- bit-manipulation templates (paper's sh1add example) ---------------- *)

let emit_bitmanip cb ~free op rd rs1 rs2 =
  let exclude = Regmask.of_list [ rd; rs1; rs2 ] in
  let shadd n =
    match Scavenge.pick_free ~n:1 ~exclude ~free with
    | [ t ], to_spill ->
        Scavenge.with_spills cb to_spill (fun () ->
            Codebuf.inst cb (Inst.Opi (Inst.Slli, t, rs1, n));
            Codebuf.inst cb (Inst.Op (Inst.Add, rd, t, rs2)))
    | _ -> assert false
  in
  let with_not f =
    match Scavenge.pick_free ~n:1 ~exclude ~free with
    | [ t ], to_spill ->
        Scavenge.with_spills cb to_spill (fun () ->
            Codebuf.inst cb (Inst.Opi (Inst.Xori, t, rs2, -1));
            f t)
    | _ -> assert false
  in
  let minmax cond =
    (* rd = if cond(rs1, rs2) then rs1 else rs2, alias-safe via a temp *)
    match Scavenge.pick_free ~n:1 ~exclude ~free with
    | [ t ], to_spill ->
        Scavenge.with_spills cb to_spill (fun () ->
            let take1 = gensym "mm" and done_l = gensym "mmdone" in
            Codebuf.branch_l cb cond rs1 rs2 take1;
            Codebuf.inst cb (mv t rs2);
            Codebuf.j_l cb done_l;
            Codebuf.label cb take1;
            Codebuf.inst cb (mv t rs1);
            Codebuf.label cb done_l;
            Codebuf.inst cb (mv rd t))
    | _ -> assert false
  in
  match op with
  | Inst.Sh1add -> shadd 1
  | Inst.Sh2add -> shadd 2
  | Inst.Sh3add -> shadd 3
  | Inst.Andn -> with_not (fun t -> Codebuf.inst cb (Inst.Op (Inst.And, rd, rs1, t)))
  | Inst.Orn -> with_not (fun t -> Codebuf.inst cb (Inst.Op (Inst.Or, rd, rs1, t)))
  | Inst.Xnor ->
      Codebuf.inst cb (Inst.Op (Inst.Xor, rd, rs1, rs2));
      Codebuf.inst cb (Inst.Opi (Inst.Xori, rd, rd, -1))
  | Inst.Min -> minmax Inst.Blt
  | Inst.Max -> minmax Inst.Bge
  | Inst.Minu -> minmax Inst.Bltu
  | Inst.Maxu -> minmax Inst.Bgeu
  | Inst.Add | Inst.Sub | Inst.Sll | Inst.Slt | Inst.Sltu | Inst.Xor | Inst.Srl
  | Inst.Sra | Inst.Or | Inst.And | Inst.Mul | Inst.Mulh | Inst.Div | Inst.Divu
  | Inst.Rem | Inst.Remu | Inst.Addw | Inst.Subw | Inst.Sllw | Inst.Srlw
  | Inst.Sraw | Inst.Mulw | Inst.Divw | Inst.Remw ->
      invalid_arg "Translate.emit_bitmanip: not a bit-manipulation op"

(* --- packed-SIMD templates (the draft-P / vendor-DSP case study) -------- *)

(* Lane-wise 16-bit addition. The result accumulates in a temp so rd may
   alias rs1 or rs2. *)
let emit_p_add16 cb ~free rd rs1 rs2 =
  let exclude = Regmask.of_list [ rd; rs1; rs2 ] in
  match Scavenge.pick_free ~n:3 ~exclude ~free with
  | [ ta; tc; acc ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          Codebuf.inst cb (addi acc Reg.x0 0);
          for i = 3 downto 0 do
            let sh = 16 * i in
            Codebuf.inst cb (Inst.Opi (Inst.Srli, ta, rs1, sh));
            Codebuf.inst cb (Inst.Opi (Inst.Srli, tc, rs2, sh));
            Codebuf.inst cb (Inst.Op (Inst.Add, ta, ta, tc));
            Codebuf.inst cb (Inst.Opi (Inst.Slli, ta, ta, 48));
            Codebuf.inst cb (Inst.Opi (Inst.Srli, ta, ta, 48));
            Codebuf.inst cb (Inst.Opi (Inst.Slli, acc, acc, 16));
            Codebuf.inst cb (Inst.Op (Inst.Or, acc, acc, ta))
          done;
          Codebuf.inst cb (mv rd acc))
  | _ -> assert false

(* Signed 8-bit quad multiply-accumulate: rd <- rd + dot(rs1, rs2) over
   the eight byte lanes. rd is read only after both sources, so aliasing
   is safe. *)
let emit_p_smaqa cb ~free rd rs1 rs2 =
  let exclude = Regmask.of_list [ rd; rs1; rs2 ] in
  match Scavenge.pick_free ~n:3 ~exclude ~free with
  | [ ta; tc; acc ], to_spill ->
      Scavenge.with_spills cb to_spill (fun () ->
          Codebuf.inst cb (addi acc Reg.x0 0);
          for i = 0 to 7 do
            let sh = 56 - (8 * i) in
            Codebuf.inst cb (Inst.Opi (Inst.Slli, ta, rs1, sh));
            Codebuf.inst cb (Inst.Opi (Inst.Srai, ta, ta, 56));
            Codebuf.inst cb (Inst.Opi (Inst.Slli, tc, rs2, sh));
            Codebuf.inst cb (Inst.Opi (Inst.Srai, tc, tc, 56));
            Codebuf.inst cb (Inst.Op (Inst.Mul, ta, ta, tc));
            Codebuf.inst cb (Inst.Op (Inst.Add, acc, acc, ta))
          done;
          Codebuf.inst cb (Inst.Op (Inst.Add, rd, rd, acc)))
  | _ -> assert false

let downgrade cb ~static_sew ?(free = []) ?vctx inst =
  match inst with
  | Inst.Vsetvli (rd, rs1, sew) -> emit_vsetvli cb ~free ?vctx rd rs1 sew
  | Inst.Vle (sew, vd, rs1) -> emit_vle cb ~free ?vctx sew vd rs1
  | Inst.Vlse (sew, vd, rs1, rs2) -> emit_vlse cb ~free ?vctx sew vd rs1 rs2
  | Inst.Vsse (sew, vs3, rs1, rs2) -> emit_vsse cb ~free ?vctx sew vs3 rs1 rs2
  | Inst.Vse (sew, vs3, rs1) -> emit_vse cb ~free ?vctx sew vs3 rs1
  | Inst.Vop_vv (op, vd, vs2, vs1) -> emit_vop cb ~static_sew ~free ?vctx op vd vs2 (Rvec vs1)
  | Inst.Vop_vx (op, vd, vs2, rs1) -> emit_vop cb ~static_sew ~free ?vctx op vd vs2 (Rscalar rs1)
  | Inst.Vmv_v_x (vd, rs1) -> emit_vmv_v_x cb ~static_sew ~free ?vctx vd rs1
  | Inst.Vmv_x_s (rd, vs2) -> emit_vmv_x_s cb ~static_sew ~free rd vs2
  | Inst.Vredsum (vd, vs2, vs1) -> emit_vredsum cb ~static_sew ~free ?vctx vd vs2 vs1
  | Inst.Op (op, rd, rs1, rs2) when Inst.is_bitmanip inst -> emit_bitmanip cb ~free op rd rs1 rs2
  | Inst.P_add16 (rd, rs1, rs2) -> emit_p_add16 cb ~free rd rs1 rs2
  | Inst.P_smaqa (rd, rs1, rs2) -> emit_p_smaqa cb ~free rd rs1 rs2
  | Inst.Lui _ | Inst.Auipc _ | Inst.Jal _ | Inst.Jalr _ | Inst.Branch _
  | Inst.Load _ | Inst.Store _ | Inst.Op _ | Inst.Opi _ | Inst.Ecall
  | Inst.Ebreak | Inst.C_nop | Inst.C_ebreak | Inst.C_addi _ | Inst.C_li _
  | Inst.C_mv _ | Inst.C_add _ | Inst.C_j _ | Inst.C_jr _ | Inst.C_jalr _
  | Inst.C_beqz _ | Inst.C_bnez _ | Inst.C_ld _ | Inst.C_sd _ | Inst.C_lw _
  | Inst.C_sw _ | Inst.C_lui _ | Inst.C_addiw _ | Inst.C_andi _ | Inst.C_alu _
  | Inst.C_slli _ | Inst.Xcheck_jalr _ ->
      invalid_arg
        (Printf.sprintf "Translate.downgrade: %s is not translatable"
           (Inst.to_string inst))
