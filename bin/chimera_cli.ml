(* chimera — command-line front end to the rewriting toolchain.

   Binaries live on disk in the SELF container (see Binfile.save):

     chimera gen matmul mm.self            build a sample RVV binary
     chimera gen spec:omnetpp_r o.self     build a synthetic benchmark
     chimera info mm.self                  sections, symbols, disassembly
     chimera rewrite -m downgrade mm.self mm.base.self
     chimera run --isa rv64gc mm.base.self run under the Chimera runtime
*)

open Cmdliner

let isa_of_string = function
  | "rv64im" | "base" -> Ok Ext.base
  | "rv64imc" | "rv64gc" -> Ok Ext.rv64gc
  | "rv64imcv" | "rv64gcv" -> Ok Ext.rv64gcv
  | "rv64imcp" | "rv64gcp" -> Ok (Ext.of_list [ Ext.C; Ext.P ])
  | "all" -> Ok Ext.all
  | s -> Error (`Msg (Printf.sprintf "unknown ISA %S (rv64gc, rv64gcv, rv64gcp, base, all)" s))

let isa_conv = Arg.conv (isa_of_string, fun fmt isa -> Ext.pp fmt isa)

(* ---- gen ---------------------------------------------------------------- *)

let gen_kinds =
  "matmul (RVV), matmul-scalar, vecadd, vecadd-scalar, fibonacci, \
   gemv, gemv-scalar, or spec:<profile> (e.g. spec:omnetpp_r)"

let cmd_gen kind out n =
  let bin =
    match kind with
    | "matmul" -> Programs.matmul `Ext ~n
    | "matmul-scalar" -> Programs.matmul `Base ~n
    | "vecadd" -> Programs.vecadd `Ext ~n
    | "vecadd-scalar" -> Programs.vecadd `Base ~n
    | "fibonacci" -> Programs.fibonacci ~rounds:n ()
    | "gemv" -> Programs.gemv `Ext ~sew:Inst.E64 ~n
    | "gemv-scalar" -> Programs.gemv `Base ~sew:Inst.E64 ~n
    | k when String.length k > 5 && String.sub k 0 5 = "spec:" -> (
        let name = String.sub k 5 (String.length k - 5) in
        match Specgen.find name with
        | pr -> Specgen.build pr
        | exception Not_found ->
            Printf.eprintf "unknown profile %s; known: %s\n" name
              (String.concat ", "
                 (List.map (fun p -> p.Specgen.sp_name)
                    (Specgen.spec_profiles @ Specgen.realworld_profiles)));
            exit 2)
    | k ->
        Printf.eprintf "unknown kind %s; known: %s\n" k gen_kinds;
        exit 2
  in
  Binfile.save out bin;
  Format.printf "%a@.-> %s@." Binfile.pp_summary bin out

(* ---- info --------------------------------------------------------------- *)

let cmd_info file disasm_count cfg_out =
  let bin = Binfile.load_file file in
  Format.printf "%a@." Binfile.pp_summary bin;
  (match cfg_out with
  | None -> ()
  | Some path ->
      let cfg = Cfg.of_disasm (Disasm.of_binfile bin) in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Format.fprintf (Format.formatter_of_out_channel oc) "%a@." Cfg.pp_dot cfg);
      Format.printf "CFG written to %s (graphviz)@." path);
  if disasm_count > 0 then begin
    let dis = Disasm.of_binfile bin in
    Format.printf "@.recursive-descent coverage: %d instructions, %d/%d bytes@."
      (Disasm.count dis) (Disasm.covered_bytes dis) (Binfile.code_size bin);
    Format.printf "first %d instructions:@." disasm_count;
    let shown = ref 0 in
    (try
       Disasm.iter dis (fun i ->
           if !shown >= disasm_count then raise Exit;
           incr shown;
           Format.printf "  %a@." Disasm.pp_insn i)
     with Exit -> ())
  end

(* ---- rewrite -------------------------------------------------------------- *)

let cmd_rewrite mode style no_gp infile outfile =
  let bin = Binfile.load_file infile in
  let mode =
    match mode with
    | "downgrade" -> Chbp.Downgrade
    | "upgrade" -> Chbp.Upgrade
    | "empty" -> Chbp.Empty
    | m ->
        Printf.eprintf "unknown mode %s (downgrade, upgrade, empty)\n" m;
        exit 2
  in
  let style = if style then `Trap else `Smile in
  let ctx =
    Chbp.rewrite
      ~options:{ (Chbp.default_options mode) with style; use_gp = not no_gp }
      bin
  in
  let out = Chbp.result ctx in
  Binfile.save outfile out;
  Format.printf "%a@.@.%a@.-> %s@." Binfile.pp_summary out Chbp.pp_stats
    (Chbp.stats ctx) outfile;
  Format.printf
    "note: the fault-handling table lives with the rewriting context; use@.\
     'chimera run' (which rewrites in memory) to execute with recovery.@."

(* ---- run ------------------------------------------------------------------ *)

(* single-step the first [n] instructions, printing pc and the decoded
   instruction (from the current view, so trampolines appear as patched) *)
let trace_steps m handlers n fuel =
  let shown = ref 0 and stop = ref None and steps = ref 0 in
  while !stop = None && !steps < fuel do
    (if !shown < n then begin
       let pc = Machine.pc m in
       let mem = Machine.mem m in
       let lo = Memory.peek_u16 mem pc in
       let hi = Memory.peek_u16 mem (pc + 2) in
       (match Decode.decode ~lo ~hi with
       | Decode.Ok (i, _) -> Format.printf "  %08x: %s@." pc (Inst.to_string i)
       | Decode.Illegal r -> Format.printf "  %08x: <illegal: %s>@." pc r);
       incr shown;
       if !shown = n then Format.printf "  ... (trace limit reached)@."
     end);
    (match Machine.step ~handlers m with Some s -> stop := Some s | None -> ());
    incr steps
  done;
  match !stop with Some s -> s | None -> Machine.Fuel_exhausted

let cmd_run file isa fuel plain show_counters steps trace_file profile_file tiered =
  let bin = Binfile.load_file file in
  if tiered then begin
    Machine.set_tiered_default true;
    Machine.set_inline_caches_default true
  end;
  let prof =
    match profile_file with
    | None -> None
    | Some _ ->
        let p = Profile.create () in
        Profile.set_global (Some p);
        Some p
  in
  let trace_oc =
    match trace_file with
    | None -> None
    | Some f ->
        let oc =
          try open_out f
          with Sys_error e ->
            Printf.eprintf "cannot open trace file: %s\n" e;
            exit 2
        in
        Obs.enable ~sink:(Obs.Json.channel_sink oc);
        Some oc
  in
  let stop, m, counters =
    if plain then begin
      let mem = Loader.load bin in
      let m = Machine.create ~mem ~isa () in
      Loader.init_machine m bin;
      let stop =
        if steps > 0 then trace_steps m Machine.default_handlers steps fuel
        else Machine.run ~fuel m
      in
      (stop, m, None)
    end
    else if steps > 0 then begin
      let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
      let rt = Chimera_rt.create ctx in
      let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa () in
      Loader.init_machine m (Chimera_rt.rewritten rt);
      let stop = trace_steps m (Chimera_rt.handlers rt) steps fuel in
      (stop, m, Some (Chimera_rt.counters rt))
    end
    else
      let dep = Chimera_system.deploy bin ~cores:[ isa ] in
      let stop, m = Chimera_system.run dep ~isa ~fuel in
      (stop, m, Some (Chimera_system.counters dep))
  in
  (* append the profiler's tb_profile rows to the trace so the offline
     'chimera profile TRACE' report matches the live one exactly *)
  (match (prof, trace_oc) with
  | Some p, Some _ -> List.iter Obs.emit (Profile.to_events p)
  | _ -> ());
  (match (trace_file, trace_oc) with
  | Some f, Some oc ->
      let n = Obs.events_emitted () in
      Obs.disable ();
      close_out oc;
      Format.printf "trace: %d events -> %s@." n f
  | _ -> ());
  (match (prof, profile_file) with
  | Some p, Some f ->
      Profile.set_global None;
      let snaps = Profile.snapshot p in
      let oc =
        try open_out f
        with Sys_error e ->
          Printf.eprintf "cannot open profile file: %s\n" e;
          exit 2
      in
      (* annotate with the live machine's tier and inline-cache state: the
         translations are still resident, so the report can say which tier
         each hot block ended at and how its call sites resolved *)
      let tiers =
        List.map
          (fun b ->
            ( b.Machine.bi_entry,
              Printf.sprintf "t%d%s" b.Machine.bi_tier
                (if b.Machine.bi_relaid then "*" else "") ))
          (Machine.block_infos m)
      in
      let ics =
        List.map
          (fun i ->
            { Prof_report.icn_site = i.Machine.ici_site;
              icn_state =
                (match i.Machine.ici_state with
                | `Empty -> "empty"
                | `Mono -> "mono"
                | `Poly -> "poly"
                | `Mega -> "mega");
              icn_targets = i.Machine.ici_targets;
              icn_hits = i.Machine.ici_hits;
              icn_misses = i.Machine.ici_misses })
          (Machine.ic_infos m)
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Prof_report.render ~disasm:(Disasm.of_binfile bin) ~tiers ~ics oc snaps);
      let folded = f ^ ".folded" in
      let foc = open_out folded in
      Fun.protect ~finally:(fun () -> close_out foc) (fun () -> Profile.write_folded p foc);
      Format.printf "profile: %d blocks -> %s (stacks: %s)@." (List.length snaps) f folded
  | _ -> ());
  (match counters with
  | Some c when show_counters -> Format.printf "%a@." Counters.pp c
  | Some _ | None -> ());
  (match stop with
  | Machine.Exited code ->
      Format.printf "exit %d after %d instructions (%d cycles, %d vector)@." code
        (Machine.retired m) (Machine.cycles m) (Machine.vector_retired m)
  | Machine.Faulted f ->
      Format.printf "fault: %s after %d instructions@." (Fault.to_string f)
        (Machine.retired m);
      exit 1
  | Machine.Fuel_exhausted ->
      Format.printf "fuel exhausted (%d instructions)@." (Machine.retired m);
      exit 1);
  exit 0

(* ---- profile (offline) ---------------------------------------------------- *)

(* Rebuild the profiler report from a recorded trace: 'run --profile --trace'
   appends the tb_profile rows to the trace, so the offline report is
   byte-identical to the live one (modulo disassembly, which needs --bin). *)
let cmd_profile trace bin_file top out =
  let events =
    try Obs.Json.read_file trace
    with Failure msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let agg = Obs.Agg.create () in
  List.iter (Obs.Agg.observe agg) events;
  let snaps = Profile.snaps_of_events (Obs.Agg.profile_events agg) in
  if snaps = [] then begin
    Printf.eprintf
      "%s: no tb_profile events — record with 'chimera run --profile FILE --trace %s'\n"
      trace trace;
    exit 1
  end;
  let disasm =
    Option.map (fun f -> Disasm.of_binfile (Binfile.load_file f)) bin_file
  in
  let totals = Obs.Agg.totals agg in
  match out with
  | None -> Prof_report.render ~top ?disasm ~totals stdout snaps
  | Some f ->
      let oc = open_out f in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Prof_report.render ~top ?disasm ~totals oc snaps)

(* ---- metrics --------------------------------------------------------------- *)

(* One run of a binary under the Chimera runtime with the always-on metrics
   subsystem enabled, dumping the final snapshot. This is the serving-daemon
   view of an execution: live counters, latency quantiles and the health
   watchdog's verdicts, at one-branch cost on the paths --trace would slow
   down. --capture additionally keeps the most recent Obs events in a
   bounded in-memory ring for post-mortem context, counting (never hiding)
   what the ring overwrote. *)
let cmd_metrics file isa fuel tiered fmt out capture =
  let bin = Binfile.load_file file in
  if tiered then begin
    Machine.set_tiered_default true;
    Machine.set_inline_caches_default true
  end;
  Metrics.enable ();
  if capture > 0 then Obs.enable_memory ~capacity:capture ();
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa () in
  let stop = Chimera_rt.run rt ~fuel m in
  let snap = Metrics.Snapshot.take () in
  let health =
    Metrics.Watchdog.evaluate ~prev:Metrics.Snapshot.empty ~cur:snap ()
  in
  let text =
    match fmt with
    | "prometheus" -> Metrics.Snapshot.to_prometheus ~health snap
    | "json" -> Metrics.Snapshot.to_json ~health snap ^ "\n"
    | f ->
        Printf.eprintf "unknown format %s (prometheus, json)\n" f;
        exit 2
  in
  (match out with
  | None -> print_string text
  | Some f ->
      let oc =
        try open_out f
        with Sys_error e ->
          Printf.eprintf "cannot open output file: %s\n" e;
          exit 2
      in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Format.printf "metrics snapshot -> %s@." f);
  if capture > 0 then begin
    let kept = List.length (Obs.recent ()) in
    Obs.disable ();
    Format.printf "captured %d recent events (%d overwritten; %d emitted)@." kept
      (Obs.events_dropped ()) (Obs.events_emitted ())
  end;
  List.iter
    (fun v ->
      if not v.Metrics.v_ok then
        Format.printf "health: %s DEGRADED — %s@." v.Metrics.v_rule
          v.Metrics.v_detail)
    health;
  match stop with
  | Machine.Exited code ->
      Format.printf "exit %d after %d instructions (%s)@." code
        (Machine.retired m)
        (if Metrics.Watchdog.healthy health then "healthy" else "degraded");
      exit 0
  | Machine.Faulted f ->
      Printf.eprintf "fault: %s after %d instructions\n" (Fault.to_string f)
        (Machine.retired m);
      exit 1
  | Machine.Fuel_exhausted ->
      Printf.eprintf "fuel exhausted (%d instructions)\n" (Machine.retired m);
      exit 1

(* ---- cache ---------------------------------------------------------------- *)

let cmd_cache_stat dir =
  let c = Cache.open_dir dir in
  let entries, bytes = Cache.stat c in
  Format.printf "%s: %d entries, %d bytes@." dir entries bytes

let cmd_cache_clear dir =
  let c = Cache.open_dir dir in
  Format.printf "%s: removed %d entries@." dir (Cache.clear c)

(* One recorded cold run that populates the cache, so a later
   'run'/'bench --cache' of the same binary starts warm. Mirrors the bench
   harness's hooks: seed before the run (a prewarm of an already-cached
   binary is a cheap no-op), export and store after it under the digest of
   the memory as the run left it. *)
let cmd_cache_prewarm dir file isa fuel mode tiered =
  let bin = Binfile.load_file file in
  let c = Cache.open_dir dir in
  let mode_name = mode in
  let mode =
    match mode with
    | "downgrade" -> Chbp.Downgrade
    | "upgrade" -> Chbp.Upgrade
    | "empty" -> Chbp.Empty
    | m ->
        Printf.eprintf "unknown mode %s (downgrade, upgrade, empty)\n" m;
        exit 2
  in
  if tiered then begin
    Machine.set_tiered_default true;
    Machine.set_inline_caches_default true
  end;
  Machine.set_record_default true;
  let extra = Printf.sprintf "cli;mode=%s;tiered=%b" mode_name tiered in
  let ctx =
    let key = Cache.digest_bin bin ~extra in
    match Cache.load_rewrite c ~key with
    | Ok ctx -> ctx
    | Error _ ->
        let ctx = Chbp.rewrite ~options:(Chbp.default_options mode) bin in
        Cache.store_rewrite c ~key ctx;
        ctx
  in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa () in
  (match Cache.seed_plan c ~key:(Cache.digest_mem (Machine.mem m) ~isa ~extra) m with
  | Ok n -> Format.printf "already warm: seeded %d blocks@." n
  | Error reason -> Format.printf "cold start (%s)@." reason);
  match Chimera_rt.run rt ~fuel m with
  | Machine.Exited code ->
      Cache.store_plan c ~key:(Cache.digest_mem (Machine.mem m) ~isa ~extra) m;
      let entries, bytes = Cache.stat c in
      Format.printf
        "exit %d after %d instructions; cache now %d entries, %d bytes@." code
        (Machine.retired m) entries bytes
  | Machine.Faulted f ->
      Printf.eprintf "fault: %s — nothing stored\n" (Fault.to_string f);
      exit 1
  | Machine.Fuel_exhausted ->
      Printf.eprintf "fuel exhausted — nothing stored\n";
      exit 1

(* ---- serve ----------------------------------------------------------------- *)

(* Multi-tenant rewrite-and-execute server (lib/serve): either a one-shot
   batch over the command line's guests, or a long-running daemon on a
   Unix-domain socket. Both share one Domain pool and (with --cache) one
   persistent translation cache across every tenant. *)
let cmd_serve socket guests jobs cache_dir tiered repeat max_queue fuel isa
    metrics_out max_requests =
  let cache = Option.map Cache.open_dir cache_dir in
  if metrics_out <> None then Metrics.enable ();
  let jobs = max 1 jobs in
  let ext_workers = jobs / 2 in
  let base_workers = jobs - ext_workers in
  let srv = Serve.create ?cache ?max_queue ~base_workers ~ext_workers () in
  let guest_failed = ref false in
  (match socket with
  | Some path ->
      Format.printf "serving on %s: %d workers%s; RUN/SPEC/STAT/QUIT@." path jobs
        (match cache_dir with Some d -> ", cache " ^ d | None -> "");
      Serve.Daemon.listen srv ~path ~isa ~tiered ?max_requests ()
  | None ->
      if guests = [] then begin
        Printf.eprintf
          "serve: need guests (FILE.self or spec:<profile>) or --socket PATH\n";
        exit 2
      end;
      let load a =
        if String.length a > 5 && String.sub a 0 5 = "spec:" then begin
          let name = String.sub a 5 (String.length a - 5) in
          match Specgen.find name with
          | pr -> (name, Specgen.build pr)
          | exception Not_found ->
              Printf.eprintf "unknown profile %s\n" name;
              exit 2
        end
        else (Filename.remove_extension (Filename.basename a), Binfile.load_file a)
      in
      let loaded = List.map load guests in
      for _ = 1 to max 1 repeat do
        List.iter
          (fun (tenant, bin) ->
            match Serve.submit srv ~tenant ~isa ~tiered ~fuel bin with
            | Ok _ -> ()
            | Error `Saturated ->
                Printf.eprintf "rejected (queue saturated): %s\n" tenant;
                guest_failed := true)
          loaded
      done;
      Serve.drain srv;
      List.iter
        (fun o ->
          if o.Serve.o_exit = None then guest_failed := true;
          Format.printf
            "%-16s #%-4d %-10s retired=%-10d cycles=%-10d warm=%b wait_us=%d \
             latency_us=%d@."
            o.Serve.o_tenant o.Serve.o_id o.Serve.o_stop o.Serve.o_retired
            o.Serve.o_cycles o.Serve.o_warm o.Serve.o_wait_us o.Serve.o_latency_us)
        (Serve.outcomes srv);
      let s = Serve.stats srv in
      Format.printf "admitted %d, done %d, rejected %d, queue peak %d@."
        s.Serve.admitted s.Serve.completed s.Serve.rejected s.Serve.peak_depth);
  Serve.shutdown srv;
  (match metrics_out with
  | None -> ()
  | Some f ->
      let snap = Metrics.Snapshot.take () in
      let health =
        Metrics.Watchdog.evaluate ~prev:Metrics.Snapshot.empty ~cur:snap ()
      in
      let oc =
        try open_out f
        with Sys_error e ->
          Printf.eprintf "cannot open output file: %s\n" e;
          exit 2
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Metrics.Snapshot.to_prometheus ~health snap));
      Format.printf "metrics snapshot -> %s (%s)@." f
        (if Metrics.Watchdog.healthy health then "watchdog healthy"
         else "watchdog DEGRADED");
      if not (Metrics.Watchdog.healthy health) then exit 1);
  if !guest_failed then exit 1

(* ---- command line ---------------------------------------------------------- *)

let gen_cmd =
  let kind = Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc:gen_kinds) in
  let out = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT") in
  let n = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Problem size / rounds.") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a sample binary") Term.(const cmd_gen $ kind $ out $ n)

let info_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let n = Arg.(value & opt int 16 & info [ "d"; "disasm" ] ~doc:"Instructions to list (0 = none).") in
  let cfg = Arg.(value & opt (some string) None & info [ "cfg" ] ~doc:"Write the CFG as graphviz dot to $(docv).") in
  Cmd.v (Cmd.info "info" ~doc:"Inspect a SELF binary") Term.(const cmd_info $ file $ n $ cfg)

let rewrite_cmd =
  let mode =
    Arg.(value & opt string "downgrade" & info [ "m"; "mode" ] ~doc:"downgrade, upgrade or empty.")
  in
  let trap = Arg.(value & flag & info [ "trap" ] ~doc:"Use trap-based trampolines (strawman).") in
  let no_gp =
    Arg.(value & flag & info [ "no-gp" ]
         ~doc:"General-register SMILE (paper Fig. 5): trampolines over lui+load idioms.")
  in
  let infile = Arg.(required & pos 0 (some string) None & info [] ~docv:"IN") in
  let outfile = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT") in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Rewrite a binary with CHBP")
    Term.(const cmd_rewrite $ mode $ trap $ no_gp $ infile $ outfile)

let run_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let isa = Arg.(value & opt isa_conv Ext.rv64gcv & info [ "isa" ] ~doc:"Hart capabilities.") in
  let fuel = Arg.(value & opt int 100_000_000 & info [ "fuel" ] ~doc:"Instruction budget.") in
  let plain =
    Arg.(value & flag & info [ "plain" ] ~doc:"Run without Chimera (no rewriting/recovery).")
  in
  let counters =
    Arg.(value & flag & info [ "counters" ] ~doc:"Print the runtime's recovery counters.")
  in
  let steps =
    Arg.(value & opt int 0 & info [ "steps" ]
         ~doc:"Print the first $(docv) executed instructions (0 = off).")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a JSONL event trace to $(docv) (schema: OBSERVABILITY.md).")
  in
  let profile =
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
         ~doc:"Profile the guest: write a hot-block/instruction-mix report to \
               $(docv) and folded call stacks to $(docv).folded (flamegraph \
               input). Combine with $(b,--trace) to embed the profile in the \
               trace for offline 'chimera profile'.")
  in
  let tiered =
    Arg.(value & flag & info [ "tiered" ]
         ~doc:"Tiered execution with jalr inline caches (profile-guided \
               promotion and recompilation; results are bit-identical, only \
               dispatch changes). The $(b,--profile) report then annotates \
               hot blocks with their tier and lists inline-cache sites.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a binary on a simulated hart")
    Term.(const cmd_run $ file $ isa $ fuel $ plain $ counters $ steps $ trace $ profile
          $ tiered)

let profile_cmd =
  let trace = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let bin =
    Arg.(value & opt (some string) None & info [ "bin" ] ~docv:"FILE"
         ~doc:"SELF binary to annotate hot blocks with disassembly.")
  in
  let top = Arg.(value & opt int 20 & info [ "top" ] ~doc:"Hot blocks to list.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the report to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Render a profiler report from a recorded trace")
    Term.(const cmd_profile $ trace $ bin $ top $ out)

let metrics_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let isa = Arg.(value & opt isa_conv Ext.rv64gcv & info [ "isa" ] ~doc:"Hart capabilities.") in
  let fuel = Arg.(value & opt int 100_000_000 & info [ "fuel" ] ~doc:"Instruction budget.") in
  let tiered =
    Arg.(value & flag & info [ "tiered" ]
         ~doc:"Tiered execution with jalr inline caches (the tier-promotion \
               and inline-cache counters are then live).")
  in
  let fmt =
    Arg.(value & opt string "prometheus" & info [ "format" ] ~docv:"FMT"
         ~doc:"Exposition format: $(b,prometheus) (text exposition, default) \
               or $(b,json).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the snapshot to $(docv) instead of stdout.")
  in
  let capture =
    Arg.(value & opt int 0 & info [ "capture" ] ~docv:"N"
         ~doc:"Also keep the most recent $(docv) observability events in a \
               bounded in-memory ring (0 = off). Overwritten events are \
               counted and reported, never silently lost.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a binary under the Chimera runtime with the always-on \
             metrics subsystem enabled and dump the final snapshot \
             (counters, latency quantiles, health watchdog verdicts)")
    Term.(const cmd_metrics $ file $ isa $ fuel $ tiered $ fmt $ out $ capture)

let cache_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let stat =
    Cmd.v
      (Cmd.info "stat" ~doc:"Entry count and byte size of a cache directory")
      Term.(const cmd_cache_stat $ dir)
  in
  let clear =
    Cmd.v
      (Cmd.info "clear" ~doc:"Remove every cache entry")
      Term.(const cmd_cache_clear $ dir)
  in
  let prewarm =
    let file = Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE") in
    let isa = Arg.(value & opt isa_conv Ext.rv64gcv & info [ "isa" ] ~doc:"Hart capabilities.") in
    let fuel = Arg.(value & opt int 100_000_000 & info [ "fuel" ] ~doc:"Instruction budget.") in
    let mode =
      Arg.(value & opt string "downgrade" & info [ "m"; "mode" ] ~doc:"downgrade, upgrade or empty.")
    in
    let tiered =
      Arg.(value & flag & info [ "tiered" ]
           ~doc:"Prewarm under tiered execution with inline caches (must \
                 match the configuration of later runs: plans refuse to seed \
                 across engine configurations).")
    in
    Cmd.v
      (Cmd.info "prewarm"
         ~doc:"Run a binary once under the Chimera runtime, recording, and \
               store its rewrite context and translation plan so later runs \
               against the same directory start warm")
      Term.(const cmd_cache_prewarm $ dir $ file $ isa $ fuel $ mode $ tiered)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Persistent translation cache maintenance")
    [ stat; clear; prewarm ]

let serve_cmd =
  let guests =
    Arg.(value & pos_all string []
         & info [] ~docv:"GUEST"
             ~doc:"Guests to execute: $(b,FILE.self) binaries or \
                   $(b,spec:<profile>) synthetic benchmarks. The file/profile \
                   name doubles as the tenant name.")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on a Unix-domain socket at $(docv) instead of running a \
               batch: a line protocol of RUN <tenant> <file.self>, \
               SPEC <tenant> <profile>, STAT and QUIT, with synchronous \
               OK/ERR replies.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains in the execution pool (split between the base \
               and extension scheduler classes, with work stealing).")
  in
  let cache =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
         ~doc:"Shared persistent translation cache: every tenant's rewrite \
               contexts and translation plans land in $(docv), so replicas \
               of one digest start warm whichever tenant runs first.")
  in
  let tiered =
    Arg.(value & flag & info [ "tiered" ]
         ~doc:"Run guests under tiered execution with jalr inline caches \
               (results are bit-identical, only dispatch changes).")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
         ~doc:"Submit the batch guest list $(docv) times (replicas share \
               cache artifacts; handy for demonstrating warm starts).")
  in
  let max_queue =
    Arg.(value & opt (some int) None & info [ "max-queue" ] ~docv:"N"
         ~doc:"Admission bound: requests arriving with $(docv) already \
               queued are rejected (unbounded by default).")
  in
  let fuel = Arg.(value & opt int 100_000_000 & info [ "fuel" ] ~doc:"Instruction budget per request.") in
  let isa = Arg.(value & opt isa_conv Ext.rv64gcv & info [ "isa" ] ~doc:"Hart capabilities.") in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Enable metrics and dump a Prometheus snapshot (admission \
               counters, per-tenant retired, latency histogram, health \
               watchdog) to $(docv) at shutdown; exits nonzero if the \
               watchdog is degraded.")
  in
  let max_requests =
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N"
         ~doc:"With --socket: stop listening after $(docv) RUN/SPEC \
               commands (mainly for scripted smoke tests).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Multi-tenant rewrite-and-execute server: admit guests into a \
             Domain pool sharing one persistent translation cache")
    Term.(const cmd_serve $ socket $ guests $ jobs $ cache $ tiered $ repeat
          $ max_queue $ fuel $ isa $ metrics $ max_requests)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "chimera" ~version:"1.0.0"
             ~doc:"Transparent ISAX heterogeneous computing via binary rewriting")
          [ gen_cmd; info_cmd; rewrite_cmd; run_cmd; profile_cmd; metrics_cmd;
            cache_cmd; serve_cmd ]))
