(** Translation superblocks: instruction runs pre-decoded and compiled into
    closure arrays, with cheap page-granular invalidation.

    A superblock starts at an entry pc and extends past direct control flow:
    the machine may compile a direct jump as an inlined transfer (decoding
    continues at the target) and a conditional branch as an inlined guard
    whose taken path leaves the block through a side exit (decoding
    continues at the fall-through). The run ends at the first event
    instruction (kept, decoded, as the block's terminator), at an
    instruction the machine cannot put on the fast path, when the per-block
    page set would exceed its cap, or at the instruction-count cap.

    Straight-line instructions are lowered into the linear IR ({!Tir}) and
    buffered as a run; at every block event the run is handed to the
    machine's [emit] callback, which optimizes it whole (constant
    propagation, dead-write elimination) and returns execution units, each
    covering one or more instructions. The per-instruction metadata
    ([pcs]/[sizes]/[classes]) is kept exact per instruction regardless of
    how the emitter groups — [starts] maps units back to instruction
    indices so fuel, faults and profiler prefix walks stay bit-exact.

    Blocks are validated against a {!Gen} generation table: patching code
    bumps the generations of the covered pages, and any block (or cached
    decode) overlapping a bumped page fails its stamp check and is
    re-translated — invalidation costs O(pages patched), never a cache
    scan. A block records every page its bytes span, so cross-page blocks
    keep invalidation page-granular.

    The module is parameterized over the machine state ['m]; the machine
    supplies decoding and per-instruction compilation, this module owns
    block layout, termination policy, and invalidation bookkeeping. *)

module Gen : sig
  type t
  (** Page-granular generation counters (monotonic), stored in a growable
      flat array keyed by page index: stamping is plain array sums on the
      post-epoch-bump revalidation path, no hashing. *)

  val create : unit -> t

  val bump : t -> addr:int -> len:int -> unit
  (** Increment the generation of every page overlapping [addr, addr+len). *)

  val stamp : t -> lo:int -> hi:int -> int
  (** Sum of the generations of the pages covering [lo, hi] (inclusive).
      Generations only grow, so equal stamps over the same range mean no
      covered page changed. *)

  val stamp_pages : t -> int array -> int
  (** Sum of the generations of an explicit page-index set (a block's
      [pages]); same monotonicity argument as {!stamp}. *)
end

type 'm compiled =
  | Op of ('m -> unit)
      (** Straight-line: executes the instruction; the retired counter is
          credited in bulk by the dispatch loop (see [auto]). *)
  | Op_self of ('m -> unit)
      (** Straight-line like [Op], but the closure retires internally
          (vector / interpreter-fallback instructions); excluded from
          [auto]. *)
  | Jump of ('m -> unit) * int
      (** Inlined direct jump: the closure transfers to the static target
          (the [int]) and retires; decoding continues at the target. *)
  | Brcond of ('m -> unit)
      (** Inlined conditional branch: the closure retires and either falls
          through or leaves the block via the machine's side-exit exception;
          decoding continues at the fall-through. *)
  | Term  (** Event instruction: ends the block, kept decoded. *)
  | Term_fn of ('m -> unit)
      (** Terminator proven event-free at translation time (direct call,
          indirect jump under the C extension, branch with aligned
          targets): the closure transfers control, retires and cannot
          fault, so the dispatch loop may run it directly instead of going
          through the decoded-instruction event path. The decoded pair is
          still recorded in [term] as the slow-path/oracle fallback. *)
  | Stop  (** Not executable on the fast path (e.g. unsupported extension). *)

type 'm emitted = { efn : 'm -> unit; ewidth : int; eself : bool }
(** One execution unit produced by the machine's [emit] callback from a
    lowered IR run: [efn] covers [ewidth] consecutive body instructions.
    [eself = true] units retire internally (fault-capable multi-instruction
    patterns crediting partial progress themselves); [eself = false] units
    leave retirement to the dispatch loop's bulk credit through [auto]. *)

type 'm t = private {
  entry : int;
  pages : int array;  (** deduplicated page indices the block's bytes span *)
  isa : Ext.t;
  stamp : int;
  ops : ('m -> unit) array;
      (** execution units; a unit may cover several instructions *)
  starts : int array;
      (** unit [u]'s first body-instruction index; length
          [Array.length ops + 1], last entry = body instruction count *)
  auto : int array;
      (** number of auto-retired instructions in units [0, u) — single
          straight-line units whose closures leave the retired counter to
          the dispatch loop; same length as [starts] *)
  pcs : int array;
  sizes : int array;
  term : (Inst.t * int) option;
  term_fn : ('m -> unit) option;
      (** compiled event-free terminator (see {!Term_fn}); [term] still
          holds the decoded pair for paths that must go through the
          interpreter (icache accounting, the step oracle) *)
  fall : int;
      (** pc where decoding stopped (fall-through of the last decoded
          instruction, or an inlined trailing jump's target) *)
  classes : Bytes.t;
      (** {!Profile.class_code} of each body instruction, computed once at
          translation — the static instruction mix the profiler multiplies
          by dynamic dispatch counts; exact per instruction even under
          fusion *)
  term_class : int;  (** class code of the terminator, -1 if none *)
  n_jumps : int;  (** inlined direct jumps in the body *)
  n_branches : int;  (** inlined conditional branches (potential side exits) *)
  n_fused : int;
      (** instructions beyond the first in multi-instruction units —
          Σ (unit width − 1) over the body *)
  mutable echeck : int;
      (** code epoch at the last successful validation ({!revalidate}) *)
  mutable link_fall : 'm t option;
      (** direct-chained successor at [fall] (set via {!set_link_fall}) *)
  mutable link_taken : 'm t option;
      (** direct-chained successor for any other target ({!set_link_taken}) *)
  mutable prow : Profile.row option;
      (** cached profiler row for [entry] (set via {!set_prow}); valid only
          while [Profile.row_live] holds for the machine's profile *)
  mutable tier : int;
      (** execution tier the block was translated at (1 = block,
          2 = superblock, 3 = IR-optimized); set via {!set_tier} *)
  mutable relaid : bool;
      (** profile-guided layout applied — the block is the product of a
          recompile and is never recompiled again *)
  mutable hot : int;
      (** dispatches since translation ({!tick_hot}) — the hotness counter
          behind tier promotion and the recompile trigger *)
  mutable xexits : int array;
      (** per-unit side-exit counts ({!note_exit}); [[||]] until the first
          side exit. [xexits.(u) / hot] is unit [u]'s observed taken rate —
          the signal profile-guided recompilation lays the block out from. *)
}

val translate :
  ?max_insts:int ->
  ?max_pages:int ->
  gens:Gen.t ->
  epoch:int ->
  isa:Ext.t ->
  decode:(int -> (Inst.t * int) option) ->
  lower:(pc:int -> Inst.t -> int -> Tir.op option) ->
  compile:(pc:int -> Inst.t -> int -> 'm compiled) ->
  emit:(Tir.op array -> 'm emitted list) ->
  int ->
  'm t
(** [translate ~gens ~epoch ~isa ~decode ~lower ~compile ~emit entry]
    decodes the superblock at [entry]. [decode pc] returns [None] when the
    bytes at [pc] cannot be decoded or fetched (the block ends there; the
    slow path will raise the precise fault when execution reaches it).
    [lower] turns a straight-line instruction into an IR op ([None] routes
    it to [compile] instead — control flow, terminators, instructions the
    machine keeps on its legacy path). Buffered IR runs are flushed
    through [emit] at every block event; [emit] returns the run's
    execution units in order, whose widths must sum to the run's
    instruction count. [epoch] is the machine's current code epoch,
    recorded as the block's initial [echeck]. *)

val revalidate : Gen.t -> isa:Ext.t -> epoch:int -> 'm t -> bool
(** Validity check with an epoch fast path: a block whose [echeck] equals
    the current code epoch is valid with a single compare; otherwise the
    full capability + page-set-stamp check runs and, on success, [echeck]
    is refreshed. A [false] block must be re-translated — and must {e not}
    have its [echeck] refreshed by other means, since chain links rely on a
    stale [echeck] never matching again (epochs only grow). *)

val epoch_current : 'm t -> int -> bool
(** [epoch_current b epoch] is [b.echeck = epoch]: the chain-follow guard —
    no stamp re-summation, no table walk. *)

val set_link_fall : 'm t -> 'm t -> unit
val set_link_taken : 'm t -> 'm t -> unit
(** Record a direct-chained successor. Links are hints, not invariants:
    every follow is guarded by entry-pc equality and {!epoch_current}, and a
    failed guard falls back to the block table and overwrites the link. *)

val set_prow : 'm t -> Profile.row option -> unit
(** Cache the profiler row for this block (the record is private; this is
    the one sanctioned mutation of [prow]). *)

val retire : 'm t -> unit
(** Permanently invalidate a block that has been {e replaced} (tier
    promotion, profile-guided recompile): [echeck] is forced to an
    unreachable epoch and the outgoing links are dropped. Every chain link
    or inline-cache entry still pointing at the block fails its
    {!epoch_current} guard on the next follow and re-resolves through the
    block table — precise, lazy severing with no global epoch bump. The
    caller must drop the block from its table in the same breath, or
    {!revalidate} would resurrect it. *)

val set_tier : 'm t -> tier:int -> relaid:bool -> unit
(** Record the tier a block was translated at and whether its layout came
    from an observed exit profile (see [tier] / [relaid]). *)

val set_hot : 'm t -> int -> unit
(** Overwrite the hotness counter — used when seeding a block from a
    persisted translation plan so the warm start resumes at the exported
    temperature instead of re-earning promotion from zero. *)

val tick_hot : 'm t -> int
(** Increment the hotness counter and return the new value (the first
    dispatch reads 1). Called once per dispatch by tiered machines. *)

val note_exit : 'm t -> int -> unit
(** Count a side exit raised by unit [u] (allocates the per-unit count
    array on first use; out-of-range units are ignored). *)

val exit_count : 'm t -> int -> int
(** Side exits observed from unit [u] since translation. *)

val exits_total : 'm t -> int
(** Total side exits observed from the block since translation. *)

val body_length : 'm t -> int
(** Body instruction count (not unit count — fusion does not change it). *)

val degenerate : 'm t -> bool
(** No body and no terminator: the entry instruction must be executed via
    the slow path (illegal, unsupported, or unmapped). *)
