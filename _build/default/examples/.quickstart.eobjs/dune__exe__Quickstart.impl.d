examples/quickstart.ml: Binfile Chbp Chimera_system Ext Fault Format List Loader Machine Programs
