(** The MMView process model (paper §4.3, Fig. 9).

    A Chimera process owns one address-space view ("MMView") per core class:
    each view maps that class's rewritten code, while all views alias the
    same physical data pages (and stack). Loading selects the view of the
    loading core; migrating a task to another class switches views.

    Two paper mechanisms are implemented:

    - {b shared data pages}: writes through any view are visible in all
      (verified by page aliasing, not copying);
    - {b migration probes}: target-instruction addresses are not
      semantically equivalent across views, so if a migration request
      arrives while the pc is inside the current view's target sections,
      the switch is deferred until execution reaches the exit (the paper
      plants a uprobe there; here the runtime steps to it);
    - the simulated vector state is carried across class boundaries: on an
      extension→base switch the architectural vector registers are written
      into the [.chimera.vregs] region, and read back on base→extension. *)

type t

val create : ?costs:Costs.t -> Chimera_system.t -> t
(** Build one view per deployed class. Data sections (and the stack) of the
    first view are aliased into the others. *)

val machine : t -> Machine.t
val current_class : t -> Ext.t

val start : t -> on:Ext.t -> unit
(** Select the class's view and initialize pc/sp/gp at the entry point. *)

val migrate : t -> to_:Ext.t -> int
(** Switch to another class's view (and hart capabilities), deferring while
    the pc sits in the current view's target instructions. Returns the
    number of instructions stepped while deferring; the same count is
    credited to {!Machine.add_observed_extra} (these steps retire outside
    {!Machine.run}, so the bench's throughput accounting would otherwise
    miss them).
    @raise Not_found if the class was not deployed. *)

val run : t -> fuel:int -> Machine.stop
(** Execute on the current view under its runtime handlers. *)

val migrations : t -> int
