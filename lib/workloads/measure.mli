(** Measured single-task executions on the simulator.

    Every duration used by the scheduler experiments comes from actually
    executing the binary (original, rewritten, or regenerated) on the
    simulated machine and reading its cycle counter. *)

type run = {
  cycles : int;
  exit_code : int;
  retired : int;
  vector_retired : int;
  indirect_retired : int;
}

val native :
  ?fuel:int ->
  ?before_run:(Machine.t -> unit) ->
  ?after_run:(Machine.t -> unit) ->
  Binfile.t ->
  isa:Ext.t ->
  run
(** Run to completion. @raise Failure on fault or fuel exhaustion. *)

val native_until_fault : ?fuel:int -> Binfile.t -> isa:Ext.t -> run
(** Run until the first fault (the FAM migration prefix); [exit_code] is -1.
    @raise Failure if the program completes without faulting. *)

(** [before_run] sees the machine after loading, before execution (the
    bench seeds persisted translation plans there); [after_run] sees it
    after a successful run (plans are exported there). The same hooks exist
    on {!native}, {!safer} and {!armore} so every measured engine cell can
    participate in the translation cache. *)
val chimera :
  ?fuel:int ->
  ?before_run:(Machine.t -> unit) ->
  ?after_run:(Machine.t -> unit) ->
  Chbp.t ->
  isa:Ext.t ->
  run * Counters.t
val safer :
  ?fuel:int ->
  ?before_run:(Machine.t -> unit) ->
  ?after_run:(Machine.t -> unit) ->
  Safer.t ->
  isa:Ext.t ->
  run * Counters.t

val armore :
  ?fuel:int ->
  ?before_run:(Machine.t -> unit) ->
  ?after_run:(Machine.t -> unit) ->
  Armore.t ->
  isa:Ext.t ->
  run * Counters.t

val check_exit : expected:int -> run -> run
(** @raise Failure if the exit code differs (correctness oracle). *)
