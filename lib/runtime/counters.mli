(** Event counters of the runtime mechanisms — the data behind the paper's
    Table 2 ("fault handling trigger count").

    Besides the aggregate totals, a counter set records a per-site breakdown:
    every correctness event is attributed to the trampoline/check site (the
    original-code pc) that triggered it. Per-site entries are merged with
    {!add} by per-key addition — a commutative, associative operation — so
    aggregation across parallel workers is deterministic and independent of
    merge order, and {!per_site} returns a canonically sorted view. *)

type site = {
  mutable s_faults : int;  (** fault recoveries attributed to this site *)
  mutable s_traps : int;  (** trap round trips through this site *)
  mutable s_checks : int;  (** Safer-style checks executed at this site *)
  mutable s_lazy : int;  (** lazy rewrites rooted at this site *)
}

type t = {
  mutable faults_recovered : int;
      (** deterministic faults recovered via the fault-handling table
          (Chimera's passive mechanism — the paper counts these for CHBP) *)
  mutable traps : int;
      (** trap-based trampoline round trips (ARMore / strawman / CHBP
          fallback exits) *)
  mutable checks : int;
      (** indirect-jump checks (the Safer baseline's proactive mechanism) *)
  mutable lazy_rewrites : int;  (** unrecognized instructions rewritten at runtime *)
  mutable migrations : int;  (** cross-core task migrations *)
  mutable signals : int;  (** signals delivered through the gp-restoring path *)
  sites : (int, site) Hashtbl.t;
      (** per-site breakdown, keyed by the site pc; use the [*_at]
          helpers to keep the totals and the breakdown consistent *)
}

val create : unit -> t

val fault_at : t -> site:int -> unit
(** Count one recovered fault, attributed to [site]. *)

val trap_at : t -> site:int -> unit
val check_at : t -> site:int -> unit
val lazy_at : t -> site:int -> unit

val site_events : site -> int
(** Correctness events at one site ([s_faults + s_traps + s_checks]). *)

val per_site : t -> (int * site) list
(** The per-site breakdown sorted by site pc (deterministic regardless of
    the order events were counted or merged in). *)

val total_correctness_events : t -> int
(** The Table 2 metric: every invocation of a correctness-guarantee
    mechanism ([faults_recovered + traps + checks]). *)

val add : t -> t -> unit
(** Accumulate [src] into the first argument, including the per-site
    tables (per-key addition, so any merge order yields the same result). *)

val pp : Format.formatter -> t -> unit
