lib/rewriter/fault_table.ml: Hashtbl Printf
