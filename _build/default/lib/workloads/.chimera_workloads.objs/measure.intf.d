lib/workloads/measure.mli: Armore Binfile Chbp Counters Ext Safer
