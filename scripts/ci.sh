#!/bin/sh -e
# Tier-1 gate: build, full test suite, and a quick end-to-end benchmark run.
cd "$(dirname "$0")/.."
dune build
dune runtest
dune exec bench/main.exe -- fig13 -q
