type variant = [ `Base | `Ext ]

let ld_d rd rs1 imm = Inst.Load { width = Inst.D; unsigned = false; rd; rs1; imm }
let sd_d rs2 rs1 imm = Inst.Store { width = Inst.D; rs2; rs1; imm }

let load_sew sew rd rs1 =
  let width =
    match sew with
    | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D
  in
  Inst.Load { width; unsigned = false; rd; rs1; imm = 0 }

let store_sew sew rs2 rs1 =
  let width =
    match sew with
    | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D
  in
  Inst.Store { width; rs2; rs1; imm = 0 }

let add_sew = function Inst.E64 -> Inst.Add | Inst.E32 | Inst.E16 | Inst.E8 -> Inst.Addw
let mul_sew = function Inst.E64 -> Inst.Mul | Inst.E32 | Inst.E16 | Inst.E8 -> Inst.Mulw
let lg_sew sew = match Inst.sew_bytes sew with 1 -> 0 | 2 -> 1 | 4 -> 2 | _ -> 3

let v0 = Reg.v_of_int 0
let v1 = Reg.v_of_int 1
let v2 = Reg.v_of_int 2
let v3 = Reg.v_of_int 3
let v4 = Reg.v_of_int 4

(* exit with the low byte of the sum of [count] sew-wide elements at [label] *)
let emit_checksum a ~label ~count ~sew =
  Asm.la a Reg.a0 label;
  Asm.li a Reg.a1 count;
  Asm.li a Reg.a2 0;
  Asm.label a "cks_loop";
  Asm.inst a (load_sew sew Reg.t0 Reg.a0);
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, Inst.sew_bytes sew));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "cks_loop";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall

let emit_matrix a ~label ~sew ~n ~f =
  Asm.dlabel a label;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      match sew with
      | Inst.E64 -> Asm.dword64 a (Int64.of_int (f i j))
      | Inst.E32 | Inst.E16 | Inst.E8 -> Asm.dword32 a (f i j)
    done
  done

(* t5 <- base + (ri*n + rj) * sz; clobbers t5, t6 *)
let emit_index a ~base_reg ~sew ~n ~ri ~rj =
  Asm.li a Reg.t6 n;
  Asm.inst a (Inst.Op (Inst.Mul, Reg.t5, ri, Reg.t6));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, rj));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t5, Reg.t5, lg_sew sew));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, base_reg))

(* ----------------------------------------------------------------- *)
(* matmul / gemm                                                      *)
(* ----------------------------------------------------------------- *)

let gemm ?(name = "gemm") variant ~sew ~n ~rows:(lo, hi) =
  let a = Asm.create ~name () in
  let sz = Inst.sew_bytes sew in
  Asm.func a "_start";
  Asm.la a Reg.s10 "A";
  Asm.la a Reg.s11 "B";
  Asm.la a Reg.s0 "C";
  Asm.li a Reg.s4 n;
  Asm.li a Reg.s1 lo;
  Asm.li a Reg.s6 hi;
  (* One row of C per kernel invocation. The kernel is dispatched through a
     function pointer (the OpenBLAS-style runtime kernel-selection idiom):
     every invocation is an indirect call and an indirect return — flows
     the regeneration baselines must check on each execution, while binary
     patching leaves them untouched. *)
  Asm.label a "Li";
  Asm.branch_to a Inst.Bge Reg.s1 Reg.s6 "Ldone";
  Asm.la a Reg.t5 "kptr";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t5; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t3, 0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s1, Reg.s1, 1));
  Asm.j a "Li";
  Asm.label a "Ldone";
  (* checksum over the computed rows *)
  Asm.la a Reg.a0 "C";
  Asm.li a Reg.t0 (lo * n * sz);
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t0));
  Asm.li a Reg.a1 ((hi - lo) * n);
  Asm.li a Reg.a2 0;
  Asm.label a "cks_loop";
  Asm.inst a (load_sew sew Reg.t0 Reg.a0);
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, sz));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "cks_loop";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  (* the row kernels: row index in s1 *)
  (match variant with
  | `Ext ->
      (* vectorized j-outer form: each strip of C[i] accumulates over k in
         a vector register *)
      Asm.func a "row_kernel_v";
      Asm.li a Reg.s2 0;
      Asm.label a "Kj";
      Asm.branch_to a Inst.Bge Reg.s2 Reg.s4 "Kj_done";
      Asm.inst a (Inst.Op (Inst.Sub, Reg.t0, Reg.s4, Reg.s2));
      Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.t0, sew));
      Asm.inst a (Inst.Vmv_v_x (v3, Reg.x0));
      Asm.li a Reg.s3 0;
      Asm.label a "Kk";
      Asm.branch_to a Inst.Bge Reg.s3 Reg.s4 "Kk_done";
      emit_index a ~base_reg:Reg.s10 ~sew ~n ~ri:Reg.s1 ~rj:Reg.s3;
      Asm.inst a (load_sew sew Reg.t4 Reg.t5);
      emit_index a ~base_reg:Reg.s11 ~sew ~n ~ri:Reg.s3 ~rj:Reg.s2;
      Asm.inst a (Inst.Vle (sew, v1, Reg.t5));
      Asm.inst a (Inst.Vop_vx (Inst.Vmacc, v3, v1, Reg.t4));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s3, Reg.s3, 1));
      Asm.j a "Kk";
      Asm.label a "Kk_done";
      emit_index a ~base_reg:Reg.s0 ~sew ~n ~ri:Reg.s1 ~rj:Reg.s2;
      Asm.inst a (Inst.Vse (sew, v3, Reg.t5));
      Asm.inst a (Inst.Op (Inst.Add, Reg.s2, Reg.s2, Reg.t0));
      Asm.j a "Kj";
      Asm.label a "Kj_done";
      Asm.ret a
  | `Base ->
      (* scalar k-outer form: for each k an axpy over the row, in the
         canonical upgradeable shape *)
      Asm.func a "row_kernel_s";
      Asm.li a Reg.s3 0;
      Asm.label a "Kk";
      Asm.branch_to a Inst.Bge Reg.s3 Reg.s4 "Kk_done";
      emit_index a ~base_reg:Reg.s10 ~sew ~n ~ri:Reg.s1 ~rj:Reg.s3;
      Asm.inst a (load_sew sew Reg.s5 Reg.t5);
      emit_index a ~base_reg:Reg.s11 ~sew ~n ~ri:Reg.s3 ~rj:Reg.x0;
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s7, Reg.t5, 0));
      emit_index a ~base_reg:Reg.s0 ~sew ~n ~ri:Reg.s1 ~rj:Reg.x0;
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s8, Reg.t5, 0));
      Asm.li a Reg.s9 n;
      Asm.label a "Laxpy";
      Asm.inst a (load_sew sew Reg.t1 Reg.s7);
      Asm.inst a (Inst.Op (mul_sew sew, Reg.t2, Reg.t1, Reg.s5));
      Asm.inst a (load_sew sew Reg.t3 Reg.s8);
      Asm.inst a (Inst.Op (add_sew sew, Reg.t3, Reg.t3, Reg.t2));
      Asm.inst a (store_sew sew Reg.t3 Reg.s8);
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s7, Reg.s7, sz));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s8, Reg.s8, sz));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s9, Reg.s9, -1));
      Asm.branch_to a Inst.Bne Reg.s9 Reg.x0 "Laxpy";
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s3, Reg.s3, 1));
      Asm.j a "Kk";
      Asm.label a "Kk_done";
      Asm.ret a);
  Asm.rlabel a "kptr";
  Asm.rword_label a (match variant with `Ext -> "row_kernel_v" | `Base -> "row_kernel_s");
  emit_matrix a ~label:"A" ~sew ~n ~f:(fun i j -> ((i * 3) + (j * 5) + 1) mod 17);
  emit_matrix a ~label:"B" ~sew ~n ~f:(fun i j -> ((i * 7) + (j * 2) + 3) mod 13);
  Asm.dlabel a "C";
  Asm.dspace a (n * n * sz);
  Asm.assemble a

let matmul ?(name = "matmul") variant ~n = gemm ~name variant ~sew:Inst.E64 ~n ~rows:(0, n)

(* ----------------------------------------------------------------- *)
(* gemv                                                               *)
(* ----------------------------------------------------------------- *)

let gemv ?(name = "gemv") ?rows variant ~sew ~n =
  let lo, hi = match rows with Some r -> r | None -> (0, n) in
  let a = Asm.create ~name () in
  let sz = Inst.sew_bytes sew in
  Asm.func a "_start";
  Asm.la a Reg.a0 "A";
  Asm.la a Reg.a1 "x";
  Asm.la a Reg.a2 "y";
  Asm.li a Reg.s4 n;
  Asm.li a Reg.s1 lo;
  Asm.li a Reg.s6 hi;
  Asm.label a "Li";
  Asm.branch_to a Inst.Bge Reg.s1 Reg.s6 "Ldone";
  Asm.li a Reg.s5 0;  (* acc *)
  (match variant with
  | `Ext ->
      Asm.li a Reg.s2 0;  (* k0 *)
      Asm.label a "Lk";
      Asm.branch_to a Inst.Bge Reg.s2 Reg.s4 "Lk_done";
      Asm.inst a (Inst.Op (Inst.Sub, Reg.t0, Reg.s4, Reg.s2));
      Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.t0, sew));
      emit_index a ~base_reg:Reg.a0 ~sew ~n ~ri:Reg.s1 ~rj:Reg.s2;
      Asm.inst a (Inst.Vle (sew, v1, Reg.t5));
      Asm.inst a (Inst.Opi (Inst.Slli, Reg.t5, Reg.s2, lg_sew sew));
      Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, Reg.a1));
      Asm.inst a (Inst.Vle (sew, v2, Reg.t5));
      Asm.inst a (Inst.Vmv_v_x (v3, Reg.x0));
      Asm.inst a (Inst.Vop_vv (Inst.Vmacc, v3, v1, v2));
      Asm.inst a (Inst.Vmv_v_x (v0, Reg.x0));
      Asm.inst a (Inst.Vredsum (v4, v3, v0));
      Asm.inst a (Inst.Vmv_x_s (Reg.t4, v4));
      Asm.inst a (Inst.Op (add_sew sew, Reg.s5, Reg.s5, Reg.t4));
      Asm.inst a (Inst.Op (Inst.Add, Reg.s2, Reg.s2, Reg.t0));
      Asm.j a "Lk";
      Asm.label a "Lk_done"
  | `Base ->
      Asm.li a Reg.s2 0;
      Asm.label a "Lk";
      Asm.branch_to a Inst.Bge Reg.s2 Reg.s4 "Lk_done";
      emit_index a ~base_reg:Reg.a0 ~sew ~n ~ri:Reg.s1 ~rj:Reg.s2;
      Asm.inst a (load_sew sew Reg.t1 Reg.t5);
      Asm.inst a (Inst.Opi (Inst.Slli, Reg.t5, Reg.s2, lg_sew sew));
      Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, Reg.a1));
      Asm.inst a (load_sew sew Reg.t2 Reg.t5);
      Asm.inst a (Inst.Op (mul_sew sew, Reg.t1, Reg.t1, Reg.t2));
      Asm.inst a (Inst.Op (add_sew sew, Reg.s5, Reg.s5, Reg.t1));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, 1));
      Asm.j a "Lk";
      Asm.label a "Lk_done");
  (* y[i] = acc *)
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t5, Reg.s1, lg_sew sew));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, Reg.a2));
  Asm.inst a (store_sew sew Reg.s5 Reg.t5);
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s1, Reg.s1, 1));
  Asm.j a "Li";
  Asm.label a "Ldone";
  (* checksum over the computed rows *)
  Asm.la a Reg.a0 "y";
  Asm.li a Reg.t0 (lo * sz);
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t0));
  Asm.li a Reg.a1 (hi - lo);
  Asm.li a Reg.a2 0;
  Asm.label a "ycks_loop";
  Asm.inst a (load_sew sew Reg.t0 Reg.a0);
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, sz));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "ycks_loop";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  emit_matrix a ~label:"A" ~sew ~n ~f:(fun i j -> ((i * 5) + (j * 3) + 2) mod 19);
  Asm.dlabel a "x";
  for j = 0 to n - 1 do
    match sew with
    | Inst.E64 -> Asm.dword64 a (Int64.of_int (((j * 11) + 1) mod 23))
    | Inst.E32 | Inst.E16 | Inst.E8 -> Asm.dword32 a (((j * 11) + 1) mod 23)
  done;
  Asm.dlabel a "y";
  Asm.dspace a (n * sz);
  Asm.assemble a

(* ----------------------------------------------------------------- *)
(* fibonacci                                                          *)
(* ----------------------------------------------------------------- *)

let fibonacci ?(name = "fibonacci") ~rounds () =
  let a = Asm.create ~name () in
  Asm.func a "_start";
  Asm.li a Reg.t0 rounds;
  Asm.label a "Louter";
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "Ldone";
  Asm.li a Reg.t1 1;
  Asm.li a Reg.t2 1;
  Asm.li a Reg.t3 30;
  Asm.label a "Lfib";
  Asm.inst a (Inst.Op (Inst.Add, Reg.t4, Reg.t1, Reg.t2));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.t2, 0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.t4, 0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t3, Reg.t3, -1));
  Asm.branch_to a Inst.Bne Reg.t3 Reg.x0 "Lfib";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.j a "Louter";
  Asm.label a "Ldone";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.t2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.assemble a

(* ----------------------------------------------------------------- *)
(* vecadd                                                             *)
(* ----------------------------------------------------------------- *)

let vecadd ?(name = "vecadd") variant ~n =
  let a = Asm.create ~name () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "src1";
  Asm.la a Reg.a1 "src2";
  Asm.la a Reg.a2 "dst";
  Asm.li a Reg.a3 n;
  (match variant with
  | `Ext ->
      Asm.label a "vloop";
      Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
      Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "vdone";
      Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.a0));
      Asm.inst a (Inst.Vle (Inst.E64, v2, Reg.a1));
      Asm.inst a (Inst.Vop_vv (Inst.Vadd, v3, v1, v2));
      Asm.inst a (Inst.Vse (Inst.E64, v3, Reg.a2));
      Asm.inst a (Inst.Opi (Inst.Slli, Reg.t1, Reg.t0, 3));
      Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t1));
      Asm.inst a (Inst.Op (Inst.Add, Reg.a1, Reg.a1, Reg.t1));
      Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t1));
      Asm.inst a (Inst.Op (Inst.Sub, Reg.a3, Reg.a3, Reg.t0));
      Asm.j a "vloop";
      Asm.label a "vdone"
  | `Base ->
      (* the canonical upgradeable loop shape *)
      Asm.label a "loop";
      Asm.inst a (ld_d Reg.t0 Reg.a0 0);
      Asm.inst a (ld_d Reg.t1 Reg.a1 0);
      Asm.inst a (Inst.Op (Inst.Add, Reg.t2, Reg.t0, Reg.t1));
      Asm.inst a (sd_d Reg.t2 Reg.a2 0);
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, 8));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, 8));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.a3, Reg.a3, -1));
      Asm.branch_to a Inst.Bne Reg.a3 Reg.x0 "loop");
  emit_checksum a ~label:"dst" ~count:n ~sew:Inst.E64;
  Asm.dlabel a "src1";
  for i = 1 to n do
    Asm.dword64 a (Int64.of_int ((i * 13) mod 31))
  done;
  Asm.dlabel a "src2";
  for i = 1 to n do
    Asm.dword64 a (Int64.of_int ((i * 17) mod 29))
  done;
  Asm.dlabel a "dst";
  Asm.dspace a (8 * n);
  Asm.assemble a

(* ----------------------------------------------------------------- *)
(* branchy                                                            *)
(* ----------------------------------------------------------------- *)

let branchy ?(name = "branchy") ~rounds () =
  let a = Asm.create ~name () in
  Asm.func a "_start";
  Asm.li a Reg.t0 rounds;
  Asm.li a Reg.t1 0x2545F491;
  (* xorshift state *)
  Asm.li a Reg.t2 0;
  (* accumulator *)
  Asm.label a "Louter";
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "Ldone";
  (* xorshift64 step: state ^= state << 13; >> 7; << 17 *)
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t4, Reg.t1, 13));
  Asm.inst a (Inst.Op (Inst.Xor, Reg.t1, Reg.t1, Reg.t4));
  Asm.inst a (Inst.Opi (Inst.Srli, Reg.t4, Reg.t1, 7));
  Asm.inst a (Inst.Op (Inst.Xor, Reg.t1, Reg.t1, Reg.t4));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t4, Reg.t1, 17));
  Asm.inst a (Inst.Op (Inst.Xor, Reg.t1, Reg.t1, Reg.t4));
  (* two data-dependent branches on fresh state bits: effectively random
     taken/not-taken, the worst case for side-exit-heavy superblocks *)
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.t5, Reg.t1, 1));
  Asm.branch_to a Inst.Beq Reg.t5 Reg.x0 "Lskip1";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.t2, 1));
  Asm.label a "Lskip1";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.t5, Reg.t1, 2));
  Asm.branch_to a Inst.Beq Reg.t5 Reg.x0 "Lskip2";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.t2, 3));
  Asm.label a "Lskip2";
  (* compare+branch pair in fusable shape *)
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.t5, Reg.t1, 16));
  Asm.inst a (Inst.Op (Inst.Slt, Reg.t6, Reg.x0, Reg.t5));
  Asm.branch_to a Inst.Bne Reg.t6 Reg.x0 "Lskip3";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.t2, 5));
  Asm.label a "Lskip3";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.j a "Louter";
  Asm.label a "Ldone";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.t2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.assemble a

(* ----------------------------------------------------------------- *)
(* indirecty                                                          *)
(* ----------------------------------------------------------------- *)

let indirecty ?(name = "indirecty") ~rounds () =
  let a = Asm.create ~name () in
  Asm.func a "_start";
  Asm.li a Reg.t0 rounds;
  Asm.li a Reg.t2 0;
  (* accumulator *)
  Asm.li a Reg.s2 0;
  (* rotating kernel index *)
  Asm.label a "Louter";
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "Ldone";
  (* rotate the kernel index 0 -> 1 -> 2 -> 0: the call site cycles through
     three targets (polymorphic), each kernel's return site sees one *)
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s2, Reg.s2, 1));
  Asm.li a Reg.t5 3;
  Asm.branch_to a Inst.Blt Reg.s2 Reg.t5 "Lsel";
  Asm.li a Reg.s2 0;
  Asm.label a "Lsel";
  Asm.la a Reg.t5 "ktab";
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t4, Reg.s2, 3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t5, Reg.t5, Reg.t4));
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t5; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t3, 0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.j a "Louter";
  Asm.label a "Ldone";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.t2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.func a "kern0";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.t2, 1));
  Asm.ret a;
  Asm.func a "kern1";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.t2, 3));
  Asm.ret a;
  Asm.func a "kern2";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.t2, 5));
  Asm.ret a;
  Asm.rlabel a "ktab";
  Asm.rword_label a "kern0";
  Asm.rword_label a "kern1";
  Asm.rword_label a "kern2";
  Asm.assemble a
