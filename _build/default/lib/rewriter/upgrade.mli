(** Instruction upgrade: recognize scalar loop idioms and vectorize them
    (paper §3.4 "instruction upgrade", Fig. 6b).

    The recognizer matches the canonical element-wise loop our toolchain (and
    any -O2 compiler) emits for [dst[i] = src1[i] op src2[i]] over 64- or
    32-bit elements:

    {v
    loop: ld/lw   x, 0(p1)
          ld/lw   y, 0(p2)
          add/sub/mul z, x, y
          sd/sw   z, 0(p3)
          addi    p1, p1, sz
          addi    p2, p2, sz
          addi    p3, p3, sz
          addi    n, n, -1
          bne     n, x0, loop
    v}

    the axpy accumulate loop

    {v
    loop: ld/lw   y, 0(p1)
          mul     t, y, s        ; s loop-invariant
          ld/lw   z, 0(p2)
          add     z, z, t
          sd/sw   z, 0(p2)
          addi    p1, p1, sz
          addi    p2, p2, sz
          addi    n, n, -1
          bne     n, x0, loop
    v}

    plus the analogous copy ([dst[i] = src[i]]), fill ([dst[i] = s]) and
    sum-reduction ([acc += src[i]]) bodies. Pointer updates larger than the
    element size (column walks over row-major matrices) are recognized too
    and vectorized with the strided [vlse]/[vsse] forms. The whole loop is
    replaced by a strip-mined RVV equivalent. The
    replacement is only proposed when the loop's scratch registers are dead
    at the loop exit (the vector version does not compute them). *)

(** The recognized loop shapes: element-wise [dst[i] = a[i] op b[i]],
    axpy-style accumulate [dst[i] += s * a[i]] (the inner loop of a
    k-outer matrix multiplication), memcpy-style copy, memset-style fill,
    and a sum reduction. *)
type kind =
  | Elementwise of Inst.vop
  | Axpy of Reg.t  (** the loop-invariant scalar multiplier register *)
  | Copy  (** [dst[i] = src[i]] *)
  | Fill of Reg.t  (** [dst[i] = s], [s] loop-invariant *)
  | Reduce of Reg.t  (** [acc += src[i]]; the accumulator stays live *)

type candidate = {
  c_addr : int;  (** loop head (the patch site) *)
  c_len : int;  (** loop body length in bytes *)
  c_exit : int;  (** fallthrough address after the loop *)
  c_kind : kind;
  c_sew : Inst.sew;
  c_p1 : Reg.t;
  c_p2 : Reg.t;
  c_p3 : Reg.t;  (** destination pointer (equals [c_p2] for axpy) *)
  c_n : Reg.t;
  c_st1 : int;  (** byte stride of [c_p1] (= element size when unit-stride) *)
  c_st2 : int;
  c_st3 : int;
  c_x : Reg.t;
  c_y : Reg.t;
  c_z : Reg.t;
}

val find : Cfg.t -> Liveness.t -> candidate list
(** All vectorizable loops, in address order. *)

val emit_vector_loop : Codebuf.t -> candidate -> unit
(** Emit the strip-mined RVV replacement. On loop exit the pointer and
    counter registers hold the same values the scalar loop would have
    produced; control falls through (the caller appends the exit jump). *)
