lib/machine/memory.ml: Bytes Char Fault Format Hashtbl Int32 Int64 List Printf
