let m_rw_sites =
  Metrics.counter ~help:"Extension sites rewritten (any style)"
    "chimera_rw_sites_total"

type mode = Downgrade | Upgrade | Empty

type options = {
  mode : mode;
  batch : bool;
  static_sew : bool;
  style : [ `Smile | `Trap ];
  spill_all : bool;
  use_gp : bool;
}

let default_options mode =
  { mode; batch = true; static_sew = true; style = `Smile; spill_all = false;
    use_gp = true }

type stats = {
  mutable source_insts : int;
  mutable sites : int;
  mutable trap_entries : int;
  mutable odd_entry_traps : int;
  mutable batches : int;
  mutable exits : int;
  mutable exit_liveness : int;
  mutable exit_shift : int;
  mutable exit_terminator : int;
  mutable exit_trap : int;
  mutable table_entries : int;
  mutable target_bytes : int;
  mutable lazy_sites : int;
}

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>sources %d, sites %d (%d trap entries, %d odd-entry traps), batches %d@,\
     exits %d: liveness %d, shift %d, terminator %d, trap %d@,\
     table entries %d, target bytes %d, lazy sites %d@]"
    s.source_insts s.sites s.trap_entries s.odd_entry_traps s.batches s.exits
    s.exit_liveness s.exit_shift s.exit_terminator s.exit_trap s.table_entries
    s.target_bytes s.lazy_sites

type patch =
  | Patch_code of { addr : int; bytes : bytes }
  | Patch_section of { addr : int; bytes : bytes }

type t = {
  orig : Binfile.t;
  opts : options;
  compressed : bool;
  table : Fault_table.t;
  trap_tbl : Fault_table.t;
  st : stats;
  sec_copies : (string * int * bytes) list;
  processed : (int, unit) Hashtbl.t;  (* source addresses already handled *)
  overwritten : (int, unit) Hashtbl.t;  (* non-site-start overwritten insts *)
  mutable cursor : int;
  mutable chunks : (int * bytes) list;  (* ascending target-code chunks *)
  mutable pending : patch list;
  mutable recording : bool;
  mutable gregs : (int * Reg.t) list;  (* jalr addr, link register *)
}

let original t = t.orig
let greg_sites t = t.gregs
let fault_table t = t.table
let trap_table t = t.trap_tbl
let stats t = t.st
let gp_value t = t.orig.Binfile.gp_value

(* ------------------------------------------------------------------ *)
(* Code-copy bookkeeping                                               *)
(* ------------------------------------------------------------------ *)

let write_code t addr src len =
  let sec =
    List.find_opt
      (fun (_, a, b) -> addr >= a && addr + len <= a + Bytes.length b)
      t.sec_copies
  in
  match sec with
  | None -> invalid_arg (Printf.sprintf "Chbp.write_code: 0x%x outside code" addr)
  | Some (_, base, buf) ->
      Bytes.blit src 0 buf (addr - base) len;
      if t.recording then
        t.pending <- Patch_code { addr; bytes = Bytes.sub src 0 len } :: t.pending

(* ------------------------------------------------------------------ *)
(* Source classification                                               *)
(* ------------------------------------------------------------------ *)

let is_source t (i : Disasm.insn) =
  match t.opts.mode with
  | Downgrade -> (
      match Ext.required i.inst with
      | Some Ext.V | Some Ext.B | Some Ext.P -> true
      | Some Ext.C | Some Ext.X | None -> false)
  | Empty -> (
      match Ext.required i.inst with
      | Some Ext.V -> true
      | Some Ext.C | Some Ext.B | Some Ext.P | Some Ext.X | None -> false)
  | Upgrade -> false

(* ------------------------------------------------------------------ *)
(* Emission helpers                                                    *)
(* ------------------------------------------------------------------ *)

let site_label addr = Printf.sprintf "a%x" addr
let pad_label addr = Printf.sprintf "p%x" addr
let stub_label addr = Printf.sprintf "s%x" addr

let restore_gp t cb = Codebuf.la_abs cb Reg.gp t.orig.Binfile.gp_value

let copy_straight cb (i : Disasm.insn) =
  match i.inst with
  | Inst.Auipc (rd, imm) ->
      (* pc-relative: materialize the value it had at its original address *)
      Codebuf.la_abs cb rd (i.addr + (imm lsl 12))
  | inst -> Codebuf.inst cb inst

(* Exit resolution (paper §4.2 challenge 2 + Fig. 8): find a way back from
   the target block into original code at [start]. *)
type exit_kind = Eliveness | Eshift | Eterminator | Etrapped

let resolve_exit t cb dis live ~chunk_base ~start =
  let max_shift = match t.opts.style with `Smile -> 24 | `Trap -> 0 in
  let used_shift = ref false and used_trap = ref false and used_term = ref false in
  let first_liveness = ref false in
  let emit_trap resume =
    used_trap := true;
    (match Fault_table.find t.trap_tbl (chunk_base + Codebuf.size cb) with
    | Some _ -> ()
    | None ->
        Fault_table.add t.trap_tbl ~key:(chunk_base + Codebuf.size cb) ~redirect:resume);
    Codebuf.inst cb Inst.Ebreak
  in
  let overwritten addr = Hashtbl.mem t.overwritten addr in
  let jump_or_trap ?(avoid = []) target =
    if not (overwritten target) then
      match Liveness.dead_at live ~avoid target with
      | Some r -> Codebuf.vanilla_jump_abs cb r target
      | None -> emit_trap target
    else
      (* jumping onto an overwritten instruction would fault on every
         execution; still correct, and the fault-handling table recovers
         it, but prefer it only when there is no alternative. *)
      match Liveness.dead_at live ~avoid target with
      | Some r -> Codebuf.vanilla_jump_abs cb r target
      | None -> emit_trap target
  in
  let rec go addr budget ~first =
    let dead =
      if t.opts.style = `Trap || overwritten addr then None
      else Liveness.dead_at live addr
    in
    match dead with
    | Some r ->
        if first then first_liveness := true else used_shift := true;
        Codebuf.vanilla_jump_abs cb r addr
    | None -> (
        match Disasm.find dis addr with
        | None -> emit_trap addr
        | Some i ->
            if is_source t i then
              (* never inline another rewriting site; fall back to the
                 original address, where its own trampoline lives *)
              emit_trap addr
            else if t.opts.style = `Trap && not (overwritten addr) then emit_trap addr
            else if budget = 0 && not (overwritten addr) then emit_trap addr
            else (
              match Disasm.flow_of i with
              | Disasm.Fallthrough | Disasm.Syscall ->
                  copy_straight cb i;
                  used_shift := true;
                  go (addr + i.size) (max 0 (budget - 1)) ~first:false
              | Disasm.Ret ->
                  used_term := true;
                  Codebuf.inst cb (Inst.Jalr (Reg.x0, Reg.ra, 0))
              | Disasm.Indirect_jump -> (
                  used_term := true;
                  match i.inst with
                  | Inst.Jalr (_, rs1, imm) -> Codebuf.inst cb (Inst.Jalr (Reg.x0, rs1, imm))
                  | Inst.C_jr rs1 -> Codebuf.inst cb (Inst.Jalr (Reg.x0, rs1, 0))
                  | Inst.Xcheck_jalr (_, rs1, imm) ->
                      Codebuf.inst cb (Inst.Xcheck_jalr (Reg.x0, rs1, imm))
                  | _ -> emit_trap addr)
              | Disasm.Indirect_call -> (
                  used_term := true;
                  let fall = addr + i.size in
                  match i.inst with
                  | Inst.Jalr (rd, rs1, imm) when not (Reg.equal rd rs1) ->
                      Codebuf.la_abs cb rd fall;
                      Codebuf.inst cb (Inst.Jalr (Reg.x0, rs1, imm))
                  | Inst.C_jalr rs1 when not (Reg.equal rs1 Reg.ra) ->
                      Codebuf.la_abs cb Reg.ra fall;
                      Codebuf.inst cb (Inst.Jalr (Reg.x0, rs1, 0))
                  | _ -> emit_trap addr)
              | Disasm.Jump target ->
                  used_term := true;
                  jump_or_trap target
              | Disasm.Call target -> (
                  used_term := true;
                  let rd =
                    match i.inst with Inst.Jal (rd, _) -> rd | _ -> Reg.ra
                  in
                  let fall = addr + i.size in
                  match
                    if overwritten target then None
                    else Liveness.dead_at live ~avoid:[ rd ] target
                  with
                  | Some r ->
                      Codebuf.la_abs cb rd fall;
                      Codebuf.vanilla_jump_abs cb r target
                  | None ->
                      (* trap-based call: set the link inline, trap to the
                         callee. Never trap back to [addr]: if this copy is
                         itself the redirect target of an overwritten call,
                         that would loop through the fault handler forever. *)
                      Codebuf.la_abs cb rd fall;
                      emit_trap target)
              | Disasm.Branch target -> (
                  used_term := true;
                  let cond, rs1, rs2 =
                    match i.inst with
                    | Inst.Branch (c, rs1, rs2, _) -> (c, rs1, rs2)
                    | Inst.C_beqz (rs1, _) -> (Inst.Beq, rs1, Reg.x0)
                    | Inst.C_bnez (rs1, _) -> (Inst.Bne, rs1, Reg.x0)
                    | _ -> assert false
                  in
                  let taken = site_label (addr + 0x4000_0000 + Codebuf.size cb) in
                  Codebuf.branch_l cb cond rs1 rs2 taken;
                  (* fallthrough edge *)
                  go (addr + i.size) (max 0 (budget - 1)) ~first:false;
                  Codebuf.label cb taken;
                  jump_or_trap target)
              | Disasm.Halt ->
                  used_term := true;
                  copy_straight cb i))
  in
  go start max_shift ~first:true;
  t.st.exits <- t.st.exits + 1;
  let kind =
    if !first_liveness then Eliveness
    else if !used_trap then Etrapped
    else if !used_term then Eterminator
    else if !used_shift then Eshift
    else Etrapped
  in
  (match kind with
  | Eliveness -> t.st.exit_liveness <- t.st.exit_liveness + 1
  | Eshift -> t.st.exit_shift <- t.st.exit_shift + 1
  | Eterminator -> t.st.exit_terminator <- t.st.exit_terminator + 1
  | Etrapped -> t.st.exit_trap <- t.st.exit_trap + 1);
  if !Obs.enabled then begin
    let name =
      match kind with
      | Eliveness -> "liveness"
      | Eshift -> "shift"
      | Eterminator -> "terminator"
      | Etrapped -> "trap"
    in
    Obs.emit (Obs.Rw_exit { site = start; kind = name })
  end;
  kind

(* ------------------------------------------------------------------ *)
(* Batch processing (downgrade / empty)                                *)
(* ------------------------------------------------------------------ *)

type entry_kind =
  | Esmile of { space_end : int; nop : bool }
  | Etrap_entry
  | Econsumed  (** inside a previous site's space; no trampoline possible *)

(* An indirect call whose link register doubles as the target base cannot
   be reproduced in a copy (no scratch register is architecturally
   available), so it must never be overwritten by a trampoline space. *)
let uncopyable (i : Disasm.insn) =
  match i.inst with
  | Inst.Jalr (rd, rs1, _) -> Reg.equal rd rs1 && not (Reg.equal rd Reg.x0)
  | Inst.C_jalr rs1 -> Reg.equal rs1 Reg.ra
  | _ -> false

let space_of dis (si : Disasm.insn) =
  let rec go addr acc =
    if acc >= 8 then Some (addr, acc > 8)
    else
      match Disasm.find dis addr with
      | None -> None
      | Some i -> if uncopyable i then None else go (addr + i.size) (acc + i.size)
  in
  go (si.Disasm.addr + si.Disasm.size) si.Disasm.size

(* Pass 1 for a batch: decide each site's entry kind. [covered] is shared
   across batches: a site consumed by an earlier site's space (even from a
   preceding batch whose space overflowed a block boundary) cannot host a
   trampoline of its own. *)
let plan_entries ~style dis covered (sources : Disasm.insn list) =
  List.map
    (fun (si : Disasm.insn) ->
      if si.addr < !covered then (si, Econsumed)
      else if style = `Trap then begin
        covered := max !covered (si.addr + si.size);
        (si, Etrap_entry)
      end
      else
        match space_of dis si with
        | Some (space_end, nop) ->
            covered := max !covered space_end;
            (si, Esmile { space_end; nop })
        | None ->
            covered := max !covered (si.addr + si.size);
            (si, Etrap_entry))
    sources

let entry_end (si : Disasm.insn) = function
  | Esmile { space_end; _ } -> space_end
  | Etrap_entry | Econsumed -> si.Disasm.addr + si.Disasm.size

(* Record the overwritten (non-site-start) instruction addresses of a
   batch plan, so exit resolution avoids landing on them. *)
let note_overwritten t dis plan =
  List.iter
    (fun ((si : Disasm.insn), kind) ->
      match kind with
      | Esmile { space_end; _ } ->
          let rec go addr =
            if addr < space_end then
              match Disasm.find dis addr with
              | None -> ()
              | Some i ->
                  Hashtbl.replace t.overwritten addr ();
                  go (addr + i.size)
          in
          go (si.addr + si.size)
      | Etrap_entry | Econsumed -> ())
    plan

(* Batch context (setup sharing): for every maximal run of adjacent source
   instructions, reserve two registers dead across the run to carry the
   simulated-state base address and the current vl, loaded once at the run
   head. Returns the per-run-head and per-run-member context tables. *)
let compute_run_ctx t live (region_insns : Disasm.insn list) =
  let run_ctx = Hashtbl.create 8 in
  let member_ctx = Hashtbl.create 8 in
  (if t.opts.mode = Downgrade then
     let rec runs acc cur = function
       | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
       | (i : Disasm.insn) :: rest ->
           if is_source t i && not (Inst.is_bitmanip i.inst) then runs acc (i :: cur) rest
           else
             runs (match cur with [] -> acc | _ -> List.rev cur :: acc) [] rest
     in
     runs [] [] region_insns
     |> List.filter (fun r -> List.length r >= 2)
     |> List.iter (fun run ->
            match run with
            | [] -> ()
            | (head : Disasm.insn) :: rest ->
                let used =
                  List.fold_left
                    (fun acc (i : Disasm.insn) ->
                      Regmask.union acc
                        (Regmask.union
                           (Regmask.of_list (Inst.uses i.inst))
                           (Regmask.of_list (Inst.defs i.inst))))
                    Regmask.empty run
                in
                let candidates =
                  List.filter
                    (fun r -> not (Regmask.mem r used))
                    (Liveness.dead_regs_at live head.addr)
                in
                (match candidates with
                | rb :: rv :: _ ->
                    Hashtbl.replace run_ctx head.addr (rb, rv);
                    List.iter
                      (fun (m : Disasm.insn) ->
                        Hashtbl.replace member_ctx m.addr (rb, rv))
                      rest
                | _ -> ())));
  (run_ctx, member_ctx)

let process_batch t dis live plan =
  match plan with
  | [] -> ()
  | ((s1 : Disasm.insn), _) :: _ ->
      t.st.batches <- t.st.batches + 1;
      let region_end =
        List.fold_left (fun acc (si, k) -> max acc (entry_end si k)) 0 plan
      in
      let b = Smile.next_target ~pc:s1.addr ~min:t.cursor ~compressed:t.compressed in
      let cb = Codebuf.create () in
      let sew = ref None and sew_in_region = ref false in
      (* Fault-table redirects into the middle of a context run go through
         fixup stubs that re-establish the shared registers. *)
      let region_insns =
        let rec go addr acc =
          if addr >= region_end then List.rev acc
          else
            match Disasm.find dis addr with
            | None -> List.rev acc
            | Some i -> go (addr + i.size) (i :: acc)
        in
        go s1.addr []
      in
      let run_ctx, member_ctx = compute_run_ctx t live region_insns in
      let ctx_of addr =
        match Hashtbl.find_opt run_ctx addr with
        | Some c -> Some c
        | None -> Hashtbl.find_opt member_ctx addr
      in
      restore_gp t cb;
      (* Region emission. [open_tail] tracks whether the last emitted code
         can fall through to the next position (a straight copy or a
         translation); the tail after a terminator resolution is reachable
         again as soon as another instruction is labeled (it is a
         fault-table redirect target). *)
      let open_tail = ref true in
      let rec emit_region addr =
        if addr >= region_end then begin
          if !open_tail then
            ignore (resolve_exit t cb dis live ~chunk_base:b ~start:region_end)
        end
        else
          match Disasm.find dis addr with
          | None ->
              if !open_tail then begin
                ignore (resolve_exit t cb dis live ~chunk_base:b ~start:addr);
                open_tail := false
              end
          | Some i ->
              Codebuf.label cb (site_label addr);
              if is_source t i then begin
                (match i.inst with
                | Inst.Vsetvli (_, _, s) ->
                    sew := Some s;
                    sew_in_region := true
                | _ -> ());
                (match t.opts.mode with
                | Empty -> Codebuf.inst cb i.inst
                | Downgrade ->
                    let static_sew =
                      match i.inst with
                      | Inst.Vsetvli _ -> None
                      | _ -> if t.opts.static_sew && !sew_in_region then !sew else None
                    in
                    (match Hashtbl.find_opt run_ctx addr with
                    | Some (rb, rv) ->
                        Codebuf.la_abs cb rb Vregs.base;
                        Codebuf.inst cb
                          (Inst.Load
                             { width = Inst.D; unsigned = false; rd = rv; rs1 = rb;
                               imm = Vregs.vl_off })
                    | None -> ());
                    (* context registers must survive the whole run: keep
                       them out of the spill-free set, so a context-unaware
                       template that picks one saves and restores it *)
                    let ctx = ctx_of addr in
                    let free =
                      if t.opts.spill_all then []
                      else
                        let banned =
                          match ctx with
                          | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
                          | None -> Regmask.empty
                        in
                        List.filter
                          (fun r -> not (Regmask.mem r banned))
                          (Liveness.dead_regs_at live addr)
                    in
                    (match ctx with
                    | Some vctx -> Translate.downgrade cb ~static_sew ~free ~vctx i.inst
                    | None -> Translate.downgrade cb ~static_sew ~free i.inst)
                | Upgrade -> assert false);
                open_tail := true;
                emit_region (addr + i.size)
              end
              else (
                match Disasm.flow_of i with
                | Disasm.Fallthrough | Disasm.Syscall ->
                    copy_straight cb i;
                    open_tail := true;
                    emit_region (addr + i.size)
                | Disasm.Branch _ | Disasm.Jump _ | Disasm.Call _
                | Disasm.Indirect_jump | Disasm.Indirect_call | Disasm.Ret
                | Disasm.Halt ->
                    (* a control transfer inside the overwritten region:
                       resolve it in place (it is itself a redirect target) *)
                    ignore (resolve_exit t cb dis live ~chunk_base:b ~start:addr);
                    open_tail := false;
                    emit_region (addr + i.size))
      in
      emit_region s1.addr;
      (* fixup stubs: redirecting into the middle of a context run must
         first re-establish the shared registers *)
      Hashtbl.iter
        (fun maddr (rb, rv) ->
          if Codebuf.has_label cb (site_label maddr) then begin
            Codebuf.label cb (stub_label maddr);
            Codebuf.la_abs cb rb Vregs.base;
            Codebuf.inst cb
              (Inst.Load
                 { width = Inst.D; unsigned = false; rd = rv; rs1 = rb;
                   imm = Vregs.vl_off });
            Codebuf.j_l cb (site_label maddr)
          end)
        member_ctx;
      let entry_label addr =
        if Codebuf.has_label cb (stub_label addr) then stub_label addr
        else site_label addr
      in
      (* landing pads for the later sites of the batch *)
      let pad_targets =
        List.filter_map
          (fun ((si : Disasm.insn), kind) ->
            match kind with
            | Esmile _ when si.addr <> s1.addr -> (
                let min = b + Codebuf.size cb in
                match Smile.next_target ~pc:si.addr ~min ~compressed:t.compressed with
                | a when a - b <= Codebuf.size cb + 65536 ->
                    Codebuf.pad_to cb (a - b);
                    Codebuf.label cb (pad_label si.addr);
                    restore_gp t cb;
                    Codebuf.j_l cb (entry_label si.addr);
                    Some (si.addr, a)
                | _ | (exception Invalid_argument _) -> None)
            | Esmile _ -> Some (si.addr, b)
            | Etrap_entry | Econsumed -> None)
          plan
      in
      let bytes = Codebuf.link cb ~base:b ~resolve:(fun _ -> None) in
      t.chunks <- t.chunks @ [ (b, bytes) ];
      t.cursor <- b + Bytes.length bytes;
      t.st.target_bytes <- t.st.target_bytes + Bytes.length bytes;
      (* write entry trampolines *)
      let scratch = Bytes.make 10 '\000' in
      List.iter
        (fun ((si : Disasm.insn), kind) ->
          Hashtbl.replace t.processed si.addr ();
          t.st.source_insts <- t.st.source_insts + 1;
          match kind with
          | Esmile { space_end; nop } -> (
              match List.assoc_opt si.addr pad_targets with
              | Some target ->
                  Smile.write scratch ~off:0 ~pc:si.addr ~target ~compressed:t.compressed;
                  if nop then ignore (Encode.write scratch 8 Inst.C_nop);
                  write_code t si.addr scratch (space_end - si.addr);
                  t.st.sites <- t.st.sites + 1;
                  if !Metrics.enabled then Metrics.incr m_rw_sites;
                  if !Obs.enabled then
                    Obs.emit (Obs.Rw_site { site = si.addr; style = "smile" })
              | None ->
                  (* pad placement failed: trap entry *)
                  ignore (Encode.write scratch 0 Inst.Ebreak);
                  write_code t si.addr scratch 4;
                  Fault_table.add t.trap_tbl ~key:si.addr
                    ~redirect:(b + Codebuf.label_offset cb (entry_label si.addr));
                  t.st.trap_entries <- t.st.trap_entries + 1;
                  if !Metrics.enabled then Metrics.incr m_rw_sites;
                  if !Obs.enabled then
                    Obs.emit (Obs.Rw_site { site = si.addr; style = "trap" }))
          | Etrap_entry ->
              ignore (Encode.write scratch 0 Inst.Ebreak);
              write_code t si.addr scratch 4;
              Fault_table.add t.trap_tbl ~key:si.addr
                ~redirect:(b + Codebuf.label_offset cb (entry_label si.addr));
              t.st.trap_entries <- t.st.trap_entries + 1;
              if !Metrics.enabled then Metrics.incr m_rw_sites;
              if !Obs.enabled then
                Obs.emit (Obs.Rw_site { site = si.addr; style = "trap" })
          | Econsumed -> ())
        plan;
      (* fault-handling table entries for overwritten instructions *)
      List.iter
        (fun ((si : Disasm.insn), kind) ->
          match kind with
          | Esmile { space_end; _ } ->
              let rec go addr =
                if addr < space_end then
                  match Disasm.find dis addr with
                  | None -> ()
                  | Some i ->
                      (match Fault_table.find t.table addr with
                      | Some _ -> ()
                      | None ->
                          (match Codebuf.label_offset cb (entry_label addr) with
                          | off ->
                              Fault_table.add t.table ~key:addr ~redirect:(b + off);
                              t.st.table_entries <- t.st.table_entries + 1
                          | exception Not_found -> ()));
                      go (addr + i.size)
              in
              go (si.addr + si.size)
          | Etrap_entry | Econsumed -> ())
        plan

(* ------------------------------------------------------------------ *)
(* General-register SMILE (paper Fig. 5)                               *)
(* ------------------------------------------------------------------ *)

(* For an ISA without a gp-like register: find an adjacent
   [lui rd, hi; load rd2, lo(rd)] static-data access before the source in
   the same basic block. Overwriting that pair with [auipc rd; jalr rd]
   keeps partial executions deterministic, because any original-valid jump
   to the pair's second instruction arrives with rd pointing at readable
   (non-executable) data. *)
let pair_target_non_exec t ~hi ~imm =
  let target = (hi lsl 12) + imm in
  List.exists
    (fun (s : Binfile.section) ->
      Binfile.in_section s target && not s.Binfile.sec_perm.Memory.x)
    t.orig.Binfile.sections

let admissible_pair_reg rd =
  (not (Reg.equal rd Reg.x0)) && (not (Reg.equal rd Reg.sp))
  && not (Reg.equal rd Reg.gp)

(* Decode a 4-byte slot of the working text copy (patches included), for
   peeking behind a lazily discovered site in an uncompressed binary. *)
let raw_inst t addr =
  match
    List.find_opt
      (fun (_, a, b) -> addr >= a && addr + 4 <= a + Bytes.length b)
      t.sec_copies
  with
  | None -> None
  | Some (_, base, buf) ->
      let off = addr - base in
      let lo = Bytes.get_uint16_le buf off
      and hi = Bytes.get_uint16_le buf (off + 2) in
      (match Decode.decode ~lo ~hi with
      | Decode.Ok (inst, 4) -> Some { Disasm.addr; inst; size = 4 }
      | Decode.Ok _ | Decode.Illegal _ -> None)

(* Walk backwards from [si] through straight-line code we can replay in the
   target section, looking for an idiom pair the containing block (possibly
   truncated by lazy disassembly) did not expose. *)
let backward_pair t (si : Disasm.insn) =
  let rec back addr between budget =
    if budget = 0 then None
    else
      match (raw_inst t (addr - 8), raw_inst t (addr - 4)) with
      | ( Some ({ Disasm.inst = Inst.Lui (rd, hi); _ } as lui),
          Some ({ Disasm.inst = Inst.Load { rs1; imm; _ }; _ } as ld) )
        when Reg.equal rs1 rd && admissible_pair_reg rd
             && (not (Hashtbl.mem t.overwritten lui.Disasm.addr))
             && (not (Hashtbl.mem t.overwritten ld.Disasm.addr))
             && pair_target_non_exec t ~hi ~imm ->
          Some (lui, ld, rd, between)
      | _, Some i
        when Disasm.flow_of i = Disasm.Fallthrough
             && (not (is_source t i))
             && not (Hashtbl.mem t.overwritten i.Disasm.addr) ->
          back (addr - 4) (i :: between) (budget - 1)
      | _, (Some _ | None) -> None
  in
  back si.Disasm.addr [] 16

let find_greg_pair t cfg (si : Disasm.insn) =
  let in_block =
    match Cfg.block_containing cfg si.Disasm.addr with
    | None -> None
    | Some b ->
        let rec scan = function
          | ({ Disasm.inst = Inst.Lui (rd, hi); _ } as lui)
            :: ({ Disasm.inst = Inst.Load { rs1; imm; _ }; _ } as ld)
            :: rest
            when Reg.equal rs1 rd && admissible_pair_reg rd
                 && ld.Disasm.addr + ld.Disasm.size <= si.Disasm.addr
                 && not (Hashtbl.mem t.overwritten ld.Disasm.addr) ->
              if pair_target_non_exec t ~hi ~imm then
                let between =
                  List.filter
                    (fun (i : Disasm.insn) ->
                      i.addr > ld.Disasm.addr && i.addr < si.Disasm.addr)
                    b.Cfg.b_insns
                in
                Some (lui, ld, rd, between)
              else scan (ld :: rest)
          | _ :: rest -> scan rest
          | [] -> None
        in
        scan b.Cfg.b_insns
  in
  match in_block with Some _ -> in_block | None -> backward_pair t si

let process_greg_site t dis cfg live (sources : Disasm.insn list) =
  match sources with
  | [] -> ()
  | (si : Disasm.insn) :: _ ->
      t.st.batches <- t.st.batches + 1;
      let last = List.nth sources (List.length sources - 1) in
      let region_end = last.Disasm.addr + last.Disasm.size in
      List.iter
        (fun (s : Disasm.insn) ->
          t.st.source_insts <- t.st.source_insts + 1;
          Hashtbl.replace t.processed s.addr ())
        sources;
      let scratch = Bytes.make 8 '\000' in
      let is_src (i : Disasm.insn) = List.exists (fun s -> s.Disasm.addr = i.addr) sources in
      (* shared emission: translate sources, copy everything else, from
         [start] to [region_end], then resolve the exit *)
      let emit_body cb b start =
        let sew = ref None and sew_in_region = ref false in
        let region_insns =
          let rec collect addr acc =
            if addr >= region_end then List.rev acc
            else
              match Disasm.find dis addr with
              | None -> List.rev acc
              | Some i -> collect (addr + i.size) (i :: acc)
          in
          collect start []
        in
        let run_ctx, member_ctx = compute_run_ctx t live region_insns in
        let ctx_of addr =
          match Hashtbl.find_opt run_ctx addr with
          | Some c -> Some c
          | None -> Hashtbl.find_opt member_ctx addr
        in
        let rec go addr =
          if addr >= region_end then
            ignore (resolve_exit t cb dis live ~chunk_base:b ~start:region_end)
          else
            match Disasm.find dis addr with
            | None -> ignore (resolve_exit t cb dis live ~chunk_base:b ~start:addr)
            | Some i ->
                Codebuf.label cb (site_label addr);
                if is_src i then begin
                  (match i.inst with
                  | Inst.Vsetvli (_, _, s) ->
                      sew := Some s;
                      sew_in_region := true
                  | _ -> ());
                  (match t.opts.mode with
                  | Empty -> Codebuf.inst cb i.inst
                  | Downgrade ->
                      let static_sew =
                        match i.inst with
                        | Inst.Vsetvli _ -> None
                        | _ -> if t.opts.static_sew && !sew_in_region then !sew else None
                      in
                      (match Hashtbl.find_opt run_ctx addr with
                      | Some (rb, rv) ->
                          Codebuf.la_abs cb rb Vregs.base;
                          Codebuf.inst cb
                            (Inst.Load
                               { width = Inst.D; unsigned = false; rd = rv;
                                 rs1 = rb; imm = Vregs.vl_off })
                      | None -> ());
                      let ctx = ctx_of addr in
                      let free =
                        if t.opts.spill_all then []
                        else
                          let banned =
                            match ctx with
                            | Some (rb, rv) -> Regmask.of_list [ rb; rv ]
                            | None -> Regmask.empty
                          in
                          List.filter
                            (fun r -> not (Regmask.mem r banned))
                            (Liveness.dead_regs_at live addr)
                      in
                      (match ctx with
                      | Some vctx -> Translate.downgrade cb ~static_sew ~free ~vctx i.inst
                      | None -> Translate.downgrade cb ~static_sew ~free i.inst)
                  | Upgrade -> assert false);
                  go (addr + i.size)
                end
                else (
                  match Disasm.flow_of i with
                  | Disasm.Fallthrough | Disasm.Syscall ->
                      copy_straight cb i;
                      go (addr + i.size)
                  | _ ->
                      ignore (resolve_exit t cb dis live ~chunk_base:b ~start:addr))
        in
        go start;
        (* redirecting into the middle of a context run must first
           re-establish the shared registers *)
        Hashtbl.iter
          (fun maddr (rb, rv) ->
            if Codebuf.has_label cb (site_label maddr) then begin
              Codebuf.label cb (stub_label maddr);
              Codebuf.la_abs cb rb Vregs.base;
              Codebuf.inst cb
                (Inst.Load
                   { width = Inst.D; unsigned = false; rd = rv; rs1 = rb;
                     imm = Vregs.vl_off });
              Codebuf.j_l cb (site_label maddr)
            end)
          member_ctx
      in
      let add_table cb b addr =
        match Fault_table.find t.table addr with
        | Some _ -> ()
        | None -> (
            let lbl =
              if Codebuf.has_label cb (stub_label addr) then stub_label addr
              else site_label addr
            in
            match Codebuf.label_offset cb lbl with
            | off ->
                Fault_table.add t.table ~key:addr ~redirect:(b + off);
                t.st.table_entries <- t.st.table_entries + 1
            | exception Not_found -> ())
      in
      (* Normal flow reaches the translation through the entry trampoline,
         so the in-place sources behind it are dead code; only hidden
         indirect entries (invisible to recursive descent) can still land
         on them. Put a resident trap over each, turning every such entry
         into a cheap trap-table redirect instead of a per-visit SIGILL
         attribution. *)
      let trap_over_source cb b (s : Disasm.insn) =
        let lbl =
          if Codebuf.has_label cb (stub_label s.addr) then stub_label s.addr
          else site_label s.addr
        in
        match Codebuf.label_offset cb lbl with
        | off ->
            ignore (Encode.write scratch 0 Inst.Ebreak);
            write_code t s.addr scratch 4;
            Fault_table.add t.trap_tbl ~key:s.addr ~redirect:(b + off);
            t.st.odd_entry_traps <- t.st.odd_entry_traps + 1;
            if !Metrics.enabled then Metrics.incr m_rw_sites;
            if !Obs.enabled then
              Obs.emit (Obs.Rw_site { site = s.addr; style = "trap" })
        | exception Not_found -> ()
      in
      let emit_trap_entry () =
        let b = (t.cursor + 3) land lnot 3 in
        let cb = Codebuf.create () in
        emit_body cb b si.addr;
        let bytes = Codebuf.link cb ~base:b ~resolve:(fun _ -> None) in
        t.chunks <- t.chunks @ [ (b, bytes) ];
        t.cursor <- b + Bytes.length bytes;
        t.st.target_bytes <- t.st.target_bytes + Bytes.length bytes;
        ignore (Encode.write scratch 0 Inst.Ebreak);
        write_code t si.addr scratch 4;
        Fault_table.add t.trap_tbl ~key:si.addr ~redirect:b;
        t.st.trap_entries <- t.st.trap_entries + 1;
        if !Metrics.enabled then Metrics.incr m_rw_sites;
        if !Obs.enabled then
          Obs.emit (Obs.Rw_site { site = si.addr; style = "trap" });
        List.iter
          (fun (s : Disasm.insn) ->
            add_table cb b s.addr;
            trap_over_source cb b s)
          (List.tl sources)
      in
      (match (if t.compressed then None else find_greg_pair t cfg si) with
      | None -> emit_trap_entry ()
      | Some (lui, ld, rd, between) ->
          let b = (t.cursor + 3) land lnot 3 in
          let cb = Codebuf.create () in
          (* re-establish rd (the trampoline clobbered it), replay the data
             access and the straight-line code up to the first source, then
             the body from there *)
          Codebuf.label cb (site_label lui.Disasm.addr);
          copy_straight cb lui;
          Codebuf.label cb (site_label ld.Disasm.addr);
          copy_straight cb ld;
          List.iter
            (fun (i : Disasm.insn) ->
              Codebuf.label cb (site_label i.addr);
              copy_straight cb i)
            between;
          emit_body cb b si.addr;
          let bytes = Codebuf.link cb ~base:b ~resolve:(fun _ -> None) in
          t.chunks <- t.chunks @ [ (b, bytes) ];
          t.cursor <- b + Bytes.length bytes;
          t.st.target_bytes <- t.st.target_bytes + Bytes.length bytes;
          (* the trampoline over the pair: auipc rd, hi; jalr rd, lo(rd) *)
          let delta = b - lui.Disasm.addr in
          ignore (Encode.write scratch 0 (Inst.Auipc (rd, Encode.hi20 delta)));
          ignore (Encode.write scratch 4 (Inst.Jalr (rd, rd, Encode.lo12 delta)));
          write_code t lui.Disasm.addr scratch 8;
          Hashtbl.replace t.overwritten ld.Disasm.addr ();
          t.gregs <- (ld.Disasm.addr, rd) :: t.gregs;
          t.st.sites <- t.st.sites + 1;
          if !Metrics.enabled then Metrics.incr m_rw_sites;
          if !Obs.enabled then
            Obs.emit (Obs.Rw_site { site = lui.Disasm.addr; style = "greg" });
          add_table cb b ld.Disasm.addr;
          List.iter
            (fun (s : Disasm.insn) ->
              add_table cb b s.addr;
              trap_over_source cb b s)
            sources)

(* ------------------------------------------------------------------ *)
(* Upgrade batch                                                       *)
(* ------------------------------------------------------------------ *)

let process_upgrade t dis live (c : Upgrade.candidate) =
  t.st.batches <- t.st.batches + 1;
  t.st.source_insts <- t.st.source_insts + 1;
  Hashtbl.replace t.processed c.Upgrade.c_addr ();
  (* the trampoline overwrites the first 8 bytes of the loop *)
  (match Disasm.find dis c.c_addr with
  | Some i when i.size = 4 -> ()
  | _ -> invalid_arg "Chbp.process_upgrade: unexpected loop head");
  Hashtbl.replace t.overwritten (c.c_addr + 4) ();
  let b = Smile.next_target ~pc:c.c_addr ~min:t.cursor ~compressed:t.compressed in
  let cb = Codebuf.create () in
  restore_gp t cb;
  Upgrade.emit_vector_loop cb c;
  ignore (resolve_exit t cb dis live ~chunk_base:b ~start:c.c_exit);
  (* redirect target for the overwritten second instruction *)
  (match Disasm.find dis (c.c_addr + 4) with
  | Some i ->
      Codebuf.label cb (site_label i.addr);
      copy_straight cb i;
      ignore (resolve_exit t cb dis live ~chunk_base:b ~start:(c.c_addr + 8))
  | None -> ());
  let bytes = Codebuf.link cb ~base:b ~resolve:(fun _ -> None) in
  t.chunks <- t.chunks @ [ (b, bytes) ];
  t.cursor <- b + Bytes.length bytes;
  t.st.target_bytes <- t.st.target_bytes + Bytes.length bytes;
  let scratch = Bytes.make 10 '\000' in
  Smile.write scratch ~off:0 ~pc:c.c_addr ~target:b ~compressed:t.compressed;
  write_code t c.c_addr scratch 8;
  t.st.sites <- t.st.sites + 1;
  if !Metrics.enabled then Metrics.incr m_rw_sites;
  if !Obs.enabled then
    Obs.emit (Obs.Rw_site { site = c.c_addr; style = "smile" });
  (match Codebuf.label_offset cb (site_label (c.c_addr + 4)) with
  | off ->
      (match Fault_table.find t.table (c.c_addr + 4) with
      | Some _ -> ()
      | None ->
          Fault_table.add t.table ~key:(c.c_addr + 4) ~redirect:(b + off);
          t.st.table_entries <- t.st.table_entries + 1)
  | exception Not_found -> ())

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let process t dis =
  let cfg = Cfg.of_disasm dis in
  let live = Liveness.compute cfg in
  match t.opts.mode with
  | Upgrade ->
      Upgrade.find cfg live
      |> List.filter (fun c -> not (Hashtbl.mem t.processed c.Upgrade.c_addr))
      |> List.iter (fun c -> process_upgrade t dis live c)
  | Downgrade | Empty ->
      let sources =
        Disasm.to_list dis
        |> List.filter (fun i ->
               is_source t i && not (Hashtbl.mem t.processed i.Disasm.addr))
      in
      if not t.opts.use_gp then begin
        let tbl = Hashtbl.create 32 in
        let order = ref [] in
        List.iter
          (fun (s : Disasm.insn) ->
            let key =
              match Cfg.block_containing cfg s.addr with
              | Some blk -> blk.Cfg.b_addr
              | None -> s.addr
            in
            match Hashtbl.find_opt tbl key with
            | None ->
                order := key :: !order;
                Hashtbl.replace tbl key [ s ]
            | Some l -> Hashtbl.replace tbl key (s :: l))
          sources;
        List.iter
          (fun k -> process_greg_site t dis cfg live (List.rev (Hashtbl.find tbl k)))
          (List.rev !order)
      end
      else
      (* group per containing basic block, preserving address order *)
      let batches =
        if not t.opts.batch then List.map (fun s -> [ s ]) sources
        else begin
          let tbl = Hashtbl.create 64 in
          let order = ref [] in
          List.iter
            (fun (s : Disasm.insn) ->
              let key =
                match Cfg.block_containing cfg s.addr with
                | Some blk -> blk.Cfg.b_addr
                | None -> s.addr
              in
              (match Hashtbl.find_opt tbl key with
              | None ->
                  order := key :: !order;
                  Hashtbl.replace tbl key [ s ]
              | Some l -> Hashtbl.replace tbl key (s :: l)))
            sources;
          List.rev_map (fun k -> List.rev (Hashtbl.find tbl k)) !order
        end
      in
      let covered = ref 0 in
      let plans =
        List.map (fun srcs -> plan_entries ~style:t.opts.style dis covered srcs) batches
      in
      List.iter (note_overwritten t dis) plans;
      List.iter (process_batch t dis live) plans

let rewrite ?options (bin : Binfile.t) =
  let opts = match options with Some o -> o | None -> default_options Downgrade in
  let compressed = Ext.mem Ext.C bin.Binfile.isa in
  let sec_copies =
    Binfile.code_sections bin
    |> List.map (fun (s : Binfile.section) ->
           (s.sec_name, s.sec_addr, Bytes.copy s.sec_data))
  in
  let t =
    { orig = bin;
      opts;
      compressed;
      table = Fault_table.create ();
      trap_tbl = Fault_table.create ~name:"trap" ();
      st =
        { source_insts = 0; sites = 0; trap_entries = 0; odd_entry_traps = 0;
          batches = 0; exits = 0;
          exit_liveness = 0; exit_shift = 0; exit_terminator = 0; exit_trap = 0;
          table_entries = 0; target_bytes = 0; lazy_sites = 0 };
      sec_copies;
      processed = Hashtbl.create 256;
      overwritten = Hashtbl.create 256;
      cursor = Layout.rewriter_base;
      chunks = [];
      pending = [];
      recording = false;
      gregs = [] }
  in
  process t (Disasm.of_binfile bin);
  t

(* Merge the target-code chunks into page-disjoint sections. *)
let chunk_sections t =
  let chunks = List.sort (fun (a, _) (b, _) -> compare a b) t.chunks in
  let rec group acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some c -> c :: acc)
    | (addr, bytes) :: rest -> (
        match cur with
        | None ->
            let buf = Buffer.create (Bytes.length bytes) in
            Buffer.add_bytes buf bytes;
            group acc (Some (addr, buf)) rest
        | Some (base, buf) ->
            let cur_end = base + Buffer.length buf in
            if addr - cur_end <= 16384 then begin
              Buffer.add_string buf (String.make (addr - cur_end) '\000');
              Buffer.add_bytes buf bytes;
              group acc (Some (base, buf)) rest
            end
            else
              let nbuf = Buffer.create (Bytes.length bytes) in
              Buffer.add_bytes nbuf bytes;
              group ((base, buf) :: acc) (Some (addr, nbuf)) rest)
  in
  let groups = group [] None chunks in
  List.mapi
    (fun i (addr, buf) ->
      { Binfile.sec_name = Printf.sprintf ".chimera.text.%d" i;
        sec_addr = addr;
        sec_data = Buffer.to_bytes buf;
        sec_perm = Memory.perm_rx })
    groups

let result t =
  let bin = t.orig in
  let patched =
    List.map
      (fun (s : Binfile.section) ->
        match List.find_opt (fun (n, _, _) -> n = s.sec_name) t.sec_copies with
        | Some (_, _, copy) -> { s with sec_data = copy }
        | None -> s)
      bin.Binfile.sections
  in
  let extra = chunk_sections t in
  let extra =
    match t.opts.mode with
    | Downgrade -> extra @ [ Vregs.section () ]
    | Upgrade | Empty -> extra
  in
  let isa =
    match t.opts.mode with
    | Downgrade ->
        Ext.of_list
          (List.filter
             (fun e -> e <> Ext.V && e <> Ext.B)
             (Ext.to_list bin.Binfile.isa))
    | Upgrade -> Ext.union bin.Binfile.isa (Ext.of_list [ Ext.V ])
    | Empty -> bin.Binfile.isa
  in
  let suffix =
    match t.opts.mode with
    | Downgrade -> ".chbp-down"
    | Upgrade -> ".chbp-up"
    | Empty -> ".chbp-empty"
  in
  { bin with
    Binfile.name = bin.Binfile.name ^ suffix;
    isa;
    sections = patched @ extra }

let extend t ~root =
  t.recording <- true;
  t.pending <- [];
  let before_chunks = List.length t.chunks in
  let sites_before = t.st.sites + t.st.trap_entries in
  let dis = Disasm.of_binfile_at t.orig ~roots:[ root ] in
  process t dis;
  t.st.lazy_sites <- t.st.lazy_sites + (t.st.sites + t.st.trap_entries - sites_before);
  let new_chunks =
    List.filteri (fun i _ -> i >= before_chunks) t.chunks
    |> List.map (fun (addr, bytes) -> Patch_section { addr; bytes })
  in
  let patches = List.rev t.pending @ new_chunks in
  t.pending <- [];
  t.recording <- false;
  patches
