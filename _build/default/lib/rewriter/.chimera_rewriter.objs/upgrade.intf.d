lib/rewriter/upgrade.mli: Cfg Codebuf Inst Liveness Reg
