
let load_into mem (bin : Binfile.t) =
  List.iter
    (fun (s : Binfile.section) ->
      let len = Layout.page_align (max 1 (Bytes.length s.sec_data)) in
      Memory.map mem ~addr:s.sec_addr ~len s.sec_perm;
      Memory.poke_bytes mem s.sec_addr s.sec_data)
    bin.Binfile.sections

let map_stack mem =
  Memory.map mem ~addr:(Layout.stack_top - Layout.stack_size) ~len:Layout.stack_size
    Memory.perm_rw

let load bin =
  let mem = Memory.create () in
  load_into mem bin;
  map_stack mem;
  mem

let init_machine m (bin : Binfile.t) =
  Machine.set_pc m bin.Binfile.entry;
  Machine.set_reg m Reg.sp (Int64.of_int (Layout.stack_top - 16));
  Machine.set_reg m Reg.gp (Int64.of_int bin.Binfile.gp_value)
