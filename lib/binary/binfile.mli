(** The simulated executable format ("SELF" — simulated ELF).

    A binary is a set of sections with load addresses and permissions, an
    entry point, the statically-fixed gp value, and a symbol table. Function
    symbols are the recursive-descent disassembler's roots (the paper uses
    IDA Pro; neither guarantees completeness — code reachable only through
    jump tables may carry no symbol and is then discovered lazily at
    runtime). *)

type section = {
  sec_name : string;
  sec_addr : int;
  sec_data : bytes;
  sec_perm : Memory.perm;
}

type symbol = { sym_name : string; sym_addr : int; sym_size : int }

type t = {
  name : string;
  entry : int;
  gp_value : int;
  isa : Ext.t;  (** Extensions used by the code (beyond base RV64IM). *)
  sections : section list;
  symbols : symbol list;
}

val section : t -> string -> section
(** @raise Not_found if the binary has no section of that name. *)

val section_opt : t -> string -> section option

val text : t -> section
(** The [.text] section. *)

val code_sections : t -> section list
(** All executable sections, in address order. *)

val code_size : t -> int
(** Total bytes of executable sections. *)

val symbol : t -> string -> symbol
(** @raise Not_found *)

val in_section : section -> int -> bool

val add_section : t -> section -> t
val replace_section : t -> section -> t
(** Replace the section with the same name. @raise Not_found if absent. *)

val with_name : t -> string -> t

val pp_summary : Format.formatter -> t -> unit

val save : string -> t -> unit
(** Serialize to a file ({!Container}-framed Marshal payload: versioned
    magic, length, MD5 trailer; written atomically via rename). *)

val load_file : string -> t
(** @raise Failure with a named reason on bad magic, version skew,
    truncation, checksum mismatch or an unmarshalable payload — never a
    raw [Marshal] exception. *)
