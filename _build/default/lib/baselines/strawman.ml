let rewrite ~mode bin =
  Chbp.rewrite ~options:{ (Chbp.default_options mode) with style = `Trap } bin
