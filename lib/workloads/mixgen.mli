(** The heterogeneous computing workload of paper §6.1 (Figs. 11–12).

    1000 mixed tasks: extension tasks (matrix multiplication, RVV-
    accelerable) and base tasks (Fibonacci, not accelerable), with a varying
    extension-task share. Compiled in two versions — the extension version
    (RVV matmul; evaluates downgrading) and the base version (scalar
    matmul in upgradeable shape; evaluates upgrading) — and executed under
    four systems: FAM, Safer, MELF and Chimera.

    Task durations are cycles measured by running each (program, system,
    core-class) combination once on the simulator; every combination's exit
    code is checked against the native run (correctness oracle). *)

type system = Fam | Safer_sys | Melf_sys | Chimera_sys
type version = Vext | Vbase

val systems : system list
val system_name : system -> string
val version_name : version -> string

type cost_table

val costs :
  ?mm_n:int ->
  ?fib_rounds:int ->
  ?run_all:((unit -> unit) list -> unit) ->
  unit ->
  cost_table
(** Build and measure all combinations. [mm_n] is the matmul dimension
    (default 16), [fib_rounds] sizes the base task to roughly match the
    paper's 2:2:2:1 timing ratio. [run_all] executes a batch of independent
    measurement thunks (default: sequentially, in order); the bench driver
    passes a domain-pool runner. Each thunk builds its own machine, so the
    batches are safe to fan out. *)

val task_ratio : cost_table -> float
(** Measured (extension task on extension core) / (base task) time ratio —
    should be near 0.5 per the paper's setup. *)

val tasks : cost_table -> system -> version -> share_pct:int -> n_tasks:int -> Sched.task list
(** [share_pct]% extension tasks out of [n_tasks], evenly interleaved. *)

val pp_costs : Format.formatter -> cost_table -> unit
