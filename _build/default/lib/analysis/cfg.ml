type succ = Sblock of int | Sunknown | Sreturn

type block = {
  b_addr : int;
  b_insns : Disasm.insn list;
  b_succs : succ list;
  b_call : int option;
}

type t = {
  by_addr : (int, block) Hashtbl.t;
  ordered : block list;
  containing : (int, block) Hashtbl.t;  (* insn addr -> block *)
  predecessors : (int, int list) Hashtbl.t;
}

let of_disasm dis =
  let insns = Disasm.to_list dis in
  (* Pass 1: leaders = first insn, control-transfer targets, and insns
     following a control transfer. *)
  let leaders = Hashtbl.create 1024 in
  let mark a = Hashtbl.replace leaders a () in
  (match insns with [] -> () | i :: _ -> mark i.Disasm.addr);
  List.iter
    (fun (i : Disasm.insn) ->
      let after () = mark (i.addr + i.size) in
      match Disasm.flow_of i with
      | Disasm.Fallthrough -> ()
      | Disasm.Syscall -> ()
      | Disasm.Branch t ->
          mark t;
          after ()
      | Disasm.Jump t ->
          mark t;
          after ()
      | Disasm.Call t ->
          mark t;
          after ()
      | Disasm.Indirect_call -> after ()
      | Disasm.Indirect_jump | Disasm.Ret | Disasm.Halt -> after ())
    insns;
  (* Also: any insn with no immediate predecessor insn is a leader (function
     entries reached only via symbols, code after gaps). *)
  let insn_ends = Hashtbl.create 1024 in
  List.iter (fun (i : Disasm.insn) -> Hashtbl.replace insn_ends (i.addr + i.size) ())
    insns;
  List.iter
    (fun (i : Disasm.insn) ->
      if not (Hashtbl.mem insn_ends i.addr) then mark i.addr)
    insns;
  (* Pass 2: group into blocks. *)
  let by_addr = Hashtbl.create 1024 in
  let containing = Hashtbl.create 4096 in
  let rec build acc cur cur_addr = function
    | [] -> finish acc cur cur_addr
    | (i : Disasm.insn) :: rest -> (
        match cur with
        | [] -> build acc [ i ] i.addr rest
        | last :: _ ->
            let transfer =
              match Disasm.flow_of last with
              | Disasm.Fallthrough | Disasm.Syscall -> false
              | Disasm.Branch _ | Disasm.Jump _ | Disasm.Call _
              | Disasm.Indirect_jump | Disasm.Indirect_call | Disasm.Ret
              | Disasm.Halt ->
                  true
            in
            let contiguous = last.Disasm.addr + last.Disasm.size = i.addr in
            if Hashtbl.mem leaders i.addr || transfer || not contiguous then
              build (finish acc cur cur_addr) [ i ] i.addr rest
            else build acc (i :: cur) cur_addr rest)
  and finish acc cur cur_addr =
    match cur with
    | [] -> acc
    | last :: _ ->
        let b_insns = List.rev cur in
        let fall = last.Disasm.addr + last.Disasm.size in
        let succs, call =
          match Disasm.flow_of last with
          | Disasm.Fallthrough | Disasm.Syscall -> ([ Sblock fall ], None)
          | Disasm.Branch t -> ([ Sblock t; Sblock fall ], None)
          | Disasm.Jump t -> ([ Sblock t ], None)
          | Disasm.Call t -> ([ Sblock fall ], Some t)
          | Disasm.Indirect_call -> ([ Sblock fall ], None)
          | Disasm.Indirect_jump -> ([ Sunknown ], None)
          | Disasm.Ret -> ([ Sreturn ], None)
          | Disasm.Halt -> ([], None)
        in
        let b = { b_addr = cur_addr; b_insns; b_succs = succs; b_call = call } in
        b :: acc
  in
  let blocks_rev = build [] [] 0 insns in
  let ordered = List.rev blocks_rev in
  (* Validate successors: a direct successor that is not a known block start
     becomes unknown (decode gap) — except the fallthrough of a syscall at
     the end of the text, which is a program-exit boundary, not an unknown
     continuation (treating it as unknown would make every register live at
     the end of the program). *)
  List.iter (fun b -> Hashtbl.replace by_addr b.b_addr b) ordered;
  let ordered =
    List.map
      (fun b ->
        let ends_in_syscall =
          match List.rev b.b_insns with
          | last :: _ -> (match Disasm.flow_of last with Disasm.Syscall -> true | _ -> false)
          | [] -> false
        in
        let b_succs =
          List.filter_map
            (function
              | Sblock a when not (Hashtbl.mem by_addr a) ->
                  if ends_in_syscall then None else Some Sunknown
              | (Sblock _ | Sunknown | Sreturn) as s -> Some s)
            b.b_succs
        in
        { b with b_succs })
      ordered
  in
  Hashtbl.reset by_addr;
  List.iter (fun b -> Hashtbl.replace by_addr b.b_addr b) ordered;
  List.iter
    (fun b ->
      List.iter (fun (i : Disasm.insn) -> Hashtbl.replace containing i.addr b) b.b_insns)
    ordered;
  let predecessors = Hashtbl.create 1024 in
  List.iter
    (fun b ->
      List.iter
        (function
          | Sblock a ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt predecessors a) in
              Hashtbl.replace predecessors a (b.b_addr :: cur)
          | Sunknown | Sreturn -> ())
        b.b_succs)
    ordered;
  { by_addr; ordered; containing; predecessors }

let blocks t = t.ordered
let block_at t addr = Hashtbl.find_opt t.by_addr addr
let block_containing t addr = Hashtbl.find_opt t.containing addr

let block_end b =
  match List.rev b.b_insns with
  | last :: _ -> last.Disasm.addr + last.Disasm.size
  | [] -> b.b_addr

let preds t addr = Option.value ~default:[] (Hashtbl.find_opt t.predecessors addr)

let pp_dot fmt t =
  Format.fprintf fmt "digraph cfg {@.  node [shape=box, fontname=monospace];@.";
  List.iter
    (fun b ->
      let label =
        String.concat "\\l"
          (List.map
             (fun (i : Disasm.insn) ->
               Printf.sprintf "%x: %s" i.addr (Inst.to_string i.inst))
             b.b_insns)
      in
      Format.fprintf fmt "  b%x [label=\"%s\\l\"];@." b.b_addr label;
      List.iter
        (function
          | Sblock a -> Format.fprintf fmt "  b%x -> b%x;@." b.b_addr a
          | Sunknown ->
              Format.fprintf fmt "  b%x -> unknown [style=dashed];@." b.b_addr
          | Sreturn -> Format.fprintf fmt "  b%x -> ret [style=dotted];@." b.b_addr)
        b.b_succs)
    t.ordered;
  Format.fprintf fmt "}@."
