(** ISA extension sets and hart capability profiles.

    An ISAX heterogeneous processor is a set of harts sharing the base ISA
    (here RV64IM) where each hart enables a subset of optional extensions.
    The paper's evaluation uses base cores (RV64GC) and extension cores
    (RV64GCV); we model the distinction as capability sets checked by the
    machine before executing an instruction. *)

type ext = C | V | B | P | X
(** [C] compressed, [V] vector, [B] bit-manipulation (Zba/Zbb), [P]
    packed-SIMD (draft-P DSP instructions — the second ISAX case study),
    [X] the custom-0 check instruction used by the Safer baseline. *)

val ext_name : ext -> string
val pp_ext : Format.formatter -> ext -> unit

type t
(** An extension set (the base RV64IM is always implied). *)

val of_list : ext list -> t
val to_list : t -> ext list
val mem : ext -> t -> bool
val subset : t -> t -> bool
val union : t -> t -> t
val equal : t -> t -> bool

val base : t
(** RV64IM only: no optional extension. *)

val rv64gc : t
(** Base plus compressed (the paper's "base cores"). *)

val rv64gcv : t
(** Base plus compressed plus vector (the paper's "extension cores"). *)

val all : t
(** Every modelled extension enabled. *)

val required : Inst.t -> ext option
(** The extension an instruction needs beyond the base ISA, if any. *)

val supports : t -> Inst.t -> bool
(** [supports caps i] is true when a hart with capabilities [caps] can
    execute [i]. Executing an unsupported instruction raises a deterministic
    illegal-instruction fault in the machine. *)

val name : t -> string
(** Human-readable ISA string, e.g. ["rv64imcv"]. *)

val pp : Format.formatter -> t -> unit
