lib/analysis/regmask.ml: Format List Reg String
