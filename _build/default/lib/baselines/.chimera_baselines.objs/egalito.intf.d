lib/baselines/egalito.mli: Binfile Chbp Costs Ext Machine Safer
