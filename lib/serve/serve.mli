(** Multi-tenant rewrite-and-execute server.

    A long-running service over the existing pieces: guests (SELF binaries
    or Specgen profiles) are admitted into a {!Sched.Pool} of worker
    domains; each request rewrites — or loads from the shared persistent
    {!Cache.t} — through CHBP, runs in a private runtime and memory view
    (torn down with the request), and reports retired/cycles/latency. One
    cache spans all tenants, so a hot tenant's rewrite context and
    translation plan warm every replica of the same content digest.

    {b Determinism contract.} A request's execution depends only on its
    binary, ISA, rewrite mode, engine tier and fuel — never on scheduling,
    co-tenants or cache temperature. Engine flags are pinned per machine,
    so a pooled request retires bit-identically to {!execute} run solo;
    the tenant-isolation property test and the bench's solo-equality check
    enforce this end to end.

    {b Domain discipline.} {!submit}, {!await}, {!drain}, {!shutdown} and
    {!Daemon.listen} belong to the owning domain (they emit Obs events);
    request bodies run on worker domains and touch only the domain-sharded
    metrics. When tracing is enabled at {!create} time the server executes
    requests inline on the owning domain instead of spawning a pool — the
    Obs ring is single-domain and a traced run wants a reproducible event
    order. *)

val default_fuel : int

type outcome = {
  o_tenant : string;
  o_id : int;  (** submission order, unique per server *)
  o_stop : string;
      (** ["exit:N"], ["fault:..."], ["fuel"] or ["error:..."] (the
          request body raised) *)
  o_exit : int option;  (** [Some n] only for a clean guest exit *)
  o_retired : int;
  o_cycles : int;
  o_warm : bool;  (** translation plan seeded from the shared cache *)
  o_wait_us : int;  (** admission to first instruction *)
  o_latency_us : int;  (** admission to completion *)
}

type stats = {
  admitted : int;
  rejected : int;
  completed : int;
  queue_depth : int;
  peak_depth : int;
}

type tenant_stat = {
  ts_tenant : string;
  ts_requests : int;
  ts_retired : int;
  ts_cycles : int;
  ts_warm : int;  (** requests whose plan came warm from the cache *)
}

val cfg_tag : mode:Chbp.mode -> tiered:bool -> string
(** The configuration tag folded into every cache digest this server
    computes: artifacts are shared only between requests agreeing on
    binary, ISA, rewrite mode and engine tier. *)

val execute :
  ?cache:Cache.t ->
  isa:Ext.t ->
  mode:Chbp.mode ->
  tiered:bool ->
  fuel:int ->
  Binfile.t ->
  Machine.stop * int * int * bool
(** Run one guest end to end on the calling domain: rewrite (or cache
    load), fresh runtime + memory view, pinned engine flags, optional plan
    seed/store. Returns [(stop, retired, cycles, warm)]. This is both the
    pool worker body and the solo oracle the differential tests compare
    against. *)

type t

val create :
  ?cache:Cache.t ->
  ?max_queue:int ->
  ?steal:bool ->
  base_workers:int ->
  ext_workers:int ->
  unit ->
  t
(** Start a server. [?cache] is shared by every tenant; [?max_queue] bounds
    admission (beyond it {!submit} returns [Error `Saturated]); workers
    split into scheduler classes as in {!Sched.Pool.create}. With tracing
    enabled, no domains are spawned and requests execute inline. *)

val submit :
  t ->
  tenant:string ->
  ?prefer_ext:bool ->
  ?isa:Ext.t ->
  ?mode:Chbp.mode ->
  ?tiered:bool ->
  ?fuel:int ->
  Binfile.t ->
  (int, [ `Saturated ]) result
(** Admit one request for [tenant]; returns its id. Emits [Serve_admit] /
    [Serve_reject], bumps the admission counters and the per-tenant
    retired counter at completion. Owning domain only. *)

val await : t -> int -> outcome
(** Block until request [id] completes and return its outcome. *)

val drain : t -> unit
(** Block until every admitted request has completed, then emit any
    pending [Serve_done] events (id order, deterministic fields). *)

val shutdown : t -> unit
(** {!drain}, then stop and join the worker domains. *)

val outcomes : t -> outcome list
(** Completed outcomes in id (submission) order. *)

val stats : t -> stats

val tenant_stats : t -> tenant_stat list
(** Per-tenant aggregates over completed requests, sorted by tenant. *)

val arrivals : seed:int -> rate:float -> n:int -> float array
(** Deterministic open-loop load: [n] Poisson-style arrival offsets in
    seconds (exponential inter-arrivals at [rate] per second) from a
    seeded generator — one seed, one schedule, every run. *)

(** One-client-at-a-time line protocol over a Unix-domain socket:
    [RUN <tenant> <file.self>], [SPEC <tenant> <profile>], [STAT],
    [QUIT]. RUN/SPEC block until the request completes and reply
    ["OK id=... stop=... retired=... cycles=... warm=... latency_us=..."];
    errors reply ["ERR <reason>"]. *)
module Daemon : sig
  val listen :
    t ->
    path:string ->
    ?isa:Ext.t ->
    ?tiered:bool ->
    ?max_requests:int ->
    unit ->
    unit
  (** Serve until [QUIT] or [max_requests] RUN/SPEC commands, running every
      request under [isa] (default rv64gc). Removes any stale socket at
      [path] first and unlinks it on exit. *)
end
