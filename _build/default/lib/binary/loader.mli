(** Loader: maps a binary's sections into a memory (an address-space view)
    and prepares the process environment (stack, gp). *)


val load_into : Memory.t -> Binfile.t -> unit
(** Map and fill every section of the binary.
    @raise Invalid_argument on overlapping pages. *)

val load : Binfile.t -> Memory.t
(** Fresh memory with the binary's sections plus a mapped stack. *)

val map_stack : Memory.t -> unit
(** Map the conventional stack range ({!Layout.stack_top}). *)

val init_machine : Machine.t -> Binfile.t -> unit
(** Point a machine at the binary's entry: pc, sp (16-byte aligned below
    {!Layout.stack_top}), and gp. *)
