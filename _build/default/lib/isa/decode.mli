(** Binary instruction decoder.

    [decode] is partial: it recognizes exactly the encodings {!Encode} can
    produce and reports everything else as illegal. Two families of illegal
    encodings matter to the SMILE trampoline (paper §3.2, Fig. 7) and are
    reported with dedicated reasons:

    - a halfword whose low five bits are [11111] is the reserved prefix of a
      ≥48-bit instruction and always decodes as illegal (this is what the
      upper halfword of the SMILE [auipc] is arranged to look like);
    - a compressed C1-quadrant halfword with funct3 [100] falls in encoding
      space that our subset reserves (and that contains genuinely reserved
      RVC encodings), so it decodes as illegal (this is what the upper
      halfword of the SMILE [jalr] looks like). *)

type result =
  | Ok of Inst.t * int  (** Decoded instruction and its size in bytes. *)
  | Illegal of string  (** Reserved or unrecognized encoding. *)

val decode : lo:int -> hi:int -> result
(** [decode ~lo ~hi] decodes the instruction whose first 16-bit little-endian
    halfword is [lo] and, if it is a 4-byte instruction, whose second
    halfword is [hi] ([hi] is ignored for compressed instructions). *)

val decode_word : int -> result
(** [decode_word w] decodes a full 32-bit word (convenience for tests). *)
