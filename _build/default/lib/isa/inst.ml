type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu
type mem_width = B | H | W | D

type alu_op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Mul | Mulh | Div | Divu | Rem | Remu
  | Addw | Subw | Sllw | Srlw | Sraw | Mulw | Divw | Remw
  | Sh1add | Sh2add | Sh3add
  | Andn | Orn | Xnor | Min | Max | Minu | Maxu

type alui_op =
  | Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai
  | Addiw | Slliw | Srliw | Sraiw

type sew = E8 | E16 | E32 | E64

let sew_bytes = function E8 -> 1 | E16 -> 2 | E32 -> 4 | E64 -> 8
let sew_name = function E8 -> "e8" | E16 -> "e16" | E32 -> "e32" | E64 -> "e64"

type c_alu_op = Csub | Cxor | Cor | Cand | Csubw | Caddw

type vop = Vadd | Vsub | Vmul | Vmacc

type t =
  | Lui of Reg.t * int
  | Auipc of Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Branch of branch_cond * Reg.t * Reg.t * int
  | Load of { width : mem_width; unsigned : bool; rd : Reg.t; rs1 : Reg.t; imm : int }
  | Store of { width : mem_width; rs2 : Reg.t; rs1 : Reg.t; imm : int }
  | Op of alu_op * Reg.t * Reg.t * Reg.t
  | Opi of alui_op * Reg.t * Reg.t * int
  | Ecall
  | Ebreak
  | C_nop
  | C_ebreak
  | C_addi of Reg.t * int
  | C_li of Reg.t * int
  | C_mv of Reg.t * Reg.t
  | C_add of Reg.t * Reg.t
  | C_j of int
  | C_jr of Reg.t
  | C_jalr of Reg.t
  | C_beqz of Reg.t * int
  | C_bnez of Reg.t * int
  | C_ld of Reg.t * Reg.t * int
  | C_sd of Reg.t * Reg.t * int
  | C_lw of Reg.t * Reg.t * int
  | C_sw of Reg.t * Reg.t * int
  | C_lui of Reg.t * int
  | C_addiw of Reg.t * int
  | C_andi of Reg.t * int
  | C_alu of c_alu_op * Reg.t * Reg.t
  | C_slli of Reg.t * int
  | Vsetvli of Reg.t * Reg.t * sew
  | Vle of sew * Reg.v * Reg.t
  | Vlse of sew * Reg.v * Reg.t * Reg.t
  | Vse of sew * Reg.v * Reg.t
  | Vsse of sew * Reg.v * Reg.t * Reg.t
  | Vop_vv of vop * Reg.v * Reg.v * Reg.v
  | Vop_vx of vop * Reg.v * Reg.v * Reg.t
  | Vmv_v_x of Reg.v * Reg.t
  | Vmv_x_s of Reg.t * Reg.v
  | Vredsum of Reg.v * Reg.v * Reg.v
  | Xcheck_jalr of Reg.t * Reg.t * int
  | P_add16 of Reg.t * Reg.t * Reg.t
  | P_smaqa of Reg.t * Reg.t * Reg.t

let is_compressed = function
  | C_nop | C_ebreak | C_addi _ | C_li _ | C_mv _ | C_add _ | C_j _ | C_jr _
  | C_jalr _ | C_beqz _ | C_bnez _ | C_ld _ | C_sd _ | C_lw _ | C_sw _
  | C_lui _ | C_addiw _ | C_andi _ | C_alu _ | C_slli _ ->
      true
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _ | Op _
  | Opi _ | Ecall | Ebreak | Vsetvli _ | Vle _ | Vlse _ | Vse _ | Vsse _ | Vop_vv _ | Vop_vx _
  | Vmv_v_x _ | Vmv_x_s _ | Vredsum _ | Xcheck_jalr _ | P_add16 _ | P_smaqa _ ->
      false

let size i = if is_compressed i then 2 else 4

let is_control_flow = function
  | Jal _ | Jalr _ | Branch _ | Ecall | Ebreak | C_j _ | C_jr _ | C_jalr _
  | C_beqz _ | C_bnez _ | C_ebreak | Xcheck_jalr _ ->
      true
  | Lui _ | Auipc _ | Load _ | Store _ | Op _ | Opi _ | C_nop | C_addi _
  | C_li _ | C_mv _ | C_add _ | C_ld _ | C_sd _ | C_lw _ | C_sw _ | C_lui _
  | C_addiw _ | C_andi _ | C_alu _ | C_slli _ | Vsetvli _
  | Vle _ | Vlse _ | Vse _ | Vsse _ | Vop_vv _ | Vop_vx _ | Vmv_v_x _
  | Vmv_x_s _ | Vredsum _ | P_add16 _ | P_smaqa _ ->
      false

let is_vector = function
  | Vsetvli _ | Vle _ | Vlse _ | Vse _ | Vsse _ | Vop_vv _ | Vop_vx _ | Vmv_v_x _ | Vmv_x_s _
  | Vredsum _ ->
      true
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _ | Op _
  | Opi _ | Ecall | Ebreak | C_nop | C_ebreak | C_addi _ | C_li _ | C_mv _
  | C_add _ | C_j _ | C_jr _ | C_jalr _ | C_beqz _ | C_bnez _ | C_ld _
  | C_sd _ | C_lw _ | C_sw _ | C_lui _ | C_addiw _ | C_andi _ | C_alu _
  | C_slli _ | Xcheck_jalr _ | P_add16 _ | P_smaqa _ ->
      false

let is_packed_simd = function
  | P_add16 _ | P_smaqa _ -> true
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _ | Op _
  | Opi _ | Ecall | Ebreak | C_nop | C_ebreak | C_addi _ | C_li _ | C_mv _
  | C_add _ | C_j _ | C_jr _ | C_jalr _ | C_beqz _ | C_bnez _ | C_ld _
  | C_sd _ | C_lw _ | C_sw _ | C_lui _ | C_addiw _ | C_andi _ | C_alu _
  | C_slli _ | Vsetvli _ | Vle _ | Vlse _ | Vse _ | Vsse _ | Vop_vv _ | Vop_vx _
  | Vmv_v_x _ | Vmv_x_s _ | Vredsum _ | Xcheck_jalr _ ->
      false

let is_bitmanip = function
  | Op ((Sh1add | Sh2add | Sh3add | Andn | Orn | Xnor | Min | Max | Minu | Maxu), _, _, _)
    ->
      true
  | Op _ | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _
  | Opi _ | Ecall | Ebreak | C_nop | C_ebreak | C_addi _ | C_li _ | C_mv _
  | C_add _ | C_j _ | C_jr _ | C_jalr _ | C_beqz _ | C_bnez _ | C_ld _
  | C_sd _ | C_lw _ | C_sw _ | C_lui _ | C_addiw _ | C_andi _ | C_alu _
  | C_slli _ | Vsetvli _ | Vle _ | Vlse _ | Vse _ | Vsse _ | Vop_vv _ | Vop_vx _
  | Vmv_v_x _ | Vmv_x_s _ | Vredsum _ | Xcheck_jalr _ | P_add16 _ | P_smaqa _ ->
      false

let no_x0 regs = List.filter (fun r -> not (Reg.equal r Reg.x0)) regs

let defs i =
  no_x0
    (match i with
    | Lui (rd, _) | Auipc (rd, _) | Jal (rd, _) -> [ rd ]
    | Jalr (rd, _, _) | Xcheck_jalr (rd, _, _) -> [ rd ]
    | Ecall -> [ Reg.a0 ]
    | Branch _ | Store _ | Ebreak -> []
    | Load { rd; _ } -> [ rd ]
    | Op (_, rd, _, _) | Opi (_, rd, _, _) -> [ rd ]
    | C_nop | C_ebreak -> []
    | C_addi (rd, _) | C_li (rd, _) | C_mv (rd, _) | C_add (rd, _) -> [ rd ]
    | C_j _ | C_jr _ -> []
    | C_jalr _ -> [ Reg.ra ]
    | C_beqz _ | C_bnez _ -> []
    | C_ld (rd, _, _) | C_lw (rd, _, _) -> [ rd ]
    | C_sd _ | C_sw _ -> []
    | C_lui (rd, _) -> [ rd ]
    | C_addiw (rd, _) | C_andi (rd, _) -> [ rd ]
    | C_alu (_, rd, _) -> [ rd ]
    | C_slli (rd, _) -> [ rd ]
    | Vsetvli (rd, _, _) -> [ rd ]
    | Vle _ | Vlse _ | Vse _ | Vsse _ | Vop_vv _ | Vop_vx _ | Vmv_v_x _ | Vredsum _ -> []
    | Vmv_x_s (rd, _) -> [ rd ]
    | P_add16 (rd, _, _) | P_smaqa (rd, _, _) -> [ rd ])

let uses i =
  no_x0
    (match i with
    | Lui _ | Auipc _ | Jal _ -> []
    | Jalr (_, rs1, _) | Xcheck_jalr (_, rs1, _) -> [ rs1 ]
    | Branch (_, rs1, rs2, _) -> [ rs1; rs2 ]
    | Load { rs1; _ } -> [ rs1 ]
    | Store { rs2; rs1; _ } -> [ rs2; rs1 ]
    | Op (_, _, rs1, rs2) -> [ rs1; rs2 ]
    | Opi (_, _, rs1, _) -> [ rs1 ]
    | Ecall -> [ Reg.a0; Reg.a1; Reg.a2; Reg.a7 ]
    | Ebreak -> []
    | C_nop | C_ebreak -> []
    | C_addi (rd, _) -> [ rd ]
    | C_li _ -> []
    | C_mv (_, rs2) -> [ rs2 ]
    | C_add (rd, rs2) -> [ rd; rs2 ]
    | C_j _ -> []
    | C_jr rs1 | C_jalr rs1 -> [ rs1 ]
    | C_beqz (rs1, _) | C_bnez (rs1, _) -> [ rs1 ]
    | C_ld (_, rs1, _) | C_lw (_, rs1, _) -> [ rs1 ]
    | C_sd (rs2, rs1, _) | C_sw (rs2, rs1, _) -> [ rs2; rs1 ]
    | C_lui _ -> []
    | C_addiw (rd, _) | C_andi (rd, _) -> [ rd ]
    | C_alu (_, rd, rs2) -> [ rd; rs2 ]
    | C_slli (rd, _) -> [ rd ]
    | Vsetvli (_, rs1, _) -> [ rs1 ]
    | Vle (_, _, rs1) | Vse (_, _, rs1) -> [ rs1 ]
    | Vlse (_, _, rs1, rs2) | Vsse (_, _, rs1, rs2) -> [ rs1; rs2 ]
    | Vop_vv _ -> []
    | Vop_vx (_, _, _, rs1) -> [ rs1 ]
    | Vmv_v_x (_, rs1) -> [ rs1 ]
    | Vmv_x_s _ | Vredsum _ -> []
    | P_add16 (_, rs1, rs2) -> [ rs1; rs2 ]
    | P_smaqa (rd, rs1, rs2) -> [ rd; rs1; rs2 ])

let vdefs = function
  | Vle (_, vd, _) | Vlse (_, vd, _, _) | Vop_vv (_, vd, _, _) | Vop_vx (_, vd, _, _)
  | Vmv_v_x (vd, _) | Vredsum (vd, _, _) ->
      [ vd ]
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _ | Op _
  | Opi _ | Ecall | Ebreak | C_nop | C_ebreak | C_addi _ | C_li _ | C_mv _
  | C_add _ | C_j _ | C_jr _ | C_jalr _ | C_beqz _ | C_bnez _ | C_ld _
  | C_sd _ | C_lw _ | C_sw _ | C_lui _ | C_addiw _ | C_andi _ | C_alu _
  | C_slli _ | Vsetvli _ | Vse _ | Vsse _ | Vmv_x_s _ | Xcheck_jalr _ | P_add16 _
  | P_smaqa _ ->
      []

let vuses = function
  | Vse (_, vs3, _) | Vsse (_, vs3, _, _) -> [ vs3 ]
  | Vop_vv (Vmacc, vd, vs2, vs1) -> [ vd; vs2; vs1 ]
  | Vop_vv (_, _, vs2, vs1) -> [ vs2; vs1 ]
  | Vop_vx (Vmacc, vd, vs2, _) -> [ vd; vs2 ]
  | Vop_vx (_, _, vs2, _) -> [ vs2 ]
  | Vmv_x_s (_, vs2) -> [ vs2 ]
  | Vredsum (_, vs2, vs1) -> [ vs2; vs1 ]
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _ | Op _
  | Opi _ | Ecall | Ebreak | C_nop | C_ebreak | C_addi _ | C_li _ | C_mv _
  | C_add _ | C_j _ | C_jr _ | C_jalr _ | C_beqz _ | C_bnez _ | C_ld _
  | C_sd _ | C_lw _ | C_sw _ | C_lui _ | C_addiw _ | C_andi _ | C_alu _
  | C_slli _ | Vsetvli _ | Vle _ | Vlse _ | Vmv_v_x _ | Xcheck_jalr _ | P_add16 _
  | P_smaqa _ ->
      []

let equal (a : t) (b : t) = a = b

let branch_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt"
  | Bge -> "bge" | Bltu -> "bltu" | Bgeu -> "bgeu"

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Sll -> "sll" | Slt -> "slt" | Sltu -> "sltu"
  | Xor -> "xor" | Srl -> "srl" | Sra -> "sra" | Or -> "or" | And -> "and"
  | Mul -> "mul" | Mulh -> "mulh" | Div -> "div" | Divu -> "divu"
  | Rem -> "rem" | Remu -> "remu" | Addw -> "addw" | Subw -> "subw"
  | Sllw -> "sllw" | Srlw -> "srlw" | Sraw -> "sraw" | Mulw -> "mulw"
  | Divw -> "divw" | Remw -> "remw" | Sh1add -> "sh1add" | Sh2add -> "sh2add"
  | Sh3add -> "sh3add" | Andn -> "andn" | Orn -> "orn" | Xnor -> "xnor"
  | Min -> "min" | Max -> "max" | Minu -> "minu" | Maxu -> "maxu"

let alui_name = function
  | Addi -> "addi" | Slti -> "slti" | Sltiu -> "sltiu" | Xori -> "xori"
  | Ori -> "ori" | Andi -> "andi" | Slli -> "slli" | Srli -> "srli"
  | Srai -> "srai" | Addiw -> "addiw" | Slliw -> "slliw" | Srliw -> "srliw"
  | Sraiw -> "sraiw"

let vop_name = function
  | Vadd -> "vadd" | Vsub -> "vsub" | Vmul -> "vmul" | Vmacc -> "vmacc"

let width_name unsigned = function
  | B -> if unsigned then "lbu" else "lb"
  | H -> if unsigned then "lhu" else "lh"
  | W -> if unsigned then "lwu" else "lw"
  | D -> "ld"

let store_name = function B -> "sb" | H -> "sh" | W -> "sw" | D -> "sd"

let pp fmt i =
  let p fm = Format.fprintf fmt fm in
  let r = Reg.name in
  let v = Reg.v_name in
  match i with
  | Lui (rd, imm) -> p "lui %s, 0x%x" (r rd) (imm land 0xFFFFF)
  | Auipc (rd, imm) -> p "auipc %s, 0x%x" (r rd) (imm land 0xFFFFF)
  | Jal (rd, off) -> p "jal %s, %d" (r rd) off
  | Jalr (rd, rs1, imm) -> p "jalr %s, %d(%s)" (r rd) imm (r rs1)
  | Branch (c, rs1, rs2, off) ->
      p "%s %s, %s, %d" (branch_name c) (r rs1) (r rs2) off
  | Load { width; unsigned; rd; rs1; imm } ->
      p "%s %s, %d(%s)" (width_name unsigned width) (r rd) imm (r rs1)
  | Store { width; rs2; rs1; imm } ->
      p "%s %s, %d(%s)" (store_name width) (r rs2) imm (r rs1)
  | Op (op, rd, rs1, rs2) ->
      p "%s %s, %s, %s" (alu_name op) (r rd) (r rs1) (r rs2)
  | Opi (op, rd, rs1, imm) ->
      p "%s %s, %s, %d" (alui_name op) (r rd) (r rs1) imm
  | Ecall -> p "ecall"
  | Ebreak -> p "ebreak"
  | C_nop -> p "c.nop"
  | C_ebreak -> p "c.ebreak"
  | C_addi (rd, imm) -> p "c.addi %s, %d" (r rd) imm
  | C_li (rd, imm) -> p "c.li %s, %d" (r rd) imm
  | C_mv (rd, rs2) -> p "c.mv %s, %s" (r rd) (r rs2)
  | C_add (rd, rs2) -> p "c.add %s, %s" (r rd) (r rs2)
  | C_j off -> p "c.j %d" off
  | C_jr rs1 -> p "c.jr %s" (r rs1)
  | C_jalr rs1 -> p "c.jalr %s" (r rs1)
  | C_beqz (rs1, off) -> p "c.beqz %s, %d" (r rs1) off
  | C_bnez (rs1, off) -> p "c.bnez %s, %d" (r rs1) off
  | C_ld (rd, rs1, imm) -> p "c.ld %s, %d(%s)" (r rd) imm (r rs1)
  | C_sd (rs2, rs1, imm) -> p "c.sd %s, %d(%s)" (r rs2) imm (r rs1)
  | C_lw (rd, rs1, imm) -> p "c.lw %s, %d(%s)" (r rd) imm (r rs1)
  | C_sw (rs2, rs1, imm) -> p "c.sw %s, %d(%s)" (r rs2) imm (r rs1)
  | C_lui (rd, imm) -> p "c.lui %s, 0x%x" (r rd) (imm land 0x3F)
  | C_addiw (rd, imm) -> p "c.addiw %s, %d" (r rd) imm
  | C_andi (rd, imm) -> p "c.andi %s, %d" (r rd) imm
  | C_alu (op, rd, rs2) ->
      p "c.%s %s, %s"
        (match op with
        | Csub -> "sub" | Cxor -> "xor" | Cor -> "or" | Cand -> "and"
        | Csubw -> "subw" | Caddw -> "addw")
        (r rd) (r rs2)
  | C_slli (rd, sh) -> p "c.slli %s, %d" (r rd) sh
  | Vsetvli (rd, rs1, sew) ->
      p "vsetvli %s, %s, %s,m1" (r rd) (r rs1) (sew_name sew)
  | Vle (sew, vd, rs1) ->
      p "vle%d.v %s, (%s)" (8 * sew_bytes sew) (v vd) (r rs1)
  | Vlse (sew, vd, rs1, rs2) ->
      p "vlse%d.v %s, (%s), %s" (8 * sew_bytes sew) (v vd) (r rs1) (r rs2)
  | Vse (sew, vs3, rs1) ->
      p "vse%d.v %s, (%s)" (8 * sew_bytes sew) (v vs3) (r rs1)
  | Vsse (sew, vs3, rs1, rs2) ->
      p "vsse%d.v %s, (%s), %s" (8 * sew_bytes sew) (v vs3) (r rs1) (r rs2)
  | Vop_vv (op, vd, vs2, vs1) ->
      p "%s.vv %s, %s, %s" (vop_name op) (v vd) (v vs2) (v vs1)
  | Vop_vx (op, vd, vs2, rs1) ->
      p "%s.vx %s, %s, %s" (vop_name op) (v vd) (v vs2) (r rs1)
  | Vmv_v_x (vd, rs1) -> p "vmv.v.x %s, %s" (v vd) (r rs1)
  | Vmv_x_s (rd, vs2) -> p "vmv.x.s %s, %s" (r rd) (v vs2)
  | Vredsum (vd, vs2, vs1) -> p "vredsum.vs %s, %s, %s" (v vd) (v vs2) (v vs1)
  | Xcheck_jalr (rd, rs1, imm) -> p "x.checkjalr %s, %d(%s)" (r rd) imm (r rs1)
  | P_add16 (rd, rs1, rs2) -> p "add16 %s, %s, %s" (r rd) (r rs1) (r rs2)
  | P_smaqa (rd, rs1, rs2) -> p "smaqa %s, %s, %s" (r rd) (r rs1) (r rs2)

let to_string i = Format.asprintf "%a" pp i
