lib/binary/loader.mli: Binfile Machine Memory
