lib/binary/binfile.mli: Ext Format Memory
