test/test_rewriter.ml: Alcotest Asm Binfile Bytes Chbp Chimera_rt Costs Counters Decode Encode Ext Fault Fault_table Inst Int64 Layout List Loader Machine Printf Reg Smile
