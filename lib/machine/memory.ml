type perm = { r : bool; w : bool; x : bool }

let perm_none = { r = false; w = false; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rw = { r = true; w = true; x = false }
let perm_rx = { r = true; w = false; x = true }
let perm_rwx = { r = true; w = true; x = true }

let pp_perm fmt p =
  Format.fprintf fmt "%c%c%c"
    (if p.r then 'r' else '-')
    (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

exception Violation of { addr : int; access : Fault.access }

let page_size = 4096
let page_bits = 12

type page = { data : bytes; mutable perm : perm }

(* Software TLB: per access kind, a direct-mapped cache of page index ->
   page payload, so hot loads/stores/fetches skip the page hashtable (and
   its [Some] allocation) and the permission re-check.

   Pages can be aliased between memories ([share_range]), so a permission
   change through one memory must invalidate every memory's TLB. A global
   permission epoch makes that cheap: [map]/[set_perm]/[share_range] advance
   it, each TLB records the epoch it was filled under, and a lookup whose
   epoch lags flushes lazily before probing the page table again. The
   deterministic-fault contract survives by construction: a TLB hit implies
   a successful permission check under the current epoch. *)

(* 1024 entries per kind keeps the working set of the SPEC-profile
   workloads (hundreds of pages of heap + stack + text) resident; every
   miss pays a hashtable probe and a [Some] allocation. *)
let tlb_bits = 10
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

(* Advanced by any mapping/permission change in the process. [Atomic.get]
   compiles to a plain load; cross-domain races at worst coalesce two bumps
   into one, which still differs from every previously recorded epoch. *)
let perm_epoch = Atomic.make 0

type t = {
  pages : (int, page) Hashtbl.t;
  tlb_r_tag : int array;
  tlb_r_data : bytes array;
  tlb_w_tag : int array;
  tlb_w_data : bytes array;
  tlb_x_tag : int array;
  tlb_x_data : bytes array;
  mutable tlb_epoch : int;  (** [perm_epoch] value the TLB was filled under *)
  mutable tlb_hits : int;
  mutable tlb_misses : int;
}

let no_bytes = Bytes.create 0

let create () =
  { pages = Hashtbl.create 64;
    tlb_r_tag = Array.make tlb_size (-1);
    tlb_r_data = Array.make tlb_size no_bytes;
    tlb_w_tag = Array.make tlb_size (-1);
    tlb_w_data = Array.make tlb_size no_bytes;
    tlb_x_tag = Array.make tlb_size (-1);
    tlb_x_data = Array.make tlb_size no_bytes;
    tlb_epoch = Atomic.get perm_epoch;
    tlb_hits = 0;
    tlb_misses = 0 }

let page_index addr = addr lsr page_bits
let page_offset addr = addr land (page_size - 1)

let flush_tlb t =
  Array.fill t.tlb_r_tag 0 tlb_size (-1);
  Array.fill t.tlb_w_tag 0 tlb_size (-1);
  Array.fill t.tlb_x_tag 0 tlb_size (-1);
  (* tags gate the data slots; clear them anyway so stale pages can be
     collected *)
  Array.fill t.tlb_r_data 0 tlb_size no_bytes;
  Array.fill t.tlb_w_data 0 tlb_size no_bytes;
  Array.fill t.tlb_x_data 0 tlb_size no_bytes;
  t.tlb_epoch <- Atomic.get perm_epoch

(* TLB metrics are fed in [flush_tlb_stats], from the same per-memory
   mutables folded into the observed atomics — the per-access path stays
   metric-free. Only the epoch bump records at its (cold) source. *)
let m_tlb_hits = Metrics.counter ~help:"TLB hits" "chimera_tlb_hits_total"
let m_tlb_misses = Metrics.counter ~help:"TLB misses" "chimera_tlb_misses_total"

let m_perm_epochs =
  Metrics.counter ~help:"Permission-epoch bumps (TLB shootdowns)"
    "chimera_perm_epoch_bumps_total"

let bump_perm_epoch ~addr ~len =
  Atomic.incr perm_epoch;
  if !Metrics.enabled then Metrics.incr m_perm_epochs;
  if !Obs.enabled then Obs.emit (Obs.Tlb_flush { addr; len })

let map t ~addr ~len perm =
  if len <= 0 then invalid_arg "Memory.map: non-positive length";
  bump_perm_epoch ~addr ~len;
  for idx = page_index addr to page_index (addr + len - 1) do
    if Hashtbl.mem t.pages idx then
      invalid_arg
        (Printf.sprintf "Memory.map: page 0x%x already mapped" (idx lsl page_bits));
    Hashtbl.replace t.pages idx { data = Bytes.make page_size '\000'; perm }
  done

let set_perm t ~addr ~len perm =
  (* epoch first: a partial failure may still have downgraded some pages *)
  bump_perm_epoch ~addr ~len;
  for idx = page_index addr to page_index (addr + len - 1) do
    match Hashtbl.find_opt t.pages idx with
    | Some p -> p.perm <- perm
    | None ->
        invalid_arg
          (Printf.sprintf "Memory.set_perm: page 0x%x unmapped" (idx lsl page_bits))
  done

let perm_at t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | Some p -> Some p.perm
  | None -> None

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let share_range ~from ~into ~addr ~len =
  bump_perm_epoch ~addr ~len;
  for idx = page_index addr to page_index (addr + len - 1) do
    match Hashtbl.find_opt from.pages idx with
    | None ->
        invalid_arg
          (Printf.sprintf "Memory.share_range: source page 0x%x unmapped"
             (idx lsl page_bits))
    | Some p ->
        if Hashtbl.mem into.pages idx then
          invalid_arg
            (Printf.sprintf "Memory.share_range: destination page 0x%x mapped"
               (idx lsl page_bits));
        Hashtbl.replace into.pages idx p
  done

let violate addr access = raise (Violation { addr; access })

(* TLB miss: lazily flush on an epoch change, then probe the page table and
   re-run the permission check; only a successful access is cached. *)
let tlb_fill t tag data slot pg addr access =
  if t.tlb_epoch <> Atomic.get perm_epoch then flush_tlb t;
  t.tlb_misses <- t.tlb_misses + 1;
  match Hashtbl.find_opt t.pages pg with
  | None -> violate addr access
  | Some p ->
      let ok =
        match access with
        | Fault.Read -> p.perm.r
        | Fault.Write -> p.perm.w
        | Fault.Execute -> p.perm.x
      in
      if not ok then violate addr access;
      Array.unsafe_set tag slot pg;
      Array.unsafe_set data slot p.data;
      p.data

let tlb_get t tag data addr access =
  let pg = addr lsr page_bits in
  (* XOR-folded index: guest regions sit at power-of-two bases (stack top,
     heap base, text), so a plain [pg land mask] makes hot pages from two
     regions alias the same slot and ping-pong — folding the next index's
     worth of high bits in breaks the power-of-two stride. *)
  let slot = (pg lxor (pg lsr tlb_bits)) land tlb_mask in
  if Array.unsafe_get tag slot = pg && t.tlb_epoch = Atomic.get perm_epoch then begin
    t.tlb_hits <- t.tlb_hits + 1;
    Array.unsafe_get data slot
  end
  else tlb_fill t tag data slot pg addr access

let read_data t addr = tlb_get t t.tlb_r_tag t.tlb_r_data addr Fault.Read
let write_data t addr = tlb_get t t.tlb_w_tag t.tlb_w_data addr Fault.Write
let exec_data t addr = tlb_get t t.tlb_x_tag t.tlb_x_data addr Fault.Execute

let checked_data t addr access =
  match access with
  | Fault.Read -> read_data t addr
  | Fault.Write -> write_data t addr
  | Fault.Execute -> exec_data t addr

let tlb_stats t = (t.tlb_hits, t.tlb_misses)
let tlb_misses_live t = t.tlb_misses

let g_tlb_hits = Atomic.make 0
let g_tlb_misses = Atomic.make 0

let flush_tlb_stats t =
  if !Metrics.enabled then begin
    Metrics.add m_tlb_hits t.tlb_hits;
    Metrics.add m_tlb_misses t.tlb_misses
  end;
  if t.tlb_hits <> 0 then begin
    ignore (Atomic.fetch_and_add g_tlb_hits t.tlb_hits);
    t.tlb_hits <- 0
  end;
  if t.tlb_misses <> 0 then begin
    ignore (Atomic.fetch_and_add g_tlb_misses t.tlb_misses);
    t.tlb_misses <- 0
  end

let observed_tlb () = (Atomic.get g_tlb_hits, Atomic.get g_tlb_misses)

let reset_observed_tlb () =
  Atomic.set g_tlb_hits 0;
  Atomic.set g_tlb_misses 0

let unchecked_page t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None ->
      (* Kernel accessors allocate on demand so loaders can poke anywhere. *)
      let p = { data = Bytes.make page_size '\000'; perm = perm_none } in
      Hashtbl.replace t.pages (page_index addr) p;
      p

  | Some p -> p

(* Fast path: access within one page; slow path crosses a boundary. *)

let load_u8 t addr = Bytes.get_uint8 (read_data t addr) (page_offset addr)

(* Little-endian read of n <= 8 bytes, possibly across pages, in ascending
   address order so a violation is raised at the first inaccessible byte.
   The low seven bytes accumulate in an immediate [int]; only byte 7 needs
   Int64 arithmetic — no per-byte boxing. *)
let load_multi t addr n access =
  let lo = ref 0 in
  let k = if n < 7 then n else 7 in
  for i = 0 to k - 1 do
    let a = addr + i in
    lo := !lo lor (Bytes.get_uint8 (checked_data t a access) (page_offset a) lsl (8 * i))
  done;
  if n <= 7 then Int64.of_int !lo
  else
    let a = addr + 7 in
    let b7 = Bytes.get_uint8 (checked_data t a access) (page_offset a) in
    Int64.logor (Int64.of_int !lo) (Int64.shift_left (Int64.of_int b7) 56)

let load_u16 t addr =
  let off = page_offset addr in
  if off + 2 <= page_size then Bytes.get_uint16_le (read_data t addr) off
  else Int64.to_int (load_multi t addr 2 Fault.Read)

let load_u32 t addr =
  let off = page_offset addr in
  if off + 4 <= page_size then
    Int32.to_int (Bytes.get_int32_le (read_data t addr) off) land 0xFFFFFFFF
  else Int64.to_int (load_multi t addr 4 Fault.Read)

let load_u64 t addr =
  let off = page_offset addr in
  if off + 8 <= page_size then Bytes.get_int64_le (read_data t addr) off
  else load_multi t addr 8 Fault.Read

let store_u8 t addr v =
  Bytes.set_uint8 (write_data t addr) (page_offset addr) (v land 0xFF)

(* Mirror of [load_multi]: ascending address order (earlier bytes are
   written before a later byte faults, as the recursive version did), low
   seven bytes from an immediate [int]. *)
let store_multi t addr n v =
  let lo = Int64.to_int (Int64.logand v 0xFF_FFFF_FFFF_FFFFL) in
  let k = if n < 7 then n else 7 in
  for i = 0 to k - 1 do
    let a = addr + i in
    Bytes.set_uint8 (write_data t a) (page_offset a) ((lo lsr (8 * i)) land 0xFF)
  done;
  if n > 7 then begin
    let a = addr + 7 in
    Bytes.set_uint8 (write_data t a) (page_offset a)
      (Int64.to_int (Int64.shift_right_logical v 56))
  end

let store_u16 t addr v =
  let off = page_offset addr in
  if off + 2 <= page_size then Bytes.set_uint16_le (write_data t addr) off (v land 0xFFFF)
  else store_multi t addr 2 (Int64.of_int v)

let store_u32 t addr v =
  let off = page_offset addr in
  if off + 4 <= page_size then Bytes.set_int32_le (write_data t addr) off (Int32.of_int v)
  else store_multi t addr 4 (Int64.of_int v)

let store_u64 t addr v =
  let off = page_offset addr in
  if off + 8 <= page_size then Bytes.set_int64_le (write_data t addr) off v
  else store_multi t addr 8 v

let fetch_u16 t addr =
  let off = page_offset addr in
  if off + 2 <= page_size then Bytes.get_uint16_le (exec_data t addr) off
  else Int64.to_int (load_multi t addr 2 Fault.Execute)

let peek_u8 t addr = Bytes.get_uint8 (unchecked_page t addr).data (page_offset addr)

let peek_u16 t addr = peek_u8 t addr lor (peek_u8 t (addr + 1) lsl 8)

let peek_u32 t addr = peek_u16 t addr lor (peek_u16 t (addr + 2) lsl 16)

let peek_u64 t addr =
  Int64.logor
    (Int64.of_int (peek_u32 t addr))
    (Int64.shift_left (Int64.of_int (peek_u32 t (addr + 4))) 32)

let poke_u8 t addr v =
  Bytes.set_uint8 (unchecked_page t addr).data (page_offset addr) (v land 0xFF)

let poke_u16 t addr v =
  poke_u8 t addr v;
  poke_u8 t (addr + 1) (v lsr 8)

let poke_u32 t addr v =
  poke_u16 t addr v;
  poke_u16 t (addr + 2) (v lsr 16)

let poke_u64 t addr v =
  poke_u32 t addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  poke_u32 t (addr + 4) (Int64.to_int (Int64.shift_right_logical v 32))

let poke_bytes t addr b =
  Bytes.iteri (fun i c -> poke_u8 t (addr + i) (Char.code c)) b

(* Page-wise blit rather than a byte loop: the per-byte path pays one page
   lookup per byte, which whole-image consumers (content digests, snapshot
   dumps) cannot afford. *)
let peek_bytes t addr len =
  let out = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = page_offset a in
    let n = min (len - !i) (page_size - off) in
    Bytes.blit (unchecked_page t a).data off out !i n;
    i := !i + n
  done;
  out

let mapped_ranges t =
  let idxs = Hashtbl.fold (fun idx _ acc -> idx :: acc) t.pages [] in
  let idxs = List.sort_uniq compare idxs in
  let rec runs = function
    | [] -> []
    | idx :: rest ->
        let rec extend last = function
          | next :: rest' when next = last + 1 -> extend next rest'
          | rest' -> (last, rest')
        in
        let last, rest' = extend idx rest in
        (idx lsl page_bits, (last - idx + 1) * page_size) :: runs rest'
  in
  runs idxs
