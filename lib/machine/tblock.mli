(** Translation blocks: straight-line instruction runs pre-decoded and
    compiled into closure arrays, with cheap page-granular invalidation.

    A block is a maximal run of non-control-flow instructions starting at an
    entry pc, ending at the first branch/jump/event instruction (kept,
    decoded, as the block's terminator), at a page boundary, or at an
    instruction the machine cannot put on the fast path. Blocks are
    validated against a {!Gen} generation table: patching code bumps the
    generations of the covered pages, and any block (or cached decode)
    overlapping a bumped page fails its stamp check and is re-translated —
    invalidation costs O(pages patched), never a cache scan.

    The module is parameterized over the machine state ['m]; the machine
    supplies decoding and per-instruction compilation, this module owns
    block layout, termination policy, and invalidation bookkeeping. *)

module Gen : sig
  type t
  (** Page-granular generation counters (monotonic). *)

  val create : unit -> t

  val bump : t -> addr:int -> len:int -> unit
  (** Increment the generation of every page overlapping [addr, addr+len). *)

  val stamp : t -> lo:int -> hi:int -> int
  (** Sum of the generations of the pages covering [lo, hi] (inclusive).
      Generations only grow, so equal stamps over the same range mean no
      covered page changed. *)
end

type 'm compiled =
  | Op of ('m -> unit)
      (** Straight-line: executes the instruction, advances pc, retires. *)
  | Term  (** Control-flow or event instruction: ends the block, kept decoded. *)
  | Stop  (** Not executable on the fast path (e.g. unsupported extension). *)

type 'm t = private {
  entry : int;
  lo : int;
  hi : int;
  isa : Ext.t;
  stamp : int;
  ops : ('m -> unit) array;
  pcs : int array;
  sizes : int array;
  term : (Inst.t * int) option;
  fall : int;  (** pc following the last decoded instruction *)
  classes : Bytes.t;
      (** {!Profile.class_code} of each body instruction, computed once at
          translation — the static instruction mix the profiler multiplies
          by dynamic dispatch counts *)
  term_class : int;  (** class code of the terminator, -1 if none *)
  mutable echeck : int;
      (** code epoch at the last successful validation ({!revalidate}) *)
  mutable link_fall : 'm t option;
      (** direct-chained successor at [fall] (set via {!set_link_fall}) *)
  mutable link_taken : 'm t option;
      (** direct-chained successor for any other target ({!set_link_taken}) *)
  mutable prow : Profile.row option;
      (** cached profiler row for [entry] (set via {!set_prow}); valid only
          while [Profile.row_live] holds for the machine's profile *)
}

val translate :
  ?max_insts:int ->
  gens:Gen.t ->
  epoch:int ->
  isa:Ext.t ->
  decode:(int -> (Inst.t * int) option) ->
  compile:(pc:int -> Inst.t -> int -> 'm compiled) ->
  int ->
  'm t
(** [translate ~gens ~epoch ~isa ~decode ~compile entry] decodes the
    straight-line run at [entry]. [decode pc] returns [None] when the bytes
    at [pc] cannot be decoded or fetched (the block ends there; the slow
    path will raise the precise fault when execution reaches it). [epoch] is
    the machine's current code epoch, recorded as the block's initial
    [echeck]. *)

val revalidate : Gen.t -> isa:Ext.t -> epoch:int -> 'm t -> bool
(** Validity check with an epoch fast path: a block whose [echeck] equals
    the current code epoch is valid with a single compare; otherwise the
    full capability + generation-stamp check runs and, on success, [echeck]
    is refreshed. A [false] block must be re-translated — and must {e not}
    have its [echeck] refreshed by other means, since chain links rely on a
    stale [echeck] never matching again (epochs only grow). *)

val epoch_current : 'm t -> int -> bool
(** [epoch_current b epoch] is [b.echeck = epoch]: the chain-follow guard —
    no stamp re-summation, no hashtable. *)

val set_link_fall : 'm t -> 'm t -> unit
val set_link_taken : 'm t -> 'm t -> unit
(** Record a direct-chained successor. Links are hints, not invariants:
    every follow is guarded by entry-pc equality and {!epoch_current}, and a
    failed guard falls back to the block table and overwrites the link. *)

val set_prow : 'm t -> Profile.row option -> unit
(** Cache the profiler row for this block (the record is private; this is
    the one sanctioned mutation of [prow]). *)

val body_length : 'm t -> int

val degenerate : 'm t -> bool
(** No body and no terminator: the entry instruction must be executed via
    the slow path (illegal, unsupported, or unmapped). *)
