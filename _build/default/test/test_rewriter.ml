(* End-to-end tests for chimera_rewriter + chimera_runtime: the SMILE
   congruence solver, downgrade/upgrade/empty rewriting, deterministic-fault
   recovery, and lazy rewriting. *)

let base_isa = Ext.rv64gc
let ext_isa = Ext.rv64gcv

(* --- Smile unit tests ---------------------------------------------------- *)

let test_smile_solver () =
  let pc = 0x10040 in
  (* uncompressed: the next admissible target at or after min *)
  let t1 = Smile.next_target ~pc ~min:0x1000_0000 ~compressed:false in
  Alcotest.(check bool) "t1 >= min" true (t1 >= 0x1000_0000);
  (match Smile.solve_imm20 ~pc ~target:t1 with
  | Some imm -> Alcotest.(check int) "roundtrip" t1 (Smile.target_of ~pc ~imm20:imm)
  | None -> Alcotest.fail "solver rejected its own target");
  (* compressed: imm20 must carry the reserved bits *)
  let t2 = Smile.next_target ~pc ~min:0x1000_0000 ~compressed:true in
  (match Smile.solve_imm20 ~pc ~target:t2 with
  | Some imm ->
      Alcotest.(check bool) "compressed-safe" true (Smile.imm20_compressed_safe imm)
  | None -> Alcotest.fail "no imm for compressed target");
  Alcotest.(check bool) "t2 >= min" true (t2 >= 0x1000_0000)

let test_smile_write_bytes () =
  let pc = 0x10000 in
  let target = Smile.next_target ~pc ~min:0x1200_0000 ~compressed:true in
  let buf = Bytes.make 8 '\xFF' in
  Smile.write buf ~off:0 ~pc ~target ~compressed:true;
  (* first word decodes as auipc gp, second as the fixed jalr *)
  (match Decode.decode_word (Bytes.get_uint16_le buf 0 lor (Bytes.get_uint16_le buf 2 lsl 16)) with
  | Decode.Ok (Inst.Auipc (rd, _), 4) ->
      Alcotest.(check string) "auipc rd" "gp" (Reg.name rd)
  | _ -> Alcotest.fail "bad auipc");
  (match Decode.decode_word (Bytes.get_uint16_le buf 4 lor (Bytes.get_uint16_le buf 6 lsl 16)) with
  | Decode.Ok (Inst.Jalr (rd, rs1, imm), 4) ->
      Alcotest.(check string) "jalr rd" "gp" (Reg.name rd);
      Alcotest.(check string) "jalr rs1" "gp" (Reg.name rs1);
      Alcotest.(check int) "jalr imm" Smile.jalr_imm imm
  | _ -> Alcotest.fail "bad jalr");
  (* the two middle halfwords are illegal (P2/P3) *)
  List.iter
    (fun off ->
      let hi = if off + 4 <= Bytes.length buf then Bytes.get_uint16_le buf (off + 2) else 0 in
      match Decode.decode ~lo:(Bytes.get_uint16_le buf off) ~hi with
      | Decode.Illegal _ -> ()
      | Decode.Ok (i, _) -> Alcotest.failf "halfword at %d decodes: %s" off (Inst.to_string i))
    [ 2; 6 ]

(* --- program builders ---------------------------------------------------- *)

let n_elems = 10

(* Strip-mined vector add over two arrays, then a scalar checksum. *)
let vector_add_program ?(with_jump_table_victim = false) () =
  let a = Asm.create ~name:"vecadd" () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "src1";
  Asm.la a Reg.a1 "src2";
  Asm.la a Reg.a2 "dst";
  Asm.li a Reg.a3 n_elems;
  Asm.label a "vloop";
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "vdone";
  Asm.inst a (Inst.Vle (Inst.E64, Reg.v_of_int 1, Reg.a0));
  Asm.label a "vloop_vle2";
  Asm.inst a (Inst.Vle (Inst.E64, Reg.v_of_int 2, Reg.a1));
  Asm.inst a (Inst.Vop_vv (Inst.Vadd, Reg.v_of_int 3, Reg.v_of_int 1, Reg.v_of_int 2));
  Asm.inst a (Inst.Vse (Inst.E64, Reg.v_of_int 3, Reg.a2));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t1, Reg.t0, 3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a1, Reg.a1, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Sub, Reg.a3, Reg.a3, Reg.t0));
  Asm.j a "vloop";
  Asm.label a "vdone";
  (if with_jump_table_victim then begin
     (* An indirect jump whose table entry points at the *second* vector
        load — after rewriting that address is an overwritten neighbor
        (the SMILE jalr, P1), so control arrives via the
        deterministic-fault path. Taken exactly once (a4 flags it). *)
     Asm.la a Reg.t2 "jt";
     Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t2; imm = 0 });
     Asm.branch_to a Inst.Bne Reg.a4 Reg.x0 "checksum";
     Asm.li a Reg.a4 1;
     Asm.inst a (Inst.Jalr (Reg.x0, Reg.t3, 0))
   end);
  Asm.label a "checksum";
  Asm.la a Reg.a0 "dst";
  Asm.li a Reg.a1 n_elems;
  Asm.li a Reg.a2 0;
  Asm.label a "sloop";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "sloop";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  (* data *)
  Asm.dlabel a "src1";
  for i = 1 to n_elems do
    Asm.dword64 a (Int64.of_int i)
  done;
  Asm.dlabel a "src2";
  for i = 1 to n_elems do
    Asm.dword64 a (Int64.of_int (10 * i))
  done;
  Asm.dlabel a "dst";
  Asm.dspace a (8 * n_elems);
  if with_jump_table_victim then begin
    Asm.rlabel a "jt";
    (* address of the second vle: vloop + 8 *)
    Asm.rword_label a "vloop_vle2"
  end;
  a

(* expected checksum: sum (11i) for i=1..10 = 11*55 = 605; & 255 = 93 *)
let expected_exit = 11 * (n_elems * (n_elems + 1) / 2) land 255

let run_bin ~isa bin ~fuel =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa () in
  Loader.init_machine m bin;
  Machine.run ~fuel m

let test_vector_program_native () =
  let bin = Asm.assemble (vector_add_program ()) in
  match run_bin ~isa:ext_isa bin ~fuel:100_000 with
  | Machine.Exited c -> Alcotest.(check int) "native exit" expected_exit c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_vector_program_faults_on_base_core () =
  let bin = Asm.assemble (vector_add_program ()) in
  match run_bin ~isa:base_isa bin ~fuel:100_000 with
  | Machine.Faulted (Fault.Illegal_instruction _) -> ()
  | _ -> Alcotest.fail "expected SIGILL on base core"

let test_downgrade_end_to_end () =
  let bin = Asm.assemble (vector_add_program ()) in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:1_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "downgraded exit" expected_exit c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  (* no vector instructions were executed *)
  Alcotest.(check int) "no vector retired" 0 (Machine.vector_retired m);
  let st = Chbp.stats ctx in
  Alcotest.(check bool) "sites placed" true (st.Chbp.sites > 0);
  Alcotest.(check bool) "rewritten isa has no V" false
    (Ext.mem Ext.V (Chimera_rt.rewritten rt).Binfile.isa)

let test_downgrade_no_batching () =
  let bin = Asm.assemble (vector_add_program ()) in
  let ctx =
    Chbp.rewrite ~options:{ (Chbp.default_options Chbp.Downgrade) with batch = false } bin
  in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  match Chimera_rt.run rt ~fuel:2_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "unbatched exit" expected_exit c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_downgrade_dynamic_sew () =
  let bin = Asm.assemble (vector_add_program ()) in
  let ctx =
    Chbp.rewrite
      ~options:{ (Chbp.default_options Chbp.Downgrade) with static_sew = false }
      bin
  in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  match Chimera_rt.run rt ~fuel:2_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "dynamic-sew exit" expected_exit c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_empty_patching () =
  (* empty patching: rewrite RVV sites into identical copies; the binary
     still needs the extension core but goes through trampolines. *)
  let bin = Asm.assemble (vector_add_program ()) in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Empty) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:ext_isa () in
  match Chimera_rt.run rt ~fuel:1_000_000 m with
  | Machine.Exited c ->
      Alcotest.(check int) "empty-patched exit" expected_exit c;
      Alcotest.(check bool) "vector insts executed" true (Machine.vector_retired m > 0)
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_erroneous_jump_recovered () =
  (* A jump-table entry points at an overwritten neighbor (the second vle):
     after rewriting, taking it must raise a deterministic fault that the
     runtime recovers, and the program must still compute the right sum. *)
  let bin = Asm.assemble (vector_add_program ~with_jump_table_victim:true ()) in
  (* sanity: the original binary behaves identically on an extension core *)
  (match run_bin ~isa:ext_isa bin ~fuel:100_000 with
  | Machine.Exited c -> Alcotest.(check int) "native exit" expected_exit c
  | _ -> Alcotest.fail "native run failed");
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:2_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "recovered exit" expected_exit c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  let c = Chimera_rt.counters rt in
  Alcotest.(check bool) "deterministic fault recovered" true
    (c.Counters.faults_recovered > 0)

let test_lazy_rewriting () =
  (* A vector function reachable only through a function pointer: recursive
     descent misses it; the first execution on a base core faults and is
     rewritten at runtime. *)
  let a = Asm.create ~name:"lazy" () in
  Asm.func a "_start";
  (* call hidden function via pointer from rodata *)
  Asm.la a Reg.t0 "fptr";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.t0; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t1, 0));
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a0, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  (* unreachable self-loop: stops recursive descent before the hidden code *)
  Asm.label a "hang";
  Asm.j a "hang";
  Asm.hidden_func a "vecsum";
  (* sum 4 elements of src via vector ops; result in a0 *)
  Asm.la a Reg.a1 "src";
  Asm.li a Reg.a2 4;
  Asm.inst a (Inst.Vsetvli (Reg.x0, Reg.a2, Inst.E64));
  Asm.inst a (Inst.Vle (Inst.E64, Reg.v_of_int 1, Reg.a1));
  Asm.inst a (Inst.Vmv_v_x (Reg.v_of_int 0, Reg.x0));
  Asm.inst a (Inst.Vredsum (Reg.v_of_int 2, Reg.v_of_int 1, Reg.v_of_int 0));
  Asm.inst a (Inst.Vmv_x_s (Reg.a0, Reg.v_of_int 2));
  Asm.ret a;
  Asm.rlabel a "fptr";
  Asm.rword_label a "vecsum";
  Asm.dlabel a "src";
  List.iter (fun v -> Asm.dword64 a (Int64.of_int v)) [ 7; 11; 13; 17 ];
  let bin = Asm.assemble a in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let st = Chbp.stats ctx in
  let static_sources = st.Chbp.source_insts in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:1_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "lazy exit" (7 + 11 + 13 + 17) c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check bool) "hidden function was invisible statically" true
    (static_sources = 0);
  Alcotest.(check bool) "lazy rewrites happened" true
    ((Chimera_rt.counters rt).Counters.lazy_rewrites > 0);
  Alcotest.(check bool) "lazy sites recorded" true ((Chbp.stats ctx).Chbp.lazy_sites > 0)

let test_upgrade_end_to_end () =
  (* Scalar canonical loop upgraded to RVV: same results, vector
     instructions executed, fewer cycles. *)
  let n = 64 in
  let build () =
    let a = Asm.create ~name:"scalar-add" () in
    Asm.func a "_start";
    Asm.la a Reg.a0 "src1";
    Asm.la a Reg.a1 "src2";
    Asm.la a Reg.a2 "dst";
    Asm.li a Reg.a3 n;
    Asm.label a "loop";
    Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
    Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a1; imm = 0 });
    Asm.inst a (Inst.Op (Inst.Add, Reg.t2, Reg.t0, Reg.t1));
    Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t2; rs1 = Reg.a2; imm = 0 });
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, 8));
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, 8));
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.a3, Reg.a3, -1));
    Asm.branch_to a Inst.Bne Reg.a3 Reg.x0 "loop";
    (* checksum *)
    Asm.la a Reg.a0 "dst";
    Asm.li a Reg.a1 n;
    Asm.li a Reg.a2 0;
    Asm.label a "sloop";
    Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
    Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
    Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
    Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "sloop";
    Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
    Asm.li a Reg.a7 93;
    Asm.inst a Inst.Ecall;
    Asm.dlabel a "src1";
    for i = 1 to n do Asm.dword64 a (Int64.of_int i) done;
    Asm.dlabel a "src2";
    for i = 1 to n do Asm.dword64 a (Int64.of_int (i * 3)) done;
    Asm.dlabel a "dst";
    Asm.dspace a (8 * n);
    Asm.assemble a
  in
  let bin = build () in
  let expected = 4 * (n * (n + 1) / 2) land 255 in
  (* native scalar run *)
  let scalar_cycles =
    let mem = Loader.load bin in
    let m = Machine.create ~mem ~isa:ext_isa () in
    Loader.init_machine m bin;
    (match Machine.run ~fuel:100_000 m with
    | Machine.Exited c -> Alcotest.(check int) "scalar exit" expected c
    | _ -> Alcotest.fail "scalar run failed");
    Machine.cycles m
  in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Upgrade) bin in
  Alcotest.(check bool) "found a loop to upgrade" true ((Chbp.stats ctx).Chbp.sites > 0);
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:ext_isa () in
  (match Chimera_rt.run rt ~fuel:100_000 m with
  | Machine.Exited c -> Alcotest.(check int) "upgraded exit" expected c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check bool) "vector insts executed" true (Machine.vector_retired m > 0);
  Alcotest.(check bool)
    (Printf.sprintf "upgraded faster (%d < %d)" (Machine.cycles m) scalar_cycles)
    true
    (Machine.cycles m < scalar_cycles)

let test_bitmanip_downgrade () =
  let a = Asm.create ~name:"bitmanip" () in
  Asm.func a "_start";
  Asm.li a Reg.a1 20;
  Asm.li a Reg.a2 2;
  Asm.inst a (Inst.Op (Inst.Sh1add, Reg.a0, Reg.a1, Reg.a2));  (* 42 *)
  Asm.li a Reg.t0 50;
  Asm.inst a (Inst.Op (Inst.Min, Reg.a0, Reg.a0, Reg.t0));  (* 42 *)
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  let bin = Asm.assemble a in
  (* B instructions fault on a hart without B *)
  (match run_bin ~isa:base_isa bin ~fuel:100 with
  | Machine.Faulted (Fault.Illegal_instruction _) -> ()
  | _ -> Alcotest.fail "expected SIGILL for B ext");
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  match Chimera_rt.run rt ~fuel:10_000 m with
  | Machine.Exited 42 -> ()
  | Machine.Exited c -> Alcotest.failf "exit %d" c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

(* --- general-register SMILE (paper Fig. 5) ------------------------------ *)

(* A non-compressed program whose vector strip is preceded by the
   [lui rd, hi; lw rd2, lo(rd)] static-data idiom, with a jump-table entry
   aimed at the load (P1 after rewriting). *)
let greg_program () =
  let a = Asm.create ~name:"greg" () in
  let v1 = Reg.v_of_int 1 and v2 = Reg.v_of_int 2 in
  let data_hi = Encode.hi20 Layout.data_base in
  Asm.func a "_start";
  Asm.li a Reg.a3 4;
  (* the idiom: a0 <- data page; a1 <- first element *)
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.label a "p1";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.a1; rs1 = Reg.a0; imm = 0 });
  (* vector work over the data page *)
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.a0));
  Asm.inst a (Inst.Vop_vx (Inst.Vmul, v2, v1, Reg.a1));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.a0, 64));
  Asm.inst a (Inst.Vse (Inst.E64, v2, Reg.t1));
  (* take the erroneous entry once *)
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t2; rs1 = Reg.gp; imm = 0x100 });
  Asm.branch_to a Inst.Bne Reg.t2 Reg.x0 "fin";
  Asm.li a Reg.t2 1;
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t2; rs1 = Reg.gp; imm = 0x100 });
  Asm.la a Reg.t3 "jt";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t4; rs1 = Reg.t3; imm = 0 });
  (* re-establish the idiom's precondition, then jump to the load *)
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t4, 0));
  Asm.label a "fin";
  (* checksum: sum the stored products *)
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 64));
  Asm.li a Reg.a1 4;
  Asm.li a Reg.a2 0;
  Asm.label a "cks";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "cks";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.rlabel a "jt";
  Asm.rword_label a "p1";
  Asm.dlabel a "vals";
  List.iter (fun x -> Asm.dword64 a (Int64.of_int x)) [ 3; 4; 5; 6 ];
  Asm.assemble a

let test_general_register_smile () =
  let bin = greg_program () in
  Alcotest.(check bool) "binary is uncompressed" false (Ext.mem Ext.C bin.Binfile.isa);
  let expected =
    match run_bin ~isa:ext_isa bin ~fuel:100_000 with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native run failed"
  in
  let ctx =
    Chbp.rewrite
      ~options:{ (Chbp.default_options Chbp.Downgrade) with use_gp = false }
      bin
  in
  let st = Chbp.stats ctx in
  Alcotest.(check bool) "greg trampolines placed" true
    (List.length (Chbp.greg_sites ctx) > 0);
  Alcotest.(check bool) "some sites" true (st.Chbp.sites > 0);
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:2_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "greg-downgraded exit" expected c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check bool) "partial execution recovered" true
    ((Chimera_rt.counters rt).Counters.faults_recovered > 0)

(* A hidden indirect entry aimed directly at a mid-block vector source:
   the only deterministic cover is the resident trap written over it. *)
let greg_midblock_entry_program () =
  let a = Asm.create ~name:"greg-midblock" () in
  let v1 = Reg.v_of_int 1 and v2 = Reg.v_of_int 2 in
  let data_hi = Encode.hi20 Layout.data_base in
  Asm.func a "_start";
  Asm.li a Reg.a3 4;
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.a1; rs1 = Reg.a0; imm = 0 });
  Asm.label a "ventry";
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.a0));
  Asm.inst a (Inst.Vop_vx (Inst.Vmul, v2, v1, Reg.a1));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.a0, 64));
  Asm.inst a (Inst.Vse (Inst.E64, v2, Reg.t1));
  (* take the hidden entry once *)
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t2; rs1 = Reg.gp; imm = 0x100 });
  Asm.branch_to a Inst.Bne Reg.t2 Reg.x0 "fin";
  Asm.li a Reg.t2 1;
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t2; rs1 = Reg.gp; imm = 0x100 });
  Asm.la a Reg.t3 "jt";
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t4; rs1 = Reg.t3; imm = 0 });
  Asm.li a Reg.a3 4;
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t4, 0));
  Asm.label a "fin";
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 64));
  Asm.li a Reg.a1 4;
  Asm.li a Reg.a2 0;
  Asm.label a "cks";
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "cks";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.rlabel a "jt";
  Asm.rword_label a "ventry";
  Asm.dlabel a "vals";
  List.iter (fun x -> Asm.dword64 a (Int64.of_int x)) [ 3; 4; 5; 6 ];
  Asm.assemble a

let test_greg_midblock_entry_uses_resident_trap () =
  let bin = greg_midblock_entry_program () in
  let expected =
    match run_bin ~isa:ext_isa bin ~fuel:100_000 with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native run failed"
  in
  let ctx =
    Chbp.rewrite
      ~options:{ (Chbp.default_options Chbp.Downgrade) with use_gp = false }
      bin
  in
  let st = Chbp.stats ctx in
  Alcotest.(check bool) "resident traps placed over in-place sources" true
    (st.Chbp.odd_entry_traps > 0);
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:2_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "exit preserved" expected c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check bool) "hidden entry went through the trap table" true
    ((Chimera_rt.counters rt).Counters.traps >= 1)

(* A function invisible to recursive descent (reached only through a data
   pointer), whose vector strip follows the idiom pair at a distance: lazy
   extension must find the pair by scanning backwards from the fault site
   and install a trampoline, so later calls bypass fault recovery. *)
let greg_hidden_fn_program () =
  let a = Asm.create ~name:"greg-lazy" () in
  let v1 = Reg.v_of_int 1 and v2 = Reg.v_of_int 2 in
  let data_hi = Encode.hi20 Layout.data_base in
  Asm.func a "_start";
  Asm.li a Reg.s1 3;
  Asm.label a "loop";
  Asm.la a Reg.t3 "jtf";
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t4; rs1 = Reg.t3; imm = 0 });
  Asm.li a Reg.a3 4;
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t4, 0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.s1, Reg.s1, -1));
  Asm.branch_to a Inst.Bne Reg.s1 Reg.x0 "loop";
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 64));
  Asm.li a Reg.a1 4;
  Asm.li a Reg.a2 0;
  Asm.label a "cks";
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "cks";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  (* terminate the fall-through so descent cannot walk into the kernel *)
  Asm.ret a;
  Asm.hidden_func a "hidden_kernel";
  Asm.inst a (Inst.Lui (Reg.a0, data_hi));
  Asm.inst a
    (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.a1; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.a0, 64));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t2, Reg.x0, 0));
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.a0));
  Asm.inst a (Inst.Vop_vx (Inst.Vmul, v2, v1, Reg.a1));
  Asm.inst a (Inst.Vse (Inst.E64, v2, Reg.t1));
  Asm.ret a;
  Asm.rlabel a "jtf";
  Asm.rword_label a "hidden_kernel";
  Asm.dlabel a "vals";
  List.iter (fun x -> Asm.dword64 a (Int64.of_int x)) [ 3; 4; 5; 6 ];
  Asm.assemble a

let test_greg_lazy_backward_pair () =
  let bin = greg_hidden_fn_program () in
  let expected =
    match run_bin ~isa:ext_isa bin ~fuel:100_000 with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native run failed"
  in
  let ctx =
    Chbp.rewrite
      ~options:{ (Chbp.default_options Chbp.Downgrade) with use_gp = false }
      bin
  in
  Alcotest.(check int) "nothing visible statically" 0
    (List.length (Chbp.greg_sites ctx));
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:2_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "exit preserved" expected c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  let c = Chimera_rt.counters rt in
  Alcotest.(check int) "one lazy extension" 1 c.Counters.lazy_rewrites;
  Alcotest.(check bool) "backward scan found the pair" true
    (List.length (Chbp.greg_sites ctx) > 0);
  (* three calls, but only the first pays: the resume after extension hits
     the resident trap once; later calls enter through the trampoline *)
  Alcotest.(check int) "later calls bypass the trap table" 1 c.Counters.traps

let test_greg_mode_on_compressed_falls_back_to_traps () =
  (* compressed binaries cannot use the fixed-immediate trick with an
     arbitrary register: every entry must be trap-based *)
  let a = vector_add_program () in
  Asm.inst a Inst.C_nop;  (* force the C extension *)
  let bin = Asm.assemble a in
  Alcotest.(check bool) "compressed" true (Ext.mem Ext.C bin.Binfile.isa);
  let ctx =
    Chbp.rewrite
      ~options:{ (Chbp.default_options Chbp.Downgrade) with use_gp = false }
      bin
  in
  let st = Chbp.stats ctx in
  Alcotest.(check int) "no SMILE sites" 0 st.Chbp.sites;
  Alcotest.(check bool) "all trap entries" true (st.Chbp.trap_entries > 0);
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  match Chimera_rt.run rt ~fuel:5_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "still correct" expected_exit c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

(* --- packed-SIMD (draft-P) downgrade ------------------------------------ *)

let p_dsp_program () =
  let a = Asm.create ~name:"dsp" () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "xs";
  Asm.la a Reg.a1 "ws";
  Asm.li a Reg.a2 4;
  Asm.li a Reg.a3 0;
  Asm.label a "dot";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t2; rs1 = Reg.a1; imm = 0 });
  Asm.inst a (Inst.P_smaqa (Reg.a3, Reg.t1, Reg.t2));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, -1));
  Asm.branch_to a Inst.Bne Reg.a2 Reg.x0 "dot";
  Asm.inst a (Inst.P_add16 (Reg.a4, Reg.a3, Reg.a3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a3, Reg.a4));
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a0, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "xs";
  for i = 0 to 31 do
    Asm.dbyte a ((((i * 11) mod 29) - 14) land 0xFF)
  done;
  Asm.dlabel a "ws";
  for i = 0 to 31 do
    Asm.dbyte a ((((i * 3) mod 13) - 6) land 0xFF)
  done;
  Asm.assemble a

let test_packed_simd_downgrade () =
  let bin = p_dsp_program () in
  Alcotest.(check bool) "binary declares P" true (Ext.mem Ext.P bin.Binfile.isa);
  let expected =
    match run_bin ~isa:Ext.all bin ~fuel:100_000 with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native run failed"
  in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let st = Chbp.stats ctx in
  Alcotest.(check int) "both P instructions are sources" 2 st.Chbp.source_insts;
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  match Chimera_rt.run rt ~fuel:1_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "downgraded exit" expected c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_strided_vector_downgrade () =
  (* a vlse/vsse transpose-style kernel must downgrade correctly *)
  let a = Asm.create ~name:"strided" () in
  let v1 = Reg.v_of_int 1 in
  Asm.func a "_start";
  Asm.li a Reg.a3 4;
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.la a Reg.a0 "mat";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.li a Reg.a1 32;
  (* gather column 1, double it, scatter it back *)
  Asm.inst a (Inst.Vlse (Inst.E64, v1, Reg.a0, Reg.a1));
  Asm.inst a (Inst.Vop_vv (Inst.Vadd, v1, v1, v1));
  Asm.inst a (Inst.Vsse (Inst.E64, v1, Reg.a0, Reg.a1));
  (* checksum the whole matrix *)
  Asm.la a Reg.a0 "mat";
  Asm.li a Reg.a1 16;
  Asm.li a Reg.a2 0;
  Asm.label a "cks";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "cks";
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a2, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "mat";
  for i = 0 to 15 do
    Asm.dword64 a (Int64.of_int (i + 1))
  done;
  let bin = Asm.assemble a in
  let expected =
    match run_bin ~isa:ext_isa bin ~fuel:100_000 with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native run failed"
  in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  match Chimera_rt.run rt ~fuel:1_000_000 m with
  | Machine.Exited c ->
      Alcotest.(check int) "strided downgrade exit" expected c;
      Alcotest.(check int) "no vector retired" 0 (Machine.vector_retired m)
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel"

let test_cost_model_plumbs_through () =
  (* the evaluation rests on configurable penalties: a zero-penalty runtime
     must retire the same instructions but report fewer cycles than one with
     expensive traps, on a trap-style (strawman) rewrite *)
  let bin = Asm.assemble (vector_add_program ()) in
  let ctx =
    Chbp.rewrite ~options:{ (Chbp.default_options Chbp.Downgrade) with style = `Trap } bin
  in
  let run costs =
    let rt = Chimera_rt.create ~costs ctx in
    let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
    match Chimera_rt.run rt ~fuel:2_000_000 m with
    | Machine.Exited c ->
        Alcotest.(check int) "exit" expected_exit c;
        (Machine.retired m, Machine.cycles m)
    | _ -> Alcotest.fail "run failed"
  in
  let free = { Costs.default with Costs.trap = 0; fault_recovery = 0 } in
  let retired_free, cycles_free = run free in
  let retired_dflt, cycles_dflt = run Costs.default in
  Alcotest.(check int) "same instructions retired" retired_free retired_dflt;
  Alcotest.(check bool) "penalties add cycles" true (cycles_dflt > cycles_free);
  Alcotest.(check int) "zero-penalty cycles = retired" retired_free cycles_free

let test_fault_table_rejects_duplicates () =
  let t = Fault_table.create () in
  Fault_table.add t ~key:0x1000 ~redirect:0x2000;
  Alcotest.(check (option int)) "lookup" (Some 0x2000) (Fault_table.find t 0x1000);
  (match Fault_table.add t ~key:0x1000 ~redirect:0x3000 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate keys must be rejected");
  Alcotest.(check int) "count" 1 (Fault_table.count t)

let test_stats_shape () =
  let bin = Asm.assemble (vector_add_program ()) in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let st = Chbp.stats ctx in
  Alcotest.(check bool) "sources counted" true (st.Chbp.source_insts >= 5);
  Alcotest.(check bool) "table entries exist" true (st.Chbp.table_entries > 0);
  Alcotest.(check int) "exit accounting adds up" st.Chbp.exits
    (st.Chbp.exit_liveness + st.Chbp.exit_shift + st.Chbp.exit_terminator
   + st.Chbp.exit_trap);
  Alcotest.(check bool) "target bytes recorded" true (st.Chbp.target_bytes > 0)

let () =
  Alcotest.run "chimera_rewriter"
    [ ("smile",
       [ Alcotest.test_case "congruence solver" `Quick test_smile_solver;
         Alcotest.test_case "trampoline bytes" `Quick test_smile_write_bytes ]);
      ("native",
       [ Alcotest.test_case "vector program on ext core" `Quick
           test_vector_program_native;
         Alcotest.test_case "vector program faults on base core" `Quick
           test_vector_program_faults_on_base_core ]);
      ("downgrade",
       [ Alcotest.test_case "end to end" `Quick test_downgrade_end_to_end;
         Alcotest.test_case "no batching" `Quick test_downgrade_no_batching;
         Alcotest.test_case "dynamic sew" `Quick test_downgrade_dynamic_sew;
         Alcotest.test_case "bitmanip" `Quick test_bitmanip_downgrade;
         Alcotest.test_case "strided vector" `Quick test_strided_vector_downgrade;
         Alcotest.test_case "stats shape" `Quick test_stats_shape;
         Alcotest.test_case "fault table duplicates" `Quick
           test_fault_table_rejects_duplicates;
         Alcotest.test_case "cost model plumbing" `Quick
           test_cost_model_plumbs_through ]);
      ("modes",
       [ Alcotest.test_case "packed-simd downgrade" `Quick test_packed_simd_downgrade;
         Alcotest.test_case "empty patching" `Quick test_empty_patching;
         Alcotest.test_case "upgrade" `Quick test_upgrade_end_to_end ]);
      ("runtime",
       [ Alcotest.test_case "erroneous jump recovered" `Quick
           test_erroneous_jump_recovered;
         Alcotest.test_case "lazy rewriting" `Quick test_lazy_rewriting ]);
      ("general-register-smile",
       [ Alcotest.test_case "fig5 end to end" `Quick test_general_register_smile;
         Alcotest.test_case "mid-block hidden entry uses resident trap" `Quick
           test_greg_midblock_entry_uses_resident_trap;
         Alcotest.test_case "lazy backward pair discovery" `Quick
           test_greg_lazy_backward_pair;
         Alcotest.test_case "compressed falls back to traps" `Quick
           test_greg_mode_on_compressed_falls_back_to_traps ]) ]
