type saved = { s_regs : int64 array; s_pc : int }

type t = {
  rt : Chimera_rt.t;
  handler_addr : int;
  gp_value : int;
  mutable schedule : int list;
  mutable observed : int64 list;  (* reversed *)
  mutable delivered : int;
  mutable restorations : int;
  mutable stack : saved list;
}

let sigreturn_nr = 139L

let create rt ~handler_sym ~deliver_after =
  let bin = Chimera_rt.rewritten rt in
  let sym = Binfile.symbol bin handler_sym in
  { rt;
    handler_addr = sym.Binfile.sym_addr;
    gp_value = bin.Binfile.gp_value;
    schedule = List.sort compare deliver_after;
    observed = [];
    delivered = 0;
    restorations = 0;
    stack = [] }

let observed_gp t = List.rev t.observed
let signals_delivered t = t.delivered
let gp_restorations t = t.restorations

let save_context m =
  { s_regs = Array.init 32 (fun i -> Machine.get_reg m (Reg.of_int i));
    s_pc = Machine.pc m }

let restore_context m saved =
  Array.iteri (fun i v -> Machine.set_reg m (Reg.of_int i) v) saved.s_regs;
  saved.s_pc

let deliver t m =
  let true_gp = Machine.get_reg m Reg.gp in
  t.stack <- save_context m :: t.stack;
  (* the kernel presents the handler a context with the ABI gp, whatever
     the SMILE trampoline left in the register (paper Fig. 10) *)
  if not (Int64.equal true_gp (Int64.of_int t.gp_value)) then
    t.restorations <- t.restorations + 1;
  if !Obs.enabled then
    Obs.emit
      (Obs.Signal_delivered
         {
           pc = Machine.pc m;
           gp_restored = not (Int64.equal true_gp (Int64.of_int t.gp_value));
         });
  Machine.set_reg m Reg.gp (Int64.of_int t.gp_value);
  t.observed <- Machine.get_reg m Reg.gp :: t.observed;
  t.delivered <- t.delivered + 1;
  Machine.set_pc m t.handler_addr

let handlers t =
  let base = Chimera_rt.handlers t.rt in
  let on_ecall m ~pc =
    if Int64.equal (Machine.get_reg m (Reg.of_int 17)) sigreturn_nr then
      match t.stack with
      | saved :: rest ->
          t.stack <- rest;
          (* sigreturn restores the *true* context, including the gp value
             the trampoline was in the middle of using *)
          Machine.Resume (restore_context m saved)
      | [] ->
          Machine.Stop
            (Machine.Faulted
               (Fault.Illegal_instruction { pc; reason = "sigreturn without signal" }))
    else base.Machine.on_ecall m ~pc
  in
  { base with Machine.on_ecall }

let run t ?isa ~fuel m =
  Machine.switch_view m (Chimera_rt.load t.rt);
  (match isa with Some i -> Machine.set_isa m i | None -> ());
  Loader.init_machine m (Chimera_rt.rewritten t.rt);
  let handlers = handlers t in
  let rec go remaining =
    if remaining <= 0 then Machine.Fuel_exhausted
    else
      let until_signal =
        match t.schedule with
        | next :: _ -> max 1 (next - Machine.retired m)
        | [] -> remaining
      in
      let slice = min remaining until_signal in
      match Machine.run ~handlers ~fuel:slice m with
      | Machine.Fuel_exhausted ->
          (match t.schedule with
          | next :: rest when Machine.retired m >= next ->
              t.schedule <- rest;
              deliver t m
          | _ -> ());
          go (remaining - slice)
      | stop -> stop
  in
  go fuel
