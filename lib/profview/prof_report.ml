let sum f snaps = List.fold_left (fun acc s -> acc + f s) 0 snaps

let pct part whole =
  if whole = 0 then "0.0" else Printf.sprintf "%.1f" (100.0 *. float part /. float whole)

(* Annotate up to body+1 instructions starting at the block entry (body plus
   terminator); stops early where the disassembler has no coverage (code
   discovered only at runtime). *)
let annotate d entry body =
  let rec go addr n acc =
    if n <= 0 then List.rev acc
    else
      match Disasm.find d addr with
      | None -> List.rev acc
      | Some i ->
          go (addr + i.Disasm.size) (n - 1)
            ([ ""; Printf.sprintf "0x%x:" i.Disasm.addr;
               Format.asprintf "%a" Inst.pp i.Disasm.inst ]
            :: acc)
  in
  go entry (body + 1) []

type ic_note = {
  icn_site : int;
  icn_state : string;
  icn_targets : int;
  icn_hits : int;
  icn_misses : int;
}

let render ?(top = 20) ?disasm ?tiers ?ics ?totals oc snaps =
  Report.with_output oc (fun () ->
      let retired = sum (fun s -> s.Profile.s_retired) snaps in
      let hits = sum (fun s -> s.Profile.s_hits) snaps in
      let penalty = sum (fun s -> s.Profile.s_penalty) snaps in
      Report.heading "Profile summary";
      Report.note (Printf.sprintf "blocks            %d" (List.length snaps));
      Report.note (Printf.sprintf "dispatches        %d" hits);
      Report.note (Printf.sprintf "retired           %d" retired);
      Report.note (Printf.sprintf "penalty cycles    %d" penalty);
      Report.note
        (Printf.sprintf "tlb misses        %d" (sum (fun s -> s.Profile.s_tlb) snaps));
      Report.note
        (Printf.sprintf "icache misses     %d"
           (sum (fun s -> s.Profile.s_icache) snaps));
      Report.note
        (Printf.sprintf "faults            %d"
           (sum (fun s -> s.Profile.s_faults) snaps));
      Report.note
        (Printf.sprintf "recovered         %d"
           (sum (fun s -> s.Profile.s_recovered) snaps));
      Report.note
        (Printf.sprintf "traps             %d" (sum (fun s -> s.Profile.s_traps) snaps));
      (match totals with
      | None -> ()
      | Some (t : Obs.Agg.totals) ->
          Report.note (Printf.sprintf "tier promotions   %d" t.Obs.Agg.tier_promotions);
          Report.note (Printf.sprintf "recompiles        %d" t.Obs.Agg.recompiles);
          Report.note
            (Printf.sprintf "ic hits/misses    %d/%d" t.Obs.Agg.ic_hits
               t.Obs.Agg.ic_misses);
          Report.note
            (Printf.sprintf "ic mega sites     %d" t.Obs.Agg.ic_megamorphic));
      let hot =
        List.stable_sort
          (fun a b -> compare b.Profile.s_retired a.Profile.s_retired)
          snaps
      in
      let hot = List.filteri (fun i _ -> i < top) hot in
      let tier_of entry =
        match tiers with
        | None -> []
        | Some l -> (
            match List.assoc_opt entry l with Some s -> [ s ] | None -> [ "-" ])
      in
      Report.table
        ~title:(Printf.sprintf "Hot blocks (top %d by retired)" (List.length hot))
        ~header:
          ([ "entry"; "body"; "hits"; "retired"; "%"; "penalty"; "tlb"; "ic";
             "flt"; "rec"; "trap" ]
          @ (if tiers = None then [] else [ "tier" ]))
        ~rows:
          (List.map
             (fun s ->
               [ Printf.sprintf "0x%x" s.Profile.s_entry;
                 string_of_int s.Profile.s_body;
                 string_of_int s.Profile.s_hits;
                 string_of_int s.Profile.s_retired;
                 pct s.Profile.s_retired retired;
                 string_of_int s.Profile.s_penalty;
                 string_of_int s.Profile.s_tlb;
                 string_of_int s.Profile.s_icache;
                 string_of_int s.Profile.s_faults;
                 string_of_int s.Profile.s_recovered;
                 string_of_int s.Profile.s_traps ]
               @ tier_of s.Profile.s_entry)
             hot);
      (match ics with
      | None | Some [] -> ()
      | Some l ->
          let l =
            List.stable_sort (fun a b -> compare b.icn_hits a.icn_hits) l
          in
          let l = List.filteri (fun i _ -> i < top) l in
          Report.table
            ~title:(Printf.sprintf "Inline caches (top %d by hits)" (List.length l))
            ~header:[ "site"; "state"; "targets"; "hits"; "misses" ]
            ~rows:
              (List.map
                 (fun i ->
                   [ Printf.sprintf "0x%x" i.icn_site;
                     i.icn_state;
                     string_of_int i.icn_targets;
                     string_of_int i.icn_hits;
                     string_of_int i.icn_misses ])
                 l));
      Report.histogram ~title:"Instruction mix (exact, dynamic)"
        ~rows:
          [ ("loads", sum (fun s -> s.Profile.s_loads) snaps);
            ("stores", sum (fun s -> s.Profile.s_stores) snaps);
            ("branches", sum (fun s -> s.Profile.s_branches) snaps);
            ("alu", sum (fun s -> s.Profile.s_alu) snaps);
            ("vector", sum (fun s -> s.Profile.s_vector) snaps);
            ("compressed", sum (fun s -> s.Profile.s_compressed) snaps) ];
      match disasm with
      | None -> ()
      | Some d ->
          Report.heading "Hot-block disassembly";
          List.iteri
            (fun i s ->
              if i < 5 then begin
                Report.note
                  (Printf.sprintf "block 0x%x  (%s%% of retired)"
                     s.Profile.s_entry (pct s.Profile.s_retired retired));
                match annotate d s.Profile.s_entry s.Profile.s_body with
                | [] -> Report.note "  (no static coverage — runtime-discovered code)"
                | rows -> Report.print_aligned rows
              end)
            hot)
