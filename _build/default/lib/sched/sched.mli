(** Discrete-event heterogeneous scheduler (paper §6.1).

    Models the paper's evaluation platform: two pools of harts (base cores
    and extension cores) with per-pool FIFO queues and work stealing — a
    worker whose queue is empty steals from the other pool. Task durations
    come from measured simulator cycles; the simulation tracks accumulated
    CPU time (busy cycles) and end-to-end latency (makespan).

    Fault-and-migrate (FAM) is expressed through the task interface: a task
    may report that running on a base core aborted after a prefix (the
    illegal-instruction fault) and must migrate to the extension pool. *)

type core_class = Base | Extension

val core_class_name : core_class -> string

(** Result of running (or attempting to run) a task on a core. *)
type step =
  | Done of { cycles : int; accelerated : bool }
      (** Completed; [accelerated] means the vector extension did real work. *)
  | Migrate of { cycles : int }
      (** Consumed [cycles], then hit an unsupported instruction: the task
          must continue on an extension core (FAM). *)

type task = {
  t_id : int;
  t_prefer_ext : bool;
      (** Initial queue: tasks with extension instructions start on the
          extension pool (the paper's allocation policy). *)
  t_run : core_class -> step;
}

type config = {
  base_cores : int;
  ext_cores : int;
  steal : bool;  (** work stealing between pools *)
  migrate_cost : int;  (** added on each FAM migration *)
  steal_ext_tasks : bool;
      (** whether base cores may steal extension-preferring tasks (true for
          every system; under FAM they will bounce back) *)
}

val default_config : config

type result = {
  latency : int;  (** end-to-end makespan in cycles *)
  cpu_time : int;  (** accumulated busy cycles over all cores *)
  tasks_total : int;
  tasks_accelerated : int;
  migrations : int;
  per_core_busy : (core_class * int) array;
}

val run : config -> task list -> result

val pp_result : Format.formatter -> result -> unit
