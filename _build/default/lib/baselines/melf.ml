type t = { base : Binfile.t; ext : Binfile.t }

let create ~base ~ext =
  if not (Ext.subset base.Binfile.isa Ext.rv64gc) then
    invalid_arg "Melf.create: base variant uses non-base extensions";
  { base; ext }

let base_variant t = t.base
let ext_variant t = t.ext

let variant_for t caps =
  if Ext.subset t.ext.Binfile.isa caps then t.ext else t.base
