lib/analysis/liveness.mli: Cfg Disasm Reg Regmask
