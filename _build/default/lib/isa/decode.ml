type result = Ok of Inst.t * int | Illegal of string

let bit v i = (v lsr i) land 1
let bits v lo hi = (v lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let sext = Encode.sext
let reg n = Reg.of_int n
let vreg n = Reg.v_of_int n
let rc n = Reg.of_int (n + 8)

let illegal fmt = Printf.ksprintf (fun s -> Illegal s) fmt

(* Quadrant C0: c.lw / c.sw / c.ld / c.sd. *)
let decode_c0 hw =
  let funct3 = bits hw 13 15 in
  let rs1' = rc (bits hw 7 9) in
  let uimm8 = (bits hw 10 12 lsl 3) lor (bits hw 5 6 lsl 6) in
  let uimm4 = (bits hw 10 12 lsl 3) lor (bit hw 6 lsl 2) lor (bit hw 5 lsl 6) in
  match funct3 with
  | 0b010 -> Ok (Inst.C_lw (rc (bits hw 2 4), rs1', uimm4), 2)
  | 0b110 -> Ok (Inst.C_sw (rc (bits hw 2 4), rs1', uimm4), 2)
  | 0b011 -> Ok (Inst.C_ld (rc (bits hw 2 4), rs1', uimm8), 2)
  | 0b111 -> Ok (Inst.C_sd (rc (bits hw 2 4), rs1', uimm8), 2)
  | f -> illegal "reserved C0 encoding (funct3=%d)" f

(* Quadrant C1. funct3 100 (misc-alu) is reserved in our subset: the SMILE
   jalr's upper halfword lands here. *)
let decode_c1 hw =
  let funct3 = bits hw 13 15 in
  let rd = bits hw 7 11 in
  let imm6 = sext ((bit hw 12 lsl 5) lor bits hw 2 6) 6 in
  match funct3 with
  | 0b000 ->
      if hw = 0x0001 then Ok (Inst.C_nop, 2)
      else if rd = 0 then illegal "C1 hint encoding"
      else Ok (Inst.C_addi (reg rd, imm6), 2)
  | 0b001 ->
      if rd = 0 then illegal "reserved C1 encoding (c.addiw x0)"
      else Ok (Inst.C_addiw (reg rd, imm6), 2)
  | 0b010 ->
      if rd = 0 then illegal "C1 hint encoding (c.li x0)"
      else Ok (Inst.C_li (reg rd, imm6), 2)
  | 0b011 ->
      if rd = 0 || rd = 2 then illegal "C1 c.lui with x0/sp unsupported"
      else if imm6 = 0 then illegal "reserved c.lui imm=0"
      else Ok (Inst.C_lui (reg rd, imm6), 2)
  | 0b101 ->
      let off =
        sext
          ((bit hw 12 lsl 11) lor (bit hw 11 lsl 4) lor (bits hw 9 10 lsl 8)
          lor (bit hw 8 lsl 10) lor (bit hw 7 lsl 6) lor (bit hw 6 lsl 7)
          lor (bits hw 3 5 lsl 1) lor (bit hw 2 lsl 5))
          12
      in
      Ok (Inst.C_j off, 2)
  | 0b110 | 0b111 ->
      let off =
        sext
          ((bit hw 12 lsl 8) lor (bits hw 10 11 lsl 3) lor (bits hw 5 6 lsl 6)
          lor (bits hw 3 4 lsl 1) lor (bit hw 2 lsl 5))
          9
      in
      let rs1' = rc (bits hw 7 9) in
      if funct3 = 0b110 then Ok (Inst.C_beqz (rs1', off), 2)
      else Ok (Inst.C_bnez (rs1', off), 2)
  | 0b100 -> (
      (* misc-alu: instr[11:10] selects the row. The rows with instr[12]=1
         and instr[6:5] in {10, 11} are reserved by the RVC spec — they are
         exactly what the SMILE jalr's upper halfword is arranged to be. *)
      let rd' = rc (bits hw 7 9) in
      match bits hw 10 11 with
      | 0b10 -> Ok (Inst.C_andi (rd', imm6), 2)
      | 0b00 | 0b01 -> illegal "c.srli/c.srai unsupported in this subset"
      | _ -> (
          let rs2' = rc (bits hw 2 4) in
          match (bit hw 12, bits hw 5 6) with
          | 0, 0b00 -> Ok (Inst.C_alu (Inst.Csub, rd', rs2'), 2)
          | 0, 0b01 -> Ok (Inst.C_alu (Inst.Cxor, rd', rs2'), 2)
          | 0, 0b10 -> Ok (Inst.C_alu (Inst.Cor, rd', rs2'), 2)
          | 0, 0b11 -> Ok (Inst.C_alu (Inst.Cand, rd', rs2'), 2)
          | 1, 0b00 -> Ok (Inst.C_alu (Inst.Csubw, rd', rs2'), 2)
          | 1, 0b01 -> Ok (Inst.C_alu (Inst.Caddw, rd', rs2'), 2)
          | _ -> illegal "reserved C1 misc-alu encoding"))
  | f -> illegal "reserved C1 encoding (funct3=%d)" f

(* Quadrant C2: c.slli, c.jr, c.mv, c.jalr, c.add, c.ebreak. *)
let decode_c2 hw =
  let funct3 = bits hw 13 15 in
  let rd = bits hw 7 11 in
  let rs2 = bits hw 2 6 in
  match funct3 with
  | 0b000 ->
      let sh = (bit hw 12 lsl 5) lor bits hw 2 6 in
      if rd = 0 || sh = 0 then illegal "C2 slli hint encoding"
      else Ok (Inst.C_slli (reg rd, sh), 2)
  | 0b100 -> (
      match (bit hw 12, rd, rs2) with
      | 0, 0, _ -> illegal "reserved C2 encoding (c.jr x0)"
      | 0, _, 0 -> Ok (Inst.C_jr (reg rd), 2)
      | 0, _, _ -> Ok (Inst.C_mv (reg rd, reg rs2), 2)
      | 1, 0, 0 -> Ok (Inst.C_ebreak, 2)
      | 1, _, 0 -> Ok (Inst.C_jalr (reg rd), 2)
      | 1, 0, _ -> illegal "reserved C2 encoding"
      | 1, _, _ -> Ok (Inst.C_add (reg rd, reg rs2), 2)
      | _ -> assert false)
  | f -> illegal "reserved C2 encoding (funct3=%d)" f

let decode_load w =
  let rd = reg (bits w 7 11) and rs1 = reg (bits w 15 19) in
  let imm = sext (bits w 20 31) 12 in
  let mk width unsigned = Ok (Inst.Load { width; unsigned; rd; rs1; imm }, 4) in
  match bits w 12 14 with
  | 0b000 -> mk Inst.B false
  | 0b001 -> mk Inst.H false
  | 0b010 -> mk Inst.W false
  | 0b011 -> mk Inst.D false
  | 0b100 -> mk Inst.B true
  | 0b101 -> mk Inst.H true
  | 0b110 -> mk Inst.W true
  | f -> illegal "reserved load funct3=%d" f

let decode_store w =
  let rs2 = reg (bits w 20 24) and rs1 = reg (bits w 15 19) in
  let imm = sext ((bits w 25 31 lsl 5) lor bits w 7 11) 12 in
  let mk width = Ok (Inst.Store { width; rs2; rs1; imm }, 4) in
  match bits w 12 14 with
  | 0b000 -> mk Inst.B
  | 0b001 -> mk Inst.H
  | 0b010 -> mk Inst.W
  | 0b011 -> mk Inst.D
  | f -> illegal "reserved store funct3=%d" f

let decode_branch w =
  let rs1 = reg (bits w 15 19) and rs2 = reg (bits w 20 24) in
  let off =
    sext
      ((bit w 31 lsl 12) lor (bit w 7 lsl 11) lor (bits w 25 30 lsl 5)
      lor (bits w 8 11 lsl 1))
      13
  in
  let mk c = Ok (Inst.Branch (c, rs1, rs2, off), 4) in
  match bits w 12 14 with
  | 0b000 -> mk Inst.Beq
  | 0b001 -> mk Inst.Bne
  | 0b100 -> mk Inst.Blt
  | 0b101 -> mk Inst.Bge
  | 0b110 -> mk Inst.Bltu
  | 0b111 -> mk Inst.Bgeu
  | f -> illegal "reserved branch funct3=%d" f

let decode_op_imm w =
  let rd = reg (bits w 7 11) and rs1 = reg (bits w 15 19) in
  let imm = sext (bits w 20 31) 12 in
  let mk op imm = Ok (Inst.Opi (op, rd, rs1, imm), 4) in
  match bits w 12 14 with
  | 0b000 -> mk Inst.Addi imm
  | 0b010 -> mk Inst.Slti imm
  | 0b011 -> mk Inst.Sltiu imm
  | 0b100 -> mk Inst.Xori imm
  | 0b110 -> mk Inst.Ori imm
  | 0b111 -> mk Inst.Andi imm
  | 0b001 ->
      if bits w 26 31 = 0 then mk Inst.Slli (bits w 20 25)
      else illegal "reserved shift funct6"
  | 0b101 -> (
      match bits w 26 31 with
      | 0b000000 -> mk Inst.Srli (bits w 20 25)
      | 0b010000 -> mk Inst.Srai (bits w 20 25)
      | f -> illegal "reserved shift funct6=%d" f)
  | _ -> assert false

let decode_op_imm32 w =
  let rd = reg (bits w 7 11) and rs1 = reg (bits w 15 19) in
  let imm = sext (bits w 20 31) 12 in
  let mk op imm = Ok (Inst.Opi (op, rd, rs1, imm), 4) in
  match bits w 12 14 with
  | 0b000 -> mk Inst.Addiw imm
  | 0b001 ->
      if bits w 25 31 = 0 then mk Inst.Slliw (bits w 20 24)
      else illegal "reserved slliw funct7"
  | 0b101 -> (
      match bits w 25 31 with
      | 0b0000000 -> mk Inst.Srliw (bits w 20 24)
      | 0b0100000 -> mk Inst.Sraiw (bits w 20 24)
      | f -> illegal "reserved sraiw funct7=%d" f)
  | f -> illegal "reserved OP-IMM-32 funct3=%d" f

let decode_op w opcode =
  let rd = reg (bits w 7 11)
  and rs1 = reg (bits w 15 19)
  and rs2 = reg (bits w 20 24) in
  let funct3 = bits w 12 14 and funct7 = bits w 25 31 in
  let candidates =
    [ Inst.Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And; Mul; Mulh; Div;
      Divu; Rem; Remu; Addw; Subw; Sllw; Srlw; Sraw; Mulw; Divw; Remw; Sh1add;
      Sh2add; Sh3add; Andn; Orn; Xnor; Min; Max; Minu; Maxu ]
  in
  let matches op =
    let f7, f3, opc = Encode.alu_fields op in
    f7 = funct7 && f3 = funct3 && opc = opcode
  in
  match List.find_opt matches candidates with
  | Some op -> Ok (Inst.Op (op, rd, rs1, rs2), 4)
  | None -> illegal "reserved OP encoding funct7=%d funct3=%d" funct7 funct3

let sew_of_code = function
  | 0 -> Some Inst.E8
  | 1 -> Some Inst.E16
  | 2 -> Some Inst.E32
  | 3 -> Some Inst.E64
  | _ -> None

let sew_of_width_bits = function
  | 0b000 -> Some Inst.E8
  | 0b101 -> Some Inst.E16
  | 0b110 -> Some Inst.E32
  | 0b111 -> Some Inst.E64
  | _ -> None

let decode_vload w =
  if bits w 28 31 <> 0 || bit w 26 <> 0 || bit w 25 <> 1 then
    illegal "unsupported vector load variant"
  else
    match (sew_of_width_bits (bits w 12 14), bit w 27) with
    | None, _ -> illegal "reserved vector load width"
    | Some sew, 0 ->
        if bits w 20 24 <> 0 then illegal "unsupported vector load variant"
        else Ok (Inst.Vle (sew, vreg (bits w 7 11), reg (bits w 15 19)), 4)
    | Some sew, _ ->
        Ok
          ( Inst.Vlse (sew, vreg (bits w 7 11), reg (bits w 15 19), reg (bits w 20 24)),
            4 )

let decode_vstore w =
  if bits w 28 31 <> 0 || bit w 26 <> 0 || bit w 25 <> 1 then
    illegal "unsupported vector store variant"
  else if bit w 27 = 1 then
    match sew_of_width_bits (bits w 12 14) with
    | Some sew ->
        Ok
          ( Inst.Vsse (sew, vreg (bits w 7 11), reg (bits w 15 19), reg (bits w 20 24)),
            4 )
    | None -> illegal "reserved vector store width"
  else if bits w 20 24 <> 0 then illegal "unsupported vector store variant"
  else
    match sew_of_width_bits (bits w 12 14) with
    | Some sew -> Ok (Inst.Vse (sew, vreg (bits w 7 11), reg (bits w 15 19)), 4)
    | None -> illegal "reserved vector store width"

let decode_opv w =
  let funct3 = bits w 12 14 in
  if funct3 = 0b111 then
    (* vsetvli *)
    if bit w 31 <> 0 then illegal "unsupported vsetvl variant"
    else
      let vtypei = bits w 20 30 in
      if vtypei land lnot 0b11000 <> 0 then illegal "unsupported vtype"
      else
        match sew_of_code (bits vtypei 3 4) with
        | Some sew ->
            Ok (Inst.Vsetvli (reg (bits w 7 11), reg (bits w 15 19), sew), 4)
        | None -> illegal "reserved vsew"
  else if bit w 25 <> 1 then illegal "masked vector op unsupported"
  else
    let funct6 = bits w 26 31 in
    let vd = bits w 7 11 and s1 = bits w 15 19 and vs2 = bits w 20 24 in
    match (funct6, funct3) with
    | 0b000000, 0b000 -> Ok (Inst.Vop_vv (Vadd, vreg vd, vreg vs2, vreg s1), 4)
    | 0b000010, 0b000 -> Ok (Inst.Vop_vv (Vsub, vreg vd, vreg vs2, vreg s1), 4)
    | 0b100101, 0b010 -> Ok (Inst.Vop_vv (Vmul, vreg vd, vreg vs2, vreg s1), 4)
    | 0b101101, 0b010 -> Ok (Inst.Vop_vv (Vmacc, vreg vd, vreg vs2, vreg s1), 4)
    | 0b000000, 0b100 -> Ok (Inst.Vop_vx (Vadd, vreg vd, vreg vs2, reg s1), 4)
    | 0b000010, 0b100 -> Ok (Inst.Vop_vx (Vsub, vreg vd, vreg vs2, reg s1), 4)
    | 0b100101, 0b110 -> Ok (Inst.Vop_vx (Vmul, vreg vd, vreg vs2, reg s1), 4)
    | 0b101101, 0b110 -> Ok (Inst.Vop_vx (Vmacc, vreg vd, vreg vs2, reg s1), 4)
    | 0b010111, 0b100 ->
        if vs2 = 0 then Ok (Inst.Vmv_v_x (vreg vd, reg s1), 4)
        else illegal "reserved vmv.v.x vs2"
    | 0b010000, 0b010 ->
        if s1 = 0 then Ok (Inst.Vmv_x_s (reg vd, vreg vs2), 4)
        else illegal "reserved vmv.x.s vs1"
    | 0b000000, 0b010 -> Ok (Inst.Vredsum (vreg vd, vreg vs2, vreg s1), 4)
    | f6, f3 -> illegal "reserved OP-V encoding funct6=%d funct3=%d" f6 f3

let decode_32 w =
  match bits w 0 6 with
  | 0b0110111 -> Ok (Inst.Lui (reg (bits w 7 11), sext (bits w 12 31) 20), 4)
  | 0b0010111 -> Ok (Inst.Auipc (reg (bits w 7 11), sext (bits w 12 31) 20), 4)
  | 0b1101111 ->
      let off =
        sext
          ((bit w 31 lsl 20) lor (bits w 12 19 lsl 12) lor (bit w 20 lsl 11)
          lor (bits w 21 30 lsl 1))
          21
      in
      Ok (Inst.Jal (reg (bits w 7 11), off), 4)
  | 0b1100111 ->
      if bits w 12 14 <> 0 then illegal "reserved jalr funct3"
      else
        Ok
          ( Inst.Jalr (reg (bits w 7 11), reg (bits w 15 19), sext (bits w 20 31) 12),
            4 )
  | 0b1100011 -> decode_branch w
  | 0b0000011 -> decode_load w
  | 0b0100011 -> decode_store w
  | 0b0010011 -> decode_op_imm w
  | 0b0011011 -> decode_op_imm32 w
  | (0b0110011 | 0b0111011) as opcode -> decode_op w opcode
  | 0b1110011 -> (
      match bits w 7 31 with
      | 0 -> Ok (Inst.Ecall, 4)
      | w' when w' = 1 lsl 13 -> Ok (Inst.Ebreak, 4)
      | _ -> illegal "reserved SYSTEM encoding")
  | 0b0000111 -> decode_vload w
  | 0b0100111 -> decode_vstore w
  | 0b1010111 -> decode_opv w
  | 0b0001011 ->
      if bits w 12 14 <> 0 then illegal "reserved custom-0 funct3"
      else
        Ok
          ( Inst.Xcheck_jalr
              (reg (bits w 7 11), reg (bits w 15 19), sext (bits w 20 31) 12),
            4 )
  | 0b0101011 ->
      if bits w 25 31 <> 0 then illegal "reserved custom-1 funct7"
      else
        let rd = reg (bits w 7 11)
        and rs1 = reg (bits w 15 19)
        and rs2 = reg (bits w 20 24) in
        (match bits w 12 14 with
        | 0b000 -> Ok (Inst.P_add16 (rd, rs1, rs2), 4)
        | 0b001 -> Ok (Inst.P_smaqa (rd, rs1, rs2), 4)
        | f3 -> illegal "reserved custom-1 funct3 %d" f3)
  | opc -> illegal "reserved major opcode 0x%x" opc

let decode ~lo ~hi =
  let lo = lo land 0xFFFF and hi = hi land 0xFFFF in
  if lo land 0b11 <> 0b11 then
    (* 16-bit instruction. *)
    match lo land 0b11 with
    | 0b00 -> decode_c0 lo
    | 0b01 -> decode_c1 lo
    | 0b10 -> decode_c2 lo
    | _ -> assert false
  else if lo land 0b11111 = 0b11111 then
    (* Reserved prefix of an instruction longer than 32 bits (paper §3.2):
       never a legal instruction start in this machine. *)
    illegal "reserved >=48-bit instruction prefix"
  else decode_32 ((hi lsl 16) lor lo)

let decode_word w = decode ~lo:(w land 0xFFFF) ~hi:((w lsr 16) land 0xFFFF)
