(** Rendering of guest-profiler results: the hot-block table, instruction-mix
    histograms, and optional annotated disassembly.

    The renderer consumes {!Profile.snap} lists, so the same code path
    serves the live CLI ([run --profile FILE]), the bench driver
    ([--profile DIR]) and the offline [chimera profile TRACE] mode (snaps
    rebuilt from [Tb_profile] events). Output is deterministic for a given
    snap list — the offline report of a traced run is byte-identical to the
    live one, and a golden test pins that. *)

val render :
  ?top:int -> ?disasm:Disasm.t -> out_channel -> Profile.snap list -> unit
(** Write the full report: run totals, the [top] (default 20) hottest
    blocks by retired instructions, the exact instruction-class mix
    histogram, and — when [disasm] is available — annotated disassembly of
    the hottest blocks. *)
