(** Deterministic faults raised by the simulated machine.

    The paper's correctness argument (Assertion 1) rests on every erroneous
    execution raising one of these *deterministic* faults instead of running
    unintended instructions. In this reproduction the faults are architectural
    consequences: the machine refuses to fetch from non-executable pages and
    refuses to decode reserved encodings. *)

type access = Read | Write | Execute

type t =
  | Illegal_instruction of { pc : int; reason : string }
      (** Fetch decoded a reserved/unsupported encoding, or the hart lacks
          the extension the instruction needs. *)
  | Segfault of { pc : int; addr : int; access : access }
      (** Permission violation; [pc = addr] and [access = Execute] when
          control flow landed in a non-executable segment — the SMILE
          trampoline's partial-execution case. *)
  | Misaligned_fetch of { pc : int; target : int }
      (** Jump to a target not aligned for the hart's ISA (4-byte without the
          C extension, 2-byte with it). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val cause_name : t -> string
(** The stable cause tag used in trace events (OBSERVABILITY.md):
    ["sigill"], ["sigsegv"] or ["misaligned"]. *)

val pc : t -> int
(** The program counter at which the fault was raised. *)
