(* Property-based tests across the system:

   - SMILE congruence solving (any pc/min -> admissible, compressed-safe)
   - Codebuf label linking (random branch webs decode back to their targets)
   - Memory round-trips at random widths and page-crossing addresses
   - scheduler work conservation
   - liveness soundness: clobbering a register reported dead at a reachable
     program point never changes the program's result
   - differential fuzzing: random synthetic binaries produce identical
     results natively and after CHBP downgrade/strawman/Safer rewriting *)

let base_isa = Ext.rv64gc
let ext_isa = Ext.rv64gcv

(* --- SMILE ---------------------------------------------------------------- *)

let prop_smile_next_target =
  QCheck.Test.make ~name:"smile: next_target admissible and minimal-ish" ~count:500
    QCheck.(
      make
        Gen.(
          let* pc = int_range 0x10000 0x400000 in
          let* min = int_range 0x1000_0000 0x1800_0000 in
          let* compressed = bool in
          return (pc land lnot 1, min, compressed)))
    (fun (pc, min, compressed) ->
      let t = Smile.next_target ~pc ~min ~compressed in
      t >= min
      &&
      match Smile.solve_imm20 ~pc ~target:t with
      | None -> false
      | Some imm -> (not compressed) || Smile.imm20_compressed_safe imm)

let prop_smile_write_decodes =
  QCheck.Test.make ~name:"smile: written trampoline decodes as auipc+jalr" ~count:300
    QCheck.(
      make
        Gen.(
          let* pc = int_range 0x10000 0x100000 in
          let* compressed = bool in
          return (pc land lnot 3, compressed)))
    (fun (pc, compressed) ->
      let target = Smile.next_target ~pc ~min:0x1000_0000 ~compressed in
      let buf = Bytes.make 8 '\000' in
      Smile.write buf ~off:0 ~pc ~target ~compressed;
      let w1 = Bytes.get_uint16_le buf 0 lor (Bytes.get_uint16_le buf 2 lsl 16) in
      let w2 = Bytes.get_uint16_le buf 4 lor (Bytes.get_uint16_le buf 6 lsl 16) in
      match (Decode.decode_word w1, Decode.decode_word w2) with
      | Decode.Ok (Inst.Auipc (rd, imm20), 4), Decode.Ok (Inst.Jalr (rd2, rs1, imm), 4)
        ->
          Reg.equal rd Reg.gp && Reg.equal rd2 Reg.gp && Reg.equal rs1 Reg.gp
          && imm = Smile.jalr_imm
          && pc + (imm20 lsl 12) + imm = target
      | _ -> false)

(* --- Codebuf --------------------------------------------------------------- *)

let prop_codebuf_branch_web =
  (* N labeled slots with random forward/backward jumps between them; after
     linking, every jump decodes to the address of its target label. *)
  QCheck.Test.make ~name:"codebuf: random branch webs link correctly" ~count:200
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rng 8 in
      let cb = Codebuf.create () in
      let targets = Array.init n (fun i -> Printf.sprintf "L%d" i) in
      Array.iter
        (fun l ->
          Codebuf.label cb l;
          (* some padding insts *)
          for _ = 0 to Random.State.int rng 3 do
            Codebuf.inst cb (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, 1))
          done;
          Codebuf.jal_l cb Reg.x0 targets.(Random.State.int rng n))
        targets;
      let base = 0x40000 in
      let bytes = Codebuf.link cb ~base ~resolve:(fun _ -> None) in
      (* decode: every jal must land on a label offset *)
      let label_addrs =
        Array.to_list (Array.map (fun l -> base + Codebuf.label_offset cb l) targets)
      in
      let ok = ref true in
      let off = ref 0 in
      while !off + 4 <= Bytes.length bytes do
        (match
           Decode.decode
             ~lo:(Bytes.get_uint16_le bytes !off)
             ~hi:(Bytes.get_uint16_le bytes (!off + 2))
         with
        | Decode.Ok (Inst.Jal (_, d), _) ->
            if not (List.mem (base + !off + d) label_addrs) then ok := false
        | _ -> ());
        off := !off + 4
      done;
      !ok)

(* --- Memory ---------------------------------------------------------------- *)

let prop_memory_roundtrip =
  QCheck.Test.make ~name:"memory: load (store v) = v at any width/offset" ~count:500
    QCheck.(
      make
        Gen.(
          let* off = int_range 0 8190 in
          let* v = map Int64.of_int (int_range 0 max_int) in
          let* w = int_range 0 3 in
          return (off, v, w)))
    (fun (off, v, w) ->
      let mem = Memory.create () in
      Memory.map mem ~addr:0x1000 ~len:(2 * 4096) Memory.perm_rw;
      let addr = 0x1000 + off in
      match w with
      | 0 ->
          Memory.store_u8 mem addr (Int64.to_int v land 0xFF);
          Memory.load_u8 mem addr = Int64.to_int v land 0xFF
      | 1 ->
          Memory.store_u16 mem addr (Int64.to_int v land 0xFFFF);
          Memory.load_u16 mem addr = Int64.to_int v land 0xFFFF
      | 2 ->
          Memory.store_u32 mem addr (Int64.to_int v land 0xFFFFFFFF);
          Memory.load_u32 mem addr = Int64.to_int v land 0xFFFFFFFF
      | _ ->
          if off > 8184 then true
          else begin
            Memory.store_u64 mem addr v;
            Int64.equal (Memory.load_u64 mem addr) v
          end)

(* --- packed SIMD semantics vs reference model ------------------------------ *)

let ref_add16 a b =
  let lane i =
    let sh = 16 * i in
    let la = Int64.logand (Int64.shift_right_logical a sh) 0xFFFFL in
    let lb = Int64.logand (Int64.shift_right_logical b sh) 0xFFFFL in
    Int64.shift_left (Int64.logand (Int64.add la lb) 0xFFFFL) sh
  in
  List.fold_left (fun acc i -> Int64.logor acc (lane i)) 0L [ 0; 1; 2; 3 ]

let ref_smaqa acc a b =
  let sbyte v i = Int64.shift_right (Int64.shift_left v (56 - (8 * i))) 56 in
  List.fold_left
    (fun s i -> Int64.add s (Int64.mul (sbyte a i) (sbyte b i)))
    acc
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let exec_one inst ~setup =
  let mem = Memory.create () in
  Memory.map mem ~addr:0x10000 ~len:4096 Memory.perm_rx;
  let buf = Bytes.create 4 in
  ignore (Encode.write buf 0 inst);
  Memory.poke_bytes mem 0x10000 buf;
  let m = Machine.create ~mem ~isa:Ext.all () in
  Machine.set_pc m 0x10000;
  setup m;
  match Machine.run ~fuel:1 m with
  | Machine.Fuel_exhausted -> m
  | _ -> QCheck.Test.fail_report "single instruction did not just retire"

let gen_i64 =
  QCheck.Gen.(
    let* hi = int_range 0 0xFFFFFFFF and* lo = int_range 0 0xFFFFFFFF in
    return Int64.(logor (shift_left (of_int hi) 32) (of_int lo)))

let prop_p_semantics =
  QCheck.Test.make ~name:"packed-simd: machine matches the reference model"
    ~count:500
    QCheck.(
      make
        Gen.(
          let* a = gen_i64 and* b = gen_i64 and* acc = gen_i64 in
          let* rd = int_range 5 15 and* rs1 = int_range 5 15 and* rs2 = int_range 5 15 in
          let* which = bool in
          return (a, b, acc, rd, rs1, rs2, which)))
    (fun (a, b, acc, rd, rs1, rs2, which) ->
      let rd = Reg.of_int rd and rs1 = Reg.of_int rs1 and rs2 = Reg.of_int rs2 in
      let setup m =
        Machine.set_reg m rd acc;
        Machine.set_reg m rs1 a;
        Machine.set_reg m rs2 b
      in
      (* register aliasing: the reference reads the post-setup values
         (setup order rd, rs1, rs2 — later writes win) *)
      let va = if Reg.equal rs1 rs2 then b else a in
      let vb = b in
      let vacc =
        if Reg.equal rd rs2 then b else if Reg.equal rd rs1 then va else acc
      in
      if which then
        let m = exec_one (Inst.P_add16 (rd, rs1, rs2)) ~setup in
        Int64.equal (Machine.get_reg m rd) (ref_add16 va vb)
      else
        let m = exec_one (Inst.P_smaqa (rd, rs1, rs2)) ~setup in
        Int64.equal (Machine.get_reg m rd) (ref_smaqa vacc va vb))

(* --- rewriter structural invariants ------------------------------------------ *)

let small_profile seed =
  { Specgen.sp_name = Printf.sprintf "live%d" seed;
    sp_code_kb = 10;
    sp_ext_pct = 0.015;
    sp_ind_weight = 3;
    sp_vec_heat = 2;
    sp_pressure = 0.3;
    sp_hidden = 0.0;
    sp_compressed = true;
    sp_rounds = 24;
    sp_plain = 5;
    sp_victim_period = 8;
    sp_seed = seed }


(* Every redirect in the fault-handling and trap tables must land inside
   executable bytes of the rewritten image — a dangling redirect would send
   a recovered execution into unmapped or writable memory. *)
let prop_redirects_land_in_executable_code =
  QCheck.Test.make ~name:"rewriter: all table redirects land in executable code"
    ~count:15
    QCheck.(make Gen.(int_range 0 10_000))
    (fun seed ->
      let bin = Specgen.build (small_profile seed) in
      let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
      let out = Chbp.result ctx in
      let executable addr =
        List.exists
          (fun (s : Binfile.section) ->
            Binfile.in_section s addr && s.Binfile.sec_perm.Memory.x)
          out.Binfile.sections
      in
      let ok = ref true in
      Fault_table.iter (Chbp.fault_table ctx) (fun _ r ->
          if not (executable r) then ok := false);
      Fault_table.iter (Chbp.trap_table ctx) (fun _ r ->
          if not (executable r) then ok := false);
      !ok)

(* --- upgrade equivalence ----------------------------------------------------- *)

(* Random instances of the five recognized loop idioms, random lengths and
   strides: the upgraded (vectorized) binary must exit exactly like the
   scalar original. *)
let prop_upgrade_equivalence =
  QCheck.Test.make ~name:"upgrade: vectorized loops preserve scalar semantics"
    ~count:40
    QCheck.(
      make
        Gen.(
          let* kind = int_range 0 4 in
          let* n = int_range 1 41 in
          let* stride_mul = int_range 1 3 in
          let* seed = int_range 0 10_000 in
          return (kind, n, stride_mul, seed)))
    (fun (kind, n, stride_mul, seed) ->
      let st = 8 * stride_mul in
      let a = Asm.create ~name:"ufuzz" () in
      Asm.func a "_start";
      Asm.la a Reg.a0 "src";
      Asm.la a Reg.a1 "dst";
      Asm.li a Reg.a2 n;
      (match kind with
      | 0 ->
          (* element-wise add, unit stride *)
          Asm.label a "L";
          Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a0; imm = 0 });
          Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t2; rs1 = Reg.a1; imm = 0 });
          Asm.inst a (Inst.Op (Inst.Add, Reg.t3, Reg.t1, Reg.t2));
          Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t3; rs1 = Reg.a1; imm = 0 });
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, 8));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, -1));
          Asm.branch_to a Inst.Bne Reg.a2 Reg.x0 "L"
      | 1 ->
          (* strided copy src -> dst *)
          Asm.label a "L";
          Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a0; imm = 0 });
          Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t1; rs1 = Reg.a1; imm = 0 });
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, st));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, 8));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, -1));
          Asm.branch_to a Inst.Bne Reg.a2 Reg.x0 "L"
      | 2 ->
          (* strided fill *)
          Asm.li a Reg.t2 (seed land 0xFF);
          Asm.label a "L";
          Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t2; rs1 = Reg.a1; imm = 0 });
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, st));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, -1));
          Asm.branch_to a Inst.Bne Reg.a2 Reg.x0 "L"
      | 3 ->
          (* strided reduction *)
          Asm.li a Reg.s2 0;
          Asm.label a "L";
          Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a0; imm = 0 });
          Asm.inst a (Inst.Op (Inst.Add, Reg.s2, Reg.s2, Reg.t1));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, st));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, -1));
          Asm.branch_to a Inst.Bne Reg.a2 Reg.x0 "L";
          Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.s2; rs1 = Reg.a1; imm = 0 })
      | _ ->
          (* axpy: dst += k * src *)
          Asm.li a Reg.s3 (2 + (seed land 7));
          Asm.label a "L";
          Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t1; rs1 = Reg.a0; imm = 0 });
          Asm.inst a (Inst.Op (Inst.Mul, Reg.t2, Reg.t1, Reg.s3));
          Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.a1; imm = 0 });
          Asm.inst a (Inst.Op (Inst.Add, Reg.t3, Reg.t3, Reg.t2));
          Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t3; rs1 = Reg.a1; imm = 0 });
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, 8));
          Asm.inst a (Inst.Opi (Inst.Addi, Reg.a2, Reg.a2, -1));
          Asm.branch_to a Inst.Bne Reg.a2 Reg.x0 "L");
      (* checksum dst *)
      Asm.la a Reg.a0 "dst";
      Asm.li a Reg.a1 (n * stride_mul);
      Asm.li a Reg.a3 0;
      Asm.label a "C";
      Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
      Asm.inst a (Inst.Op (Inst.Add, Reg.a3, Reg.a3, Reg.t0));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
      Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
      Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "C";
      Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a3, 255));
      Asm.li a Reg.a7 93;
      Asm.inst a Inst.Ecall;
      Asm.dlabel a "src";
      for i = 0 to (n * stride_mul) + 2 do
        Asm.dword64 a (Int64.of_int (((seed + i) * 37) land 0xFFFF))
      done;
      Asm.dlabel a "dst";
      for i = 0 to (n * stride_mul) + 2 do
        Asm.dword64 a (Int64.of_int (((seed + i) * 11) land 0xFFFF))
      done;
      let bin = Asm.assemble a in
      let native =
        let mem = Loader.load bin in
        let m = Machine.create ~mem ~isa:base_isa () in
        Loader.init_machine m bin;
        match Machine.run ~fuel:1_000_000 m with
        | Machine.Exited c -> c
        | _ -> QCheck.Test.fail_report "scalar run failed"
      in
      let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Upgrade) bin in
      let rt = Chimera_rt.create ctx in
      let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:ext_isa () in
      match Chimera_rt.run rt ~fuel:1_000_000 m with
      | Machine.Exited c -> c = native
      | Machine.Faulted f ->
          QCheck.Test.fail_reportf "upgraded run faulted: %s" (Fault.to_string f)
      | Machine.Fuel_exhausted -> QCheck.Test.fail_report "upgraded run hung")

(* --- scheduler -------------------------------------------------------------- *)

let prop_sched_work_conservation =
  QCheck.Test.make ~name:"sched: busy time = task cycles + migration costs" ~count:200
    QCheck.(
      make
        Gen.(
          let* seed = int_bound 1_000_000 in
          let* nb = int_range 1 4 in
          let* ne = int_range 1 4 in
          let* n = int_range 1 40 in
          return (seed, nb, ne, n)))
    (fun (seed, nb, ne, n) ->
      let rng = Random.State.make [| seed |] in
      let migrate_cost = 17 in
      let costs = Array.init n (fun _ -> 10 + Random.State.int rng 500) in
      let kinds = Array.init n (fun _ -> Random.State.int rng 3) in
      let tasks =
        List.init n (fun i ->
            match kinds.(i) with
            | 0 ->
                { Sched.t_id = i; t_prefer_ext = false;
                  t_run = (fun _ -> Sched.Done { cycles = costs.(i); accelerated = false }) }
            | 1 ->
                { Sched.t_id = i; t_prefer_ext = true;
                  t_run = (fun _ -> Sched.Done { cycles = costs.(i); accelerated = true }) }
            | _ ->
                (* FAM-style: migrates off base cores with a 5-cycle prefix *)
                { Sched.t_id = i; t_prefer_ext = true;
                  t_run =
                    (fun cls ->
                      match cls with
                      | Sched.Base -> Sched.Migrate { cycles = 5 }
                      | Sched.Extension ->
                          Sched.Done { cycles = costs.(i); accelerated = true }) })
      in
      let cfg =
        { Sched.default_config with base_cores = nb; ext_cores = ne; migrate_cost }
      in
      let r = Sched.run cfg tasks in
      let expected_work =
        Array.to_list costs |> List.fold_left ( + ) 0
        |> fun w -> w + (r.Sched.migrations * (migrate_cost + 5))
      in
      r.Sched.tasks_total = n
      && r.Sched.cpu_time = expected_work
      && r.Sched.latency * (nb + ne) >= r.Sched.cpu_time
      && r.Sched.latency <= r.Sched.cpu_time)

(* --- liveness soundness ------------------------------------------------------ *)

(* Clobbering a register that liveness reports dead at a dynamically reached
   point must not change the program result. This validates both the
   dataflow itself and the ABI conventions it assumes. *)
let prop_liveness_soundness =
  QCheck.Test.make ~name:"liveness: dead registers are really dead" ~count:12
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let bin = Specgen.build (small_profile seed) in
      let dis = Disasm.of_binfile bin in
      let cfg = Cfg.of_disasm dis in
      let live = Liveness.compute cfg in
      let run_with_clobber probe =
        let mem = Loader.load bin in
        let m = Machine.create ~mem ~isa:ext_isa () in
        Loader.init_machine m bin;
        (* step to the probe's first dynamic occurrence, then clobber *)
        let steps = ref 0 in
        let hit = ref false in
        while (not !hit) && !steps < 300_000 do
          if Machine.pc m = probe then hit := true
          else begin
            (match Machine.step m with Some _ -> steps := 300_000 | None -> ());
            incr steps
          end
        done;
        if not !hit then None
        else begin
          List.iter
            (fun r -> Machine.set_reg m r 0x5151515151515151L)
            (Liveness.dead_regs_at live probe);
          match Machine.run ~fuel:50_000_000 m with
          | Machine.Exited c -> Some c
          | _ -> Some (-1)
        end
      in
      let baseline =
        let mem = Loader.load bin in
        let m = Machine.create ~mem ~isa:ext_isa () in
        Loader.init_machine m bin;
        match Machine.run ~fuel:50_000_000 m with
        | Machine.Exited c -> c
        | _ -> -2
      in
      (* probe a handful of statically known instruction addresses *)
      let rng = Random.State.make [| seed |] in
      let insns = Array.of_list (Disasm.to_list dis) in
      let ok = ref true in
      for _ = 1 to 4 do
        let probe = insns.(Random.State.int rng (Array.length insns)).Disasm.addr in
        match run_with_clobber probe with
        | None -> ()  (* never reached dynamically *)
        | Some c -> if c <> baseline then ok := false
      done;
      !ok)

(* --- differential fuzzing ----------------------------------------------------- *)

let fuzz_profile seed =
  let rng = Random.State.make [| seed |] in
  { Specgen.sp_name = Printf.sprintf "fuzz%d" seed;
    sp_code_kb = 8 + Random.State.int rng 10;
    sp_ext_pct = 0.005 +. Random.State.float rng 0.04;
    sp_ind_weight = 1 + Random.State.int rng 6;
    sp_vec_heat = 1 + Random.State.int rng 4;
    sp_pressure = Random.State.float rng 0.8;
    sp_hidden = Random.State.float rng 0.1;
    sp_compressed = Random.State.bool rng;
    sp_rounds = 40 + Random.State.int rng 60;
    sp_plain = 2 + Random.State.int rng 8;
    sp_victim_period = 1 lsl Random.State.int rng 5;
    sp_seed = seed }

let prop_differential_rewriting =
  QCheck.Test.make ~name:"fuzz: rewritten binaries preserve semantics" ~count:10
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let pr = fuzz_profile seed in
      let bin = Specgen.build pr in
      let native = Measure.native bin ~isa:ext_isa in
      let expect = native.Measure.exit_code in
      let chbp =
        let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
        (fst (Measure.chimera ctx ~isa:base_isa)).Measure.exit_code
      in
      let straw =
        let ctx = Strawman.rewrite ~mode:Chbp.Downgrade bin in
        (fst (Measure.chimera ctx ~isa:base_isa)).Measure.exit_code
      in
      let safer =
        let rw = Safer.rewrite ~mode:Chbp.Downgrade bin in
        (fst (Measure.safer rw ~isa:base_isa)).Measure.exit_code
      in
      if chbp <> expect then QCheck.Test.fail_reportf "chbp %d <> %d" chbp expect
      else if straw <> expect then QCheck.Test.fail_reportf "strawman %d <> %d" straw expect
      else if safer <> expect then QCheck.Test.fail_reportf "safer %d <> %d" safer expect
      else true)

(* the Fig. 5 pipeline (idiom trampolines, resident traps over bypassed
   sources, backward pair discovery during lazy extension) fuzzed on
   uncompressed binaries *)
let prop_differential_greg =
  QCheck.Test.make ~name:"fuzz: general-register rewriting preserves semantics"
    ~count:8
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let pr = { (fuzz_profile seed) with Specgen.sp_compressed = false } in
      let bin = Specgen.build pr in
      let expect = (Measure.native bin ~isa:ext_isa).Measure.exit_code in
      let ctx =
        Chbp.rewrite
          ~options:{ (Chbp.default_options Chbp.Downgrade) with use_gp = false }
          bin
      in
      let got = (fst (Measure.chimera ctx ~isa:base_isa)).Measure.exit_code in
      if got <> expect then QCheck.Test.fail_reportf "greg %d <> %d" got expect
      else true)

(* --- block-engine differential ----------------------------------------------- *)

(* The translation-block engine must be observably identical to the
   single-step interpreter: same stop condition, registers, pc and counters
   on random programs, at arbitrary fuel limits (so fuel can run out in the
   middle of a block), with and without the icache model, and across
   runtime code patching (CHBP lazy rewriting rewrites code a cached block
   already covers). *)

type snap = {
  sn_stop : Machine.stop;
  sn_regs : int64 list;
  sn_pc : int;
  sn_retired : int;
  sn_cycles : int;
  sn_vector : int;
  sn_indirect : int;
  sn_imisses : int;
}

let snapshot m stop =
  { sn_stop = stop;
    sn_regs = List.init 32 (fun i -> Machine.get_reg m (Reg.of_int i));
    sn_pc = Machine.pc m;
    sn_retired = Machine.retired m;
    sn_cycles = Machine.cycles m;
    sn_vector = Machine.vector_retired m;
    sn_indirect = Machine.indirect_retired m;
    sn_imisses = Machine.icache_misses m }

let pp_snap s =
  let stop =
    match s.sn_stop with
    | Machine.Exited c -> Printf.sprintf "exit %d" c
    | Machine.Faulted f -> Printf.sprintf "fault %s" (Fault.to_string f)
    | Machine.Fuel_exhausted -> "fuel"
  in
  Printf.sprintf "%s pc=%#x retired=%d cycles=%d vec=%d ind=%d imiss=%d" stop
    s.sn_pc s.sn_retired s.sn_cycles s.sn_vector s.sn_indirect s.sn_imisses

let check_snaps ~what step block =
  if step <> block then
    QCheck.Test.fail_reportf "%s: single-step { %s } <> block engine { %s }" what
      (pp_snap step) (pp_snap block)
  else true

let run_native ~engine ?(chain = true) ?(super = true) ~icache ~fuel bin isa =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa () in
  Machine.set_block_engine m engine;
  Machine.set_block_chaining m chain;
  Machine.set_superblocks m super;
  if icache then Machine.enable_icache m;
  Loader.init_machine m bin;
  snapshot m (Machine.run ~fuel m)

let prop_block_engine_native =
  QCheck.Test.make
    ~name:"block engine: bit-identical to single-step (random programs, random fuel)"
    ~count:12
    QCheck.(
      make
        Gen.(
          let* seed = int_bound 100_000 in
          let* fuel = int_range 1_000 400_000 in
          let* icache = bool in
          return (seed, fuel, icache)))
    (fun (seed, fuel, icache) ->
      let bin = Specgen.build (fuzz_profile seed) in
      let what = Printf.sprintf "native seed=%d fuel=%d" seed fuel in
      let step = run_native ~engine:false ~icache ~fuel bin ext_isa in
      let plain = run_native ~engine:true ~super:false ~icache ~fuel bin ext_isa in
      let unchained = run_native ~engine:true ~chain:false ~icache ~fuel bin ext_isa in
      let chained = run_native ~engine:true ~icache ~fuel bin ext_isa in
      check_snaps ~what:(what ^ " (straight-line)") step plain
      && check_snaps ~what:(what ^ " (unchained)") step unchained
      && check_snaps ~what:(what ^ " (chained)") step chained)

(* Lazy rewriting: the runtime patches code on the first fault at each site,
   i.e. it overwrites bytes that a cached translation block (from executing
   up to the fault) already covers. The patched bytes must be picked up —
   including through direct chain links, which are severed by the code-epoch
   bump the patch performs. *)
let run_chimera ~engine ?(chain = true) ?(super = true) seed =
  let bin = Specgen.build (fuzz_profile seed) in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  Machine.set_block_engine m engine;
  Machine.set_block_chaining m chain;
  Machine.set_superblocks m super;
  snapshot m (Chimera_rt.run rt ~fuel:50_000_000 m)

(* --- IR translation pipeline differential ------------------------------------ *)

(* Random loop bodies over a register pool, salted with the exact patterns
   the IR passes fold, kill and fuse: W-type arithmetic (native-int emitter
   arms), RMW triples, adjacent-pair loads, mixed-width stores. Each program
   runs in three phases — a warm run cut off mid-block by exact fuel, a
   continuation across an in-place code patch (SMC invalidation of a cached,
   already-hot block), and a continuation across a warm-TLB permission
   downgrade that makes the loop's next store fault. Step, straight-line
   block, superblock-with-IR and superblock-without-IR must agree
   bit-for-bit on registers, retired counts, pcs and fault identity at every
   phase boundary. *)

let ir_pool = [| 5; 6; 7; 12; 13; 14; 15; 28; 29; 30; 31 |]

let ir_program rng =
  let reg () = Reg.of_int ir_pool.(Random.State.int rng (Array.length ir_pool)) in
  let a = Asm.create ~name:"irfuzz" () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "data";
  let niter = 1500 + Random.State.int rng 1000 in
  Asm.li a Reg.a1 niter;
  Array.iter
    (fun i -> Asm.li a (Reg.of_int i) (Random.State.int rng 0x10000))
    ir_pool;
  Asm.label a "L";
  let patch_off = Asm.here a in
  (* x18 (s2) sits outside the compressed register file, so this xori always
     encodes in 4 bytes — the SMC phase overwrites it in place *)
  Asm.inst a (Inst.Opi (Inst.Xori, Reg.s2, Reg.s2, 0x55));
  let n = 4 + Random.State.int rng 8 in
  for _ = 1 to n do
    match Random.State.int rng 12 with
    | 0 | 1 | 2 ->
        let ops = [| Inst.Add; Inst.Sub; Inst.And; Inst.Or; Inst.Xor; Inst.Mul |] in
        Asm.inst a (Inst.Op (ops.(Random.State.int rng 6), reg (), reg (), reg ()))
    | 3 | 4 ->
        let ops =
          [| Inst.Addw; Inst.Subw; Inst.Mulw; Inst.Sllw; Inst.Srlw; Inst.Sraw |]
        in
        Asm.inst a (Inst.Op (ops.(Random.State.int rng 6), reg (), reg (), reg ()))
    | 5 ->
        Asm.inst a
          (Inst.Opi (Inst.Addi, reg (), reg (), Random.State.int rng 2048 - 1024))
    | 6 ->
        let ops = [| Inst.Slliw; Inst.Srliw; Inst.Sraiw; Inst.Addiw |] in
        Asm.inst a
          (Inst.Opi (ops.(Random.State.int rng 4), reg (), reg (), Random.State.int rng 31))
    | 7 ->
        let ops = [| Inst.Slli; Inst.Srli; Inst.Srai |] in
        Asm.inst a
          (Inst.Opi (ops.(Random.State.int rng 3), reg (), reg (), Random.State.int rng 63))
    | 8 ->
        (* adjacent 8-byte loads off one base: ld_pair fusion *)
        let r1 = reg () and r2 = reg () in
        Asm.inst a
          (Inst.Load { width = Inst.D; unsigned = false; rd = r1; rs1 = Reg.a0; imm = 0 });
        Asm.inst a
          (Inst.Load { width = Inst.D; unsigned = false; rd = r2; rs1 = Reg.a0; imm = 8 })
    | 9 ->
        (* RMW triple: load/alu/store to one address *)
        let r = reg () in
        Asm.inst a
          (Inst.Load { width = Inst.D; unsigned = false; rd = r; rs1 = Reg.a0; imm = 16 });
        Asm.inst a (Inst.Opi (Inst.Addi, r, r, 3));
        Asm.inst a (Inst.Store { width = Inst.D; rs2 = r; rs1 = Reg.a0; imm = 16 })
    | 10 ->
        let widths = [| Inst.W; Inst.H; Inst.B |] in
        Asm.inst a
          (Inst.Load
             { width = widths.(Random.State.int rng 3);
               unsigned = Random.State.bool rng; rd = reg (); rs1 = Reg.a0;
               imm = 8 * Random.State.int rng 3 })
    | _ ->
        let widths = [| Inst.D; Inst.W; Inst.H; Inst.B |] in
        Asm.inst a
          (Inst.Store
             { width = widths.(Random.State.int rng 4); rs2 = reg (); rs1 = Reg.a0;
               imm = 24 })
  done;
  (* at least one store per iteration, so a permission downgrade faults
     within one trip round the loop *)
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.s2; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 16));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "L";
  Array.iter
    (fun i -> Asm.inst a (Inst.Op (Inst.Add, Reg.a1, Reg.a1, Reg.of_int i)))
    ir_pool;
  Asm.inst a (Inst.Op (Inst.Add, Reg.a1, Reg.a1, Reg.s2));
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a1, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "data";
  for _ = 0 to (niter * 2) + 8 do
    Asm.dword64 a (Int64.of_int (Random.State.int rng 0x3FFFFFF))
  done;
  let bin = Asm.assemble a in
  (bin, (Binfile.symbol bin "_start").Binfile.sym_addr + patch_off)

let run_ir_phases mode bin ~patch_addr ~f1 ~f2 =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:base_isa () in
  (match mode with
  | `Step -> Machine.set_block_engine m false
  | `Block -> Machine.set_superblocks m false
  | `Super -> ()
  | `Super_noir -> Machine.set_ir m false);
  Loader.init_machine m bin;
  let s1 = snapshot m (Machine.run ~fuel:f1 m) in
  (* SMC: flip the xori's immediate under a cached, already-executed block;
     every engine sees the patch at the same instruction boundary because
     the phase fuels are exact *)
  let buf = Bytes.create 4 in
  ignore (Encode.write buf 0 (Inst.Opi (Inst.Xori, Reg.s2, Reg.s2, 0xAA)));
  Memory.poke_bytes mem patch_addr buf;
  Machine.invalidate_code m ~addr:patch_addr ~len:4;
  let s2 = snapshot m (Machine.run ~fuel:f2 m) in
  (* warm-TLB permission downgrade: the data pages turn read-only mid-loop;
     the next store must fault at the same pc in every engine, through any
     cached translation, chain link or elided-check fused unit *)
  List.iter
    (fun (s : Binfile.section) ->
      if s.Binfile.sec_perm.Memory.w then
        Memory.set_perm mem ~addr:s.Binfile.sec_addr
          ~len:(Bytes.length s.Binfile.sec_data) Memory.perm_r)
    bin.Binfile.sections;
  let s3 = snapshot m (Machine.run ~fuel:50_000 m) in
  (s1, s2, s3)

let prop_ir_pipeline_differential =
  QCheck.Test.make
    ~name:
      "ir: step/block/super/no-ir bit-identical across SMC patch and TLB downgrade"
    ~count:12
    QCheck.(
      make
        Gen.(
          let* seed = int_bound 100_000 in
          let* f1 = int_range 500 6_000 in
          let* f2 = int_range 500 6_000 in
          return (seed, f1, f2)))
    (fun (seed, f1, f2) ->
      let bin, patch_addr = ir_program (Random.State.make [| seed |]) in
      let r1, r2, r3 = run_ir_phases `Step bin ~patch_addr ~f1 ~f2 in
      List.for_all
        (fun (label, mode) ->
          let b1, b2, b3 = run_ir_phases mode bin ~patch_addr ~f1 ~f2 in
          let what p =
            Printf.sprintf "ir seed=%d f1=%d f2=%d %s phase%d" seed f1 f2 label p
          in
          check_snaps ~what:(what 1) r1 b1
          && check_snaps ~what:(what 2) r2 b2
          && check_snaps ~what:(what 3) r3 b3)
        [ ("block", `Block); ("super", `Super); ("super-noir", `Super_noir) ])

let prop_block_engine_self_modifying =
  QCheck.Test.make
    ~name:"block engine: identical across runtime code patching (lazy rewrite)"
    ~count:8
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let step = run_chimera ~engine:false seed in
      let plain = run_chimera ~engine:true ~super:false seed in
      let unchained = run_chimera ~engine:true ~chain:false seed in
      let chained = run_chimera ~engine:true seed in
      check_snaps ~what:(Printf.sprintf "chimera seed=%d (straight-line)" seed) step plain
      && check_snaps ~what:(Printf.sprintf "chimera seed=%d (unchained)" seed) step unchained
      && check_snaps ~what:(Printf.sprintf "chimera seed=%d (chained)" seed) step chained)

let () =
  Alcotest.run "chimera_properties"
    [ ("smile",
       List.map QCheck_alcotest.to_alcotest
         [ prop_smile_next_target; prop_smile_write_decodes ]);
      ("codebuf", [ QCheck_alcotest.to_alcotest prop_codebuf_branch_web ]);
      ("memory", [ QCheck_alcotest.to_alcotest prop_memory_roundtrip ]);
      ("packed-simd", [ QCheck_alcotest.to_alcotest prop_p_semantics ]);
      ("upgrade", [ QCheck_alcotest.to_alcotest prop_upgrade_equivalence ]);
      ("redirects",
       [ QCheck_alcotest.to_alcotest prop_redirects_land_in_executable_code ]);
      ("sched", [ QCheck_alcotest.to_alcotest prop_sched_work_conservation ]);
      ("liveness", [ QCheck_alcotest.to_alcotest prop_liveness_soundness ]);
      ("differential",
       List.map QCheck_alcotest.to_alcotest
         [ prop_differential_rewriting; prop_differential_greg ]);
      ("block-engine",
       List.map QCheck_alcotest.to_alcotest
         [ prop_block_engine_native; prop_block_engine_self_modifying ]);
      ("ir", [ QCheck_alcotest.to_alcotest prop_ir_pipeline_differential ]) ]
