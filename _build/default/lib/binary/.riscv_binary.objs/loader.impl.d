lib/binary/loader.ml: Binfile Bytes Int64 Layout List Machine Memory Reg
