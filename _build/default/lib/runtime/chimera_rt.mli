(** Chimera's runtime mechanisms for one rewritten binary (paper §4.3).

    Models the kernel-side machinery: deterministic-fault recovery through
    the fault-handling table, trap-trampoline redirection, and lazy rewriting
    of extension instructions that static disassembly missed. Produces the
    {!Machine.handlers} a hart runs the rewritten binary under.

    Fault-address determination follows the paper exactly: an
    illegal-instruction fault carries its address in [pc]; a segmentation
    fault with execute access means the latter SMILE instruction ([jalr])
    ran alone, and the fault site is the link value it wrote into gp minus
    4. After recovery the handler restores gp to its static value. *)

type t

val create : ?costs:Costs.t -> Chbp.t -> t
(** Wrap a completed rewriting context. *)

val load : t -> Memory.t
(** A fresh address-space view with the rewritten binary and a stack. *)

val counters : t -> Counters.t
val rewritten : t -> Binfile.t
val chbp : t -> Chbp.t

val handlers : t -> Machine.handlers
(** Fault/trap handlers implementing the runtime mechanisms. Lazy rewriting
    patches every memory view this runtime has loaded and the machine's
    decode caches. *)

val run : t -> ?isa:Ext.t -> fuel:int -> Machine.t -> Machine.stop
(** Convenience: point the machine at [load t]'s view (loading one if none
    was created yet), initialize pc/sp/gp, and run under {!handlers}. [isa]
    defaults to the machine's current capability set. *)
