type insn = { addr : int; inst : Inst.t; size : int }

type flow =
  | Fallthrough
  | Branch of int
  | Jump of int
  | Call of int
  | Indirect_jump
  | Indirect_call
  | Ret
  | Syscall
  | Halt

let flow_of { addr; inst; _ } =
  match inst with
  | Inst.Branch (_, _, _, off) -> Branch (addr + off)
  | Inst.C_beqz (_, off) | Inst.C_bnez (_, off) -> Branch (addr + off)
  | Inst.Jal (rd, off) ->
      if Reg.equal rd Reg.x0 then Jump (addr + off) else Call (addr + off)
  | Inst.C_j off -> Jump (addr + off)
  | Inst.Jalr (rd, rs1, imm) ->
      if Reg.equal rd Reg.x0 then
        if Reg.equal rs1 Reg.ra && imm = 0 then Ret else Indirect_jump
      else Indirect_call
  | Inst.Xcheck_jalr (rd, _, _) ->
      if Reg.equal rd Reg.x0 then Indirect_jump else Indirect_call
  | Inst.C_jr rs1 -> if Reg.equal rs1 Reg.ra then Ret else Indirect_jump
  | Inst.C_jalr _ -> Indirect_call
  | Inst.Ecall -> Syscall
  | Inst.Ebreak | Inst.C_ebreak -> Halt
  | Inst.Lui _ | Inst.Auipc _ | Inst.Load _ | Inst.Store _ | Inst.Op _
  | Inst.Opi _ | Inst.C_nop | Inst.C_addi _ | Inst.C_li _ | Inst.C_mv _
  | Inst.C_add _ | Inst.C_ld _ | Inst.C_sd _ | Inst.C_lw _ | Inst.C_sw _
  | Inst.C_lui _ | Inst.C_addiw _ | Inst.C_andi _ | Inst.C_alu _
  | Inst.C_slli _ | Inst.Vsetvli _
  | Inst.Vle _ | Inst.Vlse _ | Inst.Vse _ | Inst.Vsse _
  | Inst.Vop_vv _ | Inst.Vop_vx _ | Inst.Vmv_v_x _
  | Inst.Vmv_x_s _ | Inst.Vredsum _ | Inst.P_add16 _ | Inst.P_smaqa _ ->
      Fallthrough

type t = {
  insns : (int, insn) Hashtbl.t;
  mutable sorted : insn list option;  (* memoized ascending order *)
}

let in_code (bin : Binfile.t) addr =
  List.exists (fun s -> Binfile.in_section s addr) (Binfile.code_sections bin)

let decode_at (bin : Binfile.t) addr =
  let sec =
    List.find_opt (fun s -> Binfile.in_section s addr) (Binfile.code_sections bin)
  in
  match sec with
  | None -> None
  | Some s ->
      let off = addr - s.Binfile.sec_addr in
      let len = Bytes.length s.Binfile.sec_data in
      if off + 2 > len then None
      else
        let lo = Bytes.get_uint16_le s.Binfile.sec_data off in
        let hi = if off + 4 <= len then Bytes.get_uint16_le s.Binfile.sec_data (off + 2) else 0 in
        (match Decode.decode ~lo ~hi with
        | Decode.Ok (inst, size) -> Some { addr; inst; size }
        | Decode.Illegal _ -> None)

let of_binfile_at (bin : Binfile.t) ~roots =
  let t = { insns = Hashtbl.create 4096; sorted = None } in
  let work = Queue.create () in
  List.iter (fun r -> Queue.add r work) roots;
  while not (Queue.is_empty work) do
    let addr = Queue.pop work in
    if (not (Hashtbl.mem t.insns addr)) && in_code bin addr then
      match decode_at bin addr with
      | None -> ()  (* unrecognized bytes: left to lazy runtime rewriting *)
      | Some ins ->
          Hashtbl.replace t.insns addr ins;
          (match flow_of ins with
          | Fallthrough | Syscall ->
              Queue.add (addr + ins.size) work
          | Branch target ->
              Queue.add (addr + ins.size) work;
              Queue.add target work
          | Jump target -> Queue.add target work
          | Call target ->
              Queue.add (addr + ins.size) work;
              Queue.add target work
          | Indirect_call ->
              (* the callee is unknown, but execution resumes here *)
              Queue.add (addr + ins.size) work
          | Indirect_jump | Ret | Halt -> ())
  done;
  t

let of_binfile (bin : Binfile.t) =
  let roots =
    bin.Binfile.entry :: List.map (fun s -> s.Binfile.sym_addr) bin.Binfile.symbols
  in
  of_binfile_at bin ~roots

let find t addr = Hashtbl.find_opt t.insns addr

let to_list t =
  match t.sorted with
  | Some l -> l
  | None ->
      let l =
        Hashtbl.fold (fun _ i acc -> i :: acc) t.insns []
        |> List.sort (fun a b -> compare a.addr b.addr)
      in
      t.sorted <- Some l;
      l

let iter t f = List.iter f (to_list t)
let count t = Hashtbl.length t.insns

let covered_bytes t =
  Hashtbl.fold (fun _ i acc -> acc + i.size) t.insns 0

let is_covered t addr =
  Hashtbl.mem t.insns addr
  || Hashtbl.mem t.insns (addr - 2)
     && (match Hashtbl.find_opt t.insns (addr - 2) with
        | Some i -> i.size = 4
        | None -> false)

let next_insn t addr =
  match find t addr with None -> None | Some i -> find t (addr + i.size)

let pp_insn fmt i = Format.fprintf fmt "%08x: %a" i.addr Inst.pp i.inst
