type run = {
  cycles : int;
  exit_code : int;
  retired : int;
  vector_retired : int;
  indirect_retired : int;
}

let snapshot m ~exit_code =
  { cycles = Machine.cycles m;
    exit_code;
    retired = Machine.retired m;
    vector_retired = Machine.vector_retired m;
    indirect_retired = Machine.indirect_retired m }

let default_fuel = 50_000_000

let native ?(fuel = default_fuel) ?before_run ?after_run bin ~isa =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa () in
  Loader.init_machine m bin;
  (match before_run with Some f -> f m | None -> ());
  match Machine.run ~fuel m with
  | Machine.Exited code ->
      (match after_run with Some f -> f m | None -> ());
      snapshot m ~exit_code:code
  | Machine.Faulted f ->
      failwith (Printf.sprintf "%s: %s" bin.Binfile.name (Fault.to_string f))
  | Machine.Fuel_exhausted -> failwith (bin.Binfile.name ^ ": fuel exhausted")

let native_until_fault ?(fuel = default_fuel) bin ~isa =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa () in
  Loader.init_machine m bin;
  match Machine.run ~fuel m with
  | Machine.Faulted _ -> snapshot m ~exit_code:(-1)
  | Machine.Exited _ -> failwith (bin.Binfile.name ^ ": completed without faulting")
  | Machine.Fuel_exhausted -> failwith (bin.Binfile.name ^ ": fuel exhausted")

(* The [before_run]/[after_run] hooks let a caller touch the machine after
   loading but before execution (seed a persisted translation plan) and
   after a successful run (export one) without this library knowing about
   the cache. *)
let chimera ?(fuel = default_fuel) ?before_run ?after_run ctx ~isa =
  let rt = Chimera_rt.create ctx in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa () in
  (match before_run with Some f -> f m | None -> ());
  match Chimera_rt.run rt ~fuel m with
  | Machine.Exited code ->
      (match after_run with Some f -> f m | None -> ());
      (snapshot m ~exit_code:code, Chimera_rt.counters rt)
  | Machine.Faulted f ->
      failwith
        (Printf.sprintf "%s (chimera): %s"
           (Chimera_rt.rewritten rt).Binfile.name (Fault.to_string f))
  | Machine.Fuel_exhausted -> failwith "chimera run: fuel exhausted"

let safer ?(fuel = default_fuel) ?before_run ?after_run rw ~isa =
  let rt = Safer.runtime rw in
  let isa = Ext.union isa (Ext.of_list [ Ext.X ]) in
  let m = Machine.create ~mem:(Safer.load rt) ~isa () in
  (match before_run with Some f -> f m | None -> ());
  match Safer.run rt ~fuel m with
  | Machine.Exited code ->
      (match after_run with Some f -> f m | None -> ());
      (snapshot m ~exit_code:code, Safer.counters rt)
  | Machine.Faulted f ->
      failwith (Printf.sprintf "safer run: %s" (Fault.to_string f))
  | Machine.Fuel_exhausted -> failwith "safer run: fuel exhausted"

let armore ?(fuel = default_fuel) ?before_run ?after_run rw ~isa =
  let rt = Armore.runtime rw in
  let m = Machine.create ~mem:(Armore.load rt) ~isa () in
  (match before_run with Some f -> f m | None -> ());
  match Armore.run rt ~fuel m with
  | Machine.Exited code ->
      (match after_run with Some f -> f m | None -> ());
      (snapshot m ~exit_code:code, Armore.counters rt)
  | Machine.Faulted f ->
      failwith (Printf.sprintf "armore run: %s" (Fault.to_string f))
  | Machine.Fuel_exhausted -> failwith "armore run: fuel exhausted"

let check_exit ~expected run =
  if run.exit_code <> expected then
    failwith
      (Printf.sprintf "exit code mismatch: expected %d, got %d" expected run.exit_code);
  run
