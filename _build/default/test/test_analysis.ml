(* Tests for riscv_analysis: recursive-descent coverage, CFG shape, and
   the conservative liveness the rewriter's dead-register search uses. *)

let exit_seq a =
  [ Inst.Opi (Inst.Addi, Reg.a7, Reg.x0, 93); Inst.Opi (Inst.Addi, Reg.a0, Reg.x0, a);
    Inst.Ecall ]

(* --- disassembler ------------------------------------------------------- *)

let test_linear_coverage () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.li a Reg.t0 1;
  Asm.li a Reg.t1 2;
  Asm.insts a (exit_seq 0);
  let bin = Asm.assemble a in
  let dis = Disasm.of_binfile bin in
  Alcotest.(check int) "all insns found" 5 (Disasm.count dis);
  Alcotest.(check int) "all bytes covered" (Binfile.code_size bin)
    (Disasm.covered_bytes dis)

let test_follows_branches_and_calls () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.li a Reg.a0 0;
  Asm.call a "helper";
  Asm.branch_to a Inst.Beq Reg.a0 Reg.x0 "done";
  Asm.li a Reg.a0 1;
  Asm.label a "done";
  Asm.insts a (exit_seq 0);
  Asm.func a "helper";
  Asm.ret a;
  let bin = Asm.assemble a in
  let dis = Disasm.of_binfile bin in
  Alcotest.(check int) "covered = code size" (Binfile.code_size bin)
    (Disasm.covered_bytes dis)

let test_jump_table_targets_missed_without_symbols () =
  (* Cases reachable only through an indirect jump are invisible to
     recursive descent — the paper's incompleteness scenario (§4.1). *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.la a Reg.t1 "table";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t2; rs1 = Reg.t1; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t2, 0));
  Asm.hidden_func a "case0";
  Asm.insts a (exit_seq 0);
  Asm.rlabel a "table";
  Asm.rword_label a "case0";
  let bin = Asm.assemble a in
  let dis = Disasm.of_binfile bin in
  let case0 = ref 0 in
  (* find case0's address: right after the jalr (4+4+4+4+4 = 20 bytes in) *)
  case0 := Layout.text_base + 20;
  Alcotest.(check bool) "case0 not discovered" true (Disasm.find dis !case0 = None);
  Alcotest.(check bool) "entry discovered" true
    (Disasm.find dis Layout.text_base <> None)

let test_flow_classification () =
  let mk inst = { Disasm.addr = 0x1000; inst; size = Inst.size inst } in
  let check name inst expect =
    Alcotest.(check bool) name true (Disasm.flow_of (mk inst) = expect)
  in
  check "ret" (Inst.Jalr (Reg.x0, Reg.ra, 0)) Disasm.Ret;
  check "indirect jump" (Inst.Jalr (Reg.x0, Reg.t0, 0)) Disasm.Indirect_jump;
  check "indirect call" (Inst.Jalr (Reg.ra, Reg.t0, 0)) Disasm.Indirect_call;
  check "call" (Inst.Jal (Reg.ra, 64)) (Disasm.Call (0x1000 + 64));
  check "jump" (Inst.Jal (Reg.x0, -8)) (Disasm.Jump (0x1000 - 8));
  check "branch" (Inst.Branch (Inst.Beq, Reg.a0, Reg.a1, 16)) (Disasm.Branch 0x1010);
  check "cbnez" (Inst.C_bnez (Reg.s0, 32)) (Disasm.Branch 0x1020);
  check "fall" (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 1)) Disasm.Fallthrough

(* --- CFG ----------------------------------------------------------------- *)

let diamond_binary () =
  (* _start:  beq a0, x0, else
              li a1, 1
              j join
     else:    li a1, 2
     join:    exit *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.branch_to a Inst.Beq Reg.a0 Reg.x0 "else_";
  Asm.li a Reg.a1 1;
  Asm.j a "join";
  Asm.label a "else_";
  Asm.li a Reg.a1 2;
  Asm.label a "join";
  Asm.insts a (exit_seq 0);
  Asm.assemble a

let test_cfg_diamond () =
  let bin = diamond_binary () in
  let dis = Disasm.of_binfile bin in
  let cfg = Cfg.of_disasm dis in
  let blocks = Cfg.blocks cfg in
  Alcotest.(check int) "4 blocks" 4 (List.length blocks);
  let entry = List.hd blocks in
  Alcotest.(check int) "entry block has 1 insn" 1 (List.length entry.Cfg.b_insns);
  Alcotest.(check int) "entry has 2 successors" 2 (List.length entry.Cfg.b_succs);
  (* join block has two predecessors *)
  let join =
    List.find
      (fun b ->
        match b.Cfg.b_insns with
        | { Disasm.inst = Inst.Opi (Inst.Addi, rd, _, 93); _ } :: _ ->
            Reg.equal rd Reg.a7
        | _ -> false)
      blocks
  in
  Alcotest.(check int) "join preds" 2 (List.length (Cfg.preds cfg join.Cfg.b_addr))

let test_cfg_indirect_is_unknown () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t0, 0));
  let bin = Asm.assemble a in
  let cfg = Cfg.of_disasm (Disasm.of_binfile bin) in
  match Cfg.blocks cfg with
  | [ b ] -> Alcotest.(check bool) "unknown succ" true (b.Cfg.b_succs = [ Cfg.Sunknown ])
  | bs -> Alcotest.failf "expected 1 block, got %d" (List.length bs)

(* --- liveness ------------------------------------------------------------ *)

let test_liveness_simple_dead_reg () =
  (* t0 is overwritten before any use -> dead at entry; a0 is read -> live. *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.label a "probe";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.a0, 1));  (* uses a0 *)
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.x0, 5));  (* defs t0 *)
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.t0, Reg.t1));
  Asm.insts a (exit_seq 0);
  let bin = Asm.assemble a in
  let cfg = Cfg.of_disasm (Disasm.of_binfile bin) in
  let live = Liveness.compute cfg in
  match Liveness.live_in_at live Layout.text_base with
  | None -> Alcotest.fail "no liveness at entry"
  | Some mask ->
      Alcotest.(check bool) "a0 live" true (Regmask.mem Reg.a0 mask);
      Alcotest.(check bool) "t0 dead" false (Regmask.mem Reg.t0 mask);
      (match Liveness.dead_at live Layout.text_base with
      | Some r -> Alcotest.(check bool) "found a dead temp" true
                    (not (Regmask.mem r mask))
      | None -> Alcotest.fail "expected a dead register")

let test_liveness_conservative_at_indirect () =
  (* Before an indirect jump everything is live (unknown continuation). *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.x0, 0));
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t0, 0));
  let bin = Asm.assemble a in
  let live = Liveness.compute (Cfg.of_disasm (Disasm.of_binfile bin)) in
  (* at the jalr itself: everything except its own defs is live *)
  match Liveness.live_in_at live (Layout.text_base + 4) with
  | None -> Alcotest.fail "no liveness"
  | Some mask ->
      Alcotest.(check bool) "s0 live (conservative)" true (Regmask.mem Reg.s0 mask);
      Alcotest.(check bool) "a0 live (conservative)" true (Regmask.mem Reg.a0 mask);
      Alcotest.(check bool) "dead_at finds nothing" true
        (Liveness.dead_at live (Layout.text_base + 4) = None)

let test_liveness_call_clobbers () =
  (* After a call, caller-saved registers are dead (clobbered by the call)
     unless reloaded; callee-saved survive. *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.call a "f";
  Asm.label a "after";
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.s0, Reg.s0));  (* uses s0 *)
  Asm.insts a (exit_seq 0);
  Asm.func a "f";
  Asm.ret a;
  let bin = Asm.assemble a in
  let live = Liveness.compute (Cfg.of_disasm (Disasm.of_binfile bin)) in
  (* at the call: argument registers are live (callee may read them), and
     s0 is live (used after return). t-registers are not. *)
  match Liveness.live_in_at live Layout.text_base with
  | None -> Alcotest.fail "no liveness"
  | Some mask ->
      Alcotest.(check bool) "a0 live at call" true (Regmask.mem Reg.a0 mask);
      Alcotest.(check bool) "s0 live at call" true (Regmask.mem Reg.s0 mask);
      Alcotest.(check bool) "t3 dead at call" false (Regmask.mem Reg.t3 mask)

let test_liveness_loop () =
  (* Loop counter stays live around the back edge. *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.li a Reg.t0 10;
  Asm.label a "loop";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.branch_to a Inst.Bne Reg.t0 Reg.x0 "loop";
  Asm.insts a (exit_seq 0);
  let bin = Asm.assemble a in
  let live = Liveness.compute (Cfg.of_disasm (Disasm.of_binfile bin)) in
  (* inside the loop body, t0 is live *)
  match Liveness.live_in_at live (Layout.text_base + 4) with
  | None -> Alcotest.fail "no liveness"
  | Some mask -> Alcotest.(check bool) "t0 live in loop" true (Regmask.mem Reg.t0 mask)

let test_liveness_return_abi () =
  (* at a ret, only a0/a1 + callee-saved are live: t-registers are dead *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.call a "f";
  Asm.insts a (exit_seq 0);
  Asm.func a "f";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t3, Reg.x0, 7));
  Asm.ret a;
  let bin = Asm.assemble a in
  let cfg = Cfg.of_disasm (Disasm.of_binfile bin) in
  let live = Liveness.compute cfg in
  let f = (Binfile.symbol bin "f").Binfile.sym_addr in
  let dead = Liveness.dead_regs_at live f in
  Alcotest.(check bool) "t3 dead before its own def... is live-out as write target"
    true
    (List.exists (Reg.equal Reg.t4) dead);
  Alcotest.(check bool) "a0 not dead at a return-reaching point" false
    (List.exists (Reg.equal Reg.a0) dead)

let test_liveness_avoid_filter () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.insts a (exit_seq 3);
  let bin = Asm.assemble a in
  let cfg = Cfg.of_disasm (Disasm.of_binfile bin) in
  let live = Liveness.compute cfg in
  let entry = bin.Binfile.entry in
  (match Liveness.dead_at live entry with
  | Some r ->
      (* asking to avoid that exact register must yield a different one *)
      (match Liveness.dead_at live ~avoid:[ r ] entry with
      | Some r' -> Alcotest.(check bool) "avoided" false (Reg.equal r r')
      | None -> ())
  | None -> Alcotest.fail "trivial program must have a dead register")

let test_cfg_splits_at_branch_target () =
  (* a backwards branch into the middle of straight-line code must split
     the containing block exactly at the target *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.li a Reg.t0 3;
  Asm.label a "top";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t1, Reg.t1, 1));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, -1));
  Asm.branch_to a Inst.Bne Reg.t0 Reg.x0 "top";
  Asm.insts a (exit_seq 0);
  let bin = Asm.assemble a in
  let cfg = Cfg.of_disasm (Disasm.of_binfile bin) in
  (* the loop head starts its own block even though control falls into it *)
  let top = bin.Binfile.entry + 4 in  (* li = one addi *)
  match Cfg.block_containing cfg top with
  | Some b -> Alcotest.(check int) "block starts at branch target" top b.Cfg.b_addr
  | None -> Alcotest.fail "no block at loop head"

let test_cfg_dot_render () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.branch_to a Inst.Beq Reg.a0 Reg.x0 "z";
  Asm.li a Reg.a0 1;
  Asm.label a "z";
  Asm.insts a (exit_seq 0);
  let bin = Asm.assemble a in
  let cfg = Cfg.of_disasm (Disasm.of_binfile bin) in
  let dot = Format.asprintf "%a" Cfg.pp_dot cfg in
  Alcotest.(check bool) "digraph wrapper" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  (* one node line per block *)
  let blocks = List.length (Cfg.blocks cfg) in
  let count_sub sub =
    let n = ref 0 and i = ref 0 in
    let ls = String.length sub in
    while !i + ls <= String.length dot do
      if String.sub dot !i ls = sub then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "one label per block" blocks (count_sub "label=")

let test_regmask () =
  let m = Regmask.of_list [ Reg.a0; Reg.t0 ] in
  Alcotest.(check bool) "mem a0" true (Regmask.mem Reg.a0 m);
  Alcotest.(check bool) "not mem a1" false (Regmask.mem Reg.a1 m);
  Alcotest.(check bool) "x0 never in mask" false (Regmask.mem Reg.x0 Regmask.all);
  Alcotest.(check int) "diff" (Regmask.singleton Reg.t0)
    (Regmask.diff m (Regmask.singleton Reg.a0));
  Alcotest.(check (list string)) "to_list" [ "t0"; "a0" ]
    (List.map Reg.name (Regmask.to_list m))

let () =
  Alcotest.run "riscv_analysis"
    [ ("disasm",
       [ Alcotest.test_case "linear coverage" `Quick test_linear_coverage;
         Alcotest.test_case "branches and calls" `Quick test_follows_branches_and_calls;
         Alcotest.test_case "jump table gap" `Quick
           test_jump_table_targets_missed_without_symbols;
         Alcotest.test_case "flow classification" `Quick test_flow_classification ]);
      ("cfg",
       [ Alcotest.test_case "diamond" `Quick test_cfg_diamond;
         Alcotest.test_case "indirect unknown" `Quick test_cfg_indirect_is_unknown ]);
      ("liveness",
       [ Alcotest.test_case "dead register" `Quick test_liveness_simple_dead_reg;
         Alcotest.test_case "conservative at indirect" `Quick
           test_liveness_conservative_at_indirect;
         Alcotest.test_case "call clobbers" `Quick test_liveness_call_clobbers;
         Alcotest.test_case "loop" `Quick test_liveness_loop;
         Alcotest.test_case "return ABI mask" `Quick test_liveness_return_abi;
         Alcotest.test_case "avoid filter" `Quick test_liveness_avoid_filter;
         Alcotest.test_case "regmask" `Quick test_regmask ]);
      ("cfg-extra",
       [ Alcotest.test_case "splits at branch target" `Quick
           test_cfg_splits_at_branch_target;
         Alcotest.test_case "dot rendering" `Quick test_cfg_dot_render ]) ]
