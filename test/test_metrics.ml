(* Metrics subsystem:
   - the log-linear bucket layout is self-consistent and its quantile
     estimates are within one bucket width of the exact sample (property);
   - recording sharded over 4 domains merges to the same snapshot as the
     same work on 1 domain — counters exactly, histograms bucket-wise
     (mirroring test_obs's counter-merge test);
   - disabled recording is a no-op;
   - registry identity: same name returns the same metric, kind clashes
     and negative counter increments are rejected;
   - snapshot deltas subtract pointwise;
   - both exposition formats carry the recorded values;
   - the health watchdog's default rules fire on the regressions they
     describe and stay quiet below their activity floors. *)

let c_work = Metrics.counter ~help:"test" "chimera_test_work_total"
let g_level = Metrics.gauge ~help:"test" "chimera_test_level"
let h_lat = Metrics.histogram ~help:"test" "chimera_test_lat_ns"

let with_metrics f =
  Metrics.enable ();
  Metrics.reset ();
  Fun.protect ~finally:Metrics.disable f

(* --- bucket layout ------------------------------------------------------------ *)

let test_bucket_layout () =
  (* every bucket covers [lo, hi) with lo < hi, and boundaries chain *)
  for i = 0 to Metrics.Buckets.count - 1 do
    if Metrics.Buckets.lo i >= Metrics.Buckets.hi i then
      Alcotest.failf "bucket %d: lo %d >= hi %d" i (Metrics.Buckets.lo i)
        (Metrics.Buckets.hi i);
    if i > 0 && Metrics.Buckets.lo i <> Metrics.Buckets.hi (i - 1) then
      Alcotest.failf "bucket %d does not chain: lo %d, prev hi %d" i
        (Metrics.Buckets.lo i)
        (Metrics.Buckets.hi (i - 1))
  done

let prop_index_in_own_bucket =
  QCheck.Test.make ~name:"metrics: index v lands v in [lo, hi)" ~count:2000
    QCheck.(
      make
        Gen.(
          oneof
            [ int_range 0 15; int_range 0 4096; int_range 0 1_000_000;
              int_range 0 (1 lsl 40) ]))
    (fun v ->
      let i = Metrics.Buckets.index v in
      i >= 0
      && i < Metrics.Buckets.count
      && Metrics.Buckets.lo i <= v
      && v < Metrics.Buckets.hi i)

(* --- quantile error bound ------------------------------------------------------ *)

(* The documented contract: [quantile h q] is the midpoint of the bucket
   holding the ceil(q*n)-th smallest sample, so its error against the exact
   order statistic is bounded by that bucket's width. *)
let prop_quantile_error_bounded =
  let sample_gen =
    QCheck.Gen.(
      list_size (int_range 1 400)
        (oneof
           [ int_range 0 15; int_range 0 2048; int_range 0 500_000;
             int_range 0 (1 lsl 28) ]))
  in
  QCheck.Test.make ~name:"metrics: quantile error <= bucket width" ~count:100
    (QCheck.make sample_gen) (fun samples ->
      with_metrics (fun () ->
          List.iter (Metrics.observe h_lat) samples;
          let snap = Metrics.Snapshot.take () in
          let h =
            match Metrics.Snapshot.histogram_value snap "chimera_test_lat_ns" with
            | Some h -> h
            | None -> QCheck.Test.fail_report "histogram missing from snapshot"
          in
          let sorted = List.sort compare samples in
          let n = List.length sorted in
          List.for_all
            (fun q ->
              let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
              let exact = List.nth sorted (rank - 1) in
              let est = Metrics.Snapshot.quantile h q in
              let b = Metrics.Buckets.index exact in
              let width = Metrics.Buckets.hi b - Metrics.Buckets.lo b in
              let err = Float.abs (est -. float_of_int exact) in
              if err > float_of_int width then
                QCheck.Test.fail_reportf
                  "q=%.3f over %d samples: estimate %.1f vs exact %d (err %.1f \
                   > bucket width %d)"
                  q n est exact err width
              else true)
            [ 0.1; 0.5; 0.9; 0.99; 0.999 ]))

(* --- -j 1 vs -j 4 merge --------------------------------------------------------- *)

(* The same work items recorded on 1 domain and sharded over 4 domains must
   merge to identical snapshots: counters are summed and histogram buckets
   added, both commutative. Mirrors test_obs's counter-merge test. *)
let work seed =
  let rng = Random.State.make [| seed |] in
  for _ = 1 to 200 do
    Metrics.add c_work (Random.State.int rng 50);
    Metrics.gauge_add g_level (Random.State.int rng 9 - 4);
    Metrics.observe h_lat (Random.State.int rng 1_000_000)
  done

let test_parallel_merge () =
  let seeds = List.init 8 (fun i -> 7000 + (137 * i)) in
  let snap_of run =
    Metrics.enable ();
    Metrics.reset ();
    run ();
    let s = Metrics.Snapshot.take () in
    Metrics.disable ();
    s
  in
  let seq = snap_of (fun () -> List.iter work seeds) in
  let par =
    snap_of (fun () ->
        let items = Array.of_list seeds in
        let next = Atomic.make 0 in
        let worker () =
          let rec go () =
            let i = Atomic.fetch_and_add next 1 in
            if i < Array.length items then begin
              work items.(i);
              go ()
            end
          in
          go ()
        in
        let doms = List.init 3 (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join doms)
  in
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " equal across -j")
        (Metrics.Snapshot.counter_value seq name)
        (Metrics.Snapshot.counter_value par name))
    [ "chimera_test_work_total" ];
  Alcotest.(check int) "gauge equal across -j"
    (Metrics.Snapshot.gauge_value seq "chimera_test_level")
    (Metrics.Snapshot.gauge_value par "chimera_test_level");
  let hist s =
    match Metrics.Snapshot.histogram_value s "chimera_test_lat_ns" with
    | Some h -> h
    | None -> Alcotest.fail "histogram missing"
  in
  let hs = hist seq and hp = hist par in
  Alcotest.(check int) "hist count" hs.Metrics.Snapshot.h_count
    hp.Metrics.Snapshot.h_count;
  Alcotest.(check int) "hist sum" hs.Metrics.Snapshot.h_sum
    hp.Metrics.Snapshot.h_sum;
  Alcotest.(check (list (triple int int int)))
    "hist buckets bucket-wise equal"
    (Metrics.Snapshot.buckets hs)
    (Metrics.Snapshot.buckets hp)

(* --- off is a no-op ------------------------------------------------------------- *)

let test_disabled_noop () =
  with_metrics (fun () ->
      Metrics.incr c_work;
      Metrics.observe h_lat 42);
  (* disabled now: emission-site discipline is [if !Metrics.enabled then ...],
     but the recording functions themselves must also be safe to call *)
  Alcotest.(check bool) "disabled" false !Metrics.enabled;
  let before = Metrics.Snapshot.take () in
  let v = Metrics.Snapshot.counter_value before "chimera_test_work_total" in
  if !Metrics.enabled then Metrics.incr c_work;
  let after = Metrics.Snapshot.take () in
  Alcotest.(check int) "guarded increment recorded nothing" v
    (Metrics.Snapshot.counter_value after "chimera_test_work_total")

(* --- registry ------------------------------------------------------------------- *)

let test_registry () =
  let again = Metrics.counter "chimera_test_work_total" in
  with_metrics (fun () ->
      Metrics.incr c_work;
      Metrics.incr again;
      let s = Metrics.Snapshot.take () in
      Alcotest.(check int) "same name, same counter" 2
        (Metrics.Snapshot.counter_value s "chimera_test_work_total"));
  (match Metrics.gauge "chimera_test_work_total" with
  | _ -> Alcotest.fail "kind clash must be rejected"
  | exception Invalid_argument _ -> ());
  (match Metrics.add c_work (-1) with
  | () -> Alcotest.fail "negative counter increment must be rejected"
  | exception Invalid_argument _ -> ());
  with_metrics (fun () ->
      (* negative samples clamp to the first bucket instead of raising:
         emission sites must never be able to crash the host *)
      Metrics.observe h_lat (-5);
      let s = Metrics.Snapshot.take () in
      match Metrics.Snapshot.histogram_value s "chimera_test_lat_ns" with
      | Some h -> (
          Alcotest.(check int) "clamped sample recorded" 1 h.Metrics.Snapshot.h_count;
          match Metrics.Snapshot.buckets h with
          | [ (lo, _, 1) ] -> Alcotest.(check int) "into bucket 0" 0 lo
          | bs -> Alcotest.failf "unexpected buckets (%d)" (List.length bs))
      | None -> Alcotest.fail "histogram missing")

(* --- snapshot delta -------------------------------------------------------------- *)

let test_delta () =
  with_metrics (fun () ->
      Metrics.add c_work 5;
      Metrics.observe h_lat 100;
      let prev = Metrics.Snapshot.take () in
      Metrics.add c_work 3;
      Metrics.observe h_lat 100;
      Metrics.observe h_lat 5000;
      let cur = Metrics.Snapshot.take () in
      let d = Metrics.Snapshot.delta ~cur ~prev in
      Alcotest.(check int) "counter delta" 3
        (Metrics.Snapshot.counter_value d "chimera_test_work_total");
      match Metrics.Snapshot.histogram_value d "chimera_test_lat_ns" with
      | Some h ->
          Alcotest.(check int) "hist count delta" 2 h.Metrics.Snapshot.h_count;
          Alcotest.(check int) "hist sum delta" 5100 h.Metrics.Snapshot.h_sum
      | None -> Alcotest.fail "histogram missing from delta")

(* --- exposition ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_exposition () =
  with_metrics (fun () ->
      Metrics.add c_work 7;
      Metrics.gauge_add g_level 3;
      Metrics.observe h_lat 100;
      Metrics.observe h_lat 200_000;
      let s = Metrics.Snapshot.take () in
      let prom = Metrics.Snapshot.to_prometheus s in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("prometheus has " ^ needle) true
            (contains prom needle))
        [ "# TYPE chimera_test_work_total counter";
          "chimera_test_work_total 7";
          "# TYPE chimera_test_level gauge";
          "chimera_test_level 3";
          "# TYPE chimera_test_lat_ns histogram";
          "chimera_test_lat_ns_count 2";
          "chimera_test_lat_ns_sum 200100";
          "le=\"+Inf\"" ];
      Alcotest.(check bool) "no health block without verdicts" false
        (contains prom "chimera_healthy");
      let j =
        Metrics.Snapshot.to_json
          ~health:
            [ { Metrics.v_rule = "r1"; v_ok = true; v_value = 1.0; v_detail = "ok" } ]
          s
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("json has " ^ needle) true (contains j needle))
        [ "\"counters\""; "\"chimera_test_work_total\": 7"; "\"gauges\"";
          "\"histograms\""; "\"p50\""; "\"p999\""; "\"health\""; "\"r1\"" ])

(* --- watchdog -------------------------------------------------------------------- *)

(* The default rules reference the runtime's canonical metric names; the
   registry hands back the same metrics the machine layers feed. *)
let m_retired = Metrics.counter "chimera_retired_total"
let m_dispatches = Metrics.counter "chimera_dispatches_total"
let m_tlb_hits = Metrics.counter "chimera_tlb_hits_total"
let m_tlb_misses = Metrics.counter "chimera_tlb_misses_total"
let m_rejects = Metrics.counter "chimera_cache_rejects_total"

let verdict_of name verdicts =
  match List.find_opt (fun v -> v.Metrics.v_rule = name) verdicts with
  | Some v -> v
  | None -> Alcotest.failf "rule %s missing from verdicts" name

let eval () =
  Metrics.Watchdog.evaluate ~prev:Metrics.Snapshot.empty
    ~cur:(Metrics.Snapshot.take ()) ()

let test_watchdog_healthy () =
  with_metrics (fun () ->
      Metrics.add m_retired 2_000_000;
      Metrics.add m_dispatches 40_000;
      Metrics.add m_tlb_hits 900_000;
      Metrics.add m_tlb_misses 100_000;
      let vs = eval () in
      Alcotest.(check bool) "all rules pass" true (Metrics.Watchdog.healthy vs);
      Alcotest.(check int) "one verdict per default rule"
        (List.length Metrics.Watchdog.default_rules)
        (List.length vs))

let test_watchdog_degraded () =
  with_metrics (fun () ->
      (* retired advanced with zero dispatches: the block engine stalled *)
      Metrics.add m_retired 2_000_000;
      (* TLB hit rate collapsed under a meaningful access count *)
      Metrics.add m_tlb_hits 10_000;
      Metrics.add m_tlb_misses 190_000;
      (* a burst of cache rejects *)
      Metrics.add m_rejects 1_000;
      let vs = eval () in
      Alcotest.(check bool) "degraded overall" false (Metrics.Watchdog.healthy vs);
      Alcotest.(check bool) "dispatch_stall fires" false
        (verdict_of "dispatch_stall" vs).Metrics.v_ok;
      Alcotest.(check bool) "tlb_collapse fires" false
        (verdict_of "tlb_collapse" vs).Metrics.v_ok;
      Alcotest.(check bool) "cache_reject_burst fires" false
        (verdict_of "cache_reject_burst" vs).Metrics.v_ok;
      List.iter
        (fun v ->
          if not v.Metrics.v_ok then
            Alcotest.(check bool) ("detail nonempty for " ^ v.Metrics.v_rule) true
              (String.length v.Metrics.v_detail > 0))
        vs)

let test_watchdog_floors () =
  with_metrics (fun () ->
      (* the same shapes below their activity floors must stay quiet:
         an idle process is healthy, not degraded *)
      Metrics.add m_retired 500_000;  (* < min_active *)
      Metrics.add m_tlb_hits 10;
      Metrics.add m_tlb_misses 190;  (* den < min_den *)
      let vs = eval () in
      Alcotest.(check bool) "idle process is healthy" true
        (Metrics.Watchdog.healthy vs));
  (* health events reach the Obs stream only when tracing is on *)
  let seen = ref [] in
  Obs.enable ~sink:(fun events len ->
      for k = 0 to len - 1 do
        match events.(k) with
        | Obs.Health_ok { rule } -> seen := ("ok:" ^ rule) :: !seen
        | Obs.Health_degraded { rule; _ } -> seen := ("bad:" ^ rule) :: !seen
        | _ -> ()
      done);
  Fun.protect ~finally:Obs.disable (fun () ->
      Metrics.enable ();
      Metrics.reset ();
      Fun.protect ~finally:Metrics.disable (fun () ->
          Metrics.add m_retired 2_000_000;
          ignore (eval ()));
      Obs.disable ());
  Alcotest.(check bool) "degraded rule emitted a typed event" true
    (List.mem "bad:dispatch_stall" !seen);
  Alcotest.(check bool) "passing rules emitted health_ok" true
    (List.exists (fun s -> String.length s > 3 && String.sub s 0 3 = "ok:") !seen)

let () =
  Alcotest.run "chimera_metrics"
    [ ("buckets",
       Alcotest.test_case "layout chains" `Quick test_bucket_layout
       :: List.map QCheck_alcotest.to_alcotest
            [ prop_index_in_own_bucket; prop_quantile_error_bounded ]);
      ("merge",
       [ Alcotest.test_case "-j 1 vs -j 4 snapshots identical" `Quick
           test_parallel_merge ]);
      ("registry",
       [ Alcotest.test_case "disabled recording is a no-op" `Quick
           test_disabled_noop;
         Alcotest.test_case "names, kinds, negative amounts" `Quick test_registry;
         Alcotest.test_case "snapshot delta" `Quick test_delta ]);
      ("exposition",
       [ Alcotest.test_case "prometheus + json carry the values" `Quick
           test_exposition ]);
      ("watchdog",
       [ Alcotest.test_case "healthy run passes every rule" `Quick
           test_watchdog_healthy;
         Alcotest.test_case "regressions fire their rules" `Quick
           test_watchdog_degraded;
         Alcotest.test_case "activity floors + obs events" `Quick
           test_watchdog_floors ]) ]
