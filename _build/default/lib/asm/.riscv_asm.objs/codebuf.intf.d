lib/asm/codebuf.mli: Ext Inst Reg
