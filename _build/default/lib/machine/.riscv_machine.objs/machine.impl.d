lib/machine/machine.ml: Array Bytes Costs Decode Encode Ext Fault Hashtbl Icache Inst Int64 List Memory Printf Reg
