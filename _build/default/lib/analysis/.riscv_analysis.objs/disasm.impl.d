lib/analysis/disasm.ml: Binfile Bytes Decode Format Hashtbl Inst List Queue Reg
