lib/baselines/multiverse.mli: Binfile Chbp Costs Counters Ext Machine Memory Safer
