
type t = {
  name : string;
  text : Codebuf.t;
  rodata : Codebuf.t;
  data : Codebuf.t;
  mutable funcs : (string * int) list;  (* name, text offset (reversed) *)
}

let create ?(name = "a.out") () =
  { name;
    text = Codebuf.create ();
    rodata = Codebuf.create ();
    data = Codebuf.create ();
    funcs = [] }

let inst t i = Codebuf.inst t.text i
let insts t is = Codebuf.insts t.text is
let label t l = Codebuf.label t.text l

let func t name =
  Codebuf.label t.text name;
  t.funcs <- (name, Codebuf.size t.text) :: t.funcs

let hidden_func t name = Codebuf.label t.text name
let here t = Codebuf.size t.text
let branch_to t c rs1 rs2 l = Codebuf.branch_l t.text c rs1 rs2 l
let jal_to t rd l = Codebuf.jal_l t.text rd l
let j t l = Codebuf.j_l t.text l
let call t l = Codebuf.jal_l t.text Reg.ra l

let call_far t ~scratch l =
  Codebuf.la_l t.text scratch l;
  Codebuf.inst t.text (Inst.Jalr (Reg.ra, scratch, 0))

let ret t = Codebuf.inst t.text (Inst.Jalr (Reg.x0, Reg.ra, 0))
let la t rd l = Codebuf.la_l t.text rd l
let lui_hi t rd l = Codebuf.lui_hi_l t.text rd l
let addi_lo t rd l = Codebuf.addi_lo_l t.text rd l
let load_lo t width ~rd ~base l = Codebuf.load_lo_l t.text width ~rd ~base l
let li t rd v = Codebuf.li t.text rd v
let cj_to t l = Codebuf.cj_l t.text l
let cbeqz_to t rs1 l = Codebuf.cbeqz_l t.text rs1 l
let cbnez_to t rs1 l = Codebuf.cbnez_l t.text rs1 l
let align4 t = if Codebuf.size t.text land 3 <> 0 then Codebuf.inst t.text Inst.C_nop
let dlabel t l = Codebuf.label t.data l
let dword64 t v = Codebuf.u64 t.data v
let dbyte t v = Codebuf.byte t.data v
let dword32 t v = Codebuf.u32 t.data v
let dspace t n = Codebuf.space t.data n
let rlabel t l = Codebuf.label t.rodata l
let rword64 t v = Codebuf.u64 t.rodata v
let rword_label t l = Codebuf.dword_label t.rodata l

let assemble ?(entry = "_start") t =
  let bases = [ (t.text, Layout.text_base); (t.rodata, Layout.rodata_base);
                (t.data, Layout.data_base) ] in
  let resolve name =
    List.find_map
      (fun (cb, base) ->
        if Codebuf.has_label cb name then Some (base + Codebuf.label_offset cb name)
        else None)
      bases
  in
  let link cb base = Codebuf.link cb ~base ~resolve in
  let text_bytes = link t.text Layout.text_base in
  let rodata_bytes = link t.rodata Layout.rodata_base in
  let data_bytes = link t.data Layout.data_base in
  let entry_addr =
    match resolve entry with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "Asm.assemble: no entry label %s" entry)
  in
  let text_size = Bytes.length text_bytes in
  let funcs = List.rev t.funcs in
  let rec sym_sizes = function
    | [] -> []
    | (name, off) :: rest ->
        let next = match rest with (_, off') :: _ -> off' | [] -> text_size in
        { Binfile.sym_name = name;
          sym_addr = Layout.text_base + off;
          sym_size = next - off }
        :: sym_sizes rest
  in
  let sections =
    List.filter_map
      (fun (name, bytes, addr, perm) ->
        if Bytes.length bytes = 0 && name <> ".data" then None
        else Some { Binfile.sec_name = name; sec_addr = addr; sec_data = bytes;
                    sec_perm = perm })
      [ (".text", text_bytes, Layout.text_base, Memory.perm_rx);
        (".rodata", rodata_bytes, Layout.rodata_base, Memory.perm_r);
        (* .data always exists (gp must point somewhere writable). *)
        ( ".data",
          (if Bytes.length data_bytes = 0 then Bytes.make 4096 '\000' else data_bytes),
          Layout.data_base, Memory.perm_rw ) ]
  in
  { Binfile.name = t.name;
    entry = entry_addr;
    gp_value = Layout.gp_value;
    isa =
      Ext.union (Codebuf.exts t.text)
        (Ext.union (Codebuf.exts t.rodata) (Codebuf.exts t.data));
    sections;
    symbols = sym_sizes (List.sort (fun (_, a) (_, b) -> compare a b) funcs) }
