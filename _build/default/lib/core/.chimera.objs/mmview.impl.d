lib/core/mmview.ml: Binfile Bytes Chimera_rt Chimera_system Costs Ext Inst Int64 Layout List Loader Machine Memory Reg String Vregs
