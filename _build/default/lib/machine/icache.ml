type t = {
  sets : int;
  line : int;
  tags : int array;  (* -1 = invalid *)
  mutable misses : int;
  mutable accesses : int;
}

let pow2 n = n > 0 && n land (n - 1) = 0

let create ?(sets = 512) ?(line = 64) () =
  if not (pow2 sets && pow2 line) then
    invalid_arg "Icache.create: sets and line must be powers of two";
  { sets; line; tags = Array.make sets (-1); misses = 0; accesses = 0 }

let access t addr =
  t.accesses <- t.accesses + 1;
  let lineno = addr / t.line in
  let set = lineno land (t.sets - 1) in
  if t.tags.(set) = lineno then true
  else begin
    t.tags.(set) <- lineno;
    t.misses <- t.misses + 1;
    false
  end

let misses t = t.misses
let accesses t = t.accesses
let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)
