type event =
  | Meta of { version : int }
  | Phase_begin of { name : string }
  | Phase_end of { name : string }
  | Tb_compile of { entry : int; body : int }
  | Tb_hit of { entry : int; body : int }
  | Tb_invalidate of { addr : int; len : int }
  | Tb_chain of { src : int; dst : int }
  | Tb_superblock of {
      entry : int;
      insts : int;
      pages : int;
      jumps : int;
      exits : int;
      fused : int;
    }
  | Tb_side_exit of { entry : int; target : int }
  | Tb_fuse of { pc : int; kind : string }
  | Tb_ir of {
      entry : int;
      units : int;
      folded : int;
      dead : int;
      pc_elided : int;
      tlb_elided : int;
      cached : int;
    }
  | Tier_promote of { entry : int; tier : int; hot : int }
  | Tb_recompile of { entry : int; hot : int; exits : int; relaid : int }
  | Ic_hit of { site : int; target : int }
  | Ic_miss of { site : int; target : int }
  | Ic_mega of { site : int; targets : int }
  | Tlb_flush of { addr : int; len : int }
  | Icache_burst of { addr : int; misses : int }
  | Fault_raised of { pc : int; cause : string }
  | Fault_recovered of { site : int; redirect : int; cause : string }
  | Trap_taken of { site : int; target : int }
  | Check_taken of { site : int; target : int }
  | Lazy_discovered of { root : int; patches : int }
  | Signal_delivered of { pc : int; gp_restored : bool }
  | Sched_steal of { core : int; cls : string; task : int }
  | Sched_migrate of { task : int; cycles : int }
  | Rw_site of { site : int; style : string }
  | Rw_exit of { site : int; kind : string }
  | Smile_write of { pc : int; target : int }
  | Table_add of { key : int; redirect : int; table : string }
  | Tb_profile of {
      entry : int;
      body : int;
      hits : int;
      retired : int;
      loads : int;
      stores : int;
      branches : int;
      alu : int;
      vector : int;
      compressed : int;
      penalty : int;
      tlb : int;
      icache : int;
      faults : int;
      recovered : int;
      traps : int;
    }
  | Cache_load of { key : string; entries : int; bytes : int }
  | Cache_store of { key : string; entries : int; bytes : int }
  | Cache_reject of { key : string; reason : string }
  | Health_ok of { rule : string }
  | Health_degraded of { rule : string; reason : string }
  | Serve_admit of { tenant : string; id : int }
  | Serve_done of { tenant : string; id : int; retired : int }
  | Serve_reject of { tenant : string; id : int; reason : string }

let schema_version = 8

(* Ring sink: a fixed array filled front-to-back; when full it is handed to
   the sink and refilled from index 0. "Ring" in the double-buffer-less
   sense — events never overwrite unflushed ones. *)

let ring_capacity = 4096
let dummy = Phase_begin { name = "" }
let ring = Array.make ring_capacity dummy
let ring_len = ref 0
let emitted = ref 0
let sink : (event array -> int -> unit) ref = ref (fun _ _ -> ())
let enabled = ref false

(* Events a bounded sink discarded (see [enable_memory]). A channel sink
   never drops, so a complete trace run reports 0 here — the trace-exit
   validator and bench [--json] surface the total either way, so loss is
   visible instead of silent. *)
let dropped = ref 0

let flush () =
  if !ring_len > 0 then begin
    !sink ring !ring_len;
    (* drop references so flushed events can be collected *)
    Array.fill ring 0 !ring_len dummy;
    ring_len := 0
  end

let emit ev =
  if !enabled then begin
    if !ring_len = ring_capacity then flush ();
    ring.(!ring_len) <- ev;
    incr ring_len;
    incr emitted
  end

let enable ~sink:s =
  sink := s;
  ring_len := 0;
  emitted := 0;
  dropped := 0;
  enabled := true;
  emit (Meta { version = schema_version })

let disable () =
  if !enabled then begin
    flush ();
    enabled := false;
    sink := (fun _ _ -> ())
  end

let events_emitted () = !emitted
let events_dropped () = !dropped

(* Bounded in-memory capture, for always-on use (the metrics CLI, a
   serving daemon's post-mortem buffer): keep only the most recent
   [capacity] events. When the buffer wraps, the overwritten events are
   counted in [dropped] rather than silently lost. *)

let mem_buf : event array ref = ref [||]
let mem_next = ref 0
let mem_count = ref 0

let memory_sink events len =
  let b = !mem_buf in
  let cap = Array.length b in
  if cap > 0 then
    for k = 0 to len - 1 do
      if !mem_count >= cap then incr dropped;
      b.(!mem_next) <- events.(k);
      mem_next := (!mem_next + 1) mod cap;
      incr mem_count
    done

let enable_memory ?(capacity = ring_capacity) () =
  if capacity < 1 then invalid_arg "Obs.enable_memory: capacity < 1";
  mem_buf := Array.make capacity dummy;
  mem_next := 0;
  mem_count := 0;
  enable ~sink:memory_sink

let recent () =
  if !enabled then flush ();
  let b = !mem_buf in
  let cap = Array.length b in
  if cap = 0 then []
  else begin
    let n = min !mem_count cap in
    let start = if !mem_count <= cap then 0 else !mem_next in
    List.init n (fun k -> b.((start + k) mod cap))
  end

module Json = struct
  (* The schema is flat: {"ev":"<kind>", <field>:<int|string|bool>, ...}.
     Strings are drawn from fixed enumerations (causes, styles, table
     names) plus free-form phase names, which the writer escapes. *)

  let buf = Buffer.create 128

  let esc s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_line ev =
    Buffer.clear buf;
    let obj kind fields =
      Buffer.add_string buf "{\"ev\":\"";
      Buffer.add_string buf kind;
      Buffer.add_char buf '"';
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf ",\"";
          Buffer.add_string buf k;
          Buffer.add_string buf "\":";
          Buffer.add_string buf v)
        fields;
      Buffer.add_char buf '}'
    in
    let i n = string_of_int n in
    let s v = "\"" ^ esc v ^ "\"" in
    let b v = if v then "true" else "false" in
    (match ev with
    | Meta { version } -> obj "meta" [ ("version", i version) ]
    | Phase_begin { name } -> obj "phase_begin" [ ("name", s name) ]
    | Phase_end { name } -> obj "phase_end" [ ("name", s name) ]
    | Tb_compile { entry; body } ->
        obj "tb_compile" [ ("entry", i entry); ("body", i body) ]
    | Tb_hit { entry; body } ->
        obj "tb_hit" [ ("entry", i entry); ("body", i body) ]
    | Tb_invalidate { addr; len } ->
        obj "tb_invalidate" [ ("addr", i addr); ("len", i len) ]
    | Tb_chain { src; dst } -> obj "tb_chain" [ ("src", i src); ("dst", i dst) ]
    | Tb_superblock { entry; insts; pages; jumps; exits; fused } ->
        obj "tb_superblock"
          [
            ("entry", i entry);
            ("insts", i insts);
            ("pages", i pages);
            ("jumps", i jumps);
            ("exits", i exits);
            ("fused", i fused);
          ]
    | Tb_side_exit { entry; target } ->
        obj "tb_side_exit" [ ("entry", i entry); ("target", i target) ]
    | Tb_fuse { pc; kind } -> obj "tb_fuse" [ ("pc", i pc); ("kind", s kind) ]
    | Tb_ir { entry; units; folded; dead; pc_elided; tlb_elided; cached } ->
        obj "tb_ir"
          [
            ("entry", i entry);
            ("units", i units);
            ("folded", i folded);
            ("dead", i dead);
            ("pc_elided", i pc_elided);
            ("tlb_elided", i tlb_elided);
            ("cached", i cached);
          ]
    | Tier_promote { entry; tier; hot } ->
        obj "tier_promote"
          [ ("entry", i entry); ("tier", i tier); ("hot", i hot) ]
    | Tb_recompile { entry; hot; exits; relaid } ->
        obj "tb_recompile"
          [
            ("entry", i entry);
            ("hot", i hot);
            ("exits", i exits);
            ("relaid", i relaid);
          ]
    | Ic_hit { site; target } ->
        obj "ic_hit" [ ("site", i site); ("target", i target) ]
    | Ic_miss { site; target } ->
        obj "ic_miss" [ ("site", i site); ("target", i target) ]
    | Ic_mega { site; targets } ->
        obj "ic_mega" [ ("site", i site); ("targets", i targets) ]
    | Tlb_flush { addr; len } ->
        obj "tlb_flush" [ ("addr", i addr); ("len", i len) ]
    | Icache_burst { addr; misses } ->
        obj "icache_burst" [ ("addr", i addr); ("misses", i misses) ]
    | Fault_raised { pc; cause } ->
        obj "fault_raised" [ ("pc", i pc); ("cause", s cause) ]
    | Fault_recovered { site; redirect; cause } ->
        obj "fault_recovered"
          [ ("site", i site); ("redirect", i redirect); ("cause", s cause) ]
    | Trap_taken { site; target } ->
        obj "trap_taken" [ ("site", i site); ("target", i target) ]
    | Check_taken { site; target } ->
        obj "check_taken" [ ("site", i site); ("target", i target) ]
    | Lazy_discovered { root; patches } ->
        obj "lazy_discovered" [ ("root", i root); ("patches", i patches) ]
    | Signal_delivered { pc; gp_restored } ->
        obj "signal_delivered" [ ("pc", i pc); ("gp_restored", b gp_restored) ]
    | Sched_steal { core; cls; task } ->
        obj "sched_steal" [ ("core", i core); ("cls", s cls); ("task", i task) ]
    | Sched_migrate { task; cycles } ->
        obj "sched_migrate" [ ("task", i task); ("cycles", i cycles) ]
    | Rw_site { site; style } ->
        obj "rw_site" [ ("site", i site); ("style", s style) ]
    | Rw_exit { site; kind } ->
        obj "rw_exit" [ ("site", i site); ("kind", s kind) ]
    | Smile_write { pc; target } ->
        obj "smile_write" [ ("pc", i pc); ("target", i target) ]
    | Table_add { key; redirect; table } ->
        obj "table_add"
          [ ("key", i key); ("redirect", i redirect); ("table", s table) ]
    | Tb_profile
        {
          entry;
          body;
          hits;
          retired;
          loads;
          stores;
          branches;
          alu;
          vector;
          compressed;
          penalty;
          tlb;
          icache;
          faults;
          recovered;
          traps;
        } ->
        obj "tb_profile"
          [
            ("entry", i entry);
            ("body", i body);
            ("hits", i hits);
            ("retired", i retired);
            ("loads", i loads);
            ("stores", i stores);
            ("branches", i branches);
            ("alu", i alu);
            ("vector", i vector);
            ("compressed", i compressed);
            ("penalty", i penalty);
            ("tlb", i tlb);
            ("icache", i icache);
            ("faults", i faults);
            ("recovered", i recovered);
            ("traps", i traps);
          ]
    | Cache_load { key; entries; bytes } ->
        obj "cache_load"
          [ ("key", s key); ("entries", i entries); ("bytes", i bytes) ]
    | Cache_store { key; entries; bytes } ->
        obj "cache_store"
          [ ("key", s key); ("entries", i entries); ("bytes", i bytes) ]
    | Cache_reject { key; reason } ->
        obj "cache_reject" [ ("key", s key); ("reason", s reason) ]
    | Health_ok { rule } -> obj "health_ok" [ ("rule", s rule) ]
    | Health_degraded { rule; reason } ->
        obj "health_degraded" [ ("rule", s rule); ("reason", s reason) ]
    | Serve_admit { tenant; id } ->
        obj "serve_admit" [ ("tenant", s tenant); ("id", i id) ]
    | Serve_done { tenant; id; retired } ->
        obj "serve_done"
          [ ("tenant", s tenant); ("id", i id); ("retired", i retired) ]
    | Serve_reject { tenant; id; reason } ->
        obj "serve_reject"
          [ ("tenant", s tenant); ("id", i id); ("reason", s reason) ]);
    Buffer.contents buf

  (* A strict recursive-descent parser for exactly the flat objects the
     writer produces (hand-rolled: the environment has no JSON library).
     Whitespace between tokens is tolerated so hand-edited traces load. *)

  type value = I of int | S of string | B of bool

  exception Bad

  let parse_fields line =
    let n = String.length line in
    let pos = ref 0 in
    let peek () = if !pos < n then line.[!pos] else raise Bad in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (peek () = ' ' || peek () = '\t') do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      if peek () <> c then raise Bad;
      advance ()
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        let c = peek () in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
            let e = peek () in
            advance ();
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'u' ->
                if !pos + 4 > n then raise Bad;
                let hex = String.sub line !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> raise Bad
                in
                if code > 0xff then raise Bad;
                Buffer.add_char b (Char.chr code)
            | _ -> raise Bad);
            go ()
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let value () =
      skip_ws ();
      match peek () with
      | '"' -> S (string_lit ())
      | 't' ->
          if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
            pos := !pos + 4;
            B true
          end
          else raise Bad
      | 'f' ->
          if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
            pos := !pos + 5;
            B false
          end
          else raise Bad
      | '-' | '0' .. '9' ->
          let start = !pos in
          if peek () = '-' then advance ();
          while !pos < n && peek () >= '0' && peek () <= '9' do
            advance ()
          done;
          if !pos = start then raise Bad;
          I (int_of_string (String.sub line start (!pos - start)))
      | _ -> raise Bad
    in
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = '}' then advance ()
    else begin
      let rec members () =
        let k = string_lit () in
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' -> advance (); skip_ws (); members ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then raise Bad;
    List.rev !fields

  let of_line line =
    match parse_fields line with
    | exception Bad -> None
    | exception _ -> None
    | ("ev", S kind) :: fields -> (
        let geti k = match List.assoc k fields with I v -> v | _ -> raise Bad in
        let gets k = match List.assoc k fields with S v -> v | _ -> raise Bad in
        let getb k = match List.assoc k fields with B v -> v | _ -> raise Bad in
        let arity n = if List.length fields <> n then raise Bad in
        match
          (match kind with
          | "meta" ->
              arity 1;
              let version = geti "version" in
              (* A trace written under another schema must not parse
                 silently: field meanings can differ between versions.
                 [read_file] turns this rejection into a clear error. *)
              if version <> schema_version then raise Bad;
              Meta { version }
          | "phase_begin" -> arity 1; Phase_begin { name = gets "name" }
          | "phase_end" -> arity 1; Phase_end { name = gets "name" }
          | "tb_compile" ->
              arity 2;
              Tb_compile { entry = geti "entry"; body = geti "body" }
          | "tb_hit" -> arity 2; Tb_hit { entry = geti "entry"; body = geti "body" }
          | "tb_invalidate" ->
              arity 2;
              Tb_invalidate { addr = geti "addr"; len = geti "len" }
          | "tb_chain" -> arity 2; Tb_chain { src = geti "src"; dst = geti "dst" }
          | "tb_superblock" ->
              arity 6;
              Tb_superblock
                {
                  entry = geti "entry";
                  insts = geti "insts";
                  pages = geti "pages";
                  jumps = geti "jumps";
                  exits = geti "exits";
                  fused = geti "fused";
                }
          | "tb_side_exit" ->
              arity 2;
              Tb_side_exit { entry = geti "entry"; target = geti "target" }
          | "tb_fuse" -> arity 2; Tb_fuse { pc = geti "pc"; kind = gets "kind" }
          | "tb_ir" ->
              arity 7;
              Tb_ir
                {
                  entry = geti "entry";
                  units = geti "units";
                  folded = geti "folded";
                  dead = geti "dead";
                  pc_elided = geti "pc_elided";
                  tlb_elided = geti "tlb_elided";
                  cached = geti "cached";
                }
          | "tier_promote" ->
              arity 3;
              Tier_promote
                { entry = geti "entry"; tier = geti "tier"; hot = geti "hot" }
          | "tb_recompile" ->
              arity 4;
              Tb_recompile
                {
                  entry = geti "entry";
                  hot = geti "hot";
                  exits = geti "exits";
                  relaid = geti "relaid";
                }
          | "ic_hit" ->
              arity 2;
              Ic_hit { site = geti "site"; target = geti "target" }
          | "ic_miss" ->
              arity 2;
              Ic_miss { site = geti "site"; target = geti "target" }
          | "ic_mega" ->
              arity 2;
              Ic_mega { site = geti "site"; targets = geti "targets" }
          | "tlb_flush" ->
              arity 2;
              Tlb_flush { addr = geti "addr"; len = geti "len" }
          | "icache_burst" ->
              arity 2;
              Icache_burst { addr = geti "addr"; misses = geti "misses" }
          | "fault_raised" ->
              arity 2;
              Fault_raised { pc = geti "pc"; cause = gets "cause" }
          | "fault_recovered" ->
              arity 3;
              Fault_recovered
                {
                  site = geti "site";
                  redirect = geti "redirect";
                  cause = gets "cause";
                }
          | "trap_taken" ->
              arity 2;
              Trap_taken { site = geti "site"; target = geti "target" }
          | "check_taken" ->
              arity 2;
              Check_taken { site = geti "site"; target = geti "target" }
          | "lazy_discovered" ->
              arity 2;
              Lazy_discovered { root = geti "root"; patches = geti "patches" }
          | "signal_delivered" ->
              arity 2;
              Signal_delivered
                { pc = geti "pc"; gp_restored = getb "gp_restored" }
          | "sched_steal" ->
              arity 3;
              Sched_steal
                { core = geti "core"; cls = gets "cls"; task = geti "task" }
          | "sched_migrate" ->
              arity 2;
              Sched_migrate { task = geti "task"; cycles = geti "cycles" }
          | "rw_site" ->
              arity 2;
              Rw_site { site = geti "site"; style = gets "style" }
          | "rw_exit" -> arity 2; Rw_exit { site = geti "site"; kind = gets "kind" }
          | "smile_write" ->
              arity 2;
              Smile_write { pc = geti "pc"; target = geti "target" }
          | "table_add" ->
              arity 3;
              Table_add
                {
                  key = geti "key";
                  redirect = geti "redirect";
                  table = gets "table";
                }
          | "tb_profile" ->
              arity 16;
              Tb_profile
                {
                  entry = geti "entry";
                  body = geti "body";
                  hits = geti "hits";
                  retired = geti "retired";
                  loads = geti "loads";
                  stores = geti "stores";
                  branches = geti "branches";
                  alu = geti "alu";
                  vector = geti "vector";
                  compressed = geti "compressed";
                  penalty = geti "penalty";
                  tlb = geti "tlb";
                  icache = geti "icache";
                  faults = geti "faults";
                  recovered = geti "recovered";
                  traps = geti "traps";
                }
          | "cache_load" ->
              arity 3;
              Cache_load
                { key = gets "key"; entries = geti "entries"; bytes = geti "bytes" }
          | "cache_store" ->
              arity 3;
              Cache_store
                { key = gets "key"; entries = geti "entries"; bytes = geti "bytes" }
          | "cache_reject" ->
              arity 2;
              Cache_reject { key = gets "key"; reason = gets "reason" }
          | "health_ok" ->
              arity 1;
              Health_ok { rule = gets "rule" }
          | "health_degraded" ->
              arity 2;
              Health_degraded { rule = gets "rule"; reason = gets "reason" }
          | "serve_admit" ->
              arity 2;
              Serve_admit { tenant = gets "tenant"; id = geti "id" }
          | "serve_done" ->
              arity 3;
              Serve_done
                { tenant = gets "tenant"; id = geti "id"; retired = geti "retired" }
          | "serve_reject" ->
              arity 3;
              Serve_reject
                { tenant = gets "tenant"; id = geti "id"; reason = gets "reason" }
          | _ -> raise Bad)
        with
        | ev -> Some ev
        | exception Bad -> None
        | exception Not_found -> None)
    | _ -> None

  let channel_sink oc events len =
    for k = 0 to len - 1 do
      output_string oc (to_line events.(k));
      output_char oc '\n'
    done

  (* Distinguish "syntactically fine meta line under another schema" from
     generic corruption, so stale traces get an actionable error. *)
  let stale_meta_version line =
    match parse_fields line with
    | exception _ -> None
    | [ ("ev", S "meta"); ("version", I v) ] when v <> schema_version -> Some v
    | _ -> None

  let read_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> (
              match of_line line with
              | Some ev -> go (lineno + 1) (ev :: acc)
              | None -> (
                  match stale_meta_version line with
                  | Some v ->
                      failwith
                        (Printf.sprintf
                           "%s:%d: trace schema version %d, this build reads \
                            version %d — regenerate the trace"
                           path lineno v schema_version)
                  | None ->
                      failwith
                        (Printf.sprintf "%s:%d: malformed trace line: %s" path
                           lineno line)))
        in
        go 1 [])
end

module Agg = struct
  type totals = {
    mutable faults_raised : int;
    mutable faults_recovered : int;
    mutable traps : int;
    mutable checks : int;
    mutable lazies : int;
    mutable tb_compiles : int;
    mutable tb_hits : int;
    mutable tb_invalidations : int;
    mutable tb_chains : int;
    mutable tb_superblocks : int;
    mutable tb_cross_page : int;
    mutable tb_side_exits : int;
    mutable tb_fused : int;
    mutable tb_ir_blocks : int;
    mutable tb_ir_units : int;
    mutable ir_folded : int;
    mutable ir_dead : int;
    mutable ir_pc_elided : int;
    mutable ir_tlb_elided : int;
    mutable ir_cached : int;
    mutable tlb_flushes : int;
    mutable icache_bursts : int;
    mutable steals : int;
    mutable migrations : int;
    mutable signals : int;
    mutable tier_promotions : int;
    mutable recompiles : int;
    mutable ic_hits : int;
    mutable ic_misses : int;
    mutable ic_megamorphic : int;
    mutable cache_loads : int;
    mutable cache_stores : int;
    mutable cache_rejects : int;
    mutable health_ok : int;
    mutable health_degraded : int;
    mutable serve_admits : int;
    mutable serve_dones : int;
    mutable serve_rejects : int;
  }

  type t = {
    tot : totals;
    sites : (int, int ref) Hashtbl.t;
    mutable bodies : int list;
    mutable profiles : event list;  (* Tb_profile events, reverse order *)
  }

  let create () =
    {
      tot =
        {
          faults_raised = 0;
          faults_recovered = 0;
          traps = 0;
          checks = 0;
          lazies = 0;
          tb_compiles = 0;
          tb_hits = 0;
          tb_invalidations = 0;
          tb_chains = 0;
          tb_superblocks = 0;
          tb_cross_page = 0;
          tb_side_exits = 0;
          tb_fused = 0;
          tb_ir_blocks = 0;
          tb_ir_units = 0;
          ir_folded = 0;
          ir_dead = 0;
          ir_pc_elided = 0;
          ir_tlb_elided = 0;
          ir_cached = 0;
          tlb_flushes = 0;
          icache_bursts = 0;
          steals = 0;
          migrations = 0;
          signals = 0;
          tier_promotions = 0;
          recompiles = 0;
          ic_hits = 0;
          ic_misses = 0;
          ic_megamorphic = 0;
          cache_loads = 0;
          cache_stores = 0;
          cache_rejects = 0;
          health_ok = 0;
          health_degraded = 0;
          serve_admits = 0;
          serve_dones = 0;
          serve_rejects = 0;
        };
      sites = Hashtbl.create 64;
      bodies = [];
      profiles = [];
    }

  let site t s =
    match Hashtbl.find_opt t.sites s with
    | Some r -> incr r
    | None -> Hashtbl.add t.sites s (ref 1)

  let observe t ev =
    let g = t.tot in
    match ev with
    | Meta _ | Phase_begin _ | Phase_end _ | Rw_site _ | Rw_exit _
    | Smile_write _ | Table_add _ | Tb_fuse _ ->
        ()
    | Tb_superblock { pages; fused; _ } ->
        g.tb_superblocks <- g.tb_superblocks + 1;
        if pages > 1 then g.tb_cross_page <- g.tb_cross_page + 1;
        g.tb_fused <- g.tb_fused + fused
    | Tb_side_exit _ -> g.tb_side_exits <- g.tb_side_exits + 1
    | Tier_promote _ -> g.tier_promotions <- g.tier_promotions + 1
    | Tb_recompile _ -> g.recompiles <- g.recompiles + 1
    | Ic_hit _ -> g.ic_hits <- g.ic_hits + 1
    | Ic_miss _ -> g.ic_misses <- g.ic_misses + 1
    | Ic_mega _ -> g.ic_megamorphic <- g.ic_megamorphic + 1
    | Tb_ir { units; folded; dead; pc_elided; tlb_elided; cached; _ } ->
        g.tb_ir_blocks <- g.tb_ir_blocks + 1;
        g.tb_ir_units <- g.tb_ir_units + units;
        g.ir_folded <- g.ir_folded + folded;
        g.ir_dead <- g.ir_dead + dead;
        g.ir_pc_elided <- g.ir_pc_elided + pc_elided;
        g.ir_tlb_elided <- g.ir_tlb_elided + tlb_elided;
        g.ir_cached <- g.ir_cached + cached
    | Tb_compile { body; _ } ->
        g.tb_compiles <- g.tb_compiles + 1;
        t.bodies <- body :: t.bodies
    | Tb_hit _ -> g.tb_hits <- g.tb_hits + 1
    | Tb_invalidate _ -> g.tb_invalidations <- g.tb_invalidations + 1
    | Tb_chain _ -> g.tb_chains <- g.tb_chains + 1
    | Tlb_flush _ -> g.tlb_flushes <- g.tlb_flushes + 1
    | Icache_burst _ -> g.icache_bursts <- g.icache_bursts + 1
    | Fault_raised _ -> g.faults_raised <- g.faults_raised + 1
    | Fault_recovered { site = s; _ } ->
        g.faults_recovered <- g.faults_recovered + 1;
        site t s
    | Trap_taken { site = s; _ } ->
        g.traps <- g.traps + 1;
        site t s
    | Check_taken { site = s; _ } ->
        g.checks <- g.checks + 1;
        site t s
    | Lazy_discovered _ -> g.lazies <- g.lazies + 1
    | Signal_delivered _ -> g.signals <- g.signals + 1
    | Sched_steal _ -> g.steals <- g.steals + 1
    | Sched_migrate _ -> g.migrations <- g.migrations + 1
    | Cache_load _ -> g.cache_loads <- g.cache_loads + 1
    | Cache_store _ -> g.cache_stores <- g.cache_stores + 1
    | Cache_reject _ -> g.cache_rejects <- g.cache_rejects + 1
    | Health_ok _ -> g.health_ok <- g.health_ok + 1
    | Health_degraded _ -> g.health_degraded <- g.health_degraded + 1
    | Serve_admit _ -> g.serve_admits <- g.serve_admits + 1
    | Serve_done _ -> g.serve_dones <- g.serve_dones + 1
    | Serve_reject _ -> g.serve_rejects <- g.serve_rejects + 1
    | Tb_profile _ -> t.profiles <- ev :: t.profiles

  let totals t = t.tot
  let profile_events t = List.rev t.profiles

  let correctness_events t =
    t.tot.faults_recovered + t.tot.traps + t.tot.checks

  let per_site t =
    Hashtbl.fold (fun s r acc -> (s, !r) :: acc) t.sites []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let tb_body_histogram t =
    let b1 = ref 0 and b2 = ref 0 and b3 = ref 0 and b4 = ref 0 in
    List.iter
      (fun n ->
        if n <= 8 then incr b1
        else if n <= 32 then incr b2
        else if n <= 128 then incr b3
        else incr b4)
      t.bodies;
    [ ("1-8", !b1); ("9-32", !b2); ("33-128", !b3); ("129+", !b4) ]
end
