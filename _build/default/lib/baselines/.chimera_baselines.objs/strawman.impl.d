lib/baselines/strawman.ml: Chbp
