lib/rewriter/translate.ml: Codebuf Inst List Printf Reg Regmask Scavenge Vregs
