let sext v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let fits_signed v bits = sext (v land ((1 lsl bits) - 1)) bits = v

let hi20 v =
  let h = (v + 0x800) asr 12 in
  sext (h land 0xFFFFF) 20

let lo12 v = v - (hi20 v lsl 12)

let check_signed what v bits =
  if not (fits_signed v bits) then
    invalid_arg (Printf.sprintf "Encode: %s immediate %d out of %d-bit range" what v bits)

let check_even what v =
  if v land 1 <> 0 then
    invalid_arg (Printf.sprintf "Encode: %s offset %d is odd" what v)

let bit v i = (v lsr i) land 1
let bits v lo hi = (v lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let r = Reg.to_int
let v = Reg.v_to_int

(* Compressed 3-bit register field: x8..x15. *)
let rc what reg =
  let n = Reg.to_int reg in
  if n < 8 || n > 15 then
    invalid_arg (Printf.sprintf "Encode: %s register %s not in x8..x15" what (Reg.name reg));
  n - 8

let itype ~opcode ~funct3 ~rd ~rs1 ~imm =
  check_signed "I-type" imm 12;
  ((imm land 0xFFF) lsl 20) lor (r rs1 lsl 15) lor (funct3 lsl 12)
  lor (r rd lsl 7) lor opcode

let rtype ~opcode ~funct7 ~funct3 ~rd ~rs1 ~rs2 =
  (funct7 lsl 25) lor (r rs2 lsl 20) lor (r rs1 lsl 15) lor (funct3 lsl 12)
  lor (r rd lsl 7) lor opcode

let utype ~opcode ~rd ~imm20 =
  check_signed "U-type" imm20 20;
  ((imm20 land 0xFFFFF) lsl 12) lor (r rd lsl 7) lor opcode

let stype ~funct3 ~rs1 ~rs2 ~imm =
  check_signed "S-type" imm 12;
  (bits imm 5 11 lsl 25) lor (r rs2 lsl 20) lor (r rs1 lsl 15)
  lor (funct3 lsl 12) lor (bits imm 0 4 lsl 7) lor 0b0100011

let btype ~funct3 ~rs1 ~rs2 ~off =
  check_signed "branch" off 13;
  check_even "branch" off;
  (bit off 12 lsl 31) lor (bits off 5 10 lsl 25) lor (r rs2 lsl 20)
  lor (r rs1 lsl 15) lor (funct3 lsl 12) lor (bits off 1 4 lsl 8)
  lor (bit off 11 lsl 7) lor 0b1100011

let jtype ~rd ~off =
  check_signed "jal" off 21;
  check_even "jal" off;
  (bit off 20 lsl 31) lor (bits off 1 10 lsl 21) lor (bit off 11 lsl 20)
  lor (bits off 12 19 lsl 12) lor (r rd lsl 7) lor 0b1101111

let branch_funct3 = function
  | Inst.Beq -> 0b000 | Inst.Bne -> 0b001 | Inst.Blt -> 0b100
  | Inst.Bge -> 0b101 | Inst.Bltu -> 0b110 | Inst.Bgeu -> 0b111

let load_funct3 ~unsigned = function
  | Inst.B -> if unsigned then 0b100 else 0b000
  | Inst.H -> if unsigned then 0b101 else 0b001
  | Inst.W -> if unsigned then 0b110 else 0b010
  | Inst.D ->
      if unsigned then invalid_arg "Encode: ldu does not exist" else 0b011

let store_funct3 = function
  | Inst.B -> 0b000 | Inst.H -> 0b001 | Inst.W -> 0b010 | Inst.D -> 0b011

(* funct7, funct3, opcode for each R-type ALU op. *)
let alu_fields = function
  | Inst.Add -> (0b0000000, 0b000, 0b0110011)
  | Inst.Sub -> (0b0100000, 0b000, 0b0110011)
  | Inst.Sll -> (0b0000000, 0b001, 0b0110011)
  | Inst.Slt -> (0b0000000, 0b010, 0b0110011)
  | Inst.Sltu -> (0b0000000, 0b011, 0b0110011)
  | Inst.Xor -> (0b0000000, 0b100, 0b0110011)
  | Inst.Srl -> (0b0000000, 0b101, 0b0110011)
  | Inst.Sra -> (0b0100000, 0b101, 0b0110011)
  | Inst.Or -> (0b0000000, 0b110, 0b0110011)
  | Inst.And -> (0b0000000, 0b111, 0b0110011)
  | Inst.Mul -> (0b0000001, 0b000, 0b0110011)
  | Inst.Mulh -> (0b0000001, 0b001, 0b0110011)
  | Inst.Div -> (0b0000001, 0b100, 0b0110011)
  | Inst.Divu -> (0b0000001, 0b101, 0b0110011)
  | Inst.Rem -> (0b0000001, 0b110, 0b0110011)
  | Inst.Remu -> (0b0000001, 0b111, 0b0110011)
  | Inst.Addw -> (0b0000000, 0b000, 0b0111011)
  | Inst.Subw -> (0b0100000, 0b000, 0b0111011)
  | Inst.Sllw -> (0b0000000, 0b001, 0b0111011)
  | Inst.Srlw -> (0b0000000, 0b101, 0b0111011)
  | Inst.Sraw -> (0b0100000, 0b101, 0b0111011)
  | Inst.Mulw -> (0b0000001, 0b000, 0b0111011)
  | Inst.Divw -> (0b0000001, 0b100, 0b0111011)
  | Inst.Remw -> (0b0000001, 0b110, 0b0111011)
  | Inst.Sh1add -> (0b0010000, 0b010, 0b0110011)
  | Inst.Sh2add -> (0b0010000, 0b100, 0b0110011)
  | Inst.Sh3add -> (0b0010000, 0b110, 0b0110011)
  | Inst.Andn -> (0b0100000, 0b111, 0b0110011)
  | Inst.Orn -> (0b0100000, 0b110, 0b0110011)
  | Inst.Xnor -> (0b0100000, 0b100, 0b0110011)
  | Inst.Min -> (0b0000101, 0b100, 0b0110011)
  | Inst.Max -> (0b0000101, 0b110, 0b0110011)
  | Inst.Minu -> (0b0000101, 0b101, 0b0110011)
  | Inst.Maxu -> (0b0000101, 0b111, 0b0110011)

let check_shamt what sh max =
  if sh < 0 || sh > max then
    invalid_arg (Printf.sprintf "Encode: %s shamt %d out of range" what sh)

let alui ~op ~rd ~rs1 ~imm =
  let i ~opcode ~funct3 = itype ~opcode ~funct3 ~rd ~rs1 ~imm in
  match op with
  | Inst.Addi -> i ~opcode:0b0010011 ~funct3:0b000
  | Inst.Slti -> i ~opcode:0b0010011 ~funct3:0b010
  | Inst.Sltiu -> i ~opcode:0b0010011 ~funct3:0b011
  | Inst.Xori -> i ~opcode:0b0010011 ~funct3:0b100
  | Inst.Ori -> i ~opcode:0b0010011 ~funct3:0b110
  | Inst.Andi -> i ~opcode:0b0010011 ~funct3:0b111
  | Inst.Slli ->
      check_shamt "slli" imm 63;
      itype ~opcode:0b0010011 ~funct3:0b001 ~rd ~rs1 ~imm
  | Inst.Srli ->
      check_shamt "srli" imm 63;
      itype ~opcode:0b0010011 ~funct3:0b101 ~rd ~rs1 ~imm
  | Inst.Srai ->
      check_shamt "srai" imm 63;
      itype ~opcode:0b0010011 ~funct3:0b101 ~rd ~rs1 ~imm:(imm lor 0x400)
  | Inst.Addiw -> i ~opcode:0b0011011 ~funct3:0b000
  | Inst.Slliw ->
      check_shamt "slliw" imm 31;
      itype ~opcode:0b0011011 ~funct3:0b001 ~rd ~rs1 ~imm
  | Inst.Srliw ->
      check_shamt "srliw" imm 31;
      itype ~opcode:0b0011011 ~funct3:0b101 ~rd ~rs1 ~imm
  | Inst.Sraiw ->
      check_shamt "sraiw" imm 31;
      itype ~opcode:0b0011011 ~funct3:0b101 ~rd ~rs1 ~imm:(imm lor 0x400)

let sew_code = function Inst.E8 -> 0 | Inst.E16 -> 1 | Inst.E32 -> 2 | Inst.E64 -> 3

let mem_width_bits = function
  | Inst.E8 -> 0b000 | Inst.E16 -> 0b101 | Inst.E32 -> 0b110 | Inst.E64 -> 0b111

(* OP-V: funct6 | vm=1 | vs2 | vs1/rs1 | funct3 | vd | 1010111 *)
let opv ~funct6 ~vs2 ~s1 ~funct3 ~vd =
  (funct6 lsl 26) lor (1 lsl 25) lor (vs2 lsl 20) lor (s1 lsl 15)
  lor (funct3 lsl 12) lor (vd lsl 7) lor 0b1010111

let vop_funct6 = function
  | Inst.Vadd -> 0b000000 | Inst.Vsub -> 0b000010
  | Inst.Vmul -> 0b100101 | Inst.Vmacc -> 0b101101

(* OPIVV/OPIVX for add/sub, OPMVV/OPMVX for mul/macc. *)
let vop_funct3_vv = function
  | Inst.Vadd | Inst.Vsub -> 0b000
  | Inst.Vmul | Inst.Vmacc -> 0b010

let vop_funct3_vx = function
  | Inst.Vadd | Inst.Vsub -> 0b100
  | Inst.Vmul | Inst.Vmacc -> 0b110

let check_c_imm what imm bits =
  if not (fits_signed imm bits) then
    invalid_arg (Printf.sprintf "Encode: %s immediate %d out of %d-bit range" what imm bits)

let c1 ~funct3 ~b12 ~rd ~low5 =
  (funct3 lsl 13) lor (b12 lsl 12) lor (rd lsl 7) lor (low5 lsl 2) lor 0b01

let encode inst =
  match inst with
  | Inst.Lui (rd, imm20) -> utype ~opcode:0b0110111 ~rd ~imm20
  | Inst.Auipc (rd, imm20) -> utype ~opcode:0b0010111 ~rd ~imm20
  | Inst.Jal (rd, off) -> jtype ~rd ~off
  | Inst.Jalr (rd, rs1, imm) -> itype ~opcode:0b1100111 ~funct3:0b000 ~rd ~rs1 ~imm
  | Inst.Branch (c, rs1, rs2, off) -> btype ~funct3:(branch_funct3 c) ~rs1 ~rs2 ~off
  | Inst.Load { width; unsigned; rd; rs1; imm } ->
      itype ~opcode:0b0000011 ~funct3:(load_funct3 ~unsigned width) ~rd ~rs1 ~imm
  | Inst.Store { width; rs2; rs1; imm } ->
      stype ~funct3:(store_funct3 width) ~rs1 ~rs2 ~imm
  | Inst.Op (op, rd, rs1, rs2) ->
      let funct7, funct3, opcode = alu_fields op in
      rtype ~opcode ~funct7 ~funct3 ~rd ~rs1 ~rs2
  | Inst.Opi (op, rd, rs1, imm) -> alui ~op ~rd ~rs1 ~imm
  | Inst.Ecall -> 0b1110011
  | Inst.Ebreak -> (1 lsl 20) lor 0b1110011
  | Inst.C_nop -> 0x0001
  | Inst.C_ebreak -> 0x9002
  | Inst.C_addi (rd, imm) ->
      if Reg.equal rd Reg.x0 then invalid_arg "Encode: c.addi rd=x0";
      check_c_imm "c.addi" imm 6;
      c1 ~funct3:0b000 ~b12:(bit imm 5) ~rd:(r rd) ~low5:(bits imm 0 4)
  | Inst.C_li (rd, imm) ->
      if Reg.equal rd Reg.x0 then invalid_arg "Encode: c.li rd=x0";
      check_c_imm "c.li" imm 6;
      c1 ~funct3:0b010 ~b12:(bit imm 5) ~rd:(r rd) ~low5:(bits imm 0 4)
  | Inst.C_mv (rd, rs2) ->
      if Reg.equal rd Reg.x0 || Reg.equal rs2 Reg.x0 then
        invalid_arg "Encode: c.mv with x0";
      (0b100 lsl 13) lor (r rd lsl 7) lor (r rs2 lsl 2) lor 0b10
  | Inst.C_add (rd, rs2) ->
      if Reg.equal rd Reg.x0 || Reg.equal rs2 Reg.x0 then
        invalid_arg "Encode: c.add with x0";
      (0b100 lsl 13) lor (1 lsl 12) lor (r rd lsl 7) lor (r rs2 lsl 2) lor 0b10
  | Inst.C_j off ->
      check_c_imm "c.j" off 12;
      check_even "c.j" off;
      (0b101 lsl 13)
      lor (bit off 11 lsl 12) lor (bit off 4 lsl 11) lor (bits off 8 9 lsl 9)
      lor (bit off 10 lsl 8) lor (bit off 6 lsl 7) lor (bit off 7 lsl 6)
      lor (bits off 1 3 lsl 3) lor (bit off 5 lsl 2) lor 0b01
  | Inst.C_jr rs1 ->
      if Reg.equal rs1 Reg.x0 then invalid_arg "Encode: c.jr rs1=x0";
      (0b100 lsl 13) lor (r rs1 lsl 7) lor 0b10
  | Inst.C_jalr rs1 ->
      if Reg.equal rs1 Reg.x0 then invalid_arg "Encode: c.jalr rs1=x0";
      (0b100 lsl 13) lor (1 lsl 12) lor (r rs1 lsl 7) lor 0b10
  | Inst.C_beqz (rs1, off) ->
      check_c_imm "c.beqz" off 9;
      check_even "c.beqz" off;
      (0b110 lsl 13)
      lor (bit off 8 lsl 12) lor (bits off 3 4 lsl 10) lor (rc "c.beqz" rs1 lsl 7)
      lor (bits off 6 7 lsl 5) lor (bits off 1 2 lsl 3) lor (bit off 5 lsl 2)
      lor 0b01
  | Inst.C_bnez (rs1, off) ->
      check_c_imm "c.bnez" off 9;
      check_even "c.bnez" off;
      (0b111 lsl 13)
      lor (bit off 8 lsl 12) lor (bits off 3 4 lsl 10) lor (rc "c.bnez" rs1 lsl 7)
      lor (bits off 6 7 lsl 5) lor (bits off 1 2 lsl 3) lor (bit off 5 lsl 2)
      lor 0b01
  | Inst.C_lw (rd, rs1, uimm) ->
      if uimm < 0 || uimm > 124 || uimm land 3 <> 0 then
        invalid_arg (Printf.sprintf "Encode: c.lw uimm %d" uimm);
      (0b010 lsl 13)
      lor (bits uimm 3 5 lsl 10) lor (rc "c.lw" rs1 lsl 7)
      lor (bit uimm 2 lsl 6) lor (bit uimm 6 lsl 5) lor (rc "c.lw" rd lsl 2) lor 0b00
  | Inst.C_sw (rs2, rs1, uimm) ->
      if uimm < 0 || uimm > 124 || uimm land 3 <> 0 then
        invalid_arg (Printf.sprintf "Encode: c.sw uimm %d" uimm);
      (0b110 lsl 13)
      lor (bits uimm 3 5 lsl 10) lor (rc "c.sw" rs1 lsl 7)
      lor (bit uimm 2 lsl 6) lor (bit uimm 6 lsl 5) lor (rc "c.sw" rs2 lsl 2) lor 0b00
  | Inst.C_lui (rd, imm) ->
      if Reg.equal rd Reg.x0 || Reg.equal rd Reg.sp then invalid_arg "Encode: c.lui rd";
      if imm = 0 then invalid_arg "Encode: c.lui imm=0";
      check_c_imm "c.lui" imm 6;
      c1 ~funct3:0b011 ~b12:(bit imm 5) ~rd:(r rd) ~low5:(bits imm 0 4)
  | Inst.C_addiw (rd, imm) ->
      if Reg.equal rd Reg.x0 then invalid_arg "Encode: c.addiw rd=x0";
      check_c_imm "c.addiw" imm 6;
      c1 ~funct3:0b001 ~b12:(bit imm 5) ~rd:(r rd) ~low5:(bits imm 0 4)
  | Inst.C_andi (rd, imm) ->
      check_c_imm "c.andi" imm 6;
      (0b100 lsl 13) lor (bit imm 5 lsl 12) lor (0b10 lsl 10)
      lor (rc "c.andi" rd lsl 7) lor (bits imm 0 4 lsl 2) lor 0b01
  | Inst.C_alu (op, rd, rs2) ->
      let b12, f2 =
        match op with
        | Inst.Csub -> (0, 0b00) | Inst.Cxor -> (0, 0b01)
        | Inst.Cor -> (0, 0b10) | Inst.Cand -> (0, 0b11)
        | Inst.Csubw -> (1, 0b00) | Inst.Caddw -> (1, 0b01)
      in
      (0b100 lsl 13) lor (b12 lsl 12) lor (0b11 lsl 10)
      lor (rc "c.alu" rd lsl 7) lor (f2 lsl 5) lor (rc "c.alu" rs2 lsl 2) lor 0b01
  | Inst.C_ld (rd, rs1, uimm) ->
      if uimm < 0 || uimm > 248 || uimm land 7 <> 0 then
        invalid_arg (Printf.sprintf "Encode: c.ld uimm %d" uimm);
      (0b011 lsl 13)
      lor (bits uimm 3 5 lsl 10) lor (rc "c.ld" rs1 lsl 7)
      lor (bits uimm 6 7 lsl 5) lor (rc "c.ld" rd lsl 2) lor 0b00
  | Inst.C_sd (rs2, rs1, uimm) ->
      if uimm < 0 || uimm > 248 || uimm land 7 <> 0 then
        invalid_arg (Printf.sprintf "Encode: c.sd uimm %d" uimm);
      (0b111 lsl 13)
      lor (bits uimm 3 5 lsl 10) lor (rc "c.sd" rs1 lsl 7)
      lor (bits uimm 6 7 lsl 5) lor (rc "c.sd" rs2 lsl 2) lor 0b00
  | Inst.C_slli (rd, sh) ->
      if Reg.equal rd Reg.x0 then invalid_arg "Encode: c.slli rd=x0";
      check_shamt "c.slli" sh 63;
      if sh = 0 then invalid_arg "Encode: c.slli shamt=0";
      (0b000 lsl 13) lor (bit sh 5 lsl 12) lor (r rd lsl 7) lor (bits sh 0 4 lsl 2)
      lor 0b10
  | Inst.Vsetvli (rd, rs1, sew) ->
      let vtypei = sew_code sew lsl 3 in
      (vtypei lsl 20) lor (r rs1 lsl 15) lor (0b111 lsl 12) lor (r rd lsl 7)
      lor 0b1010111
  | Inst.Vle (sew, vd, rs1) ->
      (1 lsl 25) lor (r rs1 lsl 15) lor (mem_width_bits sew lsl 12)
      lor (v vd lsl 7) lor 0b0000111
  | Inst.Vlse (sew, vd, rs1, rs2) ->
      (* mop = 10 (strided), vm = 1, rs2 carries the byte stride *)
      (1 lsl 27) lor (1 lsl 25) lor (r rs2 lsl 20) lor (r rs1 lsl 15)
      lor (mem_width_bits sew lsl 12) lor (v vd lsl 7) lor 0b0000111
  | Inst.Vse (sew, vs3, rs1) ->
      (1 lsl 25) lor (r rs1 lsl 15) lor (mem_width_bits sew lsl 12)
      lor (v vs3 lsl 7) lor 0b0100111
  | Inst.Vsse (sew, vs3, rs1, rs2) ->
      (1 lsl 27) lor (1 lsl 25) lor (r rs2 lsl 20) lor (r rs1 lsl 15)
      lor (mem_width_bits sew lsl 12) lor (v vs3 lsl 7) lor 0b0100111
  | Inst.Vop_vv (op, vd, vs2, vs1) ->
      opv ~funct6:(vop_funct6 op) ~vs2:(v vs2) ~s1:(v vs1)
        ~funct3:(vop_funct3_vv op) ~vd:(v vd)
  | Inst.Vop_vx (op, vd, vs2, rs1) ->
      opv ~funct6:(vop_funct6 op) ~vs2:(v vs2) ~s1:(r rs1)
        ~funct3:(vop_funct3_vx op) ~vd:(v vd)
  | Inst.Vmv_v_x (vd, rs1) ->
      opv ~funct6:0b010111 ~vs2:0 ~s1:(r rs1) ~funct3:0b100 ~vd:(v vd)
  | Inst.Vmv_x_s (rd, vs2) ->
      opv ~funct6:0b010000 ~vs2:(v vs2) ~s1:0 ~funct3:0b010 ~vd:(r rd)
  | Inst.Vredsum (vd, vs2, vs1) ->
      opv ~funct6:0b000000 ~vs2:(v vs2) ~s1:(v vs1) ~funct3:0b010 ~vd:(v vd)
  | Inst.Xcheck_jalr (rd, rs1, imm) ->
      itype ~opcode:0b0001011 ~funct3:0b000 ~rd ~rs1 ~imm
  | Inst.P_add16 (rd, rs1, rs2) ->
      rtype ~opcode:0b0101011 ~funct7:0 ~funct3:0b000 ~rd ~rs1 ~rs2
  | Inst.P_smaqa (rd, rs1, rs2) ->
      rtype ~opcode:0b0101011 ~funct7:0 ~funct3:0b001 ~rd ~rs1 ~rs2

let write buf off inst =
  let w = encode inst in
  let n = Inst.size inst in
  Bytes.set_uint8 buf off (w land 0xFF);
  Bytes.set_uint8 buf (off + 1) ((w lsr 8) land 0xFF);
  if n = 4 then begin
    Bytes.set_uint8 buf (off + 2) ((w lsr 16) land 0xFF);
    Bytes.set_uint8 buf (off + 3) ((w lsr 24) land 0xFF)
  end;
  n
