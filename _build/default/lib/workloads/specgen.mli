(** Synthetic SPEC CPU2017-like binaries (paper §6.2–6.3, Fig. 13,
    Tables 2–3).

    SPEC CPU2017 compiled with RVV auto-vectorization is not available in
    this environment, so each benchmark is replaced by a seeded synthetic
    binary whose *rewriting-relevant statistics* are taken from the paper's
    Table 3: code-section size (scaled down by {!scale}), the share of
    extension instructions, the density of indirect control flow
    (interpreter/OOP-style benchmarks like perlbench and omnetpp dispatch
    through jump tables constantly; HPC codes like cactuBSSN barely do),
    the register pressure around vector sites (what drives exit-position
    shifting), the amount of code hidden from static disassembly, and how
    hot the vector regions run (cam4/pop2/wrf execute their rewritten sites
    far more often than gcc — the paper's Table 2 strawman column).

    Every generated binary computes a deterministic checksum, so original
    and rewritten runs are compared exactly (the §6.3 correctness oracle). *)

type profile = {
  sp_name : string;
  sp_code_kb : int;  (** target text size in KiB (paper MB ÷ {!scale}) *)
  sp_ext_pct : float;  (** extension instructions / all instructions *)
  sp_ind_weight : int;
      (** jump-table dispatches executed per driver round (indirect-flow
          heat: perlbench ≫ cactuBSSN) *)
  sp_vec_heat : int;
      (** how many times each driver round enters vector regions (the
          strawman/trap-cost driver: cam4/pop2/wrf high, gcc low) *)
  sp_pressure : float;
      (** fraction of vector sites placed in high-register-pressure
          context (immediately before indirect flow), where plain liveness
          cannot find an exit register *)
  sp_hidden : float;  (** fraction of functions invisible to disassembly *)
  sp_compressed : bool;  (** binary uses the C extension *)
  sp_rounds : int;  (** driver iterations (dynamic instruction volume) *)
  sp_plain : int;
      (** plain scalar functions called per round — dilutes the special
          flows to the benchmark's real densities (interpreters are
          indirect-dense, HPC codes are not) *)
  sp_victim_period : int;
      (** one erroneous (original-valid, mid-strip) indirect entry every
          [sp_victim_period] driver rounds — the odd-entry rate, shaped
          from the paper's Table 2 CHBP trigger counts (power of two) *)
  sp_seed : int;
}

val scale : int
(** Code sizes (and the ARMore jump reach) are divided by this factor
    (64) relative to the paper's hardware. *)

val spec_profiles : profile list
(** The 18 SPEC CPU2017 rows of the paper's Tables 2–3. *)

val realworld_profiles : profile list
(** Git, Vim, GIMP, CMake, CTest, Python, Libopenblas. *)

val find : string -> profile
(** @raise Not_found *)

val build : profile -> Binfile.t
(** Deterministic: same profile, same binary. *)

val armore_jal_range : int
(** The scaled ±1 MiB reach for ARMore on these binaries. *)
