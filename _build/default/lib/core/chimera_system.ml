type prepared = Native | Rewritten of Chimera_rt.t

type t = {
  orig : Binfile.t;
  costs : Costs.t;
  per_class : (Ext.t * prepared) list;
}

let prepare ~costs ~upgrade bin cls =
  if Ext.subset bin.Binfile.isa cls then
    if
      upgrade
      && Ext.mem Ext.V cls
      && not (Ext.mem Ext.V bin.Binfile.isa)
    then
      (* the class offers the vector extension the binary does not use:
         try upgrading; fall back to native if nothing was vectorizable *)
      let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Upgrade) bin in
      if (Chbp.stats ctx).Chbp.sites > 0 then Rewritten (Chimera_rt.create ~costs ctx)
      else Native
    else Native
  else
    let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
    Rewritten (Chimera_rt.create ~costs ctx)

let deploy ?(costs = Costs.default) ?(upgrade = true) bin ~cores =
  let classes = List.sort_uniq compare cores in
  { orig = bin;
    costs;
    per_class = List.map (fun c -> (c, prepare ~costs ~upgrade bin c)) classes }

let original t = t.orig
let classes t = List.map fst t.per_class

let prepared_for t cls =
  match List.assoc_opt cls t.per_class with
  | Some p -> p
  | None -> raise Not_found

let binary_for t cls =
  match prepared_for t cls with
  | Native -> t.orig
  | Rewritten rt -> Chimera_rt.rewritten rt

let run t ~isa ~fuel =
  match prepared_for t isa with
  | Native ->
      let mem = Loader.load t.orig in
      let m = Machine.create ~costs:t.costs ~mem ~isa () in
      Loader.init_machine m t.orig;
      (Machine.run ~fuel m, m)
  | Rewritten rt ->
      let m = Machine.create ~costs:t.costs ~mem:(Chimera_rt.load rt) ~isa () in
      (Chimera_rt.run rt ~fuel m, m)

let counters t =
  let acc = Counters.create () in
  List.iter
    (fun (_, p) ->
      match p with
      | Native -> ()
      | Rewritten rt -> Counters.add acc (Chimera_rt.counters rt))
    t.per_class;
  acc

let rewrite_stats t =
  List.filter_map
    (fun (cls, p) ->
      match p with
      | Native -> None
      | Rewritten rt -> Some (cls, Chbp.stats (Chimera_rt.chbp rt)))
    t.per_class
