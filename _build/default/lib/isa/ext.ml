type ext = C | V | B | P | X

let ext_name = function C -> "c" | V -> "v" | B -> "b" | P -> "p" | X -> "x"
let pp_ext fmt e = Format.pp_print_string fmt (ext_name e)
let ext_bit = function C -> 1 | V -> 2 | B -> 4 | P -> 16 | X -> 8

type t = int

let of_list exts = List.fold_left (fun acc e -> acc lor ext_bit e) 0 exts
let mem e set = set land ext_bit e <> 0

let to_list set =
  List.filter (fun e -> mem e set) [ C; V; B; P; X ]

let subset a b = a land lnot b = 0
let union a b = a lor b
let equal (a : t) (b : t) = a = b
let base = 0
let rv64gc = of_list [ C ]
let rv64gcv = of_list [ C; V ]
let all = of_list [ C; V; B; P; X ]

let required i =
  if Inst.is_vector i then Some V
  else if Inst.is_compressed i then Some C
  else if Inst.is_bitmanip i then Some B
  else if Inst.is_packed_simd i then Some P
  else match i with Inst.Xcheck_jalr _ -> Some X | _ -> None

let supports caps i =
  match required i with None -> true | Some e -> mem e caps

let name set =
  "rv64im" ^ String.concat "" (List.map ext_name (to_list set))

let pp fmt set = Format.pp_print_string fmt (name set)
