lib/rewriter/vregs.ml: Binfile Bytes Memory Reg
