type t = { cfg : Cfg.t; live_out : (int, Regmask.t) Hashtbl.t }

let insn_uses (i : Disasm.insn) =
  match Disasm.flow_of i with
  | Disasm.Call _ | Disasm.Indirect_call ->
      (* the callee may read its arguments, plus the target register *)
      Regmask.union Regmask.arg_regs (Regmask.of_list (Inst.uses i.inst))
  | Disasm.Fallthrough | Disasm.Branch _ | Disasm.Jump _ | Disasm.Indirect_jump
  | Disasm.Ret | Disasm.Syscall | Disasm.Halt ->
      Regmask.of_list (Inst.uses i.inst)

let insn_defs (i : Disasm.insn) =
  match Disasm.flow_of i with
  | Disasm.Call _ | Disasm.Indirect_call ->
      (* the callee may clobber every caller-saved register *)
      Regmask.union Regmask.caller_saved (Regmask.of_list (Inst.defs i.inst))
  | Disasm.Fallthrough | Disasm.Branch _ | Disasm.Jump _ | Disasm.Indirect_jump
  | Disasm.Ret | Disasm.Syscall | Disasm.Halt ->
      Regmask.of_list (Inst.defs i.inst)

(* At a return the ABI pins the caller-visible state: the return values,
   the stack pointer and the callee-saved registers; every caller-saved
   scratch is dead. *)
let abi_return_live =
  Regmask.of_list
    ([ Reg.a0; Reg.a1; Reg.sp; Reg.gp; Reg.tp; Reg.ra ] @ Reg.callee_saved)

(* Transfer of one instruction: live_in = uses ∪ (live_out \ defs). *)
let transfer i live = Regmask.union (insn_uses i) (Regmask.diff live (insn_defs i))

let block_transfer (b : Cfg.block) live_out =
  List.fold_left (fun live i -> transfer i live) live_out (List.rev b.Cfg.b_insns)

let initial_live_out (b : Cfg.block) =
  List.fold_left
    (fun acc s ->
      match s with
      | Cfg.Sunknown -> Regmask.all
      | Cfg.Sreturn -> Regmask.union acc abi_return_live
      | Cfg.Sblock _ -> acc)
    Regmask.empty b.Cfg.b_succs

let compute cfg =
  let blocks = Cfg.blocks cfg in
  let live_out = Hashtbl.create (List.length blocks * 2) in
  let live_in = Hashtbl.create (List.length blocks * 2) in
  List.iter
    (fun (b : Cfg.block) ->
      Hashtbl.replace live_out b.Cfg.b_addr (initial_live_out b);
      Hashtbl.replace live_in b.Cfg.b_addr Regmask.empty)
    blocks;
  let get tbl a = Option.value ~default:Regmask.empty (Hashtbl.find_opt tbl a) in
  (* Backward worklist fixpoint. *)
  let work = Queue.create () in
  let queued = Hashtbl.create 1024 in
  let enqueue a =
    if not (Hashtbl.mem queued a) then begin
      Hashtbl.replace queued a ();
      Queue.add a work
    end
  in
  List.iter (fun (b : Cfg.block) -> enqueue b.Cfg.b_addr) (List.rev blocks);
  while not (Queue.is_empty work) do
    let a = Queue.pop work in
    Hashtbl.remove queued a;
    match Cfg.block_at cfg a with
    | None -> ()
    | Some b ->
        let out =
          List.fold_left
            (fun acc s ->
              match s with
              | Cfg.Sunknown -> Regmask.all
              | Cfg.Sreturn -> Regmask.union acc abi_return_live
              | Cfg.Sblock s' -> Regmask.union acc (get live_in s'))
            (initial_live_out b) b.Cfg.b_succs
        in
        Hashtbl.replace live_out a out;
        let inn = block_transfer b out in
        if inn <> get live_in a then begin
          Hashtbl.replace live_in a inn;
          List.iter enqueue (Cfg.preds cfg a)
        end
  done;
  { cfg; live_out }

let live_out t addr =
  match Hashtbl.find_opt t.live_out addr with
  | Some m -> m
  | None -> raise Not_found

let live_in_at t addr =
  match Cfg.block_containing t.cfg addr with
  | None -> None
  | Some b ->
      let out = Option.value ~default:Regmask.all (Hashtbl.find_opt t.live_out b.Cfg.b_addr) in
      (* walk backward from the block end to the queried instruction *)
      let rec backward insns live =
        match insns with
        | [] -> None
        | (i : Disasm.insn) :: rest ->
            let live' = transfer i live in
            if i.addr = addr then Some live' else backward rest live'
      in
      backward (List.rev b.Cfg.b_insns) out

let never_clobber = Regmask.of_list [ Reg.x0; Reg.sp; Reg.gp; Reg.tp ]

let dead_regs_at t ?(avoid = []) addr =
  match live_in_at t addr with
  | None -> []
  | Some live ->
      let banned = Regmask.union never_clobber (Regmask.union live (Regmask.of_list avoid)) in
      List.filter (fun r -> not (Regmask.mem r banned))
        (Reg.temporaries @ [ Reg.ra; Reg.a7; Reg.a6; Reg.a5; Reg.a4; Reg.a3; Reg.a2;
                             Reg.a1; Reg.a0; Reg.s11; Reg.s10; Reg.s9; Reg.s8 ])

let dead_at t ?(avoid = []) addr =
  match live_in_at t addr with
  | None -> None
  | Some live ->
      let banned = Regmask.union never_clobber (Regmask.union live (Regmask.of_list avoid)) in
      let candidates = Reg.temporaries @ [ Reg.ra; Reg.a7; Reg.a6; Reg.a5; Reg.a4 ] in
      List.find_opt (fun r -> not (Regmask.mem r banned)) candidates
