lib/analysis/liveness.ml: Cfg Disasm Hashtbl Inst List Option Queue Reg Regmask
