lib/analysis/regmask.mli: Format Reg
