(** CHBP: Correct and High-performance Binary Patching (paper §4).

    Given an original binary and a direction (downgrade extension
    instructions to base code, upgrade scalar idioms to extension code, or
    empty-patch for measurement), CHBP:

    + disassembles recursively and recovers CFG + liveness;
    + generates target instructions for every source instruction
      (translation templates, scavenged registers, simulated vector state);
    + patches each source site with a SMILE trampoline — batching all source
      instructions of a basic block behind the first site's trampoline —
      at congruence-admissible target addresses;
    + selects exit registers by liveness, then by exit-position shifting
      (copying subsequent instructions, merging blocks when the shift
      crosses a terminator), falling back to trap-based exits;
    + records every overwritten instruction in the fault-handling table and
      every trap site in the trap table.

    The same machinery runs at runtime for lazy rewriting: {!extend} rewrites
    code discovered by an illegal-instruction fault and returns the memory
    patches to apply. *)

type mode = Downgrade | Upgrade | Empty

type options = {
  mode : mode;
  batch : bool;  (** batch sources per basic block (paper's optimization) *)
  static_sew : bool;  (** specialize templates on an in-region [vsetvli] *)
  style : [ `Smile | `Trap ];
      (** [`Trap] replaces every entry and exit trampoline with a trap-based
          one — the paper's strawman binary-patching baseline. *)
  spill_all : bool;
      (** Ablation: ignore liveness when scavenging translation scratch
          registers — every temporary is saved/restored on the stack. *)
  use_gp : bool;
      (** When false, model an ISA without a gp-like register (paper
          Fig. 5): entry trampolines are built over a preceding
          [lui rd, hi; load rd2, lo(rd)] static-data access, using [rd] as
          the trampoline register — partial execution jumps to the data
          segment [rd] pointed at. Sites without such a sequence (and all
          sites of compressed binaries) fall back to trap trampolines, as
          the paper notes. Batching is disabled in this mode. *)
}

val default_options : mode -> options

type stats = {
  mutable source_insts : int;
  mutable sites : int;  (** SMILE trampolines written *)
  mutable trap_entries : int;  (** entry trampolines that fell back to traps *)
  mutable odd_entry_traps : int;
      (** resident traps over in-place sources bypassed by normal flow
          (general-register mode), catching hidden indirect entries *)
  mutable batches : int;
  mutable exits : int;
  mutable exit_liveness : int;  (** dead register found by liveness alone *)
  mutable exit_shift : int;  (** found after shifting the exit position *)
  mutable exit_terminator : int;  (** resolved by copying the terminator *)
  mutable exit_trap : int;  (** trap-based exit fallback *)
  mutable table_entries : int;
  mutable target_bytes : int;
  mutable lazy_sites : int;  (** sites rewritten at runtime via {!extend} *)
}

val pp_stats : Format.formatter -> stats -> unit

type t

val rewrite : ?options:options -> Binfile.t -> t
(** Run the static pipeline over every disassembly root. *)

val result : t -> Binfile.t
(** The rewritten binary: patched code sections, [.chimera.text.*] target
    sections, and (for downgrades) the [.chimera.vregs] section. *)

val fault_table : t -> Fault_table.t

val trap_table : t -> Fault_table.t

val greg_sites : t -> (int * Reg.t) list
(** General-register SMILE sites ([use_gp = false]): the address of each
    trampoline's [jalr] and the register that carries its link value — the
    runtime needs both to attribute a partial-execution segfault. *)

val stats : t -> stats
val original : t -> Binfile.t
val gp_value : t -> int

type patch =
  | Patch_code of { addr : int; bytes : bytes }
      (** Overwrite existing code (trampoline insertion). *)
  | Patch_section of { addr : int; bytes : bytes }
      (** Map new executable pages (target instructions). *)

val extend : t -> root:int -> patch list
(** Lazy rewriting (paper §4.1/§4.3): disassemble from a faulting address
    that static analysis missed, rewrite the newly found source
    instructions, extend the fault/trap tables in place, and return the
    patches the runtime must apply to the loaded image. *)
