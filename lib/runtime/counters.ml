type site = {
  mutable s_faults : int;
  mutable s_traps : int;
  mutable s_checks : int;
  mutable s_lazy : int;
}

type t = {
  mutable faults_recovered : int;
  mutable traps : int;
  mutable checks : int;
  mutable lazy_rewrites : int;
  mutable migrations : int;
  mutable signals : int;
  sites : (int, site) Hashtbl.t;
}

let create () =
  { faults_recovered = 0; traps = 0; checks = 0; lazy_rewrites = 0;
    migrations = 0; signals = 0; sites = Hashtbl.create 16 }

let site_of t pc =
  match Hashtbl.find_opt t.sites pc with
  | Some s -> s
  | None ->
      let s = { s_faults = 0; s_traps = 0; s_checks = 0; s_lazy = 0 } in
      Hashtbl.add t.sites pc s;
      s

let fault_at t ~site =
  t.faults_recovered <- t.faults_recovered + 1;
  let s = site_of t site in
  s.s_faults <- s.s_faults + 1

let trap_at t ~site =
  t.traps <- t.traps + 1;
  let s = site_of t site in
  s.s_traps <- s.s_traps + 1

let check_at t ~site =
  t.checks <- t.checks + 1;
  let s = site_of t site in
  s.s_checks <- s.s_checks + 1

let lazy_at t ~site =
  t.lazy_rewrites <- t.lazy_rewrites + 1;
  let s = site_of t site in
  s.s_lazy <- s.s_lazy + 1

let site_events s = s.s_faults + s.s_traps + s.s_checks

let per_site t =
  Hashtbl.fold (fun pc s acc -> (pc, s) :: acc) t.sites []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_correctness_events t = t.faults_recovered + t.traps + t.checks

let add acc src =
  acc.faults_recovered <- acc.faults_recovered + src.faults_recovered;
  acc.traps <- acc.traps + src.traps;
  acc.checks <- acc.checks + src.checks;
  acc.lazy_rewrites <- acc.lazy_rewrites + src.lazy_rewrites;
  acc.migrations <- acc.migrations + src.migrations;
  acc.signals <- acc.signals + src.signals;
  Hashtbl.iter
    (fun pc s ->
      let d = site_of acc pc in
      d.s_faults <- d.s_faults + s.s_faults;
      d.s_traps <- d.s_traps + s.s_traps;
      d.s_checks <- d.s_checks + s.s_checks;
      d.s_lazy <- d.s_lazy + s.s_lazy)
    src.sites

let pp fmt t =
  Format.fprintf fmt
    "{faults=%d; traps=%d; checks=%d; lazy=%d; migrations=%d; signals=%d}"
    t.faults_recovered t.traps t.checks t.lazy_rewrites t.migrations t.signals
