(* Guest-level profiler:

   - class_code unit coverage (priority, compressed/call/ret bits);
   - engine equivalence: the profiler's totals (retired and the per-class
     sums) are bit-identical between the single-step and translation-block
     engines, on the differential-fuzzing corpus (which exercises lazy
     rewriting -> invalidate_code and chain severing) and across a warm-TLB
     permission downgrade with a mid-block fault;
   - exactness: the profiler's retired total equals the machine's own
     retirement counter;
   - events round-trip: to_events -> snaps_of_events preserves snapshots,
     and the offline report rendered from events is byte-identical to the
     live one;
   - the regression gate passes against an identical baseline and fails on
     a doctored one, with per-metric reasons. *)

let base_isa = Ext.rv64gc
let ext_isa = Ext.rv64gcv

(* --- instruction classes ------------------------------------------------------ *)

let test_class_code () =
  let c = Profile.class_code in
  let cls x = x land 7 in
  Alcotest.(check int) "add is alu" Profile.cls_alu
    (cls (c (Inst.Op (Inst.Add, Reg.t0, Reg.t1, Reg.t2))));
  Alcotest.(check int) "ld is load" Profile.cls_load
    (cls (c (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.t1; imm = 0 })));
  Alcotest.(check int) "sd is store" Profile.cls_store
    (cls (c (Inst.Store { width = Inst.D; rs2 = Reg.t0; rs1 = Reg.t1; imm = 0 })));
  Alcotest.(check int) "bne is branch" Profile.cls_branch
    (cls (c (Inst.Branch (Inst.Bne, Reg.t0, Reg.t1, 8))));
  Alcotest.(check int) "jal is branch class" Profile.cls_branch
    (cls (c (Inst.Jal (Reg.ra, 8))));
  Alcotest.(check bool) "jal ra is a call" true (Profile.is_call (c (Inst.Jal (Reg.ra, 8))));
  Alcotest.(check bool) "jal x0 is not a call" false
    (Profile.is_call (c (Inst.Jal (Reg.x0, 8))));
  Alcotest.(check bool) "jalr x0, ra is a ret" true
    (Profile.is_ret (c (Inst.Jalr (Reg.x0, Reg.ra, 0))));
  Alcotest.(check bool) "negative class codes are never calls" false
    (Profile.is_call (-1))

(* --- engine equivalence on the fuzz corpus ------------------------------------ *)

let fuzz_profile seed =
  let rng = Random.State.make [| seed |] in
  { Specgen.sp_name = Printf.sprintf "fuzz%d" seed;
    sp_code_kb = 8 + Random.State.int rng 10;
    sp_ext_pct = 0.005 +. Random.State.float rng 0.04;
    sp_ind_weight = 1 + Random.State.int rng 6;
    sp_vec_heat = 1 + Random.State.int rng 4;
    sp_pressure = Random.State.float rng 0.8;
    sp_hidden = Random.State.float rng 0.1;
    sp_compressed = Random.State.bool rng;
    sp_rounds = 40 + Random.State.int rng 60;
    sp_plain = 2 + Random.State.int rng 8;
    sp_victim_period = 1 lsl Random.State.int rng 5;
    sp_seed = seed }

(* The totals both engines must agree on exactly. Per-block rows are not
   compared: the step engine keys rows by dynamically detected leaders,
   which legitimately differ from static block entries around mid-block
   re-entry. TLB/icache attribution is engine-specific by design (the block
   engine fetches each instruction once, at compile time). *)
type totals = {
  t_retired : int;
  t_loads : int;
  t_stores : int;
  t_branches : int;
  t_alu : int;
  t_vector : int;
  t_compressed : int;
  t_faults : int;
  t_recovered : int;
  t_traps : int;
}

let totals_of snaps =
  let sum f = List.fold_left (fun a s -> a + f s) 0 snaps in
  { t_retired = sum (fun s -> s.Profile.s_retired);
    t_loads = sum (fun s -> s.Profile.s_loads);
    t_stores = sum (fun s -> s.Profile.s_stores);
    t_branches = sum (fun s -> s.Profile.s_branches);
    t_alu = sum (fun s -> s.Profile.s_alu);
    t_vector = sum (fun s -> s.Profile.s_vector);
    t_compressed = sum (fun s -> s.Profile.s_compressed);
    t_faults = sum (fun s -> s.Profile.s_faults);
    t_recovered = sum (fun s -> s.Profile.s_recovered);
    t_traps = sum (fun s -> s.Profile.s_traps) }

let pp_totals t =
  Printf.sprintf "ret=%d l=%d s=%d b=%d a=%d v=%d c=%d flt=%d rec=%d trap=%d"
    t.t_retired t.t_loads t.t_stores t.t_branches t.t_alu t.t_vector
    t.t_compressed t.t_faults t.t_recovered t.t_traps

(* Run the CHBP-downgraded binary under the runtime with a profiler attached:
   lazy rewriting patches code mid-run (invalidate_code severs cached blocks
   and chain links under the profiler's feet). *)
let profile_chimera ~engine ?(chain = true) seed =
  let bin = Specgen.build (fuzz_profile seed) in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let p = Profile.create () in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  Machine.set_profile m (Some p);
  Machine.set_block_engine m engine;
  Machine.set_block_chaining m chain;
  ignore (Chimera_rt.run rt ~fuel:50_000_000 m);
  (Machine.retired m, Profile.snapshot p)

let prop_engine_equivalence =
  QCheck.Test.make
    ~name:"profiler: totals bit-identical across engines (incl. lazy rewriting)"
    ~count:8
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let sret, ssnaps = profile_chimera ~engine:false seed in
      let bret, bsnaps = profile_chimera ~engine:true seed in
      let uret, usnaps = profile_chimera ~engine:true ~chain:false seed in
      let st = totals_of ssnaps
      and bt = totals_of bsnaps
      and ut = totals_of usnaps in
      if st.t_retired <> sret then
        QCheck.Test.fail_reportf "seed %d: step profiler %d <> machine %d" seed
          st.t_retired sret
      else if bt.t_retired <> bret then
        QCheck.Test.fail_reportf "seed %d: block profiler %d <> machine %d" seed
          bt.t_retired bret
      else if st <> bt then
        QCheck.Test.fail_reportf "seed %d: step { %s } <> block { %s }" seed
          (pp_totals st) (pp_totals bt)
      else if st <> ut then
        QCheck.Test.fail_reportf "seed %d: step { %s } <> unchained { %s }" seed
          (pp_totals st) (pp_totals ut)
      else (uret : int) = sret)

(* --- warm-TLB permission downgrade -------------------------------------------- *)

(* A store loop warms the data TLB and the block cache; mid-run the page is
   downgraded to read-only, so the next store faults in the middle of an
   already-hot block (a partial dispatch). Both engines must attribute the
   same per-class counts and exactly one fault. An invalidate_code over the
   loop in the pause also forces recompilation and severs chain links. *)
let downgrade_program () =
  let a = Asm.create ~name:"tlbdown" () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "buf";
  Asm.li a Reg.a1 4096;
  Asm.label a "L";
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.a1; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "L";
  Asm.li a Reg.a0 0;
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "buf";
  Asm.dword64 a 0L;
  Asm.assemble a

let string_of_stop = function
  | Machine.Exited c -> Printf.sprintf "exit %d" c
  | Machine.Faulted f -> "fault " ^ Fault.to_string f
  | Machine.Fuel_exhausted -> "fuel"

let profile_downgrade ~engine () =
  let bin = downgrade_program () in
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:base_isa () in
  Machine.set_block_engine m engine;
  let p = Profile.create () in
  Machine.set_profile m (Some p);
  Loader.init_machine m bin;
  (* warm up: a few hundred loop iterations, stopped mid-stream by fuel *)
  (match Machine.run ~fuel:1000 m with
  | Machine.Fuel_exhausted -> ()
  | s -> Alcotest.failf "warm-up ended early (%s)" (string_of_stop s));
  (* sever any cached blocks/chains over the loop, then pull write permission
     from the warm data page *)
  Machine.invalidate_code m ~addr:0x10000 ~len:4096;
  let buf_page =
    (* the store target: find it from a0, which still points at buf *)
    Machine.get_reg m Reg.a0 |> Int64.to_int |> fun a -> a land lnot (Memory.page_size - 1)
  in
  Memory.set_perm mem ~addr:buf_page ~len:Memory.page_size Memory.perm_r;
  (match Machine.run ~fuel:1000 m with
  | Machine.Faulted _ -> ()
  | s -> Alcotest.failf "expected a fault (%s)" (string_of_stop s));
  (Machine.retired m, Profile.snapshot p)

let test_warm_tlb_downgrade () =
  let sret, ssnaps = profile_downgrade ~engine:false () in
  let bret, bsnaps = profile_downgrade ~engine:true () in
  let st = totals_of ssnaps and bt = totals_of bsnaps in
  Alcotest.(check int) "machines retired equally" sret bret;
  Alcotest.(check int) "step profiler exact" sret st.t_retired;
  Alcotest.(check int) "block profiler exact" bret bt.t_retired;
  Alcotest.(check bool)
    (Printf.sprintf "totals identical (step %s / block %s)" (pp_totals st)
       (pp_totals bt))
    true (st = bt);
  Alcotest.(check int) "exactly one fault attributed" 1 bt.t_faults;
  Alcotest.(check bool) "stores were classified" true (bt.t_stores > 0)

(* --- events round-trip and offline report ------------------------------------- *)

let matmul_profile () =
  let bin = Programs.matmul ~name:"prof-mm" `Ext ~n:8 in
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:ext_isa () in
  let p = Profile.create () in
  Machine.set_profile m (Some p);
  Loader.init_machine m bin;
  (match Machine.run ~fuel:10_000_000 m with
  | Machine.Exited _ -> ()
  | s -> Alcotest.failf "matmul did not exit (%s)" (string_of_stop s));
  (bin, Machine.retired m, p)

let test_events_roundtrip () =
  let _, retired, p = matmul_profile () in
  let snaps = Profile.snapshot p in
  Alcotest.(check int) "profiler exact" retired (Profile.total_retired p);
  let back = Profile.snaps_of_events (Profile.to_events p) in
  Alcotest.(check bool) "snaps survive the event round-trip" true (snaps = back);
  (* and through the JSONL codec *)
  let lines = List.map Obs.Json.to_line (Profile.to_events p) in
  let parsed =
    List.map
      (fun l ->
        match Obs.Json.of_line l with
        | Some ev -> ev
        | None -> Alcotest.failf "unparseable profile line: %s" l)
      lines
  in
  Alcotest.(check bool) "snaps survive the JSONL round-trip" true
    (snaps = Profile.snaps_of_events parsed)

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let render_to_string ?disasm snaps =
  let f = Filename.temp_file "prof_report" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove f)
    (fun () ->
      let oc = open_out f in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Prof_report.render ?disasm oc snaps);
      read_file f)

let test_offline_report_identical () =
  let bin, _, p = matmul_profile () in
  let disasm = Disasm.of_binfile bin in
  let live = render_to_string ~disasm (Profile.snapshot p) in
  let offline =
    (* what 'chimera profile TRACE --bin BIN' renders: events through the
       aggregator, back to snapshots *)
    let agg = Obs.Agg.create () in
    List.iter (Obs.Agg.observe agg) (Profile.to_events p);
    render_to_string ~disasm (Profile.snaps_of_events (Obs.Agg.profile_events agg))
  in
  Alcotest.(check string) "offline report byte-identical to live" live offline

(* --- folded stacks ------------------------------------------------------------ *)

let test_folded_output () =
  let _, retired, p = matmul_profile () in
  let f = Filename.temp_file "prof" ".folded" in
  Fun.protect
    ~finally:(fun () -> Sys.remove f)
    (fun () ->
      let oc = open_out f in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Profile.write_folded p oc);
      let lines =
        String.split_on_char '\n' (read_file f) |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check bool) "has stacks" true (lines <> []);
      let total =
        List.fold_left
          (fun acc l ->
            match String.rindex_opt l ' ' with
            | None -> Alcotest.failf "malformed folded line: %s" l
            | Some i ->
                Alcotest.(check bool)
                  (Printf.sprintf "stack starts at root: %s" l)
                  true
                  (String.length l > 4 && String.sub l 0 3 = "all");
                acc + int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
          0 lines
      in
      Alcotest.(check int) "folded weights sum to retired" retired total)

(* Trap/SMILE trampolines redirect with call-shaped jumps whose returns
   never execute; without the depth cap every such call would deepen the
   shadow stack (and the folded tree grows quadratically — a table2 run
   once produced a 1.4 GB folded file). Simulate the pathology through the
   public machine hooks and require the folded output to stay bounded with
   no weight lost. *)
let test_stack_depth_cap () =
  let p = Profile.create () in
  let call_cls =
    List.find (fun c -> Profile.is_call c && not (Profile.is_ret c))
      (List.init 64 Fun.id)
  in
  let n = 10_000 in
  for i = 0 to n - 1 do
    let entry = 0x1000 + (8 * i) in
    let row = Profile.bind p ~entry ~classes:Bytes.empty ~term:call_cls in
    Profile.begin_dispatch p (Some row);
    (* retired 1 > executed 0: the call terminator itself retired, so the
       dispatch ends in a push to a callee that never returns *)
    Profile.block_dispatch p row ~executed:0 ~retired:1 ~cycles:1 ~tlb:0
      ~icache:0 ~fault:false ~target:(0x1000 + (8 * (i + 1)))
  done;
  let f = Filename.temp_file "prof" ".folded" in
  Fun.protect
    ~finally:(fun () -> Sys.remove f)
    (fun () ->
      let oc = open_out f in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          Profile.write_folded p oc);
      let lines =
        String.split_on_char '\n' (read_file f)
        |> List.filter (fun l -> l <> "")
      in
      let depth l =
        String.fold_left (fun acc c -> if c = ';' then acc + 1 else acc) 0 l
      in
      let max_depth = List.fold_left (fun acc l -> max acc (depth l)) 0 lines in
      Alcotest.(check bool)
        (Printf.sprintf "stack depth capped (deepest %d)" max_depth)
        true
        (max_depth >= 64 && max_depth <= 256);
      let total =
        List.fold_left
          (fun acc l ->
            match String.rindex_opt l ' ' with
            | None -> Alcotest.failf "malformed folded line: %s" l
            | Some i ->
                acc + int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
          0 lines
      in
      Alcotest.(check int) "no weight lost past the cap" n total)

(* --- regression gate ----------------------------------------------------------- *)

let baseline_json =
  {|{
  "experiments": [
    { "name": "fig13", "wall_s": 10.0, "retired": 409005173, "mips": 29.3,
      "tlb_hit_rate": 0.9604, "chain_hit_rate": 0.9934 },
    { "name": "micro", "wall_s": 0.1, "retired": 7260000,
      "tlb_hit_rate": 0.9868, "chain_hit_rate": 0.9926 }
  ]
}|}

let with_baseline json f =
  let file = Filename.temp_file "baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc json;
      close_out oc;
      f file)

let test_regress_gate () =
  with_baseline baseline_json (fun file ->
      let baseline = Regress.load_baseline file in
      Alcotest.(check int) "experiments loaded" 2 (List.length baseline);
      let identical =
        List.map
          (fun (n, m) ->
            (n, { m with Regress.wall_s = m.Regress.wall_s }))
          baseline
      in
      Alcotest.(check (list (pair string string)))
        "identical run passes" []
        (Regress.compare_run ~baseline ~current:identical ());
      (* improvements never fail *)
      let better =
        List.map
          (fun (n, m) ->
            ( n,
              { m with
                Regress.wall_s = m.Regress.wall_s /. 2.;
                tlb_hit_rate =
                  Option.map (fun r -> r +. 0.001) m.Regress.tlb_hit_rate } ))
          baseline
      in
      Alcotest.(check (list (pair string string)))
        "improvements pass" []
        (Regress.compare_run ~baseline ~current:better ());
      (* a doctored current run trips every checked metric *)
      let doctored =
        List.map
          (fun (n, m) ->
            if n = "fig13" then
              ( n,
                { m with
                  Regress.wall_s = m.Regress.wall_s *. 2.;
                  retired = m.Regress.retired + 1;
                  tlb_hit_rate =
                    Option.map (fun r -> r -. 0.1) m.Regress.tlb_hit_rate;
                  chain_hit_rate =
                    Option.map (fun r -> r -. 0.1) m.Regress.chain_hit_rate } )
            else (n, m))
          baseline
      in
      let fails = Regress.compare_run ~baseline ~current:doctored () in
      Alcotest.(check int) "four regressions detected" 4 (List.length fails);
      List.iter
        (fun (n, _) -> Alcotest.(check string) "all against fig13" "fig13" n)
        fails;
      Alcotest.(check bool) "report names the regressions" true
        (String.length (Regress.report fails) > String.length (Regress.report []));
      (* sub-min_wall baselines skip the (noisy) wall check but keep retired *)
      let micro_slow =
        List.map
          (fun (n, m) ->
            if n = "micro" then (n, { m with Regress.wall_s = 10.0 }) else (n, m))
          baseline
      in
      Alcotest.(check (list (pair string string)))
        "sub-min_wall baseline skips wall check" []
        (Regress.compare_run ~baseline ~current:micro_slow ());
      (* experiments missing from either side are ignored *)
      Alcotest.(check (list (pair string string)))
        "disjoint experiment sets pass" []
        (Regress.compare_run ~baseline
           ~current:[ ("new_exp", List.assoc "fig13" baseline) ]
           ()))

let test_regress_malformed () =
  with_baseline "{ not json" (fun file ->
      match Regress.load_baseline file with
      | _ -> Alcotest.fail "malformed baseline must not load"
      | exception Failure _ -> ());
  with_baseline "{\"experiments\": [ { \"name\": \"x\" } ]}" (fun file ->
      match Regress.load_baseline file with
      | _ -> Alcotest.fail "missing metrics must not load"
      | exception Failure msg ->
          Alcotest.(check bool) "error names the field" true
            (String.length msg > 0))

let () =
  Alcotest.run "chimera_prof"
    [ ("classes", [ Alcotest.test_case "class_code" `Quick test_class_code ]);
      ("engines",
       QCheck_alcotest.to_alcotest prop_engine_equivalence
       :: [ Alcotest.test_case "warm-TLB permission downgrade" `Quick
              test_warm_tlb_downgrade ]);
      ("events",
       [ Alcotest.test_case "to_events/snaps_of_events round-trip" `Quick
           test_events_roundtrip;
         Alcotest.test_case "offline report identical to live" `Quick
           test_offline_report_identical;
         Alcotest.test_case "folded stacks sum to retired" `Quick
           test_folded_output;
         Alcotest.test_case "unreturning calls hit the depth cap" `Quick
           test_stack_depth_cap ]);
      ("regress",
       [ Alcotest.test_case "gate passes clean, fails doctored" `Quick
           test_regress_gate;
         Alcotest.test_case "malformed baselines rejected" `Quick
           test_regress_malformed ]) ]
