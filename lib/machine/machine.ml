(* Decode-cache entries carry the generation stamp of the bytes they were
   decoded from; a stale entry fails its stamp check and is re-decoded.
   [Cill] also records the last byte actually examined (an illegal decode
   may have fetched only the low parcel), so its stamp covers exactly the
   bytes the verdict depends on. *)
type centry = Cok of Inst.t * int * int | Cill of string * int * int

type view = {
  vmem : Memory.t;
  cache : (int, centry) Hashtbl.t;
  blocks : (int, t Tblock.t) Hashtbl.t;  (** translation blocks, keyed by entry pc *)
  heat : (int, int ref) Hashtbl.t;
      (** interpreted-dispatch counts of still-untranslated entries (tiered
          machines only): an entry is stepped until its heat crosses the
          first tier threshold, then translated and dropped from here *)
  ics : (int, icsite) Hashtbl.t;
      (** per-site inline caches for indirect terminators
          ([jalr]/[c_jr]/[c_jalr]), keyed by the site pc *)
  skels : (int, skel) Hashtbl.t;
      (** recorded translation skeletons, keyed by entry pc (recording
          machines only): the positional lower/compile decisions of the
          {e latest} translation at that entry, joined with the live block
          at {!export_plan} time to form a persistable replay recipe *)
}

(* One recorded translation-callback decision, in program order. [Slower]
   carries the very op record the translation's closures captured — its
   [k] field holds the post-optimize kind by the time the block is
   exported, so replaying the sequence through the emitter (skipping
   [Tir.optimize]) reconstructs the same execution units. [Scompile] marks
   an instruction the IR declined (routed to [compile_op]); replay
   recompiles it from the decoded instruction, which is deterministic. *)
and step = Slower of Tir.op | Scompile

and skel = {
  sk_steps : step array;
  sk_relayout : (int * bool) list;
      (** the recompile plan the translation ran under, so replay drives
          [relayout_of] to the same cut/flip decisions *)
}

and icsite = {
  site_pc : int;
  mutable site_target : int;
      (** predicted target pc of the monomorphic slot; [-1] when unbound *)
  mutable site_tb : t Tblock.t option;
      (** direct block link for [site_target] — the monomorphic fast path.
          Guarded on every use by target equality and the one-compare code
          epoch check, exactly like a chain link, so SMC or a replaced
          block makes the prediction fail-safe (next use re-resolves). *)
  mutable site_poly : (int * t Tblock.t) array;
      (** small polymorphic table behind the monomorphic slot; entries
          carry the same target + epoch guard *)
  mutable site_mega : bool;
      (** megamorphic: more distinct live targets than the polymorphic
          table holds — the site stops caching and every dispatch goes to
          the per-view block table *)
  mutable site_hits : int;  (** cumulative per-site hits (reporting only) *)
  mutable site_misses : int;
}

and t = {
  mutable cur : view;
  mutable views : view list;
      (** recently used views, most recent first, capped at [max_views] *)
  gens : Tblock.Gen.t;
      (** page generations, shared by every view: physical pages may be
          aliased between views, so a patch invalidates everywhere *)
  mutable isa : Ext.t;
  costs : Costs.t;
  vlen : int;
  xregs : int64 array;
  vregs : bytes;
  mutable vl : int;
  mutable vsew : Inst.sew;
  mutable pc : int;
  mutable retired : int;
  mutable vector_retired : int;
  mutable indirect_retired : int;
  (* cycles are not stored directly: the invariant cycles = retired +
     cycles_extra holds at all times, so the per-instruction fast path only
     bumps [retired] and everything charged beyond one cycle per retired
     instruction (vector ops, icache misses, runtime events) lands here *)
  mutable cycles_extra : int;
  mutable icache : Icache.t option;
  mutable block_engine : bool;
  mutable chain : bool;
  mutable code_epoch : int;
      (** advanced on every {!invalidate_code} and ISA change; blocks whose
          [echeck] equals it are valid with one compare, and chain links are
          implicitly severed when it moves (Tblock.revalidate) *)
  mutable chain_hits : int;  (** dispatches served by a chain link *)
  mutable tb_dispatches : int;  (** total block dispatches (chained or not) *)
  mutable superblocks : bool;
      (** compile inlined jumps/branches and fused pairs; off restricts
          translation to PR3-style straight-line blocks (the differential
          harness exercises both) *)
  mutable side_exits : int;  (** dispatches that left a block via a taken
                                 inlined branch *)
  mutable fused_pairs : int;
      (** instructions merged into multi-instruction units at translation
          time (Σ (unit width − 1) over translated blocks) *)
  mutable ir : bool;
      (** lower straight-line runs through the linear IR ({!Tir}) with
          constant propagation and dead-write elimination; off falls back
          to direct per-instruction closure compilation (the bench's
          [--no-ir] ablation) *)
  mutable tiered : bool;
      (** hotness-driven tiered execution: entries are interpreted until
          warm, then climb block → superblock → IR-optimized, and hot
          blocks whose observed side-exit profile contradicts the static
          BTFN layout are recompiled with trace-style layout (the bench's
          [--no-tier] ablation turns this off and translates everything at
          the top tier immediately) *)
  mutable ic_on : bool;
      (** compile inline caches into indirect terminators (the bench's
          [--no-ic] ablation) *)
  mutable pending_ic : icsite option;
      (** set by an indirect terminator closure as it completes; the next
          dispatch consumes it to predict the successor block through the
          site's inline cache instead of the single [link_taken] slot *)
  mutable relayout : (int * bool) list;
      (** translation-scoped recompile plan: [(branch pc, flip)] pairs from
          the observed exit profile — [flip = false] cuts the block at the
          branch (terminator), [flip = true] inverts it and continues
          decoding at the taken target; empty outside recompilation *)
  mutable ic_hits : int;  (** dispatches predicted by an inline cache *)
  mutable ic_misses : int;  (** IC probes that fell back to the block table *)
  mutable ic_mega_d : int;  (** dispatches through megamorphic sites *)
  mutable tier_promotions : int;
  mutable recompiles : int;  (** profile-guided layout recompilations *)
  (* per-translation IR pass statistics, flushed to process atomics once
     per [run] like the other counters *)
  mutable ir_blocks : int;  (** translations that produced IR units *)
  mutable ir_units : int;  (** execution units emitted from IR runs *)
  mutable ir_folded : int;  (** ops folded to constants *)
  mutable ir_dead : int;  (** ops killed by dead-write elimination *)
  mutable ir_pc_elided : int;  (** ops emitted without a pc write *)
  mutable ir_tlb_elided : int;  (** paired accesses sharing one TLB check *)
  mutable ir_cached : int;  (** operand reads served from known constants *)
  ir_state : Tir.state;
      (** translation-time known-register state, reset per translation and
          threaded across the block's runs (reusable scratch, no per-block
          allocation) *)
  mutable rec_on : bool;
      (** record translation skeletons into the view's [skels] table so the
          machine's translations can be exported as a persistable plan *)
  mutable translate_s : float;  (** seconds spent translating (fresh
                                    translations only, not plan replay),
                                    flushed per run *)
  mutable translations : int;  (** translation count behind [translate_s] *)
  mutable prof : Profile.t option;
      (** attached guest profiler; both engines account through it when set
          (picked up from [Profile.global] at creation) *)
}

type stop = Exited of int | Faulted of Fault.t | Fuel_exhausted
type action = Resume of int | Stop of stop

type handlers = {
  on_fault : t -> Fault.t -> action;
  on_ebreak : t -> pc:int -> size:int -> action;
  on_ecall : t -> pc:int -> action;
  on_check : t -> pc:int -> rd:Reg.t -> target:int -> action;
}

let default_handlers =
  { on_fault = (fun _ f -> Stop (Faulted f));
    on_ebreak =
      (fun _ ~pc ~size:_ ->
        Stop (Faulted (Fault.Illegal_instruction { pc; reason = "unhandled ebreak" })));
    on_ecall =
      (fun _ ~pc ->
        Stop (Faulted (Fault.Illegal_instruction { pc; reason = "unhandled ecall" })));
    on_check =
      (fun _ ~pc ~rd:_ ~target:_ ->
        Stop
          (Faulted
             (Fault.Illegal_instruction { pc; reason = "unhandled check instruction" })))
  }

(* Always-on metrics (lib/metrics). Counters are fed at the same flush
   points that fold the per-machine mutables into the observed_* atomics
   — never on the per-instruction path — so when metrics are enabled the
   snapshot totals equal the machine's own counters by construction (the
   bench driver cross-checks this at exit). Only the translate-latency
   histogram records at its source, once per (cold) translation. *)
let m_retired =
  Metrics.counter "chimera_retired_total"
    ~help:"Guest instructions retired inside Machine.run"

let m_dispatches =
  Metrics.counter "chimera_dispatches_total"
    ~help:"Translation-block dispatches"

let m_chain_hits =
  Metrics.counter "chimera_chain_hits_total"
    ~help:"Dispatches served by a chain link or inline cache"

let m_side_exits =
  Metrics.counter "chimera_side_exits_total"
    ~help:"Superblock dispatches that left through a taken side exit"

let m_fused =
  Metrics.counter "chimera_fused_total"
    ~help:"Instructions merged into multi-instruction execution units"

let m_tier_promotions =
  Metrics.counter "chimera_tier_promotions_total"
    ~help:"Blocks promoted to a higher tier"

let m_recompiles =
  Metrics.counter "chimera_recompiles_total"
    ~help:"Profile-guided recompiles from observed side-exit profiles"

let m_ic_hits =
  Metrics.counter "chimera_ic_hits_total"
    ~help:"Inline-cache hits at indirect-terminator sites"

let m_ic_misses =
  Metrics.counter "chimera_ic_misses_total"
    ~help:"Inline-cache misses at indirect-terminator sites"

let m_ic_mega =
  Metrics.counter "chimera_ic_mega_dispatches_total"
    ~help:"Dispatches through megamorphic indirect sites"

let m_translations =
  Metrics.counter "chimera_translations_total"
    ~help:"Fresh block translations (plan replays excluded)"

let m_translate_ns =
  Metrics.histogram "chimera_translate_ns"
    ~help:"Latency of one block translation in nanoseconds"

let m_faults_raised =
  Metrics.counter "chimera_faults_raised_total"
    ~help:"Deterministic machine faults raised (before any handler)"

let new_view mem =
  { vmem = mem;
    cache = Hashtbl.create 1024;
    blocks = Hashtbl.create 256;
    heat = Hashtbl.create 256;
    ics = Hashtbl.create 64;
    skels = Hashtbl.create 64 }

(* Process-wide default for newly created machines; the bench driver's
   --engine flag flips it so whole experiments can run on the single-step
   reference engine for differential checks. *)
let block_engine_default = ref true
let set_block_engine_default on = block_engine_default := on

(* Same pattern for superblock formation: the bench driver's --engine flag
   can pin whole experiments to plain straight-line blocks so the three
   engines (step, block, superblock) stay differentially comparable. *)
let superblocks_default = ref true
let set_superblocks_default on = superblocks_default := on

(* IR lowering default for new machines; the bench driver's --no-ir flag
   clears it so the ablation row quantifies the IR passes in isolation. *)
let ir_default = ref true
let set_ir_default on = ir_default := on

(* Tiered execution and indirect-branch inline caches default OFF at the
   library level (a fresh machine behaves exactly like the PR6 engine); the
   bench driver turns both on for its default runs and clears them for the
   --no-tier / --no-ic ablations. *)
let tiered_default = ref false
let set_tiered_default on = tiered_default := on
let inline_caches_default = ref false
let set_inline_caches_default on = inline_caches_default := on

(* Skeleton recording default for new machines; the bench driver's --cache
   flag and the CLI's cache prewarm turn it on so finished runs can export
   their translations. Recording costs a few list conses per translation —
   negligible next to the translation itself — but defaults off to keep
   non-caching runs allocation-identical with earlier PRs. *)
let record_default = ref false
let set_record_default on = record_default := on

(* Tier thresholds. Heat is counted per interpreted instruction at an
   untranslated entry; hot is counted per dispatch of a translated block.
   Low thresholds keep the warm-up window short (hot loops reach the top
   tier within a few hundred iterations) while cold code never pays for
   translation at all. *)
let tier1_heat = 4  (* interpreted executions before the first translation *)
let tier2_hot = 32  (* block dispatches before superblock promotion *)
let tier3_hot = 128  (* superblock dispatches before IR promotion *)
let recompile_hot = 256  (* top-tier dispatches before the exit-profile check *)

(* Observed-exit-rate policy for profile-guided relayout: a branch whose
   conditional taken rate reaches [relayout_cut_rate] contradicts the BTFN
   assumption and is cut out of the block (compiled as a terminator, which
   chains through both link slots instead of side-exiting); at
   [relayout_flip_rate] the branch is so lopsided that the block is laid
   out through the taken path instead (inverted guard, trace layout). *)
let relayout_cut_rate = 0.25
let relayout_flip_rate = 0.70

(* Minimum dispatches that must have reached a unit before its observed
   exit rate is trusted — below this the rate is noise (a wrapped
   superblock's late units see only the dispatches that survived every
   earlier exit, often just one or two). *)
let relayout_min_sample = 16

(* Polymorphic inline-cache capacity: distinct live targets beyond the
   monomorphic slot plus this many table entries turn the site
   megamorphic. *)
let ic_poly_limit = 8

let create ?(vlen = 32) ?(costs = Costs.default) ~mem ~isa () =
  let view = new_view mem in
  { cur = view;
    views = [ view ];
    gens = Tblock.Gen.create ();
    isa;
    costs;
    vlen;
    xregs = Array.make 32 0L;
    vregs = Bytes.make (32 * vlen) '\000';
    vl = 0;
    vsew = Inst.E64;
    pc = 0;
    retired = 0;
    vector_retired = 0;
    indirect_retired = 0;
    cycles_extra = 0;
    icache = None;
    block_engine = !block_engine_default;
    chain = true;
    code_epoch = 0;
    chain_hits = 0;
    tb_dispatches = 0;
    superblocks = !superblocks_default;
    side_exits = 0;
    fused_pairs = 0;
    ir = !ir_default;
    tiered = !tiered_default;
    ic_on = !inline_caches_default;
    pending_ic = None;
    relayout = [];
    ic_hits = 0;
    ic_misses = 0;
    ic_mega_d = 0;
    tier_promotions = 0;
    recompiles = 0;
    ir_blocks = 0;
    ir_units = 0;
    ir_folded = 0;
    ir_dead = 0;
    ir_pc_elided = 0;
    ir_tlb_elided = 0;
    ir_cached = 0;
    ir_state = Tir.state_create ();
    rec_on = !record_default;
    translate_s = 0.;
    translations = 0;
    prof = Profile.global () }

let mem t = t.cur.vmem
let isa t = t.isa

let set_isa t isa =
  if not (Ext.equal t.isa isa) then begin
    t.isa <- isa;
    (* blocks compiled against the old capability set must re-check *)
    t.code_epoch <- t.code_epoch + 1
  end
let costs t = t.costs
let vlen t = t.vlen
let pc t = t.pc
let set_pc t pc = t.pc <- pc
(* [Reg.t] is abstract and range-checked at construction (0..31), so the
   register file never needs a bounds check on the hot path. *)
let get_reg t r = Array.unsafe_get t.xregs (Reg.to_int r)

let set_reg t r v =
  let i = Reg.to_int r in
  if i <> 0 then Array.unsafe_set t.xregs i v

let get_vreg t v = Bytes.sub t.vregs (Reg.v_to_int v * t.vlen) t.vlen

let set_vreg t v b =
  if Bytes.length b <> t.vlen then invalid_arg "Machine.set_vreg: wrong width";
  Bytes.blit b 0 t.vregs (Reg.v_to_int v * t.vlen) t.vlen

let vl t = t.vl
let vsew t = t.vsew

let set_vstate t ~vl ~vsew =
  t.vl <- vl;
  t.vsew <- vsew

(* The view list is an LRU of bounded size: a retired view only loses its
   decode/block caches (rebuilt on demand if the view ever returns), never
   correctness — staleness is tracked by the shared generation table, not by
   the list. *)
let max_views = 8

let switch_view t mem =
  if t.cur.vmem != mem then
    match List.find_opt (fun v -> v.vmem == mem) t.views with
    | Some v ->
        t.views <- v :: List.filter (fun w -> w != v) t.views;
        t.cur <- v
    | None ->
        let v = new_view mem in
        t.views <- v :: List.filteri (fun i _ -> i < max_views - 1) t.views;
        t.cur <- v

(* O(pages patched): bump the page generations; every cached decode entry
   and translation block overlapping a bumped page fails its stamp check on
   next use, in every view (stamps are taken from the shared table). *)
let invalidate_code t ~addr ~len =
  if !Obs.enabled then Obs.emit (Obs.Tb_invalidate { addr; len });
  Tblock.Gen.bump t.gens ~addr ~len;
  (* the epoch moves with every bump: stale blocks fail the one-compare
     fast check and fall back to the full stamp check (or re-translation),
     and every chain link established before the patch stops matching *)
  t.code_epoch <- t.code_epoch + 1

let enable_icache ?sets ?line t =
  t.icache <- Some (Icache.create ?sets ?line ());
  (* cached blocks may contain multi-instruction IR units, which bypass the
     dispatch loop's per-fetch accounting; drop them so retranslation
     produces the per-instruction shape the icache model needs *)
  List.iter (fun v -> Hashtbl.reset v.blocks) t.views

let icache_misses t =
  match t.icache with None -> 0 | Some ic -> Icache.misses ic

let set_profile t p = t.prof <- p
let profile t = t.prof
let retired t = t.retired
let vector_retired t = t.vector_retired
let indirect_retired t = t.indirect_retired
let cycles t = t.retired + t.cycles_extra
let charge t n = t.cycles_extra <- t.cycles_extra + n

let reset_counters t =
  t.retired <- 0;
  t.vector_retired <- 0;
  t.indirect_retired <- 0;
  t.cycles_extra <- 0

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

exception Efault of Fault.t

(* Raised (without a backtrace) by an inlined branch closure whose guard
   was taken: the closure has already set pc to the taken target and
   retired, so the catch site in [run_blocks] treats it as a normal block
   completion through the side exit. Payload-free so raising allocates
   nothing on the loop back edge. *)
exception Side_exit

(* ALU semantics live in {!Tir} now, shared between the interpreter, the
   closure compiler and the IR constant folder — a folded result is
   bit-identical to the step engine by construction. *)
let sext32 = Tir.sext32
let alu = Tir.alu
let alui = Tir.alui

let branch_taken c a b =
  match c with
  | Inst.Beq -> Int64.equal a b
  | Inst.Bne -> not (Int64.equal a b)
  | Inst.Blt -> Int64.compare a b < 0
  | Inst.Bge -> Int64.compare a b >= 0
  | Inst.Bltu -> Int64.unsigned_compare a b < 0
  | Inst.Bgeu -> Int64.unsigned_compare a b >= 0

let addr_of v = Int64.to_int v

let load_value mem width unsigned addr =
  match (width, unsigned) with
  | Inst.B, false -> Int64.of_int (Encode.sext (Memory.load_u8 mem addr) 8)
  | Inst.B, true -> Int64.of_int (Memory.load_u8 mem addr)
  | Inst.H, false -> Int64.of_int (Encode.sext (Memory.load_u16 mem addr) 16)
  | Inst.H, true -> Int64.of_int (Memory.load_u16 mem addr)
  | Inst.W, false -> sext32 (Int64.of_int (Memory.load_u32 mem addr))
  | Inst.W, true -> Int64.of_int (Memory.load_u32 mem addr)
  | Inst.D, _ -> Memory.load_u64 mem addr

let store_value mem width addr v =
  match width with
  | Inst.B -> Memory.store_u8 mem addr (Int64.to_int v land 0xFF)
  | Inst.H -> Memory.store_u16 mem addr (Int64.to_int v land 0xFFFF)
  | Inst.W -> Memory.store_u32 mem addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  | Inst.D -> Memory.store_u64 mem addr v

(* Vector element accessors at the current sew. *)

let vget t vr i =
  let base = (Reg.v_to_int vr * t.vlen) in
  match t.vsew with
  | Inst.E64 -> Bytes.get_int64_le t.vregs (base + (i * 8))
  | Inst.E32 -> Int64.of_int32 (Bytes.get_int32_le t.vregs (base + (i * 4)))
  | Inst.E16 -> Int64.of_int (Encode.sext (Bytes.get_uint16_le t.vregs (base + (i * 2))) 16)
  | Inst.E8 -> Int64.of_int (Encode.sext (Bytes.get_uint8 t.vregs (base + i)) 8)

let vset t vr i v =
  let base = (Reg.v_to_int vr * t.vlen) in
  match t.vsew with
  | Inst.E64 -> Bytes.set_int64_le t.vregs (base + (i * 8)) v
  | Inst.E32 -> Bytes.set_int32_le t.vregs (base + (i * 4)) (Int64.to_int32 v)
  | Inst.E16 -> Bytes.set_uint16_le t.vregs (base + (i * 2)) (Int64.to_int v land 0xFFFF)
  | Inst.E8 -> Bytes.set_uint8 t.vregs (base + i) (Int64.to_int v land 0xFF)

let vop_apply op acc a b =
  match op with
  | Inst.Vadd -> Int64.add a b
  | Inst.Vsub -> Int64.sub a b
  | Inst.Vmul -> Int64.mul a b
  | Inst.Vmacc -> Int64.add acc (Int64.mul a b)

let vlmax t sew = t.vlen / Inst.sew_bytes sew

(* Decode at [pc] through the current view's cache. Entries are validated
   against the page generations of the bytes they cover, so a patched range
   is simply re-decoded — [invalidate_code] never walks the cache. *)
let decode_fresh t pc =
  let lo = Memory.fetch_u16 t.cur.vmem pc in
  let needs_hi = lo land 0b11 = 0b11 && lo land 0b11111 <> 0b11111 in
  let hi = if needs_hi then Memory.fetch_u16 t.cur.vmem (pc + 2) else 0 in
  match Decode.decode ~lo ~hi with
  | Decode.Ok (i, n) ->
      Hashtbl.replace t.cur.cache pc
        (Cok (i, n, Tblock.Gen.stamp t.gens ~lo:pc ~hi:(pc + n - 1)));
      (i, n)
  | Decode.Illegal reason ->
      (* stamp only the bytes the verdict was computed from: the high
         parcel was fetched (and so depends on memory) only when the low
         parcel asked for it — stamping a fixed pc+3 would reach into a
         page that was never examined (possibly unmapped) *)
      let hi = if needs_hi then pc + 3 else pc + 1 in
      Hashtbl.replace t.cur.cache pc
        (Cill (reason, hi, Tblock.Gen.stamp t.gens ~lo:pc ~hi));
      raise (Efault (Fault.Illegal_instruction { pc; reason }))

let decode_at t pc =
  match Hashtbl.find_opt t.cur.cache pc with
  | Some (Cok (i, n, st)) when Tblock.Gen.stamp t.gens ~lo:pc ~hi:(pc + n - 1) = st ->
      (i, n)
  | Some (Cill (reason, hi, st)) when Tblock.Gen.stamp t.gens ~lo:pc ~hi = st ->
      raise (Efault (Fault.Illegal_instruction { pc; reason }))
  | Some _ | None -> decode_fresh t pc

let fetch_decode t = decode_at t t.pc

(* Execute one decoded instruction; updates pc; may raise Efault.
   Returns the [stop] if the instruction is a control event the caller's
   handlers must see. *)
type event = Enone | Eebreak of int | Eecall | Echeck of Reg.t * Reg.t * int

let exec t inst size =
  let next = t.pc + size in
  let get = get_reg t and set = set_reg t in
  let jump_aligned target =
    if target land 1 <> 0 || (target land 3 <> 0 && not (Ext.mem Ext.C t.isa)) then
      raise (Efault (Fault.Misaligned_fetch { pc = t.pc; target }));
    t.pc <- target
  in
  match inst with
  | Inst.Lui (rd, imm20) ->
      set rd (Int64.of_int (imm20 lsl 12));
      t.pc <- next;
      Enone
  | Inst.Auipc (rd, imm20) ->
      set rd (Int64.of_int (t.pc + (imm20 lsl 12)));
      t.pc <- next;
      Enone
  | Inst.Jal (rd, off) ->
      set rd (Int64.of_int next);
      jump_aligned (t.pc + off);
      Enone
  | Inst.Jalr (rd, rs1, imm) ->
      let target = addr_of (Int64.add (get rs1) (Int64.of_int imm)) land lnot 1 in
      set rd (Int64.of_int next);
      t.indirect_retired <- t.indirect_retired + 1;
      jump_aligned target;
      Enone
  | Inst.Branch (c, rs1, rs2, off) ->
      if branch_taken c (get rs1) (get rs2) then jump_aligned (t.pc + off)
      else t.pc <- next;
      Enone
  | Inst.Load { width; unsigned; rd; rs1; imm } ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int imm)) in
      set rd (load_value t.cur.vmem width unsigned addr);
      t.pc <- next;
      Enone
  | Inst.Store { width; rs2; rs1; imm } ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int imm)) in
      store_value t.cur.vmem width addr (get rs2);
      t.pc <- next;
      Enone
  | Inst.Op (op, rd, rs1, rs2) ->
      set rd (alu op (get rs1) (get rs2));
      t.pc <- next;
      Enone
  | Inst.Opi (op, rd, rs1, imm) ->
      set rd (alui op (get rs1) imm);
      t.pc <- next;
      Enone
  | Inst.Ecall -> Eecall
  | Inst.Ebreak -> Eebreak 4
  | Inst.C_nop ->
      t.pc <- next;
      Enone
  | Inst.C_ebreak -> Eebreak 2
  | Inst.C_addi (rd, imm) ->
      set rd (Int64.add (get rd) (Int64.of_int imm));
      t.pc <- next;
      Enone
  | Inst.C_li (rd, imm) ->
      set rd (Int64.of_int imm);
      t.pc <- next;
      Enone
  | Inst.C_mv (rd, rs2) ->
      set rd (get rs2);
      t.pc <- next;
      Enone
  | Inst.C_add (rd, rs2) ->
      set rd (Int64.add (get rd) (get rs2));
      t.pc <- next;
      Enone
  | Inst.C_j off ->
      jump_aligned (t.pc + off);
      Enone
  | Inst.C_jr rs1 ->
      t.indirect_retired <- t.indirect_retired + 1;
      jump_aligned (addr_of (get rs1) land lnot 1);
      Enone
  | Inst.C_jalr rs1 ->
      let target = addr_of (get rs1) land lnot 1 in
      t.indirect_retired <- t.indirect_retired + 1;
      set Reg.ra (Int64.of_int next);
      jump_aligned target;
      Enone
  | Inst.C_beqz (rs1, off) ->
      if Int64.equal (get rs1) 0L then jump_aligned (t.pc + off) else t.pc <- next;
      Enone
  | Inst.C_bnez (rs1, off) ->
      if Int64.equal (get rs1) 0L then t.pc <- next else jump_aligned (t.pc + off);
      Enone
  | Inst.C_ld (rd, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      set rd (Memory.load_u64 t.cur.vmem addr);
      t.pc <- next;
      Enone
  | Inst.C_sd (rs2, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      Memory.store_u64 t.cur.vmem addr (get rs2);
      t.pc <- next;
      Enone
  | Inst.C_slli (rd, sh) ->
      set rd (Int64.shift_left (get rd) sh);
      t.pc <- next;
      Enone
  | Inst.C_lw (rd, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      set rd (sext32 (Int64.of_int (Memory.load_u32 t.cur.vmem addr)));
      t.pc <- next;
      Enone
  | Inst.C_sw (rs2, rs1, uimm) ->
      let addr = addr_of (Int64.add (get rs1) (Int64.of_int uimm)) in
      Memory.store_u32 t.cur.vmem addr (Int64.to_int (Int64.logand (get rs2) 0xFFFFFFFFL));
      t.pc <- next;
      Enone
  | Inst.C_lui (rd, imm) ->
      set rd (Int64.of_int (imm lsl 12));
      t.pc <- next;
      Enone
  | Inst.C_addiw (rd, imm) ->
      set rd (sext32 (Int64.add (get rd) (Int64.of_int imm)));
      t.pc <- next;
      Enone
  | Inst.C_andi (rd, imm) ->
      set rd (Int64.logand (get rd) (Int64.of_int imm));
      t.pc <- next;
      Enone
  | Inst.C_alu (op, rd, rs2) ->
      let a = get rd and b = get rs2 in
      set rd
        (match op with
        | Inst.Csub -> Int64.sub a b
        | Inst.Cxor -> Int64.logxor a b
        | Inst.Cor -> Int64.logor a b
        | Inst.Cand -> Int64.logand a b
        | Inst.Csubw -> sext32 (Int64.sub a b)
        | Inst.Caddw -> sext32 (Int64.add a b));
      t.pc <- next;
      Enone
  | Inst.Vsetvli (rd, rs1, sew) ->
      let vlmax = vlmax t sew in
      let avl =
        if Reg.equal rs1 Reg.x0 then
          if Reg.equal rd Reg.x0 then t.vl else vlmax
        else
          let v = get rs1 in
          if Int64.unsigned_compare v (Int64.of_int vlmax) > 0 then vlmax
          else Int64.to_int v
      in
      t.vsew <- sew;
      t.vl <- min avl vlmax;
      set rd (Int64.of_int t.vl);
      t.pc <- next;
      Enone
  | Inst.Vle (sew, vd, rs1) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vle sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let sz = Inst.sew_bytes sew in
      for i = 0 to t.vl - 1 do
        vset t vd i (load_value t.cur.vmem
                       (match sew with
                        | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
                        | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
                       false (base + (i * sz)))
      done;
      t.pc <- next;
      Enone
  | Inst.Vlse (sew, vd, rs1, rs2) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vlse sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let stride = Int64.to_int (get rs2) in
      for i = 0 to t.vl - 1 do
        vset t vd i
          (load_value t.cur.vmem
             (match sew with
              | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
              | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
             false (base + (i * stride)))
      done;
      t.pc <- next;
      Enone
  | Inst.Vse (sew, vs3, rs1) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vse sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let sz = Inst.sew_bytes sew in
      for i = 0 to t.vl - 1 do
        store_value t.cur.vmem
          (match sew with
           | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
           | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
          (base + (i * sz)) (vget t vs3 i)
      done;
      t.pc <- next;
      Enone
  | Inst.Vsse (sew, vs3, rs1, rs2) ->
      if sew <> t.vsew then
        raise
          (Efault
             (Fault.Illegal_instruction { pc = t.pc; reason = "vsse sew/vtype mismatch" }));
      let base = addr_of (get rs1) in
      let stride = Int64.to_int (get rs2) in
      for i = 0 to t.vl - 1 do
        store_value t.cur.vmem
          (match sew with
           | Inst.E8 -> Inst.B | Inst.E16 -> Inst.H
           | Inst.E32 -> Inst.W | Inst.E64 -> Inst.D)
          (base + (i * stride)) (vget t vs3 i)
      done;
      t.pc <- next;
      Enone
  | Inst.Vop_vv (op, vd, vs2, vs1) ->
      for i = 0 to t.vl - 1 do
        vset t vd i (vop_apply op (vget t vd i) (vget t vs2 i) (vget t vs1 i))
      done;
      t.pc <- next;
      Enone
  | Inst.Vop_vx (op, vd, vs2, rs1) ->
      let x = get rs1 in
      for i = 0 to t.vl - 1 do
        vset t vd i (vop_apply op (vget t vd i) (vget t vs2 i) x)
      done;
      t.pc <- next;
      Enone
  | Inst.Vmv_v_x (vd, rs1) ->
      let x = get rs1 in
      for i = 0 to t.vl - 1 do
        vset t vd i x
      done;
      t.pc <- next;
      Enone
  | Inst.Vmv_x_s (rd, vs2) ->
      set rd (vget t vs2 0);
      t.pc <- next;
      Enone
  | Inst.Vredsum (vd, vs2, vs1) ->
      let acc = ref (vget t vs1 0) in
      for i = 0 to t.vl - 1 do
        acc := Int64.add !acc (vget t vs2 i)
      done;
      vset t vd 0 !acc;
      t.pc <- next;
      Enone
  | Inst.Xcheck_jalr (rd, rs1, imm) ->
      let target = addr_of (Int64.add (get rs1) (Int64.of_int imm)) land lnot 1 in
      Echeck (rd, rs1, target)
  | Inst.P_add16 (rd, rs1, rs2) ->
      let a = get rs1 and b = get rs2 in
      let lane i =
        let sh = 16 * i in
        let sum =
          Int64.add
            (Int64.logand (Int64.shift_right_logical a sh) 0xFFFFL)
            (Int64.logand (Int64.shift_right_logical b sh) 0xFFFFL)
        in
        Int64.shift_left (Int64.logand sum 0xFFFFL) sh
      in
      set rd (Int64.logor (Int64.logor (lane 0) (lane 1)) (Int64.logor (lane 2) (lane 3)));
      t.pc <- next;
      Enone
  | Inst.P_smaqa (rd, rs1, rs2) ->
      let a = get rs1 and b = get rs2 in
      let byte v i =
        (* sign-extended byte lane i *)
        Int64.shift_right (Int64.shift_left v (56 - (8 * i))) 56
      in
      let acc = ref (get rd) in
      for i = 0 to 7 do
        acc := Int64.add !acc (Int64.mul (byte a i) (byte b i))
      done;
      set rd !acc;
      t.pc <- next;
      Enone

(* Fetch accounting + capability check + execution + retirement for one
   instruction. Shared by the slow path ([step], after a cache-backed
   decode) and the block engine (for decoded terminators). *)
let exec_retire t inst size =
  (match t.icache with
  | None -> ()
  | Some ic ->
      if not (Icache.access ic t.pc) then
        t.cycles_extra <- t.cycles_extra + t.costs.Costs.icache_miss;
      (* a fetch spanning two lines touches both *)
      if not (Icache.access ic (t.pc + size - 1)) then
        t.cycles_extra <- t.cycles_extra + t.costs.Costs.icache_miss);
  if not (Ext.supports t.isa inst) then
    raise
      (Efault
         (Fault.Illegal_instruction
            { pc = t.pc;
              reason =
                Printf.sprintf "extension %s not supported by this hart"
                  (match Ext.required inst with
                   | Some e -> Ext.ext_name e
                   | None -> "?") }));
  let ev = exec t inst size in
  t.retired <- t.retired + 1;
  (match Ext.required inst with
   | Some Ext.V ->
       t.vector_retired <- t.vector_retired + 1;
       t.cycles_extra <- t.cycles_extra + t.costs.Costs.vector_op - 1
   | Some _ | None -> ());
  (ev, size)

(* Deliver the outcome of one instruction to the handlers. *)
let dispatch ~handlers t thunk =
  let apply_action = function
    | Resume pc ->
        t.pc <- pc;
        None
    | Stop s -> Some s
  in
  match thunk () with
  | Enone, _ -> None
  | Eebreak sz, _ -> apply_action (handlers.on_ebreak t ~pc:t.pc ~size:sz)
  | Eecall, size ->
      let a7 = get_reg t (Reg.of_int 17) in
      if Int64.equal a7 93L then Some (Exited (Int64.to_int (get_reg t Reg.a0)))
      else
        let pc0 = t.pc in
        (* advance past the ecall by default; handler may override. *)
        t.pc <- t.pc + size;
        apply_action (handlers.on_ecall t ~pc:pc0)
  | Echeck (rd, _, target), size ->
      let pc0 = t.pc in
      set_reg t rd (Int64.of_int (pc0 + size));
      apply_action (handlers.on_check t ~pc:pc0 ~rd ~target)
  | exception Efault f ->
      if !Metrics.enabled then Metrics.incr m_faults_raised;
      if !Obs.enabled then
        Obs.emit (Obs.Fault_raised { pc = Fault.pc f; cause = Fault.cause_name f });
      apply_action (handlers.on_fault t f)
  | exception Memory.Violation { addr; access } ->
      let f = Fault.Segfault { pc = t.pc; addr; access } in
      if !Metrics.enabled then Metrics.incr m_faults_raised;
      if !Obs.enabled then
        Obs.emit (Obs.Fault_raised { pc = t.pc; cause = Fault.cause_name f });
      apply_action (handlers.on_fault t f)

let step_dispatch ~handlers t =
  dispatch ~handlers t (fun () ->
      let inst, size = fetch_decode t in
      exec_retire t inst size)

let icache_miss_count t =
  match t.icache with None -> 0 | Some ic -> Icache.misses ic

let step ?(handlers = default_handlers) t =
  match t.prof with
  | None -> step_dispatch ~handlers t
  | Some p ->
      (* Profiled single step: classify the instruction up front (a decode
         cache hit on the non-fault path, since the dispatch re-decodes the
         same pc), bracket the dispatch with counter reads, and attribute
         the deltas — the same window the block engine accounts per block,
         here per instruction. *)
      let pc0 = t.pc in
      let cls =
        match decode_at t pc0 with
        | inst, _ -> Profile.class_code inst
        | exception Efault _ -> -1
        | exception Memory.Violation _ -> -1
      in
      Profile.step_begin p ~pc:pc0 ~cls;
      let r0 = t.retired and c0 = cycles t in
      let mem0 = t.cur.vmem in
      let tlb0 = Memory.tlb_misses_live mem0 in
      let ic0 = icache_miss_count t in
      let res = step_dispatch ~handlers t in
      Profile.step_end p ~retired:(t.retired - r0) ~cycles:(cycles t - c0)
        ~tlb:(Memory.tlb_misses_live mem0 - tlb0)
        ~icache:(icache_miss_count t - ic0)
        ~target:t.pc;
      res

(* Execute a block terminator without touching the decode cache. *)
let step_decoded ~handlers t inst size =
  dispatch ~handlers t (fun () -> exec_retire t inst size)

(* ------------------------------------------------------------------ *)
(* Translation-block engine                                            *)
(* ------------------------------------------------------------------ *)

let retire_scalar t = t.retired <- t.retired + 1

let retire_vector t =
  t.retired <- t.retired + 1;
  t.vector_retired <- t.vector_retired + 1;
  t.cycles_extra <- t.cycles_extra + t.costs.Costs.vector_op - 1

(* Superblock inlining only covers direct transfers whose (static) target
   passes the alignment check [exec] would perform — a misaligned target
   stays a terminator so the slow path raises the precise fault. *)
let target_aligned t target =
  target land 1 = 0 && (target land 3 = 0 || Ext.mem Ext.C t.isa)

(* Find-or-create the inline-cache site record for an indirect terminator
   at [pc] in the current view. The record is captured by the terminator
   closure at translation time and shared by every translation of the site
   (re-translation after invalidation, tier promotion), so the learned
   targets survive block churn; only the per-target block links are
   re-validated, through the usual epoch guard. *)
let ic_for t pc =
  match Hashtbl.find_opt t.cur.ics pc with
  | Some s -> s
  | None ->
      let s =
        { site_pc = pc;
          site_target = -1;
          site_tb = None;
          site_poly = [||];
          site_mega = false;
          site_hits = 0;
          site_misses = 0 }
      in
      Hashtbl.add t.cur.ics pc s;
      s

(* Recompile-plan lookup for a branch at [pc]; a plan holds at most the
   branches of one block, so a list scan is fine at translation time. *)
let relayout_of t pc =
  let rec go = function
    | [] -> None
    | (p, flip) :: tl -> if p = pc then Some flip else go tl
  in
  match t.relayout with [] -> None | l -> go l

(* Compile one instruction for the fast path. Event instructions and
   indirect/linking control flow terminate the block (they stay decoded and
   run through {!step_decoded}, so handler delivery and fault pcs are
   identical to the slow path). Direct jumps that do not link ra and
   conditional branches are inlined when superblock formation is on: the
   jump closure transfers to its static target, the branch closure either
   falls through or leaves the block through {!Side_exit} — in both cases
   pc is exact at every block exit, so faults and chaining see the same
   machine states as the step engine. Anything the current capability set
   cannot execute stops the block so the slow path raises the precise
   illegal-instruction fault. Every compiled closure replicates [exec]
   exactly and then retires, with operands partially evaluated at
   translation time.

   pc is maintained lazily: straight-line closures that cannot fault do
   not write [t.pc] at all; fault-capable closures (memory accesses, the
   interpreter fallback) set their own pc first so a raised fault reports
   the exact faulting instruction; control transfers write their target.
   [run_blocks] re-synchronizes pc at every dispatch end (terminator pc,
   fall-through, or the fuel-limited resume point), so pc is exact at
   every point the machine state is observable. *)
let compile_op t ~pc inst size =
  match inst with
  | Inst.Ecall | Inst.Ebreak | Inst.C_ebreak | Inst.Xcheck_jalr _ ->
      Tblock.Term
  | Inst.Jalr (rd, rs1, imm) ->
      (* with C in the capability set a jalr target (bit 0 cleared by the
         ISA) can never misalign, so the whole instruction is event-free:
         compile it to a direct terminator closure and skip the
         interpreter's decode-exec-dispatch path. Without C it can raise
         the misaligned-target fault and must stay on the event path. *)
      if not (Ext.mem Ext.C t.isa) then Tblock.Term
      else
        let im = Int64.of_int imm in
        let link = Int64.of_int (pc + size) in
        if t.ic_on then
          (* the closure publishes its inline-cache site as it completes;
             the dispatch loop consumes it to predict the successor block
             (monomorphic slot → polymorphic table → block table). The
             [Some] cell is allocated once here, not per execution. *)
          let pic = Some (ic_for t pc) in
          Tblock.Term_fn
            (fun t ->
              (* target before link write: rd may alias rs1 *)
              let target =
                addr_of (Int64.add (get_reg t rs1) im) land lnot 1
              in
              set_reg t rd link;
              t.indirect_retired <- t.indirect_retired + 1;
              t.pc <- target;
              retire_scalar t;
              t.pending_ic <- pic)
        else
          Tblock.Term_fn
            (fun t ->
              (* target before link write: rd may alias rs1 *)
              let target =
                addr_of (Int64.add (get_reg t rs1) im) land lnot 1
              in
              set_reg t rd link;
              t.indirect_retired <- t.indirect_retired + 1;
              t.pc <- target;
              retire_scalar t)
  | Inst.C_jr rs1 ->
      if not (Ext.mem Ext.C t.isa) then Tblock.Term
      else if t.ic_on then
        let pic = Some (ic_for t pc) in
        Tblock.Term_fn
          (fun t ->
            t.indirect_retired <- t.indirect_retired + 1;
            t.pc <- addr_of (get_reg t rs1) land lnot 1;
            retire_scalar t;
            t.pending_ic <- pic)
      else
        Tblock.Term_fn
          (fun t ->
            t.indirect_retired <- t.indirect_retired + 1;
            t.pc <- addr_of (get_reg t rs1) land lnot 1;
            retire_scalar t)
  | Inst.C_jalr rs1 ->
      if not (Ext.mem Ext.C t.isa) then Tblock.Term
      else
        let link = Int64.of_int (pc + size) in
        if t.ic_on then
          let pic = Some (ic_for t pc) in
          Tblock.Term_fn
            (fun t ->
              (* target before the ra write: rs1 may be ra *)
              let target = addr_of (get_reg t rs1) land lnot 1 in
              t.indirect_retired <- t.indirect_retired + 1;
              set_reg t Reg.ra link;
              t.pc <- target;
              retire_scalar t;
              t.pending_ic <- pic)
        else
          Tblock.Term_fn
            (fun t ->
              (* target before the ra write: rs1 may be ra *)
              let target = addr_of (get_reg t rs1) land lnot 1 in
              t.indirect_retired <- t.indirect_retired + 1;
              set_reg t Reg.ra link;
              t.pc <- target;
              retire_scalar t)
  | Inst.Jal (rd, off) ->
      (* jal linking ra is a call: kept as a terminator so the profiler's
         shadow call stack sees it; any other link register is inlined *)
      let target = pc + off in
      if not (target_aligned t target) then Tblock.Term
      else if (not t.superblocks) || Reg.equal rd Reg.ra then
        (* calls (and the block engine's jumps) end the block, but the
           aligned direct transfer itself is event-free: run it as a
           terminator closure *)
        let link = Int64.of_int (pc + size) in
        Tblock.Term_fn
          (fun t ->
            set_reg t rd link;
            t.pc <- target;
            retire_scalar t)
      else
        let link = Int64.of_int (pc + size) in
        Tblock.Jump
          ( (fun t ->
              set_reg t rd link;
              t.pc <- target;
              retire_scalar t),
            target )
  | Inst.C_j off ->
      let target = pc + off in
      if not (Ext.supports t.isa inst) || not (target_aligned t target) then
        Tblock.Term
      else if not t.superblocks then
        Tblock.Term_fn
          (fun t ->
            t.pc <- target;
            retire_scalar t)
      else
        Tblock.Jump
          ( (fun t ->
              t.pc <- target;
              retire_scalar t),
            target )
  | Inst.Branch (c, rs1, rs2, off) ->
      (* backward-taken/forward-not-taken: a backward conditional branch is
         almost always a loop backedge and taken on nearly every iteration —
         inlining it would side-exit every time, so it stays a terminator
         (and chains through the link slots like any other block end); only
         forward branches, usually not taken, are worth inlining *)
      let target = pc + off in
      if not (target_aligned t target) then Tblock.Term
      else begin
        let fall = pc + size in
        let as_term () =
          (* loop backedge, block engine, or a profile-guided cut:
             terminator, but both targets are static and aligned so it
             cannot fault — direct closure (chains through both link
             slots, never side-exits) *)
          Tblock.Term_fn
            (fun t ->
              if branch_taken c (get_reg t rs1) (get_reg t rs2) then
                t.pc <- target
              else t.pc <- fall;
              retire_scalar t)
        in
        match relayout_of t pc with
        | Some true when t.superblocks && off > 0 ->
            (* observed mostly-taken: trace layout — invert the guard so
               the hot taken path falls through into the rest of the block
               (decoding continues at the target); the now-cold
               fall-through leaves via the side exit *)
            Tblock.Jump
              ( (fun t ->
                  if branch_taken c (get_reg t rs1) (get_reg t rs2) then begin
                    t.pc <- target;
                    retire_scalar t
                  end
                  else begin
                    t.pc <- fall;
                    retire_scalar t;
                    raise_notrace Side_exit
                  end),
                target )
        | Some _ -> as_term ()
        | None ->
            if (not t.superblocks) || off <= 0 then as_term ()
            else
              Tblock.Brcond
                (fun t ->
                  if branch_taken c (get_reg t rs1) (get_reg t rs2) then begin
                    t.pc <- target;
                    retire_scalar t;
                    raise_notrace Side_exit
                  end
                  else retire_scalar t)
      end
  | Inst.C_beqz (rs1, off) ->
      let target = pc + off in
      if not (Ext.supports t.isa inst) || not (target_aligned t target) then
        Tblock.Term
      else begin
        let fall = pc + size in
        let as_term () =
          Tblock.Term_fn
            (fun t ->
              if Int64.equal (get_reg t rs1) 0L then t.pc <- target
              else t.pc <- fall;
              retire_scalar t)
        in
        match relayout_of t pc with
        | Some true when t.superblocks && off > 0 ->
            Tblock.Jump
              ( (fun t ->
                  if Int64.equal (get_reg t rs1) 0L then begin
                    t.pc <- target;
                    retire_scalar t
                  end
                  else begin
                    t.pc <- fall;
                    retire_scalar t;
                    raise_notrace Side_exit
                  end),
                target )
        | Some _ -> as_term ()
        | None ->
            if (not t.superblocks) || off <= 0 then as_term ()
            else
              Tblock.Brcond
                (fun t ->
                  if Int64.equal (get_reg t rs1) 0L then begin
                    t.pc <- target;
                    retire_scalar t;
                    raise_notrace Side_exit
                  end
                  else retire_scalar t)
      end
  | Inst.C_bnez (rs1, off) ->
      let target = pc + off in
      if not (Ext.supports t.isa inst) || not (target_aligned t target) then
        Tblock.Term
      else begin
        let fall = pc + size in
        let as_term () =
          Tblock.Term_fn
            (fun t ->
              if Int64.equal (get_reg t rs1) 0L then t.pc <- fall
              else t.pc <- target;
              retire_scalar t)
        in
        match relayout_of t pc with
        | Some true when t.superblocks && off > 0 ->
            Tblock.Jump
              ( (fun t ->
                  if Int64.equal (get_reg t rs1) 0L then begin
                    t.pc <- fall;
                    retire_scalar t;
                    raise_notrace Side_exit
                  end
                  else begin
                    t.pc <- target;
                    retire_scalar t
                  end),
                target )
        | Some _ -> as_term ()
        | None ->
            if (not t.superblocks) || off <= 0 then as_term ()
            else
              Tblock.Brcond
                (fun t ->
                  if Int64.equal (get_reg t rs1) 0L then retire_scalar t
                  else begin
                    t.pc <- target;
                    retire_scalar t;
                    raise_notrace Side_exit
                  end)
      end
  | _ ->
      if not (Ext.supports t.isa inst) then Tblock.Stop
      else
        let retire =
          if Ext.required inst = Some Ext.V then retire_vector else retire_scalar
        in
        let op =
          match inst with
          | Inst.Lui (rd, imm20) ->
              let v = Int64.of_int (imm20 lsl 12) in
              fun t ->
                set_reg t rd v
          | Inst.Auipc (rd, imm20) ->
              let v = Int64.of_int (pc + (imm20 lsl 12)) in
              fun t ->
                set_reg t rd v
          | Inst.Load { width; unsigned; rd; rs1; imm } -> (
              (* width/signedness are static: pick the accessor here so the
                 closure runs no per-execution dispatch *)
              let im = Int64.of_int imm in
              match (width, unsigned) with
              | Inst.D, _ ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd (Memory.load_u64 t.cur.vmem addr)
              | Inst.W, false ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd
                      (sext32 (Int64.of_int (Memory.load_u32 t.cur.vmem addr)))
              | Inst.B, true ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd (Int64.of_int (Memory.load_u8 t.cur.vmem addr))
              | _ ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    set_reg t rd (load_value t.cur.vmem width unsigned addr))
          | Inst.Store { width; rs2; rs1; imm } -> (
              let im = Int64.of_int imm in
              match width with
              | Inst.D ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    Memory.store_u64 t.cur.vmem addr (get_reg t rs2)
              | Inst.W ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    Memory.store_u32 t.cur.vmem addr
                      (Int64.to_int (Int64.logand (get_reg t rs2) 0xFFFFFFFFL))
              | _ ->
                  fun t ->
                    t.pc <- pc;
                    let addr = addr_of (Int64.add (get_reg t rs1) im) in
                    store_value t.cur.vmem width addr (get_reg t rs2))
          | Inst.Op (op, rd, rs1, rs2) -> (
              (* the hottest ALU ops get dedicated closures (no jump through
                 [alu]'s dispatch table); the long tail shares one *)
              match op with
              | Inst.Add ->
                  fun t ->
                    set_reg t rd (Int64.add (get_reg t rs1) (get_reg t rs2))
              | Inst.Sub ->
                  fun t ->
                    set_reg t rd (Int64.sub (get_reg t rs1) (get_reg t rs2))
              | Inst.And ->
                  fun t ->
                    set_reg t rd (Int64.logand (get_reg t rs1) (get_reg t rs2))
              | Inst.Or ->
                  fun t ->
                    set_reg t rd (Int64.logor (get_reg t rs1) (get_reg t rs2))
              | Inst.Xor ->
                  fun t ->
                    set_reg t rd (Int64.logxor (get_reg t rs1) (get_reg t rs2))
              | Inst.Addw ->
                  fun t ->
                    set_reg t rd
                      (sext32 (Int64.add (get_reg t rs1) (get_reg t rs2)))
              | Inst.Mul ->
                  fun t ->
                    set_reg t rd (Int64.mul (get_reg t rs1) (get_reg t rs2))
              | _ ->
                  fun t ->
                    set_reg t rd (alu op (get_reg t rs1) (get_reg t rs2)))
          | Inst.Opi (Inst.Addi, rd, rs1, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.add (get_reg t rs1) im)
          | Inst.Opi (Inst.Andi, rd, rs1, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.logand (get_reg t rs1) im)
          | Inst.Opi (Inst.Slli, rd, rs1, imm) ->
              let sh = imm land 63 in
              fun t ->
                set_reg t rd (Int64.shift_left (get_reg t rs1) sh)
          | Inst.Opi (Inst.Srli, rd, rs1, imm) ->
              let sh = imm land 63 in
              fun t ->
                set_reg t rd (Int64.shift_right_logical (get_reg t rs1) sh)
          | Inst.Opi (Inst.Addiw, rd, rs1, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (sext32 (Int64.add (get_reg t rs1) im))
          | Inst.Opi (op, rd, rs1, imm) ->
              fun t ->
                set_reg t rd (alui op (get_reg t rs1) imm)
          | Inst.C_nop ->
              fun _ -> ()
          | Inst.C_addi (rd, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.add (get_reg t rd) im)
          | Inst.C_li (rd, imm) ->
              let v = Int64.of_int imm in
              fun t ->
                set_reg t rd v
          | Inst.C_mv (rd, rs2) ->
              fun t ->
                set_reg t rd (get_reg t rs2)
          | Inst.C_add (rd, rs2) ->
              fun t ->
                set_reg t rd (Int64.add (get_reg t rd) (get_reg t rs2))
          | Inst.C_ld (rd, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                set_reg t rd (Memory.load_u64 t.cur.vmem addr)
          | Inst.C_sd (rs2, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                Memory.store_u64 t.cur.vmem addr (get_reg t rs2)
          | Inst.C_slli (rd, sh) ->
              fun t ->
                set_reg t rd (Int64.shift_left (get_reg t rd) sh)
          | Inst.C_lw (rd, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                set_reg t rd (sext32 (Int64.of_int (Memory.load_u32 t.cur.vmem addr)))
          | Inst.C_sw (rs2, rs1, uimm) ->
              let im = Int64.of_int uimm in
              fun t ->
                t.pc <- pc;
                let addr = addr_of (Int64.add (get_reg t rs1) im) in
                Memory.store_u32 t.cur.vmem addr
                  (Int64.to_int (Int64.logand (get_reg t rs2) 0xFFFFFFFFL))
          | Inst.C_lui (rd, imm) ->
              let v = Int64.of_int (imm lsl 12) in
              fun t ->
                set_reg t rd v
          | Inst.C_addiw (rd, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (sext32 (Int64.add (get_reg t rd) im))
          | Inst.C_andi (rd, imm) ->
              let im = Int64.of_int imm in
              fun t ->
                set_reg t rd (Int64.logand (get_reg t rd) im)
          | Inst.C_alu (op, rd, rs2) ->
              fun t ->
                let a = get_reg t rd and b = get_reg t rs2 in
                set_reg t rd
                  (match op with
                  | Inst.Csub -> Int64.sub a b
                  | Inst.Cxor -> Int64.logxor a b
                  | Inst.Cor -> Int64.logor a b
                  | Inst.Cand -> Int64.logand a b
                  | Inst.Csubw -> sext32 (Int64.sub a b)
                  | Inst.Caddw -> sext32 (Int64.add a b))
          | _ ->
              (* vector / packed-SIMD and other rare straight-line
                 instructions: reuse the interpreter dispatch (they can
                 only produce [Enone] — events all terminate blocks). *)
              fun t ->
                t.pc <- pc;
                (match exec t inst size with
                | Enone -> ()
                | Eebreak _ | Eecall | Echeck _ -> assert false);
                retire t
        in
        (* every named arm above leaves the retired counter to the
           dispatch loop; only the interpreter fallback retires itself *)
        match inst with
        | Inst.Lui _ | Inst.Auipc _ | Inst.Load _ | Inst.Store _ | Inst.Op _
        | Inst.Opi _ | Inst.C_nop | Inst.C_addi _ | Inst.C_li _ | Inst.C_mv _
        | Inst.C_add _ | Inst.C_ld _ | Inst.C_sd _ | Inst.C_slli _
        | Inst.C_lw _ | Inst.C_sw _ | Inst.C_lui _ | Inst.C_addiw _
        | Inst.C_andi _ | Inst.C_alu _ ->
            Tblock.Op op
        | _ -> Tblock.Op_self op

(* ------------------------------------------------------------------ *)
(* IR emission                                                         *)
(* ------------------------------------------------------------------ *)

let page_mask = Memory.page_size - 1

(* 32-bit sign extension of a [0, 2^32) int — the load_u32 result — in
   native arithmetic, so a sign-extending word load boxes exactly once. *)
let sext32_int v = (v lxor 0x8000_0000) - 0x8000_0000

(* Compile one optimized IR op to its effect closure. Mirrors the legacy
   [compile_op] specializations, plus two allocation-saving idioms that are
   exact in native [int]: effective addresses are computed as
   [Int64.to_int base + off] (equal to the boxed Int64 sum modulo 2^63,
   which is all an address is), and store data is masked in [int].
   Fault-capable ops write their own pc first, exactly like the legacy
   closures; pure ops never touch pc. *)
let emit_effect (o : Tir.op) : t -> unit =
  let pc = o.Tir.opc in
  match o.Tir.k with
  | Tir.Kdead -> fun _ -> ()
  | Tir.Kconst (rd, v) -> fun t -> set_reg t rd v
  | Tir.Kmv (rd, rs) -> fun t -> set_reg t rd (get_reg t rs)
  | Tir.Kalu (op, rd, r1, r2) -> (
      (* W-type ops are exact in native [int]: the 32-bit truncated result
         only depends on the operands' low 32 bits, which [Int64.to_int]
         (mod 2^63) preserves — one result box instead of a box per
         intermediate Int64 step *)
      match op with
      | Inst.Add -> fun t -> set_reg t rd (Int64.add (get_reg t r1) (get_reg t r2))
      | Inst.Sub -> fun t -> set_reg t rd (Int64.sub (get_reg t r1) (get_reg t r2))
      | Inst.And ->
          fun t -> set_reg t rd (Int64.logand (get_reg t r1) (get_reg t r2))
      | Inst.Or -> fun t -> set_reg t rd (Int64.logor (get_reg t r1) (get_reg t r2))
      | Inst.Xor ->
          fun t -> set_reg t rd (Int64.logxor (get_reg t r1) (get_reg t r2))
      | Inst.Addw ->
          fun t ->
            let v =
              (Int64.to_int (get_reg t r1) + Int64.to_int (get_reg t r2))
              land 0xFFFFFFFF
            in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Subw ->
          fun t ->
            let v =
              (Int64.to_int (get_reg t r1) - Int64.to_int (get_reg t r2))
              land 0xFFFFFFFF
            in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Mulw ->
          fun t ->
            let v =
              Int64.to_int (get_reg t r1) * Int64.to_int (get_reg t r2)
              land 0xFFFFFFFF
            in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Sllw ->
          fun t ->
            let sh = Int64.to_int (get_reg t r2) land 31 in
            let v = (Int64.to_int (get_reg t r1) lsl sh) land 0xFFFFFFFF in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Srlw ->
          fun t ->
            let sh = Int64.to_int (get_reg t r2) land 31 in
            let v = (Int64.to_int (get_reg t r1) land 0xFFFFFFFF) lsr sh in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Sraw ->
          fun t ->
            let sh = Int64.to_int (get_reg t r2) land 31 in
            let v = sext32_int (Int64.to_int (get_reg t r1) land 0xFFFFFFFF) in
            set_reg t rd (Int64.of_int (v asr sh))
      | Inst.Mul -> fun t -> set_reg t rd (Int64.mul (get_reg t r1) (get_reg t r2))
      | _ -> fun t -> set_reg t rd (Tir.alu op (get_reg t r1) (get_reg t r2)))
  | Tir.Kaluc (op, rd, r1, c) -> (
      match op with
      | Inst.Add -> fun t -> set_reg t rd (Int64.add (get_reg t r1) c)
      | Inst.And -> fun t -> set_reg t rd (Int64.logand (get_reg t r1) c)
      | Inst.Or -> fun t -> set_reg t rd (Int64.logor (get_reg t r1) c)
      | Inst.Xor -> fun t -> set_reg t rd (Int64.logxor (get_reg t r1) c)
      | Inst.Addw ->
          let ci = Int64.to_int c in
          fun t ->
            let v = (Int64.to_int (get_reg t r1) + ci) land 0xFFFFFFFF in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Subw ->
          let ci = Int64.to_int c in
          fun t ->
            let v = (Int64.to_int (get_reg t r1) - ci) land 0xFFFFFFFF in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Mulw ->
          let ci = Int64.to_int c in
          fun t ->
            let v = Int64.to_int (get_reg t r1) * ci land 0xFFFFFFFF in
            set_reg t rd (Int64.of_int (sext32_int v))
      | _ -> fun t -> set_reg t rd (Tir.alu op (get_reg t r1) c))
  | Tir.Kalui (op, rd, r1, imm) -> (
      match op with
      | Inst.Addi ->
          let c = Int64.of_int imm in
          fun t -> set_reg t rd (Int64.add (get_reg t r1) c)
      | Inst.Andi ->
          let c = Int64.of_int imm in
          fun t -> set_reg t rd (Int64.logand (get_reg t r1) c)
      | Inst.Slli ->
          let sh = imm land 63 in
          fun t -> set_reg t rd (Int64.shift_left (get_reg t r1) sh)
      | Inst.Srli ->
          let sh = imm land 63 in
          fun t -> set_reg t rd (Int64.shift_right_logical (get_reg t r1) sh)
      | Inst.Srai ->
          let sh = imm land 63 in
          fun t -> set_reg t rd (Int64.shift_right (get_reg t r1) sh)
      | Inst.Addiw ->
          fun t ->
            let v = (Int64.to_int (get_reg t r1) + imm) land 0xFFFFFFFF in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Slliw ->
          let sh = imm land 31 in
          fun t ->
            let v = (Int64.to_int (get_reg t r1) lsl sh) land 0xFFFFFFFF in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Srliw ->
          let sh = imm land 31 in
          fun t ->
            let v = (Int64.to_int (get_reg t r1) land 0xFFFFFFFF) lsr sh in
            set_reg t rd (Int64.of_int (sext32_int v))
      | Inst.Sraiw ->
          let sh = imm land 31 in
          fun t ->
            let v = sext32_int (Int64.to_int (get_reg t r1) land 0xFFFFFFFF) in
            set_reg t rd (Int64.of_int (v asr sh))
      | _ -> fun t -> set_reg t rd (Tir.alui op (get_reg t r1) imm))
  | Tir.Kload { width; unsigned; rd; base; off } -> (
      match (width, unsigned) with
      | Inst.D, _ ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            set_reg t rd (Memory.load_u64 t.cur.vmem addr)
      | Inst.W, false ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            set_reg t rd (Int64.of_int (sext32_int (Memory.load_u32 t.cur.vmem addr)))
      | Inst.W, true ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            set_reg t rd (Int64.of_int (Memory.load_u32 t.cur.vmem addr))
      | Inst.H, false ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            set_reg t rd (Int64.of_int (Encode.sext (Memory.load_u16 t.cur.vmem addr) 16))
      | Inst.H, true ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            set_reg t rd (Int64.of_int (Memory.load_u16 t.cur.vmem addr))
      | Inst.B, false ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            set_reg t rd (Int64.of_int (Encode.sext (Memory.load_u8 t.cur.vmem addr) 8))
      | Inst.B, true ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            set_reg t rd (Int64.of_int (Memory.load_u8 t.cur.vmem addr)))
  | Tir.Kloadc { width; unsigned; rd; addr } -> (
      match (width, unsigned) with
      | Inst.D, _ ->
          fun t ->
            t.pc <- pc;
            set_reg t rd (Memory.load_u64 t.cur.vmem addr)
      | Inst.W, false ->
          fun t ->
            t.pc <- pc;
            set_reg t rd (Int64.of_int (sext32_int (Memory.load_u32 t.cur.vmem addr)))
      | Inst.W, true ->
          fun t ->
            t.pc <- pc;
            set_reg t rd (Int64.of_int (Memory.load_u32 t.cur.vmem addr))
      | Inst.H, false ->
          fun t ->
            t.pc <- pc;
            set_reg t rd (Int64.of_int (Encode.sext (Memory.load_u16 t.cur.vmem addr) 16))
      | Inst.H, true ->
          fun t ->
            t.pc <- pc;
            set_reg t rd (Int64.of_int (Memory.load_u16 t.cur.vmem addr))
      | Inst.B, false ->
          fun t ->
            t.pc <- pc;
            set_reg t rd (Int64.of_int (Encode.sext (Memory.load_u8 t.cur.vmem addr) 8))
      | Inst.B, true ->
          fun t ->
            t.pc <- pc;
            set_reg t rd (Int64.of_int (Memory.load_u8 t.cur.vmem addr)))
  | Tir.Kstore { width; rs2; base; off } -> (
      match width with
      | Inst.D ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            Memory.store_u64 t.cur.vmem addr (get_reg t rs2)
      | Inst.W ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            Memory.store_u32 t.cur.vmem addr (Int64.to_int (get_reg t rs2) land 0xFFFFFFFF)
      | Inst.H ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            Memory.store_u16 t.cur.vmem addr (Int64.to_int (get_reg t rs2) land 0xFFFF)
      | Inst.B ->
          fun t ->
            t.pc <- pc;
            let addr = Int64.to_int (get_reg t base) + off in
            Memory.store_u8 t.cur.vmem addr (Int64.to_int (get_reg t rs2) land 0xFF))
  | Tir.Kstorec { width; rs2; addr } -> (
      match width with
      | Inst.D ->
          fun t ->
            t.pc <- pc;
            Memory.store_u64 t.cur.vmem addr (get_reg t rs2)
      | Inst.W ->
          fun t ->
            t.pc <- pc;
            Memory.store_u32 t.cur.vmem addr (Int64.to_int (get_reg t rs2) land 0xFFFFFFFF)
      | Inst.H ->
          fun t ->
            t.pc <- pc;
            Memory.store_u16 t.cur.vmem addr (Int64.to_int (get_reg t rs2) land 0xFFFF)
      | Inst.B ->
          fun t ->
            t.pc <- pc;
            Memory.store_u8 t.cur.vmem addr (Int64.to_int (get_reg t rs2) land 0xFF))
  | Tir.Kstorev { width; v; base; off } -> (
      match width with
      | Inst.D ->
          fun t ->
            t.pc <- pc;
            Memory.store_u64 t.cur.vmem (Int64.to_int (get_reg t base) + off) v
      | Inst.W ->
          let vi = Int64.to_int v land 0xFFFFFFFF in
          fun t ->
            t.pc <- pc;
            Memory.store_u32 t.cur.vmem (Int64.to_int (get_reg t base) + off) vi
      | Inst.H ->
          let vi = Int64.to_int v land 0xFFFF in
          fun t ->
            t.pc <- pc;
            Memory.store_u16 t.cur.vmem (Int64.to_int (get_reg t base) + off) vi
      | Inst.B ->
          let vi = Int64.to_int v land 0xFF in
          fun t ->
            t.pc <- pc;
            Memory.store_u8 t.cur.vmem (Int64.to_int (get_reg t base) + off) vi)
  | Tir.Kstorecv { width; v; addr } -> (
      match width with
      | Inst.D ->
          fun t ->
            t.pc <- pc;
            Memory.store_u64 t.cur.vmem addr v
      | Inst.W ->
          let vi = Int64.to_int v land 0xFFFFFFFF in
          fun t ->
            t.pc <- pc;
            Memory.store_u32 t.cur.vmem addr vi
      | Inst.H ->
          let vi = Int64.to_int v land 0xFFFF in
          fun t ->
            t.pc <- pc;
            Memory.store_u16 t.cur.vmem addr vi
      | Inst.B ->
          let vi = Int64.to_int v land 0xFF in
          fun t ->
            t.pc <- pc;
            Memory.store_u8 t.cur.vmem addr vi)

(* The read-modify-write middle op as a value transformer, or None if the
   op at [i+1] is not a pure ALU of the form [x <- x op _]. *)
let rmw_apply (k : Tir.kind) x =
  match k with
  | Tir.Kalu (op, rd, r1, r2) when Reg.equal rd x && Reg.equal r1 x ->
      Some (fun t v -> Tir.alu op v (get_reg t r2))
  | Tir.Kalu (op, rd, r1, r2) when Reg.equal rd x && Reg.equal r2 x ->
      Some (fun t v -> Tir.alu op (get_reg t r1) v)
  | Tir.Kaluc (op, rd, r1, c) when Reg.equal rd x && Reg.equal r1 x ->
      Some (fun _ v -> Tir.alu op v c)
  | Tir.Kalui (op, rd, r1, imm) when Reg.equal rd x && Reg.equal r1 x ->
      Some (fun _ v -> Tir.alui op v imm)
  | _ -> None

(* Emit one optimized straight-line run as execution units:

   - a maximal run of pure (non-fault-capable) ops becomes ONE unit —
     sound because nothing inside it is observable (no faults, no side
     exits; a fuel split lands on unit boundaries or replays the whole
     unit through the interpreter), which is also what makes the
     dead-write kills inside it invisible. Dead ops cost nothing at run
     time (no closure at all), and runs of folded constants collapse into
     single multi-register writes;
   - [load; alu; store] to one address (the classic in-memory
     read-modify-write) becomes one self-retiring unit computing the
     address once in native arithmetic;
   - adjacent 8-byte loads (or stores) off the same base register become
     one unit performing a single TLB check when both land on one page —
     the second access reuses the first one's page bytes (see
     Memory.read_data), with a guarded fallback for page-crossing pairs.

   Retirement: pure-segment units leave crediting to the dispatch loop
   ([eself = false]); memory-pattern units retire internally at the same
   points the step engine would, so partial progress at a fault is
   bit-identical. *)
(* The unit builder below is deliberately split from the optimizer pass: a
   fresh translation runs [Tir.optimize] first ({!emit_run}), while plan
   replay ({!seed_plan}) feeds persisted post-optimize ops straight into
   [emit_units] — the builder reads only the op kinds, so re-emitting a
   recorded run reconstructs the original execution units without paying
   for the passes again. *)
let emit_units ir_units tlb_elided (ops : Tir.op array) =
  let n = Array.length ops in
  let out = ref [] and nout = ref 0 in
  let push ?fuse efn ewidth eself =
    out := { Tblock.efn; ewidth; eself } :: !out;
    incr nout;
    match fuse with
    | Some (pc, kind) when !Obs.enabled ->
        Obs.emit (Obs.Tb_fuse { pc; kind })
    | _ -> ()
  in
  let i = ref 0 in
  while !i < n do
    let o = ops.(!i) in
    if not (Tir.faultable o.Tir.k) then begin
      (* maximal pure segment [i, j) *)
      let j = ref (!i + 1) in
      while !j < n && not (Tir.faultable ops.(!j).Tir.k) do incr j done;
      let width = !j - !i in
      (* build the effect list, skipping dead ops and merging constant
         runs into single multi-register writes *)
      let effs = ref [] and neffs = ref 0 in
      let k = ref !i in
      while !k < !j do
        (match ops.(!k).Tir.k with
        | Tir.Kdead -> incr k
        | Tir.Kconst _ ->
            let c0 = !k in
            let c = ref !k in
            while
              !c < !j
              && match ops.(!c).Tir.k with Tir.Kconst _ | Tir.Kdead -> true | _ -> false
            do
              incr c
            done;
            (* collect the constants in the [c0, c) stretch *)
            let rds = ref [] and vals = ref [] and nc = ref 0 in
            for x = c0 to !c - 1 do
              match ops.(x).Tir.k with
              | Tir.Kconst (rd, v) ->
                  rds := Reg.to_int rd :: !rds;
                  vals := v :: !vals;
                  incr nc
              | _ -> ()
            done;
            (match (!rds, !vals) with
            | [ r1 ], [ v1 ] ->
                effs := (fun t -> Array.unsafe_set t.xregs r1 v1) :: !effs
            | [ r2; r1 ], [ v2; v1 ] ->
                effs :=
                  (fun t ->
                    Array.unsafe_set t.xregs r1 v1;
                    Array.unsafe_set t.xregs r2 v2)
                  :: !effs
            | _ ->
                let rds = Array.of_list (List.rev !rds) in
                let vals = Array.of_list (List.rev !vals) in
                let m = Array.length rds in
                effs :=
                  (fun t ->
                    for x = 0 to m - 1 do
                      Array.unsafe_set t.xregs (Array.unsafe_get rds x)
                        (Array.unsafe_get vals x)
                    done)
                  :: !effs);
            if !nc > 0 then incr neffs;
            k := !c
        | _ ->
            effs := emit_effect ops.(!k) :: !effs;
            incr neffs;
            incr k)
      done;
      let efn =
        match !effs with
        | [] -> fun _ -> ()
        | [ f ] -> f
        | [ f2; f1 ] ->
            fun t ->
              f1 t;
              f2 t
        | l ->
            let fs = Array.of_list (List.rev l) in
            let m = Array.length fs in
            fun t ->
              for x = 0 to m - 1 do
                (Array.unsafe_get fs x) t
              done
      in
      push ?fuse:(if width > 1 then Some (o.Tir.opc, "pure_run") else None) efn width false;
      i := !j
    end
    else begin
      (* fault-capable op: try the memory patterns *)
      let consumed = ref 0 in
      (match o.Tir.k with
      | Tir.Kload { width = (Inst.D | Inst.W) as w; unsigned = false; rd = x; base = b; off }
        when !i + 2 < n && Reg.to_int x <> 0 && not (Reg.equal x b) -> (
          (* load; alu; store back to the same slot *)
          match rmw_apply ops.(!i + 1).Tir.k x with
          | Some apply -> (
              match ops.(!i + 2).Tir.k with
              | Tir.Kstore { width = w2; rs2; base = b2; off = off2 }
                when w2 = w && Reg.equal rs2 x && Reg.equal b2 b && off2 = off ->
                  let pc1 = o.Tir.opc and pc3 = ops.(!i + 2).Tir.opc in
                  let efn =
                    match w with
                    | Inst.D ->
                        fun t ->
                          t.pc <- pc1;
                          let m = t.cur.vmem in
                          let a = Int64.to_int (get_reg t b) + off in
                          let v = Memory.load_u64 m a in
                          let v' = apply t v in
                          set_reg t x v';
                          t.retired <- t.retired + 2;
                          t.pc <- pc3;
                          Memory.store_u64 m a v';
                          t.retired <- t.retired + 1
                    | _ ->
                        fun t ->
                          t.pc <- pc1;
                          let m = t.cur.vmem in
                          let a = Int64.to_int (get_reg t b) + off in
                          let v = Int64.of_int (sext32_int (Memory.load_u32 m a)) in
                          let v' = apply t v in
                          set_reg t x v';
                          t.retired <- t.retired + 2;
                          t.pc <- pc3;
                          Memory.store_u32 m a (Int64.to_int v' land 0xFFFFFFFF);
                          t.retired <- t.retired + 1
                  in
                  push ~fuse:(pc1, "rmw") efn 3 true;
                  consumed := 3
              | _ -> ())
          | None -> ())
      | _ -> ());
      if !consumed = 0 then begin
        match (o.Tir.k, if !i + 1 < n then Some ops.(!i + 1).Tir.k else None) with
        | ( Tir.Kload { width = Inst.D; rd = r1; base = b; off = o1; _ },
            Some (Tir.Kload { width = Inst.D; rd = r2; base = b2; off = o2; _ }) )
          when Reg.equal b b2 && not (Reg.equal r1 b) ->
            (* paired 8-byte loads off one base: one TLB check when both
               land on the same page *)
            let pc1 = o.Tir.opc and pc2 = ops.(!i + 1).Tir.opc in
            let d = o2 - o1 in
            let efn t =
              t.pc <- pc1;
              let m = t.cur.vmem in
              let a1 = Int64.to_int (get_reg t b) + o1 in
              let off1 = a1 land page_mask in
              let off2 = off1 + d in
              if off1 + 8 <= Memory.page_size && off2 >= 0 && off2 + 8 <= Memory.page_size
              then begin
                let pg = Memory.read_data m a1 in
                set_reg t r1 (Bytes.get_int64_le pg off1);
                set_reg t r2 (Bytes.get_int64_le pg off2);
                t.retired <- t.retired + 2
              end
              else begin
                set_reg t r1 (Memory.load_u64 m a1);
                t.retired <- t.retired + 1;
                t.pc <- pc2;
                set_reg t r2 (Memory.load_u64 m (Int64.to_int (get_reg t b) + o2));
                t.retired <- t.retired + 1
              end
            in
            push ~fuse:(pc1, "ld_pair") efn 2 true;
            incr tlb_elided;
            consumed := 2
        | ( Tir.Kstore { width = Inst.D; rs2 = r1; base = b; off = o1 },
            Some (Tir.Kstore { width = Inst.D; rs2 = r2; base = b2; off = o2 }) )
          when Reg.equal b b2 ->
            let pc1 = o.Tir.opc and pc2 = ops.(!i + 1).Tir.opc in
            let d = o2 - o1 in
            let efn t =
              t.pc <- pc1;
              let m = t.cur.vmem in
              let a1 = Int64.to_int (get_reg t b) + o1 in
              let off1 = a1 land page_mask in
              let off2 = off1 + d in
              if off1 + 8 <= Memory.page_size && off2 >= 0 && off2 + 8 <= Memory.page_size
              then begin
                let pg = Memory.write_data m a1 in
                Bytes.set_int64_le pg off1 (get_reg t r1);
                Bytes.set_int64_le pg off2 (get_reg t r2);
                t.retired <- t.retired + 2
              end
              else begin
                Memory.store_u64 m a1 (get_reg t r1);
                t.retired <- t.retired + 1;
                t.pc <- pc2;
                Memory.store_u64 m (Int64.to_int (get_reg t b) + o2) (get_reg t r2);
                t.retired <- t.retired + 1
              end
            in
            push ~fuse:(pc1, "st_pair") efn 2 true;
            incr tlb_elided;
            consumed := 2
        | _ ->
            push (emit_effect o) 1 false;
            consumed := 1
      end;
      i := !i + !consumed
    end
  done;
  ir_units := !ir_units + !nout;
  List.rev !out

let emit_run t stats ir_units tlb_elided (ops : Tir.op array) =
  Tir.optimize t.ir_state stats ops;
  emit_units ir_units tlb_elided ops

let use_ir t = t.ir && t.icache = None

(* Map a requested tier to the shape flags this machine can honor: tier 1
   is a straight-line block, tier 2 adds superblock formation, tier 3 adds
   the IR pipeline — each capped by the machine's own ablation flags, so a
   --engine block machine never climbs past tier 1 (and never churns
   retranslating into the same shape). *)
let tier_cap t = if use_ir t then 3 else if t.superblocks then 2 else 1

let translate_block ?(tier = 3) ?(relayout = []) t entry =
  let t0 = Unix.gettimeofday () in
  let stats = Tir.stats_create () in
  let ir_units = ref 0 and tlb_elided = ref 0 in
  let steps = ref [] in
  Tir.state_reset t.ir_state;
  (* Scope the block shape to the requested tier by overriding the machine
     flags for the duration of this translation: [compile_op] and the
     [lower] gate read them directly. The effective tier (after the
     machine's own caps) is recorded on the block for the promotion
     driver and the profile report. *)
  let sb0 = t.superblocks and ir0 = t.ir in
  if tier <= 1 then t.superblocks <- false;
  if tier <= 2 then t.ir <- false;
  t.relayout <- relayout;
  let etier = tier_cap t in
  let b =
    Fun.protect
      ~finally:(fun () ->
        t.superblocks <- sb0;
        t.ir <- ir0;
        t.relayout <- [])
    @@ fun () ->
    Tblock.translate ~gens:t.gens ~epoch:t.code_epoch ~isa:t.isa
      ~decode:(fun pc ->
        match decode_at t pc with
        | d -> Some d
        | exception Efault _ -> None
        | exception Memory.Violation _ -> None)
      ~lower:(fun ~pc inst size ->
        (* capability gating here: only instructions this hart can execute
           reach the IR; anything else falls through to [compile], whose
           legacy path stops the block with the precise fault semantics *)
        let r =
          if use_ir t && Ext.supports t.isa inst then Tir.lower ~pc inst size
          else None
        in
        (* record the lower/compile decision positionally: the op records
           pushed here are the very ones the closures capture, so by
           export time their [k] fields hold the post-optimize kinds *)
        if t.rec_on then
          steps := (match r with Some op -> Slower op | None -> Scompile) :: !steps;
        r)
      ~compile:(fun ~pc inst size ->
        let c = compile_op t ~pc inst size in
        (* maintain the translation-time register state across non-IR
           units: an inlined jal writes a known link value, interpreter
           and vector units have unknown register effects, inlined
           branches and jumps write nothing *)
        (match c with
        | Tblock.Jump _ -> (
            match inst with
            | Inst.Jal (rd, _) ->
                Tir.state_learn t.ir_state rd (Int64.of_int (pc + size))
            | _ -> ())
        | Tblock.Op _ | Tblock.Op_self _ -> Tir.state_clobber t.ir_state
        | Tblock.Brcond _ | Tblock.Term | Tblock.Term_fn _ | Tblock.Stop -> ());
        c)
      ~emit:(fun ops -> emit_run t stats ir_units tlb_elided ops)
      entry
  in
  Tblock.set_tier b ~tier:etier ~relaid:(relayout <> []);
  if t.rec_on then
    Hashtbl.replace t.cur.skels entry
      { sk_steps = Array.of_list (List.rev !steps); sk_relayout = relayout };
  t.fused_pairs <- t.fused_pairs + b.Tblock.n_fused;
  if !ir_units > 0 then begin
    t.ir_blocks <- t.ir_blocks + 1;
    t.ir_units <- t.ir_units + !ir_units;
    t.ir_folded <- t.ir_folded + stats.Tir.s_folded;
    t.ir_dead <- t.ir_dead + stats.Tir.s_dead;
    t.ir_pc_elided <- t.ir_pc_elided + stats.Tir.s_pc_elided;
    t.ir_tlb_elided <- t.ir_tlb_elided + !tlb_elided;
    t.ir_cached <- t.ir_cached + stats.Tir.s_cached;
    if !Obs.enabled then
      Obs.emit
        (Obs.Tb_ir
           { entry;
             units = !ir_units;
             folded = stats.Tir.s_folded;
             dead = stats.Tir.s_dead;
             pc_elided = stats.Tir.s_pc_elided;
             tlb_elided = !tlb_elided;
             cached = stats.Tir.s_cached })
  end;
  let dt = Unix.gettimeofday () -. t0 in
  t.translate_s <- t.translate_s +. dt;
  t.translations <- t.translations + 1;
  if !Metrics.enabled then Metrics.observe m_translate_ns (int_of_float (dt *. 1e9));
  b

let publish_block t entry b =
  Hashtbl.replace t.cur.blocks entry b;
  if !Obs.enabled then begin
    Obs.emit (Obs.Tb_compile { entry; body = Tblock.body_length b });
    Obs.emit
      (Obs.Tb_superblock
         { entry;
           insts = Tblock.body_length b;
           pages = Array.length b.Tblock.pages;
           jumps = b.Tblock.n_jumps;
           exits = b.Tblock.n_branches;
           fused = b.Tblock.n_fused })
  end

(* Block-table probe at the current pc. [None] means the entry is still
   below the first tier threshold on a tiered machine: the caller must
   interpret one instruction instead of dispatching a block. Untiered
   machines translate on first touch at the top tier their flags allow,
   exactly the PR6 behavior. *)
let block_or_cold t =
  match Hashtbl.find_opt t.cur.blocks t.pc with
  | Some b when Tblock.revalidate t.gens ~isa:t.isa ~epoch:t.code_epoch b ->
      if !Obs.enabled then
        Obs.emit (Obs.Tb_hit { entry = t.pc; body = Tblock.body_length b });
      Some b
  | Some _ | None ->
      if not t.tiered then begin
        let b = translate_block t t.pc in
        publish_block t t.pc b;
        Some b
      end
      else begin
        let h =
          match Hashtbl.find_opt t.cur.heat t.pc with
          | Some r ->
              incr r;
              !r
          | None ->
              Hashtbl.add t.cur.heat t.pc (ref 1);
              1
        in
        if h < tier1_heat then None
        else begin
          Hashtbl.remove t.cur.heat t.pc;
          let b = translate_block ~tier:1 t t.pc in
          publish_block t t.pc b;
          Some b
        end
      end

(* Derive the recompile plan from a block's observed exit profile: for
   each inlined branch, the conditional taken rate is its side-exit count
   over the dispatches that actually reached it (dispatches minus the
   exits taken earlier in the block). Branches that contradict BTFN get
   cut (terminator) or, when lopsided enough, flipped (trace layout). *)
let relayout_plan b =
  let x = b.Tblock.xexits in
  if b.Tblock.hot <= 0 || Array.length x = 0 then []
  else begin
    let plan = ref [] in
    let reached = ref b.Tblock.hot in
    for u = 0 to Array.length x - 1 do
      let e = Array.unsafe_get x u in
      (* a superblock can wrap a loop and decode the same branch several
         times; late occurrences see only the few dispatches that survived
         every earlier exit, so their rates are noise. Keep the first
         (best-sampled) occurrence of each pc and ignore units whose
         sample is below the floor. *)
      if e > 0 && !reached >= relayout_min_sample then begin
        let rate = float_of_int e /. float_of_int !reached in
        if rate >= relayout_cut_rate then begin
          let ipc = b.Tblock.pcs.(b.Tblock.starts.(u)) in
          if not (List.mem_assoc ipc !plan) then
            plan := (ipc, rate >= relayout_flip_rate) :: !plan
        end
      end;
      reached := !reached - e
    done;
    List.rev !plan
  end

(* Replace a block with a higher-tier (or profile-relaid) translation of
   the same entry. The old block is retired — its epoch check can never
   pass again — and dropped from the table, so every chain link and
   inline-cache entry into it fails its guard on the next follow and
   re-resolves to the replacement. No global epoch bump: unrelated links
   stay intact. *)
let replace_block t b ~tier ~relayout =
  let entry = b.Tblock.entry in
  Tblock.retire b;
  Hashtbl.remove t.cur.blocks entry;
  let nb = translate_block ~tier ~relayout t entry in
  publish_block t entry nb;
  nb

(* Hotness driver, run once per dispatch on tiered machines. A block below
   the machine's tier cap climbs one tier when its dispatch count crosses
   the next threshold (a tier-2 block's observed exit profile rides along
   into the tier-3 translation); a top-tier block that keeps side-exiting
   gets one profile-guided recompile. Both paths replace the block, so
   the counter restarts and the next check measures the new layout. *)
let maybe_promote t b =
  let hot = Tblock.tick_hot b in
  let tier = b.Tblock.tier in
  let cap = tier_cap t in
  if tier < cap && hot >= (if tier = 1 then tier2_hot else tier3_hot) then begin
    let relayout = if tier >= 2 then relayout_plan b else [] in
    let exits = Tblock.exits_total b in
    let nb = replace_block t b ~tier:(tier + 1) ~relayout in
    t.tier_promotions <- t.tier_promotions + 1;
    if relayout <> [] then t.recompiles <- t.recompiles + 1;
    if !Obs.enabled then begin
      Obs.emit
        (Obs.Tier_promote
           { entry = nb.Tblock.entry; tier = nb.Tblock.tier; hot });
      if relayout <> [] then
        Obs.emit
          (Obs.Tb_recompile
             { entry = nb.Tblock.entry;
               hot;
               exits;
               relaid = List.length relayout })
    end;
    nb
  end
  else if
    tier >= 2 && (not b.Tblock.relaid)
    && hot >= recompile_hot
    && b.Tblock.n_branches > 0
  then begin
    match relayout_plan b with
    | [] ->
        (* the observed profile agrees with the static layout: mark the
           block checked so the scan never runs again *)
        Tblock.set_tier b ~tier ~relaid:true;
        b
    | plan ->
        let exits = Tblock.exits_total b in
        let nb = replace_block t b ~tier ~relayout:plan in
        t.recompiles <- t.recompiles + 1;
        if !Obs.enabled then
          Obs.emit
            (Obs.Tb_recompile
               { entry = nb.Tblock.entry;
                 hot;
                 exits;
                 relaid = List.length plan });
        nb
  end
  else b

(* Train an inline-cache site after a miss resolved [pc] to [nb]. A miss
   on the predicted target (stale block: SMC, tier promotion) re-binds the
   monomorphic slot in place; a genuinely new target demotes the old
   binding into the polymorphic table (shedding entries that died under
   it) until the table overflows and the site goes megamorphic. *)
let ic_train t s pc nb =
  match s.site_tb with
  | None ->
      s.site_tb <- Some nb;
      s.site_target <- pc
  | Some _ when s.site_target = pc -> s.site_tb <- Some nb
  | Some ob ->
      let keep = ref [] and nkeep = ref 0 in
      Array.iter
        (fun ((p, b) as e) ->
          if
            p <> pc
            && p <> s.site_target
            && Tblock.epoch_current b t.code_epoch
          then begin
            keep := e :: !keep;
            incr nkeep
          end)
        s.site_poly;
      if Tblock.epoch_current ob t.code_epoch then begin
        keep := (s.site_target, ob) :: !keep;
        incr nkeep
      end;
      if !nkeep >= ic_poly_limit then begin
        s.site_mega <- true;
        s.site_tb <- None;
        s.site_target <- -1;
        s.site_poly <- [||];
        if !Obs.enabled then
          Obs.emit (Obs.Ic_mega { site = s.site_pc; targets = !nkeep + 1 })
      end
      else begin
        s.site_poly <- Array.of_list !keep;
        s.site_tb <- Some nb;
        s.site_target <- pc
      end

(* Inline-cache dispatch: the previous dispatch completed through an
   indirect terminator that published its site. Counting discipline: a
   prediction served by the monomorphic slot or the polymorphic table is
   an IC hit and a chain hit (the dispatch skipped the block table exactly
   like a link follow); a fall-through to the block table is an IC miss
   and trains the site; a dispatch through a megamorphic site is counted
   separately — the site has stopped predicting, so it is neither. *)
let ic_dispatch t s pc =
  match s.site_tb with
  | Some nb when s.site_target = pc && Tblock.epoch_current nb t.code_epoch ->
      s.site_hits <- s.site_hits + 1;
      t.ic_hits <- t.ic_hits + 1;
      t.chain_hits <- t.chain_hits + 1;
      if !Obs.enabled then
        Obs.emit (Obs.Ic_hit { site = s.site_pc; target = pc });
      Some nb
  | _ -> (
      let poly =
        if s.site_mega then None
        else begin
          let a = s.site_poly in
          let n = Array.length a in
          let rec go i =
            if i >= n then None
            else
              let p, b = Array.unsafe_get a i in
              if p = pc && Tblock.epoch_current b t.code_epoch then Some b
              else go (i + 1)
          in
          go 0
        end
      in
      match poly with
      | Some nb ->
          s.site_hits <- s.site_hits + 1;
          t.ic_hits <- t.ic_hits + 1;
          t.chain_hits <- t.chain_hits + 1;
          if !Obs.enabled then
            Obs.emit (Obs.Ic_hit { site = s.site_pc; target = pc });
          Some nb
      | None ->
          if s.site_mega then begin
            t.ic_mega_d <- t.ic_mega_d + 1;
            block_or_cold t
          end
          else (
            match block_or_cold t with
            | None -> None  (* entry still interpreted: nothing to cache *)
            | Some nb ->
                s.site_misses <- s.site_misses + 1;
                t.ic_misses <- t.ic_misses + 1;
                if !Obs.enabled then
                  Obs.emit (Obs.Ic_miss { site = s.site_pc; target = pc });
                ic_train t s pc nb;
                Some nb))

(* ------------------------------------------------------------------ *)
(* Run loops                                                           *)
(* ------------------------------------------------------------------ *)

let run_step ~handlers ~fuel t =
  let remaining = ref fuel in
  let result = ref None in
  while !result = None && !remaining > 0 do
    (match step ~handlers t with Some s -> result := Some s | None -> ());
    decr remaining
  done;
  match !result with Some s -> s | None -> Fuel_exhausted

(* Block-cached fast path: execute whole straight-line bodies between
   handler-visible events. Accounting (retired, cycles, icache) is done per
   instruction with the same ordering as [step], so both engines are
   observably identical — including mid-block faults, where the faulting
   instruction has consumed its fuel but not retired, and fuel exhaustion
   mid-block.

   Hot transfers are direct-chained: when a block completes normally, the
   next dispatch first tries the finished block's successor link (fall
   slot when the new pc is the fall-through, taken slot otherwise) and only
   falls back to the block-table probe — overwriting the link — when the
   guard fails. The guard is entry-pc equality, the one-compare epoch check,
   and same-view identity (a handler may have switched views mid-run, and
   links never cross views), so a chain hit proves exactly what a
   revalidated table hit proves. *)
let run_blocks ~handlers ~fuel t =
  let remaining = ref fuel in
  let result = ref None in
  let apply = function Resume pc -> t.pc <- pc | Stop s -> result := Some s in
  (* block that just completed normally (plus its view); cleared on any
     other path so faults/handler redirects re-enter through the table *)
  let prev = ref None in
  while !result = None && !remaining > 0 do
    (* an indirect terminator publishes its inline-cache site as it
       completes; consume it here (or drop it, if this dispatch is not a
       straight continuation — faults and handler redirects must not
       train a site with a pc it did not produce) *)
    let pic = t.pending_ic in
    if pic != None then t.pending_ic <- None;
    let bo =
      match !prev with
      | Some (pb, pv) when pv == t.cur -> (
          let pc = t.pc in
          match pic with
          | Some s -> ic_dispatch t s pc
          | None -> (
              let to_fall = pc = pb.Tblock.fall in
              match
                (if to_fall then pb.Tblock.link_fall else pb.Tblock.link_taken)
              with
              | Some nb
                when nb.Tblock.entry = pc
                     && Tblock.epoch_current nb t.code_epoch ->
                  t.chain_hits <- t.chain_hits + 1;
                  if !Obs.enabled then
                    Obs.emit
                      (Obs.Tb_hit { entry = pc; body = Tblock.body_length nb });
                  Some nb
              | _ -> (
                  match block_or_cold t with
                  | Some nb ->
                      if to_fall then Tblock.set_link_fall pb nb
                      else Tblock.set_link_taken pb nb;
                      if !Obs.enabled then
                        Obs.emit
                          (Obs.Tb_chain { src = pb.Tblock.entry; dst = pc });
                      Some nb
                  | None -> None)))
      | _ -> block_or_cold t
    in
    let v0 = t.cur in
    prev := None;
    match bo with
    | None ->
        (* tier 0: the entry is still below the first tier threshold —
           interpret one instruction. Not a block dispatch (the
           translated-code rates keep honest denominators) and no chain
           links are formed across the interpreted gap. *)
        (match step ~handlers t with Some s -> result := Some s | None -> ());
        decr remaining
    | Some b0 ->
    let b = if t.tiered then maybe_promote t b0 else b0 in
    t.tb_dispatches <- t.tb_dispatches + 1;
    if Tblock.degenerate b then begin
      (* illegal, unsupported, or unmapped entry: the slow path raises the
         precise fault and routes it to the handlers *)
      (match step ~handlers t with Some s -> result := Some s | None -> ());
      decr remaining
    end
    else begin
      (* Profiling bracket: bind (or reuse) the block's cached row, mark it
         as the enclosing block for runtime-event attribution, and snapshot
         the counters the dispatch window will be charged against. All of
         it is skipped with one match when no profile is attached. *)
      let prow =
        match t.prof with
        | None -> None
        | Some p ->
            (* Reuse the option cached on the block: the steady-state
               profiled dispatch allocates nothing. *)
            let o =
              match b.Tblock.prow with
              | Some r as o
                when Profile.row_live p r
                     && Profile.row_describes r ~classes:b.Tblock.classes
                          ~term:b.Tblock.term_class ->
                  o
              | _ ->
                  let o =
                    Some
                      (Profile.bind p ~entry:b.Tblock.entry
                         ~classes:b.Tblock.classes ~term:b.Tblock.term_class)
                  in
                  Tblock.set_prow b o;
                  o
            in
            Profile.begin_dispatch p o;
            o
      in
      (* Body instructions retired are recovered from the retired-counter
         delta (every unit closure retires per covered instruction), so r0
         is snapshotted even without a profile — it is the fuel
         accountant. *)
      let r0 = t.retired in
      let c0 = if prow == None then 0 else cycles t in
      let mem0 = t.cur.vmem in
      let tlb0 = if prow == None then 0 else Memory.tlb_misses_live mem0 in
      let ic0 = if prow == None then 0 else icache_miss_count t in
      let ops = b.Tblock.ops in
      let nunits = Array.length ops in
      let starts = b.Tblock.starts in
      let ninsts = Array.unsafe_get starts nunits in
      let full = ninsts <= !remaining in
      let ulimit =
        if full then nunits
        else begin
          (* largest unit prefix whose instruction count fits the fuel; a
             fused unit cut in half by the limit is finished below via the
             slow path *)
          let m = ref 0 in
          while !m < nunits && Array.unsafe_get starts (!m + 1) <= !remaining do
            incr m
          done;
          !m
        end
      in
      let side = ref false in
      (* [u] survives the exception handlers: on a raise it holds the
         raising unit's index, on normal completion it equals [ulimit] —
         exactly the units whose auto-retired instructions must be
         credited below *)
      let u = ref 0 in
      let fault =
        try
          (match t.icache with
          | None ->
              while !u < ulimit do
                (Array.unsafe_get ops !u) t;
                incr u
              done
          | Some ic ->
              let pcs = b.Tblock.pcs and sizes = b.Tblock.sizes in
              let miss = t.costs.Costs.icache_miss in
              while !u < ulimit do
                let i = !u in
                let s = Array.unsafe_get starts i in
                (* fused units interleave their own fetch touches with the
                   pair's effects; single-instruction units are touched
                   here, in step-engine order *)
                if Array.unsafe_get starts (i + 1) = s + 1 then begin
                  let ipc = Array.unsafe_get pcs s
                  and sz = Array.unsafe_get sizes s in
                  if not (Icache.access ic ipc) then t.cycles_extra <- t.cycles_extra + miss;
                  if not (Icache.access ic (ipc + sz - 1)) then
                    t.cycles_extra <- t.cycles_extra + miss
                end;
                (Array.unsafe_get ops i) t;
                incr u
              done);
          None
        with
        | Side_exit ->
            side := true;
            None
        | Efault f -> Some f
        | Memory.Violation { addr; access } ->
            Some (Fault.Segfault { pc = t.pc; addr; access })
      in
      (* bulk-credit the completed units' auto-retired instructions: a
         raising unit (fault or side exit) is not in [0, u) and so only
         contributes whatever its closure retired itself *)
      t.retired <- t.retired + Array.unsafe_get b.Tblock.auto !u;
      let body_retired = t.retired - r0 in
      let term_tried = ref false in
      (match fault with
      | Some f ->
          (* the faulting instruction consumed fuel but did not retire *)
          remaining := !remaining - body_retired - 1;
          if !Metrics.enabled then Metrics.incr m_faults_raised;
          if !Obs.enabled then
            Obs.emit
              (Obs.Fault_raised { pc = Fault.pc f; cause = Fault.cause_name f });
          apply (handlers.on_fault t f)
      | None ->
          remaining := !remaining - body_retired;
          if !side then begin
            (* taken inlined branch: a normal completion — pc is already at
               the taken target, so the next iteration chains through the
               taken slot *)
            t.side_exits <- t.side_exits + 1;
            (* the raising unit's index is the observed exit profile that
               profile-guided recompilation reads *)
            if t.tiered then Tblock.note_exit b !u;
            if !Obs.enabled then
              Obs.emit
                (Obs.Tb_side_exit { entry = b.Tblock.entry; target = t.pc });
            if t.chain then prev := Some (b, v0)
          end
          else if full then (
            (* closures write pc lazily (only fault-capable ones set their
               own); re-synchronize here — the terminator's pc, or the
               block's fall-through when there is none *)
            match b.Tblock.term with
            | Some (inst, size) when !remaining > 0 -> (
                match b.Tblock.term_fn with
                | Some f when t.icache = None ->
                    (* event-free terminator: the closure sets the final pc
                       and retires — no interpreter round trip (with the
                       icache on, fall through so fetch charges apply) *)
                    f t;
                    decr remaining;
                    if t.chain then prev := Some (b, v0)
                | _ ->
                    t.pc <- b.Tblock.fall - size;
                    term_tried := true;
                    (match step_decoded ~handlers t inst size with
                    | Some s -> result := Some s
                    | None -> if t.chain then prev := Some (b, v0));
                    decr remaining)
            | Some (_, size) -> t.pc <- b.Tblock.fall - size
            | None ->
                t.pc <- b.Tblock.fall;
                if t.chain then prev := Some (b, v0))
          else
            (* fuel-limited prefix: resume at the first unexecuted
               instruction *)
            t.pc <-
              Array.unsafe_get b.Tblock.pcs (Array.unsafe_get starts ulimit));
      (* Account the dispatch after the handlers ran: their cycle charges
         and runtime events belong to this block's window. *)
      (match (t.prof, prow) with
      | Some p, Some row ->
          let dretired = t.retired - r0 in
          (* an attempted terminator that did not retire can only have
             faulted — count it like the step engine does *)
          let faulted =
            Option.is_some fault || (!term_tried && dretired = body_retired)
          in
          Profile.block_dispatch p row ~executed:body_retired ~retired:dretired
            ~cycles:(cycles t - c0)
            ~tlb:(Memory.tlb_misses_live mem0 - tlb0)
            ~icache:(icache_miss_count t - ic0) ~fault:faulted ~target:t.pc
      | _ -> ());
      (* A multi-instruction unit split by the fuel limit leaves up to
         [width - 1] units of fuel unspent on this block; burn them through
         the slow path so fuel semantics stay bit-identical to the step
         engine. (Accounted after the block window: [step] attributes
         itself.) *)
      if fault = None && (not !side) && not full then
        while !result = None && !remaining > 0 && t.retired - r0 < ninsts do
          (match step ~handlers t with Some s -> result := Some s | None -> ());
          decr remaining
        done
    end
  done;
  match !result with Some s -> s | None -> Fuel_exhausted

(* Process-wide count of instructions retired by completed [run] calls:
   cheap (one atomic add per run, not per instruction), domain-safe, and
   enough for the bench harness to report simulated MIPS. *)
let observed = Atomic.make 0
let observed_retired () = Atomic.get observed
let reset_observed_retired () = Atomic.set observed 0

(* Chain and dispatch counters follow the same pattern: plain mutable ints
   on the hot path, folded into process-wide atomics once per [run]. *)
let g_chain_hits = Atomic.make 0
let g_dispatches = Atomic.make 0
let observed_chain () = (Atomic.get g_chain_hits, Atomic.get g_dispatches)

let reset_observed_chain () =
  Atomic.set g_chain_hits 0;
  Atomic.set g_dispatches 0

let g_side_exits = Atomic.make 0
let g_fused = Atomic.make 0
let observed_superblock () = (Atomic.get g_side_exits, Atomic.get g_fused)

let reset_observed_superblock () =
  Atomic.set g_side_exits 0;
  Atomic.set g_fused 0

let g_ic_hits = Atomic.make 0
let g_ic_misses = Atomic.make 0
let g_ic_mega = Atomic.make 0

let observed_ic () =
  (Atomic.get g_ic_hits, Atomic.get g_ic_misses, Atomic.get g_ic_mega)

let reset_observed_ic () =
  Atomic.set g_ic_hits 0;
  Atomic.set g_ic_misses 0;
  Atomic.set g_ic_mega 0

let g_tier_promotions = Atomic.make 0
let g_recompiles = Atomic.make 0

let observed_tiering () =
  (Atomic.get g_tier_promotions, Atomic.get g_recompiles)

let reset_observed_tiering () =
  Atomic.set g_tier_promotions 0;
  Atomic.set g_recompiles 0

(* Translation wall time, accumulated per machine as a float and flushed to
   a process atomic as integer nanoseconds (OCaml has no atomic floats).
   Covers fresh translations only — plan replay ([seed_plan]) is charged to
   the caller's cache-preparation accounting — so a bench row's
   [translate_s] is exactly the translation work the cache did not serve. *)
let g_translate_ns = Atomic.make 0
let g_translations = Atomic.make 0

let observed_translate () =
  (float_of_int (Atomic.get g_translate_ns) *. 1e-9, Atomic.get g_translations)

let reset_observed_translate () =
  Atomic.set g_translate_ns 0;
  Atomic.set g_translations 0

(* Instructions retired outside [run] (MMView migration single-steps,
   harness-driven catch-up): counted separately so the bench can report
   MIPS over everything the simulator actually executed. *)
let g_extra = Atomic.make 0
let add_observed_extra n = ignore (Atomic.fetch_and_add g_extra n)
let observed_extra () = Atomic.get g_extra
let reset_observed_extra () = Atomic.set g_extra 0

(* Block dispatches (and their side exits) that happened inside an
   extra-counter window — MMView migration deferral, the bench's
   measurement-phase absorption — are recorded here so the per-experiment
   rate denominators (superblock length, side-exit rate) can be computed
   over translated mainline code only. *)
let g_extra_dispatches = Atomic.make 0
let g_extra_side_exits = Atomic.make 0

let add_observed_extra_window ~dispatches ~side_exits =
  if dispatches <> 0 then ignore (Atomic.fetch_and_add g_extra_dispatches dispatches);
  if side_exits <> 0 then ignore (Atomic.fetch_and_add g_extra_side_exits side_exits)

let observed_extra_window () =
  (Atomic.get g_extra_dispatches, Atomic.get g_extra_side_exits)

let reset_observed_extra_window () =
  Atomic.set g_extra_dispatches 0;
  Atomic.set g_extra_side_exits 0

type ir_stats = {
  irs_blocks : int;
  irs_units : int;
  irs_folded : int;
  irs_dead : int;
  irs_pc_elided : int;
  irs_tlb_elided : int;
  irs_cached : int;
}

let g_ir_blocks = Atomic.make 0
let g_ir_units = Atomic.make 0
let g_ir_folded = Atomic.make 0
let g_ir_dead = Atomic.make 0
let g_ir_pc_elided = Atomic.make 0
let g_ir_tlb_elided = Atomic.make 0
let g_ir_cached = Atomic.make 0

let observed_ir () =
  { irs_blocks = Atomic.get g_ir_blocks;
    irs_units = Atomic.get g_ir_units;
    irs_folded = Atomic.get g_ir_folded;
    irs_dead = Atomic.get g_ir_dead;
    irs_pc_elided = Atomic.get g_ir_pc_elided;
    irs_tlb_elided = Atomic.get g_ir_tlb_elided;
    irs_cached = Atomic.get g_ir_cached }

let reset_observed_ir () =
  Atomic.set g_ir_blocks 0;
  Atomic.set g_ir_units 0;
  Atomic.set g_ir_folded 0;
  Atomic.set g_ir_dead 0;
  Atomic.set g_ir_pc_elided 0;
  Atomic.set g_ir_tlb_elided 0;
  Atomic.set g_ir_cached 0

let flush_run_stats t =
  if !Metrics.enabled then begin
    Metrics.add m_dispatches t.tb_dispatches;
    Metrics.add m_chain_hits t.chain_hits;
    Metrics.add m_side_exits t.side_exits;
    Metrics.add m_fused t.fused_pairs;
    Metrics.add m_ic_hits t.ic_hits;
    Metrics.add m_ic_misses t.ic_misses;
    Metrics.add m_ic_mega t.ic_mega_d;
    Metrics.add m_tier_promotions t.tier_promotions;
    Metrics.add m_recompiles t.recompiles;
    Metrics.add m_translations t.translations
  end;
  if t.chain_hits <> 0 then begin
    ignore (Atomic.fetch_and_add g_chain_hits t.chain_hits);
    t.chain_hits <- 0
  end;
  if t.tb_dispatches <> 0 then begin
    ignore (Atomic.fetch_and_add g_dispatches t.tb_dispatches);
    t.tb_dispatches <- 0
  end;
  if t.side_exits <> 0 then begin
    ignore (Atomic.fetch_and_add g_side_exits t.side_exits);
    t.side_exits <- 0
  end;
  if t.fused_pairs <> 0 then begin
    ignore (Atomic.fetch_and_add g_fused t.fused_pairs);
    t.fused_pairs <- 0
  end;
  if t.ic_hits <> 0 then begin
    ignore (Atomic.fetch_and_add g_ic_hits t.ic_hits);
    t.ic_hits <- 0
  end;
  if t.ic_misses <> 0 then begin
    ignore (Atomic.fetch_and_add g_ic_misses t.ic_misses);
    t.ic_misses <- 0
  end;
  if t.ic_mega_d <> 0 then begin
    ignore (Atomic.fetch_and_add g_ic_mega t.ic_mega_d);
    t.ic_mega_d <- 0
  end;
  if t.tier_promotions <> 0 then begin
    ignore (Atomic.fetch_and_add g_tier_promotions t.tier_promotions);
    t.tier_promotions <- 0
  end;
  if t.recompiles <> 0 then begin
    ignore (Atomic.fetch_and_add g_recompiles t.recompiles);
    t.recompiles <- 0
  end;
  if t.translations <> 0 then begin
    ignore
      (Atomic.fetch_and_add g_translate_ns
         (int_of_float (t.translate_s *. 1e9)));
    ignore (Atomic.fetch_and_add g_translations t.translations);
    t.translate_s <- 0.;
    t.translations <- 0
  end;
  if t.ir_blocks <> 0 then begin
    ignore (Atomic.fetch_and_add g_ir_blocks t.ir_blocks);
    ignore (Atomic.fetch_and_add g_ir_units t.ir_units);
    ignore (Atomic.fetch_and_add g_ir_folded t.ir_folded);
    ignore (Atomic.fetch_and_add g_ir_dead t.ir_dead);
    ignore (Atomic.fetch_and_add g_ir_pc_elided t.ir_pc_elided);
    ignore (Atomic.fetch_and_add g_ir_tlb_elided t.ir_tlb_elided);
    ignore (Atomic.fetch_and_add g_ir_cached t.ir_cached);
    t.ir_blocks <- 0;
    t.ir_units <- 0;
    t.ir_folded <- 0;
    t.ir_dead <- 0;
    t.ir_pc_elided <- 0;
    t.ir_tlb_elided <- 0;
    t.ir_cached <- 0
  end;
  List.iter (fun v -> Memory.flush_tlb_stats v.vmem) t.views

let run ?(handlers = default_handlers) ~fuel t =
  let r0 = t.retired in
  let s =
    if t.block_engine then run_blocks ~handlers ~fuel t
    else run_step ~handlers ~fuel t
  in
  ignore (Atomic.fetch_and_add observed (t.retired - r0));
  if !Metrics.enabled then Metrics.add m_retired (t.retired - r0);
  flush_run_stats t;
  s

let set_block_engine t on = t.block_engine <- on
let block_engine t = t.block_engine
let set_block_chaining t on = t.chain <- on
let block_chaining t = t.chain
let set_superblocks t on = t.superblocks <- on
let superblocks t = t.superblocks

let set_ir t on =
  if t.ir <> on then begin
    t.ir <- on;
    (* translated blocks embed the choice; drop them so both settings see
       freshly translated code *)
    List.iter (fun v -> Hashtbl.reset v.blocks) t.views;
    t.code_epoch <- t.code_epoch + 1
  end

let ir t = t.ir

let set_tiered t on =
  if t.tiered <> on then begin
    t.tiered <- on;
    (* blocks carry tier state and hotness counters; restart from a clean
       slate so the two settings never mix (same discipline as set_ir) *)
    List.iter
      (fun v ->
        Hashtbl.reset v.blocks;
        Hashtbl.reset v.heat)
      t.views;
    t.code_epoch <- t.code_epoch + 1
  end

let tiered t = t.tiered

let set_inline_caches t on =
  if t.ic_on <> on then begin
    t.ic_on <- on;
    (* indirect terminator closures embed the choice (and capture site
       records); drop blocks and sites so the setting is uniform *)
    List.iter
      (fun v ->
        Hashtbl.reset v.blocks;
        Hashtbl.reset v.ics)
      t.views;
    t.pending_ic <- None;
    t.code_epoch <- t.code_epoch + 1
  end

let inline_caches t = t.ic_on

(* ------------------------------------------------------------------ *)
(* Tier / inline-cache introspection (profile report, CLI)             *)
(* ------------------------------------------------------------------ *)

type block_info = {
  bi_entry : int;
  bi_tier : int;
  bi_relaid : bool;
  bi_hot : int;
  bi_exits : int;
}

let block_infos t =
  Hashtbl.fold
    (fun entry b acc ->
      { bi_entry = entry;
        bi_tier = b.Tblock.tier;
        bi_relaid = b.Tblock.relaid;
        bi_hot = b.Tblock.hot;
        bi_exits = Tblock.exits_total b }
      :: acc)
    t.cur.blocks []

type ic_info = {
  ici_site : int;
  ici_state : [ `Empty | `Mono | `Poly | `Mega ];
  ici_targets : int;
  ici_hits : int;
  ici_misses : int;
}

let ic_infos t =
  Hashtbl.fold
    (fun site s acc ->
      let state, targets =
        if s.site_mega then (`Mega, 0)
        else
          match (s.site_tb, Array.length s.site_poly) with
          | None, 0 -> (`Empty, 0)
          | Some _, 0 -> (`Mono, 1)
          | mono, n -> (`Poly, n + if mono = None then 0 else 1)
      in
      { ici_site = site;
        ici_state = state;
        ici_targets = targets;
        ici_hits = s.site_hits;
        ici_misses = s.site_misses }
      :: acc)
    t.cur.ics []

(* ------------------------------------------------------------------ *)
(* Persistent translation plans                                        *)
(* ------------------------------------------------------------------ *)

(* A plan is the marshalable residue of a recording machine's current view:
   the decode cache in pre-closure form, every live block's replay skeleton
   with its tier/layout/heat, the interpreter heat of still-untranslated
   entries, and the live inline-cache targets. It deliberately contains no
   closures and no stamps — stamps are recomputed against the seeding
   machine's generation table, which is sound because the cache layer only
   offers a plan to a machine whose guest code bytes hash to the digest the
   plan was stored under. *)
type plan = {
  pl_superblocks : bool;
  pl_ir : bool;
  pl_tiered : bool;
  pl_ic_on : bool;
  pl_icache : bool;
  pl_insts : (int * Inst.t * int) array;
  pl_blocks : plan_block array;
  pl_heat : (int * int) array;
  pl_ics : (int * int list) array;
}

and plan_block = {
  pb_entry : int;
  pb_tier : int;
  pb_relaid : bool;
  pb_hot : int;
  pb_skel : skel;
}

let set_record t on = t.rec_on <- on
let record t = t.rec_on

let export_plan t =
  let insts =
    Hashtbl.fold
      (fun pc e acc ->
        match e with
        | Cok (inst, n, st)
          when Tblock.Gen.stamp t.gens ~lo:pc ~hi:(pc + n - 1) = st ->
            (pc, inst, n) :: acc
        | _ -> acc)
      t.cur.cache []
  in
  let blocks =
    Hashtbl.fold
      (fun entry b acc ->
        match Hashtbl.find_opt t.cur.skels entry with
        | Some sk when Tblock.revalidate t.gens ~isa:t.isa ~epoch:t.code_epoch b ->
            { pb_entry = entry;
              pb_tier = b.Tblock.tier;
              pb_relaid = b.Tblock.relaid;
              pb_hot = b.Tblock.hot;
              pb_skel = sk }
            :: acc
        | _ -> acc)
      t.cur.blocks []
  in
  let heat = Hashtbl.fold (fun pc r acc -> (pc, !r) :: acc) t.cur.heat [] in
  let ics =
    Hashtbl.fold
      (fun site s acc ->
        if s.site_mega then acc
        else
          let targets =
            (if s.site_target >= 0 then [ s.site_target ] else [])
            @ (Array.to_list s.site_poly |> List.map fst)
          in
          if targets = [] then acc else (site, targets) :: acc)
      t.cur.ics []
  in
  { pl_superblocks = t.superblocks;
    pl_ir = t.ir;
    pl_tiered = t.tiered;
    pl_ic_on = t.ic_on;
    pl_icache = t.icache <> None;
    pl_insts = Array.of_list insts;
    pl_blocks = Array.of_list blocks;
    pl_heat = Array.of_list heat;
    pl_ics = Array.of_list ics }

let plan_stats p = (Array.length p.pl_blocks, Array.length p.pl_insts)

(* Replay one skeleton through [Tblock.translate]: decode comes from the
   (prefabbed) decode cache, the lower callback plays back the recorded
   decisions positionally — persisted post-optimize ops for IR runs, a
   deterministic recompile via [compile_op] for everything else — and the
   emitter skips [Tir.optimize]. Any divergence (a consumed-out skeleton,
   an unexpected fault) raises and the caller skips the entry, leaving it
   to the normal cold path. *)
let rebuild_block t (pb : plan_block) =
  let sk = pb.pb_skel in
  let cursor = ref 0 in
  let ir_units = ref 0 and tlb_elided = ref 0 in
  let sb0 = t.superblocks and ir0 = t.ir in
  if pb.pb_tier <= 1 then t.superblocks <- false;
  if pb.pb_tier <= 2 then t.ir <- false;
  t.relayout <- sk.sk_relayout;
  let b =
    Fun.protect
      ~finally:(fun () ->
        t.superblocks <- sb0;
        t.ir <- ir0;
        t.relayout <- [])
    @@ fun () ->
    Tblock.translate ~gens:t.gens ~epoch:t.code_epoch ~isa:t.isa
      ~decode:(fun pc ->
        match decode_at t pc with
        | d -> Some d
        | exception Efault _ -> None
        | exception Memory.Violation _ -> None)
      ~lower:(fun ~pc:_ _inst _size ->
        if !cursor >= Array.length sk.sk_steps then raise Exit;
        let s = sk.sk_steps.(!cursor) in
        incr cursor;
        match s with Slower op -> Some op | Scompile -> None)
      ~compile:(fun ~pc inst size -> compile_op t ~pc inst size)
      ~emit:(fun ops -> emit_units ir_units tlb_elided ops)
      pb.pb_entry
  in
  Tblock.set_tier b ~tier:pb.pb_tier ~relaid:pb.pb_relaid;
  Tblock.set_hot b pb.pb_hot;
  t.fused_pairs <- t.fused_pairs + b.Tblock.n_fused;
  b

let seed_plan t (p : plan) =
  if
    p.pl_superblocks <> t.superblocks
    || p.pl_ir <> t.ir || p.pl_tiered <> t.tiered || p.pl_ic_on <> t.ic_on
    || p.pl_icache <> (t.icache <> None)
  then Error "flags"
  else begin
    (* Decode-cache prefab. Entries are stamped against the seeding
       machine's current generations: the caller's content-digest check
       proved the guest bytes equal the exporting run's, so the persisted
       decodes are decodes of the current bytes. *)
    Array.iter
      (fun (pc, inst, n) ->
        Hashtbl.replace t.cur.cache pc
          (Cok (inst, n, Tblock.Gen.stamp t.gens ~lo:pc ~hi:(pc + n - 1))))
      p.pl_insts;
    let seeded = ref 0 in
    Array.iter
      (fun pb ->
        match rebuild_block t pb with
        | b ->
            publish_block t pb.pb_entry b;
            (* keep the skeleton so this machine's own export re-offers the
               seeded entries (warm runs stay warm across generations) *)
            Hashtbl.replace t.cur.skels pb.pb_entry pb.pb_skel;
            incr seeded
        | exception _ -> ())
      p.pl_blocks;
    (* Interpreter heat for entries that never reached the first tier,
       skipping anything just seeded as a block. *)
    Array.iter
      (fun (pc, h) ->
        if not (Hashtbl.mem t.cur.blocks pc) then
          Hashtbl.replace t.cur.heat pc (ref h))
      p.pl_heat;
    if t.ic_on then
      Array.iter
        (fun (site, targets) ->
          let s = ic_for t site in
          List.iter
            (fun pc ->
              match Hashtbl.find_opt t.cur.blocks pc with
              | Some b when Tblock.epoch_current b t.code_epoch ->
                  ic_train t s pc b
              | _ -> ())
            targets)
        p.pl_ics;
    (* Replay time is deliberately NOT added to [translate_s]: that counter
       measures translation the cache failed to serve, so a warm start's
       cost lands in the caller's cache-preparation accounting instead
       (bench: warm_start_s) and the cold/warm translate_s ratio measures
       exactly the work the cache avoided. *)
    flush_run_stats t;
    Ok !seeded
  end
