lib/workloads/mixgen.ml: Chbp Ext Format List Measure Programs Safer Sched
