test/test_system.ml: Alcotest Asm Binfile Chbp Chimera_rt Chimera_system Counters Ext Fault Fault_table Inst Int32 Int64 List Loader Machine Memory Programs Reg Specgen String
