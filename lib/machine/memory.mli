(** Sparse paged memory with per-page R/W/X permissions.

    Pages are 4 KiB and allocated lazily, so address-space layouts with large
    gaps (the congruence-constrained Chimera target sections live far from
    the text) cost nothing. Permissions are enforced on the checked accessors
    ([load_*]/[store_*]/[fetch_u16]); the [peek_*]/[poke_*] accessors bypass
    them and model kernel/loader access.

    Pages can be shared between two memories ({!share_range}): the MMView
    process model maps each core class's rewritten code into a distinct view
    while all views alias the same physical data pages.

    {b Software TLB.} Each memory carries a small direct-mapped translation
    cache per access kind (read/write/execute) mapping page index to page
    payload, so hot checked accesses skip the page hashtable and the
    permission re-check. Any {!map}/{!set_perm}/{!share_range} — through
    {e any} memory, since pages can be aliased — advances a global
    permission epoch; a TLB whose recorded epoch lags is flushed before its
    next lookup. A TLB hit therefore implies a successful permission check
    under the current epoch, preserving the deterministic-fault contract: a
    permission downgrade segfaults on the very next access even through a
    warm TLB (differentially tested in test/test_machine.ml). *)

type perm = { r : bool; w : bool; x : bool }

val perm_none : perm
val perm_r : perm
val perm_rw : perm
val perm_rx : perm
val perm_rwx : perm
val pp_perm : Format.formatter -> perm -> unit

exception Violation of { addr : int; access : Fault.access }
(** Raised by checked accessors on a permission or unmapped-page violation. *)

type t

val create : unit -> t
val page_size : int
val page_bits : int
(** [page_size = 1 lsl page_bits]. *)

val map : t -> addr:int -> len:int -> perm -> unit
(** Allocate zero-filled pages covering [addr, addr+len).
    @raise Invalid_argument if a covered page is already mapped. *)

val set_perm : t -> addr:int -> len:int -> perm -> unit
(** Change permissions of already-mapped pages.
    @raise Invalid_argument on an unmapped page. *)

val perm_at : t -> int -> perm option
(** Permissions of the page containing an address, if mapped. *)

val is_mapped : t -> int -> bool

val share_range : from:t -> into:t -> addr:int -> len:int -> unit
(** Alias the pages of [from] covering the range into [into]: both memories
    then see the same bytes (and permissions).
    @raise Invalid_argument if a source page is unmapped or a destination
    page already mapped. *)

(** {1 Checked accessors (raise {!Violation})} *)

val load_u8 : t -> int -> int
val load_u16 : t -> int -> int
val load_u32 : t -> int -> int
val load_u64 : t -> int -> int64
val store_u8 : t -> int -> int -> unit
val store_u16 : t -> int -> int -> unit
val store_u32 : t -> int -> int -> unit
val store_u64 : t -> int -> int64 -> unit

val fetch_u16 : t -> int -> int
(** 16-bit instruction fetch: requires execute permission. *)

(** {1 Check-elision-safe page access}

    [read_data]/[write_data] perform one full TLB-checked translation of
    the page containing the address and return its payload bytes. The
    block engine's fused memory units use them to elide redundant checks:
    a second access of the {e same kind} whose address provably lands on
    the {e same page} within one execution unit may reuse the returned
    bytes directly. This is sound because permissions can only change from
    host-side code (handlers, loaders) — never from guest instructions —
    and an execution unit never spans a handler-visible point, so the
    permission check the first access performed still covers the second.
    Offsets into the returned bytes must stay within [page_size]. *)

val read_data : t -> int -> bytes
(** Page payload for a read access to the page containing the address.
    Counts one TLB hit/miss; raises {!Violation} like [load_*]. *)

val write_data : t -> int -> bytes
(** Page payload for a write access; counterpart of {!read_data}. *)

(** {1 Unchecked accessors (loader / kernel)} *)

val peek_u8 : t -> int -> int
val peek_u16 : t -> int -> int
val peek_u32 : t -> int -> int
val peek_u64 : t -> int -> int64
val poke_u8 : t -> int -> int -> unit
val poke_u16 : t -> int -> int -> unit
val poke_u32 : t -> int -> int -> unit
val poke_u64 : t -> int -> int64 -> unit
val poke_bytes : t -> int -> bytes -> unit
val peek_bytes : t -> int -> int -> bytes

val mapped_ranges : t -> (int * int) list
(** Sorted [(addr, len)] list of maximal mapped runs (diagnostics). *)

(** {1 Software-TLB statistics} *)

val tlb_stats : t -> int * int
(** [(hits, misses)] of this memory's TLB since creation or the last
    {!flush_tlb_stats}. *)

val tlb_misses_live : t -> int
(** The miss component of {!tlb_stats} alone, without allocating the pair —
    read on the profiler's per-dispatch path to attribute misses to the
    enclosing translation block. *)

val flush_tlb_stats : t -> unit
(** Add this memory's hit/miss counts to the process-wide totals and zero
    them ({!Machine.run} calls this once per run for each of its views). *)

val observed_tlb : unit -> int * int
(** Process-wide [(hits, misses)] accumulated by {!flush_tlb_stats}
    (domain-safe; the bench harness reports the hit rate). *)

val reset_observed_tlb : unit -> unit
