lib/rewriter/smile.mli: Inst
