lib/isa/decode.mli: Inst
