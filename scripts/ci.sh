#!/bin/sh -e
# Tier-1 gate: build, full test suite, and a quick end-to-end benchmark run.
cd "$(dirname "$0")/.."
dune build
dune runtest

# Documentation build (odoc is optional in the minimal toolchain image).
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "ci: odoc not installed, skipping dune build @doc"
fi

dune exec bench/main.exe -- fig13 -q

# Observability smoke test: trace a quick table2 run and let the driver's
# validator cross-check the per-site counts against the event stream
# (non-zero exit on any mismatch; schema in OBSERVABILITY.md).
trace=$(mktemp /tmp/chimera-trace-XXXXXX.jsonl)
trap 'rm -f "$trace"' EXIT
dune exec bench/main.exe -- table2 -q --trace "$trace"
test -s "$trace"
head -1 "$trace" | grep -q '"ev":"meta"'
