type kernel = Dgemm | Sgemm | Dgemv | Sgemv

let kernel_name = function
  | Dgemm -> "dgemm" | Sgemm -> "sgemm" | Dgemv -> "dgemv" | Sgemv -> "sgemv"

let kernels = [ Dgemm; Sgemm; Dgemv; Sgemv ]

type system = Fam_ext | Fam_base | Melf | Chimera

let system_name = function
  | Fam_ext -> "FAM Ext." | Fam_base -> "FAM Base" | Melf -> "MELF"
  | Chimera -> "Chimera"

let systems = [ Fam_ext; Fam_base; Melf; Chimera ]

let sew_of = function Dgemm | Dgemv -> Inst.E64 | Sgemm | Sgemv -> Inst.E32
let matrix_matrix = function Dgemm | Sgemm -> true | Dgemv | Sgemv -> false

(* Synchronization model: matrix–vector kernels join once (linear in the
   thread count); matrix–matrix kernels synchronize per panel and their
   barrier traffic grows quadratically — the effect behind the paper's
   Fig. 14e scalability cliff (sgemm speedup collapsing from 16 to 64
   threads). The quadratic coefficient is tied to the problem size so the
   cliff lands where contention overtakes per-core work. *)
let sync_cost kernel ~total_vec_work ~threads =
  if matrix_matrix kernel then total_vec_work * threads * threads / 24576
  else 180 * threads

type chunk_cost = { cc_vec : int; cc_scal : int; cc_chim : int }

type setup = {
  s_kernel : kernel;
  s_n : int;
  s_threads : int list;
  s_costs : (int, chunk_cost) Hashtbl.t;  (* distinct row-count -> costs *)
}

let chunk_sizes ~n ~threads =
  List.init threads (fun i ->
      let base = n / threads and extra = n mod threads in
      if i < extra then base + 1 else base)
  |> List.filter (fun r -> r > 0)

let build kernel variant ~n ~rows =
  let sew = sew_of kernel in
  let name = Printf.sprintf "%s-%d" (kernel_name kernel) (snd rows - fst rows) in
  if matrix_matrix kernel then Programs.gemm ~name variant ~sew ~n ~rows
  else Programs.gemv ~name ~rows variant ~sew ~n

let measure_chunk kernel ~n ~rows_count =
  let rows = (0, rows_count) in
  let vec_bin = build kernel `Ext ~n ~rows in
  let scal_bin = build kernel `Base ~n ~rows in
  let vec = Measure.native vec_bin ~isa:Ext.rv64gcv in
  let scal = Measure.native scal_bin ~isa:Ext.rv64gc in
  if vec.Measure.exit_code <> scal.Measure.exit_code then
    failwith
      (Printf.sprintf "Blas: %s variants disagree (%d vs %d)" (kernel_name kernel)
         vec.Measure.exit_code scal.Measure.exit_code);
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) vec_bin in
  let chim, _ = Measure.chimera ctx ~isa:Ext.rv64gc in
  ignore (Measure.check_exit ~expected:vec.Measure.exit_code chim);
  { cc_vec = vec.Measure.cycles;
    cc_scal = scal.Measure.cycles;
    cc_chim = chim.Measure.cycles }

(* OpenBLAS-style dynamic scheduling granularity: 4 blocks per thread *)
let blocks_per_thread = 6

let seq_run_all fs = List.iter (fun f -> f ()) fs

let prepare ?(n = 48) ?(run_all = seq_run_all) kernel ~threads =
  let rows =
    List.concat_map
      (fun t -> chunk_sizes ~n ~threads:(blocks_per_thread * t))
      threads
    |> List.sort_uniq compare
  in
  (* measure each distinct chunk size independently (possibly across
     domains); the Hashtbl is filled afterwards in the calling domain. *)
  let measured = List.map (fun r -> (r, ref None)) rows in
  run_all
    (List.map
       (fun (r, slot) -> fun () -> slot := Some (measure_chunk kernel ~n ~rows_count:r))
       measured);
  let costs = Hashtbl.create 8 in
  List.iter (fun (r, slot) -> Hashtbl.replace costs r (Option.get !slot)) measured;
  { s_kernel = kernel; s_n = n; s_threads = threads; s_costs = costs }

let chunk_cost setup r = Hashtbl.find setup.s_costs r

(* Dynamic block scheduling: blocks are handed out on demand, so slower
   cores simply process fewer of them. Under FAM Ext only the T/2 extension
   cores can execute the vector binary; the base cores sit idle. *)
let latency setup system ~threads =
  let sizes = chunk_sizes ~n:setup.s_n ~threads:(blocks_per_thread * threads) in
  let total_vec_work =
    List.fold_left (fun acc r -> acc + (chunk_cost setup r).cc_vec) 0 sizes
  in
  let sync = sync_cost setup.s_kernel ~total_vec_work ~threads in
  let cost_on cls r =
    let c = chunk_cost setup r in
    match (system, cls) with
    | Fam_ext, _ -> c.cc_vec
    | Fam_base, _ -> c.cc_scal
    | Melf, Sched.Extension -> c.cc_vec
    | Melf, Sched.Base -> c.cc_scal
    | Chimera, Sched.Extension -> c.cc_vec
    | Chimera, Sched.Base -> c.cc_chim
  in
  let config =
    { Sched.default_config with
      base_cores = (match system with Fam_ext -> 0 | _ -> threads / 2);
      ext_cores = (threads + 1) / 2;
      migrate_cost = 0 }
  in
  let tasks =
    List.mapi
      (fun i r ->
        { Sched.t_id = i;
          t_prefer_ext = true;
          t_run = (fun cls -> Sched.Done { cycles = cost_on cls r; accelerated = cls = Sched.Extension }) })
      sizes
  in
  let res = Sched.run config tasks in
  res.Sched.latency + sync

let acceleration setup system ~threads =
  let t0 = List.fold_left min max_int setup.s_threads in
  let base = latency setup Fam_ext ~threads:t0 in
  float_of_int base /. float_of_int (latency setup system ~threads)
