examples/openblas_offload.mli:
