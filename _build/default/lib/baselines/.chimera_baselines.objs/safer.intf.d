lib/baselines/safer.mli: Binfile Chbp Costs Counters Ext Machine Memory
