lib/rewriter/upgrade.ml: Cfg Codebuf Disasm Inst List Liveness Option Printf Reg Regmask Scavenge
