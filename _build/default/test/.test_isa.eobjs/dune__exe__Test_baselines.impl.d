test/test_baselines.ml: Alcotest Armore Asm Binfile Chbp Chimera_rt Counters Egalito Ext Fault Inst Int64 Loader Machine Melf Memory Multiverse Printf Reg Safer Specgen Strawman
