(** Integer and vector register names of the simulated RV64 machine.

    Integer registers follow the RISC-V integer ABI (psABI): [x0] is
    hardwired zero, [gp] ([x3]) is the global pointer whose value is fixed at
    link time and never changes at runtime — the property the SMILE trampoline
    exploits. Vector registers [v0]..[v31] belong to the V extension. *)

type t
(** An integer register, [x0] .. [x31]. *)

val of_int : int -> t
(** [of_int n] is register [xn]. @raise Invalid_argument unless [0 <= n < 32]. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val name : t -> string
(** ABI mnemonic, e.g. [name gp = "gp"], [name (of_int 10) = "a0"]. *)

val pp : Format.formatter -> t -> unit

(** {1 ABI names} *)

val x0 : t
val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val s0 : t
val fp : t
val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val s8 : t
val s9 : t
val s10 : t
val s11 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t

val all : t list
(** All 32 integer registers in index order. *)

val caller_saved : t list
(** Registers a callee may clobber: [ra], [t0]-[t6], [a0]-[a7]. *)

val callee_saved : t list
(** Registers preserved across calls: [sp], [s0]-[s11]. *)

val temporaries : t list
(** Scratch registers preferred by the rewriter when scavenging:
    [t6; t5; t4; t3; t2; t1; t0]. *)

(** {1 Vector registers} *)

type v
(** A vector register, [v0] .. [v31]. *)

val v_of_int : int -> v
(** @raise Invalid_argument unless [0 <= n < 32]. *)

val v_to_int : v -> int
val v_equal : v -> v -> bool
val v_name : v -> string
val pp_v : Format.formatter -> v -> unit
val all_v : v list
