(* Derivation of the fixed jalr immediate (paper Fig. 7b). The upper
   halfword of [jalr gp, imm(gp)] is [imm12[11:0] . rs1[4:1]] =
   [imm12 << 4 | 0b0001]. For it to be a reserved C1 compressed encoding we
   need: quadrant bits [1:0] = 01 (given by rs1 = x3), funct3 = imm12[11:9]
   = 100 (C1 misc-alu), and within misc-alu the reserved rows bit12 =
   imm12[8] = 1, bits[11:10] = imm12[7:6] = 11, bits[6:5] = imm12[2:1] = 11.
   Free bits imm12[5:3] and imm12[0] are zero. *)
let jalr_imm = Encode.sext 0b1001_1100_0110 12

let jalr_inst = Inst.Jalr (Reg.gp, Reg.gp, jalr_imm)
let auipc_inst ~imm20 = Inst.Auipc (Reg.gp, imm20)

(* auipc word bits 16..20 are imm20 bits 4..8. *)
let imm20_compressed_safe imm20 = (imm20 lsr 4) land 0x1F = 0x1F

let target_of ~pc ~imm20 = pc + (imm20 lsl 12) + jalr_imm

let solve_imm20 ~pc ~target =
  let delta = target - jalr_imm - pc in
  if delta land 0xFFF <> 0 then None
  else
    let imm20 = delta asr 12 in
    if Encode.fits_signed imm20 20 then Some imm20 else None

let next_target ~pc ~min ~compressed =
  (* Candidate page counts p (= imm20) with target = pc + (p<<12) + jalr_imm;
     smallest target >= min. *)
  let delta = min - jalr_imm - pc in
  let p = if delta <= 0 then 0 else (delta + 0xFFF) asr 12 in
  let p =
    if not compressed then p
    else if (p lsr 4) land 0x1F = 0x1F then p
    else
      (* raise bits 4..8 to 11111; clearing the low 4 bits keeps the result
         minimal and >= p because 0x1F0 dominates any lower-bit value. *)
      ((p asr 9) lsl 9) lor 0x1F0
  in
  if not (Encode.fits_signed p 20) then
    invalid_arg
      (Printf.sprintf "Smile.next_target: 0x%x unreachable from pc 0x%x" min pc);
  target_of ~pc ~imm20:p

let size = 8

let m_smile_writes =
  Metrics.counter ~help:"SMILE auipc+jalr pairs written" "chimera_smile_writes_total"

let write buf ~off ~pc ~target ~compressed =
  match solve_imm20 ~pc ~target with
  | None ->
      invalid_arg
        (Printf.sprintf "Smile.write: target 0x%x not admissible from pc 0x%x" target pc)
  | Some imm20 ->
      if compressed && not (imm20_compressed_safe imm20) then
        invalid_arg
          (Printf.sprintf
             "Smile.write: imm20 0x%x not compressed-safe (pc 0x%x, target 0x%x)"
             imm20 pc target);
      if !Metrics.enabled then Metrics.incr m_smile_writes;
      if !Obs.enabled then Obs.emit (Obs.Smile_write { pc; target });
      let n1 = Encode.write buf off (auipc_inst ~imm20) in
      ignore (Encode.write buf (off + n1) jalr_inst)
