(* Tests for riscv_binary + riscv_asm: assembling, linking, loading and
   running complete binaries. *)


let run_binary ?(fuel = 1_000_000) bin =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:Ext.all () in
  Loader.init_machine m bin;
  (Machine.run ~fuel m, m)

let expect_exit ?fuel bin code =
  match run_binary ?fuel bin with
  | Machine.Exited c, _ -> Alcotest.(check int) "exit code" code c
  | Machine.Faulted f, _ -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted, _ -> Alcotest.fail "fuel exhausted"

let exit_seq a =
  [ Inst.Opi (Inst.Addi, Reg.a7, Reg.x0, 93); Inst.Opi (Inst.Addi, Reg.a0, Reg.x0, a);
    Inst.Ecall ]

(* --- basic programs ----------------------------------------------------- *)

let test_trivial () =
  let a = Asm.create ~name:"trivial" () in
  Asm.func a "_start";
  Asm.insts a (exit_seq 7);
  expect_exit (Asm.assemble a) 7

let test_call_and_data () =
  (* main calls square(6), stores to data, loads back, exits with it. *)
  let a = Asm.create ~name:"square" () in
  Asm.func a "_start";
  Asm.li a Reg.a0 6;
  Asm.call a "square";
  Asm.la a Reg.t0 "result";
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.a0; rs1 = Reg.t0; imm = 0 });
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.a0; rs1 = Reg.t0; imm = 0 });
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.func a "square";
  Asm.inst a (Inst.Op (Inst.Mul, Reg.a0, Reg.a0, Reg.a0));
  Asm.ret a;
  Asm.dlabel a "result";
  Asm.dword64 a 0L;
  expect_exit (Asm.assemble a) 36

let test_forward_and_backward_branches () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.li a Reg.t0 0;
  Asm.li a Reg.t1 5;
  Asm.label a "loop";
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, 1));
  Asm.branch_to a Inst.Blt Reg.t0 Reg.t1 "loop";
  Asm.branch_to a Inst.Beq Reg.t0 Reg.t1 "good";
  Asm.insts a (exit_seq 1);
  Asm.label a "good";
  Asm.insts a (exit_seq 0);
  expect_exit (Asm.assemble a) 0

let test_jump_table_dispatch () =
  (* Classic switch: jump through an rodata table of code addresses. *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.li a Reg.t0 2;  (* case index *)
  Asm.la a Reg.t1 "table";
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t2, Reg.t0, 3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.t1, Reg.t1, Reg.t2));
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t3; rs1 = Reg.t1; imm = 0 });
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t3, 0));
  Asm.label a "case0";
  Asm.insts a (exit_seq 10);
  Asm.label a "case1";
  Asm.insts a (exit_seq 11);
  Asm.label a "case2";
  Asm.insts a (exit_seq 12);
  Asm.rlabel a "table";
  Asm.rword_label a "case0";
  Asm.rword_label a "case1";
  Asm.rword_label a "case2";
  expect_exit (Asm.assemble a) 12

let test_compressed_branches () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.li a Reg.a0 3;
  Asm.label a "loop";
  Asm.inst a (Inst.C_addi (Reg.a0, -1));
  Asm.cbnez_to a Reg.a0 "loop";
  Asm.insts a (exit_seq 0);
  let bin = Asm.assemble a in
  Alcotest.(check bool) "binary uses C" true (Ext.mem Ext.C bin.Binfile.isa);
  expect_exit bin 0

let test_gp_relative_access () =
  (* The ABI idiom the SMILE trampoline relies on: loads addressed off gp. *)
  let a = Asm.create () in
  Asm.func a "_start";
  (* store 99 at gp+16, load it back via gp *)
  Asm.li a Reg.t0 99;
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t0; rs1 = Reg.gp; imm = 16 });
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.a0; rs1 = Reg.gp; imm = 16 });
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  let bin = Asm.assemble a in
  Alcotest.(check int) "gp value" Layout.gp_value bin.Binfile.gp_value;
  (match run_binary bin with
  | Machine.Exited 99, _ -> ()
  | _ -> Alcotest.fail "gp-relative access failed");
  (* and gp points to non-executable memory *)
  let mem = Loader.load bin in
  match Memory.perm_at mem Layout.gp_value with
  | Some p ->
      Alcotest.(check bool) "gp segment not executable" false p.Memory.x;
      Alcotest.(check bool) "gp segment writable" true p.Memory.w
  | None -> Alcotest.fail "gp page unmapped"

let test_symbols_and_sizes () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.insts a (exit_seq 0);  (* 3 insts = 12 bytes *)
  Asm.func a "f";
  Asm.ret a;  (* 4 bytes *)
  Asm.func a "g";
  Asm.ret a;
  let bin = Asm.assemble a in
  let s = Binfile.symbol bin "_start" in
  Alcotest.(check int) "_start addr" Layout.text_base s.Binfile.sym_addr;
  Alcotest.(check int) "_start size" 12 s.Binfile.sym_size;
  let f = Binfile.symbol bin "f" in
  Alcotest.(check int) "f size" 4 f.Binfile.sym_size;
  Alcotest.(check int) "code size" 20 (Binfile.code_size bin)

let test_hidden_func_not_in_symbols () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.insts a (exit_seq 0);
  Asm.hidden_func a "shadow";
  Asm.ret a;
  let bin = Asm.assemble a in
  (match Binfile.symbol bin "shadow" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "hidden func leaked into symbols");
  Alcotest.(check int) "only one symbol" 1 (List.length bin.Binfile.symbols)

let test_unresolved_label_fails () =
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.j a "nowhere";
  match Asm.assemble a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unresolved-label failure"

let test_save_load_roundtrip () =
  let a = Asm.create ~name:"persisted" () in
  Asm.func a "_start";
  Asm.insts a (exit_seq 5);
  let bin = Asm.assemble a in
  let path = Filename.temp_file "chimera_test" ".self" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binfile.save path bin;
      let bin' = Binfile.load_file path in
      Alcotest.(check string) "name" "persisted" bin'.Binfile.name;
      expect_exit bin' 5)

let test_data_byte_emission () =
  (* dbyte packs one byte per call, little-endian within later words *)
  let a = Asm.create () in
  Asm.func a "_start";
  Asm.la a Reg.a0 "tbl";
  Asm.inst a (Inst.Load { width = Inst.B; unsigned = true; rd = Reg.t0; rs1 = Reg.a0; imm = 2 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.t0, 0));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "tbl";
  List.iter (Asm.dbyte a) [ 0x11; 0x22; 0x33; 0x44 ];
  let bin = Asm.assemble a in
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:Ext.rv64gc () in
  Loader.init_machine m bin;
  match Machine.run ~fuel:1_000 m with
  | Machine.Exited c -> Alcotest.(check int) "third byte" 0x33 c
  | _ -> Alcotest.fail "run failed"

let test_vanilla_jump_abs () =
  (* Codebuf's ±2GiB trampoline reaches a far label. *)
  let a = Asm.create () in
  Asm.func a "_start";
  (* jump to "far" using the vanilla trampoline through t0 *)
  let cb_target = Layout.text_base + 4096 in
  Asm.inst a (Inst.Auipc (Reg.t0, Encode.hi20 (cb_target - Layout.text_base)));
  Asm.inst a (Inst.Jalr (Reg.x0, Reg.t0, Encode.lo12 (cb_target - Layout.text_base)));
  (* pad with traps up to 4096, then the landing pad *)
  for _ = 1 to (4096 - Asm.here a) / 4 do
    Asm.inst a Inst.Ebreak
  done;
  Asm.insts a (exit_seq 3);
  expect_exit (Asm.assemble a) 3

let () =
  Alcotest.run "riscv_asm"
    [ ("programs",
       [ Alcotest.test_case "trivial exit" `Quick test_trivial;
         Alcotest.test_case "call and data" `Quick test_call_and_data;
         Alcotest.test_case "branches" `Quick test_forward_and_backward_branches;
         Alcotest.test_case "jump table" `Quick test_jump_table_dispatch;
         Alcotest.test_case "compressed branches" `Quick test_compressed_branches;
         Alcotest.test_case "gp-relative data" `Quick test_gp_relative_access;
         Alcotest.test_case "far jump" `Quick test_vanilla_jump_abs;
         Alcotest.test_case "data bytes" `Quick test_data_byte_emission ]);
      ("binfile",
       [ Alcotest.test_case "symbols and sizes" `Quick test_symbols_and_sizes;
         Alcotest.test_case "hidden functions" `Quick test_hidden_func_not_in_symbols;
         Alcotest.test_case "unresolved label" `Quick test_unresolved_label_fails;
         Alcotest.test_case "save/load" `Quick test_save_load_roundtrip ]) ]
