(** The per-rewritten-binary fault-handling table (paper §4.3).

    Maps the address of every original instruction overwritten by a
    trampoline to the address of its copy (or translation) in the target
    section. The runtime consults it to redirect erroneous executions after
    a deterministic fault; at rewrite time it is a write-once structure, at
    runtime read-only (extended only by lazy rewriting). *)

type t

val create : ?name:string -> unit -> t
(** [name] (default ["fault"]) tags the table's {!Obs.Table_add} trace
    events — the rewriter uses ["fault"] and ["trap"]. *)

val add : t -> key:int -> redirect:int -> unit
(** @raise Invalid_argument on a duplicate key (each original address has
    exactly one copy). *)

val find : t -> int -> int option
val count : t -> int
val iter : t -> (int -> int -> unit) -> unit
val merge_into : src:t -> dst:t -> unit
