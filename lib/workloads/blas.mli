(** The OpenBLAS experiment (paper §6.4, Fig. 14).

    Four representative kernels — dgemm/sgemm (matrix–matrix) and
    dgemv/sgemv (matrix–vector), "d" = 64-bit elements, "s" = 32-bit — run
    multithreaded: the matrix rows are split into one chunk per thread, and
    the threads are pinned half to base cores, half to extension cores
    (T threads = T/2 + T/2, as in the paper). A barrier joins them; its cost
    grows with the thread count, faster for matrix–matrix kernels (panel
    synchronization) than matrix–vector ones — the effect behind the
    paper's scalability cliff (Fig. 14e).

    Four systems are compared, all normalized to FAM running the extension
    binary at the smallest thread count:
    - [Fam_ext]: vector binary, runs only on the extension cores;
    - [Fam_base]: scalar binary everywhere, no acceleration;
    - [Melf]: scalar variant on base cores, vector variant on extension;
    - [Chimera]: CHBP-downgraded vector binary on base cores, vector
      native on extension cores. *)

type kernel = Dgemm | Sgemm | Dgemv | Sgemv

val kernel_name : kernel -> string
val kernels : kernel list

type system = Fam_ext | Fam_base | Melf | Chimera

val system_name : system -> string
val systems : system list

type setup

val prepare :
  ?n:int ->
  ?run_all:((unit -> unit) list -> unit) ->
  kernel ->
  threads:int list ->
  setup
(** Build and measure every (chunk-size, variant, rewriting) combination
    the given thread counts need; [n] is the matrix dimension (default 48).
    Exit codes of all variants are cross-checked. [run_all] executes the
    independent per-chunk-size measurement thunks (default: sequentially);
    the bench driver passes a domain-pool runner. *)

val latency : setup -> system -> threads:int -> int
(** Simulated end-to-end latency (chunk makespan + barrier). *)

val acceleration : setup -> system -> threads:int -> float
(** [latency(Fam_ext, min threads) / latency(system, threads)]. *)
