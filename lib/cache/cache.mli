(** Content-addressed persistent translation cache.

    Warm starts load two artifacts instead of recomputing them: the CHBP
    rewrite context ({!Chbp.t} — site tables, SMILE layouts, scavenge
    results) and a translation plan ({!Machine.plan} — decoded runs,
    post-optimize TIR ops, superblock shapes, relayout decisions, tier heat
    and inline-cache seeds). Artifacts are addressed by an MD5 digest of
    the guest code bytes, the ISA, a caller-supplied configuration tag and
    {!schema_version}, so stale entries are unreachable by construction:
    self-modified code, a different engine configuration or a schema bump
    all compute a different key.

    Every load is total — corrupt, truncated, version-skewed or missing
    entries return [Error reason] (and emit [Obs.Cache_reject]) so the
    caller can fall back to the cold path; they never raise. *)

type t

val schema_version : int
(** Baked into both the digest and the on-disk container version: bumping
    it orphans every existing entry (loads report ["version"]). *)

val open_dir : string -> t
(** Open (creating if necessary) a cache directory. *)

val dir : t -> string

(** {1 Content digests} *)

val digest_mem : Memory.t -> isa:Ext.t -> extra:string -> string
(** Hex digest of a memory image's executable pages plus the ISA,
    configuration tag and schema version. Data pages are excluded (they
    mutate during a run); executable pages are exactly what translation
    depends on. Taken after a run, the digest only equals a fresh load's
    digest if the program never modified its own code. *)

val digest_bin : Binfile.t -> extra:string -> string
(** Digest of a SELF binary's executable sections and entry point — the
    address for rewrite artifacts, computable before any memory image
    exists. *)

(** {1 Rewrite contexts} *)

val store_rewrite : t -> key:string -> Chbp.t -> unit
val load_rewrite : t -> key:string -> (Chbp.t, string) result

(** {1 Translation plans} *)

val store_plan : t -> key:string -> Machine.t -> unit
(** Export the machine's translation plan ({!Machine.export_plan}) and
    store it under [key] — call after a recording run, with [key] digested
    from the machine's {e current} memory. *)

val seed_plan : t -> key:string -> Machine.t -> (int, string) result
(** Load the plan stored under [key] and seed it into the machine
    ({!Machine.seed_plan}) as one accounted operation: [Ok blocks] counts a
    hit; a load failure or a machine-side refusal counts a miss with that
    reason (["miss"], ["truncated"], ["magic"], ["version"], ["checksum"],
    ["decode"], ["flags"], ["seed"]) and the caller proceeds cold. *)

(** {1 Telemetry and maintenance} *)

val observed : unit -> int * int * int
(** Process-wide [(hits, misses, stores)] since the last reset. *)

val observed_dedup : unit -> int
(** Stores skipped because a valid entry already held the digest — the
    concurrent-tenant duplicate-store path. Content addressing makes such
    stores redundant (every writer serializes identical bytes), so the
    cache validates the existing entry and skips the Marshal + tmp +
    rename instead of re-writing it; counted here and in the
    [chimera_cache_dedup_total] metric. Reset by {!reset_observed}. *)

val reset_observed : unit -> unit

val stat : t -> int * int
(** [(entries, bytes)] currently in the cache directory. *)

val clear : t -> int
(** Remove every cache entry (and stray temp file); returns the count. *)
