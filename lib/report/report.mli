(** ASCII rendering of the benchmark harness's tables and figure series.

    Output goes to stdout unless redirected with {!with_output}. Numeric
    cells (digits and dots only) are right-aligned within their column;
    everything else is left-aligned — so counts wider than their header
    still line up. *)

val with_output : out_channel -> (unit -> 'a) -> 'a
(** Run [f] with every report primitive writing to the given channel
    instead of stdout (restored on exit, exceptions included). *)

val table :
  title:string -> header:string list -> rows:string list list -> unit
(** Print an aligned table. *)

val series :
  title:string ->
  xlabel:string ->
  xs:string list ->
  lines:(string * float list) list ->
  unit
(** Print a figure as aligned numeric series: one row per x value, one
    column per line. *)

val histogram : title:string -> rows:(string * int) list -> unit
(** Print labelled counts with proportional ASCII bars (peak = 40 chars). *)

val note : string -> unit
(** Print an indented free-form note. *)

val heading : string -> unit

val print_aligned : string list list -> unit
(** Print rows under the shared column-alignment rules (numeric cells
    right-aligned) without a heading. *)
