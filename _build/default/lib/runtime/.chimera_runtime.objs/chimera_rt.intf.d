lib/runtime/chimera_rt.mli: Binfile Chbp Costs Counters Ext Machine Memory
