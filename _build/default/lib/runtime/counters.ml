type t = {
  mutable faults_recovered : int;
  mutable traps : int;
  mutable checks : int;
  mutable lazy_rewrites : int;
  mutable migrations : int;
  mutable signals : int;
}

let create () =
  { faults_recovered = 0; traps = 0; checks = 0; lazy_rewrites = 0;
    migrations = 0; signals = 0 }

let total_correctness_events t = t.faults_recovered + t.traps + t.checks

let add acc src =
  acc.faults_recovered <- acc.faults_recovered + src.faults_recovered;
  acc.traps <- acc.traps + src.traps;
  acc.checks <- acc.checks + src.checks;
  acc.lazy_rewrites <- acc.lazy_rewrites + src.lazy_rewrites;
  acc.migrations <- acc.migrations + src.migrations;
  acc.signals <- acc.signals + src.signals

let pp fmt t =
  Format.fprintf fmt
    "{faults=%d; traps=%d; checks=%d; lazy=%d; migrations=%d; signals=%d}"
    t.faults_recovered t.traps t.checks t.lazy_rewrites t.migrations t.signals
