(** The strawman binary-patching baseline (paper §6, "strawman binary
    patching"): identical pipeline to CHBP, but every entry and exit
    trampoline is trap-based. Each execution of a rewritten site pays two
    kernel round trips; comparing it against CHBP isolates the benefit of
    the SMILE trampoline. *)

val rewrite : mode:Chbp.mode -> Binfile.t -> Chbp.t
(** CHBP with [style = `Trap]. Run the result under {!Chimera_rt} as usual:
    the trap table drives the redirections and the runtime counts them. *)
