(* Always-on metrics: per-domain shards merged by addition at snapshot
   time.

   The recording discipline is the one the repo already trusts twice over:
   hot paths write plain ints into storage only their own domain touches
   (like the per-machine counters flush_run_stats folds), and aggregation
   is per-key addition — commutative, associative, so deterministic and
   independent of merge order (like Counters.add). The difference from
   lib/obs is the concurrency story: there is no ring and no sink, so
   nothing forces -j 1; every domain gets its own shard lazily through
   domain-local storage and a snapshot sums whatever shards exist.

   A shard is created per domain per process — worker domains spawned by
   successive Par.map calls each get a fresh one — so the shard list grows
   with domain *spawns*, not metrics. Shards are a few hundred bytes plus
   one bucket array per histogram actually touched; the list is only
   walked at snapshot/reset time. *)

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false

type mkind = Kcounter | Kgauge | Khist

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khist -> "histogram"

type def = { d_name : string; d_help : string; d_kind : mkind; d_slot : int }

(* Registry and shard list share one mutex: both are touched only at
   module-init (registration), domain spawn (shard creation) and
   snapshot/reset time — never on the recording path. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let defs : def list ref = ref [] (* newest first *)
let n_scalars = ref 0 (* counters + gauges: one slot each *)
let n_hists = ref 0

type counter = int
type gauge = int
type histogram = int

let register kind ?(help = "") name =
  locked (fun () ->
      match List.find_opt (fun d -> d.d_name = name) !defs with
      | Some d ->
          if d.d_kind <> kind then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered as a %s" name
                 (kind_name d.d_kind));
          d.d_slot
      | None ->
          let slot =
            match kind with
            | Khist ->
                let s = !n_hists in
                incr n_hists;
                s
            | Kcounter | Kgauge ->
                let s = !n_scalars in
                incr n_scalars;
                s
          in
          defs := { d_name = name; d_help = help; d_kind = kind; d_slot = slot } :: !defs;
          slot)

let counter ?help name = register Kcounter ?help name
let gauge ?help name = register Kgauge ?help name
let histogram ?help name = register Khist ?help name

(* ------------------------------------------------------------------ *)
(* Bucket layout                                                       *)
(* ------------------------------------------------------------------ *)

module Buckets = struct
  (* Log-linear, HDR-style: exact buckets for [0, 16), then 16 linear
     sub-buckets per power of two. Relative width is <= 1/16 of the
     value, absolute width is 2^g for the g-th octave group. Covers the
     full non-negative int range (msb <= 61 on 64-bit OCaml). *)

  let sub_bits = 4
  let sub = 1 lsl sub_bits (* 16 *)
  let count = sub * 59 (* groups 0..57 plus the linear prefix *)

  let msb v =
    let v = ref v and r = ref 0 in
    if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
    if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
    if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
    if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
    if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
    if !v lsr 1 <> 0 then incr r;
    !r

  let index v =
    if v < sub then if v < 0 then 0 else v
    else
      let g = msb v - sub_bits in
      (g * sub) + (v lsr g)

  let lo i =
    if i < sub then i
    else
      let g = (i lsr sub_bits) - 1 in
      (sub + (i land (sub - 1))) lsl g

  let hi i =
    if i < sub then i + 1
    else
      let g = (i lsr sub_bits) - 1 in
      let h = lo i + (1 lsl g) in
      (* the top bucket's bound is 2^62, one past max_int: clamp *)
      if h < 0 then max_int else h
end

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

(* Per-histogram storage is the bucket array plus two trailing cells for
   the sample count and sum (kept exactly, not reconstructed from
   buckets). *)
let hist_cells = Buckets.count + 2

type shard = {
  mutable s_scalars : int array; (* indexed by counter/gauge slot *)
  mutable s_hists : int array array; (* per histogram slot; [||] until touched *)
}

let shards : shard list ref = ref []

let new_shard () =
  let s =
    {
      s_scalars = Array.make (max 8 !n_scalars) 0;
      s_hists = Array.make (max 4 !n_hists) [||];
    }
  in
  locked (fun () -> shards := s :: !shards);
  s

let dls : shard Domain.DLS.key = Domain.DLS.new_key new_shard
let my () = Domain.DLS.get dls

(* Late registration (after a shard exists) is legal: shards grow on
   demand. The growth path runs at most once per metric per shard. *)
let scalars_for sh slot =
  let a = sh.s_scalars in
  if slot < Array.length a then a
  else begin
    let b = Array.make (max (slot + 1) (2 * Array.length a)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    sh.s_scalars <- b;
    b
  end

let hist_for sh slot =
  if slot >= Array.length sh.s_hists then begin
    let b = Array.make (max (slot + 1) (2 * Array.length sh.s_hists)) [||] in
    Array.blit sh.s_hists 0 b 0 (Array.length sh.s_hists);
    sh.s_hists <- b
  end;
  let a = sh.s_hists.(slot) in
  if Array.length a <> 0 then a
  else begin
    let a = Array.make hist_cells 0 in
    sh.s_hists.(slot) <- a;
    a
  end

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative amount";
  if n <> 0 then begin
    let sh = my () in
    let a = scalars_for sh c in
    a.(c) <- a.(c) + n
  end

let incr c = add c 1

let gauge_add g n =
  if n <> 0 then begin
    let sh = my () in
    let a = scalars_for sh g in
    a.(g) <- a.(g) + n
  end

let observe h v =
  let sh = my () in
  let a = hist_for sh h in
  let v = if v < 0 then 0 else v in
  let i = Buckets.index v in
  a.(i) <- a.(i) + 1;
  a.(Buckets.count) <- a.(Buckets.count) + 1;
  a.(Buckets.count + 1) <- a.(Buckets.count + 1) + v

let reset () =
  locked (fun () ->
      List.iter
        (fun sh ->
          Array.fill sh.s_scalars 0 (Array.length sh.s_scalars) 0;
          Array.iter
            (fun a -> if Array.length a <> 0 then Array.fill a 0 (Array.length a) 0)
            sh.s_hists)
        !shards)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type verdict = {
  v_rule : string;
  v_ok : bool;
  v_value : float;
  v_detail : string;
}

module Snapshot = struct
  type hist = { h_count : int; h_sum : int; h_buckets : int array }

  (* Name-keyed, sorted: a snapshot is self-describing and comparable
     independently of registration order. [t_help] carries the HELP text
     into the Prometheus exposition. *)
  type t = {
    t_counters : (string * int) list;
    t_gauges : (string * int) list;
    t_hists : (string * hist) list;
    t_help : (string * string) list;
  }

  let empty = { t_counters = []; t_gauges = []; t_hists = []; t_help = [] }

  let take () =
    let defs, shs = locked (fun () -> (!defs, !shards)) in
    let scalar slot =
      List.fold_left
        (fun acc sh ->
          acc + if slot < Array.length sh.s_scalars then sh.s_scalars.(slot) else 0)
        0 shs
    in
    let hist slot =
      let b = Array.make hist_cells 0 in
      List.iter
        (fun sh ->
          if slot < Array.length sh.s_hists then begin
            let a = sh.s_hists.(slot) in
            if Array.length a <> 0 then
              for i = 0 to hist_cells - 1 do
                b.(i) <- b.(i) + a.(i)
              done
          end)
        shs;
      {
        h_count = b.(Buckets.count);
        h_sum = b.(Buckets.count + 1);
        h_buckets = Array.sub b 0 Buckets.count;
      }
    in
    let by_name (a, _) (b, _) = compare a b in
    let counters = ref [] and gauges = ref [] and hists = ref [] and help = ref [] in
    List.iter
      (fun d ->
        if d.d_help <> "" then help := (d.d_name, d.d_help) :: !help;
        match d.d_kind with
        | Kcounter -> counters := (d.d_name, scalar d.d_slot) :: !counters
        | Kgauge -> gauges := (d.d_name, scalar d.d_slot) :: !gauges
        | Khist -> hists := (d.d_name, hist d.d_slot) :: !hists)
      defs;
    {
      t_counters = List.sort by_name !counters;
      t_gauges = List.sort by_name !gauges;
      t_hists = List.sort by_name !hists;
      t_help = !help;
    }

  let counter_value t name =
    match List.assoc_opt name t.t_counters with Some v -> v | None -> 0

  let gauge_value t name =
    match List.assoc_opt name t.t_gauges with Some v -> v | None -> 0

  let histogram_value t name = List.assoc_opt name t.t_hists

  let delta ~cur ~prev =
    let sub_scalars cur prev =
      List.map
        (fun (name, v) ->
          (name, v - (match List.assoc_opt name prev with Some p -> p | None -> 0)))
        cur
    in
    let sub_hists cur prev =
      List.map
        (fun (name, h) ->
          match List.assoc_opt name prev with
          | None -> (name, h)
          | Some p ->
              ( name,
                {
                  h_count = h.h_count - p.h_count;
                  h_sum = h.h_sum - p.h_sum;
                  h_buckets = Array.mapi (fun i v -> v - p.h_buckets.(i)) h.h_buckets;
                } ))
        cur
    in
    {
      t_counters = sub_scalars cur.t_counters prev.t_counters;
      t_gauges = sub_scalars cur.t_gauges prev.t_gauges;
      t_hists = sub_hists cur.t_hists prev.t_hists;
      t_help = cur.t_help;
    }

  let buckets h =
    let acc = ref [] in
    for i = Buckets.count - 1 downto 0 do
      if h.h_buckets.(i) <> 0 then
        acc := (Buckets.lo i, Buckets.hi i, h.h_buckets.(i)) :: !acc
    done;
    !acc

  let quantile h q =
    if h.h_count = 0 then 0.
    else begin
      let rank =
        let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      let est = ref 0. and seen = ref 0 and i = ref 0 and stop = ref false in
      while not !stop && !i < Buckets.count do
        seen := !seen + h.h_buckets.(!i);
        if !seen >= rank then begin
          est := (float_of_int (Buckets.lo !i) +. float_of_int (Buckets.hi !i)) /. 2.;
          stop := true
        end;
        i := !i + 1
      done;
      !est
    end

  (* --- Prometheus text exposition ------------------------------------ *)

  let esc_label s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_prometheus ?health t =
    let b = Buffer.create 4096 in
    let preamble name typ =
      (match List.assoc_opt name t.t_help with
      | Some h -> Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name h)
      | None -> ());
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
    in
    List.iter
      (fun (name, v) ->
        preamble name "counter";
        Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
      t.t_counters;
    List.iter
      (fun (name, v) ->
        preamble name "gauge";
        Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
      t.t_gauges;
    List.iter
      (fun (name, h) ->
        preamble name "histogram";
        let cum = ref 0 in
        List.iter
          (fun (_, hi, n) ->
            cum := !cum + n;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name hi !cum))
          (buckets h);
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.h_count);
        Buffer.add_string b (Printf.sprintf "%s_sum %d\n" name h.h_sum);
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.h_count))
      t.t_hists;
    (match health with
    | None -> ()
    | Some verdicts ->
        Buffer.add_string b "# TYPE chimera_health gauge\n";
        List.iter
          (fun v ->
            Buffer.add_string b
              (Printf.sprintf "chimera_health{rule=\"%s\"} %d\n"
                 (esc_label v.v_rule)
                 (if v.v_ok then 1 else 0)))
          verdicts;
        Buffer.add_string b "# TYPE chimera_healthy gauge\n";
        Buffer.add_string b
          (Printf.sprintf "chimera_healthy %d\n"
             (if List.for_all (fun v -> v.v_ok) verdicts then 1 else 0)));
    Buffer.contents b

  (* --- JSON ----------------------------------------------------------- *)

  let esc_json s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json ?health t =
    let b = Buffer.create 4096 in
    let scalar_map kvs =
      String.concat ","
        (List.map (fun (name, v) -> Printf.sprintf "\"%s\": %d" name v) kvs)
    in
    Buffer.add_string b "{\n  \"counters\": {";
    Buffer.add_string b (scalar_map t.t_counters);
    Buffer.add_string b "},\n  \"gauges\": {";
    Buffer.add_string b (scalar_map t.t_gauges);
    Buffer.add_string b "},\n  \"histograms\": {";
    Buffer.add_string b
      (String.concat ","
         (List.map
            (fun (name, h) ->
              Printf.sprintf
                "\"%s\": {\"count\": %d, \"sum\": %d, \"p50\": %g, \"p90\": \
                 %g, \"p99\": %g, \"p999\": %g, \"buckets\": [%s]}"
                name h.h_count h.h_sum (quantile h 0.5) (quantile h 0.9)
                (quantile h 0.99) (quantile h 0.999)
                (String.concat ","
                   (List.map
                      (fun (lo, hi, n) -> Printf.sprintf "[%d,%d,%d]" lo hi n)
                      (buckets h))))
            t.t_hists));
    Buffer.add_string b "}";
    (match health with
    | None -> ()
    | Some verdicts ->
        Buffer.add_string b ",\n  \"health\": [";
        Buffer.add_string b
          (String.concat ","
             (List.map
                (fun v ->
                  Printf.sprintf
                    "{\"rule\": \"%s\", \"ok\": %b, \"value\": %g, \
                     \"detail\": \"%s\"}"
                    (esc_json v.v_rule) v.v_ok v.v_value (esc_json v.v_detail))
                verdicts));
        Buffer.add_string b "]");
    Buffer.add_string b "\n}\n";
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

module Watchdog = struct
  type source = Counter of string | Gauge of string | Sum of string list

  type predicate =
    | Rate_below of { num : source; den : source; min_den : int; floor : float }
    | Rate_above of { num : source; den : source; min_den : int; ceil : float }
    | Stalled of { counter : string; while_counter : string; min_active : int }
    | Burst of { counter : string; max : int }

  type rule = { r_name : string; r_what : string; r_check : predicate }

  (* Thresholds are deliberately loose — the watchdog flags pathologies
     (a stalled dispatcher, a TLB whose hit rate halved), not ordinary
     variance; the regression gate owns fine-grained drift. Each rule is
     inactive below its activity floor so idle or tiny windows never
     alarm. *)
  let default_rules =
    [
      {
        r_name = "dispatch_stall";
        r_what = "block engine stopped dispatching while instructions retire";
        r_check =
          Stalled
            {
              counter = "chimera_dispatches_total";
              while_counter = "chimera_retired_total";
              min_active = 1_000_000;
            };
      };
      {
        r_name = "side_exit_regression";
        r_what = "taken side exits per superblock dispatch";
        r_check =
          Rate_above
            {
              num = Counter "chimera_side_exits_total";
              den = Counter "chimera_dispatches_total";
              min_den = 10_000;
              ceil = 0.5;
            };
      };
      {
        r_name = "cache_reject_burst";
        r_what = "persistent-cache lookups failing in one window";
        r_check = Burst { counter = "chimera_cache_rejects_total"; max = 256 };
      };
      {
        r_name = "queue_saturation";
        r_what = "scheduler queue growth per admitted serve request";
        r_check =
          Rate_above
            {
              (* Gauge delta over the window: positive when the run ends
                 with more queued work than it started with. A server that
                 drains before snapshotting reads 0 regardless of transient
                 depth, so only a persistently growing backlog alarms. The
                 floor keeps runs that never serve (every bench experiment
                 but serve) inactive. *)
              num = Gauge "chimera_sched_queue_depth";
              den = Counter "chimera_serve_admitted_total";
              min_den = 64;
              ceil = 0.5;
            };
      };
      {
        r_name = "tlb_collapse";
        r_what = "software-TLB hit rate";
        r_check =
          Rate_below
            {
              num = Counter "chimera_tlb_hits_total";
              den =
                Sum [ "chimera_tlb_hits_total"; "chimera_tlb_misses_total" ];
              min_den = 100_000;
              floor = 0.5;
            };
      };
    ]

  let source_value snap = function
    | Counter n -> Snapshot.counter_value snap n
    | Gauge n -> Snapshot.gauge_value snap n
    | Sum ns ->
        List.fold_left (fun acc n -> acc + Snapshot.counter_value snap n) 0 ns

  let evaluate ?(rules = default_rules) ~prev ~cur () =
    let d = Snapshot.delta ~cur ~prev in
    List.map
      (fun r ->
        let ok, value, detail =
          match r.r_check with
          | Rate_below { num; den; min_den; floor } ->
              let dv = source_value d den in
              if dv < min_den then
                (true, 0., Printf.sprintf "inactive (%d < %d samples)" dv min_den)
              else
                let rate = float_of_int (source_value d num) /. float_of_int dv in
                ( rate >= floor,
                  rate,
                  Printf.sprintf "%.4f over %d samples (floor %.4f)" rate dv floor )
          | Rate_above { num; den; min_den; ceil } ->
              let dv = source_value d den in
              if dv < min_den then
                (true, 0., Printf.sprintf "inactive (%d < %d samples)" dv min_den)
              else
                let rate = float_of_int (source_value d num) /. float_of_int dv in
                ( rate <= ceil,
                  rate,
                  Printf.sprintf "%.4f over %d samples (ceiling %.4f)" rate dv ceil )
          | Stalled { counter; while_counter; min_active } ->
              let active = Snapshot.counter_value d while_counter in
              let moved = Snapshot.counter_value d counter in
              if active < min_active then
                ( true,
                  float_of_int moved,
                  Printf.sprintf "inactive (%s advanced %d < %d)" while_counter
                    active min_active )
              else
                ( moved > 0,
                  float_of_int moved,
                  Printf.sprintf "%s advanced %d while %s advanced %d" counter
                    moved while_counter active )
          | Burst { counter; max } ->
              let v = Snapshot.counter_value d counter in
              ( v <= max,
                float_of_int v,
                Printf.sprintf "%s advanced %d (burst ceiling %d)" counter v max )
        in
        if !Obs.enabled then
          Obs.emit
            (if ok then Obs.Health_ok { rule = r.r_name }
             else Obs.Health_degraded { rule = r.r_name; reason = detail });
        { v_rule = r.r_name; v_ok = ok; v_value = value; v_detail = detail })
      rules

  let healthy verdicts = List.for_all (fun v -> v.v_ok) verdicts
end
