type t = {
  orig : Binfile.t;
  bin : Binfile.t;
  map : (int, int) Hashtbl.t;  (* old text address -> regenerated address *)
  checks : int;
}

let olabel addr = Printf.sprintf "o%x" addr

let is_source mode (i : Disasm.insn) =
  match mode with
  | Chbp.Downgrade -> (
      match Ext.required i.inst with
      | Some Ext.V | Some Ext.B | Some Ext.P -> true
      | Some Ext.C | Some Ext.X | None -> false)
  | Chbp.Empty -> (
      match Ext.required i.inst with
      | Some Ext.V -> true
      | Some Ext.C | Some Ext.B | Some Ext.P | Some Ext.X | None -> false)
  | Chbp.Upgrade -> false

(* Safer-style metadata exploitation (paper §2.2): scan data sections for
   aligned code pointers (jump tables, function-pointer tables) and use them
   as additional disassembly roots, increasing the set of statically
   recoverable indirect-jump targets. *)
let data_code_pointers (orig : Binfile.t) =
  let in_text addr =
    List.exists (fun s -> Binfile.in_section s addr) (Binfile.code_sections orig)
  in
  orig.Binfile.sections
  |> List.filter (fun (s : Binfile.section) -> not s.Binfile.sec_perm.Memory.x)
  |> List.concat_map (fun (s : Binfile.section) ->
         let n = Bytes.length s.Binfile.sec_data / 8 in
         List.init n (fun k -> Int64.to_int (Bytes.get_int64_le s.Binfile.sec_data (k * 8)))
         |> List.filter (fun v -> v land 1 = 0 && in_text v))

let rewrite ?(instrument = true) ~mode (orig : Binfile.t) =
  let text = Binfile.text orig in
  (* regenerate at a disjoint base: stale pre-rewrite pointers must be
     distinguishable from regenerated addresses for translation to work *)
  let text_base = Layout.safer_base in
  ignore text.Binfile.sec_addr;
  let roots =
    (orig.Binfile.entry :: List.map (fun s -> s.Binfile.sym_addr) orig.Binfile.symbols)
    @ data_code_pointers orig
  in
  let dis = Disasm.of_binfile_at orig ~roots in
  let cfg = Cfg.of_disasm dis in
  let live = Liveness.compute cfg in
  let upgrades =
    match mode with
    | Chbp.Upgrade ->
        Upgrade.find cfg live
        |> List.map (fun c -> (c.Upgrade.c_addr, c))
        |> List.to_seq |> Hashtbl.of_seq
    | Chbp.Downgrade | Chbp.Empty -> Hashtbl.create 1
  in
  let cb = Codebuf.create () in
  let checks = ref 0 in
  let sew = ref None in
  List.iter
    (fun (i : Disasm.insn) ->
      (* reset the static element-width at block boundaries *)
      (match Cfg.block_at cfg i.addr with Some _ -> sew := None | None -> ());
      Codebuf.label cb (olabel i.addr);
      match Hashtbl.find_opt upgrades i.addr with
      | Some c ->
          (* vectorized replacement bound to the loop-head address; the
             scalar head instruction follows unlabeled so that the rest of
             the original loop (labeled normally) stays reachable through
             stale mid-loop pointers *)
          Upgrade.emit_vector_loop cb c;
          Codebuf.j_l cb (olabel c.Upgrade.c_exit);
          Codebuf.inst cb i.inst
      | None ->
      if is_source mode i then begin
        (match i.inst with
        | Inst.Vsetvli (_, _, s) -> sew := Some s
        | _ -> ());
        match mode with
        | Chbp.Empty -> Codebuf.inst cb i.inst
        | Chbp.Downgrade ->
            let static_sew =
              match i.inst with Inst.Vsetvli _ -> None | _ -> !sew
            in
            let free = Liveness.dead_regs_at live i.addr in
            Translate.downgrade cb ~static_sew ~free i.inst
        | Chbp.Upgrade -> assert false
      end
      else
        match Disasm.flow_of i with
        | Disasm.Fallthrough | Disasm.Syscall | Disasm.Halt -> (
            match i.inst with
            | Inst.Auipc (rd, imm) -> Codebuf.la_abs cb rd (i.addr + (imm lsl 12))
            | inst -> Codebuf.inst cb inst)
        | Disasm.Branch target -> (
            match i.inst with
            | Inst.Branch (c, rs1, rs2, _) -> Codebuf.branch_l cb c rs1 rs2 (olabel target)
            | Inst.C_beqz (rs1, _) ->
                Codebuf.branch_l cb Inst.Beq rs1 Reg.x0 (olabel target)
            | Inst.C_bnez (rs1, _) ->
                Codebuf.branch_l cb Inst.Bne rs1 Reg.x0 (olabel target)
            | _ -> assert false)
        | Disasm.Jump target -> Codebuf.jal_l cb Reg.x0 (olabel target)
        | Disasm.Call target -> (
            match i.inst with
            | Inst.Jal (rd, _) -> Codebuf.jal_l cb rd (olabel target)
            | _ -> assert false)
        | Disasm.Ret | Disasm.Indirect_jump | Disasm.Indirect_call -> (
            if instrument then begin
              incr checks;
              match i.inst with
              | Inst.Jalr (rd, rs1, imm) ->
                  Codebuf.inst cb (Inst.Xcheck_jalr (rd, rs1, imm))
              | Inst.C_jr rs1 -> Codebuf.inst cb (Inst.Xcheck_jalr (Reg.x0, rs1, 0))
              | Inst.C_jalr rs1 -> Codebuf.inst cb (Inst.Xcheck_jalr (Reg.ra, rs1, 0))
              | Inst.Xcheck_jalr _ as x -> Codebuf.inst cb x
              | _ -> assert false
            end
            else
              (* Egalito-style: trust static recovery, no runtime check —
                 fast, but stale code pointers jump into the void *)
              Codebuf.inst cb i.inst))
    (Disasm.to_list dis);
  (* link: direct targets that were never disassembled resolve to their old
     addresses — the stale-pointer correctness gap of regeneration. *)
  let bytes = Codebuf.link cb ~base:text_base ~resolve:(fun l ->
      if String.length l > 1 && l.[0] = 'o' then
        int_of_string_opt ("0x" ^ String.sub l 1 (String.length l - 1))
      else None)
  in
  if text_base + Bytes.length bytes >= Layout.rodata_base then
    invalid_arg "Safer.rewrite: regenerated text too large";
  let map = Hashtbl.create 1024 in
  Disasm.iter dis (fun (i : Disasm.insn) ->
      match Codebuf.label_offset cb (olabel i.addr) with
      | off -> Hashtbl.replace map i.addr (text_base + off)
      | exception Not_found -> ());
  let sections =
    List.map
      (fun (s : Binfile.section) ->
        if s.Binfile.sec_name = ".text" then
          { s with Binfile.sec_data = bytes; sec_addr = text_base }
        else s)
      orig.Binfile.sections
  in
  let sections =
    match mode with
    | Chbp.Downgrade -> sections @ [ Vregs.section () ]
    | Chbp.Upgrade | Chbp.Empty -> sections
  in
  let isa =
    match mode with
    | Chbp.Downgrade ->
        Ext.union
          (Ext.of_list
             (List.filter (fun e -> e <> Ext.V && e <> Ext.B) (Ext.to_list orig.Binfile.isa)))
          (Ext.of_list [ Ext.X ])
    | Chbp.Upgrade -> Ext.union orig.Binfile.isa (Ext.of_list [ Ext.V; Ext.X ])
    | Chbp.Empty -> Ext.union orig.Binfile.isa (Ext.of_list [ Ext.X ])
  in
  let entry =
    match Hashtbl.find_opt map orig.Binfile.entry with
    | Some e -> e
    | None -> orig.Binfile.entry
  in
  let bin =
    { orig with
      Binfile.name = orig.Binfile.name ^ ".safer";
      entry;
      isa;
      sections }
  in
  { orig; bin; map; checks = !checks }

let result t = t.bin
let checks_inserted t = t.checks
let address_map_size t = Hashtbl.length t.map

type runtime = {
  rw : t;
  costs : Costs.t;
  counters : Counters.t;
  mutable view : Memory.t option;
}

let runtime ?(costs = Costs.default) rw =
  { rw; costs; counters = Counters.create (); view = None }

let load rt =
  let mem = Loader.load rt.rw.bin in
  rt.view <- Some mem;
  mem

let counters rt = rt.counters

let handlers rt =
  let on_check m ~pc ~rd:_ ~target =
    Counters.check_at rt.counters ~site:pc;
    if !Obs.enabled then Obs.emit (Obs.Check_taken { site = pc; target });
    match Hashtbl.find_opt rt.rw.map target with
    | Some translated ->
        (* stale pre-rewrite pointer: full table translation *)
        Machine.charge m rt.costs.Costs.check;
        Machine.Resume translated
    | None ->
        (* already a regenerated address: the inlined encode test suffices *)
        Machine.charge m rt.costs.Costs.check_fast;
        Machine.Resume target
  in
  { Machine.default_handlers with on_check }

let run rt ?isa ~fuel m =
  let mem = match rt.view with None -> load rt | Some mem -> mem in
  Machine.switch_view m mem;
  (match isa with Some i -> Machine.set_isa m i | None -> ());
  Loader.init_machine m rt.rw.bin;
  Machine.run ~handlers:(handlers rt) ~fuel m
