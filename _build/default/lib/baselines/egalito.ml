type t = Safer.t

let rewrite ~mode bin = Safer.rewrite ~instrument:false ~mode bin
let result = Safer.result

let run ?costs t ?isa ~fuel m =
  ignore costs;
  let bin = Safer.result t in
  let mem = Loader.load bin in
  Machine.switch_view m mem;
  (match isa with Some i -> Machine.set_isa m i | None -> ());
  Loader.init_machine m bin;
  Machine.run ~fuel m
