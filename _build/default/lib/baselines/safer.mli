(** The Safer-style binary-regeneration baseline (paper §2.2, Priyadarshan
    et al., USENIX Security '23).

    Regeneration rebuilds the text section: source instructions are
    translated *in place* (subsequent instructions shift), direct control
    flow is retargeted statically, and — because statically unresolvable
    indirect targets (jump tables, function pointers, returns) may carry
    stale pre-rewrite addresses — every indirect jump is instrumented with a
    check that validates and translates its target at runtime. The check is
    the custom-0 {!Inst.Xcheck_jalr} instruction, standing in for Safer's
    inlined encoding test + translation-table query; it is executed on every
    indirect jump in normal executions, which is exactly the proactive cost
    Chimera's passive design avoids.

    Code that recursive descent missed is lost by regeneration (stale
    pointers into it cannot be translated) — the correctness gap the paper
    ascribes to this family. *)

type t

val rewrite : ?instrument:bool -> mode:Chbp.mode -> Binfile.t -> t
(** [instrument] (default true) inserts the runtime checks; [false] gives
    the Egalito-style variant (see {!Egalito}). *)

val result : t -> Binfile.t
val checks_inserted : t -> int
val address_map_size : t -> int

type runtime

val runtime : ?costs:Costs.t -> t -> runtime
val load : runtime -> Memory.t
val counters : runtime -> Counters.t
val run : runtime -> ?isa:Ext.t -> fuel:int -> Machine.t -> Machine.stop
