(** Program assembler: builds complete {!Binfile} binaries.

    The builder maintains three sections (.text, .rodata, .data) at the
    conventional {!Layout} addresses, a shared label namespace
    across sections, and a symbol table fed by {!func}. Workload generators
    and the MELF baseline use it as "the compiler". *)

type t

val create : ?name:string -> unit -> t

(** {1 Text emission} *)

val inst : t -> Inst.t -> unit
val insts : t -> Inst.t list -> unit
val label : t -> string -> unit

val func : t -> string -> unit
(** Bind a label and record a function symbol (a disassembly root). *)

val hidden_func : t -> string -> unit
(** Bind a label without a symbol: the recursive-descent disassembler will
    not see this function unless some direct flow reaches it (the paper's
    incomplete-disassembly case). *)

val here : t -> int
(** Offset of the next text instruction (relative to the text base). *)

val branch_to : t -> Inst.branch_cond -> Reg.t -> Reg.t -> string -> unit
val jal_to : t -> Reg.t -> string -> unit
val j : t -> string -> unit

val call : t -> string -> unit
(** [jal ra, label]; ±1 MiB reach. *)

val call_far : t -> scratch:Reg.t -> string -> unit
(** Long-distance call via [lui/addi; jalr] — for >1 MiB texts. *)

val ret : t -> unit
val la : t -> Reg.t -> string -> unit

val lui_hi : t -> Reg.t -> string -> unit
(** The [lui rd, hi(label)] half of an address materialization. *)

val addi_lo : t -> Reg.t -> string -> unit
(** The matching [addi rd, rd, lo(label)]. *)

val load_lo : t -> Inst.mem_width -> rd:Reg.t -> base:Reg.t -> string -> unit
(** [load rd, lo(label)(base)]: with {!lui_hi} this is the static-data
    access idiom the general-register SMILE trampoline builds on. *)

val li : t -> Reg.t -> int -> unit

val cj_to : t -> string -> unit
val cbeqz_to : t -> Reg.t -> string -> unit
val cbnez_to : t -> Reg.t -> string -> unit

val align4 : t -> unit
(** Pad text to 4-byte alignment with [c.nop] (marks the binary as using C). *)

(** {1 Data emission} *)

val dlabel : t -> string -> unit
(** Label in .data. *)

val dword64 : t -> int64 -> unit
val dword32 : t -> int -> unit

val dbyte : t -> int -> unit
(** Emit one byte of data (low 8 bits). *)

val dspace : t -> int -> unit

val rlabel : t -> string -> unit
(** Label in .rodata. *)

val rword64 : t -> int64 -> unit
val rword_label : t -> string -> unit
(** Jump-table entry: 8-byte absolute address of a text label. *)

(** {1 Assembly} *)

val assemble : ?entry:string -> t -> Binfile.t
(** Link everything at the conventional layout. [entry] defaults to
    ["_start"]. @raise Invalid_argument on unresolved labels. *)
