(** Register sets as 32-bit masks (bit [i] = [xi]). *)

type t = int

val empty : t
val all : t
val singleton : Reg.t -> t
val of_list : Reg.t list -> t
val mem : Reg.t -> t -> bool
val add : Reg.t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val to_list : t -> Reg.t list
val caller_saved : t
val arg_regs : t
(** [a0]–[a7]. *)

val pp : Format.formatter -> t -> unit
