lib/workloads/mixgen.mli: Format Sched
