(** The simulated RV64 hart: fetch/decode/execute with deterministic faults.

    A [Machine.t] is one task's execution context: integer and vector
    register files, program counter, a reference to the memory (address-space
    view) it executes in, and cycle counters. Hart heterogeneity is the
    [isa] capability set: executing an instruction outside it raises an
    illegal-instruction fault, exactly the behaviour FAM scheduling and lazy
    rewriting rely on.

    Control events (faults, [ebreak] traps, syscalls, the Safer check
    instruction) are delivered to caller-supplied {!handlers}; the runtime
    library installs policy-specific ones.

    {b Fault determinism contract.} Given the same memory and register
    state, executing at a pc either retires the same instruction or raises
    the same {!Fault.t} at the same pc — no timing, caching or engine mode
    may change the outcome. Both execution engines honour this: the
    single-step path and the translation-block path are differentially
    tested for bit-identical stop states (test/test_properties.ml), and
    SMILE recovery depends on it (the fault a partially-executed trampoline
    raises is the key into the fault-handling table). The contract holds
    with every fast path on or off: the software TLB ({!Memory}) and direct
    block chaining are caches of successful checks, never of outcomes a
    permission or code change could have altered. Faults are observable as
    [Fault_raised] events, and the block engine emits
    [Tb_compile]/[Tb_hit]/[Tb_invalidate]/[Tb_chain]; see lib/obs and
    OBSERVABILITY.md. *)

type t

type stop =
  | Exited of int  (** The program issued the exit syscall. *)
  | Faulted of Fault.t  (** An unhandled deterministic fault. *)
  | Fuel_exhausted  (** The [fuel] instruction budget ran out. *)

type action =
  | Resume of int  (** Continue executing at the given pc. *)
  | Stop of stop

type handlers = {
  on_fault : t -> Fault.t -> action;
  on_ebreak : t -> pc:int -> size:int -> action;
      (** [ebreak]/[c.ebreak] executed; [size] distinguishes the two. *)
  on_ecall : t -> pc:int -> action;
      (** Syscall other than exit (exit is handled internally: a7 = 93). *)
  on_check : t -> pc:int -> rd:Reg.t -> target:int -> action;
      (** The custom-0 checked indirect jump was executed with the given
          untranslated [target]; the handler performs the translation. *)
}

val default_handlers : handlers
(** Halts on every event (faults become [Faulted], etc.). *)

val create : ?vlen:int -> ?costs:Costs.t -> mem:Memory.t -> isa:Ext.t -> unit -> t
(** [vlen] is the vector register width in bytes (default 32 = 256 bits). *)

(** {1 State access} *)

val mem : t -> Memory.t
val isa : t -> Ext.t
val set_isa : t -> Ext.t -> unit
val costs : t -> Costs.t
val vlen : t -> int

val pc : t -> int
val set_pc : t -> int -> unit

val get_reg : t -> Reg.t -> int64
val set_reg : t -> Reg.t -> int64 -> unit
val get_vreg : t -> Reg.v -> bytes
(** A copy of the 256-bit register contents. *)

val set_vreg : t -> Reg.v -> bytes -> unit
val vl : t -> int
val vsew : t -> Inst.sew

val set_vstate : t -> vl:int -> vsew:Inst.sew -> unit
(** Restore the vector CSR state (used when migrating a task between
    harts/views). *)

val switch_view : t -> Memory.t -> unit
(** Point the hart at a different address-space view (MMView switch). The
    decode and translation-block caches are per-view and switch with it.
    The machine keeps a small LRU of views: a view evicted from it only
    loses its caches (rebuilt on demand), never architectural state. *)

val invalidate_code : t -> addr:int -> len:int -> unit
(** Invalidate cached decodes and translation blocks overlapping a patched
    code range, in every view seen so far (physical pages may be shared
    between views). O(pages patched): bumps page-granular generation
    counters; stale entries fail their stamp check on next use. *)

(** {1 Counters} *)

val enable_icache : ?sets:int -> ?line:int -> t -> unit
(** Attach an {!Icache} model: every fetch checks it and misses charge
    {!Costs.t.icache_miss} cycles. Off by default — the headline numbers in
    EXPERIMENTS.md are produced without it; the ablation harness turns it on
    to show the microarchitectural side of trampoline overhead. *)

val icache_misses : t -> int
(** Misses so far (0 when the model is off). *)

val retired : t -> int
(** Instructions retired. *)

val vector_retired : t -> int

val indirect_retired : t -> int
(** Register-indirect jumps/calls/returns retired — the flows prior binary
    rewriters must check or rebound on every execution. *)

val cycles : t -> int
(** Retired-instruction cycles plus charged penalties. *)

val charge : t -> int -> unit
(** Add penalty cycles (used by runtime handlers for traps, checks, ...). *)

val reset_counters : t -> unit

(** {1 Execution} *)

val run : ?handlers:handlers -> fuel:int -> t -> stop
(** Execute until a stop event, at most [fuel] instructions.

    By default this uses the translation-block engine: straight-line runs
    are decoded once into arrays of closures ({!Tblock}) and executed
    whole between handler-visible events. Counters, faults and handler
    interactions are observably identical to the single-step path (the
    differential property tests assert this). *)

val step : ?handlers:handlers -> t -> stop option
(** Execute one instruction; [None] means it retired normally. Always uses
    the single-step path. *)

val set_block_engine : t -> bool -> unit
(** Enable/disable the translation-block fast path in {!run} (on by
    default). The single-step engine is the reference semantics; disabling
    is meant for differential testing and debugging. *)

val block_engine : t -> bool

val set_block_engine_default : bool -> unit
(** Engine used by machines created after this call (the bench harness's
    [--engine] flag sets it before building workloads). *)

val set_block_chaining : t -> bool -> unit
(** Enable/disable direct block chaining inside the block engine (on by
    default). When on, a block that completes normally records its
    successor in a link slot; later transfers along the same edge skip the
    block-table probe. Links are guarded by entry-pc and code-epoch checks,
    so chained execution is observably identical to unchained (differential
    tests assert bit-identical stop states). *)

val block_chaining : t -> bool

val set_superblocks : t -> bool -> unit
(** Enable/disable superblock formation (on by default): inlined direct
    jumps and conditional branches with guarded side exits, and cross-page
    blocks. When off, translation falls back to straight-line blocks that
    end at the first control-flow instruction — the intermediate engine the
    differential tests compare against. Only affects blocks translated
    after the call (cached blocks keep the shape they were compiled with),
    so flip it before running. *)

val superblocks : t -> bool

val set_superblocks_default : bool -> unit
(** Superblock setting for machines created after this call (the bench
    harness's [--engine] flag sets it before building workloads). *)

val set_ir : t -> bool -> unit
(** Enable/disable the linear-IR translation pipeline (on by default).
    When on, straight-line runs are lowered to {!Tir}, optimized
    block-locally (constant propagation into folded ops, dead-write
    elimination, memory-pattern fusion) and emitted as multi-instruction
    execution units. When off, every instruction compiles to its direct
    legacy closure — the bench's [--no-ir] ablation. Unlike
    {!set_superblocks}, flipping this drops cached blocks (both settings
    then see freshly translated code). The icache model bypasses the IR
    regardless (per-fetch accounting needs per-instruction units). *)

val ir : t -> bool

val set_ir_default : bool -> unit
(** IR setting for machines created after this call (the bench harness's
    [--no-ir] flag clears it before building workloads). *)

val set_tiered : t -> bool -> unit
(** Enable/disable tiered execution (off by default). When on, cold code is
    interpreted through the step path and counted per-pc; a pc crossing the
    warm-up threshold is translated as a straight-line tier-1 block, then
    promoted superblock (tier 2) and IR-optimized (tier 3) as its hotness
    counter climbs. Hot blocks whose observed side-exit profile contradicts
    the static BTFN layout are recompiled with a trace-style layout picked
    from the exit counts. Flipping the setting drops cached blocks and heat
    counters (both settings then see freshly translated code). Tier
    promotion only retranslates — never reinterprets — so the fault
    determinism contract is untouched: every tier retires the same
    instructions and raises the same faults as the step oracle. *)

val tiered : t -> bool

val set_tiered_default : bool -> unit
(** Tiering for machines created after this call (the bench harness's
    [--no-tier] flag clears it before building workloads). *)

val set_inline_caches : t -> bool -> unit
(** Enable/disable per-site inline caches for register-indirect jumps
    ([jalr]/[c.jr]/[c.jalr]; off by default). Each such site gets a cache
    with a monomorphic fast path — the predicted target pc plus a direct
    block link, guarded by the code epoch — falling back through a small
    polymorphic table to the per-view block cache; sites whose table
    overflows go megamorphic and stop caching. Flipping the setting drops
    cached blocks and cache sites (terminator closures embed the choice). *)

val inline_caches : t -> bool

val set_inline_caches_default : bool -> unit
(** Inline-cache setting for machines created after this call (the bench
    harness's [--no-ic] flag clears it before building workloads). *)

(** {1 Instrumentation} *)

val set_profile : t -> Profile.t option -> unit
(** Attach (or detach) a guest profiler. With a profile attached, both
    engines attribute every dispatch to a per-block row: the block engine
    with one table update per block (static mix x dispatch counts, see
    lib/prof), the step engine per instruction through the same rows — the
    totals are bit-identical between engines. Machines pick up
    [Profile.global ()] at creation, so setting the global before building
    a workload profiles it without further plumbing. *)

val profile : t -> Profile.t option
(** The attached profiler, if any. Runtime handlers use it to attribute
    [Fault_recovered]/[Trap_taken] to the enclosing block
    ([Profile.note_recovered]/[note_trap]). *)

val observed_retired : unit -> int
(** Process-wide total of instructions retired by completed {!run} calls
    (one atomic add per run; domain-safe). The bench harness uses it to
    report simulated MIPS. *)

val reset_observed_retired : unit -> unit

val observed_chain : unit -> int * int
(** Process-wide [(chain hits, block dispatches)] accumulated by completed
    {!run} calls — a chain hit is a dispatch that followed a direct link
    instead of probing the block table. *)

val reset_observed_chain : unit -> unit

val observed_superblock : unit -> int * int
(** Process-wide [(side exits, fused instructions)] accumulated by
    completed {!run} calls — a side exit is a dispatch that left its block
    through a taken inlined branch; fused instructions count instructions
    beyond the first in multi-instruction execution units
    (Σ (unit width − 1) over translated blocks). *)

val reset_observed_superblock : unit -> unit

val add_observed_extra : int -> unit
(** Credit instructions retired outside {!run} (e.g. {!step} loops driven
    by MMView migration) to the process-wide extra counter, so harnesses
    can report throughput over everything the simulator executed. *)

val observed_extra : unit -> int
val reset_observed_extra : unit -> unit

val add_observed_extra_window : dispatches:int -> side_exits:int -> unit
(** Record block dispatches (and their side exits) that happened inside an
    extra-counter window — MMView migration deferral, the bench's
    measurement-phase absorption — so harnesses can subtract them from the
    per-experiment rate denominators and report rates over translated
    workload code only. *)

val observed_extra_window : unit -> int * int
(** Process-wide [(dispatches, side exits)] recorded via
    {!add_observed_extra_window}. *)

val reset_observed_extra_window : unit -> unit

val observed_ic : unit -> int * int * int
(** Process-wide [(hits, misses, megamorphic dispatches)] accumulated by
    completed {!run} calls on machines with inline caches on: a hit followed
    a cached epoch-valid link, a miss fell back to the block table and
    retrained the site, and a megamorphic dispatch went through an
    overflowed site that no longer caches (neither hit nor miss —
    [ic_hit_rate] is hits / (hits + misses)). *)

val reset_observed_ic : unit -> unit

val observed_tiering : unit -> int * int
(** Process-wide [(tier promotions, profile-guided recompiles)] accumulated
    by completed {!run} calls on tiered machines. *)

val reset_observed_tiering : unit -> unit

type ir_stats = {
  irs_blocks : int;  (** translations that produced IR units *)
  irs_units : int;  (** execution units emitted from IR runs *)
  irs_folded : int;  (** ops folded to translation-time constants *)
  irs_dead : int;  (** ops killed by dead-write elimination *)
  irs_pc_elided : int;  (** ops emitted without a pc write *)
  irs_tlb_elided : int;  (** paired accesses sharing one TLB check *)
  irs_cached : int;  (** operand reads served from known constants *)
}

val observed_ir : unit -> ir_stats
(** Process-wide IR translation statistics accumulated by completed {!run}
    calls (same flush discipline as the other observed counters). *)

val reset_observed_ir : unit -> unit

(** {1 Tier / inline-cache introspection}

    Snapshots of the current view's block table and inline-cache sites, for
    the profile report and the CLI ("why is this block still cold"). *)

type block_info = {
  bi_entry : int;
  bi_tier : int;  (** 1 = block, 2 = superblock, 3 = IR-optimized *)
  bi_relaid : bool;  (** layout came from an observed exit profile *)
  bi_hot : int;  (** dispatches since (re)translation *)
  bi_exits : int;  (** side exits observed since (re)translation *)
}

val block_infos : t -> block_info list
(** One entry per cached block in the current view, unordered. *)

type ic_info = {
  ici_site : int;
  ici_state : [ `Empty | `Mono | `Poly | `Mega ];
  ici_targets : int;  (** distinct targets cached (0 once megamorphic) *)
  ici_hits : int;
  ici_misses : int;
}

val ic_infos : t -> ic_info list
(** One entry per inline-cache site in the current view, unordered. *)

(** {1 Persistent translation plans}

    A recording machine keeps, next to every translated block, the replay
    skeleton of the translation that produced it: the positional sequence
    of lower/compile decisions with the post-optimize IR ops. {!export_plan}
    joins those skeletons with the live decode cache, tier state, heat
    table and inline-cache targets into a closure-free, [Marshal]-safe
    value; {!seed_plan} replays one into a fresh machine so a warm start
    re-emits execution units directly — no decoding, no IR lowering, no
    optimizer passes, no interpreted warm-up.

    Soundness contract: a plan carries no byte checksums of its own. The
    caller (the [lib/cache] content-addressed store) must only offer a plan
    to a machine whose guest code bytes digest to the key the plan was
    stored under — the digest is taken {e after} the exporting run, so
    self-modifying programs produce a key no pristine load ever matches and
    their entries become unreachable rather than wrong. *)

type plan
(** Marshalable translation plan (no closures; contains only decoded
    instructions, IR ops, pcs, tiers and counters). *)

val set_record : t -> bool -> unit
(** Enable or disable skeleton recording on this machine. Only translations
    performed while recording is on are exportable. *)

val record : t -> bool

val set_record_default : bool -> unit
(** Recording setting for machines created after this call (the bench
    harness's [--cache] flag and the CLI's [cache prewarm] set it). *)

val export_plan : t -> plan
(** Snapshot the current view's replayable state: valid decode-cache
    entries, every epoch-valid block that has a recorded skeleton (with its
    current tier, layout and heat), interpreter heat of untranslated
    entries, and non-megamorphic inline-cache targets. *)

val seed_plan : t -> plan -> (int, string) result
(** Replay a plan into this machine: prefab the decode cache, rebuild and
    publish every block at its exported tier and heat, seed interpreter
    heat and retrain inline caches. Returns [Ok n] with the number of
    blocks seeded; [Error "flags"] if the plan was exported under a
    different engine configuration (superblocks / IR / tiering / inline
    caches / icache) — the caller should fall back cold. A block whose
    replay diverges (which the content-digest contract makes unexpected) is
    skipped, not published; execution then translates it on demand. *)

val plan_stats : plan -> int * int
(** [(blocks, decode entries)] in a plan — for cache telemetry. *)

val observed_translate : unit -> float * int
(** Process-wide [(seconds, translations)] spent on fresh translations,
    accumulated by completed {!run} calls. Plan replay is deliberately
    excluded — it is cache-preparation work, charged by the caller (the
    bench's [warm_start_s]) — so a warm/cold [translate_s] ratio measures
    exactly the translation work the cache avoided. *)

val reset_observed_translate : unit -> unit
