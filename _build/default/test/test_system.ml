(* Tests for the chimera façade (Chimera_system) and cross-cutting
   system-level behaviours. *)

let base_isa = Ext.rv64gc
let ext_isa = Ext.rv64gcv

let expect_exit label stop expected =
  match stop with
  | Machine.Exited c -> Alcotest.(check int) label expected c
  | Machine.Faulted f -> Alcotest.failf "%s: %s" label (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.failf "%s: fuel" label

let native_exit bin isa =
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa () in
  Loader.init_machine m bin;
  match Machine.run ~fuel:10_000_000 m with
  | Machine.Exited c -> c
  | _ -> Alcotest.fail "native run failed"

let test_deploy_vector_binary () =
  let bin = Programs.vecadd `Ext ~n:16 in
  let expected = native_exit bin ext_isa in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa; ext_isa ] in
  (* extension class runs native *)
  (match Chimera_system.prepared_for dep ext_isa with
  | Chimera_system.Native -> ()
  | Chimera_system.Rewritten _ -> Alcotest.fail "ext class should be native");
  (* base class is rewritten and produces the same result *)
  (match Chimera_system.prepared_for dep base_isa with
  | Chimera_system.Rewritten _ -> ()
  | Chimera_system.Native -> Alcotest.fail "base class should be rewritten");
  let stop, m = Chimera_system.run dep ~isa:base_isa ~fuel:10_000_000 in
  expect_exit "base class result" stop expected;
  Alcotest.(check int) "no vector retired on base" 0 (Machine.vector_retired m);
  let stop, m = Chimera_system.run dep ~isa:ext_isa ~fuel:10_000_000 in
  expect_exit "ext class result" stop expected;
  Alcotest.(check bool) "vector retired on ext" true (Machine.vector_retired m > 0)

let test_deploy_base_binary_upgrades () =
  let bin = Programs.vecadd `Base ~n:16 in
  let expected = native_exit bin base_isa in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa; ext_isa ] in
  (match Chimera_system.prepared_for dep base_isa with
  | Chimera_system.Native -> ()
  | Chimera_system.Rewritten _ -> Alcotest.fail "base class should be native");
  (match Chimera_system.prepared_for dep ext_isa with
  | Chimera_system.Rewritten _ -> ()
  | Chimera_system.Native -> Alcotest.fail "ext class should be upgraded");
  let stop, m = Chimera_system.run dep ~isa:ext_isa ~fuel:10_000_000 in
  expect_exit "upgraded result" stop expected;
  Alcotest.(check bool) "vector retired after upgrade" true (Machine.vector_retired m > 0)

let test_deploy_no_upgrade_flag () =
  let bin = Programs.fibonacci ~rounds:5 () in
  let dep = Chimera_system.deploy ~upgrade:false bin ~cores:[ base_isa; ext_isa ] in
  List.iter
    (fun cls ->
      match Chimera_system.prepared_for dep cls with
      | Chimera_system.Native -> ()
      | Chimera_system.Rewritten _ -> Alcotest.fail "nothing to rewrite")
    (Chimera_system.classes dep)

let test_deploy_unvectorizable_falls_back_native () =
  (* fibonacci has no vectorizable loops: upgrade finds nothing *)
  let bin = Programs.fibonacci ~rounds:5 () in
  let dep = Chimera_system.deploy bin ~cores:[ ext_isa ] in
  match Chimera_system.prepared_for dep ext_isa with
  | Chimera_system.Native -> ()
  | Chimera_system.Rewritten _ -> Alcotest.fail "expected native fallback"

let test_rewrite_stats_exposed () =
  let bin = Programs.vecadd `Ext ~n:16 in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa; ext_isa ] in
  match Chimera_system.rewrite_stats dep with
  | [ (cls, st) ] ->
      Alcotest.(check bool) "base class" true (Ext.equal cls base_isa);
      Alcotest.(check bool) "sites" true (st.Chbp.sites > 0)
  | l -> Alcotest.failf "expected one rewritten class, got %d" (List.length l)

let test_binary_for_roundtrip () =
  let bin = Programs.vecadd `Ext ~n:16 in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa; ext_isa ] in
  let b = Chimera_system.binary_for dep base_isa in
  Alcotest.(check bool) "rewritten has chimera section" true
    (List.exists
       (fun (s : Binfile.section) ->
         String.length s.Binfile.sec_name >= 8
         && String.sub s.Binfile.sec_name 0 8 = ".chimera")
       b.Binfile.sections);
  Alcotest.(check bool) "original unchanged" true
    (Chimera_system.binary_for dep ext_isa == bin)

let test_counters_accumulate () =
  (* the erroneous-jump workload accumulates fault recoveries in the
     deployment counters *)
  let pr =
    { Specgen.sp_name = "sys"; sp_code_kb = 10; sp_ext_pct = 0.02; sp_ind_weight = 3;
      sp_vec_heat = 2; sp_pressure = 0.2; sp_hidden = 0.0; sp_compressed = true;
      sp_rounds = 80; sp_plain = 6; sp_victim_period = 8; sp_seed = 77 }
  in
  let bin = Specgen.build pr in
  let expected = native_exit bin ext_isa in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa; ext_isa ] in
  let stop, _ = Chimera_system.run dep ~isa:base_isa ~fuel:50_000_000 in
  expect_exit "specgen on base" stop expected;
  Alcotest.(check bool) "faults recovered counted" true
    ((Chimera_system.counters dep).Counters.faults_recovered > 0)

let test_lazy_patch_reaches_all_views () =
  (* two views loaded from the same runtime: a lazy extension triggered on
     one must be visible in the other (the patches go to every view) *)
  let a = Asm.create ~name:"lazyviews" () in
  let v1 = Reg.v_of_int 1 in
  Asm.func a "_start";
  Asm.la a Reg.t3 "hptr";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t4; rs1 = Reg.t3; imm = 0 });
  Asm.li a Reg.a3 4;
  Asm.inst a (Inst.Jalr (Reg.ra, Reg.t4, 0));
  Asm.li a Reg.a0 0;
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.ret a;
  Asm.hidden_func a "hidden";
  Asm.la a Reg.a0 "buf";
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.a0));
  Asm.ret a;
  Asm.rlabel a "hptr";
  Asm.rword_label a "hidden";
  Asm.dlabel a "buf";
  for i = 1 to 4 do Asm.dword64 a (Int64.of_int i) done;
  let bin = Asm.assemble a in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let view1 = Chimera_rt.load rt in
  let view2 = Chimera_rt.load rt in
  let m = Machine.create ~mem:view1 ~isa:base_isa () in
  (match Chimera_rt.run rt ~fuel:100_000 m with
  | Machine.Exited 0 -> ()
  | _ -> Alcotest.fail "view-1 run failed");
  Alcotest.(check bool) "lazy extension fired" true
    ((Chimera_rt.counters rt).Counters.lazy_rewrites > 0);
  (* the hidden code was patched in BOTH views: the bytes agree at the
     first lazily rewritten site *)
  let site =
    let k = ref max_int in
    Fault_table.iter (Chbp.trap_table ctx) (fun key _ -> if key < !k then k := key);
    Fault_table.iter (Chbp.fault_table ctx) (fun key _ -> if key < !k then k := key);
    !k
  in
  Alcotest.(check bool) "a rewritten site exists" true (site <> max_int);
  Alcotest.(check int32) "views agree on the patched code"
    (Int32.of_int (Memory.peek_u32 view1 site))
    (Int32.of_int (Memory.peek_u32 view2 site))

let test_deploy_multiple_base_classes () =
  (* each core class gets its own rewritten image; both run correctly *)
  let bin = Programs.vecadd `Ext ~n:12 in
  let expected = native_exit bin ext_isa in
  let gcb = Ext.of_list [ Ext.C; Ext.B ] in
  let dep = Chimera_system.deploy bin ~cores:[ gcb; base_isa; ext_isa ] in
  List.iter
    (fun isa ->
      let stop, _ = Chimera_system.run dep ~isa ~fuel:10_000_000 in
      expect_exit (Ext.name isa) stop expected)
    [ gcb; base_isa; ext_isa ];
  (* the two rewritten classes have distinct prepared binaries *)
  match
    (Chimera_system.prepared_for dep gcb, Chimera_system.prepared_for dep base_isa)
  with
  | Chimera_system.Rewritten a, Chimera_system.Rewritten b ->
      Alcotest.(check bool) "distinct contexts" true (not (a == b))
  | _ -> Alcotest.fail "both non-V classes must be rewritten"

(* --- failure injection ---------------------------------------------------
   Chimera's handlers must recover only their own deterministic faults and
   surface genuine program faults unchanged. *)

let faulty_program kind =
  let a = Asm.create ~name:"faulty" () in
  let v1 = Reg.v_of_int 1 in
  Asm.func a "_start";
  (* a rewritten vector site first, so the fault tables are non-empty *)
  Asm.li a Reg.a3 4;
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.la a Reg.a0 "buf";
  Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.a0));
  (match kind with
  | `Wild_store ->
      (* store to an unmapped page: a genuine SIGSEGV *)
      Asm.inst a (Inst.Lui (Reg.t1, 0x7000));
      Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.x0; rs1 = Reg.t1; imm = 0 })
  | `Stray_ebreak ->
      (* an ebreak that is not one of the rewriter's traps *)
      Asm.inst a Inst.Ebreak);
  Asm.li a Reg.a0 0;
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "buf";
  for i = 1 to 4 do Asm.dword64 a (Int64.of_int i) done;
  Asm.assemble a

let test_wild_store_surfaces () =
  let bin = faulty_program `Wild_store in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa ] in
  match Chimera_system.run dep ~isa:base_isa ~fuel:100_000 with
  | Machine.Faulted (Fault.Segfault { access = Fault.Write; _ }), _ -> ()
  | Machine.Faulted f, _ ->
      Alcotest.failf "wrong fault surfaced: %s" (Fault.to_string f)
  | (Machine.Exited _ | Machine.Fuel_exhausted), _ ->
      Alcotest.fail "a genuine segfault must not be recovered"

let test_stray_ebreak_surfaces () =
  let bin = faulty_program `Stray_ebreak in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa ] in
  match Chimera_system.run dep ~isa:base_isa ~fuel:100_000 with
  | Machine.Faulted (Fault.Illegal_instruction _), _ -> ()
  | Machine.Faulted f, _ ->
      Alcotest.failf "wrong fault surfaced: %s" (Fault.to_string f)
  | (Machine.Exited _ | Machine.Fuel_exhausted), _ ->
      Alcotest.fail "a program ebreak must not be consumed as a trampoline"

let test_corrupted_trampoline_faults_cleanly () =
  (* flip a byte inside a placed SMILE: execution through it must stop with
     a fault, never continue with silently wrong code *)
  let bin = Programs.vecadd `Ext ~n:16 in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let mem = Chimera_rt.load rt in
  let site =
    (* lowest fault-table key = an overwritten address inside a trampoline *)
    let k = ref max_int in
    Fault_table.iter (Chbp.fault_table ctx) (fun key _ -> if key < !k then k := key);
    if !k = max_int then Alcotest.fail "no fault-table entries";
    !k
  in
  Memory.set_perm mem ~addr:(site land lnot 4095) ~len:4096 Memory.perm_rwx;
  Memory.poke_u8 mem site 0xFF;
  Memory.poke_u8 mem (site + 1) 0xFF;
  Memory.set_perm mem ~addr:(site land lnot 4095) ~len:4096 Memory.perm_rx;
  let m = Machine.create ~mem ~isa:base_isa () in
  match Chimera_rt.run rt ~fuel:1_000_000 m with
  | Machine.Exited _ -> ()  (* corruption may sit on a never-executed byte *)
  | Machine.Faulted _ -> ()  (* surfaced cleanly *)
  | Machine.Fuel_exhausted -> Alcotest.fail "corruption must not cause a hang"

let () =
  Alcotest.run "chimera_system"
    [ ("deploy",
       [ Alcotest.test_case "vector binary" `Quick test_deploy_vector_binary;
         Alcotest.test_case "base binary upgrades" `Quick test_deploy_base_binary_upgrades;
         Alcotest.test_case "upgrade disabled" `Quick test_deploy_no_upgrade_flag;
         Alcotest.test_case "unvectorizable fallback" `Quick
           test_deploy_unvectorizable_falls_back_native;
         Alcotest.test_case "rewrite stats" `Quick test_rewrite_stats_exposed;
         Alcotest.test_case "binary_for" `Quick test_binary_for_roundtrip;
         Alcotest.test_case "counters" `Quick test_counters_accumulate ]);
      ("views-and-classes",
       [ Alcotest.test_case "lazy patch reaches all views" `Quick
           test_lazy_patch_reaches_all_views;
         Alcotest.test_case "multiple base classes" `Quick
           test_deploy_multiple_base_classes ]);
      ("failure-injection",
       [ Alcotest.test_case "wild store surfaces" `Quick test_wild_store_surfaces;
         Alcotest.test_case "stray ebreak surfaces" `Quick test_stray_ebreak_surfaces;
         Alcotest.test_case "corrupted trampoline" `Quick
           test_corrupted_trampoline_faults_cleanly ]) ]
