examples/binary_surgery.ml: Asm Binfile Cfg Chbp Chimera_rt Counters Disasm Ext Fault Fault_table Format Inst Int64 Layout List Liveness Machine Reg
