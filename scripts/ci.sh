#!/bin/sh -e
# Tier-1 gate: build, full test suite, and a quick end-to-end benchmark run.
cd "$(dirname "$0")/.."
dune build
dune runtest

# Documentation build (odoc is optional in the minimal toolchain image).
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "ci: odoc not installed, skipping dune build @doc"
fi

# Engine correctness smoke: the tiered superblock engine (the default:
# profile-guided promotion, recompilation and jalr inline caches), the same
# engine untiered (--no-tier --no-ic), with only the caches off (--no-ic),
# with the IR disabled (--no-ir), the straight-line block engine and the
# single-step reference must retire bit-identical instruction counts across
# every rewriting experiment (the fault-determinism contract, end to end).
# micro includes the branch-dense workload (interp-branchy), the worst case
# for side-exit dispatch, and the indirect-call workload that stresses the
# inline caches.
json_super=$(mktemp /tmp/chimera-super-XXXXXX.json)
json_untiered=$(mktemp /tmp/chimera-untiered-XXXXXX.json)
json_noic=$(mktemp /tmp/chimera-noic-XXXXXX.json)
json_noir=$(mktemp /tmp/chimera-noir-XXXXXX.json)
json_block=$(mktemp /tmp/chimera-block-XXXXXX.json)
json_step=$(mktemp /tmp/chimera-step-XXXXXX.json)
json_full=$(mktemp /tmp/chimera-full-XXXXXX.json)
trace=$(mktemp /tmp/chimera-trace-XXXXXX.jsonl)
profdir=$(mktemp -d /tmp/chimera-prof-XXXXXX)
trap 'rm -rf "$json_super" "$json_untiered" "$json_noic" "$json_noir" "$json_block" "$json_step" "$json_full" "$trace" "$profdir"' EXIT
engine_exps="table1 fig13 table2 table3 ablation micro"
dune exec bench/main.exe -- $engine_exps -q --json "$json_super"
dune exec bench/main.exe -- $engine_exps -q --no-tier --no-ic --json "$json_untiered"
dune exec bench/main.exe -- $engine_exps -q --no-ic --json "$json_noic"
dune exec bench/main.exe -- $engine_exps -q --no-ir --json "$json_noir"
dune exec bench/main.exe -- $engine_exps -q --engine block --json "$json_block"
dune exec bench/main.exe -- $engine_exps -q --engine step --json "$json_step"
retired_super=$(grep -o '"retired": [0-9]*' "$json_super")
retired_untiered=$(grep -o '"retired": [0-9]*' "$json_untiered")
retired_noic=$(grep -o '"retired": [0-9]*' "$json_noic")
retired_noir=$(grep -o '"retired": [0-9]*' "$json_noir")
retired_block=$(grep -o '"retired": [0-9]*' "$json_block")
retired_step=$(grep -o '"retired": [0-9]*' "$json_step")
test -n "$retired_super"
if [ "$retired_super" != "$retired_step" ] || [ "$retired_block" != "$retired_step" ] \
  || [ "$retired_noir" != "$retired_step" ] || [ "$retired_untiered" != "$retired_step" ] \
  || [ "$retired_noic" != "$retired_step" ]; then
  echo "ci: engine mismatch over [$engine_exps]:" >&2
  echo "  tiered   [$retired_super]" >&2
  echo "  untiered [$retired_untiered]" >&2
  echo "  no-ic    [$retired_noic]" >&2
  echo "  no-ir    [$retired_noir]" >&2
  echo "  block    [$retired_block]" >&2
  echo "  step     [$retired_step]" >&2
  exit 1
fi
echo "ci: tiered/untiered/no-ic/no-ir/block/step engines agree over [$engine_exps]"

# Tiering quality gates on the micro deterministic tail: with profile-guided
# recompilation and inline caches on, chained dispatch must dominate
# (chain_hit_rate >= 0.80 — the untiered superblock engine sits near 0.43 on
# the branch-dense workload) and the inline caches must resolve nearly every
# indirect terminator (ic_hit_rate >= 0.90).
micro_line=$(grep '"name": "micro"' "$json_super")
chain=$(echo "$micro_line" | grep -o '"chain_hit_rate": [0-9.]*' | grep -o '[0-9.]*$')
ichit=$(echo "$micro_line" | grep -o '"ic_hit_rate": [0-9.]*' | grep -o '[0-9.]*$')
test -n "$chain" && test -n "$ichit"
if ! awk "BEGIN { exit !($chain >= 0.80 && $ichit >= 0.90) }"; then
  echo "ci: tiering gates failed: chain_hit_rate=$chain (need >= 0.80)," >&2
  echo "    ic_hit_rate=$ichit (need >= 0.90)" >&2
  exit 1
fi
echo "ci: tiering gates passed (chain_hit_rate=$chain, ic_hit_rate=$ichit)"

# Observability smoke test: trace a quick table2 run and let the driver's
# validator cross-check the per-site counts against the event stream
# (non-zero exit on any mismatch; schema in OBSERVABILITY.md).
dune exec bench/main.exe -- table2 -q --trace "$trace"
test -s "$trace"
head -1 "$trace" | grep -q '"ev":"meta"'

# Profiler smoke: the guest profiler's retired total must equal the
# machine's own counter bit-for-bit, on all three engines. The driver
# already hard-checks this (non-zero exit on mismatch); re-assert it here
# from the JSON, and check the report + folded-stack outputs exist.
for eng in super block step; do
  dune exec bench/main.exe -- fig13 -q --engine "$eng" \
    --profile "$profdir" --json "$json_block"
  retired=$(grep -o '"retired": [0-9]*' "$json_block" | grep -o '[0-9]*')
  prof=$(grep -o '"prof_retired": [0-9]*' "$json_block" | grep -o '[0-9]*')
  test -n "$retired" && test -n "$prof"
  if [ "$retired" != "$prof" ]; then
    echo "ci: $eng engine: profiler retired $prof != machine retired $retired" >&2
    exit 1
  fi
  echo "ci: $eng engine profile exact ($prof retired)"
done
test -s "$profdir/fig13.txt"
test -s "$profdir/fig13.folded"

# Translation-cache smoke: two quick fig13 runs against one cache
# directory. Each invocation already runs cold-then-warm internally and
# hard-fails on any retired divergence between its passes; the second
# invocation additionally starts against a fully-populated directory, so
# its warm pass must hit nearly everything (>= 0.95) and its translate_s
# (translation the cache failed to serve) must sit under the cold pass's.
cachedir=$(mktemp -d /tmp/chimera-cache-XXXXXX)
json_cache=$(mktemp /tmp/chimera-cache-XXXXXX.json)
trap 'rm -rf "$json_super" "$json_untiered" "$json_noic" "$json_noir" "$json_block" "$json_step" "$json_full" "$trace" "$profdir" "$cachedir" "$json_cache"' EXIT
# First invocation: genuinely cold then warm inside one process — the
# warm pass's translate_s must beat the cold pass's.
dune exec bench/main.exe -- fig13 -q --cache "$cachedir" --json "$json_cache"
retired1=$(grep -o '"retired": [0-9]*' "$json_cache")
warm_translate=$(grep -o '"translate_s": [0-9.]*' "$json_cache" | grep -o '[0-9.]*$')
cold_translate=$(grep -o '"cold_translate_s": [0-9.]*' "$json_cache" | grep -o '[0-9.]*$')
test -n "$warm_translate" && test -n "$cold_translate"
if ! awk "BEGIN { exit !($warm_translate < $cold_translate) }"; then
  echo "ci: cache gate failed: warm translate_s=$warm_translate" >&2
  echo "    (need < cold $cold_translate)" >&2
  exit 1
fi
# Second invocation: a fresh process against the populated directory — its
# warm pass must hit nearly everything, proving the entries persist and
# reload across process restarts; retired must match the first invocation.
dune exec bench/main.exe -- fig13 -q --cache "$cachedir" --json "$json_cache"
retired2=$(grep -o '"retired": [0-9]*' "$json_cache")
hit=$(grep -o '"cache_hit_rate": [0-9.]*' "$json_cache" | grep -o '[0-9.]*$')
test -n "$hit"
if [ "$retired1" != "$retired2" ]; then
  echo "ci: cache changed execution: [$retired1] != [$retired2]" >&2
  exit 1
fi
if ! awk "BEGIN { exit !($hit >= 0.95) }"; then
  echo "ci: cache gate failed: cache_hit_rate=$hit (need >= 0.95)" >&2
  exit 1
fi
echo "ci: cache gates passed (hit_rate=$hit, translate_s $cold_translate -> $warm_translate)"

# Metrics smoke: a quick fig13 with the always-on metrics registry
# exporting at exit. The driver already hard-checks the snapshot totals
# against the machine counters (non-zero exit on divergence); re-assert
# from the artifacts that the exposition is well-formed Prometheus text,
# that the Prometheus and JSON views agree on retired, and that the
# health watchdog found every rule healthy.
metrics_prom=$(mktemp /tmp/chimera-metrics-XXXXXX.prom)
json_metrics=$(mktemp /tmp/chimera-metrics-XXXXXX.json)
trap 'rm -rf "$json_super" "$json_untiered" "$json_noic" "$json_noir" "$json_block" "$json_step" "$json_full" "$trace" "$profdir" "$cachedir" "$json_cache" "$metrics_prom" "$json_metrics"' EXIT
dune exec bench/main.exe -- fig13 -q --json "$json_metrics" --metrics "$metrics_prom"
grep -q '^# TYPE chimera_retired_total counter$' "$metrics_prom"
grep -q '^# TYPE chimera_translate_ns histogram$' "$metrics_prom"
grep -q 'le="+Inf"' "$metrics_prom"
retired_prom=$(grep '^chimera_retired_total ' "$metrics_prom" | grep -o '[0-9]*$')
retired_json=$(grep -o '"retired": [0-9]*' "$json_metrics" | grep -o '[0-9]*')
test -n "$retired_prom" && test -n "$retired_json"
if [ "$retired_prom" != "$retired_json" ]; then
  echo "ci: metrics exposition disagrees with json: $retired_prom != $retired_json" >&2
  exit 1
fi
if ! grep -q '^chimera_healthy 1$' "$metrics_prom"; then
  echo "ci: watchdog reported a degraded run:" >&2
  grep '^chimera_health' "$metrics_prom" >&2
  exit 1
fi
echo "ci: metrics smoke passed (retired=$retired_prom, watchdog healthy)"

# Serve smoke: a short seeded open-loop run of the multi-tenant server
# over a worker pool and a shared translation cache. The driver hard-fails
# on any pooled request retiring differently from its solo oracle run
# (non-zero exit), so a clean exit IS the tenant-isolation check; assert
# from the artifacts that the serving fields landed in --json, that the
# admission counters balance, and that the health watchdog — including
# the queue_saturation rule, active at >= 64 admitted — saw the queue
# fully drained.
json_serve=$(mktemp /tmp/chimera-serve-XXXXXX.json)
serve_prom=$(mktemp /tmp/chimera-serve-XXXXXX.prom)
trap 'rm -rf "$json_super" "$json_untiered" "$json_noic" "$json_noir" "$json_block" "$json_step" "$json_full" "$trace" "$profdir" "$cachedir" "$json_cache" "$metrics_prom" "$json_metrics" "$json_serve" "$serve_prom"' EXIT
dune exec bench/main.exe -- serve -q -j 2 --json "$json_serve" --metrics "$serve_prom"
grep -q '"serve_p99_ms":' "$json_serve"
grep -q '"serve_throughput":' "$json_serve"
admitted=$(grep '^chimera_serve_admitted_total ' "$serve_prom" | grep -o '[0-9]*$')
completed=$(grep '^chimera_serve_done_total ' "$serve_prom" | grep -o '[0-9]*$')
test -n "$admitted" && test -n "$completed"
if [ "$admitted" != "$completed" ]; then
  echo "ci: serve lost requests: admitted $admitted, completed $completed" >&2
  exit 1
fi
grep -q '^chimera_health{rule="queue_saturation"} 1$' "$serve_prom"
if ! grep -q '^chimera_healthy 1$' "$serve_prom"; then
  echo "ci: serve watchdog reported a degraded run:" >&2
  grep '^chimera_health' "$serve_prom" >&2
  exit 1
fi
# The chimera CLI front end: replicas of one tenant through the shared
# cache must retire identically (the second starts plan-warm), and the
# watchdog must stay healthy through admission and drain.
serve_out=$(dune exec bin/chimera_cli.exe -- serve spec:omnetpp_r -j 2 \
  --repeat 2 --cache "$cachedir" --metrics "$serve_prom")
echo "$serve_out" | grep -q "watchdog healthy"
replicas=$(echo "$serve_out" | grep -c 'retired=')
retired_set=$(echo "$serve_out" | grep -o 'retired=[0-9]*' | sort -u | wc -l)
if [ "$replicas" != "2" ] || [ "$retired_set" != "1" ]; then
  echo "ci: serve replicas diverged:" >&2
  echo "$serve_out" >&2
  exit 1
fi
echo "ci: serve smoke passed ($admitted requests pooled, replicas identical, watchdog healthy)"

# Perf-regression gate: diff a fresh full fig13 against the committed
# reference run — with metrics enabled, so the gate also proves the
# always-on registry costs no measurable wall time. retired must match
# exactly; wall time gets a generous tolerance (shared CI runners are
# noisy), hit rates -0.02 absolute, events_dropped at most baseline's.
# BENCH_PR9's fig13 row predates the serving fields, so the gate also
# proves old baselines parse (absent option fields are skipped).
dune exec bench/main.exe -- fig13 --json "$json_full" \
  --metrics "$metrics_prom" --compare BENCH_PR9.json --wall-tol 2.0
echo "ci: regression gate passed against BENCH_PR9.json (metrics on)"
