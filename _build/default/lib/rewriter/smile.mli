(** The SMILE trampoline: Secure Multiple-Instruction Long-distancE
    trampoline (paper §4.2, Figs. 2, 4, 7).

    A SMILE trampoline is [auipc gp, imm20; jalr gp, jalr_imm(gp)] written
    over 8 bytes of original code. Its two guarantees:

    - entering at the second word (P1) executes [jalr] with the *unmodified*
      gp, which the ABI pins to the non-executable data segment → a
      deterministic segfault whose fault site is recoverable from the link
      value [jalr] wrote into gp;
    - in binaries with the compressed extension, entering at either word's
      midpoint (P2/P3) parses a halfword that is a reserved encoding → a
      deterministic illegal-instruction fault at that pc.

    The second guarantee constrains the encodings: word bits 16–20 of the
    [auipc] must be [11111] (its upper halfword then starts the reserved
    ≥48-bit prefix), and the [jalr] immediate is the fixed constant
    {!jalr_imm} (its upper halfword then is a reserved C1 compressed
    encoding). The [auipc] constraint restricts reachable targets to 16-page
    windows every 2 MiB; {!next_target} solves the congruence. *)

val jalr_imm : int
(** The fixed, negative 12-bit immediate of the SMILE [jalr]. *)

val jalr_inst : Inst.t
(** [jalr gp, jalr_imm(gp)]. *)

val auipc_inst : imm20:int -> Inst.t
(** [auipc gp, imm20]. *)

val imm20_compressed_safe : int -> bool
(** Whether an [auipc] immediate puts word bits 16–20 at [11111]. *)

val target_of : pc:int -> imm20:int -> int
(** The address a SMILE trampoline at [pc] with the given immediate jumps
    to: [pc + (imm20 << 12) + jalr_imm]. *)

val solve_imm20 : pc:int -> target:int -> int option
(** The immediate reaching [target] exactly, if the congruence admits it
    (4096-divisibility and 20-bit range; no compressed-safety demanded). *)

val next_target : pc:int -> min:int -> compressed:bool -> int
(** The smallest admissible target address ≥ [min] for a trampoline at
    [pc]. With [compressed:true] the result additionally satisfies the
    compressed-safe [auipc] constraint.
    @raise Invalid_argument if no 20-bit immediate reaches that far. *)

val write : bytes -> off:int -> pc:int -> target:int -> compressed:bool -> unit
(** Write the 8-byte trampoline (checking admissibility of [target]).
    @raise Invalid_argument if [target] is not admissible for [pc]. *)

val size : int
(** 8 bytes. *)
