lib/isa/decode.ml: Encode Inst List Printf Reg
