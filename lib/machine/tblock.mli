(** Translation blocks: straight-line instruction runs pre-decoded and
    compiled into closure arrays, with cheap page-granular invalidation.

    A block is a maximal run of non-control-flow instructions starting at an
    entry pc, ending at the first branch/jump/event instruction (kept,
    decoded, as the block's terminator), at a page boundary, or at an
    instruction the machine cannot put on the fast path. Blocks are
    validated against a {!Gen} generation table: patching code bumps the
    generations of the covered pages, and any block (or cached decode)
    overlapping a bumped page fails its stamp check and is re-translated —
    invalidation costs O(pages patched), never a cache scan.

    The module is parameterized over the machine state ['m]; the machine
    supplies decoding and per-instruction compilation, this module owns
    block layout, termination policy, and invalidation bookkeeping. *)

module Gen : sig
  type t
  (** Page-granular generation counters (monotonic). *)

  val create : unit -> t

  val bump : t -> addr:int -> len:int -> unit
  (** Increment the generation of every page overlapping [addr, addr+len). *)

  val stamp : t -> lo:int -> hi:int -> int
  (** Sum of the generations of the pages covering [lo, hi] (inclusive).
      Generations only grow, so equal stamps over the same range mean no
      covered page changed. *)
end

type 'm compiled =
  | Op of ('m -> unit)
      (** Straight-line: executes the instruction, advances pc, retires. *)
  | Term  (** Control-flow or event instruction: ends the block, kept decoded. *)
  | Stop  (** Not executable on the fast path (e.g. unsupported extension). *)

type 'm t = private {
  entry : int;
  lo : int;
  hi : int;
  isa : Ext.t;
  stamp : int;
  ops : ('m -> unit) array;
  pcs : int array;
  sizes : int array;
  term : (Inst.t * int) option;
}

val translate :
  ?max_insts:int ->
  gens:Gen.t ->
  isa:Ext.t ->
  decode:(int -> (Inst.t * int) option) ->
  compile:(pc:int -> Inst.t -> int -> 'm compiled) ->
  int ->
  'm t
(** [translate ~gens ~isa ~decode ~compile entry] decodes the straight-line
    run at [entry]. [decode pc] returns [None] when the bytes at [pc] cannot
    be decoded or fetched (the block ends there; the slow path will raise
    the precise fault when execution reaches it). *)

val valid : Gen.t -> isa:Ext.t -> 'm t -> bool
(** Stamp and capability check; a stale or cross-ISA block must be
    re-translated. *)

val body_length : 'm t -> int

val degenerate : 'm t -> bool
(** No body and no terminator: the entry instruction must be executed via
    the slow path (illegal, unsupported, or unmapped). *)
