examples/upgrade_vectorizer.mli:
