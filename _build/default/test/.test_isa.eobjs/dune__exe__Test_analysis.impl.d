test/test_analysis.ml: Alcotest Asm Binfile Cfg Disasm Format Inst Layout List Liveness Reg Regmask String
