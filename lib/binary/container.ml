(* Versioned, checksummed Marshal container shared by the SELF binary
   format and the persistent translation cache.

   Layout (all integers big-endian):
     magic      8 bytes   caller-chosen, format + generation (e.g. "SELF0002")
     version    4 bytes   caller-chosen payload schema version
     length     8 bytes   payload byte count
     payload    N bytes   Marshal encoding of the value
     digest    16 bytes   MD5 over magic .. payload

   The reader never raises on bad input: every deviation — short file, wrong
   magic, other version, checksum mismatch, unmarshalable payload — comes
   back as [Error reason] with a stable one-word reason, so callers can fall
   back (cache loads go cold) or fail with a clear message (binfile). *)

let header_len = 8 + 4 + 8
let digest_len = 16

let check_magic magic =
  if String.length magic <> 8 then
    invalid_arg "Container: magic must be exactly 8 bytes"

let write ~path ~magic ~version v =
  check_magic magic;
  let payload = Marshal.to_bytes v [] in
  let head = Bytes.create header_len in
  Bytes.blit_string magic 0 head 0 8;
  Bytes.set_int32_be head 8 (Int32.of_int version);
  Bytes.set_int64_be head 12 (Int64.of_int (Bytes.length payload));
  let digest =
    let ctx = Bytes.cat head payload in
    Digest.bytes ctx
  in
  (* write to a temp file in the same directory and rename into place, so a
     crash mid-write never leaves a half-written container under [path] *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_bytes oc head;
     output_bytes oc payload;
     output_string oc digest;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read_all path =
  match open_in_bin path with
  | exception Sys_error _ -> Error "missing"
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let b = Bytes.create len in
          really_input ic b 0 len;
          Ok b)

let read ~path ~magic ~version =
  check_magic magic;
  match read_all path with
  | Error _ as e -> e
  | Ok b ->
      let len = Bytes.length b in
      if len < header_len + digest_len then Error "truncated"
      else if Bytes.sub_string b 0 8 <> magic then Error "magic"
      else if Int32.to_int (Bytes.get_int32_be b 8) <> version then
        Error "version"
      else
        let plen = Int64.to_int (Bytes.get_int64_be b 12) in
        if plen < 0 || len <> header_len + plen + digest_len then
          Error "truncated"
        else
          let stored =
            Bytes.sub_string b (header_len + plen) digest_len
          in
          let computed = Digest.subbytes b 0 (header_len + plen) in
          if not (String.equal stored computed) then Error "checksum"
          else begin
            match Marshal.from_bytes b header_len with
            | v -> Ok v
            | exception _ -> Error "decode"
          end

let peek_version ~path ~magic =
  check_magic magic;
  match read_all path with
  | Error _ -> None
  | Ok b ->
      if Bytes.length b >= 12 && Bytes.sub_string b 0 8 = magic then
        Some (Int32.to_int (Bytes.get_int32_be b 8))
      else None
