type section = {
  sec_name : string;
  sec_addr : int;
  sec_data : bytes;
  sec_perm : Memory.perm;
}

type symbol = { sym_name : string; sym_addr : int; sym_size : int }

type t = {
  name : string;
  entry : int;
  gp_value : int;
  isa : Ext.t;
  sections : section list;
  symbols : symbol list;
}

let section_opt t name = List.find_opt (fun s -> s.sec_name = name) t.sections

let section t name =
  match section_opt t name with Some s -> s | None -> raise Not_found

let text t = section t ".text"

let code_sections t =
  t.sections
  |> List.filter (fun s -> s.sec_perm.Memory.x)
  |> List.sort (fun a b -> compare a.sec_addr b.sec_addr)

let code_size t =
  List.fold_left (fun acc s -> acc + Bytes.length s.sec_data) 0 (code_sections t)

let symbol t name =
  match List.find_opt (fun s -> s.sym_name = name) t.symbols with
  | Some s -> s
  | None -> raise Not_found

let in_section s addr = addr >= s.sec_addr && addr < s.sec_addr + Bytes.length s.sec_data

let add_section t s =
  if section_opt t s.sec_name <> None then
    invalid_arg (Printf.sprintf "Binfile.add_section: %s exists" s.sec_name);
  { t with sections = t.sections @ [ s ] }

let replace_section t s =
  if section_opt t s.sec_name = None then raise Not_found;
  { t with
    sections =
      List.map (fun s' -> if s'.sec_name = s.sec_name then s else s') t.sections }

let with_name t name = { t with name }

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>%s (%s), entry 0x%x, gp 0x%x@," t.name (Ext.name t.isa)
    t.entry t.gp_value;
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-16s 0x%08x %8d bytes %a@," s.sec_name s.sec_addr
        (Bytes.length s.sec_data) Memory.pp_perm s.sec_perm)
    t.sections;
  Format.fprintf fmt "  %d symbols@]" (List.length t.symbols)

(* SELF0002: the bare magic + raw Marshal stream of SELF0001 gained the
   shared Container framing (payload length + MD5 trailer), so a truncated
   or bit-flipped file is rejected with a named reason instead of whatever
   Marshal.from_channel happens to raise. *)
let magic = "SELF0002"
let version = 1

let save path t = Container.write ~path ~magic ~version t

let load_file path =
  match (Container.read ~path ~magic ~version : (t, string) result) with
  | Ok t -> t
  | Error "magic" ->
      failwith
        (Printf.sprintf
           "%s: not a %s binary (bad magic — a pre-%s file must be \
            regenerated)"
           path magic magic)
  | Error "version" ->
      failwith
        (Printf.sprintf
           "%s: SELF payload version %s, this build reads version %d — \
            regenerate the binary"
           path
           (match Container.peek_version ~path ~magic with
           | Some v -> string_of_int v
           | None -> "?")
           version)
  | Error reason ->
      failwith (Printf.sprintf "%s: corrupt SELF binary (%s)" path reason)
