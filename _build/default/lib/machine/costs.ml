type t = {
  vector_op : int;
  trap : int;
  fault_recovery : int;
  check : int;
  check_fast : int;
  migrate : int;
  lazy_rewrite : int;
  icache_miss : int;
}

let default =
  { vector_op = 2;
    trap = 600;
    fault_recovery = 1400;
    check = 40;
    check_fast = 8;
    migrate = 4000;
    lazy_rewrite = 2500;
    icache_miss = 30 }

let pp fmt c =
  Format.fprintf fmt
    "{vector_op=%d; trap=%d; fault_recovery=%d; check=%d/%d; migrate=%d; lazy_rewrite=%d; \
     icache_miss=%d}"
    c.vector_op c.trap c.fault_recovery c.check c.check_fast c.migrate c.lazy_rewrite
    c.icache_miss
