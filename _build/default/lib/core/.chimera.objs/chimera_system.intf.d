lib/core/chimera_system.mli: Binfile Chbp Chimera_rt Costs Counters Ext Machine
