lib/runtime/chimera_rt.ml: Binfile Bytes Chbp Costs Counters Decode Ext Fault Fault_table Inst Int64 List Loader Machine Memory Reg
