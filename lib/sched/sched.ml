type core_class = Base | Extension

let core_class_name = function Base -> "base" | Extension -> "extension"

type step = Done of { cycles : int; accelerated : bool } | Migrate of { cycles : int }

type task = { t_id : int; t_prefer_ext : bool; t_run : core_class -> step }

type config = {
  base_cores : int;
  ext_cores : int;
  steal : bool;
  migrate_cost : int;
  steal_ext_tasks : bool;
}

let default_config =
  { base_cores = 4;
    ext_cores = 4;
    steal = true;
    migrate_cost = Costs.default.Costs.migrate;
    steal_ext_tasks = true }

type result = {
  latency : int;
  cpu_time : int;
  tasks_total : int;
  tasks_accelerated : int;
  migrations : int;
  per_core_busy : (core_class * int) array;
}

type item = { task : task; mutable forced_ext : bool }

type core = { id : int; cls : core_class; mutable clock : int; mutable busy : int }

(* FIFO queue with predicate-driven extraction. *)
module Q = struct
  type 'a t = { mutable front : 'a list; mutable back : 'a list }

  let create () = { front = []; back = [] }
  let push q x = q.back <- x :: q.back

  let normalize q =
    if q.front = [] then begin
      q.front <- List.rev q.back;
      q.back <- []
    end

  let is_empty q =
    normalize q;
    q.front = []

  let take_first q pred =
    normalize q;
    let rec split acc = function
      | [] -> None
      | x :: rest ->
          if pred x then begin
            q.front <- List.rev_append acc rest;
            Some x
          end
          else split (x :: acc) rest
    in
    match split [] q.front with
    | Some x -> Some x
    | None ->
        (* the element may be in [back] *)
        normalize q;
        if q.back = [] then None
        else begin
          q.front <- q.front @ List.rev q.back;
          q.back <- [];
          split [] q.front
        end

  let take q = take_first q (fun _ -> true)
end

let m_steals =
  Metrics.counter ~help:"Base-queue tasks stolen by extension cores"
    "chimera_sched_steals_total"

let m_migrates =
  Metrics.counter ~help:"Tasks migrated to extension cores mid-run"
    "chimera_sched_migrates_total"

let m_queue_depth =
  Metrics.gauge ~help:"Tasks currently queued (both classes)"
    "chimera_sched_queue_depth"

let run config tasks =
  let base_q : item Q.t = Q.create () and ext_q : item Q.t = Q.create () in
  List.iter
    (fun t ->
      let item = { task = t; forced_ext = false } in
      if !Metrics.enabled then Metrics.gauge_add m_queue_depth 1;
      if t.t_prefer_ext then Q.push ext_q item else Q.push base_q item)
    tasks;
  let cores =
    Array.init
      (config.base_cores + config.ext_cores)
      (fun i ->
        { id = i;
          cls = (if i < config.base_cores then Base else Extension);
          clock = 0;
          busy = 0 })
  in
  let accelerated = ref 0 and migrations = ref 0 and completed = ref 0 in
  (* what work could the given core take right now? *)
  let stolen core it =
    if !Metrics.enabled then Metrics.incr m_steals;
    if !Obs.enabled then
      Obs.emit
        (Obs.Sched_steal
           { core = core.id;
             cls = core_class_name core.cls;
             task = it.task.t_id });
    Some it
  in
  let take_for core =
    match core.cls with
    | Extension -> (
        match Q.take ext_q with
        | Some it -> Some it
        | None ->
            if config.steal then
              match Q.take base_q with
              | Some it -> stolen core it
              | None -> None
            else None)
    | Base -> (
        match Q.take base_q with
        | Some it -> Some it
        | None ->
            if config.steal && config.steal_ext_tasks then
              match Q.take_first ext_q (fun it -> not it.forced_ext) with
              | Some it -> stolen core it
              | None -> None
            else None)
  in
  let could_take core =
    match core.cls with
    | Extension -> (not (Q.is_empty ext_q)) || (config.steal && not (Q.is_empty base_q))
    | Base ->
        (not (Q.is_empty base_q))
        || config.steal && config.steal_ext_tasks
           &&
           (* at least one non-forced item in the extension queue *)
           (match Q.take_first ext_q (fun it -> not it.forced_ext) with
           | Some it ->
               (* put it back at the front *)
               ext_q.Q.front <- it :: ext_q.Q.front;
               true
           | None -> false)
  in
  let continue_ = ref true in
  while !continue_ do
    if Q.is_empty base_q && Q.is_empty ext_q then continue_ := false
    else begin
      (* earliest-clock core that can take something; on ties prefer a core
         whose own pool has work, so stealing happens only when needed *)
      let own_work c =
        match c.cls with
        | Base -> not (Q.is_empty base_q)
        | Extension -> not (Q.is_empty ext_q)
      in
      let better c c' =
        c.clock < c'.clock || (c.clock = c'.clock && own_work c && not (own_work c'))
      in
      let chosen = ref None in
      Array.iter
        (fun c ->
          if could_take c then
            match !chosen with
            | None -> chosen := Some c
            | Some c' -> if better c c' then chosen := Some c)
        cores;
      match !chosen with
      | None -> continue_ := false  (* only forced work remains but no ext core *)
      | Some core -> (
          match take_for core with
          | None -> continue_ := false
          | Some item -> (
              if !Metrics.enabled then Metrics.gauge_add m_queue_depth (-1);
              match item.task.t_run core.cls with
              | Done { cycles; accelerated = acc } ->
                  core.clock <- core.clock + cycles;
                  core.busy <- core.busy + cycles;
                  incr completed;
                  if acc then incr accelerated
              | Migrate { cycles } ->
                  core.clock <- core.clock + cycles + config.migrate_cost;
                  core.busy <- core.busy + cycles + config.migrate_cost;
                  incr migrations;
                  if !Metrics.enabled then begin
                    Metrics.incr m_migrates;
                    Metrics.gauge_add m_queue_depth 1
                  end;
                  if !Obs.enabled then
                    Obs.emit
                      (Obs.Sched_migrate { task = item.task.t_id; cycles });
                  item.forced_ext <- true;
                  Q.push ext_q item))
    end
  done;
  let latency = Array.fold_left (fun acc c -> max acc c.clock) 0 cores in
  let cpu_time = Array.fold_left (fun acc c -> acc + c.busy) 0 cores in
  { latency;
    cpu_time;
    tasks_total = !completed;
    tasks_accelerated = !accelerated;
    migrations = !migrations;
    per_core_busy = Array.map (fun c -> (c.cls, c.busy)) cores }

let pp_result fmt r =
  Format.fprintf fmt
    "latency %d, cpu %d, tasks %d (%d accelerated), migrations %d" r.latency
    r.cpu_time r.tasks_total r.tasks_accelerated r.migrations

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

(* The executor twin of [run]: the same two-class/steal shape, but over
   real [Domain]s executing real work instead of simulated cycles. It
   shares the simulator's telemetry — [chimera_sched_queue_depth] moves
   +1 on submit and -1 on dequeue, cross-class pulls count into
   [chimera_sched_steals_total] — so the watchdog's queue-saturation rule
   reads one gauge regardless of which scheduler produced the load.

   Obs events are deliberately absent here: the ring sink is
   single-domain, and jobs complete on worker domains. Callers that want
   per-job events (lib/serve) emit them from the submitting domain. *)
module Pool = struct
  type job = { j_prefer_ext : bool; j_run : core_class -> unit }

  type t = {
    mu : Mutex.t;
    nonempty : Condition.t;  (* new job, or shutdown *)
    idle : Condition.t;  (* pending hit zero *)
    base_q : job Queue.t;
    ext_q : job Queue.t;
    steal : bool;
    base_workers : int;
    ext_workers : int;
    mutable queued : int;
    mutable peak : int;
    mutable pending : int;  (* queued + running *)
    mutable stop : bool;
    mutable workers : unit Domain.t list;
  }

  (* Own queue first; the other class's queue only when stealing is on.
     Unlike the simulator there is no [forced_ext]: pool jobs carry their
     whole configuration, so any worker class can run any job and the
     class is a placement preference, not a capability. *)
  let take_locked t cls =
    let own, other =
      match cls with
      | Base -> (t.base_q, t.ext_q)
      | Extension -> (t.ext_q, t.base_q)
    in
    match Queue.take_opt own with
    | Some j -> Some (j, false)
    | None -> (
        if not t.steal then None
        else
          match Queue.take_opt other with
          | Some j -> Some (j, true)
          | None -> None)

  let worker t cls =
    let running = ref true in
    while !running do
      Mutex.lock t.mu;
      let rec pick () =
        match take_locked t cls with
        | Some _ as r -> r
        | None ->
            if t.stop then None
            else begin
              Condition.wait t.nonempty t.mu;
              pick ()
            end
      in
      match pick () with
      | None ->
          Mutex.unlock t.mu;
          running := false
      | Some (j, stolen) ->
          t.queued <- t.queued - 1;
          Mutex.unlock t.mu;
          if !Metrics.enabled then begin
            Metrics.gauge_add m_queue_depth (-1);
            if stolen then Metrics.incr m_steals
          end;
          (* A raising job must not kill the worker or wedge [drain];
             callers that care about failures capture them in the closure
             (lib/serve folds them into the outcome). *)
          (try j.j_run cls with _ -> ());
          Mutex.lock t.mu;
          t.pending <- t.pending - 1;
          if t.pending = 0 then Condition.broadcast t.idle;
          Mutex.unlock t.mu
    done

  let create ?(steal = true) ~base ~ext () =
    if base < 0 || ext < 0 || base + ext = 0 then
      invalid_arg "Sched.Pool.create: need at least one worker";
    let t =
      {
        mu = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        base_q = Queue.create ();
        ext_q = Queue.create ();
        steal;
        base_workers = base;
        ext_workers = ext;
        queued = 0;
        peak = 0;
        pending = 0;
        stop = false;
        workers = [];
      }
    in
    let spawn cls = Domain.spawn (fun () -> worker t cls) in
    t.workers <-
      List.init base (fun _ -> spawn Base)
      @ List.init ext (fun _ -> spawn Extension);
    t

  let submit t ~prefer_ext f =
    Mutex.lock t.mu;
    if t.stop then begin
      Mutex.unlock t.mu;
      invalid_arg "Sched.Pool.submit: pool is shut down"
    end;
    let j = { j_prefer_ext = prefer_ext; j_run = f } in
    (* A class with no workers only drains through steals; route around it
       entirely when stealing is off so the job cannot strand. *)
    let q =
      if j.j_prefer_ext then if t.ext_workers > 0 || t.steal then t.ext_q else t.base_q
      else if t.base_workers > 0 || t.steal then t.base_q
      else t.ext_q
    in
    Queue.push j q;
    t.queued <- t.queued + 1;
    if t.queued > t.peak then t.peak <- t.queued;
    t.pending <- t.pending + 1;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    if !Metrics.enabled then Metrics.gauge_add m_queue_depth 1

  let queue_depth t =
    Mutex.lock t.mu;
    let d = t.queued in
    Mutex.unlock t.mu;
    d

  let peak_depth t =
    Mutex.lock t.mu;
    let d = t.peak in
    Mutex.unlock t.mu;
    d

  let drain t =
    Mutex.lock t.mu;
    while t.pending > 0 do
      Condition.wait t.idle t.mu
    done;
    Mutex.unlock t.mu

  let shutdown t =
    Mutex.lock t.mu;
    if not t.stop then begin
      t.stop <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mu;
      List.iter Domain.join t.workers;
      t.workers <- []
    end
    else Mutex.unlock t.mu
end
