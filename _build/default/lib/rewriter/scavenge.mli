(** Register scavenging for translated code (paper §4.1, "Use extra base
    registers").

    Translations of batch-processing extension instructions need additional
    base registers for intermediate results. The scavenger picks registers
    not touched by the instruction being translated and brackets the
    translated computation with stack save/restore sequences, ordered
    first-in last-out. *)

val pick : n:int -> exclude:Regmask.t -> Reg.t list
(** [n] distinct registers outside [exclude], never [x0]/[sp]/[gp]/[tp],
    preferring temporaries. @raise Invalid_argument if impossible. *)

val pick_free : n:int -> exclude:Regmask.t -> free:Reg.t list -> Reg.t list * Reg.t list
(** Like {!pick}, but prefers registers from [free] (statically known dead
    at the site — no save/restore needed). Returns [(regs, to_spill)] where
    [to_spill] is the subset not covered by [free]. *)

val with_spills : Codebuf.t -> Reg.t list -> (unit -> unit) -> unit
(** [with_spills cb regs body] emits [addi sp,-8n; sd...]; runs [body] (which
    emits the computation); then emits the FILO restores. *)
