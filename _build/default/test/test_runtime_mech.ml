(* Tests for the remaining runtime mechanisms of paper §4.3: signal delivery
   with gp restoration (Fig. 10) and the MMView process model (Fig. 9) with
   migration probes and vector-state transfer. *)

let base_isa = Ext.rv64gc
let ext_isa = Ext.rv64gcv

(* A vector program with a user signal handler: the handler increments a
   counter at gp+0x200 — a gp-relative access, so it only works if the
   kernel presented the correct gp. *)
let signal_program ~n =
  let a = Asm.create ~name:"signals" () in
  let v1 = Reg.v_of_int 1 and v2 = Reg.v_of_int 2 and v3 = Reg.v_of_int 3 in
  Asm.func a "_start";
  Asm.la a Reg.a0 "src1";
  Asm.la a Reg.a1 "src2";
  Asm.la a Reg.a2 "dst";
  Asm.li a Reg.a3 n;
  Asm.label a "vloop";
  Asm.inst a (Inst.Vsetvli (Reg.t0, Reg.a3, Inst.E64));
  Asm.branch_to a Inst.Beq Reg.t0 Reg.x0 "vdone";
  Asm.inst a (Inst.Vle (Inst.E64, v1, Reg.a0));
  Asm.inst a (Inst.Vle (Inst.E64, v2, Reg.a1));
  Asm.inst a (Inst.Vop_vv (Inst.Vadd, v3, v1, v2));
  Asm.inst a (Inst.Vse (Inst.E64, v3, Reg.a2));
  Asm.inst a (Inst.Opi (Inst.Slli, Reg.t1, Reg.t0, 3));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a1, Reg.a1, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t1));
  Asm.inst a (Inst.Op (Inst.Sub, Reg.a3, Reg.a3, Reg.t0));
  Asm.j a "vloop";
  Asm.label a "vdone";
  (* exit code = dst checksum + signal count (both mod 256) *)
  Asm.la a Reg.a0 "dst";
  Asm.li a Reg.a1 n;
  Asm.li a Reg.a2 0;
  Asm.label a "sloop";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.a0; imm = 0 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a2, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a0, Reg.a0, 8));
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.a1, Reg.a1, -1));
  Asm.branch_to a Inst.Bne Reg.a1 Reg.x0 "sloop";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.gp; imm = 0x200 });
  Asm.inst a (Inst.Op (Inst.Add, Reg.a0, Reg.a2, Reg.t0));
  Asm.inst a (Inst.Opi (Inst.Andi, Reg.a0, Reg.a0, 255));
  Asm.li a Reg.a7 93;
  Asm.inst a Inst.Ecall;
  (* the user handler: counter at gp+0x200 += 1, then sigreturn (a7 = 139).
     It deliberately clobbers scratch registers the interrupted code does
     not expect to survive... none: a real handler must preserve what it
     uses, so it works on t-regs it saves through the kernel context. *)
  Asm.func a "sig_handler";
  Asm.inst a (Inst.Load { width = Inst.D; unsigned = false; rd = Reg.t0; rs1 = Reg.gp; imm = 0x200 });
  Asm.inst a (Inst.Opi (Inst.Addi, Reg.t0, Reg.t0, 1));
  Asm.inst a (Inst.Store { width = Inst.D; rs2 = Reg.t0; rs1 = Reg.gp; imm = 0x200 });
  Asm.li a Reg.a7 139;
  Asm.inst a Inst.Ecall;
  Asm.dlabel a "src1";
  for i = 1 to n do Asm.dword64 a (Int64.of_int i) done;
  Asm.dlabel a "src2";
  for i = 1 to n do Asm.dword64 a (Int64.of_int (2 * i)) done;
  Asm.dlabel a "dst";
  Asm.dspace a (8 * n);
  Asm.assemble a

let n = 12
let expected_sum = 3 * (n * (n + 1) / 2)

let test_signals_native_baseline () =
  (* without signals the program exits with the plain checksum *)
  let bin = signal_program ~n in
  let mem = Loader.load bin in
  let m = Machine.create ~mem ~isa:ext_isa () in
  Loader.init_machine m bin;
  match Machine.run ~fuel:1_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "baseline" (expected_sum land 255) c
  | _ -> Alcotest.fail "baseline run failed"

let test_signals_on_rewritten_binary () =
  let bin = signal_program ~n in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  (* measure the rewritten run length once, then spread signals inside it *)
  let total_retired =
    let probe_rt = Chimera_rt.create ctx in
    let m = Machine.create ~mem:(Chimera_rt.load probe_rt) ~isa:base_isa () in
    match Chimera_rt.run probe_rt ~fuel:5_000_000 m with
    | Machine.Exited _ -> Machine.retired m
    | _ -> Alcotest.fail "probe run failed"
  in
  let rt = Chimera_rt.create ctx in
  (* shower of signals across the whole run: some will land inside the
     translated code where gp was trampoline-clobbered *)
  let deliveries =
    List.init 40 (fun i -> 10 + (i * (total_retired - 100) / 40))
  in
  let sg = Signals.create rt ~handler_sym:"sig_handler" ~deliver_after:deliveries in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Signals.run sg ~fuel:5_000_000 m with
  | Machine.Exited c ->
      Alcotest.(check int) "checksum + signal count"
        ((expected_sum + Signals.signals_delivered sg) land 255) c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check int) "all signals delivered" (List.length deliveries)
    (Signals.signals_delivered sg);
  (* every handler invocation observed the ABI gp *)
  let gp = Int64.of_int (Chbp.gp_value ctx) in
  List.iter
    (fun observed -> Alcotest.(check int64) "handler gp" gp observed)
    (Signals.observed_gp sg)

let test_signals_hit_clobbered_gp () =
  (* dense delivery on a trampoline-heavy run must hit at least one moment
     where gp was overwritten — proving the restoration logic engages *)
  let bin = signal_program ~n in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  (* spaced >= handler length so handlers never nest (a nested handler
     would legitimately lose a counter increment to the load-modify-store
     race, as on real hardware) *)
  let deliveries = List.init 100 (fun i -> 10 + (i * 31)) in
  let sg = Signals.create rt ~handler_sym:"sig_handler" ~deliver_after:deliveries in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Signals.run sg ~fuel:5_000_000 m with
  | Machine.Exited c ->
      Alcotest.(check int) "result still correct"
        ((expected_sum + Signals.signals_delivered sg) land 255) c
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check bool)
    (Printf.sprintf "gp restorations engaged (%d)" (Signals.gp_restorations sg))
    true
    (Signals.gp_restorations sg > 0)

let test_signals_none_scheduled () =
  (* an empty schedule must leave the run untouched *)
  let bin = signal_program ~n in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let sg = Signals.create rt ~handler_sym:"sig_handler" ~deliver_after:[] in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Signals.run sg ~fuel:5_000_000 m with
  | Machine.Exited c -> Alcotest.(check int) "plain result" (expected_sum land 255) c
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check int) "no deliveries" 0 (Signals.signals_delivered sg);
  Alcotest.(check int) "no restorations" 0 (Signals.gp_restorations sg)

let test_signals_missing_handler_symbol () =
  let bin = signal_program ~n in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  match Signals.create rt ~handler_sym:"no_such_handler" ~deliver_after:[ 5 ] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown handler symbol must be rejected"

let test_signals_observed_gp_is_abi_value () =
  (* every gp the user handler observed must be the static ABI value,
     regardless of what the interrupted trampoline had in flight *)
  let bin = signal_program ~n in
  let ctx = Chbp.rewrite ~options:(Chbp.default_options Chbp.Downgrade) bin in
  let rt = Chimera_rt.create ctx in
  let deliveries = List.init 40 (fun i -> 15 + (i * 37)) in
  let sg = Signals.create rt ~handler_sym:"sig_handler" ~deliver_after:deliveries in
  let m = Machine.create ~mem:(Chimera_rt.load rt) ~isa:base_isa () in
  (match Signals.run sg ~fuel:5_000_000 m with
  | Machine.Exited _ -> ()
  | _ -> Alcotest.fail "run failed");
  let abi_gp = Int64.of_int bin.Binfile.gp_value in
  Alcotest.(check bool) "some deliveries" true (Signals.signals_delivered sg > 0);
  List.iter
    (fun g -> Alcotest.(check int64) "handler saw ABI gp" abi_gp g)
    (Signals.observed_gp sg)

(* --- MMViews ------------------------------------------------------------- *)

let test_mmview_shared_data () =
  let bin = Programs.vecadd `Ext ~n:8 in
  let dep = Chimera_system.deploy bin ~cores:[ ext_isa; base_isa ] in
  let pv = Mmview.create dep in
  Mmview.start pv ~on:ext_isa;
  (* run to completion on the extension view *)
  (match Mmview.run pv ~fuel:1_000_000 with
  | Machine.Exited _ -> ()
  | _ -> Alcotest.fail "ext view run failed");
  (* the dst array written through the extension view must be visible in
     the base view's memory (same physical pages) *)
  let ext_mem = Machine.mem (Mmview.machine pv) in
  ignore (Mmview.migrate pv ~to_:base_isa);
  let base_mem = Machine.mem (Mmview.machine pv) in
  Alcotest.(check bool) "distinct views" true (not (ext_mem == base_mem));
  let addr = Layout.data_base + (2 * 8 * 8) in
  Alcotest.(check int64) "data page shared" (Memory.peek_u64 ext_mem addr)
    (Memory.peek_u64 base_mem addr)

let test_mmview_code_differs_per_view () =
  let bin = Programs.vecadd `Ext ~n:8 in
  let dep = Chimera_system.deploy bin ~cores:[ ext_isa; base_isa ] in
  let pv = Mmview.create dep in
  Mmview.start pv ~on:ext_isa;
  let ext_mem = Machine.mem (Mmview.machine pv) in
  ignore (Mmview.migrate pv ~to_:base_isa);
  let base_mem = Machine.mem (Mmview.machine pv) in
  (* the site of the first vector instruction holds original code in the
     extension view and a trampoline in the base view *)
  let dis = Disasm.of_binfile bin in
  let site =
    List.find (fun i -> Ext.required i.Disasm.inst = Some Ext.V) (Disasm.to_list dis)
  in
  Alcotest.(check bool) "patched differently" true
    (Memory.peek_u32 ext_mem site.Disasm.addr <> Memory.peek_u32 base_mem site.Disasm.addr)

let test_mmview_migration_mid_task () =
  (* run the first half on the extension core, migrate, finish on base;
     the result must match a pure run *)
  let bin = Programs.vecadd `Ext ~n:32 in
  let expected =
    let mem = Loader.load bin in
    let m = Machine.create ~mem ~isa:ext_isa () in
    Loader.init_machine m bin;
    match Machine.run ~fuel:1_000_000 m with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native"
  in
  let dep = Chimera_system.deploy bin ~cores:[ ext_isa; base_isa ] in
  let pv = Mmview.create dep in
  Mmview.start pv ~on:ext_isa;
  (* run a slice, then migrate (possibly mid-strip), then finish *)
  (match Mmview.run pv ~fuel:120 with
  | Machine.Fuel_exhausted -> ()
  | Machine.Exited _ -> Alcotest.fail "finished too early"
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f));
  ignore (Mmview.migrate pv ~to_:base_isa);
  Alcotest.(check bool) "switched" true (Ext.equal (Mmview.current_class pv) base_isa);
  (match Mmview.run pv ~fuel:5_000_000 with
  | Machine.Exited c -> Alcotest.(check int) "migrated result" expected c
  | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
  | Machine.Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check int) "one migration" 1 (Mmview.migrations pv)

let test_mmview_vector_state_transfers () =
  (* fill v1 on the extension view, migrate, and check the register file
     arrived: both views report identical v1 bytes *)
  let bin = Programs.vecadd `Ext ~n:32 in
  let dep = Chimera_system.deploy bin ~cores:[ ext_isa; base_isa ] in
  let pv = Mmview.create dep in
  Mmview.start pv ~on:ext_isa;
  (* run far enough for the first strip's vle to complete *)
  (match Mmview.run pv ~fuel:40 with
  | Machine.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "finished too early");
  let before = Bytes.copy (Machine.get_vreg (Mmview.machine pv) (Reg.v_of_int 1)) in
  Alcotest.(check bool) "v1 non-zero on the extension view" true
    (Bytes.exists (fun c -> c <> '\000') before);
  ignore (Mmview.migrate pv ~to_:base_isa);
  let after = Machine.get_vreg (Mmview.machine pv) (Reg.v_of_int 1) in
  Alcotest.(check bytes) "vector state transferred" before after

let test_mmview_migration_probes_defer () =
  (* migrate many times at random points during a downgraded run on the
     base view: a request landing inside target instructions must step to
     the exit first, and the final result must stay correct *)
  let bin = Programs.vecadd `Ext ~n:32 in
  let expected =
    let mem = Loader.load bin in
    let m = Machine.create ~mem ~isa:ext_isa () in
    Loader.init_machine m bin;
    match Machine.run ~fuel:1_000_000 m with
    | Machine.Exited c -> c
    | _ -> Alcotest.fail "native"
  in
  let dep = Chimera_system.deploy bin ~cores:[ base_isa; ext_isa ] in
  let pv = Mmview.create dep in
  Mmview.start pv ~on:base_isa;
  let deferred = ref 0 in
  let result = ref None in
  let flip = ref base_isa in
  while !result = None do
    (match Mmview.run pv ~fuel:41 with
    | Machine.Exited c -> result := Some c
    | Machine.Faulted f -> Alcotest.failf "fault: %s" (Fault.to_string f)
    | Machine.Fuel_exhausted ->
        flip := (if Ext.equal !flip base_isa then ext_isa else base_isa);
        deferred := !deferred + Mmview.migrate pv ~to_:!flip)
  done;
  Alcotest.(check (option int)) "result across migrations" (Some expected) !result;
  Alcotest.(check bool) "probes actually deferred some switches" true (!deferred > 0);
  Alcotest.(check bool) "several migrations" true (Mmview.migrations pv > 2)

let () =
  Alcotest.run "chimera_runtime_mechanisms"
    [ ("signals",
       [ Alcotest.test_case "native baseline" `Quick test_signals_native_baseline;
         Alcotest.test_case "signals on rewritten binary" `Quick
           test_signals_on_rewritten_binary;
         Alcotest.test_case "no schedule, no effect" `Quick
           test_signals_none_scheduled;
         Alcotest.test_case "missing handler rejected" `Quick
           test_signals_missing_handler_symbol;
         Alcotest.test_case "handler always sees ABI gp" `Quick
           test_signals_observed_gp_is_abi_value;
         Alcotest.test_case "gp restoration engages" `Quick
           test_signals_hit_clobbered_gp ]);
      ("mmview",
       [ Alcotest.test_case "shared data pages" `Quick test_mmview_shared_data;
         Alcotest.test_case "per-view code" `Quick test_mmview_code_differs_per_view;
         Alcotest.test_case "migration mid-task" `Quick test_mmview_migration_mid_task;
         Alcotest.test_case "vector state transfers" `Quick
           test_mmview_vector_state_transfers;
         Alcotest.test_case "migration probes defer" `Quick
           test_mmview_migration_probes_defer ]) ]
