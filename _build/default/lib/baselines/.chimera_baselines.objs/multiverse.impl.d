lib/baselines/multiverse.ml: Costs Safer
