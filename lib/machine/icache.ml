type t = {
  sets : int;
  line : int;
  tags : int array;  (* -1 = invalid *)
  mutable misses : int;
  mutable accesses : int;
  mutable streak : int;  (* consecutive misses, for burst events *)
}

let pow2 n = n > 0 && n land (n - 1) = 0

(* A run of at least this many back-to-back misses is reported as one
   [Icache_burst] event when it ends — bursts, not individual misses, are
   what a trampoline-split working set produces. *)
let burst_threshold = 8

let create ?(sets = 512) ?(line = 64) () =
  if not (pow2 sets && pow2 line) then
    invalid_arg "Icache.create: sets and line must be powers of two";
  { sets; line; tags = Array.make sets (-1); misses = 0; accesses = 0;
    streak = 0 }

let access t addr =
  t.accesses <- t.accesses + 1;
  let lineno = addr / t.line in
  let set = lineno land (t.sets - 1) in
  if t.tags.(set) = lineno then begin
    if t.streak >= burst_threshold && !Obs.enabled then
      Obs.emit (Obs.Icache_burst { addr; misses = t.streak });
    t.streak <- 0;
    true
  end
  else begin
    t.tags.(set) <- lineno;
    t.misses <- t.misses + 1;
    t.streak <- t.streak + 1;
    false
  end

let misses t = t.misses
let accesses t = t.accesses

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.streak <- 0
