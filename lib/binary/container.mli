(** Versioned, checksummed Marshal container.

    One on-disk framing shared by the SELF binary format ({!Binfile}) and
    the persistent translation cache ([lib/cache]): an 8-byte magic, a
    caller-chosen payload version, a payload length, the Marshal payload,
    and an MD5 trailer over everything before it.

    The reader is total: truncation, foreign magic, version skew, bit flips
    and unmarshalable payloads all come back as [Error reason] instead of an
    exception, so a corrupt cache entry can fall back to the cold path and a
    corrupt binary file can be reported with a clear message. *)

val write : path:string -> magic:string -> version:int -> 'a -> unit
(** Marshal [v] and write the container atomically ([path ^ ".tmp"] then
    rename). @raise Invalid_argument if [magic] is not exactly 8 bytes;
    I/O errors propagate as [Sys_error]. *)

val read : path:string -> magic:string -> version:int -> ('a, string) result
(** Read back a container written by {!write} with the same [magic] and
    [version]. [Error reason] with [reason] one of ["missing"],
    ["truncated"], ["magic"], ["version"], ["checksum"], ["decode"].
    Unmarshaling is only attempted after the checksum verifies, so the
    usual Marshal segfault hazards on corrupt input do not apply — but the
    caller still owes the type annotation discipline Marshal demands. *)

val peek_version : path:string -> magic:string -> int option
(** The stored payload version, if the file exists and carries [magic] —
    for "written by schema v5, this build reads v6" error messages. *)
