(* Translation blocks: straight-line runs of decoded instructions compiled
   into arrays of closures, validated by page-granular generation counters.

   The module is parameterized over the machine state ['m]: the machine
   supplies [decode] and [compile] callbacks, so this module owns the block
   layout, the termination policy and the invalidation bookkeeping without
   depending on the executor. *)

let page_shift =
  let rec go n s = if n <= 1 then s else go (n lsr 1) (s + 1) in
  go Memory.page_size 0

let page_of addr = addr asr page_shift

module Gen = struct
  (* Page-granular generation counters. [bump] is O(pages touched) and
     [stamp] sums the generations of the pages covering a byte range.
     Generations only grow, so two stamps over the same range are equal iff
     no covered page was bumped in between. *)
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let page_gen (t : t) p = match Hashtbl.find_opt t p with Some g -> g | None -> 0

  let bump (t : t) ~addr ~len =
    if len > 0 then
      for p = page_of addr to page_of (addr + len - 1) do
        Hashtbl.replace t p (page_gen t p + 1)
      done

  let stamp (t : t) ~lo ~hi =
    let s = ref 0 in
    for p = page_of lo to page_of hi do
      s := !s + page_gen t p
    done;
    !s
end

(* What the machine's compiler says about one decoded instruction. *)
type 'm compiled =
  | Op of ('m -> unit)
      (** Straight-line: executes the instruction, advances pc, retires. *)
  | Term  (** Control flow or event instruction: ends the block, kept decoded. *)
  | Stop  (** Not executable on the fast path (e.g. unsupported extension). *)

type 'm t = {
  entry : int;
  lo : int;
  hi : int;  (** last byte whose content the block depends on *)
  isa : Ext.t;  (** capability set the block was compiled against *)
  stamp : int;
  ops : ('m -> unit) array;
  pcs : int array;  (** pc of each body instruction (icache model, faults) *)
  sizes : int array;
  term : (Inst.t * int) option;
      (** decoded terminator, executed through the machine's event path *)
  fall : int;  (** pc following the last decoded instruction (fall-through) *)
  classes : Bytes.t;
      (** static profiler class code ({!Profile.class_code}) per body
          instruction — the block's instruction mix, priced once here so the
          profiler can attribute a full-body dispatch with one counter *)
  term_class : int;  (** class code of the terminator, -1 if none *)
  mutable echeck : int;
      (** machine code-epoch at the last successful validation; equality
          with the current epoch certifies the stamp without re-summing *)
  mutable link_fall : 'm t option;  (** chained successor at [fall] *)
  mutable link_taken : 'm t option;
      (** chained successor for any other target (taken branch, jump) *)
  mutable prow : Profile.row option;
      (** cached profiler row for [entry]; valid only while
          [Profile.row_live] holds for the machine's attached profile *)
}

let default_max_insts = 256

(* Decode a straight-line run starting at [pc]. The run ends at the first
   control-flow/event instruction (kept as the decoded terminator), at the
   first undecodable or fast-path-ineligible instruction, when the next
   instruction would start on a different page, or after [max_insts]
   instructions. A degenerate block (empty body, no terminator) still
   carries a stamp over the entry bytes so that patching them invalidates
   it. *)
let translate ?(max_insts = default_max_insts) ~gens ~epoch ~isa ~decode ~compile
    entry =
  let entry_page = page_of entry in
  let ops = ref [] and pcs = ref [] and sizes = ref [] in
  let classes = ref [] in
  let term_class = ref (-1) in
  let count = ref 0 in
  let pc = ref entry in
  let term = ref None in
  let stop = ref false in
  while not !stop do
    if !count >= max_insts || page_of !pc <> entry_page then stop := true
    else
      match decode !pc with
      | None -> stop := true
      | Some (inst, size) -> (
          match compile ~pc:!pc inst size with
          | Stop -> stop := true
          | Term ->
              term := Some (inst, size);
              term_class := Profile.class_code inst;
              pc := !pc + size;
              stop := true
          | Op f ->
              ops := f :: !ops;
              pcs := !pc :: !pcs;
              sizes := size :: !sizes;
              classes := Profile.class_code inst :: !classes;
              incr count;
              pc := !pc + size)
  done;
  (* [hi] covers every decoded byte; a degenerate block covers the widest
     possible instruction at the entry so a patch there re-translates. *)
  let hi = if !pc > entry then !pc - 1 else entry + 3 in
  { entry;
    lo = entry;
    hi;
    isa;
    stamp = Gen.stamp gens ~lo:entry ~hi;
    ops = Array.of_list (List.rev !ops);
    pcs = Array.of_list (List.rev !pcs);
    sizes = Array.of_list (List.rev !sizes);
    term = !term;
    fall = !pc;
    classes =
      (let l = List.rev !classes in
       let b = Bytes.create (List.length l) in
       List.iteri (fun i c -> Bytes.set_uint8 b i c) l;
       b);
    term_class = !term_class;
    echeck = epoch;
    link_fall = None;
    link_taken = None;
    prow = None }

(* Fast validity: a block checked under the current code epoch is valid by
   construction (the epoch advances on every generation bump). On an epoch
   change, fall back to the full stamp + capability check and re-certify;
   generations are monotonic, so an equal stamp proves no covered page
   changed. A block that fails here is replaced in the block table — its
   [echeck] is never refreshed again, so any chain link still pointing at
   it can never pass the epoch guard (links are severed lazily). *)
let revalidate gens ~isa ~epoch b =
  b.echeck = epoch
  || (Ext.equal isa b.isa
      && Gen.stamp gens ~lo:b.lo ~hi:b.hi = b.stamp
      &&
      (b.echeck <- epoch;
       true))

let epoch_current b epoch = b.echeck = epoch
let set_link_fall b next = b.link_fall <- Some next
let set_link_taken b next = b.link_taken <- Some next
let set_prow b r = b.prow <- r

let body_length b = Array.length b.ops

let degenerate b = Array.length b.ops = 0 && b.term = None
