lib/isa/ext.ml: Format Inst List String
