(* All output goes through [out] so a report can be rendered to a file
   (CLI --profile) as well as to stdout. *)
let out = ref stdout

let with_output oc f =
  let prev = !out in
  out := oc;
  Fun.protect ~finally:(fun () -> out := prev) f

let printf fmt = Printf.fprintf !out fmt

let heading title =
  let bar = String.make (String.length title) '=' in
  printf "\n%s\n%s\n" title bar

let note s = printf "  %s\n" s

(* Numeric cells are right-aligned within their column so digit counts line
   up even when a count is wider than the column's header — hot-block tables
   routinely carry 10+ digit retirement counts under a short header. *)
let numeric cell =
  cell <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.') cell

let print_aligned rows =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let w = String.length cell in
            match List.nth_opt acc i with Some w' -> max w w' | None -> w)
          row
        @
        (* keep the widths of trailing columns absent from this row *)
        let n = List.length row in
        List.filteri (fun i _ -> i >= n) acc)
      [] rows
  in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          let w = try List.nth widths i with _ -> String.length cell in
          let pad = String.make (max 0 (w - String.length cell)) ' ' in
          if numeric cell then printf "%s%s  " pad cell
          else printf "%s%s  " cell pad)
        row;
      printf "\n")
    rows

let table ~title ~header ~rows =
  heading title;
  print_aligned (header :: List.map (fun r -> r) rows)

let histogram ~title ~rows =
  heading title;
  let peak = List.fold_left (fun acc (_, n) -> max acc n) 0 rows in
  let bar n =
    if peak = 0 then ""
    else String.make (if n = 0 then 0 else max 1 (n * 40 / peak)) '#'
  in
  print_aligned
    (List.map (fun (label, n) -> [ label; string_of_int n; bar n ]) rows)

let series ~title ~xlabel ~xs ~lines =
  heading title;
  let header = xlabel :: List.map fst lines in
  let rows =
    List.mapi
      (fun i x -> x :: List.map (fun (_, ys) -> Printf.sprintf "%.3f" (List.nth ys i)) lines)
      xs
  in
  print_aligned (header :: rows)
