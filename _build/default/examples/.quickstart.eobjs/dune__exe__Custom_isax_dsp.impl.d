examples/custom_isax_dsp.ml: Asm Binfile Chbp Chimera_system Ext Fault Format Inst List Loader Machine Reg
